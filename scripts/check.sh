#!/usr/bin/env bash
# Tier-1 gate plus a sanitizer pass over the test suite.
#
#   scripts/check.sh            # configure + build + ctest, then ASan+UBSan ctest
#   SKIP_SAN=1 scripts/check.sh # tier-1 only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==== tier-1: configure + build + ctest ===="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

if [[ "${SKIP_SAN:-}" == "1" ]]; then
  echo "==== sanitizer pass skipped (SKIP_SAN=1) ===="
  exit 0
fi

echo "==== sanitizers: ASan+UBSan build + ctest ===="
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}" >/dev/null
cmake --build build-asan -j
(cd build-asan && ctest --output-on-failure -j)

echo "==== all checks passed ===="
