#!/usr/bin/env bash
# Tier-1 gate, a Release perf-regression gate over the wall-clock bench suite,
# and a sanitizer pass over the test suite.
#
#   scripts/check.sh                  # tier-1, perf gate, ASan+UBSan, TSan
#   SKIP_SAN=1 scripts/check.sh       # skip the ASan+UBSan pass
#   SKIP_TSAN=1 scripts/check.sh      # skip the ThreadSanitizer smoke
#   SKIP_PERF=1 scripts/check.sh      # skip the Release perf stage entirely
#   SKIP_PERF_GATE=1 scripts/check.sh # run the benches but don't fail on
#                                     # regression (noisy/shared machines)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==== tier-1: configure + build + ctest -L tier1 ===="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest -L tier1 --output-on-failure -j)

echo "==== slow lane: long differential suites (ctest -L slow) ===="
# cache_diff / shard_diff / openload_diff re-run whole workloads many times;
# they gate here once rather than in every tier-1 repetition below.
(cd build && ctest -L slow --output-on-failure -j)

echo "==== tier-1 (elevator I/O engine): ctest with SLEDS_IO_MODE=elevator ===="
(cd build && SLEDS_IO_MODE=elevator ctest -L tier1 --output-on-failure -j)

echo "==== fault smoke: ctest under a nonzero fault plan ===="
# A low-probability transient-only plan (masked by controller retries) must
# leave the whole tier-1 suite green: errors may flow, nothing may break.
(cd build && SLEDS_FAULT_SEED=7 ctest -L tier1 --output-on-failure -j)

echo "==== fault smoke: faults-off bench output is byte-identical ===="
# SLEDS_FAULT_SEED=0 must be indistinguishable from the variable being unset:
# the zero seed installs no plan, so the baseline stays byte-for-byte stable.
SLEDS_BENCH_MAX_MB=8 ./build/bench/bench_fig03_lru_passes > /tmp/sleds_faultoff_a.txt
SLEDS_FAULT_SEED=0 SLEDS_BENCH_MAX_MB=8 ./build/bench/bench_fig03_lru_passes > /tmp/sleds_faultoff_b.txt
diff /tmp/sleds_faultoff_a.txt /tmp/sleds_faultoff_b.txt
rm -f /tmp/sleds_faultoff_a.txt /tmp/sleds_faultoff_b.txt

echo "==== fault bench: graceful degradation sweep ===="
# Fails the gate on crash or hang; BENCH_fault.json shows bounded retries and
# zero lost dirty pages at modest fault probabilities.
timeout 300 ./build/bench/bench_fault

echo "==== I/O scheduler bench: FIFO vs C-LOOK + coalescing ===="
./build/bench/bench_iosched

echo "==== SSD bench: GC tail + tail-aware picking ===="
timeout 300 ./build/bench/bench_ssd

echo "==== estimate-accuracy gate: Estimate vs Access across device models ===="
# Simulated-time metrics, deterministic and machine-independent, so the Debug
# build is fine. Gated against the `accuracy` section of bench/baselines.json;
# refresh after an intentional model change with
# scripts/perf_gate.py --refresh-accuracy.
acc_json_dir="$(mktemp -d)"
SLEDS_BENCH_JSON_DIR="${acc_json_dir}" timeout 600 ./build/bench/bench_ext_estimate_accuracy
if [[ "${SKIP_PERF_GATE:-}" == "1" ]]; then
  echo "==== accuracy comparison skipped (SKIP_PERF_GATE=1) ===="
elif command -v python3 >/dev/null 2>&1; then
  python3 scripts/perf_gate.py --accuracy "${acc_json_dir}"
else
  echo "==== accuracy comparison skipped (python3 not found) ===="
fi
rm -rf "${acc_json_dir}"

if [[ "${SKIP_PERF:-}" == "1" ]]; then
  echo "==== perf stage skipped (SKIP_PERF=1) ===="
else
  echo "==== perf gate: Release bench_micro + bench_scale + bench_shard + bench_openloop + bench_replica + bench_progs vs baselines ===="
  cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build build-release -j --target bench_micro bench_scale bench_shard bench_openloop bench_replica bench_progs
  perf_json_dir="$(mktemp -d)"
  # Crash or hang in any bench fails the gate outright; the speedup
  # comparison below only runs once every JSON block exists.
  SLEDS_BENCH_JSON_DIR="${perf_json_dir}" timeout 300 \
    ./build-release/bench/bench_micro --benchmark_filter='BM_PageCacheTouchHit'
  SLEDS_BENCH_JSON_DIR="${perf_json_dir}" timeout 600 \
    ./build-release/bench/bench_scale
  # bench_shard also asserts the shard determinism contract (N-shard merged
  # results byte-identical to the single-shard oracle) before timing.
  SLEDS_BENCH_JSON_DIR="${perf_json_dir}" timeout 600 \
    ./build-release/bench/bench_shard
  # bench_openloop asserts wheel-vs-heap identity at the full million-client
  # population before timing either scheduler.
  SLEDS_BENCH_JSON_DIR="${perf_json_dir}" timeout 600 \
    ./build-release/bench/bench_openloop
  # bench_replica exits nonzero unless the rebuild storm re-syncs fully and
  # hedged p99 stays at or above the unhedged p99; its gated speedup is
  # simulated time, so Release-vs-Debug makes no difference to the number.
  SLEDS_BENCH_JSON_DIR="${perf_json_dir}" timeout 300 \
    ./build-release/bench/bench_replica
  # bench_progs asserts program-vs-oracle result identity before timing and
  # exits nonzero below a 2x crossing reduction; both gated speedups are
  # simulated time / syscall ratios, so they are deterministic.
  SLEDS_BENCH_JSON_DIR="${perf_json_dir}" timeout 300 \
    ./build-release/bench/bench_progs
  if [[ "${SKIP_PERF_GATE:-}" == "1" ]]; then
    echo "==== perf-regression comparison skipped (SKIP_PERF_GATE=1) ===="
  elif command -v python3 >/dev/null 2>&1; then
    # Compares speedup ratios (naive/indexed on the same run) against
    # bench/baselines.json; fails on a >25% regression. Refresh baselines
    # with scripts/perf_gate.py --refresh after intentional perf changes.
    python3 scripts/perf_gate.py "${perf_json_dir}"
  else
    echo "==== perf-regression comparison skipped (python3 not found) ===="
  fi
  rm -rf "${perf_json_dir}"
fi

if [[ "${SKIP_SAN:-}" == "1" ]]; then
  echo "==== sanitizer pass skipped (SKIP_SAN=1) ===="
else
  echo "==== sanitizers: ASan+UBSan build + ctest ===="
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
    -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}" >/dev/null
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j)
  echo "==== sanitizers: bench_openloop 10k-client smoke under ASan+UBSan ===="
  SLEDS_OPENLOAD_CLIENTS=10000 SLEDS_OPENLOAD_SCENARIO_CLIENTS=1000 \
    SLEDS_OPENLOAD_HORIZON=1 SLEDS_OPENLOAD_REPEATS=1 \
    timeout 600 ./build-asan/bench/bench_openloop > /dev/null
  echo "==== sanitizers: replica rebuild-storm + hedge smoke under ASan+UBSan ===="
  # Drives the degraded write/read, stale-mark, recovery, and hedge paths —
  # the code most likely to hide a lifetime bug behind a fault window.
  timeout 600 ./build-asan/bench/bench_replica > /dev/null
  echo "==== sanitizers: completion-program smoke under ASan+UBSan ===="
  # Program-enabled grep early-exit and chain walk: the in-kernel completion
  # machinery (plans, resubmits, cancel-on-match) under full instrumentation.
  timeout 600 ./build-asan/bench/bench_progs > /dev/null
fi

if [[ "${SKIP_TSAN:-}" == "1" ]]; then
  echo "==== ThreadSanitizer smoke skipped (SKIP_TSAN=1) ===="
else
  echo "==== ThreadSanitizer smoke: shard runtime under TSan ===="
  # Only the shard suite runs threads; building just its test keeps the stage
  # fast while covering the SPSC rings, the message pool, and the worker
  # threads racing real multi-mount kernels.
  TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="${TSAN_FLAGS}" \
    -DCMAKE_EXE_LINKER_FLAGS="${TSAN_FLAGS}" >/dev/null
  cmake --build build-tsan -j --target shard_diff_test
  (cd build-tsan && ctest -R '^shard_diff_test$' --output-on-failure)
fi

echo "==== all checks passed ===="
