#!/usr/bin/env python3
"""Perf-regression gate: compare fresh BENCH_*.json speedups to baselines.

Usage: perf_gate.py <current_json_dir> [baselines_json]

Compares the `speedup` field of every workload recorded in bench/baselines.json
against the matching BENCH_<bench>.json in <current_json_dir>. Speedup is a
ratio (naive vs indexed wall time on the same machine, same run), so it is far
more stable across hosts than raw microseconds. The gate fails when a workload
loses more than 25% of its baseline speedup.

Refresh the baselines after an intentional perf change:

    SLEDS_BENCH_JSON_DIR=/tmp/bj ./build-release/bench/bench_micro \
        --benchmark_filter='BM_PageCacheTouchHit'
    SLEDS_BENCH_JSON_DIR=/tmp/bj ./build-release/bench/bench_scale
    scripts/perf_gate.py --refresh /tmp/bj
"""

import json
import os
import sys

TOLERANCE = 0.75  # current speedup must stay above baseline * TOLERANCE

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINES = os.path.join(REPO_ROOT, "bench", "baselines.json")


def load_speedups(path):
    """Return {workload: speedup} from one BENCH_*.json file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for key, value in data.items():
        if isinstance(value, dict) and "speedup" in value:
            out[key] = float(value["speedup"])
    return out


def collect(json_dir, benches):
    """Return {bench: {workload: speedup}} for the requested bench ids."""
    result = {}
    for bench in benches:
        path = os.path.join(json_dir, f"BENCH_{bench}.json")
        if not os.path.exists(path):
            print(f"perf gate: FAIL — missing {path}")
            sys.exit(1)
        result[bench] = load_speedups(path)
    return result


def refresh(json_dir, baselines_path):
    benches = ["micro", "scale"]
    payload = {
        "comment": "speedup (naive_us / indexed_us) baselines; "
        "gate fails below baseline * %.2f. Refresh: scripts/perf_gate.py "
        "--refresh <json_dir>" % TOLERANCE,
        "benches": collect(json_dir, benches),
    }
    with open(baselines_path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"perf gate: baselines written to {baselines_path}")


def check(json_dir, baselines_path):
    with open(baselines_path) as f:
        baselines = json.load(f)["benches"]
    current = collect(json_dir, sorted(baselines))
    failures = []
    for bench, workloads in sorted(baselines.items()):
        for workload, base in sorted(workloads.items()):
            cur = current[bench].get(workload)
            if cur is None:
                failures.append(f"{bench}/{workload}: missing from current run")
                continue
            floor = base * TOLERANCE
            verdict = "ok" if cur >= floor else "REGRESSED"
            print(
                f"  {bench}/{workload}: baseline {base:.2f}x, "
                f"current {cur:.2f}x, floor {floor:.2f}x — {verdict}"
            )
            if cur < floor:
                failures.append(
                    f"{bench}/{workload}: {cur:.2f}x < {floor:.2f}x "
                    f"(baseline {base:.2f}x)"
                )
    if failures:
        print("perf gate: FAIL")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print("perf gate: ok")


def main():
    args = sys.argv[1:]
    if args and args[0] == "--refresh":
        if len(args) < 2:
            print(__doc__)
            sys.exit(2)
        refresh(args[1], args[2] if len(args) > 2 else DEFAULT_BASELINES)
        return
    if not args:
        print(__doc__)
        sys.exit(2)
    check(args[0], args[1] if len(args) > 1 else DEFAULT_BASELINES)


if __name__ == "__main__":
    main()
