#!/usr/bin/env python3
"""Perf-regression gate: compare fresh BENCH_*.json speedups to baselines.

Usage: perf_gate.py <current_json_dir> [baselines_json]

Compares the `speedup` field of every workload recorded in bench/baselines.json
against the matching BENCH_<bench>.json in <current_json_dir>. Speedup is a
ratio (naive vs indexed wall time on the same machine, same run), so it is far
more stable across hosts than raw microseconds. The gate fails when a workload
loses more than 25% of its baseline speedup.

Refresh the baselines after an intentional perf change:

    SLEDS_BENCH_JSON_DIR=/tmp/bj ./build-release/bench/bench_micro \
        --benchmark_filter='BM_PageCacheTouchHit'
    SLEDS_BENCH_JSON_DIR=/tmp/bj ./build-release/bench/bench_scale
    SLEDS_BENCH_JSON_DIR=/tmp/bj ./build-release/bench/bench_shard
    SLEDS_BENCH_JSON_DIR=/tmp/bj ./build-release/bench/bench_openloop
    SLEDS_BENCH_JSON_DIR=/tmp/bj ./build-release/bench/bench_replica
    SLEDS_BENCH_JSON_DIR=/tmp/bj ./build-release/bench/bench_progs
    scripts/perf_gate.py --refresh /tmp/bj

For bench_shard the gated `speedup` is parallel efficiency (raw speedup per
usable core), so the same baseline is meaningful on hosts with different core
counts.

Accuracy mode (`--accuracy <json_dir>`) gates the `error` fields of
BENCH_estimate_accuracy.json (estimate-vs-access MAPE and end-to-end bias,
lower is better) against the `accuracy` section of baselines.json. Those
numbers are simulated-time ratios — fully deterministic, machine-independent —
so the tolerance is only a safety margin for intentional model tweaks.
Refresh after such a tweak with `--refresh-accuracy <json_dir>`.
"""

import json
import os
import sys

TOLERANCE = 0.75  # current speedup must stay above baseline * TOLERANCE
ACCURACY_TOLERANCE = 1.25  # current error must stay below baseline * this
ACCURACY_BENCH = "estimate_accuracy"

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINES = os.path.join(REPO_ROOT, "bench", "baselines.json")


def load_speedups(path):
    """Return {workload: speedup} from one BENCH_*.json file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for key, value in data.items():
        if isinstance(value, dict) and "speedup" in value:
            out[key] = float(value["speedup"])
    return out


def collect(json_dir, benches):
    """Return {bench: {workload: speedup}} for the requested bench ids."""
    result = {}
    for bench in benches:
        path = os.path.join(json_dir, f"BENCH_{bench}.json")
        if not os.path.exists(path):
            print(f"perf gate: FAIL — missing {path}")
            sys.exit(1)
        result[bench] = load_speedups(path)
    return result


def load_errors(path):
    """Return {workload: error} from BENCH_estimate_accuracy.json."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for key, value in data.items():
        if isinstance(value, dict) and "error" in value:
            out[key] = float(value["error"])
    return out


def read_baselines(baselines_path):
    if os.path.exists(baselines_path):
        with open(baselines_path) as f:
            return json.load(f)
    return {}


def write_baselines(payload, baselines_path):
    with open(baselines_path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"perf gate: baselines written to {baselines_path}")


def refresh(json_dir, baselines_path):
    payload = read_baselines(baselines_path)
    payload["comment"] = (
        "speedup (naive_us / indexed_us) baselines; "
        "gate fails below baseline * %.2f. Refresh: scripts/perf_gate.py "
        "--refresh <json_dir>. `accuracy` holds estimate-vs-access error "
        "baselines (lower is better, ceiling baseline * %.2f); refresh with "
        "--refresh-accuracy <json_dir>" % (TOLERANCE, ACCURACY_TOLERANCE)
    )
    payload["benches"] = collect(
        json_dir, ["micro", "scale", "shard", "openloop", "replica", "progs"]
    )
    write_baselines(payload, baselines_path)


def refresh_accuracy(json_dir, baselines_path):
    path = os.path.join(json_dir, f"BENCH_{ACCURACY_BENCH}.json")
    if not os.path.exists(path):
        print(f"perf gate: FAIL — missing {path}")
        sys.exit(1)
    payload = read_baselines(baselines_path)
    payload["accuracy"] = load_errors(path)
    write_baselines(payload, baselines_path)


def check_accuracy(json_dir, baselines_path):
    baselines = read_baselines(baselines_path).get("accuracy", {})
    if not baselines:
        print(f"accuracy gate: FAIL — no `accuracy` section in {baselines_path}")
        sys.exit(1)
    path = os.path.join(json_dir, f"BENCH_{ACCURACY_BENCH}.json")
    if not os.path.exists(path):
        print(f"accuracy gate: FAIL — missing {path}")
        sys.exit(1)
    current = load_errors(path)
    failures = []
    for workload, base in sorted(baselines.items()):
        cur = current.get(workload)
        if cur is None:
            failures.append(f"{workload}: missing from current run")
            continue
        ceiling = base * ACCURACY_TOLERANCE + 1e-6
        verdict = "ok" if cur <= ceiling else "REGRESSED"
        print(
            f"  {workload}: baseline {base:.4f}, current {cur:.4f}, "
            f"ceiling {ceiling:.4f} — {verdict}"
        )
        if cur > ceiling:
            failures.append(f"{workload}: {cur:.4f} > {ceiling:.4f} (baseline {base:.4f})")
    if failures:
        print("accuracy gate: FAIL")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print("accuracy gate: ok")


def check(json_dir, baselines_path):
    with open(baselines_path) as f:
        baselines = json.load(f)["benches"]
    current = collect(json_dir, sorted(baselines))
    failures = []
    for bench, workloads in sorted(baselines.items()):
        for workload, base in sorted(workloads.items()):
            cur = current[bench].get(workload)
            if cur is None:
                failures.append(f"{bench}/{workload}: missing from current run")
                continue
            floor = base * TOLERANCE
            verdict = "ok" if cur >= floor else "REGRESSED"
            print(
                f"  {bench}/{workload}: baseline {base:.2f}x, "
                f"current {cur:.2f}x, floor {floor:.2f}x — {verdict}"
            )
            if cur < floor:
                failures.append(
                    f"{bench}/{workload}: {cur:.2f}x < {floor:.2f}x "
                    f"(baseline {base:.2f}x)"
                )
    if failures:
        print("perf gate: FAIL")
        for f in failures:
            print(f"  {f}")
        sys.exit(1)
    print("perf gate: ok")


def main():
    args = sys.argv[1:]
    modes = {
        "--refresh": refresh,
        "--refresh-accuracy": refresh_accuracy,
        "--accuracy": check_accuracy,
    }
    if args and args[0] in modes:
        if len(args) < 2:
            print(__doc__)
            sys.exit(2)
        modes[args[0]](args[1], args[2] if len(args) > 2 else DEFAULT_BASELINES)
        return
    if not args:
        print(__doc__)
        sys.exit(2)
    check(args[0], args[1] if len(args) > 1 else DEFAULT_BASELINES)


if __name__ == "__main__":
    main()
