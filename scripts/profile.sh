#!/usr/bin/env bash
# Profile a bench binary with Linux perf and print the hot-spot report.
#
#   scripts/profile.sh bench_scale                 # profile bench_scale
#   scripts/profile.sh bench_micro --benchmark_filter='BM_PageCacheTouchHit'
#
# Builds the `profile` CMake preset (RelWithDebInfo + -fno-omit-frame-pointer,
# see CMakePresets.json) so call graphs resolve, records with perf, and prints
# the top of `perf report`. The perf.data stays in build-profile/ for
# interactive drill-down (`perf report -i build-profile/perf.data`).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -lt 1 ]]; then
  echo "usage: scripts/profile.sh <bench_target> [args...]" >&2
  exit 2
fi
target="$1"
shift

cmake --preset profile >/dev/null
cmake --build --preset profile -j --target "${target}"

bin="build-profile/bench/${target}"
if [[ ! -x "${bin}" ]]; then
  echo "error: ${bin} not built" >&2
  exit 1
fi

if ! command -v perf >/dev/null 2>&1; then
  echo "perf not found; running ${target} under 'time' instead" >&2
  time "${bin}" "$@"
  exit 0
fi

perf record -g --call-graph=fp -o build-profile/perf.data -- "${bin}" "$@"
perf report -i build-profile/perf.data --stdio --percent-limit 1 | head -60
echo
echo "full data: perf report -i build-profile/perf.data"
