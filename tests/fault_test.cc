// Fault injection and end-to-end error propagation.
//
// Covers the whole error path promised by the fault model (DESIGN.md §8):
// device-level fault plans (scripted, probabilistic, windows), the kernel's
// retry/backoff policy, syscall-boundary error codes in both I/O modes (with
// identical simulated time), writeback retry semantics (failed pages stay
// queued, never silently dropped), and SLED/picker degradation when a level
// is unreachable.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/device/disk_device.h"
#include "src/device/fault.h"
#include "src/fs/extent_file_system.h"
#include "src/fs/hsm_fs.h"
#include "src/fs/remote_fs.h"
#include "src/fs/tiered_fs.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/picker.h"

namespace sled {
namespace {

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
  ExtFs* fs = nullptr;
  std::shared_ptr<FaultPlan> plan;
};

World MakeDiskWorld(IoMode mode, int64_t cache_pages = 1024, int readahead = 0) {
  World w;
  KernelConfig config;
  config.io.mode = mode;
  config.cache.capacity_pages = cache_pages;
  if (readahead > 0) {
    config.min_readahead_pages = readahead;
    config.max_readahead_pages = readahead;
  }
  w.kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  w.fs = fs.get();
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  // Scripted plan: no probabilistic faults, everything driven by the test.
  w.plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  w.fs->device().InjectFaults(w.plan);
  return w;
}

void WriteFile(World& w, const std::string& path, int64_t size) {
  const int fd = w.kernel->Create(*w.proc, path).value();
  const std::string data(static_cast<size_t>(size), 'x');
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

// ---- device-level fault plan ----

TEST(FaultPlanTest, ScriptedAndBadRangeFaultsAreDeterministic) {
  DiskDevice dev(DiskDeviceConfig{}, "d0");
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  dev.InjectFaults(plan);

  ASSERT_TRUE(dev.Read(0, kPageSize).ok());
  plan->FailNextReads(2);
  EXPECT_EQ(dev.Read(0, kPageSize).error(), Err::kIo);
  EXPECT_EQ(dev.Read(0, kPageSize).error(), Err::kIo);
  EXPECT_TRUE(dev.Read(0, kPageSize).ok());  // budget exhausted

  // A bad range keeps failing (persistent media error) until repaired, and
  // only for overlapping ops.
  plan->AddBadRange(0, kPageSize);
  EXPECT_EQ(dev.Read(0, kPageSize).error(), Err::kIo);
  EXPECT_EQ(dev.Read(kPageSize / 2, kPageSize).error(), Err::kIo);
  EXPECT_TRUE(dev.Read(4 * kPageSize, kPageSize).ok());
  EXPECT_EQ(dev.Write(0, kPageSize).error(), Err::kIo);
  plan->ClearBadRanges();
  EXPECT_TRUE(dev.Read(0, kPageSize).ok());
  EXPECT_EQ(dev.stats().read_errors, 4);
  EXPECT_EQ(dev.stats().write_errors, 1);
  EXPECT_EQ(plan->stats().faults_injected, 5);
}

TEST(FaultPlanTest, ProbabilisticFaultsReplayIdenticallyUnderOneSeed) {
  FaultPlanConfig fc;
  fc.seed = 99;
  fc.read_fault_prob = 0.3;
  auto run = [&]() {
    DiskDevice dev(DiskDeviceConfig{}, "d0");
    dev.InjectFaults(std::make_shared<FaultPlan>(fc));
    std::vector<bool> outcome;
    for (int i = 0; i < 64; ++i) {
      outcome.push_back(dev.Read(i * kPageSize, kPageSize).ok());
    }
    return outcome;
  };
  const std::vector<bool> a = run();
  EXPECT_EQ(a, run());
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);  // some faults fired
}

TEST(FaultPlanTest, FailedOpsCostZeroDeviceTimeAndLeavePositionUntouched) {
  // A masked transient fault must be byte-identical to no fault: the failing
  // op draws no device time and does not move the head, so the following
  // sequential read streams exactly as if the fault never happened.
  DiskDevice clean(DiskDeviceConfig{}, "d0");
  DiskDevice faulty(DiskDeviceConfig{}, "d1");
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  faulty.InjectFaults(plan);

  const Duration c1 = clean.Read(0, kPageSize).value();
  const Duration c2 = clean.Read(kPageSize, kPageSize).value();
  const Duration f1 = faulty.Read(0, kPageSize).value();
  plan->FailNextReads(1);
  EXPECT_EQ(faulty.Read(kPageSize, kPageSize).error(), Err::kIo);
  const Duration f2 = faulty.Read(kPageSize, kPageSize).value();
  EXPECT_EQ(c1, f1);
  EXPECT_EQ(c2, f2);
}

TEST(FaultPlanTest, SlowWindowInflatesServiceTimeAndHealth) {
  SimClock clock;
  DiskDevice dev(DiskDeviceConfig{}, "d0");
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  dev.InjectFaults(plan);
  plan->AttachClock(&clock);

  const Duration nominal = dev.Read(0, kPageSize).value();
  plan->AddSlowWindow(clock.Now(), clock.Now() + Seconds(100), 4.0);
  dev.ResetStats();
  // Re-read the same span from the same position history: only the window
  // multiplies the time.
  DiskDevice dev2(DiskDeviceConfig{}, "d0");
  auto plan2 = std::make_shared<FaultPlan>(FaultPlanConfig{});
  dev2.InjectFaults(plan2);
  plan2->AttachClock(&clock);
  plan2->AddSlowWindow(clock.Now(), clock.Now() + Seconds(100), 4.0);
  const Duration slowed = dev2.Read(0, kPageSize).value();
  EXPECT_EQ(slowed, nominal * 4);
  EXPECT_FALSE(dev2.Health().unavailable);
  EXPECT_EQ(dev2.Health().latency_factor, 4.0);
  clock.Advance(Seconds(200));
  EXPECT_FALSE(dev2.Health().degraded());  // window closed
}

// ---- syscall boundary, both I/O modes ----

TEST(FaultKernelTest, ReadFaultReturnsEioInBothModesAtIdenticalSimTime) {
  Duration elapsed[2];
  for (const IoMode mode : {IoMode::kFifoSync, IoMode::kElevator}) {
    World w = MakeDiskWorld(mode);
    WriteFile(w, "/f", 16 * kPageSize);
    w.kernel->DropCaches();
    // Kernel policy is max_io_retries (2) immediate re-issues: 3 device reads
    // total. Forcing exactly 3 makes the first transfer fail past all retries.
    w.plan->FailNextReads(3);
    const int fd = w.kernel->Open(*w.proc, "/f").value();
    std::vector<char> buf(kPageSize);
    const TimePoint before = w.kernel->clock().Now();
    const auto r = w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size()));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error(), Err::kIo);
    elapsed[mode == IoMode::kElevator ? 1 : 0] = w.kernel->clock().Now() - before;
    EXPECT_EQ(w.kernel->stats().io_errors, 1);
    EXPECT_EQ(w.kernel->stats().io_retries, 2);
    EXPECT_EQ(w.fs->device().stats().read_errors, 3);
    // No leaked in-flight frames: a failed request must release its claim so
    // eviction is not wedged.
    EXPECT_EQ(w.kernel->cache().in_flight_pages(), 0);
    // The fault was transient and scripted; the data is still readable.
    ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, 0, Whence::kSet).ok());
    EXPECT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size())).ok());
  }
  EXPECT_EQ(elapsed[0], elapsed[1]);
}

TEST(FaultKernelTest, TransientFaultMaskedByKernelRetriesCostsNoExtraTime) {
  // Two identical worlds; one injects 2 transient faults (inside the retry
  // budget). Failed attempts are fail-fast, so the masked run must land on
  // the same simulated clock as the clean run.
  World clean = MakeDiskWorld(IoMode::kFifoSync);
  World faulty = MakeDiskWorld(IoMode::kFifoSync);
  for (World* w : {&clean, &faulty}) {
    WriteFile(*w, "/f", 8 * kPageSize);
    w->kernel->DropCaches();
  }
  faulty.plan->FailNextReads(2);
  std::vector<char> buf(8 * kPageSize);
  for (World* w : {&clean, &faulty}) {
    const int fd = w->kernel->Open(*w->proc, "/f").value();
    ASSERT_TRUE(w->kernel->Read(*w->proc, fd, std::span<char>(buf.data(), buf.size())).ok());
  }
  EXPECT_EQ(clean.kernel->clock().Now(), faulty.kernel->clock().Now());
  EXPECT_EQ(faulty.kernel->stats().io_retries, 2);
  EXPECT_EQ(faulty.kernel->stats().io_errors, 0);
}

TEST(FaultKernelTest, MmapReadFaultReturnsEio) {
  World w = MakeDiskWorld(IoMode::kFifoSync);
  WriteFile(w, "/f", 4 * kPageSize);
  w.kernel->DropCaches();
  w.plan->FailNextReads(3);
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  const auto view = w.kernel->MmapRead(*w.proc, fd, 0, 4 * kPageSize);
  ASSERT_FALSE(view.ok());
  EXPECT_EQ(view.error(), Err::kIo);
  // Transient: the next touch pages in fine.
  EXPECT_TRUE(w.kernel->MmapRead(*w.proc, fd, 0, 4 * kPageSize).ok());
}

// ---- writeback / fsync ----

TEST(FaultKernelTest, FsyncFailureLeavesPagesDirtyInBothModes) {
  for (const IoMode mode : {IoMode::kFifoSync, IoMode::kElevator}) {
    World w = MakeDiskWorld(mode);
    const int fd = w.kernel->Create(*w.proc, "/f").value();
    const std::string data(4 * kPageSize, 'd');
    ASSERT_TRUE(
        w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
    const FileId fid = Vfs::MakeFileId(w.kernel->vfs().Resolve("/f").value().fs_id,
                                       w.kernel->vfs().Resolve("/f").value().ino);
    ASSERT_EQ(w.kernel->cache().DirtyPagesOf(fid).size(), 4u);

    w.plan->FailNextWrites(3);  // exhaust the retry budget for the first run
    const auto r = w.kernel->Fsync(*w.proc, fd);
    ASSERT_FALSE(r.ok()) << "mode " << static_cast<int>(mode);
    EXPECT_EQ(r.error(), Err::kIo);
    // The contract under test: a failed writeback never loses the dirty bit.
    EXPECT_EQ(w.kernel->cache().DirtyPagesOf(fid).size(), 4u);
    EXPECT_EQ(w.kernel->stats().writeback_lost, 0);

    // Fault gone: the retry round-trips to stable storage and cleans up.
    ASSERT_TRUE(w.kernel->Fsync(*w.proc, fd).ok());
    EXPECT_EQ(w.kernel->cache().DirtyPagesOf(fid).size(), 0u);
  }
}

TEST(FaultKernelTest, EvictionWritebackRetriesWithBackoffAndLosesNothing) {
  // Small cache: writing 4x its capacity forces dirty evictions through the
  // writeback queue. The first flush hits faults; pages must stay queued
  // (with a backoff deadline) and drain successfully once the device heals.
  World w = MakeDiskWorld(IoMode::kFifoSync, /*cache_pages=*/16);
  w.plan->FailNextWrites(6);
  WriteFile(w, "/f", 64 * kPageSize);
  w.kernel->FlushAllDirty();
  EXPECT_GT(w.kernel->stats().writeback_retries, 0);
  EXPECT_EQ(w.kernel->stats().writeback_lost, 0);

  // Every page survived somewhere (cache or store): read the file back.
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  std::vector<char> buf(64 * kPageSize);
  const auto n = w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), 64 * kPageSize);
}

TEST(FaultKernelTest, WritebackGivesUpPastAttemptCapWithoutHanging) {
  // A permanently failing device must not hang the flush loop: pages are
  // counted lost once the attempt cap is hit, and the drain terminates.
  World w = MakeDiskWorld(IoMode::kFifoSync, /*cache_pages=*/16);
  w.plan->FailNextWrites(1 << 20);  // effectively permanent
  WriteFile(w, "/f", 32 * kPageSize);
  w.kernel->FlushAllDirty();
  EXPECT_GT(w.kernel->stats().writeback_lost, 0);
}

// ---- SLEDs / picker degradation ----

TEST(FaultSledsTest, DownServerTimesOutSyscallsAndBalloonsSleds) {
  KernelConfig config;
  config.cache.capacity_pages = 1024;
  config.min_readahead_pages = 1;
  config.max_readahead_pages = 1;
  SimKernel kernel(config);
  auto fs_owned = std::make_unique<RemoteFs>("nfs2", RemoteFsConfig{});
  RemoteFs* fs = fs_owned.get();
  ASSERT_TRUE(kernel.Mount("/", std::move(fs_owned)).ok());
  Process& proc = kernel.CreateProcess("test");

  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  fs->server().disk().InjectFaults(plan);
  plan->AttachClock(&kernel.clock());

  const int fd = kernel.Create(proc, "/f").value();
  const std::string data(16 * kPageSize, 'n');
  ASSERT_TRUE(kernel.Write(proc, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(kernel.Fsync(proc, fd).ok());
  kernel.DropCaches();

  plan->AddDownWindow(kernel.clock().Now(), kernel.clock().Now() + Seconds(60));
  // Syscalls needing the server fail like an interrupted NFS hard mount.
  EXPECT_EQ(kernel.Fstat(proc, fd).error(), Err::kTimedOut);
  std::vector<char> buf(kPageSize);
  ASSERT_TRUE(kernel.Lseek(proc, fd, 0, Whence::kSet).ok());
  EXPECT_EQ(kernel.Read(proc, fd, std::span<char>(buf.data(), buf.size())).error(),
            Err::kTimedOut);
  // SLEDs report the level as unreachable with a ballooned latency.
  const SledVector sleds = kernel.IoctlSledsGet(proc, fd).value();
  ASSERT_FALSE(sleds.empty());
  for (const Sled& s : sleds) {
    EXPECT_TRUE(s.unavailable);
    EXPECT_EQ(s.latency, kernel.config().fault.unavailable_latency_s);
  }
  // Window over: everything recovers with no residue.
  kernel.clock().Advance(Seconds(120));
  EXPECT_TRUE(kernel.Fstat(proc, fd).ok());
  ASSERT_TRUE(kernel.Lseek(proc, fd, 0, Whence::kSet).ok());
  EXPECT_TRUE(kernel.Read(proc, fd, std::span<char>(buf.data(), buf.size())).ok());
  const SledVector healthy = kernel.IoctlSledsGet(proc, fd).value();
  for (const Sled& s : healthy) {
    EXPECT_FALSE(s.unavailable);
  }
}

TEST(FaultSledsTest, PickerPrunesUnavailableSectionsOnRefresh) {
  KernelConfig config;
  config.cache.capacity_pages = 1024;
  config.min_readahead_pages = 1;
  config.max_readahead_pages = 1;
  SimKernel kernel(config);
  auto fs_owned = std::make_unique<RemoteFs>("nfs2", RemoteFsConfig{});
  RemoteFs* fs = fs_owned.get();
  ASSERT_TRUE(kernel.Mount("/", std::move(fs_owned)).ok());
  Process& proc = kernel.CreateProcess("test");
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  fs->server().disk().InjectFaults(plan);
  plan->AttachClock(&kernel.clock());

  const int64_t file_pages = 64;
  {
    const int fd = kernel.Create(proc, "/f").value();
    const std::string data(static_cast<size_t>(file_pages * kPageSize), 'p');
    ASSERT_TRUE(kernel.Write(proc, fd, std::span<const char>(data.data(), data.size())).ok());
    ASSERT_TRUE(kernel.Close(proc, fd).ok());
  }
  kernel.DropCaches();

  // Make the first 16 pages resident, then build a refresh-every-pick picker.
  const int fd = kernel.Open(proc, "/f").value();
  std::vector<char> buf(16 * kPageSize);
  ASSERT_TRUE(kernel.Read(proc, fd, std::span<char>(buf.data(), buf.size())).ok());
  PickerOptions opts;
  opts.preferred_chunk_bytes = 16 * kPageSize;
  opts.refresh_every_n_picks = 1;
  opts.prune_unavailable = true;
  auto picker = SledsPicker::Create(kernel, proc, fd, opts).value();

  // Server drops while the picker is mid-plan.
  plan->AddDownWindow(kernel.clock().Now(), kernel.clock().Now() + Seconds(3600));

  // First pick: the resident (memory-level) section — lowest latency.
  const auto p1 = picker->NextRead().value();
  EXPECT_EQ(p1.offset, 0);
  EXPECT_EQ(p1.length, 16 * kPageSize);
  // Second pick refreshes, sees the remaining sections unreachable, prunes
  // them, and finishes instead of advising a read that would time out.
  const auto p2 = picker->NextRead().value();
  EXPECT_EQ(p2.length, 0);
  EXPECT_TRUE(picker->done());
  EXPECT_EQ(picker->pruned_bytes(), (file_pages - 16) * kPageSize);
}

TEST(FaultPlanTest, OverlappingWindowsComposeInHealthAndJudge) {
  SimClock clock;
  FaultPlan plan(FaultPlanConfig{});
  plan.AttachClock(&clock);
  const TimePoint t0 = clock.Now();
  plan.AddSlowWindow(t0, t0 + Seconds(100), 3.0);
  plan.AddGcWindow(t0, t0 + Seconds(100), Milliseconds(20), 0.3);
  plan.AddGcWindow(t0, t0 + Seconds(100), Milliseconds(10), 0.9);

  // All open windows report together: the worst slowdown, the worst stall,
  // the sum-capped duty.
  DeviceHealth h = plan.Health();
  EXPECT_FALSE(h.unavailable);
  EXPECT_DOUBLE_EQ(h.latency_factor, 3.0);
  EXPECT_DOUBLE_EQ(h.gc_stall_s, 0.020);
  EXPECT_DOUBLE_EQ(h.gc_duty, 1.0);  // 0.3 + 0.9, capped

  // A down window opening while the slow window is active must surface in
  // Health *and* reject ops in Judge, even though it is not the first active
  // window in registration order.
  plan.AddDownWindow(t0, t0 + Seconds(50));
  h = plan.Health();
  EXPECT_TRUE(h.unavailable);
  EXPECT_DOUBLE_EQ(h.latency_factor, 3.0);
  EXPECT_EQ(plan.Judge(false, 0, kPageSize), Err::kUnavailable);

  // Past the down window, the slow + GC composite remains.
  clock.Advance(Seconds(60));
  h = plan.Health();
  EXPECT_FALSE(h.unavailable);
  EXPECT_DOUBLE_EQ(h.latency_factor, 3.0);
  EXPECT_DOUBLE_EQ(h.gc_duty, 1.0);
  EXPECT_EQ(plan.Judge(false, 0, kPageSize), Err::kOk);
}

TEST(FaultSledsTest, TapeWindowsInflateTapeLevelSleds) {
  // A fault window on a tape cartridge must flow through HsmFs::LevelHealth
  // into the tape-level SLEDs (it used to be dropped: the tape levels always
  // reported healthy).
  KernelConfig config;
  config.cache.capacity_pages = 1024;
  SimKernel kernel(config);
  HsmFsConfig hc;
  hc.num_tapes = 2;
  auto fs_owned = std::make_unique<HsmFs>("hsm", hc);
  HsmFs* fs = fs_owned.get();
  ASSERT_TRUE(kernel.Mount("/", std::move(fs_owned)).ok());
  Process& proc = kernel.CreateProcess("test");

  const int64_t file_bytes = 64 * kPageSize;
  {
    const int fd = kernel.Create(proc, "/f").value();
    const std::string data(static_cast<size_t>(file_bytes), 't');
    ASSERT_TRUE(kernel.Write(proc, fd, std::span<const char>(data.data(), data.size())).ok());
    ASSERT_TRUE(kernel.Close(proc, fd).ok());
  }
  kernel.FlushAllDirty();
  const InodeNum ino = kernel.Stat(proc, "/f").value().ino;
  ASSERT_TRUE(fs->Migrate(ino).ok());  // only copy now lives on tape
  kernel.DropCaches();

  const int fd = kernel.Open(proc, "/f").value();
  const SledVector baseline = kernel.IoctlSledsGet(proc, fd).value();
  ASSERT_FALSE(baseline.empty());
  EXPECT_FALSE(baseline.front().unavailable);

  // Slow window on the cartridge holding the file: the tape-level estimate
  // must inflate by the window's factor.
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  fs->changer().tape(fs->TapeOf(ino)).InjectFaults(plan);
  plan->AttachClock(&kernel.clock());
  const TimePoint now = kernel.clock().Now();
  plan->AddSlowWindow(now, now + Seconds(100), 4.0);
  const SledVector slow = kernel.IoctlSledsGet(proc, fd).value();
  ASSERT_EQ(slow.size(), baseline.size());
  EXPECT_DOUBLE_EQ(slow.front().latency, 4.0 * baseline.front().latency);
  EXPECT_FALSE(slow.front().unavailable);

  // Down window: the tape level must go unavailable with ballooned latency.
  plan->AddDownWindow(now, now + Seconds(100));
  const SledVector down = kernel.IoctlSledsGet(proc, fd).value();
  EXPECT_TRUE(down.front().unavailable);
  EXPECT_EQ(down.front().latency, kernel.config().fault.unavailable_latency_s);

  // Both windows closed: healthy estimates return.
  kernel.clock().Advance(Seconds(200));
  const SledVector healed = kernel.IoctlSledsGet(proc, fd).value();
  EXPECT_FALSE(healed.front().unavailable);
  EXPECT_DOUBLE_EQ(healed.front().latency, baseline.front().latency);
}

TEST(FaultSledsTest, PickerPrunedBytesAccumulateAcrossRefreshes) {
  // Two tiers striped into one file; each tier goes down in turn. The bytes
  // pruned on the first refresh must still be counted after the second —
  // pruned_bytes accumulates over the picker's lifetime and resets only on a
  // full plan build.
  KernelConfig config;
  config.cache.capacity_pages = 1024;
  SimKernel kernel(config);
  TieredFsConfig tc;
  tc.stripe_pages = 8;
  DiskDeviceConfig dc0;
  dc0.seed = 11;
  DiskDeviceConfig dc1;
  dc1.seed = 12;
  auto fs_owned = std::make_unique<TieredFs>("tiered", std::make_unique<DiskDevice>(dc0, "t0"),
                                             std::make_unique<DiskDevice>(dc1, "t1"), tc);
  TieredFs* fs = fs_owned.get();
  ASSERT_TRUE(kernel.Mount("/", std::move(fs_owned)).ok());
  Process& proc = kernel.CreateProcess("test");

  const int64_t file_pages = 64;  // 8 stripes: even on tier 0, odd on tier 1
  {
    const int fd = kernel.Create(proc, "/f").value();
    const std::string data(static_cast<size_t>(file_pages * kPageSize), 's');
    ASSERT_TRUE(kernel.Write(proc, fd, std::span<const char>(data.data(), data.size())).ok());
    ASSERT_TRUE(kernel.Close(proc, fd).ok());
  }
  kernel.FlushAllDirty();
  kernel.DropCaches();

  const int fd = kernel.Open(proc, "/f").value();
  PickerOptions opts;
  opts.preferred_chunk_bytes = tc.stripe_pages * kPageSize;
  opts.refresh_every_n_picks = 1;
  opts.prune_unavailable = true;
  auto picker = SledsPicker::Create(kernel, proc, fd, opts).value();
  EXPECT_EQ(picker->pruned_bytes(), 0);

  auto down = [&](int tier) {
    auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
    fs->tier(tier).InjectFaults(plan);
    plan->AttachClock(&kernel.clock());
    plan->AddDownWindow(kernel.clock().Now(), kernel.clock().Now() + Seconds(3600));
  };

  // Pick 1 (no refresh yet): stripe 0, on tier 0. Then tier 0 goes down.
  const auto p1 = picker->NextRead().value();
  EXPECT_EQ(p1.offset, 0);
  down(0);
  // Pick 2 refreshes: the remaining tier-0 stripes (2, 4, 6) are pruned.
  const auto p2 = picker->NextRead().value();
  EXPECT_EQ(p2.offset, tc.stripe_pages * kPageSize);  // stripe 1, tier 1
  const int64_t pruned_after_first = picker->pruned_bytes();
  EXPECT_EQ(pruned_after_first, 3 * tc.stripe_pages * kPageSize);
  // Tier 1 goes down too; pick 3 refreshes, prunes the rest, and finishes.
  down(1);
  const auto p3 = picker->NextRead().value();
  EXPECT_EQ(p3.length, 0);
  EXPECT_TRUE(picker->done());
  // Cumulative: stripes 2, 4, 6 (tier 0) + 3, 5, 7 (tier 1); the regression
  // was forgetting the first refresh's bytes here.
  EXPECT_EQ(picker->pruned_bytes(), pruned_after_first + 3 * tc.stripe_pages * kPageSize);
}

}  // namespace
}  // namespace sled
