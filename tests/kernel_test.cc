// Tests for SimKernel: syscalls, cache integration, readahead, fault
// accounting, writeback, and the SLEDs ioctls.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "src/device/disk_device.h"
#include "src/fs/extent_file_system.h"
#include "src/fs/hsm_fs.h"
#include "src/kernel/sim_kernel.h"

namespace sled {
namespace {

KernelConfig SmallKernelConfig(int64_t cache_pages = 64) {
  KernelConfig config;
  config.cache.capacity_pages = cache_pages;
  return config;
}

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
};

World MakeWorld(int64_t cache_pages = 64) {
  World w;
  w.kernel = std::make_unique<SimKernel>(SmallKernelConfig(cache_pages));
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

void WriteFile(SimKernel& k, Process& p, const std::string& path, const std::string& data) {
  const int fd = k.Create(p, path).value();
  ASSERT_TRUE(k.Write(p, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(k.Close(p, fd).ok());
}

std::string ReadFile(SimKernel& k, Process& p, const std::string& path) {
  const int fd = k.Open(p, path).value();
  std::string out;
  char buf[8192];
  while (true) {
    const int64_t n = k.Read(p, fd, std::span<char>(buf, sizeof(buf))).value();
    if (n == 0) {
      break;
    }
    out.append(buf, static_cast<size_t>(n));
  }
  EXPECT_TRUE(k.Close(p, fd).ok());
  return out;
}

TEST(KernelTest, WriteReadRoundTrip) {
  World w = MakeWorld();
  const std::string payload = "The quick brown fox\njumps over the lazy dog\n";
  WriteFile(*w.kernel, *w.proc, "/f.txt", payload);
  EXPECT_EQ(ReadFile(*w.kernel, *w.proc, "/f.txt"), payload);
  EXPECT_EQ(w.kernel->Stat(*w.proc, "/f.txt").value().size,
            static_cast<int64_t>(payload.size()));
}

TEST(KernelTest, FdErrors) {
  World w = MakeWorld();
  char buf[16];
  EXPECT_EQ(w.kernel->Read(*w.proc, 42, std::span<char>(buf, sizeof(buf))).error(), Err::kBadF);
  EXPECT_EQ(w.kernel->Close(*w.proc, 42).error(), Err::kBadF);
  EXPECT_EQ(w.kernel->Open(*w.proc, "/missing").error(), Err::kNoEnt);
  ASSERT_TRUE(w.kernel->vfs().CreateDir("/d").ok());
  EXPECT_EQ(w.kernel->Open(*w.proc, "/d").error(), Err::kIsDir);
}

TEST(KernelTest, LseekWhence) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f", std::string(100, 'x'));
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  EXPECT_EQ(w.kernel->Lseek(*w.proc, fd, 10, Whence::kSet).value(), 10);
  EXPECT_EQ(w.kernel->Lseek(*w.proc, fd, 5, Whence::kCur).value(), 15);
  EXPECT_EQ(w.kernel->Lseek(*w.proc, fd, -20, Whence::kEnd).value(), 80);
  EXPECT_EQ(w.kernel->Lseek(*w.proc, fd, -200, Whence::kEnd).error(), Err::kInval);
}

TEST(KernelTest, ColdReadFaultsWarmReadHits) {
  World w = MakeWorld(/*cache_pages=*/256);
  const std::string data(64 * kPageSize, 'd');
  WriteFile(*w.kernel, *w.proc, "/big", data);
  w.kernel->DropCaches();

  Process& p = w.kernel->CreateProcess("reader");
  (void)ReadFile(*w.kernel, p, "/big");
  EXPECT_EQ(p.stats().major_faults, 64);  // every page from the device

  Process& p2 = w.kernel->CreateProcess("reader2");
  (void)ReadFile(*w.kernel, p2, "/big");
  EXPECT_EQ(p2.stats().major_faults, 0);  // warm cache
  EXPECT_GT(p2.stats().minor_faults, 0);
  EXPECT_LT(p2.stats().elapsed(), p.stats().elapsed());
}

TEST(KernelTest, ReadAheadWindowGrowsForSequentialAccess) {
  World w = MakeWorld(/*cache_pages=*/512);
  const std::string data(256 * kPageSize, 'd');
  WriteFile(*w.kernel, *w.proc, "/big", data);
  w.kernel->DropCaches();
  Process& p = w.kernel->CreateProcess("seq");
  (void)ReadFile(*w.kernel, p, "/big");
  // Sequential streaming: most pages arrive via readahead, so there are far
  // fewer fault *events* than pages (window grows 4,8,16,32,32...).
  EXPECT_EQ(p.stats().major_faults, 256);
  EXPECT_GT(w.kernel->stats().readahead_pages, 150);
}

TEST(KernelTest, RandomAccessResetsReadAhead) {
  World w = MakeWorld(/*cache_pages=*/512);
  const std::string data(256 * kPageSize, 'd');
  WriteFile(*w.kernel, *w.proc, "/big", data);
  w.kernel->DropCaches();
  w.kernel->stats();  // (stats are cumulative; use a fresh reader)
  Process& p = w.kernel->CreateProcess("rand");
  const int fd = w.kernel->Open(p, "/big").value();
  char buf[64];
  // Stride backwards so no access is sequential.
  for (int64_t page = 248; page >= 0; page -= 8) {
    ASSERT_TRUE(w.kernel->Lseek(p, fd, page * kPageSize, Whence::kSet).ok());
    ASSERT_TRUE(w.kernel->Read(p, fd, std::span<char>(buf, sizeof(buf))).ok());
  }
  ASSERT_TRUE(w.kernel->Close(p, fd).ok());
  // Each miss uses the minimum window (4 pages): 32 events * 4 pages.
  EXPECT_EQ(p.stats().major_faults, 32 * 4);
}

TEST(KernelTest, CacheSmallerThanFileEvicts) {
  World w = MakeWorld(/*cache_pages=*/32);
  const std::string data(64 * kPageSize, 'd');
  WriteFile(*w.kernel, *w.proc, "/big", data);
  w.kernel->DropCaches();
  Process& p = w.kernel->CreateProcess("reader");
  (void)ReadFile(*w.kernel, p, "/big");
  EXPECT_LE(w.kernel->cache().size_pages(), 32);
  // Second linear pass also faults everything: the Figure 3 pathology.
  Process& p2 = w.kernel->CreateProcess("reader2");
  (void)ReadFile(*w.kernel, p2, "/big");
  EXPECT_EQ(p2.stats().major_faults, 64);
}

TEST(KernelTest, DirtyPagesWriteBackOnEviction) {
  World w = MakeWorld(/*cache_pages=*/16);
  // Write 64 pages through a 16-page cache: most dirty pages must be evicted
  // and written back (in batches).
  const std::string data(64 * kPageSize, 'w');
  WriteFile(*w.kernel, *w.proc, "/out", data);
  (void)w.kernel->FlushAllDirty();
  EXPECT_EQ(w.kernel->stats().pages_written_back, 64);
  // Contents are intact after all that.
  EXPECT_EQ(ReadFile(*w.kernel, *w.proc, "/out"), data);
}

TEST(KernelTest, FsyncFlushesDirtyPages) {
  World w = MakeWorld();
  const std::string data(8 * kPageSize, 'w');
  const int fd = w.kernel->Create(*w.proc, "/out").value();
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  EXPECT_EQ(w.kernel->stats().pages_written_back, 0);
  ASSERT_TRUE(w.kernel->Fsync(*w.proc, fd).ok());
  EXPECT_EQ(w.kernel->stats().pages_written_back, 8);
  // Pages stay resident and clean: a second fsync writes nothing.
  ASSERT_TRUE(w.kernel->Fsync(*w.proc, fd).ok());
  EXPECT_EQ(w.kernel->stats().pages_written_back, 8);
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(KernelTest, PartialPageOverwriteTriggersReadModifyWrite) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f", std::string(4 * kPageSize, 'a'));
  w.kernel->DropCaches();
  Process& p = w.kernel->CreateProcess("writer");
  const int fd = w.kernel->Open(p, "/f").value();
  ASSERT_TRUE(w.kernel->Lseek(p, fd, 100, Whence::kSet).ok());
  const std::string small = "xyz";
  ASSERT_TRUE(w.kernel->Write(p, fd, std::span<const char>(small.data(), small.size())).ok());
  EXPECT_EQ(p.stats().major_faults, 1);  // the read-modify-write fetch
  ASSERT_TRUE(w.kernel->Close(p, fd).ok());
  const std::string out = ReadFile(*w.kernel, p, "/f");
  EXPECT_EQ(out.substr(100, 3), "xyz");
  EXPECT_EQ(out[99], 'a');
  EXPECT_EQ(out[103], 'a');
}

TEST(KernelTest, FullPageOverwriteAvoidsRead) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f", std::string(4 * kPageSize, 'a'));
  w.kernel->DropCaches();
  Process& p = w.kernel->CreateProcess("writer");
  const int fd = w.kernel->Open(p, "/f").value();
  const std::string page(kPageSize, 'b');
  ASSERT_TRUE(w.kernel->Write(p, fd, std::span<const char>(page.data(), page.size())).ok());
  EXPECT_EQ(p.stats().major_faults, 0);  // no RMW needed
  ASSERT_TRUE(w.kernel->Close(p, fd).ok());
}

TEST(KernelTest, CreateTruncatesExisting) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f", "old contents");
  const int fd = w.kernel->Create(*w.proc, "/f").value();
  EXPECT_EQ(w.kernel->Fstat(*w.proc, fd).value().size, 0);
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(KernelTest, UnlinkDropsCachedPages) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f", std::string(8 * kPageSize, 'a'));
  EXPECT_GT(w.kernel->cache().size_pages(), 0);
  ASSERT_TRUE(w.kernel->Unlink(*w.proc, "/f").ok());
  EXPECT_EQ(w.kernel->cache().size_pages(), 0);
}

TEST(KernelTest, SledsGetCoalescesAndCoversFile) {
  World w = MakeWorld(/*cache_pages=*/32);
  const int64_t size = 64 * kPageSize + 123;  // ragged tail
  WriteFile(*w.kernel, *w.proc, "/f", std::string(size, 'a'));
  w.kernel->DropCaches();
  Process& p = w.kernel->CreateProcess("scanner");
  const int fd = w.kernel->Open(p, "/f").value();

  // Cold: one SLED covering the whole file at disk characteristics.
  SledVector cold = w.kernel->IoctlSledsGet(p, fd).value();
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_EQ(cold[0].offset, 0);
  EXPECT_EQ(cold[0].length, size);
  EXPECT_NEAR(cold[0].latency, 0.018, 0.002);

  // Touch the middle 8 pages, then re-scan: three SLEDs (disk, memory, disk).
  char buf[1];
  for (int64_t page = 20; page < 28; ++page) {
    ASSERT_TRUE(w.kernel->Lseek(p, fd, page * kPageSize, Whence::kSet).ok());
    ASSERT_TRUE(w.kernel->Read(p, fd, std::span<char>(buf, 1)).ok());
  }
  SledVector warm = w.kernel->IoctlSledsGet(p, fd).value();
  ASSERT_GE(warm.size(), 3u);
  // Coverage invariant: contiguous, non-overlapping, exactly the file.
  int64_t covered = 0;
  for (const Sled& s : warm) {
    EXPECT_EQ(s.offset, covered);
    covered += s.length;
  }
  EXPECT_EQ(covered, size);
  // The middle SLED is memory-level with tiny latency.
  bool found_memory = false;
  for (const Sled& s : warm) {
    if (s.level == kMemoryLevel) {
      found_memory = true;
      EXPECT_LT(s.latency, 1e-5);
    }
  }
  EXPECT_TRUE(found_memory);
  ASSERT_TRUE(w.kernel->Close(p, fd).ok());
}

TEST(KernelTest, SledsGetOnEmptyFileIsEmpty) {
  World w = MakeWorld();
  const int fd = w.kernel->Create(*w.proc, "/empty").value();
  EXPECT_TRUE(w.kernel->IoctlSledsGet(*w.proc, fd).value().empty());
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(KernelTest, SledsFillOverridesTableRow) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f", std::string(4 * kPageSize, 'a'));
  w.kernel->DropCaches();
  // Level 1 is the disk (level 0 = memory). Install measured values.
  ASSERT_TRUE(w.kernel
                  ->IoctlSledsFill(*w.proc, 1,
                                   DeviceCharacteristics{Milliseconds(25), 5.0e6, {}})
                  .ok());
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  SledVector sleds = w.kernel->IoctlSledsGet(*w.proc, fd).value();
  ASSERT_EQ(sleds.size(), 1u);
  EXPECT_NEAR(sleds[0].latency, 0.025, 1e-9);
  EXPECT_NEAR(sleds[0].bandwidth, 5.0e6, 1.0);
  EXPECT_EQ(w.kernel->IoctlSledsFill(*w.proc, 99, DeviceCharacteristics{}).error(), Err::kInval);
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(KernelTest, ElapsedTimeAdvancesWithClock) {
  World w = MakeWorld();
  const TimePoint before = w.kernel->clock().Now();
  WriteFile(*w.kernel, *w.proc, "/f", std::string(16 * kPageSize, 'a'));
  (void)ReadFile(*w.kernel, *w.proc, "/f");
  const TimePoint after = w.kernel->clock().Now();
  EXPECT_GT((after - before).nanos(), 0);
  EXPECT_GT(w.proc->stats().elapsed().nanos(), 0);
  EXPECT_GT(w.proc->stats().syscalls, 0);
}

TEST(KernelTest, SledsScanChargesCpuTime) {
  World w = MakeWorld(/*cache_pages=*/4096);
  WriteFile(*w.kernel, *w.proc, "/f", std::string(1024 * kPageSize, 'a'));
  Process& p = w.kernel->CreateProcess("scanner");
  const int fd = w.kernel->Open(p, "/f").value();
  const Duration cpu_before = p.stats().cpu_time;
  (void)w.kernel->IoctlSledsGet(p, fd).value();
  const Duration scan_cost = p.stats().cpu_time - cpu_before;
  // 1024 pages at 150 ns plus syscall overhead.
  EXPECT_GT(scan_cost.ToMicros(), 100.0);
  ASSERT_TRUE(w.kernel->Close(p, fd).ok());
}

TEST(KernelTest, TruncateDropsTailPages) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f", std::string(8 * kPageSize, 'a'));
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  ASSERT_TRUE(w.kernel->Ftruncate(*w.proc, fd, 2 * kPageSize).ok());
  EXPECT_EQ(w.kernel->Fstat(*w.proc, fd).value().size, 2 * kPageSize);
  for (int64_t page : w.kernel->cache().ResidentPagesOf(
           Vfs::MakeFileId(1, w.kernel->vfs().Resolve("/f").value().ino))) {
    EXPECT_LT(page, 2);
  }
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

}  // namespace
}  // namespace sled

namespace sled {
namespace {

TEST(KernelTest, ReadAtEofAndPastEof) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f", "abc");
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  char buf[8];
  ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, 3, Whence::kSet).ok());
  EXPECT_EQ(w.kernel->Read(*w.proc, fd, std::span<char>(buf, 8)).value(), 0);
  ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, 100, Whence::kSet).ok());  // legal sparse seek
  EXPECT_EQ(w.kernel->Read(*w.proc, fd, std::span<char>(buf, 8)).value(), 0);
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(KernelTest, SparseWriteThroughSeek) {
  World w = MakeWorld();
  const int fd = w.kernel->Create(*w.proc, "/sparse").value();
  ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, 2 * kPageSize + 10, Whence::kSet).ok());
  const std::string tail = "tail";
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(tail.data(), tail.size())).ok());
  EXPECT_EQ(w.kernel->Fstat(*w.proc, fd).value().size, 2 * kPageSize + 14);
  // The hole reads back as zeros.
  ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, kPageSize, Whence::kSet).ok());
  char c = 'x';
  ASSERT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(&c, 1)).ok());
  EXPECT_EQ(c, '\0');
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(KernelTest, WritebackBatchesFlushAtThreshold) {
  KernelConfig config;
  config.cache.capacity_pages = 16;
  config.writeback_batch_pages = 8;
  config.io.mode = IoMode::kFifoSync;  // asserts the synchronous bdflush model
  auto kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  ASSERT_TRUE(kernel->Mount("/", std::move(fs)).ok());
  Process& p = kernel->CreateProcess("writer");
  // Write 64 dirty pages through a 16-page cache: evictions queue dirty
  // pages; each time 8 accumulate they flush.
  const std::string data(64 * kPageSize, 'w');
  const int fd = kernel->Create(p, "/out").value();
  ASSERT_TRUE(kernel->Write(p, fd, std::span<const char>(data.data(), data.size())).ok());
  EXPECT_GE(kernel->stats().pages_written_back, 40);  // most batches already flushed
  ASSERT_TRUE(kernel->Close(p, fd).ok());
}

TEST(KernelTest, SledsGetAcrossMultiLevelFs) {
  // An HSM file half-staged is impossible (whole-file staging), but a file
  // on a mounted tape vs offline tape shows distinct levels via the table.
  KernelConfig config;
  config.cache.capacity_pages = 64;
  auto kernel = std::make_unique<SimKernel>(config);
  HsmFsConfig hc;
  hc.staging_disk.capacity_bytes = 1LL << 30;
  auto hsm_fs = std::make_unique<HsmFs>("hsm", hc);
  HsmFs* hsm = hsm_fs.get();
  ASSERT_TRUE(kernel->Mount("/", std::move(hsm_fs)).ok());
  Process& p = kernel->CreateProcess("user");
  const int fd = kernel->Create(p, "/f").value();
  const std::string data(8 * kPageSize, 'h');
  ASSERT_TRUE(kernel->Write(p, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(kernel->Close(p, fd).ok());
  const InodeNum ino = kernel->vfs().Resolve("/f").value().ino;
  ASSERT_TRUE(hsm->Migrate(ino).ok());
  kernel->DropCaches();

  const int fd2 = kernel->Open(p, "/f").value();
  SledVector sleds = kernel->IoctlSledsGet(p, fd2).value();
  ASSERT_EQ(sleds.size(), 1u);
  // Mounted tape right after migration: the "tape-near" row (level index 2
  // in the table: memory=0, hsm-disk=1, tape-near=2, tape-far=3).
  EXPECT_EQ(kernel->sleds_table().row(sleds[0].level).name, "tape-near");
  EXPECT_GT(sleds[0].latency, 1.0);
  ASSERT_TRUE(kernel->Close(p, fd2).ok());
}

TEST(KernelTest, MinorAndMajorFaultAccountingDisjoint) {
  World w = MakeWorld(/*cache_pages=*/256);
  WriteFile(*w.kernel, *w.proc, "/f", std::string(32 * kPageSize, 'a'));
  w.kernel->DropCaches();
  Process& p = w.kernel->CreateProcess("reader");
  (void)ReadFile(*w.kernel, p, "/f");
  EXPECT_EQ(p.stats().major_faults, 32);
  const int64_t minor_first = p.stats().minor_faults;
  (void)ReadFile(*w.kernel, p, "/f");
  EXPECT_EQ(p.stats().major_faults, 32);  // unchanged
  EXPECT_GT(p.stats().minor_faults, minor_first);
}

TEST(KernelTest, IoTimeAndCpuTimeSeparated) {
  World w = MakeWorld(/*cache_pages=*/256);
  WriteFile(*w.kernel, *w.proc, "/f", std::string(32 * kPageSize, 'a'));
  w.kernel->DropCaches();
  Process& cold = w.kernel->CreateProcess("cold");
  (void)ReadFile(*w.kernel, cold, "/f");
  EXPECT_GT(cold.stats().io_time.nanos(), 0);
  Process& warm = w.kernel->CreateProcess("warm");
  (void)ReadFile(*w.kernel, warm, "/f");
  EXPECT_EQ(warm.stats().io_time.nanos(), 0);  // pure cache: no device time
  EXPECT_GT(warm.stats().cpu_time.nanos(), 0);
}

TEST(KernelTest, WritebackFlushDeduplicatesRequeuedPages) {
  // A page dirtied, evicted, re-dirtied, and evicted again sits in the
  // writeback queue twice; a flush must write it once.
  KernelConfig config;
  config.cache.capacity_pages = 4;
  config.writeback_batch_pages = 256;  // no flush until FlushAllDirty
  config.io.mode = IoMode::kFifoSync;  // asserts the synchronous bdflush model
  auto kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  ASSERT_TRUE(kernel->Mount("/", std::move(fs)).ok());
  Process& p = kernel->CreateProcess("writer");
  const std::string page(kPageSize, 'w');
  const int fd = kernel->Create(p, "/f").value();
  auto write_pages = [&](int64_t first, int n) {
    ASSERT_TRUE(kernel->Lseek(p, fd, first * kPageSize, Whence::kSet).ok());
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(kernel->Write(p, fd, std::span<const char>(page.data(), page.size())).ok());
    }
  };
  write_pages(0, 6);  // pages 4,5 evict dirty pages 0,1 -> queue [0,1]
  write_pages(0, 1);  // page 0 dirty again, evicts 2 -> queue [0,1,2]
  write_pages(6, 4);  // evicts 3,4,5 and page 0 a second time -> queue [0,1,2,3,4,5,0]
  const int64_t queued = kernel->obs().metrics().counter("kernel.writeback_queued");
  EXPECT_EQ(queued, 7);
  (void)kernel->FlushAllDirty();
  // The queue flush wrote 6 unique pages, not 7; the 4 still-resident dirty
  // pages (6..9) flushed directly.
  EXPECT_EQ(kernel->obs().metrics().counter("kernel.writeback_pages"), 6);
  EXPECT_EQ(kernel->stats().pages_written_back, 10);
  ASSERT_TRUE(kernel->Close(p, fd).ok());
}

TEST(KernelTest, SynchronousFlushTimeIsChargedToTriggeringProcess) {
  // With one process driving everything, every nanosecond the clock advances
  // must land on that process's cpu or io account — including the device time
  // of synchronous writeback flushes. An uncharged flush breaks the equality.
  KernelConfig config;
  config.cache.capacity_pages = 16;
  config.writeback_batch_pages = 8;
  config.io.mode = IoMode::kFifoSync;  // asserts the synchronous bdflush model
  auto kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  ASSERT_TRUE(kernel->Mount("/", std::move(fs)).ok());
  Process& p = kernel->CreateProcess("writer");
  const std::string data(64 * kPageSize, 'w');
  const int fd = kernel->Create(p, "/out").value();
  ASSERT_TRUE(kernel->Write(p, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(kernel->Close(p, fd).ok());
  EXPECT_GT(kernel->obs().metrics().counter("kernel.writeback_flushes"), 0);
  EXPECT_EQ(kernel->clock().Now().since_epoch().nanos(), p.stats().elapsed().nanos());
}

TEST(KernelTest, ReadAndMmapReadShareReadaheadPlanning) {
  // The two demand-paging paths use one readahead planner: identical access
  // patterns produce identical fault counts and readahead volume.
  auto run = [](bool use_mmap) {
    World w = MakeWorld(/*cache_pages=*/256);
    const std::string data(64 * kPageSize, 'm');
    WriteFile(*w.kernel, *w.proc, "/f", data);
    w.kernel->DropCaches();
    Process& p = w.kernel->CreateProcess("reader");
    if (use_mmap) {
      // Touch the mapping in the same 8 KiB strides ReadFile uses, so both
      // paths present identical demand patterns to the planner.
      const int fd = w.kernel->Open(p, "/f").value();
      for (int64_t off = 0; off < static_cast<int64_t>(data.size()); off += 8192) {
        EXPECT_TRUE(w.kernel->MmapRead(p, fd, off, 8192).ok());
      }
      EXPECT_TRUE(w.kernel->Close(p, fd).ok());
    } else {
      EXPECT_EQ(ReadFile(*w.kernel, p, "/f"), data);
    }
    return std::tuple(p.stats().major_faults, w.kernel->stats().readahead_pages,
                      w.kernel->stats().pages_paged_in);
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(KernelTest, ReadaheadWindowGrowsFromMinAndResetsOnJump) {
  KernelConfig config;
  config.cache.capacity_pages = 256;
  config.min_readahead_pages = 2;
  config.max_readahead_pages = 8;
  auto kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  ASSERT_TRUE(kernel->Mount("/", std::move(fs)).ok());
  Process& p = kernel->CreateProcess("writer");
  WriteFile(*kernel, p, "/f", std::string(64 * kPageSize, 'r'));
  kernel->DropCaches();
  Process& r = kernel->CreateProcess("reader");
  const int fd = kernel->Open(r, "/f").value();
  char c;
  auto read_at = [&](int64_t page) {
    ASSERT_TRUE(kernel->Lseek(r, fd, page * kPageSize, Whence::kSet).ok());
    ASSERT_TRUE(kernel->Read(r, fd, std::span<char>(&c, 1)).ok());
  };
  int64_t before = kernel->stats().pages_paged_in;
  read_at(10);  // first access: minimum window
  EXPECT_EQ(kernel->stats().pages_paged_in - before, 2);
  before = kernel->stats().pages_paged_in;
  read_at(12);  // sequential (lands on last_demand_page): window doubles
  EXPECT_EQ(kernel->stats().pages_paged_in - before, 4);
  before = kernel->stats().pages_paged_in;
  read_at(40);  // jump: window resets to the minimum
  EXPECT_EQ(kernel->stats().pages_paged_in - before, 2);
  ASSERT_TRUE(kernel->Close(r, fd).ok());
}

TEST(KernelTest, SinglePageCacheKernelRefusesSledLocks) {
  World w = MakeWorld(/*cache_pages=*/1);
  WriteFile(*w.kernel, *w.proc, "/f", std::string(kPageSize, 'x'));
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  char c;
  ASSERT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(&c, 1)).ok());
  // The page is resident, but the half-capacity pin bound (1/2 = 0) refuses
  // every pin: the lock succeeds with zero pages pinned.
  EXPECT_EQ(w.kernel->IoctlSledsLock(*w.proc, fd, 0, kPageSize).value(), 0);
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

}  // namespace
}  // namespace sled
