// ReplicatedFs: striped replication over heterogeneous devices, SLED-aware
// replica routing, degraded reads/writes under fault windows, and background
// re-sync (DESIGN.md §13).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/device/disk_device.h"
#include "src/device/fault.h"
#include "src/device/ssd_device.h"
#include "src/kernel/sim_kernel.h"
#include "src/replica/replicated_fs.h"
#include "src/sleds/picker.h"

namespace sled {
namespace {

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
  ReplicatedFs* fs = nullptr;
  uint32_t fs_id = 0;
};

World MakeWorld(std::vector<std::unique_ptr<StorageDevice>> devices, ReplicatedFsConfig rc) {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = 4096;
  w.kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ReplicatedFs>("repl", std::move(devices), rc);
  w.fs = fs.get();
  auto id = w.kernel->Mount("/", std::move(fs));
  EXPECT_TRUE(id.ok());
  w.fs_id = id.value();
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

void WriteFile(World& w, const std::string& path, int64_t size) {
  const int fd = w.kernel->Create(*w.proc, path).value();
  std::string data(static_cast<size_t>(size), 'x');
  for (size_t i = 0; i < data.size(); i += 613) {
    data[i] = static_cast<char>('a' + (i / 613) % 26);
  }
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

// Read the whole file; returns total bytes read, asserting no error.
int64_t ReadAll(World& w, const std::string& path) {
  const int fd = w.kernel->Open(*w.proc, path).value();
  std::vector<char> buf(64 * 1024);
  int64_t total = 0;
  for (;;) {
    auto n = w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size()));
    EXPECT_TRUE(n.ok());
    if (!n.ok() || n.value() == 0) {
      break;
    }
    total += n.value();
  }
  EXPECT_TRUE(w.kernel->Close(*w.proc, fd).ok());
  return total;
}

std::vector<std::unique_ptr<StorageDevice>> IdenticalDisks(int n, uint64_t seed) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  for (int i = 0; i < n; ++i) {
    DiskDeviceConfig dc;
    dc.seed = seed;  // identical seed: rank-equal replicas, identical jitter
    devs.push_back(std::make_unique<DiskDevice>(dc, "disk" + std::to_string(i)));
  }
  return devs;
}

// Acceptance (a): with rank-equal replicas and everyone healthy, replication
// must be *free* in simulated read time — the router always picks replica 0
// (lowest index breaks the tie), whose device sees exactly the access
// sequence a single-device mount would see. Writes charge the slowest of
// identical replicas, i.e. exactly the single device's time. So the whole
// write + flush + cold-read timeline is byte-identical to the oracle.
TEST(ReplicaOracleTest, HealthyReadsMatchSingleDeviceOracle) {
  ReplicatedFsConfig rc;
  rc.stripe_pages = 8;
  World trio = MakeWorld(IdenticalDisks(3, 42), rc);
  World solo = MakeWorld(IdenticalDisks(1, 42), rc);

  const int64_t size = 48 * kPageSize + 1234;  // several stripes + a tail
  for (World* w : {&trio, &solo}) {
    WriteFile(*w, "/data", size);
    w->kernel->FlushAllDirty();
    w->kernel->DropCaches();
  }
  ASSERT_EQ(trio.kernel->clock().Now(), solo.kernel->clock().Now())
      << "write + flush timelines diverged before any read";

  ASSERT_EQ(ReadAll(trio, "/data"), size);
  ASSERT_EQ(ReadAll(solo, "/data"), size);
  EXPECT_EQ(trio.kernel->clock().Now(), solo.kernel->clock().Now());
  EXPECT_EQ(trio.proc->stats().io_time, solo.proc->stats().io_time);
  EXPECT_EQ(trio.fs->rstats().degraded_reads, 0);
  EXPECT_EQ(trio.fs->rstats().degraded_writes, 0);

  // The routed SLEDs advertise one level for the whole (non-resident) file:
  // replica 0.
  trio.kernel->DropCaches();
  const int fd = trio.kernel->Open(*trio.proc, "/data").value();
  const SledVector sleds = trio.kernel->IoctlSledsGet(*trio.proc, fd).value();
  ASSERT_FALSE(sleds.empty());
  const int level0 = trio.kernel->sleds_table().GlobalLevelOf(trio.fs_id, 0).value();
  for (const Sled& s : sleds) {
    EXPECT_EQ(s.level, level0);
  }
}

// Acceptance (b), routing half: an SSD replica inside a GC window keeps the
// better *mean* (the stall is rare) but grows a fat tail; the disk replica
// is slower on average with a bounded p99. A mean-ranked consumer must keep
// routing to the SSD while a p99-ranked one must flip to the disk — both in
// the raw routed SLEDs and in the picker plans built from them.
TEST(ReplicaRoutingTest, RankByP99FlipsRouteAwayFromGcReplica) {
  std::vector<std::unique_ptr<StorageDevice>> devs;
  devs.push_back(std::make_unique<SsdDevice>(SsdDeviceConfig{}, "ssd"));
  devs.push_back(std::make_unique<DiskDevice>(DiskDeviceConfig{}, "disk"));
  ReplicatedFsConfig rc;
  rc.stripe_pages = 8;
  World w = MakeWorld(std::move(devs), rc);

  WriteFile(w, "/data", 32 * kPageSize);
  w.kernel->FlushAllDirty();
  w.kernel->DropCaches();

  const int ssd_level = w.kernel->sleds_table().GlobalLevelOf(w.fs_id, 0).value();
  const int disk_level = w.kernel->sleds_table().GlobalLevelOf(w.fs_id, 1).value();

  // Healthy: the SSD wins on every statistic.
  const int fd = w.kernel->Open(*w.proc, "/data").value();
  const SledVector healthy = w.kernel->IoctlSledsGet(*w.proc, fd, RankBy::kP99).value();
  for (const Sled& s : healthy) {
    EXPECT_EQ(s.level, ssd_level);
  }

  // GC window on the SSD: 5% of ops eat a 200 ms stall. Mean moves by 10 ms
  // (still beating the ~18 ms disk); the p99 absorbs the whole stall and
  // blows past the disk's bounded tail.
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  plan->AttachClock(&w.kernel->clock());
  plan->AddGcWindow(w.kernel->clock().Now(), w.kernel->clock().Now() + Seconds(1000),
                    Milliseconds(200), 0.05);
  w.fs->replica(0).InjectFaults(plan);

  const SledVector by_mean = w.kernel->IoctlSledsGet(*w.proc, fd).value();
  for (const Sled& s : by_mean) {
    EXPECT_EQ(s.level, ssd_level) << "mean-ranked route must stay on the SSD";
  }
  const SledVector by_p99 = w.kernel->IoctlSledsGet(*w.proc, fd, RankBy::kP99).value();
  for (const Sled& s : by_p99) {
    EXPECT_EQ(s.level, disk_level) << "p99-ranked route must flip to the disk";
  }

  // The same flip seen through the pick library: plans disagree about which
  // copy backs the file.
  PickerOptions mean_opts;
  auto mean_picker = SledsPicker::Create(*w.kernel, *w.proc, fd, mean_opts).value();
  PickerOptions p99_opts;
  p99_opts.rank_by = RankBy::kP99;
  auto p99_picker = SledsPicker::Create(*w.kernel, *w.proc, fd, p99_opts).value();
  ASSERT_FALSE(mean_picker->plan().empty());
  ASSERT_FALSE(p99_picker->plan().empty());
  EXPECT_EQ(mean_picker->plan().front().level, ssd_level);
  EXPECT_EQ(p99_picker->plan().front().level, disk_level);

  // The data plane follows its configured statistic (kMean): reads during
  // the GC window still come from the SSD.
  EXPECT_EQ(w.fs->LevelOf(2, 0), 0);
}

// Acceptance (b), fault half: a down window on one replica degrades writes
// (fewer acks, stripes marked stale) and reads (served by the surviving
// copy) without surfacing any error; once the window ends, background
// recovery re-syncs the stale stripes and routing converges back.
TEST(ReplicaFaultTest, OutageDegradesThenRecoveryResyncs) {
  ReplicatedFsConfig rc;
  rc.stripe_pages = 8;
  rc.replication_min = 1;
  World w = MakeWorld(IdenticalDisks(2, 7), rc);

  const int64_t size = 32 * kPageSize;
  WriteFile(w, "/data", size);
  w.kernel->FlushAllDirty();
  w.kernel->DropCaches();

  // Replica 0 goes down for 60 s.
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  plan->AttachClock(&w.kernel->clock());
  plan->AddDownWindow(w.kernel->clock().Now(), w.kernel->clock().Now() + Seconds(60));
  w.fs->replica(0).InjectFaults(plan);

  // Reads during the outage succeed from replica 1 — routing knows replica 0
  // is unreachable, so no error and no failed attempt.
  EXPECT_EQ(ReadAll(w, "/data"), size);
  const int repl1_level = w.kernel->sleds_table().GlobalLevelOf(w.fs_id, 1).value();
  w.kernel->DropCaches();
  const int fd = w.kernel->Open(*w.proc, "/data").value();
  const SledVector degraded = w.kernel->IoctlSledsGet(*w.proc, fd).value();
  for (const Sled& s : degraded) {
    EXPECT_EQ(s.level, repl1_level);
    EXPECT_FALSE(s.unavailable) << "a surviving replica keeps the SLEDs reachable";
  }

  // Writes during the outage succeed degraded: replica 1 acks, replica 0's
  // stripes go stale and queue for recovery.
  WriteFile(w, "/data2", 16 * kPageSize);
  // (Flush time lands on the returned Duration in immediate mode but on the
  // device queue in elevator mode, so only the side effects are asserted.)
  w.kernel->FlushAllDirty();
  EXPECT_GT(w.fs->rstats().failed_writes, 0);
  EXPECT_GT(w.fs->rstats().degraded_writes, 0);
  EXPECT_EQ(w.fs->stale_stripes(), 2);  // 16 pages / 8-page stripes

  // Maintenance inside the window is a no-op: the replica is still down.
  w.kernel->RunMaintenance();
  EXPECT_EQ(w.fs->stale_stripes(), 2);
  EXPECT_EQ(w.fs->rstats().recovered_bytes, 0);

  // Window ends; recovery re-copies the stale stripes from replica 1.
  w.kernel->clock().Advance(Seconds(120));
  const Duration spent = w.kernel->RunMaintenance();
  EXPECT_FALSE(spent.IsZero());
  EXPECT_EQ(w.fs->stale_stripes(), 0);
  EXPECT_EQ(w.fs->rstats().recovered_bytes, 16 * kPageSize);

  // Healed and re-synced: routing converges back to replica 0 (tie-break).
  w.kernel->DropCaches();
  const int repl0_level = w.kernel->sleds_table().GlobalLevelOf(w.fs_id, 0).value();
  const int fd2 = w.kernel->Open(*w.proc, "/data2").value();
  const SledVector resynced = w.kernel->IoctlSledsGet(*w.proc, fd2).value();
  for (const Sled& s : resynced) {
    EXPECT_EQ(s.level, repl0_level);
  }
  EXPECT_EQ(ReadAll(w, "/data2"), 16 * kPageSize);
}

// A replica that errors *without* advertising it (scripted one-shot fault,
// no window for health to report) exercises the read failover path: the read
// succeeds from the runner-up and counts as degraded.
TEST(ReplicaFaultTest, ScriptedReadErrorFailsOverWithoutSurfacing) {
  ReplicatedFsConfig rc;
  rc.stripe_pages = 8;
  World w = MakeWorld(IdenticalDisks(2, 11), rc);

  WriteFile(w, "/data", 8 * kPageSize);
  w.kernel->FlushAllDirty();
  w.kernel->DropCaches();

  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  plan->AttachClock(&w.kernel->clock());
  plan->FailNextReads(1);
  w.fs->replica(0).InjectFaults(plan);

  EXPECT_EQ(ReadAll(w, "/data"), 8 * kPageSize);
  EXPECT_EQ(w.fs->rstats().degraded_reads, 1);
  EXPECT_EQ(w.kernel->stats().io_errors, 0) << "failover must hide the fault from the kernel";
}

// A write that fails on every placed replica fails the run outright once
// acks < replication_min: replication degrades, it does not lie.
TEST(ReplicaFaultTest, WriteFailsWhenAcksFallBelowMinimum) {
  ReplicatedFsConfig rc;
  rc.stripe_pages = 8;
  rc.replication_min = 2;
  World w = MakeWorld(IdenticalDisks(2, 13), rc);

  WriteFile(w, "/data", 8 * kPageSize);
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  plan->AttachClock(&w.kernel->clock());
  plan->AddDownWindow(w.kernel->clock().Now(), w.kernel->clock().Now() + Seconds(60));
  w.fs->replica(1).InjectFaults(plan);

  // One surviving ack < replication_min=2: the flush cannot commit the
  // pages; they stay queued (writeback retry policy), not silently lost.
  w.kernel->FlushAllDirty();
  EXPECT_GT(w.kernel->stats().writeback_retries + w.kernel->stats().writeback_lost, 0);
}

// Hedged reads: with a deadline the straggler always misses (factor 0), the
// second-ranked replica is issued the same read; accounting and the
// min(straggler, deadline + hedge) charge are exercised end to end.
TEST(ReplicaHedgeTest, HedgeIssuesAndNeverChargesMoreThanStraggler) {
  ReplicatedFsConfig rc;
  rc.stripe_pages = 8;
  rc.hedge_reads = true;
  rc.hedge_deadline_factor = 0.0;  // deadline = pure transfer time: always hedge
  World w = MakeWorld(IdenticalDisks(2, 17), rc);

  const int64_t size = 16 * kPageSize;
  WriteFile(w, "/data", size);
  w.kernel->FlushAllDirty();
  w.kernel->DropCaches();

  EXPECT_EQ(ReadAll(w, "/data"), size);
  EXPECT_GT(w.fs->rstats().hedges_issued, 0);
  EXPECT_LE(w.fs->rstats().hedge_wins, w.fs->rstats().hedges_issued);
}

// Shrink-to-zero forgets regions and pending recovery; regrow reallocates.
TEST(ReplicaFsTest, TruncateToZeroDropsStaleState) {
  ReplicatedFsConfig rc;
  rc.stripe_pages = 8;
  World w = MakeWorld(IdenticalDisks(2, 23), rc);

  WriteFile(w, "/data", 16 * kPageSize);
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  plan->AttachClock(&w.kernel->clock());
  plan->AddDownWindow(w.kernel->clock().Now(), w.kernel->clock().Now() + Seconds(60));
  w.fs->replica(1).InjectFaults(plan);
  w.kernel->FlushAllDirty();
  EXPECT_GT(w.fs->stale_stripes(), 0);

  const int fd = w.kernel->Open(*w.proc, "/data").value();
  ASSERT_TRUE(w.kernel->Ftruncate(*w.proc, fd, 0).ok());
  EXPECT_EQ(w.fs->stale_stripes(), 0);
  w.kernel->clock().Advance(Seconds(120));
  EXPECT_TRUE(w.kernel->RunMaintenance().IsZero());

  // Regrow after healing: clean write, fully replicated again.
  const std::string data(8 * kPageSize, 'y');
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
  w.kernel->FlushAllDirty();
  EXPECT_EQ(w.fs->stale_stripes(), 0);
}

}  // namespace
}  // namespace sled
