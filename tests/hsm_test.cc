// Tests for the hierarchical storage management file system.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/fs/hsm_fs.h"

namespace sled {
namespace {

HsmFsConfig SmallConfig() {
  HsmFsConfig config;
  config.staging_disk.capacity_bytes = 512 * kPageSize;
  config.staging_capacity_bytes = 256 * kPageSize;
  config.num_tapes = 3;
  config.num_drives = 1;
  return config;
}

std::unique_ptr<HsmFs> MakeHsm(HsmFsConfig config = SmallConfig()) {
  return std::make_unique<HsmFs>("hsm", config);
}

InodeNum MakeFile(HsmFs& fs, const std::string& name, int64_t size) {
  const InodeNum ino = fs.CreateFile(fs.root(), name).value();
  const std::string data(static_cast<size_t>(size), 'h');
  EXPECT_TRUE(fs.WriteBytes(ino, 0, std::span<const char>(data.data(), data.size())).ok());
  return ino;
}

TEST(HsmFsTest, NewFilesAreStagedOnDisk) {
  auto fs = MakeHsm();
  const InodeNum f = MakeFile(*fs, "f", 8 * kPageSize);
  EXPECT_TRUE(fs->IsStaged(f));
  EXPECT_FALSE(fs->IsOnTape(f));
  EXPECT_EQ(fs->LevelOf(f, 0), HsmFs::kLevelDisk);
  EXPECT_EQ(fs->staged_bytes(), 8 * kPageSize);
}

TEST(HsmFsTest, MigrateMovesFileToTape) {
  auto fs = MakeHsm();
  const InodeNum f = MakeFile(*fs, "f", 8 * kPageSize);
  const Duration t = fs->Migrate(f).value();
  EXPECT_GT(t.ToSeconds(), 1.0);  // tape mount dominates
  EXPECT_FALSE(fs->IsStaged(f));
  EXPECT_TRUE(fs->IsOnTape(f));
  EXPECT_EQ(fs->staged_bytes(), 0);
  // The tape it migrated to is still mounted, so the file is "near".
  EXPECT_EQ(fs->LevelOf(f, 0), HsmFs::kLevelTapeNear);
}

TEST(HsmFsTest, RecallBringsFileBack) {
  auto fs = MakeHsm();
  const InodeNum f = MakeFile(*fs, "f", 8 * kPageSize);
  (void)fs->Migrate(f).value();
  const Duration t = fs->Recall(f).value();
  EXPECT_GT(t.ToSeconds(), 0.0);
  EXPECT_TRUE(fs->IsStaged(f));
  EXPECT_TRUE(fs->IsOnTape(f));  // tape copy remains
  // Contents survive the round trip.
  std::string out(8, '\0');
  EXPECT_EQ(fs->ReadBytes(f, 0, std::span<char>(out.data(), out.size())).value(), 8);
  EXPECT_EQ(out, std::string(8, 'h'));
}

TEST(HsmFsTest, ReadOfOfflineFileAutoRecalls) {
  auto fs = MakeHsm();
  const InodeNum f = MakeFile(*fs, "f", 8 * kPageSize);
  (void)fs->Migrate(f).value();
  const Duration t = fs->ReadPagesFromStore(f, 0, 1).value();
  EXPECT_GT(t.ToSeconds(), 1.0);  // implied recall
  EXPECT_TRUE(fs->IsStaged(f));
  // Second read is cheap: staged on disk now.
  const Duration t2 = fs->ReadPagesFromStore(f, 0, 1).value();
  EXPECT_LT(t2.ToSeconds(), 0.1);
}

TEST(HsmFsTest, DirectTapeReadWhenStagingDisabled) {
  HsmFsConfig config = SmallConfig();
  config.stage_on_read = false;
  auto fs = MakeHsm(config);
  const InodeNum f = MakeFile(*fs, "f", 8 * kPageSize);
  (void)fs->Migrate(f).value();
  (void)fs->ReadPagesFromStore(f, 0, 1).value();
  EXPECT_FALSE(fs->IsStaged(f));  // stays offline
}

TEST(HsmFsTest, WriteToOfflineFileFails) {
  auto fs = MakeHsm();
  const InodeNum f = MakeFile(*fs, "f", 8 * kPageSize);
  (void)fs->Migrate(f).value();
  EXPECT_EQ(fs->WritePagesToStore(f, 0, 1).error(), Err::kNotSup);
  const std::string b(10, 'x');
  EXPECT_EQ(fs->WriteBytes(f, 0, std::span<const char>(b.data(), b.size())).error(),
            Err::kNotSup);
  // After recall, writes succeed and dirty the staged copy.
  (void)fs->Recall(f).value();
  EXPECT_TRUE(fs->WritePagesToStore(f, 0, 1).ok());
}

TEST(HsmFsTest, LevelReflectsMountState) {
  auto fs = MakeHsm();
  const InodeNum a = MakeFile(*fs, "a", 4 * kPageSize);
  const InodeNum b = MakeFile(*fs, "b", 4 * kPageSize);
  (void)fs->Migrate(a).value();
  (void)fs->Migrate(b).value();
  // Both migrations picked the emptiest tape; with equal fill they spread.
  // Access b's tape so it is the mounted one.
  (void)fs->ReadPagesFromStore(b, 0, 1).value();
  ASSERT_TRUE(fs->IsStaged(b));  // recalled by the read
  if (fs->TapeOf(a) != fs->TapeOf(b)) {
    EXPECT_EQ(fs->LevelOf(a, 0), HsmFs::kLevelTapeFar);
  }
}

TEST(HsmFsTest, StagingEvictionMigratesLruFiles) {
  HsmFsConfig config = SmallConfig();
  config.staging_capacity_bytes = 32 * kPageSize;
  auto fs = MakeHsm(config);
  const InodeNum a = MakeFile(*fs, "a", 16 * kPageSize);
  const InodeNum b = MakeFile(*fs, "b", 16 * kPageSize);
  EXPECT_EQ(fs->staged_bytes(), 32 * kPageSize);
  // Creating c exceeds the budget: a (LRU) is pushed to tape.
  const InodeNum c = MakeFile(*fs, "c", 16 * kPageSize);
  EXPECT_FALSE(fs->IsStaged(a));
  EXPECT_TRUE(fs->IsOnTape(a));
  EXPECT_TRUE(fs->IsStaged(b));
  EXPECT_TRUE(fs->IsStaged(c));
  EXPECT_LE(fs->staged_bytes(), 32 * kPageSize);
}

TEST(HsmFsTest, LevelsExposeThreeTiers) {
  auto fs = MakeHsm();
  const auto levels = fs->Levels();
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[HsmFs::kLevelDisk].name, "hsm-disk");
  EXPECT_EQ(levels[HsmFs::kLevelTapeNear].name, "tape-near");
  EXPECT_EQ(levels[HsmFs::kLevelTapeFar].name, "tape-far");
  // Latency strictly increases across tiers.
  EXPECT_LT(levels[0].nominal.latency, levels[1].nominal.latency);
  EXPECT_LT(levels[1].nominal.latency, levels[2].nominal.latency);
  // The far tier includes mount time (tens of seconds).
  EXPECT_GT(levels[2].nominal.latency.ToSeconds(), 30.0);
}

TEST(HsmFsTest, UnlinkReleasesStaging) {
  auto fs = MakeHsm();
  (void)MakeFile(*fs, "f", 8 * kPageSize);
  EXPECT_EQ(fs->staged_bytes(), 8 * kPageSize);
  ASSERT_TRUE(fs->Unlink(fs->root(), "f").ok());
  EXPECT_EQ(fs->staged_bytes(), 0);
}

TEST(HsmFsTest, MigrateSpreadsAcrossTapesBySpace) {
  auto fs = MakeHsm();
  const InodeNum a = MakeFile(*fs, "a", 8 * kPageSize);
  const InodeNum b = MakeFile(*fs, "b", 8 * kPageSize);
  (void)fs->Migrate(a).value();
  (void)fs->Migrate(b).value();
  // Second migration goes to a different (emptier) tape.
  EXPECT_NE(fs->TapeOf(a), fs->TapeOf(b));
}

TEST(HsmFsTest, RecallOfNeverMigratedUnstagedFileFails) {
  auto fs = MakeHsm();
  const InodeNum f = fs->CreateFile(fs->root(), "empty").value();
  // Zero-size file: neither staged nor on tape; recall has nothing to do.
  EXPECT_EQ(fs->Recall(f).error(), Err::kIo);
}

}  // namespace
}  // namespace sled
