// Tests for the locate-aware tape scheduler and HSM batch recall.
#include <gtest/gtest.h>

#include <numeric>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/device/tape_schedule.h"
#include "src/fs/hsm_fs.h"

namespace sled {
namespace {

TEST(TapeScheduleTest, LocateBetweenIsSymmetricAndZeroOnSelf) {
  TapeDeviceConfig config;
  EXPECT_EQ(TapeDevice::LocateBetween(config, MiB(100), MiB(100)), Duration());
  const Duration ab = TapeDevice::LocateBetween(config, 0, MiB(500));
  const Duration ba = TapeDevice::LocateBetween(config, MiB(500), 0);
  EXPECT_EQ(ab, ba);
  EXPECT_GT(ab.ToSeconds(), config.locate_overhead.ToSeconds() * 0.99);
}

TEST(TapeScheduleTest, SerpentineAdjacencyIsCheap) {
  TapeDeviceConfig config;
  const int64_t track_len = config.capacity_bytes / config.num_tracks;
  // End of track 0 is physically adjacent to the start of track 1.
  const Duration turnaround =
      TapeDevice::LocateBetween(config, track_len - kPageSize, track_len + kPageSize);
  const Duration full_pass = TapeDevice::LocateBetween(config, 0, track_len + kPageSize);
  EXPECT_LT(turnaround, full_pass);
}

TEST(TapeScheduleTest, ScheduleServesEveryRequestOnce) {
  TapeDeviceConfig config;
  Rng rng(5);
  std::vector<TapeRequest> requests;
  for (int i = 0; i < 40; ++i) {
    requests.push_back({rng.Uniform(0, config.capacity_bytes - MiB(64)), MiB(16)});
  }
  const std::vector<size_t> order = ScheduleTapeReads(config, 0, requests);
  ASSERT_EQ(order.size(), requests.size());
  std::vector<size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], i);  // a permutation
  }
}

TEST(TapeScheduleTest, ScheduledOrderBeatsFifoOnScatteredRequests) {
  TapeDeviceConfig config;
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<TapeRequest> requests;
    for (int i = 0; i < 24; ++i) {
      requests.push_back({rng.Uniform(0, config.capacity_bytes - MiB(64)), MiB(8)});
    }
    std::vector<size_t> fifo(requests.size());
    std::iota(fifo.begin(), fifo.end(), 0);
    const std::vector<size_t> scheduled = ScheduleTapeReads(config, 0, requests);
    const Duration fifo_cost = TotalLocateTime(config, 0, requests, fifo);
    const Duration sched_cost = TotalLocateTime(config, 0, requests, scheduled);
    EXPECT_LE(sched_cost, fifo_cost);
  }
}

TEST(TapeScheduleTest, SingleRequestAndEmptySetDegenerate) {
  TapeDeviceConfig config;
  EXPECT_TRUE(ScheduleTapeReads(config, 0, {}).empty());
  const std::vector<TapeRequest> one = {{MiB(100), MiB(1)}};
  const auto order = ScheduleTapeReads(config, 0, one);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], 0u);
}

HsmFsConfig BatchConfig() {
  HsmFsConfig config;
  config.staging_disk.capacity_bytes = 2LL * 1000 * 1000 * 1000;
  config.num_tapes = 2;
  config.num_drives = 1;
  return config;
}

TEST(RecallBatchTest, ScheduledBatchIsNoSlowerThanFifo) {
  // Build two identical HSM worlds with many files migrated to the same
  // tapes, then recall them in pathological order.
  auto build = [&]() {
    auto fs = std::make_unique<HsmFs>("hsm", BatchConfig());
    std::vector<InodeNum> inos;
    const std::string data(static_cast<size_t>(MiB(8)), 'd');
    for (int i = 0; i < 12; ++i) {
      const InodeNum ino = fs->CreateFile(fs->root(), "f" + std::to_string(i)).value();
      EXPECT_TRUE(fs->WriteBytes(ino, 0, std::span<const char>(data.data(), data.size())).ok());
      inos.push_back(ino);
    }
    for (InodeNum ino : inos) {
      EXPECT_TRUE(fs->Migrate(ino).ok());
    }
    return std::make_pair(std::move(fs), inos);
  };

  auto [fs_fifo, inos_fifo] = build();
  // Interleave the recall order across the two tapes (worst case for FIFO:
  // it alternates tapes, forcing an exchange per file).
  std::vector<InodeNum> shuffled = inos_fifo;
  std::vector<InodeNum> interleaved;
  for (size_t i = 0; i < shuffled.size() / 2; ++i) {
    interleaved.push_back(shuffled[i]);
    interleaved.push_back(shuffled[shuffled.size() / 2 + i]);
  }
  const Duration fifo = fs_fifo->RecallBatch(interleaved, /*scheduled=*/false).value();

  auto [fs_sched, inos_sched] = build();
  std::vector<InodeNum> interleaved2;
  for (size_t i = 0; i < inos_sched.size() / 2; ++i) {
    interleaved2.push_back(inos_sched[i]);
    interleaved2.push_back(inos_sched[inos_sched.size() / 2 + i]);
  }
  const Duration sched = fs_sched->RecallBatch(interleaved2, /*scheduled=*/true).value();

  // Scheduling groups by tape (2 exchanges instead of ~12) and orders within
  // each tape: a large win.
  EXPECT_LT(sched.ToSeconds() * 1.5, fifo.ToSeconds());
  // Everything actually recalled.
  for (InodeNum ino : inos_sched) {
    EXPECT_TRUE(fs_sched->IsStaged(ino));
  }
}

TEST(RecallBatchTest, SkipsStagedAndEmptyInput) {
  auto fs = std::make_unique<HsmFs>("hsm", BatchConfig());
  const InodeNum ino = fs->CreateFile(fs->root(), "f").value();
  const std::string data(static_cast<size_t>(MiB(1)), 'd');
  ASSERT_TRUE(fs->WriteBytes(ino, 0, std::span<const char>(data.data(), data.size())).ok());
  // Still staged: batch recall is a no-op.
  EXPECT_EQ(fs->RecallBatch({ino}).value(), Duration());
  EXPECT_EQ(fs->RecallBatch({}).value(), Duration());
}

}  // namespace
}  // namespace sled
