// Tests for completion programs (src/progs + SimKernel::InstallProgram /
// RunProgram). The contract under test, in order of importance:
//
//   1. Results are *identical* to the userspace oracle — programs may only
//      change where the work runs, never what it computes.
//   2. The sandbox holds: resource caps abort the program, not the kernel,
//      and a malformed chain faults the program, not the kernel.
//   3. Simulated time is deterministic (including across shard ids) and the
//      program path is never slower than the oracle it replaces.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/find.h"
#include "src/apps/fimhisto.h"
#include "src/apps/grep.h"
#include "src/apps/wc.h"
#include "src/common/rng.h"
#include "src/device/disk_device.h"
#include "src/device/network_device.h"
#include "src/device/ssd_device.h"
#include "src/fs/extent_file_system.h"
#include "src/replica/replicated_fs.h"
#include "src/workload/chain_gen.h"
#include "src/workload/fits_gen.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
};

World MakeWorld(IoMode mode = IoMode::kFifoSync, int64_t cache_pages = 2048,
                int shard_id = 0) {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = cache_pages;
  config.io.mode = mode;
  config.shard_id = shard_id;
  w.kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

void WriteFile(SimKernel& k, Process& p, const std::string& path, const std::string& data) {
  const int fd = k.Create(p, path).value();
  ASSERT_TRUE(k.Write(p, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(k.Close(p, fd).ok());
}

std::string MakeText(uint64_t seed, int64_t target) {
  Rng rng(seed);
  std::string data;
  while (static_cast<int64_t>(data.size()) < target) {
    const int64_t word = rng.Uniform(1, 12);
    for (int64_t i = 0; i < word; ++i) {
      data.push_back(static_cast<char>('a' + rng.Uniform(0, 25)));
    }
    data.push_back(rng.Bernoulli(0.2) ? '\n' : ' ');
  }
  return data;
}

std::string ReadWholeFile(SimKernel& k, Process& p, const std::string& path) {
  const int fd = k.Open(p, path).value();
  std::string out;
  std::vector<char> buf(static_cast<size_t>(64 * kKiB));
  while (true) {
    const int64_t n = k.Read(p, fd, std::span<char>(buf.data(), buf.size())).value();
    if (n == 0) {
      break;
    }
    out.append(buf.data(), static_cast<size_t>(n));
  }
  EXPECT_TRUE(k.Close(p, fd).ok());
  return out;
}

// ---- result identity: program == oracle, in both engine modes ----

class ProgsModeTest : public ::testing::TestWithParam<IoMode> {};

TEST_P(ProgsModeTest, WcProgramMatchesOracle) {
  World w = MakeWorld(GetParam());
  const std::string data = MakeText(101, 48 * kPageSize + 1234);
  WriteFile(*w.kernel, *w.proc, "/f.txt", data);

  WcOptions plain;
  plain.buffer_bytes = 3 * kPageSize;  // word seams off page boundaries
  const WcResult oracle = WcApp::Run(*w.kernel, *w.proc, "/f.txt", plain).value();

  WcOptions prog = plain;
  prog.kernel_program = true;
  // Warm cache (the oracle above populated it), then cold.
  EXPECT_EQ(WcApp::Run(*w.kernel, *w.proc, "/f.txt", prog).value(), oracle);
  w.kernel->DropCaches();
  EXPECT_EQ(WcApp::Run(*w.kernel, *w.proc, "/f.txt", prog).value(), oracle);
}

TEST_P(ProgsModeTest, GrepProgramMatchesOracle) {
  World w = MakeWorld(GetParam());
  Process& p = *w.proc;
  Rng rng(7);
  ASSERT_TRUE(GenerateTextFile(*w.kernel, p, "/t.txt", 2 * kMiB, rng).ok());
  ASSERT_TRUE(PlaceMarker(*w.kernel, p, "/t.txt", 1200 * kKiB).ok());
  w.kernel->DropCaches();

  GrepOptions oracle_opts;
  oracle_opts.quiet_first_match = true;
  GrepOptions prog_opts = oracle_opts;
  prog_opts.kernel_program = true;
  for (bool use_sleds : {false, true}) {
    oracle_opts.use_sleds = use_sleds;
    prog_opts.use_sleds = use_sleds;
    const bool expect =
        GrepApp::Run(*w.kernel, p, "/t.txt", kGrepMarker, oracle_opts).value().found;
    EXPECT_TRUE(expect);
    EXPECT_EQ(GrepApp::Run(*w.kernel, p, "/t.txt", kGrepMarker, prog_opts).value().found,
              expect);
    // A pattern that is not in the file: both say no.
    EXPECT_FALSE(GrepApp::Run(*w.kernel, p, "/t.txt", "ZMISSINGZ", oracle_opts).value().found);
    EXPECT_FALSE(GrepApp::Run(*w.kernel, p, "/t.txt", "ZMISSINGZ", prog_opts).value().found);
  }
}

TEST_P(ProgsModeTest, GrepProgramFindsChunkStraddlingMatch) {
  World w = MakeWorld(GetParam());
  // The only occurrence straddles the plan-chunk boundary: the program's
  // pattern_len-1 chunk overlap must catch it.
  const int64_t chunk = 2 * kPageSize;
  std::string data(static_cast<size_t>(3 * chunk), 'a');
  const std::string needle = "XSTRADDLEX";
  data.replace(static_cast<size_t>(chunk) - 4, needle.size(), needle);
  WriteFile(*w.kernel, *w.proc, "/s.txt", data);
  w.kernel->DropCaches();

  GrepOptions opts;
  opts.quiet_first_match = true;
  opts.buffer_bytes = chunk;
  opts.kernel_program = true;
  EXPECT_TRUE(GrepApp::Run(*w.kernel, *w.proc, "/s.txt", needle, opts).value().found);
}

TEST_P(ProgsModeTest, ChainProgramMatchesOracle) {
  World w = MakeWorld(GetParam());
  Rng rng(42);
  ChainGenOptions gen;
  gen.num_blocks = 512;
  gen.marker_every = 19;
  ASSERT_TRUE(GenerateChainFile(*w.kernel, *w.proc, "/chain", gen, rng).ok());

  ChainOptions opts;
  opts.name_contains = std::string(kChainMarker);
  ChainOptions prog = opts;
  prog.kernel_program = true;
  // Cold, then warm: the answers never depend on the cache.
  w.kernel->DropCaches();
  const ChainResult oracle_cold = FindApp::RunChain(*w.kernel, *w.proc, "/chain", opts).value();
  w.kernel->DropCaches();
  const ChainResult prog_cold = FindApp::RunChain(*w.kernel, *w.proc, "/chain", prog).value();
  EXPECT_EQ(oracle_cold, prog_cold);
  EXPECT_EQ(oracle_cold.blocks_visited, gen.num_blocks);
  EXPECT_EQ(oracle_cold.names_matched, gen.num_blocks / gen.marker_every);
  const ChainResult oracle_warm = FindApp::RunChain(*w.kernel, *w.proc, "/chain", opts).value();
  const ChainResult prog_warm = FindApp::RunChain(*w.kernel, *w.proc, "/chain", prog).value();
  EXPECT_EQ(oracle_cold, oracle_warm);
  EXPECT_EQ(oracle_cold, prog_warm);
}

TEST_P(ProgsModeTest, ChainHopBudgetCutsBothPathsEqually) {
  World w = MakeWorld(GetParam());
  Rng rng(43);
  ChainGenOptions gen;
  gen.num_blocks = 256;
  gen.marker_every = 5;
  ASSERT_TRUE(GenerateChainFile(*w.kernel, *w.proc, "/chain", gen, rng).ok());

  ChainOptions opts;
  opts.name_contains = std::string(kChainMarker);
  opts.max_hops = 77;
  ChainOptions prog = opts;
  prog.kernel_program = true;
  const ChainResult a = FindApp::RunChain(*w.kernel, *w.proc, "/chain", opts).value();
  const ChainResult b = FindApp::RunChain(*w.kernel, *w.proc, "/chain", prog).value();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.blocks_visited, 77);
}

TEST_P(ProgsModeTest, FimhistoProgramMatchesOracle) {
  World w = MakeWorld(GetParam());
  Rng rng(11);
  ASSERT_TRUE(GenerateFitsImage(*w.kernel, *w.proc, "/img.fits", kMiB, -32, rng).ok());
  w.kernel->DropCaches();

  FimhistoOptions opts;
  opts.num_bins = 32;
  const FimhistoResult oracle =
      FimhistoApp::Run(*w.kernel, *w.proc, "/img.fits", "/out_oracle", opts).value();
  FimhistoOptions prog = opts;
  prog.kernel_program = true;
  w.kernel->DropCaches();
  const FimhistoResult kernelside =
      FimhistoApp::Run(*w.kernel, *w.proc, "/img.fits", "/out_prog", prog).value();

  EXPECT_EQ(oracle.min_value, kernelside.min_value);
  EXPECT_EQ(oracle.max_value, kernelside.max_value);
  EXPECT_EQ(oracle.bins, kernelside.bins);
  // The output files (copy + appended histogram extension) must be
  // byte-identical too.
  EXPECT_EQ(ReadWholeFile(*w.kernel, *w.proc, "/out_oracle"),
            ReadWholeFile(*w.kernel, *w.proc, "/out_prog"));
}

INSTANTIATE_TEST_SUITE_P(EngineModes, ProgsModeTest,
                         ::testing::Values(IoMode::kFifoSync, IoMode::kElevator));

// ---- sandbox: caps and faults hit the program, never the kernel ----

TEST(ProgsSandboxTest, StepCapAbortsProgramNotKernel) {
  World w = MakeWorld();
  const std::string data = MakeText(5, 16 * kPageSize);
  WriteFile(*w.kernel, *w.proc, "/f.txt", data);

  ProgSpec spec;
  spec.kind = ProgKind::kCount;
  spec.chunk_bytes = kPageSize;
  spec.limits.max_step_bytes = 3 * kPageSize;  // far smaller than the file
  const int fd = w.kernel->Open(*w.proc, "/f.txt").value();
  ASSERT_TRUE(w.kernel->InstallProgram(*w.proc, fd, spec).ok());
  const ProgResult r = w.kernel->RunProgram(*w.proc, fd).value();
  EXPECT_EQ(r.status, ProgStatus::kAbortedSteps);
  // The cap is checked after the offending chunk is counted, so the program
  // can overshoot by at most one chunk before it is killed.
  EXPECT_LE(r.bytes_examined, spec.limits.max_step_bytes + spec.chunk_bytes);

  // The kernel is fine: the same fd still reads, and a fresh (unbounded)
  // program on the same fd completes.
  char b = 0;
  EXPECT_TRUE(w.kernel->Lseek(*w.proc, fd, 0, Whence::kSet).ok());
  EXPECT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(&b, 1)).ok());
  spec.limits = ProgLimits{};
  ASSERT_TRUE(w.kernel->InstallProgram(*w.proc, fd, spec).ok());
  EXPECT_EQ(w.kernel->RunProgram(*w.proc, fd).value().status, ProgStatus::kOk);
  EXPECT_TRUE(w.kernel->Close(*w.proc, fd).ok());

  // The app wrapper surfaces the abort as an error.
  WcOptions opts;
  opts.kernel_program = true;
  opts.buffer_bytes = kPageSize;
  // (app uses default limits, so it succeeds; the abort path was covered
  // above via the raw syscalls.)
  EXPECT_TRUE(WcApp::Run(*w.kernel, *w.proc, "/f.txt", opts).ok());
}

TEST(ProgsSandboxTest, ResubmitCapAbortsProgramNotKernel) {
  World w = MakeWorld();
  Rng rng(9);
  ChainGenOptions gen;
  gen.num_blocks = 64;
  ASSERT_TRUE(GenerateChainFile(*w.kernel, *w.proc, "/chain", gen, rng).ok());

  ProgSpec spec;
  spec.kind = ProgKind::kChainWalk;
  spec.block_bytes = gen.block_bytes;
  spec.limits.max_resubmits = 4;
  const int fd = w.kernel->Open(*w.proc, "/chain").value();
  ASSERT_TRUE(w.kernel->InstallProgram(*w.proc, fd, spec).ok());
  const ProgResult r = w.kernel->RunProgram(*w.proc, fd).value();
  EXPECT_EQ(r.status, ProgStatus::kAbortedResubmits);
  EXPECT_EQ(r.blocks_visited, 5);  // head + 4 chained reads
  EXPECT_EQ(r.resubmits, 4);
  EXPECT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(ProgsSandboxTest, BadChainPointerFaultsProgramNotKernel) {
  World w = MakeWorld();
  Rng rng(10);
  ChainGenOptions gen;
  gen.num_blocks = 8;
  ASSERT_TRUE(GenerateChainFile(*w.kernel, *w.proc, "/chain", gen, rng).ok());
  // Corrupt the head block's next pointer to point past EOF.
  {
    const int fd = w.kernel->Open(*w.proc, "/chain").value();
    char next[8];
    const int64_t bogus = gen.num_blocks * gen.block_bytes + kPageSize;
    for (int i = 0; i < 8; ++i) {
      next[i] = static_cast<char>((static_cast<uint64_t>(bogus) >> (8 * i)) & 0xff);
    }
    ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(next, 8)).ok());
    ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
  }

  ProgSpec spec;
  spec.kind = ProgKind::kChainWalk;
  spec.block_bytes = gen.block_bytes;
  const int fd = w.kernel->Open(*w.proc, "/chain").value();
  ASSERT_TRUE(w.kernel->InstallProgram(*w.proc, fd, spec).ok());
  const ProgResult r = w.kernel->RunProgram(*w.proc, fd).value();
  EXPECT_EQ(r.status, ProgStatus::kFaulted);
  EXPECT_EQ(r.blocks_visited, 1);
  // Kernel is unharmed: normal reads on the same fd still work.
  char b = 0;
  EXPECT_TRUE(w.kernel->Lseek(*w.proc, fd, 0, Whence::kSet).ok());
  EXPECT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(&b, 1)).ok());
  EXPECT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(ProgsSandboxTest, InstallRejectsInvalidSpecs) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f", "hello");
  const int fd = w.kernel->Open(*w.proc, "/f").value();

  ProgSpec no_pattern;
  no_pattern.kind = ProgKind::kFindFirst;  // find-first requires a pattern
  EXPECT_EQ(w.kernel->InstallProgram(*w.proc, fd, no_pattern).error(), Err::kInval);

  ProgSpec tiny_block;
  tiny_block.kind = ProgKind::kChainWalk;
  tiny_block.block_bytes = 8;  // below the 16-byte chain header
  EXPECT_EQ(w.kernel->InstallProgram(*w.proc, fd, tiny_block).error(), Err::kInval);

  ProgSpec many_bins;
  many_bins.kind = ProgKind::kHistogram;
  many_bins.num_bins = kProgMaxBins + 1;
  EXPECT_EQ(w.kernel->InstallProgram(*w.proc, fd, many_bins).error(), Err::kInval);

  ProgSpec huge_pattern;
  huge_pattern.kind = ProgKind::kFindFirst;
  huge_pattern.pattern.assign(kProgMaxPattern + 1, 'x');
  EXPECT_EQ(w.kernel->InstallProgram(*w.proc, fd, huge_pattern).error(), Err::kInval);

  // Running with nothing installed is invalid too.
  EXPECT_EQ(w.kernel->RunProgram(*w.proc, fd).error(), Err::kInval);
  EXPECT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

// ---- timing: deterministic, shard-independent, and never slower ----

TEST(ProgsTimingTest, ProgramNeverSlowerThanOracleAndDeterministic) {
  Duration oracle_time;
  Duration prog_time;
  Duration prog_time_repeat;
  const std::string data = MakeText(77, 96 * kPageSize);
  for (int round = 0; round < 3; ++round) {
    World w = MakeWorld();
    WriteFile(*w.kernel, *w.proc, "/f.txt", data);
    w.kernel->DropCaches();
    Process& runner = w.kernel->CreateProcess("runner");
    WcOptions opts;
    opts.kernel_program = round > 0;
    ASSERT_TRUE(WcApp::Run(*w.kernel, runner, "/f.txt", opts).ok());
    (round == 0 ? oracle_time : round == 1 ? prog_time : prog_time_repeat) =
        runner.stats().elapsed();
  }
  EXPECT_EQ(prog_time, prog_time_repeat);  // bit-identical replay
  EXPECT_LT(prog_time, oracle_time);       // the whole point of the PR
}

TEST(ProgsTimingTest, IdenticalAcrossShardIds) {
  ChainResult results[2];
  Duration times[2];
  for (int shard = 0; shard < 2; ++shard) {
    World w = MakeWorld(IoMode::kFifoSync, 2048, shard);
    Rng rng(123);
    ChainGenOptions gen;
    gen.num_blocks = 300;
    gen.marker_every = 7;
    ASSERT_TRUE(GenerateChainFile(*w.kernel, *w.proc, "/chain", gen, rng).ok());
    w.kernel->DropCaches();
    Process& runner = w.kernel->CreateProcess("runner");
    ChainOptions opts;
    opts.name_contains = std::string(kChainMarker);
    opts.kernel_program = true;
    results[shard] = FindApp::RunChain(*w.kernel, runner, "/chain", opts).value();
    times[shard] = runner.stats().elapsed();
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(times[0], times[1]);
}

TEST(ProgsTimingTest, InstallAloneChargesOnlyTheInstaller) {
  // A process that installs (but never runs) a program must not change
  // another process's observed costs.
  Duration other_elapsed[2];
  const std::string data = MakeText(3, 8 * kPageSize);
  for (int with_install = 0; with_install < 2; ++with_install) {
    World w = MakeWorld();
    WriteFile(*w.kernel, *w.proc, "/f.txt", data);
    w.kernel->DropCaches();
    if (with_install == 1) {
      Process& installer = w.kernel->CreateProcess("installer");
      const int fd = w.kernel->Open(installer, "/f.txt").value();
      ProgSpec spec;
      spec.kind = ProgKind::kCount;
      ASSERT_TRUE(w.kernel->InstallProgram(installer, fd, spec).ok());
      ASSERT_TRUE(w.kernel->Close(installer, fd).ok());
      w.kernel->DropCaches();
    }
    Process& other = w.kernel->CreateProcess("other");
    ASSERT_TRUE(WcApp::Run(*w.kernel, other, "/f.txt", WcOptions{}).ok());
    other_elapsed[with_install] = other.stats().elapsed();
  }
  EXPECT_EQ(other_elapsed[0], other_elapsed[1]);
}

TEST(ProgsTimingTest, ChainProgramEliminatesPerHopSyscalls) {
  World w = MakeWorld();
  Rng rng(55);
  ChainGenOptions gen;
  gen.num_blocks = 400;
  ASSERT_TRUE(GenerateChainFile(*w.kernel, *w.proc, "/chain", gen, rng).ok());

  int64_t syscalls[2];
  for (int use_prog = 0; use_prog < 2; ++use_prog) {
    Process& runner = w.kernel->CreateProcess(use_prog ? "prog" : "oracle");
    ChainOptions opts;
    opts.kernel_program = use_prog == 1;
    ASSERT_TRUE(FindApp::RunChain(*w.kernel, runner, "/chain", opts).ok());
    syscalls[use_prog] = runner.stats().syscalls;
  }
  // Acceptance: at least a 2x reduction in kernel crossings (in practice it
  // is ~hops/1: two per hop down to a constant handful).
  EXPECT_GE(syscalls[0], 2 * syscalls[1]);
}

// ---- programs run against any mounted file system ----

TEST(ProgsFsTest, RunsOnReplicatedFs) {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = 2048;
  w.kernel = std::make_unique<SimKernel>(config);
  std::vector<std::unique_ptr<StorageDevice>> replicas;
  replicas.push_back(std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  SsdDeviceConfig sc;
  replicas.push_back(std::make_unique<SsdDevice>(sc));
  NetworkDeviceConfig nc;
  replicas.push_back(std::make_unique<NetworkDevice>(nc));
  auto fs = std::make_unique<ReplicatedFs>("repl", std::move(replicas), ReplicatedFsConfig{});
  ASSERT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");

  const std::string data = MakeText(21, 24 * kPageSize);
  WriteFile(*w.kernel, *w.proc, "/f.txt", data);
  w.kernel->DropCaches();
  const WcResult oracle = WcApp::Run(*w.kernel, *w.proc, "/f.txt", WcOptions{}).value();
  WcOptions prog;
  prog.kernel_program = true;
  w.kernel->DropCaches();
  EXPECT_EQ(WcApp::Run(*w.kernel, *w.proc, "/f.txt", prog).value(), oracle);
}

TEST(ProgsFsTest, GrepProgramRequiresQuiet) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f", "needle\n");
  GrepOptions opts;
  opts.kernel_program = true;  // but not -q: the program cannot return lines
  EXPECT_EQ(GrepApp::Run(*w.kernel, *w.proc, "/f", "needle", opts).error(), Err::kInval);
}

}  // namespace
}  // namespace sled
