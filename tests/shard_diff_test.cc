// Differential tests for the shard-per-core runtime (cache_diff_test
// playbook): the single-shard inline oracle is the reference, and N-shard
// runs must reproduce it exactly — per-world simulated times, kernel stat
// deltas, and the merged metrics export are compared byte for byte across
// repeated runs and across shard counts. Plus unit and threaded coverage of
// the SPSC ring and the pooled message channel; the threaded cases are the
// payload of the ThreadSanitizer stage in scripts/check.sh.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/obs/merge.h"
#include "src/shard/message_pool.h"
#include "src/shard/shard_runtime.h"
#include "src/shard/spsc_queue.h"
#include "src/workload/shard_world.h"

namespace sled {
namespace {

TEST(SpscQueue, FifoOrderAndCapacity) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.TryPush(i));
  }
  EXPECT_FALSE(q.TryPush(99));  // full: capacity slots, no wasted entry
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryPop(&v));  // empty
  // Wrap-around: indices are monotonic counters masked into the ring.
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(q.TryPush(round));
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, round);
  }
}

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  SpscQueue<int> q1(1);
  EXPECT_EQ(q1.capacity(), 2u);
}

// Producer thread streams a counter through a small ring while the main
// thread consumes; order and completeness must survive the handoff. Under
// TSan this exercises the acquire/release pairs on both indices.
TEST(SpscQueue, ThreadedHandoffPreservesSequence) {
  constexpr int kItems = 200000;
  SpscQueue<int> q(64);
  std::thread producer([&q] {
    for (int i = 0; i < kItems;) {
      if (q.TryPush(i)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  int expected = 0;
  while (expected < kItems) {
    int v;
    if (q.TryPop(&v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  int v;
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(ShardChannel, PoolDrainsAndRecycles) {
  ShardChannel ch(8);
  EXPECT_EQ(ch.pool_size(), 8u);
  // Exhaust the pool without recycling: Acquire must report dry, not grow.
  std::vector<ShardMessage*> held;
  for (size_t i = 0; i < ch.pool_size(); ++i) {
    ShardMessage* m = ch.Acquire();
    ASSERT_NE(m, nullptr);
    held.push_back(m);
  }
  EXPECT_EQ(ch.Acquire(), nullptr);
  for (ShardMessage* m : held) {
    m->kind = ShardMessage::Kind::kProgress;
    ch.Send(m);
  }
  // Consume and recycle; the pool refills completely.
  int received = 0;
  while (ShardMessage* m = ch.Receive()) {
    ++received;
    ch.Release(m);
  }
  EXPECT_EQ(received, 8);
  ASSERT_NE(ch.Acquire(), nullptr);
}

// Worker acquires/sends while control receives/releases: both rings run
// concurrently through the same slab without loss or duplication.
TEST(ShardChannel, ThreadedPingPong) {
  constexpr int64_t kMessages = 100000;
  ShardChannel ch(16);
  std::thread worker([&ch] {
    for (int64_t i = 0; i < kMessages;) {
      ShardMessage* m = ch.Acquire();
      if (m == nullptr) {
        std::this_thread::yield();
        continue;
      }
      m->kind = ShardMessage::Kind::kProgress;
      m->sim_ns = i;
      ch.Send(m);
      ++i;
    }
  });
  int64_t received = 0;
  int64_t sum = 0;
  while (received < kMessages) {
    ShardMessage* m = ch.Receive();
    if (m == nullptr) {
      std::this_thread::yield();
      continue;
    }
    EXPECT_EQ(m->sim_ns, received);  // SPSC: in-order delivery
    sum += m->sim_ns;
    ch.Release(m);
    ++received;
  }
  worker.join();
  EXPECT_EQ(sum, kMessages * (kMessages - 1) / 2);
}

TEST(ShardRuntime, PartitionIsStableAndCoversShards) {
  for (int shards : {2, 3, 4, 8}) {
    ShardRuntime a(ShardConfig{.shards = shards});
    ShardRuntime b(ShardConfig{.shards = shards});
    std::vector<int> hits(static_cast<size_t>(shards), 0);
    for (int64_t w = 0; w < 64; ++w) {
      const int s = a.ShardOf(w);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, shards);
      EXPECT_EQ(s, b.ShardOf(w));  // pure function of (world, shards)
      ++hits[static_cast<size_t>(s)];
    }
    for (int s = 0; s < shards; ++s) {
      EXPECT_GT(hits[static_cast<size_t>(s)], 0) << shards << " shards, shard " << s;
    }
  }
}

TEST(ShardRuntime, ReportAggregatesEveryMessage) {
  for (int shards : {1, 3}) {
    ShardRuntime rt(ShardConfig{.shards = shards, .channel_messages = 4});
    // 12 worlds x 5 progress messages through 4-deep pools: the pools cycle
    // many times, and the deterministic sums still come out exact.
    const RuntimeReport report = rt.Run(12, [](WorldContext& ctx) {
      for (int i = 0; i < 5; ++i) {
        ctx.Progress(/*sim_ns=*/ctx.world_id() + 1, /*syscalls=*/i, /*pages=*/2);
      }
    });
    EXPECT_EQ(report.worlds, 12);
    EXPECT_EQ(report.progress_messages, 60);
    EXPECT_EQ(report.sim_ns_sum, 5 * (12 * 13) / 2);
    EXPECT_EQ(report.syscalls_sum, 12 * (0 + 1 + 2 + 3 + 4));
    EXPECT_EQ(report.pages_sum, 120);
  }
}

// ---------------------------------------------------------------------------
// Differential harness: randomized world configs, run under different shard
// counts, compared against the shards=1 oracle.

std::vector<ShardWorldConfig> RandomWorldConfigs(uint64_t seed, int worlds) {
  Rng rng(seed);
  std::vector<ShardWorldConfig> configs;
  configs.reserve(static_cast<size_t>(worlds));
  for (int w = 0; w < worlds; ++w) {
    ShardWorldConfig c;
    c.world_id = w;
    c.base_seed = seed;
    c.processes = static_cast<int>(rng.Uniform(1, 3));
    c.files_per_process = static_cast<int>(rng.Uniform(2, 4));
    c.file_kib = rng.Uniform(16, 40) * 4;
    c.ops_per_process = rng.Uniform(16, 48);
    c.cache_pages = rng.Uniform(128, 384);
    configs.push_back(c);
  }
  return configs;
}

struct SweepOutcome {
  std::vector<ShardWorldResult> worlds;
  std::string merged_json;
  int64_t sim_ns_sum = 0;
  int64_t syscalls_sum = 0;
  int64_t pages_sum = 0;
};

SweepOutcome RunSweep(int shards, const std::vector<ShardWorldConfig>& configs) {
  ShardRuntime rt(ShardConfig{.shards = shards});
  SweepOutcome out;
  out.worlds.resize(configs.size());
  // Per-shard accumulators are thread-confined (each indexed slot is touched
  // only by its worker); merged after the join, in shard order.
  std::vector<ObsAccumulator> accs(static_cast<size_t>(rt.shards()));
  const RuntimeReport report =
      rt.Run(static_cast<int64_t>(configs.size()), [&](WorldContext& ctx) {
        ShardWorldConfig c = configs[static_cast<size_t>(ctx.world_id())];
        c.shard_id = ctx.shard_id();
        ShardWorldResult r = RunShardWorld(c, &accs[static_cast<size_t>(ctx.shard_id())]);
        out.worlds[static_cast<size_t>(ctx.world_id())] = r;
        ctx.Progress(r.sim_ns, r.syscalls, r.pages_paged_in);
      });
  ObsAccumulator total;
  for (const ObsAccumulator& acc : accs) {
    total.Absorb(acc);
  }
  out.merged_json = total.MetricsJson();
  out.sim_ns_sum = report.sim_ns_sum;
  out.syscalls_sum = report.syscalls_sum;
  out.pages_sum = report.pages_sum;
  return out;
}

void ExpectSameOutcome(const SweepOutcome& a, const SweepOutcome& b, const char* label) {
  ASSERT_EQ(a.worlds.size(), b.worlds.size()) << label;
  for (size_t w = 0; w < a.worlds.size(); ++w) {
    EXPECT_EQ(a.worlds[w], b.worlds[w]) << label << ": world " << w;
  }
  EXPECT_EQ(a.merged_json, b.merged_json) << label;
  EXPECT_EQ(a.sim_ns_sum, b.sim_ns_sum) << label;
  EXPECT_EQ(a.syscalls_sum, b.syscalls_sum) << label;
  EXPECT_EQ(a.pages_sum, b.pages_sum) << label;
}

// The ShardRuntime(1) inline path is byte-identical to driving the worlds
// directly with no runtime at all.
TEST(ShardDiff, OracleMatchesDirectExecution) {
  const auto configs = RandomWorldConfigs(11, 3);
  std::vector<ShardWorldResult> direct;
  ObsAccumulator direct_acc;
  for (const ShardWorldConfig& c : configs) {
    direct.push_back(RunShardWorld(c, &direct_acc));
  }
  const SweepOutcome oracle = RunSweep(1, configs);
  ASSERT_EQ(direct.size(), oracle.worlds.size());
  for (size_t w = 0; w < direct.size(); ++w) {
    EXPECT_EQ(direct[w], oracle.worlds[w]) << "world " << w;
  }
  EXPECT_EQ(direct_acc.MetricsJson(), oracle.merged_json);
}

// The headline property: merged results are identical across shard counts —
// partitioning worlds differently, onto different threads, must not move a
// single nanosecond of simulated time or a single histogram sample.
TEST(ShardDiff, MergedResultsIdenticalAcrossShardCounts) {
  const auto configs = RandomWorldConfigs(2024, 6);
  const SweepOutcome oracle = RunSweep(1, configs);
  EXPECT_GT(oracle.sim_ns_sum, 0);
  for (int shards : {2, 3, 4}) {
    const SweepOutcome sharded = RunSweep(shards, configs);
    ExpectSameOutcome(oracle, sharded,
                      ("shards=" + std::to_string(shards)).c_str());
  }
}

// Repeated-run stability: the same shard count twice, including the threaded
// paths, reproduces itself exactly.
TEST(ShardDiff, RepeatedRunsAreStable) {
  const auto configs = RandomWorldConfigs(7, 5);
  for (int shards : {1, 4}) {
    const SweepOutcome first = RunSweep(shards, configs);
    const SweepOutcome second = RunSweep(shards, configs);
    ExpectSameOutcome(first, second,
                      ("repeat shards=" + std::to_string(shards)).c_str());
  }
}

// Sanity: the comparison has teeth — a different base seed must change the
// merged outcome.
TEST(ShardDiff, SeedChangesOutcome) {
  const auto a = RunSweep(2, RandomWorldConfigs(100, 4));
  const auto b = RunSweep(2, RandomWorldConfigs(101, 4));
  EXPECT_NE(a.merged_json, b.merged_json);
  EXPECT_NE(a.sim_ns_sum, b.sim_ns_sum);
}

// Histogram merging is order- and partition-independent: any grouping of the
// same samples exports the same JSON. This is the algebra the cross-N
// determinism of merged exports rests on.
TEST(ObsMerge, HistogramMergePartitionIndependent) {
  Rng rng(99);
  std::vector<Duration> samples;
  for (int i = 0; i < 5000; ++i) {
    samples.push_back(Nanoseconds(rng.Uniform(0, 50'000'000)));
  }
  const auto merge_in_groups = [&](int groups) {
    std::vector<MetricRegistry> parts(static_cast<size_t>(groups));
    for (size_t i = 0; i < samples.size(); ++i) {
      parts[i % static_cast<size_t>(groups)].Observe("lat", samples[i]);
      parts[i % static_cast<size_t>(groups)].Add("n");
    }
    MetricRegistry total;
    for (const MetricRegistry& part : parts) {
      total.MergeFrom(part);
    }
    return total.ToJson();
  };
  const std::string one = merge_in_groups(1);
  EXPECT_EQ(one, merge_in_groups(2));
  EXPECT_EQ(one, merge_in_groups(3));
  EXPECT_EQ(one, merge_in_groups(7));
}

}  // namespace
}  // namespace sled
