// Tests for the observability subsystem: histogram bucketing/quantiles,
// registry exports, the trace ring, and the determinism + zero-simulated-cost
// guarantees of kernel-wide instrumentation.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/device/disk_device.h"
#include "src/fs/extent_file_system.h"
#include "src/kernel/sim_kernel.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sled {
namespace {

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (int i = 0; i < 10; ++i) {
    h.Record(Nanoseconds(1));
  }
  EXPECT_EQ(h.count(), 10);
  EXPECT_EQ(h.sum().nanos(), 10);
  EXPECT_EQ(h.min().nanos(), 1);
  EXPECT_EQ(h.max().nanos(), 1);
  EXPECT_EQ(h.Quantile(0.50).nanos(), 1);
  EXPECT_EQ(h.Quantile(0.99).nanos(), 1);
}

TEST(LatencyHistogramTest, QuantilesAreOrderedAndBounded) {
  LatencyHistogram h;
  for (int64_t v = 1; v <= 1000; ++v) {
    h.Record(Nanoseconds(v * 1000));  // 1 us .. 1 ms
  }
  const int64_t p50 = h.Quantile(0.50).nanos();
  const int64_t p95 = h.Quantile(0.95).nanos();
  const int64_t p99 = h.Quantile(0.99).nanos();
  EXPECT_LE(h.min().nanos(), p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max().nanos());
  // Log buckets with 4 sub-buckets: relative error of a quantile is <= 25%.
  EXPECT_NEAR(static_cast<double>(p50), 500e3, 0.25 * 500e3);
  EXPECT_NEAR(static_cast<double>(p99), 990e3, 0.25 * 990e3);
}

TEST(LatencyHistogramTest, BucketBoundsRoundTrip) {
  for (int64_t v : {0LL, 1LL, 3LL, 4LL, 5LL, 7LL, 100LL, 4096LL, 1000000LL, 123456789LL}) {
    const int index = LatencyHistogram::BucketIndex(v);
    EXPECT_LE(v, LatencyHistogram::BucketUpperBound(index)) << v;
    if (index > 0) {
      EXPECT_GT(v, LatencyHistogram::BucketUpperBound(index - 1)) << v;
    }
  }
  // Negative durations clamp into the zero bucket.
  EXPECT_EQ(LatencyHistogram::BucketIndex(-5), 0);
}

TEST(MetricRegistryTest, CountersAccumulateAndExportSorted) {
  MetricRegistry m;
  m.Add("b.two", 2);
  m.Add("a.one");
  m.Add("b.two", 3);
  m.Observe("lat", Microseconds(10));
  EXPECT_EQ(m.counter("a.one"), 1);
  EXPECT_EQ(m.counter("b.two"), 5);
  EXPECT_EQ(m.counter("missing"), 0);
  EXPECT_EQ(m.histogram("missing"), nullptr);
  const std::string json = m.ToJson();
  // Sorted keys: "a.one" appears before "b.two".
  EXPECT_LT(json.find("\"a.one\""), json.find("\"b.two\""));
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  const std::string csv = m.ToCsv();
  EXPECT_NE(csv.find("counter,a.one,1\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,b.two,5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,lat,1,10000,10000,10000,"), std::string::npos);
  // Identical state exports identical bytes.
  EXPECT_EQ(json, m.ToJson());
  EXPECT_EQ(csv, m.ToCsv());
}

TEST(TraceRingTest, DropsOldestAndKeepsGlobalSequence) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    TraceRecord e;
    e.at = TimePoint() + Nanoseconds(i);
    e.a = i;
    ring.Push(std::move(e));
  }
  EXPECT_EQ(ring.total(), 10);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6);
  const std::vector<TraceRecord> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6 + static_cast<int64_t>(i));  // oldest first
  }
  const std::string csv = ring.DumpCsv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "seq,t_ns,kind,pid,level,file,a,b,dur_ns,tag");
  // First data row carries the global sequence number of the oldest retained
  // event, so drops are visible.
  EXPECT_NE(csv.find("\n6,6,"), std::string::npos);
  // A bounded dump returns only the newest rows, sequence numbers intact.
  const std::string tail = ring.DumpCsv(2);
  EXPECT_EQ(tail.find("\n6,"), std::string::npos);
  EXPECT_NE(tail.find("\n8,"), std::string::npos);
  EXPECT_NE(tail.find("\n9,"), std::string::npos);
}

// ---- kernel-level integration ----

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
};

World MakeWorld(KernelConfig config = {}) {
  if (config.cache.capacity_pages == 0) {
    config.cache.capacity_pages = 64;
  }
  World w;
  w.kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

// A fixed workload touching reads, writes, readahead, and eviction.
void RunWorkload(World& w) {
  SimKernel& k = *w.kernel;
  Process& p = *w.proc;
  const std::string data(48 * kPageSize, 'z');
  const int fd = k.Create(p, "/data").value();
  ASSERT_TRUE(k.Write(p, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(k.Close(p, fd).ok());
  k.DropCaches();
  const int rfd = k.Open(p, "/data").value();
  char buf[8192];
  while (k.Read(p, rfd, std::span<char>(buf, sizeof(buf))).value() > 0) {
  }
  (void)k.IoctlSledsGet(p, rfd);
  ASSERT_TRUE(k.Close(p, rfd).ok());
}

TEST(ObserverKernelTest, HooksCoverSyscallsDevicesAndLevels) {
  World w = MakeWorld();
  RunWorkload(w);
  const MetricRegistry& m = w.kernel->obs().metrics();
  EXPECT_GT(m.counter("kernel.pageins"), 0);
  EXPECT_EQ(m.counter("kernel.pages_paged_in"), w.kernel->stats().pages_paged_in);
  EXPECT_GT(m.counter("kernel.readahead_batches"), 0);
  EXPECT_EQ(m.counter("kernel.readahead_pages"), w.kernel->stats().readahead_pages);
  EXPECT_GT(m.counter("dev.disk.reads"), 0);
  EXPECT_GT(m.counter("dev.disk.bytes_read"), 0);
  EXPECT_GT(m.counter("vfs.resolves"), 0);
  EXPECT_EQ(m.counter("kernel.sled_scans"), 1);
  // Level 1 is the mounted disk fs (level 0 = memory, which never pages in).
  EXPECT_GT(m.counter("level.1.disk.pageins"), 0);
  const LatencyHistogram* pagein = m.histogram("level.1.disk.pagein_time");
  ASSERT_NE(pagein, nullptr);
  EXPECT_GT(pagein->sum().nanos(), 0);
  const LatencyHistogram* read_lat = m.histogram("syscall.read");
  ASSERT_NE(read_lat, nullptr);
  EXPECT_GT(read_lat->count(), 0);
  EXPECT_LE(read_lat->Quantile(0.50), read_lat->Quantile(0.99));
  // The trace saw matching event kinds.
  bool saw_pagein = false;
  bool saw_device_read = false;
  bool saw_syscall_exit = false;
  for (const TraceRecord& e : w.kernel->obs().trace().Snapshot()) {
    saw_pagein |= e.kind == TraceKind::kPageIn;
    saw_device_read |= e.kind == TraceKind::kDeviceRead;
    saw_syscall_exit |= e.kind == TraceKind::kSyscallExit;
  }
  EXPECT_TRUE(saw_pagein);
  EXPECT_TRUE(saw_device_read);
  EXPECT_TRUE(saw_syscall_exit);
}

TEST(ObserverKernelTest, IdenticalRunsAreByteIdentical) {
  World a = MakeWorld();
  World b = MakeWorld();
  RunWorkload(a);
  RunWorkload(b);
  EXPECT_EQ(a.kernel->clock().Now().since_epoch().nanos(),
            b.kernel->clock().Now().since_epoch().nanos());
  EXPECT_EQ(a.kernel->obs().MetricsJson(), b.kernel->obs().MetricsJson());
  EXPECT_EQ(a.kernel->obs().metrics().ToCsv(), b.kernel->obs().metrics().ToCsv());
  EXPECT_EQ(a.kernel->obs().trace().DumpCsv(), b.kernel->obs().trace().DumpCsv());
}

TEST(ObserverKernelTest, TracingAndExportCostZeroSimulatedTime) {
  // A tiny trace ring (constant overflow) and a huge one must produce the
  // same simulated timeline: instrumentation never advances the clock.
  KernelConfig small;
  small.trace_events = 8;
  World a = MakeWorld(small);
  World b = MakeWorld();
  RunWorkload(a);
  RunWorkload(b);
  EXPECT_GT(a.kernel->obs().trace().dropped(), 0);
  EXPECT_EQ(a.kernel->obs().trace().dropped() + static_cast<int64_t>(8),
            b.kernel->obs().trace().total());
  EXPECT_EQ(a.kernel->clock().Now().since_epoch().nanos(),
            b.kernel->clock().Now().since_epoch().nanos());
  // Exporting is free too.
  const int64_t before = b.kernel->clock().Now().since_epoch().nanos();
  (void)b.kernel->obs().MetricsJson();
  (void)b.kernel->obs().trace().DumpCsv();
  (void)b.kernel->obs().metrics().ToCsv();
  EXPECT_EQ(b.kernel->clock().Now().since_epoch().nanos(), before);
}

TEST(ObserverKernelTest, WritebackHooksMatchKernelStats) {
  KernelConfig config;
  config.cache.capacity_pages = 16;
  config.writeback_batch_pages = 8;
  config.io.mode = IoMode::kFifoSync;  // asserts the synchronous bdflush model
  World w = MakeWorld(config);
  const std::string data(64 * kPageSize, 'w');
  const int fd = w.kernel->Create(*w.proc, "/out").value();
  ASSERT_TRUE(
      w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
  (void)w.kernel->FlushAllDirty();
  const MetricRegistry& m = w.kernel->obs().metrics();
  EXPECT_GT(m.counter("kernel.writeback_flushes"), 0);
  EXPECT_GT(m.counter("kernel.writeback_queued"), 0);
  EXPECT_EQ(m.counter("kernel.writeback_pages"), m.counter("kernel.writeback_queued"));
  const LatencyHistogram* flush = m.histogram("writeback.flush_time");
  ASSERT_NE(flush, nullptr);
  EXPECT_EQ(flush->count(), m.counter("kernel.writeback_flushes"));
  EXPECT_GT(m.counter("dev.disk.writes"), 0);
  EXPECT_GT(m.counter("dev.disk.bytes_written"), 0);
}

}  // namespace
}  // namespace sled
