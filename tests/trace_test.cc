// Tests for I/O trace capture and replay.
#include <gtest/gtest.h>

#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"
#include "src/workload/trace.h"

namespace sled {
namespace {

Testbed MakeSmallTestbed(uint64_t seed) {
  TestbedConfig config;
  config.cache_pages = 2048;  // 8 MiB
  config.seed = seed;
  return MakeTestbed(config);
}

Trace RecordLinearScan(Testbed& tb, const std::string& path, int64_t chunk) {
  Process& p = tb.kernel->CreateProcess("rec");
  TraceRecorder rec(*tb.kernel, p);
  const int fd = rec.Open(path).value();
  std::vector<char> buf(static_cast<size_t>(chunk));
  while (rec.Read(fd, std::span<char>(buf.data(), buf.size())).value() > 0) {
  }
  EXPECT_TRUE(rec.Close(fd).ok());
  return rec.TakeTrace();
}

TEST(TraceTest, RecorderCapturesSyscalls) {
  Testbed tb = MakeSmallTestbed(1);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(1);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(1), rng).ok());
  const Trace trace = RecordLinearScan(tb, "/data/f.txt", 64 * 1024);
  // open + 16 reads + close.
  ASSERT_EQ(trace.size(), 18u);
  EXPECT_EQ(trace.front().op, TraceOp::kOpen);
  EXPECT_EQ(trace.front().path, "/data/f.txt");
  EXPECT_EQ(trace.back().op, TraceOp::kClose);
  const TraceStats stats = SummarizeTrace(trace);
  EXPECT_EQ(stats.bytes_read, MiB(1));
  EXPECT_EQ(stats.opens, 1);
  EXPECT_EQ(stats.seeks, 0);
}

TEST(TraceTest, FormatParseRoundTrip) {
  Trace trace;
  trace.push_back({TraceOp::kOpen, 3, "/data/x", 0, 0});
  trace.push_back({TraceOp::kLseek, 3, "", 4096, 0});
  trace.push_back({TraceOp::kRead, 3, "", 0, 65536});
  trace.push_back({TraceOp::kMmapRead, 3, "", 8192, 100});
  trace.push_back({TraceOp::kWrite, 3, "", 0, 12});
  trace.push_back({TraceOp::kClose, 3, "", 0, 0});
  const std::string text = FormatTrace(trace);
  EXPECT_NE(text.find("open 3 /data/x"), std::string::npos);
  EXPECT_NE(text.find("lseek 3 4096"), std::string::npos);
  EXPECT_NE(text.find("mmap_read 3 8192 100"), std::string::npos);
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(static_cast<int>(parsed.value()[i].op), static_cast<int>(trace[i].op));
    EXPECT_EQ(parsed.value()[i].length, trace[i].length);
  }
  EXPECT_FALSE(ParseTrace("bogus 1 2\n").ok());
  EXPECT_FALSE(ParseTrace("read x\n").ok());
  EXPECT_TRUE(ParseTrace("# comment only\n").value().empty());
}

TEST(TraceTest, VerbatimReplayReproducesCosts) {
  Testbed tb = MakeSmallTestbed(2);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(2);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(4), rng).ok());
  tb.kernel->DropCaches();
  const Trace trace = RecordLinearScan(tb, "/data/f.txt", 64 * 1024);

  // Replay on a fresh identical testbed: same faults, similar elapsed.
  Testbed tb2 = MakeSmallTestbed(2);
  Process& gen2 = tb2.kernel->CreateProcess("gen");
  Rng rng2(2);
  ASSERT_TRUE(GenerateTextFile(*tb2.kernel, gen2, "/data/f.txt", MiB(4), rng2).ok());
  tb2.kernel->DropCaches();
  const ReplayResult r = ReplayTrace(*tb2.kernel, trace).value();
  EXPECT_EQ(r.major_faults, MiB(4) / kPageSize);
  EXPECT_GT(r.elapsed.ToSeconds(), 0.1);
}

TEST(TraceTest, ReorderedReplayBeatsVerbatimOnWarmTail) {
  Testbed tb = MakeSmallTestbed(3);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(3);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(12), rng).ok());
  const Trace trace = RecordLinearScan(tb, "/data/f.txt", 64 * 1024);

  auto measure = [&](bool reorder) {
    Testbed t = MakeSmallTestbed(3);
    Process& g = t.kernel->CreateProcess("gen");
    Rng r(3);
    EXPECT_TRUE(GenerateTextFile(*t.kernel, g, "/data/f.txt", MiB(12), r).ok());
    t.kernel->DropCaches();
    // Warm pass leaves the tail cached (the Figure 3 state).
    (void)ReplayTrace(*t.kernel, trace).value();
    ReplayOptions options;
    options.reorder_reads_with_sleds = reorder;
    return ReplayTrace(*t.kernel, trace, options).value();
  };
  const ReplayResult verbatim = measure(false);
  const ReplayResult reordered = measure(true);
  EXPECT_LT(reordered.major_faults, verbatim.major_faults / 2);
  EXPECT_LT(reordered.elapsed, verbatim.elapsed);
}

TEST(TraceTest, ReplayWithWritesStaysVerbatim) {
  Testbed tb = MakeSmallTestbed(4);
  Process& p = tb.kernel->CreateProcess("rec");
  TraceRecorder rec(*tb.kernel, p);
  const int fd = tb.kernel->Create(p, "/data/out").value();
  // Record a mixed session by hand (Create is not traced; use open on an
  // existing file).
  ASSERT_TRUE(tb.kernel->Close(p, fd).ok());
  const int rfd = rec.Open("/data/out").value();
  const std::string data(8192, 'x');
  ASSERT_TRUE(rec.Write(rfd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(rec.Lseek(rfd, 0, Whence::kSet).ok());
  std::vector<char> buf(4096);
  ASSERT_TRUE(rec.Read(rfd, std::span<char>(buf.data(), buf.size())).ok());
  ASSERT_TRUE(rec.Close(rfd).ok());
  const Trace trace = rec.TakeTrace();
  EXPECT_EQ(SummarizeTrace(trace).bytes_written, 8192);

  // Replays fine in both modes (write session is never re-planned).
  Testbed tb2 = MakeSmallTestbed(4);
  Process& g = tb2.kernel->CreateProcess("gen");
  const int ofd = tb2.kernel->Create(g, "/data/out").value();
  ASSERT_TRUE(tb2.kernel->Close(g, ofd).ok());
  ReplayOptions options;
  options.reorder_reads_with_sleds = true;
  EXPECT_TRUE(ReplayTrace(*tb2.kernel, trace, options).ok());
  EXPECT_EQ(tb2.kernel->Stat(g, "/data/out").value().size, 8192);
}

TEST(TraceTest, ReplayErrorsOnBadTrace) {
  Testbed tb = MakeSmallTestbed(5);
  Trace bad;
  bad.push_back({TraceOp::kRead, 9, "", 0, 100});  // read before open
  EXPECT_EQ(ReplayTrace(*tb.kernel, bad).error(), Err::kBadF);
  Trace missing;
  missing.push_back({TraceOp::kOpen, 1, "/data/nope", 0, 0});
  EXPECT_EQ(ReplayTrace(*tb.kernel, missing).error(), Err::kNoEnt);
}

}  // namespace
}  // namespace sled
