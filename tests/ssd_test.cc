// SsdDevice model, GC-spike fault windows, distribution-valued SLEDs, and
// tail-aware (rank_by) picking over a tiered SSD/HDD layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/device/disk_device.h"
#include "src/device/ssd_device.h"
#include "src/fs/extent_file_system.h"
#include "src/fs/tiered_fs.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/picker.h"

namespace sled {
namespace {

// ---- device model ----

TEST(SsdDeviceTest, ChannelParallelismSetsTransferCost) {
  SsdDeviceConfig config;
  SsdDevice ssd(config);
  // 8 pages across 8 channels: one wave. 9 pages: two waves.
  const Duration one_wave = ssd.Read(0, 8 * config.page_bytes).value();
  const Duration two_waves = ssd.Read(MiB(1), 9 * config.page_bytes).value();
  EXPECT_EQ(one_wave, config.per_request_overhead + config.read_page);
  EXPECT_EQ(two_waves, config.per_request_overhead + config.read_page * 2);
  // Random and sequential reads cost the same: flash has no head.
  const Duration random = ssd.Read(GiB(1), 8 * config.page_bytes).value();
  EXPECT_EQ(random, one_wave);
  EXPECT_EQ(ssd.stats().repositions, 0);
}

TEST(SsdDeviceTest, WritesUseProgramLatency) {
  SsdDeviceConfig config;
  SsdDevice ssd(config);
  const Duration w = ssd.Write(0, 8 * config.page_bytes).value();
  EXPECT_EQ(w, config.per_request_overhead + config.program_page);
}

TEST(SsdDeviceTest, FtlRemapsOnOverwrite) {
  SsdDevice ssd(SsdDeviceConfig{});
  EXPECT_EQ(ssd.PhysicalPageOf(0), -1);  // unwritten
  (void)ssd.Write(0, kPageSize);
  const int64_t first = ssd.PhysicalPageOf(0);
  EXPECT_GE(first, 0);
  (void)ssd.Write(0, kPageSize);
  // Out-of-place update: same logical page, new physical page.
  EXPECT_NE(ssd.PhysicalPageOf(0), first);
}

TEST(SsdDeviceTest, SustainedWritesTriggerGcAndWriteAmplification) {
  SsdDeviceConfig config;
  config.capacity_bytes = 64LL * 1024 * 1024;
  SsdDevice ssd(config);
  EXPECT_EQ(ssd.write_amplification(), 1.0);
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t off = PageFloor(rng.Uniform(0, config.capacity_bytes - MiB(1)));
    ASSERT_TRUE(ssd.Write(off, MiB(1)).ok());
  }
  EXPECT_GT(ssd.gc_cycles(), 0);
  EXPECT_GT(ssd.write_amplification(), 1.0);
  // The free pool never collapses: GC holds the line at the watermark.
  EXPECT_GE(ssd.free_fraction(), config.gc_low_watermark * 0.5);
}

TEST(SsdDeviceTest, GcStallsAreBoundedPerOp) {
  SsdDeviceConfig config;
  config.capacity_bytes = 64LL * 1024 * 1024;
  SsdDevice ssd(config);
  Rng rng(8);
  const Duration clean_read = config.per_request_overhead + config.read_page;
  Duration worst;
  for (int i = 0; i < 1000; ++i) {
    const int64_t off = PageFloor(rng.Uniform(0, config.capacity_bytes - MiB(1)));
    ASSERT_TRUE(ssd.Write(off, MiB(1)).ok());
    const Duration r = ssd.Read(off, kPageSize).value();
    worst = std::max(worst, r);
    // Every op's GC surcharge is capped, however deep the debt.
    EXPECT_LE(r, clean_read + config.gc_stall_cap);
  }
  EXPECT_GT(ssd.gc_cycles(), 0);
  EXPECT_GT(worst, clean_read);  // some read actually caught a stall
}

TEST(SsdDeviceTest, DeterministicAcrossRuns) {
  auto run = [] {
    SsdDeviceConfig config;
    config.capacity_bytes = 64LL * 1024 * 1024;
    SsdDevice ssd(config);
    Rng rng(9);
    Duration total;
    for (int i = 0; i < 500; ++i) {
      const int64_t off = PageFloor(rng.Uniform(0, config.capacity_bytes - MiB(1)));
      total += ssd.Write(off, MiB(1)).value();
    }
    return std::pair(total, ssd.write_amplification());
  };
  EXPECT_EQ(run(), run());
}

TEST(SsdDeviceTest, NominalCarriesTailQuantiles) {
  SsdDeviceConfig config;
  SsdDevice ssd(config);
  const DeviceCharacteristics c = ssd.Nominal();
  const LatencyQuantiles q = c.Quantiles();
  EXPECT_GT(q.p99, q.p50);  // the GC stall lives in the tail
  EXPECT_NEAR(q.p99 - q.p50, config.gc_stall_cap.ToSeconds(), 1e-9);
  // The scalar stays the mean, between the median and the tail.
  EXPECT_GT(c.latency.ToSeconds(), q.p50);
  EXPECT_LT(c.latency.ToSeconds(), q.p99);
}

// ---- GC-spike fault windows ----

TEST(GcWindowTest, DutyOneStallsEveryOpAndHealthReportsTail) {
  SimClock clock;
  SsdDevice ssd(SsdDeviceConfig{});
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  ssd.InjectFaults(plan);
  plan->AttachClock(&clock);

  const Duration clean = ssd.Read(0, kPageSize).value();
  plan->AddGcWindow(clock.Now(), clock.Now() + Seconds(100), Milliseconds(50), 1.0);
  const Duration stalled = ssd.Read(0, kPageSize).value();
  EXPECT_EQ(stalled, clean + Milliseconds(50));
  EXPECT_EQ(plan->stats().gc_stalls, 1);

  const DeviceHealth h = ssd.Health();
  EXPECT_TRUE(h.degraded());
  EXPECT_FALSE(h.unavailable);  // GC never fails ops
  EXPECT_DOUBLE_EQ(h.gc_stall_s, 0.050);
  EXPECT_DOUBLE_EQ(h.gc_duty, 1.0);

  clock.Advance(Seconds(200));
  EXPECT_FALSE(ssd.Health().degraded());
  EXPECT_EQ(ssd.Read(0, kPageSize).value(), clean);
}

TEST(GcWindowTest, DutyIsSeededAndDeterministic) {
  auto run = [] {
    SimClock clock;
    SsdDevice ssd(SsdDeviceConfig{});
    auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{.seed = 21});
    ssd.InjectFaults(plan);
    plan->AttachClock(&clock);
    plan->AddGcWindow(clock.Now(), clock.Now() + Seconds(100), Milliseconds(50), 0.3);
    Duration total;
    for (int i = 0; i < 100; ++i) {
      total += ssd.Read(i * kPageSize, kPageSize).value();
    }
    return std::pair(total, plan->stats().gc_stalls);
  };
  const auto a = run();
  EXPECT_EQ(a, run());
  EXPECT_GT(a.second, 0);
  EXPECT_LT(a.second, 100);
}

// ---- distribution-valued SLEDs through the kernel ----

struct SsdWorld {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
  ExtFs* fs = nullptr;
};

KernelConfig SmallKernelConfig() {
  KernelConfig config;
  config.cache.capacity_pages = 64;
  return config;
}

SsdWorld MakeSsdWorld() {
  SsdWorld w;
  w.kernel = std::make_unique<SimKernel>(SmallKernelConfig());
  auto fs = std::make_unique<ExtFs>("ssd", std::make_unique<SsdDevice>(SsdDeviceConfig{}));
  w.fs = fs.get();
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

TEST(SledQuantileTest, SledsCarryDeviceQuantiles) {
  SsdWorld w = MakeSsdWorld();
  const int fd = w.kernel->Create(*w.proc, "/f").value();
  const std::string data(static_cast<size_t>(MiB(1)), 'x');
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  w.kernel->FlushAllDirty();
  w.kernel->DropCaches();
  const SledVector sleds = w.kernel->IoctlSledsGet(*w.proc, fd).value();
  ASSERT_FALSE(sleds.empty());
  const LatencyQuantiles device_q = w.fs->device().Nominal().Quantiles();
  for (const Sled& s : sleds) {
    EXPECT_DOUBLE_EQ(s.latency_p50, device_q.p50);
    EXPECT_DOUBLE_EQ(s.latency_p99, device_q.p99);
    EXPECT_GT(s.latency_p99, s.latency_p50);
  }
}

TEST(SledQuantileTest, GcWindowMovesMeanByDutyShareAndTailByFullStall) {
  SsdWorld w = MakeSsdWorld();
  const int fd = w.kernel->Create(*w.proc, "/f").value();
  const std::string data(static_cast<size_t>(MiB(1)), 'x');
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  w.kernel->FlushAllDirty();
  w.kernel->DropCaches();
  const Sled before = w.kernel->IoctlSledsGet(*w.proc, fd).value().front();

  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  w.fs->device().InjectFaults(plan);
  plan->AttachClock(&w.kernel->clock());
  const TimePoint now = w.kernel->clock().Now();
  const double stall_s = 0.060;
  const double duty = 0.2;
  plan->AddGcWindow(now, now + Seconds(3600), SecondsF(stall_s), duty);

  const Sled during = w.kernel->IoctlSledsGet(*w.proc, fd).value().front();
  EXPECT_FALSE(during.unavailable);
  EXPECT_NEAR(during.latency, before.latency + duty * stall_s, 1e-9);
  EXPECT_NEAR(during.latency_p99, before.latency_p99 + stall_s, 1e-9);
  EXPECT_NEAR(during.latency_p50, before.latency_p50, 1e-9);  // duty < 0.5
}

TEST(SledQuantileTest, ScalarCalibrationPreservesTailShape) {
  SsdWorld w = MakeSsdWorld();
  const int level = 1;  // 0 = memory, 1 = the ssd
  const LatencyQuantiles before = w.kernel->sleds_table().row(level).chars.latency_q;
  ASSERT_FALSE(before.empty());
  const double old_mean = w.kernel->sleds_table().row(level).chars.latency.ToSeconds();
  // An lmbench-style calibrator measures only a mean and FSLEDS_FILLs it.
  ASSERT_TRUE(w.kernel
                  ->IoctlSledsFill(*w.proc, level,
                                   DeviceCharacteristics{Milliseconds(1), 400.0e6, {}})
                  .ok());
  const DeviceCharacteristics after = w.kernel->sleds_table().row(level).chars;
  ASSERT_FALSE(after.latency_q.empty());
  const double ratio = 0.001 / old_mean;
  EXPECT_NEAR(after.latency_q.p99, before.p99 * ratio, 1e-12);
  EXPECT_NEAR(after.latency_q.p50, before.p50 * ratio, 1e-12);
}

// ---- tiered SSD/HDD layout and rank_by ----

struct TieredWorld {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
  TieredFs* fs = nullptr;
};

TieredWorld MakeTieredWorld() {
  TieredWorld w;
  w.kernel = std::make_unique<SimKernel>(SmallKernelConfig());
  auto fs = std::make_unique<TieredFs>("tiered", std::make_unique<SsdDevice>(SsdDeviceConfig{}),
                                       std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  w.fs = fs.get();
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

TEST(TieredFsTest, PagesStripeAcrossTiers) {
  TieredWorld w = MakeTieredWorld();
  const TieredFsConfig config;
  EXPECT_EQ(w.fs->LevelOf(0, 0), 0);
  EXPECT_EQ(w.fs->LevelOf(0, config.stripe_pages - 1), 0);
  EXPECT_EQ(w.fs->LevelOf(0, config.stripe_pages), 1);
  EXPECT_EQ(w.fs->LevelOf(0, 2 * config.stripe_pages), 0);
  EXPECT_EQ(w.fs->LevelRunLen(0, 0, 1000), config.stripe_pages);
  EXPECT_EQ(w.fs->LevelRunLen(0, config.stripe_pages - 1, 1000), 1);
  EXPECT_EQ(w.fs->Levels().size(), 2u);
  EXPECT_EQ(w.fs->DeviceAddressOf(0, 0), -1);
  EXPECT_EQ(w.fs->PrimaryDevice(), nullptr);
}

TEST(TieredFsTest, ReadWriteRoundTripChargesBothDevices) {
  TieredWorld w = MakeTieredWorld();
  const int fd = w.kernel->Create(*w.proc, "/f").value();
  // Two full stripes: half the pages on each tier.
  const TieredFsConfig config;
  const int64_t size = 2 * config.stripe_pages * kPageSize;
  const std::string data(static_cast<size_t>(size), 'y');
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  w.kernel->FlushAllDirty();
  EXPECT_GT(w.fs->tier(0).stats().bytes_written, 0);
  EXPECT_GT(w.fs->tier(1).stats().bytes_written, 0);
  w.kernel->DropCaches();
  ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, 0, Whence::kSet).ok());
  std::vector<char> buf(static_cast<size_t>(size));
  ASSERT_EQ(w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size())).value(), size);
  EXPECT_EQ(std::string(buf.begin(), buf.end()), data);
  EXPECT_GT(w.fs->tier(0).stats().bytes_read, 0);
  EXPECT_GT(w.fs->tier(1).stats().bytes_read, 0);
}

TEST(TieredFsTest, ShrinkToNonzeroKeepsRegionsAcrossRegrow) {
  TieredWorld w = MakeTieredWorld();
  const int fd = w.kernel->Create(*w.proc, "/f").value();
  const TieredFsConfig config;
  const int64_t size = 2 * config.stripe_pages * kPageSize;
  const std::string data(static_cast<size_t>(size), 'z');
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  w.kernel->FlushAllDirty();

  // Shrink to a nonzero size: the regions are kept (bump allocator), so
  // regrowing back within the original span must not allocate anything new —
  // the rewritten tail lands on the same device addresses and round-trips.
  ASSERT_TRUE(w.kernel->Ftruncate(*w.proc, fd, config.stripe_pages * kPageSize / 2).ok());
  ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, config.stripe_pages * kPageSize / 2, Whence::kSet).ok());
  const std::string tail(static_cast<size_t>(size - config.stripe_pages * kPageSize / 2), 'w');
  ASSERT_TRUE(
      w.kernel->Write(*w.proc, fd, std::span<const char>(tail.data(), tail.size())).ok());
  w.kernel->FlushAllDirty();
  w.kernel->DropCaches();

  ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, 0, Whence::kSet).ok());
  std::vector<char> buf(static_cast<size_t>(size));
  ASSERT_EQ(w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size())).value(), size);
  EXPECT_TRUE(std::all_of(buf.begin(), buf.begin() + config.stripe_pages * kPageSize / 2,
                          [](char c) { return c == 'z'; }));
  EXPECT_TRUE(std::all_of(buf.begin() + config.stripe_pages * kPageSize / 2, buf.end(),
                          [](char c) { return c == 'w'; }));
}

TEST(TieredFsTest, GrowPastOneTierFailsNoSpcWithoutCorruptingAllocator) {
  // Tier 0 can hold 41 pages past its metadata page; tier 1 is huge. A grow
  // that does not fit tier 0 must fail kNoSpc *before* either bump pointer
  // moves, so smaller allocations keep succeeding afterwards.
  DiskDeviceConfig small;
  small.capacity_bytes = 42 * kPageSize;  // 1 metadata page + 41 usable
  TieredFs fs("t", std::make_unique<DiskDevice>(small),
              std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  const InodeNum ino = fs.CreateFile(fs.root(), "f").value();
  const std::string a(static_cast<size_t>(32 * kPageSize), 'a');
  ASSERT_TRUE(fs.WriteBytes(ino, 0, std::span<const char>(a.data(), a.size())).ok());

  // Growing to 48 pages needs a fresh 48-page region on both tiers; tier 0
  // has only 9 pages left.
  auto grow = fs.Truncate(ino, 48 * kPageSize);
  ASSERT_FALSE(grow.ok());
  EXPECT_EQ(grow.error(), Err::kNoSpc);

  // The original region still maps and serves I/O.
  EXPECT_TRUE(fs.ReadPagesFromStore(ino, 0, 32).ok());

  // The failed grow consumed nothing: a 4-page file still fits (33 + 4 + 4
  // would not fit twice, so a second over-ask keeps failing deterministically).
  const InodeNum ino2 = fs.CreateFile(fs.root(), "g").value();
  const std::string b(static_cast<size_t>(4 * kPageSize), 'b');
  ASSERT_TRUE(fs.WriteBytes(ino2, 0, std::span<const char>(b.data(), b.size())).ok());
  EXPECT_TRUE(fs.ReadPagesFromStore(ino2, 0, 4).ok());
  auto grow2 = fs.Truncate(ino, 48 * kPageSize);
  ASSERT_FALSE(grow2.ok());
  EXPECT_EQ(grow2.error(), Err::kNoSpc);
}

TEST(RankByTest, P99RankingDefersSsdInsideGcWindow) {
  TieredWorld w = MakeTieredWorld();
  const int fd = w.kernel->Create(*w.proc, "/f").value();
  const TieredFsConfig config;
  const int64_t size = 4 * config.stripe_pages * kPageSize;
  const std::string data(static_cast<size_t>(size), 'z');
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  w.kernel->FlushAllDirty();
  w.kernel->DropCaches();

  // Open a GC window on the SSD tier: mean barely moves (duty * stall =
  // 12 ms < the disk's 18 ms mean) but the p99 balloons past the disk's.
  auto plan = std::make_shared<FaultPlan>(FaultPlanConfig{});
  w.fs->tier(0).InjectFaults(plan);
  plan->AttachClock(&w.kernel->clock());
  const TimePoint now = w.kernel->clock().Now();
  plan->AddGcWindow(now, now + Seconds(3600), Milliseconds(60), 0.2);

  const SledVector sleds = w.kernel->IoctlSledsGet(*w.proc, fd).value();
  ASSERT_GE(sleds.size(), 4u);
  const auto ssd_sled = std::find_if(sleds.begin(), sleds.end(),
                                     [](const Sled& s) { return s.offset == 0; });
  const auto disk_sled = std::find_if(sleds.begin(), sleds.end(), [&](const Sled& s) {
    return s.offset == config.stripe_pages * kPageSize;
  });
  ASSERT_NE(ssd_sled, sleds.end());
  ASSERT_NE(disk_sled, sleds.end());
  EXPECT_LT(ssd_sled->latency, disk_sled->latency);          // mean: SSD looks cheap
  EXPECT_GT(ssd_sled->latency_p99, disk_sled->latency_p99);  // tail: SSD is the risk

  // Mean-ranked plan starts on the SSD stripe; p99-ranked defers it.
  PickerOptions mean_opts;
  auto mean_picker = SledsPicker::Create(*w.kernel, *w.proc, fd, mean_opts).value();
  EXPECT_EQ(mean_picker->plan().front().offset, 0);

  PickerOptions p99_opts;
  p99_opts.rank_by = RankBy::kP99;
  auto p99_picker = SledsPicker::Create(*w.kernel, *w.proc, fd, p99_opts).value();
  EXPECT_EQ(p99_picker->plan().front().offset, config.stripe_pages * kPageSize);
  // Both plans still cover every byte exactly once.
  int64_t mean_total = 0, p99_total = 0;
  for (const Sled& s : mean_picker->plan()) mean_total += s.length;
  for (const Sled& s : p99_picker->plan()) p99_total += s.length;
  EXPECT_EQ(mean_total, size);
  EXPECT_EQ(p99_total, size);
}

}  // namespace
}  // namespace sled
