// Tests for the SLEDs pick library, the delivery-time estimator, and the
// paper-style C API.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <string>

#include "src/common/rng.h"
#include "src/device/disk_device.h"
#include "src/fs/extent_file_system.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/c_api.h"
#include "src/sleds/delivery.h"
#include "src/sleds/picker.h"

namespace sled {
namespace {

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
};

World MakeWorld(int64_t cache_pages) {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = cache_pages;
  w.kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

void WriteFile(SimKernel& k, Process& p, const std::string& path, const std::string& data) {
  const int fd = k.Create(p, path).value();
  ASSERT_TRUE(k.Write(p, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(k.Close(p, fd).ok());
}

// Touch pages [first, last) of an open file so they are cached.
void TouchPages(SimKernel& k, Process& p, int fd, int64_t first, int64_t last) {
  char b;
  for (int64_t page = first; page < last; ++page) {
    ASSERT_TRUE(k.Lseek(p, fd, page * kPageSize, Whence::kSet).ok());
    ASSERT_TRUE(k.Read(p, fd, std::span<char>(&b, 1)).ok());
  }
}

TEST(PickerTest, ColdFileDegeneratesToLinearScan) {
  World w = MakeWorld(64);
  const int64_t size = 32 * kPageSize;
  WriteFile(*w.kernel, *w.proc, "/f", std::string(size, 'a'));
  w.kernel->DropCaches();
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  auto picker = SledsPicker::Create(*w.kernel, *w.proc, fd,
                                    PickerOptions{.preferred_chunk_bytes = 4 * kPageSize})
                    .value();
  // "In the simple case of a disk-based file system with a cold cache, this
  // algorithm will degenerate to linear access of the file."
  int64_t expected = 0;
  while (true) {
    auto pick = picker->NextRead().value();
    if (pick.length == 0) {
      break;
    }
    EXPECT_EQ(pick.offset, expected);
    EXPECT_LE(pick.length, 4 * kPageSize);
    expected = pick.offset + pick.length;
  }
  EXPECT_EQ(expected, size);
}

TEST(PickerTest, CachedTailComesFirst) {
  World w = MakeWorld(1024);
  const int64_t pages = 32;
  WriteFile(*w.kernel, *w.proc, "/f", std::string(pages * kPageSize, 'a'));
  w.kernel->DropCaches();
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  TouchPages(*w.kernel, *w.proc, fd, 24, 32);  // cache the last 8 pages

  auto picker = SledsPicker::Create(*w.kernel, *w.proc, fd,
                                    PickerOptions{.preferred_chunk_bytes = 8 * kPageSize})
                    .value();
  auto first = picker->NextRead().value();
  EXPECT_EQ(first.offset, 24 * kPageSize);  // the cached tail
  EXPECT_EQ(first.length, 8 * kPageSize);
  auto second = picker->NextRead().value();
  EXPECT_EQ(second.offset, 0);  // then the cold head, in offset order
}

TEST(PickerTest, EveryByteExactlyOnce) {
  World w = MakeWorld(64);
  const int64_t size = 48 * kPageSize + 777;
  WriteFile(*w.kernel, *w.proc, "/f", std::string(size, 'a'));
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  TouchPages(*w.kernel, *w.proc, fd, 10, 20);

  auto picker = SledsPicker::Create(*w.kernel, *w.proc, fd,
                                    PickerOptions{.preferred_chunk_bytes = 3 * kPageSize + 17})
                    .value();
  std::vector<char> seen(static_cast<size_t>(size), 0);
  while (true) {
    auto pick = picker->NextRead().value();
    if (pick.length == 0) {
      break;
    }
    for (int64_t i = pick.offset; i < pick.offset + pick.length; ++i) {
      ASSERT_EQ(seen[static_cast<size_t>(i)], 0) << "byte offered twice at " << i;
      seen[static_cast<size_t>(i)] = 1;
    }
  }
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), int64_t{0}), size);
  EXPECT_TRUE(picker->done());
}

TEST(PickerTest, LatencyMonotoneOverPlan) {
  World w = MakeWorld(1024);
  WriteFile(*w.kernel, *w.proc, "/f", std::string(64 * kPageSize, 'a'));
  w.kernel->DropCaches();
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  TouchPages(*w.kernel, *w.proc, fd, 0, 4);
  TouchPages(*w.kernel, *w.proc, fd, 40, 50);
  auto picker = SledsPicker::Create(*w.kernel, *w.proc, fd, PickerOptions{}).value();
  double last_latency = -1.0;
  for (const Sled& s : picker->plan()) {
    EXPECT_GE(s.latency, last_latency);
    last_latency = s.latency;
  }
}

TEST(PickerTest, RecordModeAlignsSledEdgesToSeparators) {
  World w = MakeWorld(1024);
  // 8 pages of text with a line every 100 bytes.
  std::string data;
  while (data.size() < 8 * kPageSize) {
    data += std::string(99, 'x');
    data += '\n';
  }
  data.resize(8 * kPageSize);
  WriteFile(*w.kernel, *w.proc, "/f", data);
  w.kernel->DropCaches();
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  TouchPages(*w.kernel, *w.proc, fd, 2, 6);  // cache the middle

  PickerOptions options;
  options.record_oriented = true;
  options.record_separator = '\n';
  auto picker = SledsPicker::Create(*w.kernel, *w.proc, fd, options).value();

  // The low-latency (memory) segment's edges must fall just after a '\n'.
  bool found_memory = false;
  for (const Sled& s : picker->plan()) {
    if (s.level == kMemoryLevel) {
      found_memory = true;
      EXPECT_EQ(data[static_cast<size_t>(s.offset) - 1], '\n');
      EXPECT_EQ(data[static_cast<size_t>(s.offset + s.length) - 1], '\n');
      // Pulled-in edges: strictly inside the original page range.
      EXPECT_GE(s.offset, 2 * kPageSize);
      EXPECT_LE(s.offset + s.length, 6 * kPageSize);
    }
  }
  EXPECT_TRUE(found_memory);

  // Exactly-once still holds after adjustment.
  int64_t total = 0;
  while (true) {
    auto pick = picker->NextRead().value();
    if (pick.length == 0) {
      break;
    }
    total += pick.length;
  }
  EXPECT_EQ(total, static_cast<int64_t>(data.size()));
}

TEST(PickerTest, RefreshNoticesNewlyCachedData) {
  World w = MakeWorld(1024);
  WriteFile(*w.kernel, *w.proc, "/f", std::string(64 * kPageSize, 'a'));
  w.kernel->DropCaches();
  const int fd = w.kernel->Open(*w.proc, "/f").value();

  PickerOptions options;
  options.preferred_chunk_bytes = kPageSize;
  options.refresh_every_n_picks = 4;
  auto picker = SledsPicker::Create(*w.kernel, *w.proc, fd, options).value();
  // Consume a few picks, then cache the tail behind the picker's back.
  for (int i = 0; i < 4; ++i) {
    (void)picker->NextRead().value();
  }
  TouchPages(*w.kernel, *w.proc, fd, 60, 64);
  // The refresh on the next pick should reorder: the newly cached tail
  // appears before the still-cold middle.
  auto pick = picker->NextRead().value();
  EXPECT_EQ(pick.offset, 60 * kPageSize);
  // Exactly-once coverage of the remainder still holds.
  int64_t total = pick.length;
  while (true) {
    auto next = picker->NextRead().value();
    if (next.length == 0) {
      break;
    }
    total += next.length;
  }
  EXPECT_EQ(total, 60 * kPageSize);  // everything except the 4 pages consumed
}

TEST(DeliveryTest, TotalMatchesSumOfSleds) {
  SledVector sleds;
  sleds.push_back({0, 1000000, 0.018, 9.0e6, 1});
  sleds.push_back({1000000, 500000, 175e-9, 48.0e6, 0});
  const Duration linear = TotalDeliveryTime(sleds, AttackPlan::kLinear);
  const Duration best = TotalDeliveryTime(sleds, AttackPlan::kBest);
  const double expected =
      0.018 + 1000000 / 9.0e6 + 175e-9 + 500000 / 48.0e6;
  EXPECT_NEAR(linear.ToSeconds(), expected, 1e-6);
  EXPECT_NEAR(best.ToSeconds(), expected, 1e-6);
}

TEST(DeliveryTest, WarmFileDeliversFasterThanCold) {
  World w = MakeWorld(2048);
  WriteFile(*w.kernel, *w.proc, "/f", std::string(64 * kPageSize, 'a'));
  w.kernel->DropCaches();
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  const Duration cold = TotalDeliveryTime(*w.kernel, *w.proc, fd, AttackPlan::kBest).value();
  TouchPages(*w.kernel, *w.proc, fd, 0, 64);
  const Duration warm = TotalDeliveryTime(*w.kernel, *w.proc, fd, AttackPlan::kBest).value();
  EXPECT_LT(warm.ToSeconds() * 5, cold.ToSeconds());
}

TEST(DeliveryTest, FormatSledReportListsLevels) {
  World w = MakeWorld(64);
  WriteFile(*w.kernel, *w.proc, "/f", std::string(4 * kPageSize, 'a'));
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  SledVector sleds = w.kernel->IoctlSledsGet(*w.proc, fd).value();
  const std::string report = FormatSledReport(*w.kernel, sleds);
  EXPECT_NE(report.find("memory"), std::string::npos);
  EXPECT_NE(report.find("estimated total delivery time"), std::string::npos);
}

TEST(CApiTest, PaperWorkflow) {
  World w = MakeWorld(256);
  const int64_t size = 16 * kPageSize;
  WriteFile(*w.kernel, *w.proc, "/f", std::string(size, 'a'));
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  SledsContext ctx{w.kernel.get(), w.proc};

  ASSERT_EQ(sleds_pick_init(ctx, fd, 8192), 8192);
  long offset = 0;
  long nbytes = 0;
  int64_t total = 0;
  while (sleds_pick_next_read(ctx, fd, &offset, &nbytes) == 0 && nbytes > 0) {
    ASSERT_LE(nbytes, 8192);
    total += nbytes;
  }
  EXPECT_EQ(total, size);
  EXPECT_EQ(sleds_pick_finish(ctx, fd), 0);
  EXPECT_EQ(sleds_pick_finish(ctx, fd), -1);  // already finished

  const double t = sleds_total_delivery_time(ctx, fd, SLEDS_BEST);
  EXPECT_GT(t, 0.0);
  EXPECT_GE(sleds_total_delivery_time(ctx, fd, SLEDS_LINEAR), t * 0.99);
}

TEST(CApiTest, ErrorsReturnMinusOne) {
  World w = MakeWorld(64);
  SledsContext ctx{w.kernel.get(), w.proc};
  long a = 0;
  long b = 0;
  EXPECT_EQ(sleds_pick_init(ctx, 42, 8192), -1);             // bad fd
  EXPECT_EQ(sleds_pick_init(ctx, 3, 0), -1);                 // bad buffer size
  EXPECT_EQ(sleds_pick_next_read(ctx, 3, &a, &b), -1);       // not initialized
  EXPECT_EQ(sleds_pick_next_read(ctx, 3, nullptr, &b), -1);  // null out-params
  EXPECT_LT(sleds_total_delivery_time(ctx, 42, SLEDS_BEST), 0.0);
  EXPECT_EQ(sleds_pick_init(SledsContext{}, 3, 8192), -1);   // null context
}

// Property sweep: exactly-once coverage holds for arbitrary chunk sizes,
// cache geometries, and cached-region patterns.
class PickerPropertyTest : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, uint64_t>> {
};

TEST_P(PickerPropertyTest, ExactlyOnceUnderRandomCacheState) {
  const auto [chunk, file_pages, seed] = GetParam();
  World w = MakeWorld(file_pages);  // cache can hold the whole file
  Rng rng(seed);
  const int64_t size = file_pages * kPageSize - rng.Uniform(0, kPageSize - 1);
  WriteFile(*w.kernel, *w.proc, "/f", std::string(size, 'a'));
  w.kernel->DropCaches();
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  // Cache a few random page ranges.
  for (int r = 0; r < 3; ++r) {
    const int64_t first = rng.Uniform(0, file_pages - 1);
    const int64_t last = std::min<int64_t>(file_pages, first + rng.Uniform(1, 8));
    TouchPages(*w.kernel, *w.proc, fd, first, last);
  }
  auto picker = SledsPicker::Create(*w.kernel, *w.proc, fd,
                                    PickerOptions{.preferred_chunk_bytes = chunk})
                    .value();
  std::vector<char> seen(static_cast<size_t>(size), 0);
  while (true) {
    auto pick = picker->NextRead().value();
    if (pick.length == 0) {
      break;
    }
    ASSERT_LE(pick.length, chunk);
    for (int64_t i = pick.offset; i < pick.offset + pick.length; ++i) {
      ASSERT_EQ(seen[static_cast<size_t>(i)], 0);
      seen[static_cast<size_t>(i)] = 1;
    }
  }
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), int64_t{0}), size);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PickerPropertyTest,
    ::testing::Combine(::testing::Values(kPageSize / 2, kPageSize, 5 * kPageSize + 1,
                                         16 * kPageSize),
                       ::testing::Values(8, 33, 64), ::testing::Values(3u, 1007u)));

}  // namespace
}  // namespace sled

namespace sled {
namespace {

// Property sweep: record-oriented picking preserves exactly-once coverage
// and never splits a line across a low/high-latency seam, for random line
// lengths and cache states.
class RecordModePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecordModePropertyTest, ExactlyOnceAndSeamsOnSeparators) {
  const uint64_t seed = GetParam();
  World w = MakeWorld(256);
  Rng rng(seed);
  std::string data;
  const int64_t target = 48 * kPageSize;
  while (static_cast<int64_t>(data.size()) < target) {
    const int64_t len = rng.Uniform(1, 200);
    for (int64_t i = 0; i < len; ++i) {
      data.push_back(static_cast<char>('a' + rng.Uniform(0, 25)));
    }
    data.push_back('\n');
  }
  WriteFile(*w.kernel, *w.proc, "/f", data);
  w.kernel->DropCaches();
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  for (int r = 0; r < 3; ++r) {
    const int64_t first = rng.Uniform(0, 40);
    TouchPages(*w.kernel, *w.proc, fd, first, first + rng.Uniform(2, 8));
  }
  PickerOptions options;
  options.record_oriented = true;
  options.preferred_chunk_bytes = 3 * kPageSize;
  auto picker = SledsPicker::Create(*w.kernel, *w.proc, fd, options).value();

  // Seams between different-latency segments fall just after '\n' (or at
  // the file edges).
  const SledVector& plan = picker->plan();
  std::vector<Sled> by_offset = plan;
  std::sort(by_offset.begin(), by_offset.end(),
            [](const Sled& a, const Sled& b) { return a.offset < b.offset; });
  for (size_t i = 0; i + 1 < by_offset.size(); ++i) {
    if (by_offset[i].latency != by_offset[i + 1].latency) {
      const int64_t seam = by_offset[i].offset + by_offset[i].length;
      ASSERT_GT(seam, 0);
      EXPECT_EQ(data[static_cast<size_t>(seam) - 1], '\n') << "seam " << seam;
    }
  }

  // Exactly-once coverage.
  std::vector<char> seen(data.size(), 0);
  while (true) {
    auto pick = picker->NextRead().value();
    if (pick.length == 0) {
      break;
    }
    for (int64_t i = pick.offset; i < pick.offset + pick.length; ++i) {
      ASSERT_EQ(seen[static_cast<size_t>(i)], 0);
      seen[static_cast<size_t>(i)] = 1;
    }
  }
  for (char c : seen) {
    ASSERT_EQ(c, 1);
  }
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordModePropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

TEST(DeliveryTest, LinearAndBestAgreeOnAnyVector) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    SledVector sleds;
    int64_t offset = 0;
    const int n = static_cast<int>(rng.Uniform(1, 12));
    for (int i = 0; i < n; ++i) {
      Sled s;
      s.offset = offset;
      s.length = rng.Uniform(1, 1 << 20);
      s.latency = rng.UniformDouble() * 0.1;
      s.bandwidth = 1e6 + rng.UniformDouble() * 5e7;
      s.level = static_cast<int>(rng.Uniform(0, 3));
      offset += s.length;
      sleds.push_back(s);
    }
    // Full-file delivery is order-independent: both plans sum every SLED.
    EXPECT_EQ(TotalDeliveryTime(sleds, AttackPlan::kLinear).nanos(),
              TotalDeliveryTime(sleds, AttackPlan::kBest).nanos());
  }
}

}  // namespace
}  // namespace sled
