// Tests for the LHEASOFT tools (fimhisto, fimgbin) and the element scanner.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>

#include "src/apps/fimgbin.h"
#include "src/apps/fimhisto.h"
#include "src/apps/fits_scan.h"
#include "src/common/rng.h"
#include "src/device/disk_device.h"
#include "src/fs/extent_file_system.h"
#include "src/workload/fits_gen.h"

namespace sled {
namespace {

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
};

World MakeWorld(int64_t cache_pages = 4096) {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = cache_pages;
  w.kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

FitsHeader MakeTestImage(World& w, const std::string& path, int bitpix, int64_t side,
                         uint64_t seed) {
  FitsImage image;
  image.header.bitpix = bitpix;
  image.header.naxis = {side, side};
  image.pixels.resize(static_cast<size_t>(side * side));
  Rng rng(seed);
  for (size_t i = 0; i < image.pixels.size(); ++i) {
    image.pixels[i] = std::floor(rng.Normal(100.0, 20.0));
  }
  EXPECT_TRUE(FitsWriteImage(*w.kernel, *w.proc, path, image).ok());
  FitsHeader header = image.header;
  header.data_offset = static_cast<int64_t>(FitsEncodeHeader(header).size());
  return header;
}

TEST(FitsScanTest, SequentialAndSledsSeeSameElements) {
  World w = MakeWorld();
  const FitsHeader header = MakeTestImage(w, "/img.fits", -32, 128, 3);
  const int fd = w.kernel->Open(*w.proc, "/img.fits").value();

  auto collect = [&](bool use_sleds) {
    std::vector<double> values(static_cast<size_t>(header.element_count()), 0.0);
    EXPECT_TRUE(FitsScanElements(*w.kernel, *w.proc, fd, header, use_sleds, 1000, AppCpuCosts{},
                                 [&](int64_t first, std::span<const double> vals) {
                                   for (size_t i = 0; i < vals.size(); ++i) {
                                     values[static_cast<size_t>(first) + i] = vals[i];
                                   }
                                 })
                    .ok());
    return values;
  };
  const auto seq = collect(false);
  const auto via_sleds = collect(true);
  EXPECT_EQ(seq, via_sleds);
  const double sum = std::accumulate(seq.begin(), seq.end(), 0.0);
  EXPECT_NE(sum, 0.0);
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(FimhistoTest, HistogramIdenticalWithAndWithoutSleds) {
  World w = MakeWorld();
  (void)MakeTestImage(w, "/in.fits", 16, 256, 7);
  FimhistoOptions plain;
  plain.num_bins = 32;
  FimhistoOptions sleds = plain;
  sleds.use_sleds = true;
  const FimhistoResult a =
      FimhistoApp::Run(*w.kernel, *w.proc, "/in.fits", "/out_plain.fits", plain).value();
  const FimhistoResult b =
      FimhistoApp::Run(*w.kernel, *w.proc, "/in.fits", "/out_sleds.fits", sleds).value();
  EXPECT_EQ(a.bins, b.bins);
  EXPECT_DOUBLE_EQ(a.min_value, b.min_value);
  EXPECT_DOUBLE_EQ(a.max_value, b.max_value);
  // All pixels are binned.
  EXPECT_EQ(std::accumulate(a.bins.begin(), a.bins.end(), int64_t{0}), 256 * 256);
}

TEST(FimhistoTest, OutputContainsCopyPlusHistogram) {
  World w = MakeWorld();
  (void)MakeTestImage(w, "/in.fits", -32, 64, 9);
  const FimhistoOptions options;
  ASSERT_TRUE(FimhistoApp::Run(*w.kernel, *w.proc, "/in.fits", "/out.fits", options).ok());
  const int64_t in_size = w.kernel->Stat(*w.proc, "/in.fits").value().size;
  const int64_t out_size = w.kernel->Stat(*w.proc, "/out.fits").value().size;
  EXPECT_GT(out_size, in_size);  // appended extension
  EXPECT_EQ(out_size % kFitsBlock, 0);
  // The copy is byte-identical: the copied image parses to the same header.
  auto out_img = FitsReadImage(*w.kernel, *w.proc, "/out.fits");
  ASSERT_TRUE(out_img.ok());
  EXPECT_EQ(out_img->header.naxis, (std::vector<int64_t>{64, 64}));
}

TEST(FimhistoTest, RejectsBadArguments) {
  World w = MakeWorld();
  (void)MakeTestImage(w, "/in.fits", -32, 32, 1);
  FimhistoOptions bad;
  bad.num_bins = 0;
  EXPECT_EQ(FimhistoApp::Run(*w.kernel, *w.proc, "/in.fits", "/o.fits", bad).error(),
            Err::kInval);
  EXPECT_EQ(
      FimhistoApp::Run(*w.kernel, *w.proc, "/missing.fits", "/o.fits", FimhistoOptions{}).error(),
      Err::kNoEnt);
}

TEST(FimgbinTest, BoxcarAveragesBlocks) {
  World w = MakeWorld();
  // Deterministic image: pixel = x + 10*y over 8x8.
  FitsImage image;
  image.header.bitpix = -64;
  image.header.naxis = {8, 8};
  image.pixels.resize(64);
  for (int64_t y = 0; y < 8; ++y) {
    for (int64_t x = 0; x < 8; ++x) {
      image.pixels[static_cast<size_t>(y * 8 + x)] = static_cast<double>(x + 10 * y);
    }
  }
  ASSERT_TRUE(FitsWriteImage(*w.kernel, *w.proc, "/in.fits", image).ok());
  FimgbinOptions options;
  options.boxcar = 2;
  const FimgbinResult r =
      FimgbinApp::Run(*w.kernel, *w.proc, "/in.fits", "/out.fits", options).value();
  EXPECT_EQ(r.out_width, 4);
  EXPECT_EQ(r.out_height, 4);
  auto out = FitsReadImage(*w.kernel, *w.proc, "/out.fits").value();
  ASSERT_EQ(out.pixels.size(), 16u);
  // Top-left 2x2 block of {0,1,10,11} averages to 5.5.
  EXPECT_DOUBLE_EQ(out.pixels[0], 5.5);
  // Block at output (1,1): inputs {2,3,12,13}+... x in {2,3}, y in {2,3}:
  // values 22,23,32,33 -> mean 27.5.
  EXPECT_DOUBLE_EQ(out.pixels[5], 27.5);
}

TEST(FimgbinTest, SledsModeProducesIdenticalOutput) {
  World w = MakeWorld();
  (void)MakeTestImage(w, "/in.fits", -32, 128, 21);
  FimgbinOptions plain;
  plain.boxcar = 4;
  FimgbinOptions sleds = plain;
  sleds.use_sleds = true;
  const FimgbinResult a =
      FimgbinApp::Run(*w.kernel, *w.proc, "/in.fits", "/out_a.fits", plain).value();
  const FimgbinResult b =
      FimgbinApp::Run(*w.kernel, *w.proc, "/in.fits", "/out_b.fits", sleds).value();
  EXPECT_EQ(a.out_width, b.out_width);
  EXPECT_DOUBLE_EQ(a.output_sum, b.output_sum);
  const auto img_a = FitsReadImage(*w.kernel, *w.proc, "/out_a.fits").value();
  const auto img_b = FitsReadImage(*w.kernel, *w.proc, "/out_b.fits").value();
  EXPECT_EQ(img_a.pixels, img_b.pixels);
}

TEST(FimgbinTest, RejectsIndivisibleDimensions) {
  World w = MakeWorld();
  FitsImage image;
  image.header.bitpix = -32;
  image.header.naxis = {10, 10};
  image.pixels.assign(100, 1.0);
  ASSERT_TRUE(FitsWriteImage(*w.kernel, *w.proc, "/in.fits", image).ok());
  FimgbinOptions options;
  options.boxcar = 4;  // 10 % 4 != 0
  EXPECT_EQ(FimgbinApp::Run(*w.kernel, *w.proc, "/in.fits", "/o.fits", options).error(),
            Err::kInval);
  options.boxcar = 0;
  EXPECT_EQ(FimgbinApp::Run(*w.kernel, *w.proc, "/in.fits", "/o.fits", options).error(),
            Err::kInval);
}

TEST(FitsGenTest, GeneratesRequestedSize) {
  World w = MakeWorld(16384);
  Rng rng(5);
  const auto header =
      GenerateFitsImage(*w.kernel, *w.proc, "/gen.fits", MiB(4), -32, rng).value();
  const int64_t size = w.kernel->Stat(*w.proc, "/gen.fits").value().size;
  EXPECT_GT(size, MiB(4) * 9 / 10);
  EXPECT_LT(size, MiB(4) * 11 / 10);
  EXPECT_EQ(header.naxis[0] % 4, 0);
  EXPECT_EQ(header.naxis[0], header.naxis[1]);
}

}  // namespace
}  // namespace sled
