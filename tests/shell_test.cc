// Tests for the sledsh scriptable shell — also a broad end-to-end pass over
// the whole stack through its highest-level interface.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/workload/shell.h"

namespace sled {
namespace {

TEST(ShellTest, HelpAndUnknown) {
  SledShell shell;
  EXPECT_NE(shell.Execute("help").find("commands:"), std::string::npos);
  EXPECT_NE(shell.Execute("frobnicate").find("unknown command"), std::string::npos);
  EXPECT_EQ(shell.Execute(""), "");
}

TEST(ShellTest, MountAndGenerate) {
  SledShell shell;
  EXPECT_NE(shell.Execute("mount ext2 /data").find("mounted ext2"), std::string::npos);
  EXPECT_NE(shell.Execute("genfile /data/t.txt 2").find("wrote"), std::string::npos);
  EXPECT_NE(shell.Execute("stat /data/t.txt").find("2097152 bytes"), std::string::npos);
  EXPECT_NE(shell.Execute("ls /data").find("t.txt"), std::string::npos);
  EXPECT_NE(shell.Execute("mount bogus /x").find("unknown fs kind"), std::string::npos);
}

TEST(ShellTest, CatAndSledsPanel) {
  SledShell shell;
  (void)shell.Execute("mount ext2 /data");
  (void)shell.Execute("genfile /data/t.txt 4");
  (void)shell.Execute("dropcaches");
  const std::string cold = shell.Execute("cat /data/t.txt");
  EXPECT_NE(cold.find("read 4194304 bytes"), std::string::npos);
  EXPECT_NE(cold.find("1024 major faults"), std::string::npos);
  const std::string warm = shell.Execute("cat /data/t.txt");
  EXPECT_NE(warm.find("0 major faults"), std::string::npos);
  const std::string panel = shell.Execute("sleds /data/t.txt");
  EXPECT_NE(panel.find("memory"), std::string::npos);
  EXPECT_NE(panel.find("estimated total delivery time"), std::string::npos);
  EXPECT_NE(shell.Execute("delivery /data/t.txt").find("estimated delivery"),
            std::string::npos);
}

TEST(ShellTest, WcAndGrepFlags) {
  SledShell shell;
  (void)shell.Execute("mount ext2 /data");
  (void)shell.Execute("genfile /data/t.txt 1");
  const std::string plain = shell.Execute("wc /data/t.txt");
  const std::string sleds = shell.Execute("wc -s /data/t.txt");
  const std::string mmapped = shell.Execute("wc -m /data/t.txt");
  // All agree on the counts (the part before the parenthesis).
  EXPECT_EQ(plain.substr(0, plain.find('(')), sleds.substr(0, sleds.find('(')));
  EXPECT_EQ(plain.substr(0, plain.find('(')), mmapped.substr(0, mmapped.find('(')));

  EXPECT_NE(shell.Execute("grep -q zzzzzzzzz /data/t.txt").find("no match"),
            std::string::npos);
  EXPECT_NE(shell.Execute("grep").find("usage"), std::string::npos);
  EXPECT_NE(shell.Execute("wc").find("usage"), std::string::npos);
}

TEST(ShellTest, FindWithLatencyPredicate) {
  SledShell shell;
  (void)shell.Execute("mount ext2 /data");
  (void)shell.Execute("genfile /data/a.txt 2");
  (void)shell.Execute("genfile /data/b.dat 2");
  const std::string all = shell.Execute("find /data");
  EXPECT_NE(all.find("/data/a.txt"), std::string::npos);
  EXPECT_NE(all.find("/data/b.dat"), std::string::npos);
  const std::string named = shell.Execute("find /data -name .txt");
  EXPECT_NE(named.find("a.txt"), std::string::npos);
  EXPECT_EQ(named.find("b.dat"), std::string::npos);
  // Freshly written files are cached: everything is "fast".
  const std::string fast = shell.Execute("find /data -latency -1");
  EXPECT_NE(fast.find("(2 of 2 files"), std::string::npos);
  (void)shell.Execute("dropcaches");
  const std::string slow = shell.Execute("find /data -latency -m1");
  EXPECT_NE(slow.find("(0 of 2 files; 2 pruned"), std::string::npos);
  EXPECT_NE(shell.Execute("find /data -latency xyz").find("bad latency"), std::string::npos);
}

TEST(ShellTest, LockLifecycle) {
  SledShell shell;
  (void)shell.Execute("mount ext2 /data");
  (void)shell.Execute("genfile /data/t.txt 2");
  const std::string locked = shell.Execute("lock /data/t.txt");
  EXPECT_NE(locked.find("locked 512 resident pages"), std::string::npos);
  EXPECT_NE(shell.Execute("lock /data/t.txt").find("already locked"), std::string::npos);
  EXPECT_NE(shell.Execute("stats").find("512 pinned"), std::string::npos);
  EXPECT_NE(shell.Execute("unlock /data/t.txt").find("unlocked"), std::string::npos);
  EXPECT_NE(shell.Execute("unlock /data/t.txt").find("not locked"), std::string::npos);
  EXPECT_NE(shell.Execute("stats").find("0 pinned"), std::string::npos);
}

TEST(ShellTest, HsmCommands) {
  SledShell shell;
  (void)shell.Execute("mount hsm /archive");
  (void)shell.Execute("genfile /archive/old.txt 2");
  EXPECT_NE(shell.Execute("migrate /archive/old.txt").find("migrated"), std::string::npos);
  // The page cache still holds the generation writes; drop it so the panel
  // shows where the data now *lives*.
  (void)shell.Execute("dropcaches");
  const std::string panel = shell.Execute("sleds /archive/old.txt");
  EXPECT_NE(panel.find("tape"), std::string::npos);
  EXPECT_NE(shell.Execute("recall /archive/old.txt").find("recalled"), std::string::npos);
  // migrate on a non-HSM mount fails cleanly.
  (void)shell.Execute("mount ext2 /data");
  (void)shell.Execute("genfile /data/t.txt 1");
  EXPECT_NE(shell.Execute("migrate /data/t.txt").find("not an HSM mount"), std::string::npos);
}

TEST(ShellTest, CdromMasteringWorkflow) {
  SledShell shell;
  (void)shell.Execute("mount cdrom /cd");
  (void)shell.Execute("genfile /cd/disc.txt 1");
  EXPECT_NE(shell.Execute("seal /cd").find("sealed"), std::string::npos);
  EXPECT_NE(shell.Execute("genfile /cd/more.txt 1").find("error: EROFS"), std::string::npos);
  EXPECT_NE(shell.Execute("seal /data").find("error"), std::string::npos);
}

TEST(ShellTest, RemoteMountWorks) {
  SledShell shell;
  (void)shell.Execute("mount remote /nfs");
  (void)shell.Execute("genfile /nfs/t.txt 2");
  (void)shell.Execute("flush");
  (void)shell.Execute("dropcaches");
  const std::string panel = shell.Execute("sleds /nfs/t.txt");
  EXPECT_NE(panel.find("nfs-"), std::string::npos);
}

TEST(ShellTest, ScriptRunnerEchoesAndSkipsComments) {
  SledShell shell;
  const std::string out = shell.RunScript(
      "# a comment\n"
      "mount ext2 /data\n"
      "\n"
      "genfile /data/t.txt 1\n"
      "clock\n");
  EXPECT_EQ(out.find("# a comment"), std::string::npos);
  EXPECT_NE(out.find("> mount ext2 /data"), std::string::npos);
  EXPECT_NE(out.find("t = "), std::string::npos);
}

TEST(ShellTest, FitsGeneration) {
  SledShell shell;
  (void)shell.Execute("mount ext2 /data");
  EXPECT_NE(shell.Execute("genfits /data/img.fits 4").find("float image"), std::string::npos);
  EXPECT_NE(shell.Execute("stat /data/img.fits").find("file"), std::string::npos);
}

}  // namespace
}  // namespace sled

namespace sled {
namespace {

TEST(ShellTest, ZonedMountShowsPerZoneRows) {
  SledShell shell;
  (void)shell.Execute("mount zoned /data");
  const std::string stats = shell.Execute("stats");
  EXPECT_NE(stats.find("disk-z0"), std::string::npos);
  EXPECT_NE(stats.find("disk-z7"), std::string::npos);
}

TEST(ShellTest, TraceDumpsRecentEvents) {
  SledShell shell;
  (void)shell.Execute("mount ext2 /data");
  (void)shell.Execute("genfile /data/t.txt 1");
  (void)shell.Execute("dropcaches");
  (void)shell.Execute("cat /data/t.txt");
  const std::string out = shell.Execute("trace 10");
  EXPECT_NE(out.find("events recorded"), std::string::npos);
  EXPECT_NE(out.find("seq,t_ns,kind,pid,level,file,a,b,dur_ns,tag"), std::string::npos);
  // cat ends with a close: its exit event is in the last 10.
  EXPECT_NE(out.find("syscall_exit"), std::string::npos);
  // At most header + preamble + 10 rows.
  EXPECT_LE(std::count(out.begin(), out.end(), '\n'), 12);
  EXPECT_NE(shell.Execute("trace bogus").find("usage"), std::string::npos);
}

TEST(ShellTest, IostatShowsPerLevelActivity) {
  SledShell shell;
  (void)shell.Execute("mount ext2 /data");
  (void)shell.Execute("genfile /data/t.txt 1");
  (void)shell.Execute("dropcaches");
  (void)shell.Execute("cat /data/t.txt");
  const std::string out = shell.Execute("iostat");
  EXPECT_NE(out.find("pageins"), std::string::npos);
  EXPECT_NE(out.find("memory"), std::string::npos);  // level 0
  EXPECT_NE(out.find("disk"), std::string::npos);    // the data fs level
  EXPECT_NE(out.find("readahead:"), std::string::npos);
  EXPECT_NE(out.find("writeback:"), std::string::npos);
  // The cold cat paged everything in from the data disk: some level line has
  // a non-zero pagein count and quantiles.
  EXPECT_NE(out.find("p95"), std::string::npos);
  // Per-device transfer counters with busy-time utilization.
  EXPECT_NE(out.find("device disk"), std::string::npos);
  EXPECT_NE(out.find("busy"), std::string::npos);
  // The I/O queue section appears exactly when an engine mode is selected
  // (the shell kernel resolves $SLEDS_IO_MODE).
  if (shell.kernel().io_mode() != IoMode::kFifoSync) {
    EXPECT_NE(out.find("\nqueue "), std::string::npos);
    EXPECT_NE(out.find("dispatched"), std::string::npos);
  } else {
    EXPECT_EQ(out.find("\nqueue "), std::string::npos);
  }
}

}  // namespace
}  // namespace sled
