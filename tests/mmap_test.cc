// Tests for the kernel mmap path and the mmap-mode wc ("an mmap-friendly
// SLEDs library is feasible, which should reduce the CPU penalty", §5.2).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/apps/wc.h"
#include "src/device/disk_device.h"
#include "src/fs/extent_file_system.h"
#include "src/kernel/sim_kernel.h"

namespace sled {
namespace {

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
};

World MakeWorld(int64_t cache_pages = 1024) {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = cache_pages;
  w.kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

void WriteFile(World& w, const std::string& path, const std::string& data) {
  const int fd = w.kernel->Create(*w.proc, path).value();
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(MmapTest, ViewMatchesContents) {
  World w = MakeWorld();
  const std::string data = "mapped bytes are the same bytes";
  WriteFile(w, "/f", data);
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  const std::string_view view =
      w.kernel->MmapRead(*w.proc, fd, 0, static_cast<int64_t>(data.size())).value();
  EXPECT_EQ(view, data);
  // Sub-range and EOF clamping.
  EXPECT_EQ(w.kernel->MmapRead(*w.proc, fd, 7, 5).value(), "bytes");
  EXPECT_EQ(w.kernel->MmapRead(*w.proc, fd, 1000, 5).value(), "");
  EXPECT_EQ(w.kernel->MmapRead(*w.proc, fd, 0, 0).value(), "");
  EXPECT_EQ(w.kernel->MmapRead(*w.proc, fd, -1, 5).error(), Err::kInval);
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(MmapTest, FaultsLikeReadButNoCopyCharge) {
  World w = MakeWorld();
  const std::string data(64 * kPageSize, 'm');
  WriteFile(w, "/f", data);
  w.kernel->DropCaches();

  Process& mapper = w.kernel->CreateProcess("mapper");
  const int fd = w.kernel->Open(mapper, "/f").value();
  (void)w.kernel->MmapRead(mapper, fd, 0, static_cast<int64_t>(data.size())).value();
  EXPECT_EQ(mapper.stats().major_faults, 64);  // same demand paging as read()
  ASSERT_TRUE(w.kernel->Close(mapper, fd).ok());

  w.kernel->DropCaches();
  Process& reader = w.kernel->CreateProcess("reader");
  const int rfd = w.kernel->Open(reader, "/f").value();
  std::vector<char> buf(data.size());
  (void)w.kernel->Read(reader, rfd, std::span<char>(buf.data(), buf.size())).value();
  ASSERT_TRUE(w.kernel->Close(reader, rfd).ok());
  EXPECT_EQ(reader.stats().major_faults, 64);
  // The mmap path skips the per-byte copy: notably less CPU time.
  EXPECT_LT(mapper.stats().cpu_time, reader.stats().cpu_time);
}

TEST(MmapTest, WarmMappingIsAlmostFree) {
  World w = MakeWorld();
  const std::string data(16 * kPageSize, 'm');
  WriteFile(w, "/f", data);
  Process& p = w.kernel->CreateProcess("warm");
  const int fd = w.kernel->Open(p, "/f").value();
  (void)w.kernel->MmapRead(p, fd, 0, static_cast<int64_t>(data.size())).value();
  const Duration first = p.stats().elapsed();
  (void)w.kernel->MmapRead(p, fd, 0, static_cast<int64_t>(data.size())).value();
  const Duration second = p.stats().elapsed() - first;
  // Warm touch: per-page TLB cost plus one syscall; far under a millisecond.
  EXPECT_LT(second.ToMicros(), 100.0);
  ASSERT_TRUE(w.kernel->Close(p, fd).ok());
}

TEST(MmapWcTest, SameCountsLowerCpu) {
  World w = MakeWorld(/*cache_pages=*/4096);
  std::string data;
  Rng rng(3);
  while (data.size() < static_cast<size_t>(MiB(4))) {
    for (int i = 0; i < 8; ++i) {
      data.push_back(static_cast<char>('a' + rng.Uniform(0, 25)));
    }
    data.push_back(rng.Bernoulli(0.3) ? '\n' : ' ');
  }
  WriteFile(w, "/f", data);
  w.kernel->DropCaches();

  auto run = [&](bool use_mmap, bool use_sleds) {
    Process& p = w.kernel->CreateProcess("wc");
    WcOptions options;
    options.use_mmap = use_mmap;
    options.use_sleds = use_sleds;
    auto r = WcApp::Run(*w.kernel, p, "/f", options);
    EXPECT_TRUE(r.ok());
    return std::make_pair(r.value(), p.stats().cpu_time);
  };
  const auto [read_counts, read_cpu] = run(false, false);
  const auto [mmap_counts, mmap_cpu] = run(true, false);
  const auto [mmap_sleds_counts, mmap_sleds_cpu] = run(true, true);
  EXPECT_EQ(read_counts, mmap_counts);
  EXPECT_EQ(read_counts, mmap_sleds_counts);
  EXPECT_LT(mmap_cpu, read_cpu);
  EXPECT_LT(mmap_sleds_cpu, read_cpu);
}

}  // namespace
}  // namespace sled
