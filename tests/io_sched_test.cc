// Tests for the event-driven I/O engine: DeviceQueue policy/coalescing/
// causality, IoScheduler lazy-replay determinism, the kernel's in-flight page
// lifecycle, and FIFO-vs-elevator differential invariants.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/device/disk_device.h"
#include "src/fs/extent_file_system.h"
#include "src/io/device_queue.h"
#include "src/io/io_scheduler.h"
#include "src/kernel/sim_kernel.h"

namespace sled {
namespace {

IoRequest MakeReq(int64_t id, int64_t first_page, int64_t count, int64_t device_addr,
                  TimePoint submit = TimePoint(), uint64_t file = 1) {
  IoRequest r;
  r.id = id;
  r.file = file;
  r.ino = 1;
  r.first_page = first_page;
  r.count = count;
  r.device_addr = device_addr;
  r.device_end_addr = device_addr >= 0 ? device_addr + count * kPageSize : -1;
  r.submit = submit;
  return r;
}

// ---- DeviceQueue unit tests ----

TEST(DeviceQueueTest, FifoDispatchesInArrivalOrder) {
  DeviceQueue q("disk", DeviceQueueConfig{});
  q.Push(MakeReq(1, 100, 1, 400 * kPageSize));
  q.Push(MakeReq(2, 0, 1, 0));
  q.Push(MakeReq(3, 50, 1, 200 * kPageSize));
  EXPECT_EQ(q.PopBatch(TimePoint()).merged.id, 1);
  EXPECT_EQ(q.PopBatch(TimePoint()).merged.id, 2);
  EXPECT_EQ(q.PopBatch(TimePoint()).merged.id, 3);
  EXPECT_TRUE(q.empty());
}

TEST(DeviceQueueTest, ClookServesAscendingThenWraps) {
  DeviceQueueConfig config;
  config.policy = IoPolicy::kClook;
  DeviceQueue q("disk", config);
  // Head starts at 0; addresses 40, 10, 30, 20 (in pages).
  q.Push(MakeReq(1, 40, 1, 40 * kPageSize));
  q.Push(MakeReq(2, 10, 1, 10 * kPageSize));
  q.Push(MakeReq(3, 30, 1, 30 * kPageSize));
  q.Push(MakeReq(4, 20, 1, 20 * kPageSize));
  // One ascending sweep: 10, 20, 30, 40.
  EXPECT_EQ(q.PopBatch(TimePoint()).merged.id, 2);
  EXPECT_EQ(q.PopBatch(TimePoint()).merged.id, 4);
  EXPECT_EQ(q.PopBatch(TimePoint()).merged.id, 3);
  EXPECT_EQ(q.PopBatch(TimePoint()).merged.id, 1);
  // Head is now past 40; a lower-address request is served after the wrap,
  // behind one at or ahead of the head.
  q.Push(MakeReq(5, 5, 1, 5 * kPageSize));
  q.Push(MakeReq(6, 60, 1, 60 * kPageSize));
  EXPECT_EQ(q.PopBatch(TimePoint()).merged.id, 6);
  EXPECT_EQ(q.PopBatch(TimePoint()).merged.id, 5);
}

TEST(DeviceQueueTest, CoalesceMergesAdjacentRequestsBothWays) {
  DeviceQueueConfig config;
  config.policy = IoPolicy::kClook;
  config.coalesce = true;
  DeviceQueue q("disk", config);
  // Three requests, contiguous in pages and device addresses, submitted out
  // of page order. The primary (lowest address) attracts both neighbours.
  q.Push(MakeReq(1, 8, 4, 8 * kPageSize));
  q.Push(MakeReq(2, 0, 4, 0));
  q.Push(MakeReq(3, 4, 4, 4 * kPageSize));
  const IoBatch batch = q.PopBatch(TimePoint());
  EXPECT_EQ(batch.merged.first_page, 0);
  EXPECT_EQ(batch.merged.count, 12);
  ASSERT_EQ(batch.parts.size(), 3u);
  EXPECT_EQ(batch.parts[0].id, 2);
  EXPECT_EQ(batch.parts[1].id, 3);
  EXPECT_EQ(batch.parts[2].id, 1);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.stats().merged, 2);
}

TEST(DeviceQueueTest, CoalesceRespectsMergeBoundAndGaps) {
  DeviceQueueConfig config;
  config.policy = IoPolicy::kClook;
  config.coalesce = true;
  config.max_merge_pages = 6;
  DeviceQueue q("disk", config);
  q.Push(MakeReq(1, 0, 4, 0));
  q.Push(MakeReq(2, 4, 4, 4 * kPageSize));   // would exceed the 6-page bound
  q.Push(MakeReq(3, 20, 4, 20 * kPageSize));  // not adjacent at all
  const IoBatch batch = q.PopBatch(TimePoint());
  EXPECT_EQ(batch.merged.count, 4);
  EXPECT_EQ(q.depth(), 2);
  // File-page adjacency without device-address adjacency must not merge
  // (interleaved extents of different files).
  DeviceQueue q2("disk", config);
  q2.Push(MakeReq(10, 0, 2, 0));
  q2.Push(MakeReq(11, 2, 2, 64 * kPageSize));
  EXPECT_EQ(q2.PopBatch(TimePoint()).merged.count, 2);
}

TEST(DeviceQueueTest, CausalityIgnoresRequestsSubmittedAfterDecisionInstant) {
  DeviceQueueConfig config;
  config.policy = IoPolicy::kClook;
  DeviceQueue q("disk", config);
  const TimePoint t0;
  const TimePoint t1 = t0 + Milliseconds(5);
  q.Push(MakeReq(1, 100, 1, 100 * kPageSize, t0));
  q.Push(MakeReq(2, 10, 1, 10 * kPageSize, t1));
  // Decision at t0: request 2 does not exist yet, even though its address
  // would win the sweep.
  EXPECT_EQ(q.PopBatch(t0).merged.id, 1);
  EXPECT_EQ(q.PopBatch(t1).merged.id, 2);
}

// ---- kernel integration ----

std::unique_ptr<SimKernel> MakeEngineKernel(IoMode mode, int64_t cache_pages = 256) {
  KernelConfig config;
  config.cache.capacity_pages = cache_pages;
  config.io.mode = mode;
  auto kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  EXPECT_TRUE(kernel->Mount("/", std::move(fs)).ok());
  return kernel;
}

void WriteFile(SimKernel& k, Process& p, const std::string& path, const std::string& data) {
  const int fd = k.Create(p, path).value();
  ASSERT_TRUE(k.Write(p, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(k.Close(p, fd).ok());
}

std::string ReadFile(SimKernel& k, Process& p, const std::string& path) {
  const int fd = k.Open(p, path).value();
  std::string out;
  char buf[16384];
  while (true) {
    const int64_t n = k.Read(p, fd, std::span<char>(buf, sizeof(buf))).value();
    if (n == 0) {
      break;
    }
    out.append(buf, static_cast<size_t>(n));
  }
  EXPECT_TRUE(k.Close(p, fd).ok());
  return out;
}

// A 4-process interleaved read workload over 4 files; returns the kernel
// after all reads completed and dirty state flushed.
std::unique_ptr<SimKernel> RunInterleavedWorkload(IoMode mode) {
  auto kernel = MakeEngineKernel(mode, /*cache_pages=*/128);
  Process& gen = kernel->CreateProcess("gen");
  const std::string data(64 * kPageSize, 'd');
  for (int i = 0; i < 4; ++i) {
    WriteFile(*kernel, gen, "/f" + std::to_string(i), data);
  }
  kernel->DropCaches();
  std::vector<Process*> readers;
  std::vector<int> fds;
  for (int i = 0; i < 4; ++i) {
    Process& p = kernel->CreateProcess("reader" + std::to_string(i));
    readers.push_back(&p);
    fds.push_back(kernel->Open(p, "/f" + std::to_string(i)).value());
  }
  std::vector<char> buf(8 * kPageSize);
  bool progress = true;
  while (progress) {
    progress = false;
    for (int i = 0; i < 4; ++i) {
      const int64_t n =
          kernel->Read(*readers[i], fds[i], std::span<char>(buf.data(), buf.size())).value();
      progress = progress || n > 0;
    }
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(kernel->Close(*readers[i], fds[i]).ok());
  }
  (void)kernel->FlushAllDirty();
  return kernel;
}

TEST(IoEngineTest, ElevatorRunsAreDeterministic) {
  auto a = RunInterleavedWorkload(IoMode::kElevator);
  auto b = RunInterleavedWorkload(IoMode::kElevator);
  EXPECT_EQ(a->clock().Now().since_epoch().nanos(), b->clock().Now().since_epoch().nanos());
  // Full metric export byte-identical: every counter, histogram, and gauge.
  EXPECT_EQ(a->obs().metrics().ToJson(), b->obs().metrics().ToJson());
}

TEST(IoEngineTest, FifoVsElevatorDifferentialInvariants) {
  auto fifo = RunInterleavedWorkload(IoMode::kFifoAsync);
  auto elevator = RunInterleavedWorkload(IoMode::kElevator);
  // Both modes read every byte of every file through the syscall layer.
  EXPECT_GE(fifo->stats().pages_paged_in, 4 * 64);
  EXPECT_GE(elevator->stats().pages_paged_in, 4 * 64);
  const MetricRegistry& mf = fifo->obs().metrics();
  const MetricRegistry& me = elevator->obs().metrics();
  // Device-level bytes read cover the full data set in both modes (pages are
  // requested at most once while in flight, so nothing is double-fetched:
  // bytes_read equals pages_paged_in exactly).
  EXPECT_EQ(mf.counter("dev.disk.bytes_read"), fifo->stats().pages_paged_in * kPageSize);
  EXPECT_EQ(me.counter("dev.disk.bytes_read"), elevator->stats().pages_paged_in * kPageSize);
  // The elevator never repositions more than FIFO on the same workload.
  EXPECT_LE(me.counter("dev.disk.repositions"), mf.counter("dev.disk.repositions"));
  // And with coalescing it needs no more device accesses.
  EXPECT_LE(me.counter("dev.disk.reads"), mf.counter("dev.disk.reads"));
}

TEST(IoEngineTest, EngineReadsReturnCorrectData) {
  auto kernel = MakeEngineKernel(IoMode::kElevator, /*cache_pages=*/32);
  Process& p = kernel->CreateProcess("reader");
  std::string data;
  for (int i = 0; i < 24 * kPageSize / 16; ++i) {
    data += "0123456789abcde\n";
  }
  WriteFile(*kernel, p, "/f", data);
  kernel->DropCaches();
  EXPECT_EQ(ReadFile(*kernel, p, "/f"), data);
  // Asynchronous readahead actually happened and was waited on.
  EXPECT_GT(kernel->stats().readahead_pages, 0);
  EXPECT_GT(p.stats().io_waits, 0);
}

TEST(IoEngineTest, InFlightPagesAreNotEvictedOrRerequested) {
  // Direct cache-level contract the engine depends on: an in-flight page
  // survives any number of insertions and becomes evictable after arrival.
  PageCacheConfig config;
  config.capacity_pages = 4;
  PageCache cache(config);
  cache.Insert({1, 0}, /*dirty=*/false, /*in_flight=*/true);
  cache.Insert({1, 1}, /*dirty=*/false, /*in_flight=*/true);
  EXPECT_EQ(cache.in_flight_pages(), 2);
  EXPECT_TRUE(cache.IsInFlight({1, 0}));
  for (int64_t q = 2; q < 10; ++q) {
    cache.Insert({1, q}, /*dirty=*/false);
  }
  // Both in-flight pages are still resident; the churn evicted around them.
  EXPECT_TRUE(cache.Contains({1, 0}));
  EXPECT_TRUE(cache.Contains({1, 1}));
  cache.MarkArrived({1, 0});
  cache.MarkArrived({1, 1});
  EXPECT_EQ(cache.in_flight_pages(), 0);
  for (int64_t q = 10; q < 16; ++q) {
    cache.Insert({1, q}, /*dirty=*/false);
  }
  // Arrived pages lost their exemption and were evicted by the LRU churn.
  EXPECT_FALSE(cache.Contains({1, 0}));
  EXPECT_FALSE(cache.Contains({1, 1}));
}

TEST(IoEngineTest, EngineKernelNeverRerequestsInFlightPages) {
  // With a tiny cache and the elevator engine, sequential reads with
  // readahead exercise submit/await/harvest heavily; the device must still
  // read each page exactly once (nothing double-fetched, nothing lost).
  auto kernel = MakeEngineKernel(IoMode::kElevator, /*cache_pages=*/16);
  Process& p = kernel->CreateProcess("reader");
  const std::string data(48 * kPageSize, 'r');
  WriteFile(*kernel, p, "/f", data);
  kernel->DropCaches();
  EXPECT_EQ(ReadFile(*kernel, p, "/f").size(), data.size());
  EXPECT_EQ(kernel->obs().metrics().counter("dev.disk.bytes_read"),
            kernel->stats().pages_paged_in * kPageSize);
  EXPECT_EQ(kernel->stats().pages_paged_in, 48);
}

TEST(IoEngineTest, TruncateCancelsQueuedRequests) {
  auto kernel = MakeEngineKernel(IoMode::kElevator, /*cache_pages=*/64);
  Process& p = kernel->CreateProcess("user");
  const std::string data(32 * kPageSize, 't');
  WriteFile(*kernel, p, "/f", data);
  kernel->DropCaches();
  const int fd = kernel->Open(p, "/f").value();
  // Demand the first page; the growing readahead window queues pages beyond
  // it asynchronously.
  std::vector<char> buf(kPageSize);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(kernel->Read(p, fd, std::span<char>(buf.data(), buf.size())).ok());
  }
  // Truncate to one page while readahead may still be queued or in flight.
  ASSERT_TRUE(kernel->Ftruncate(p, fd, kPageSize).ok());
  EXPECT_EQ(kernel->Fstat(p, fd).value().size, kPageSize);
  // The kernel survives the cancellation and subsequent reads see EOF.
  ASSERT_TRUE(kernel->Lseek(p, fd, 0, Whence::kSet).ok());
  EXPECT_EQ(kernel->Read(p, fd, std::span<char>(buf.data(), buf.size())).value(),
            static_cast<int64_t>(kPageSize));
  EXPECT_EQ(kernel->Read(p, fd, std::span<char>(buf.data(), buf.size())).value(), 0);
  ASSERT_TRUE(kernel->Close(p, fd).ok());
  (void)kernel->FlushAllDirty();
}

TEST(IoEngineTest, DefaultModeAttachesNoQueues) {
  auto kernel = MakeEngineKernel(IoMode::kFifoSync);
  EXPECT_EQ(kernel->io_mode(), IoMode::kFifoSync);
  int queues = 0;
  kernel->io_scheduler().ForEachQueue([&](uint32_t, const DeviceQueue&) { ++queues; });
  EXPECT_EQ(queues, 0);
}

}  // namespace
}  // namespace sled
