// Tests for SLED locks (paper §3.4's proposed lock/reservation mechanism):
// page pinning in the cache and the FSLEDS_LOCK/FSLEDS_UNLOCK ioctls.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/cache/page_cache.h"
#include "src/device/disk_device.h"
#include "src/fs/extent_file_system.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/picker.h"

namespace sled {
namespace {

PageKey K(FileId f, int64_t p) { return PageKey{f, p}; }

TEST(PagePinTest, PinnedPagesSurviveEvictionPressure) {
  PageCache cache({.capacity_pages = 8});
  for (int64_t p = 0; p < 4; ++p) {
    cache.Insert(K(1, p), false);
    ASSERT_TRUE(cache.Pin(K(1, p)));
  }
  // Flood with 20 more pages: the pinned four must survive.
  for (int64_t p = 100; p < 120; ++p) {
    cache.Insert(K(2, p), false);
  }
  for (int64_t p = 0; p < 4; ++p) {
    EXPECT_TRUE(cache.Contains(K(1, p))) << p;
  }
  EXPECT_LE(cache.size_pages(), 8);
}

TEST(PagePinTest, PinBudgetIsHalfCapacity) {
  PageCache cache({.capacity_pages = 8});
  for (int64_t p = 0; p < 8; ++p) {
    cache.Insert(K(1, p), false);
  }
  int pinned = 0;
  for (int64_t p = 0; p < 8; ++p) {
    if (cache.Pin(K(1, p))) {
      ++pinned;
    }
  }
  EXPECT_EQ(pinned, 4);
  EXPECT_EQ(cache.pinned_pages(), 4);
}

TEST(PagePinTest, PinNonResidentFails) {
  PageCache cache({.capacity_pages = 8});
  EXPECT_FALSE(cache.Pin(K(1, 0)));
}

TEST(PagePinTest, UnpinAndRemoveMaintainCount) {
  PageCache cache({.capacity_pages = 8});
  cache.Insert(K(1, 0), false);
  cache.Insert(K(1, 1), false);
  ASSERT_TRUE(cache.Pin(K(1, 0)));
  ASSERT_TRUE(cache.Pin(K(1, 1)));
  EXPECT_EQ(cache.pinned_pages(), 2);
  cache.Unpin(K(1, 0));
  EXPECT_EQ(cache.pinned_pages(), 1);
  EXPECT_FALSE(cache.IsPinned(K(1, 0)));
  cache.Remove(K(1, 1));  // removing a pinned page releases its pin
  EXPECT_EQ(cache.pinned_pages(), 0);
  cache.Insert(K(2, 0), false);
  ASSERT_TRUE(cache.Pin(K(2, 0)));
  cache.Clear();
  EXPECT_EQ(cache.pinned_pages(), 0);
}

TEST(PagePinTest, ClockPolicySkipsPinnedToo) {
  PageCache cache({.capacity_pages = 4, .policy = ReplacementPolicy::kClock});
  for (int64_t p = 0; p < 4; ++p) {
    cache.Insert(K(1, p), false);
  }
  ASSERT_TRUE(cache.Pin(K(1, 0)));
  ASSERT_TRUE(cache.Pin(K(1, 1)));
  for (int64_t p = 10; p < 20; ++p) {
    cache.Insert(K(2, p), false);
  }
  EXPECT_TRUE(cache.Contains(K(1, 0)));
  EXPECT_TRUE(cache.Contains(K(1, 1)));
}

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
};

World MakeWorld(int64_t cache_pages = 64) {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = cache_pages;
  w.kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

void WriteFile(World& w, const std::string& path, int64_t size) {
  const int fd = w.kernel->Create(*w.proc, path).value();
  const std::string data(static_cast<size_t>(size), 'l');
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(SledsLockTest, LockKeepsPlannedSledsValidUnderPressure) {
  World w = MakeWorld(64);
  WriteFile(w, "/a", 16 * kPageSize);
  WriteFile(w, "/b", 200 * kPageSize);
  w.kernel->DropCaches();
  // Warm file a fully.
  const int fd = w.kernel->Open(*w.proc, "/a").value();
  std::vector<char> buf(static_cast<size_t>(16 * kPageSize));
  ASSERT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size())).ok());
  ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, 0, Whence::kSet).ok());

  // Lock a's pages (16 <= 32 = half of 64).
  const int64_t pinned =
      w.kernel->IoctlSledsLock(*w.proc, fd, 0, 16 * kPageSize).value();
  EXPECT_EQ(pinned, 16);

  // Another process floods the cache.
  Process& other = w.kernel->CreateProcess("flood");
  const int bfd = w.kernel->Open(other, "/b").value();
  std::vector<char> bbuf(static_cast<size_t>(64 * kKiB));
  while (w.kernel->Read(other, bfd, std::span<char>(bbuf.data(), bbuf.size())).value() > 0) {
  }
  ASSERT_TRUE(w.kernel->Close(other, bfd).ok());

  // a's SLEDs still read "memory": the plan survived.
  SledVector sleds = w.kernel->IoctlSledsGet(*w.proc, fd).value();
  ASSERT_EQ(sleds.size(), 1u);
  EXPECT_EQ(sleds[0].level, kMemoryLevel);

  // Unlock; flood again; now the pages go.
  EXPECT_EQ(w.kernel->IoctlSledsUnlock(*w.proc, fd, 0, -1).value(), 16);
  const int bfd2 = w.kernel->Open(other, "/b").value();
  while (w.kernel->Read(other, bfd2, std::span<char>(bbuf.data(), bbuf.size())).value() > 0) {
  }
  ASSERT_TRUE(w.kernel->Close(other, bfd2).ok());
  sleds = w.kernel->IoctlSledsGet(*w.proc, fd).value();
  EXPECT_NE(sleds[0].level, kMemoryLevel);
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(SledsLockTest, LockSkipsNonResidentPages) {
  World w = MakeWorld(64);
  WriteFile(w, "/a", 16 * kPageSize);
  w.kernel->DropCaches();
  const int fd = w.kernel->Open(*w.proc, "/a").value();
  EXPECT_EQ(w.kernel->IoctlSledsLock(*w.proc, fd, 0, 16 * kPageSize).value(), 0);
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(SledsLockTest, CloseReleasesLocks) {
  World w = MakeWorld(64);
  WriteFile(w, "/a", 8 * kPageSize);
  const int fd = w.kernel->Open(*w.proc, "/a").value();
  std::vector<char> buf(static_cast<size_t>(8 * kPageSize));
  ASSERT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size())).ok());
  EXPECT_GT(w.kernel->IoctlSledsLock(*w.proc, fd, 0, 8 * kPageSize).value(), 0);
  EXPECT_GT(w.kernel->cache().pinned_pages(), 0);
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
  EXPECT_EQ(w.kernel->cache().pinned_pages(), 0);
}

TEST(SledsLockTest, LockBudgetEnforcedThroughIoctl) {
  World w = MakeWorld(32);  // half = 16 pages pinnable
  WriteFile(w, "/a", 24 * kPageSize);
  const int fd = w.kernel->Open(*w.proc, "/a").value();
  std::vector<char> buf(static_cast<size_t>(24 * kPageSize));
  ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, 0, Whence::kSet).ok());
  ASSERT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size())).ok());
  const int64_t pinned = w.kernel->IoctlSledsLock(*w.proc, fd, 0, 24 * kPageSize).value();
  EXPECT_EQ(pinned, 16);
  EXPECT_EQ(w.kernel->IoctlSledsLock(*w.proc, fd, -1, 8).error(), Err::kInval);
  EXPECT_EQ(w.kernel->IoctlSledsLock(*w.proc, fd, 0, 0).error(), Err::kInval);
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

}  // namespace
}  // namespace sled
