// Tests for the Unix utilities: wc, grep, find, file_info — the paper's
// modified applications. The key property throughout: SLEDs mode must give
// *identical answers* to plain mode, only faster.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/apps/file_info.h"
#include "src/apps/find.h"
#include "src/apps/grep.h"
#include "src/apps/wc.h"
#include "src/common/rng.h"
#include "src/device/disk_device.h"
#include "src/fs/extent_file_system.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
};

World MakeWorld(int64_t cache_pages = 2048) {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = cache_pages;
  w.kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

void WriteFile(SimKernel& k, Process& p, const std::string& path, const std::string& data) {
  const int fd = k.Create(p, path).value();
  ASSERT_TRUE(k.Write(p, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(k.Close(p, fd).ok());
}

// Reference word counter (the classic wc state machine, single pass).
WcResult NaiveWc(const std::string& data) {
  WcResult r;
  r.bytes = static_cast<int64_t>(data.size());
  bool in_word = false;
  for (char c : data) {
    if (c == '\n') {
      ++r.lines;
    }
    const bool space = c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f';
    if (space) {
      in_word = false;
    } else if (!in_word) {
      in_word = true;
      ++r.words;
    }
  }
  return r;
}

TEST(WcAppTest, MatchesNaiveCounting) {
  World w = MakeWorld();
  const std::string data = "hello world\nthis is  a test\n\none  two\tthree\nno-newline-tail";
  WriteFile(*w.kernel, *w.proc, "/f.txt", data);
  const WcResult expected = NaiveWc(data);
  const WcResult plain = WcApp::Run(*w.kernel, *w.proc, "/f.txt", WcOptions{}).value();
  EXPECT_EQ(plain, expected);
  WcOptions sleds;
  sleds.use_sleds = true;
  EXPECT_EQ(WcApp::Run(*w.kernel, *w.proc, "/f.txt", sleds).value(), expected);
}

TEST(WcAppTest, EmptyFile) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/empty", "");
  const WcResult r = WcApp::Run(*w.kernel, *w.proc, "/empty", WcOptions{}).value();
  EXPECT_EQ(r, (WcResult{0, 0, 0}));
  WcOptions sleds;
  sleds.use_sleds = true;
  EXPECT_EQ(WcApp::Run(*w.kernel, *w.proc, "/empty", sleds).value(), (WcResult{0, 0, 0}));
}

TEST(WcAppTest, MissingFile) {
  World w = MakeWorld();
  EXPECT_EQ(WcApp::Run(*w.kernel, *w.proc, "/nope", WcOptions{}).error(), Err::kNoEnt);
}

// Property: wc with and without SLEDs agree on random text, across chunk
// sizes that force words to span chunk seams, with a partially cached file.
class WcPropertyTest : public ::testing::TestWithParam<std::tuple<int64_t, uint64_t>> {};

TEST_P(WcPropertyTest, SledsAndPlainAgree) {
  const auto [buffer, seed] = GetParam();
  World w = MakeWorld();
  Rng rng(seed);
  std::string data;
  const int64_t target = 64 * kPageSize + rng.Uniform(0, 8191);
  while (static_cast<int64_t>(data.size()) < target) {
    const int64_t word = rng.Uniform(1, 12);
    for (int64_t i = 0; i < word; ++i) {
      data.push_back(static_cast<char>('a' + rng.Uniform(0, 25)));
    }
    data.push_back(rng.Bernoulli(0.2) ? '\n' : ' ');
  }
  WriteFile(*w.kernel, *w.proc, "/f.txt", data);
  w.kernel->DropCaches();
  // Partially cache a stripe so the SLEDs plan has multiple segments.
  const int fd = w.kernel->Open(*w.proc, "/f.txt").value();
  char b;
  for (int64_t page = 30; page < 50; ++page) {
    ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, page * kPageSize, Whence::kSet).ok());
    ASSERT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(&b, 1)).ok());
  }
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());

  WcOptions plain;
  plain.buffer_bytes = buffer;
  WcOptions sleds = plain;
  sleds.use_sleds = true;
  const WcResult expected = NaiveWc(data);
  EXPECT_EQ(WcApp::Run(*w.kernel, *w.proc, "/f.txt", plain).value(), expected);
  EXPECT_EQ(WcApp::Run(*w.kernel, *w.proc, "/f.txt", sleds).value(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WcPropertyTest,
                         ::testing::Combine(::testing::Values(1024, 4096, 65536, 100000),
                                            ::testing::Values(1u, 7u, 99u)));

TEST(GrepAppTest, FindsAllMatchesInOrder) {
  World w = MakeWorld();
  const std::string data =
      "alpha needle one\nbeta line\nneedle again here\ngamma\nlast needle\n";
  WriteFile(*w.kernel, *w.proc, "/f.txt", data);
  GrepOptions options;
  options.line_numbers = true;
  const GrepResult r =
      GrepApp::Run(*w.kernel, *w.proc, "/f.txt", "needle", options).value();
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.matches.size(), 3u);
  EXPECT_EQ(r.matches[0].line, "alpha needle one");
  EXPECT_EQ(r.matches[0].line_number, 1);
  EXPECT_EQ(r.matches[0].line_offset, 0);
  EXPECT_EQ(r.matches[1].line, "needle again here");
  EXPECT_EQ(r.matches[1].line_number, 3);
  EXPECT_EQ(r.matches[2].line, "last needle");
  EXPECT_EQ(r.matches[2].line_number, 5);
}

TEST(GrepAppTest, SledsModeGivesSameMatches) {
  World w = MakeWorld();
  Rng rng(11);
  std::string data;
  for (int i = 0; i < 5000; ++i) {
    if (i % 97 == 0) {
      data += "here is a needle line " + std::to_string(i) + "\n";
    } else {
      for (int j = 0; j < 40; ++j) {
        data.push_back(static_cast<char>('a' + rng.Uniform(0, 25)));
      }
      data.push_back('\n');
    }
  }
  WriteFile(*w.kernel, *w.proc, "/f.txt", data);
  w.kernel->DropCaches();
  // Cache a stripe in the middle so SLEDs order differs from file order.
  const int fd = w.kernel->Open(*w.proc, "/f.txt").value();
  char b;
  for (int64_t page = 20; page < 40; ++page) {
    ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, page * kPageSize, Whence::kSet).ok());
    ASSERT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(&b, 1)).ok());
  }
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());

  GrepOptions plain;
  plain.line_numbers = true;
  GrepOptions sleds = plain;
  sleds.use_sleds = true;
  const GrepResult a = GrepApp::Run(*w.kernel, *w.proc, "/f.txt", "needle", plain).value();
  const GrepResult c = GrepApp::Run(*w.kernel, *w.proc, "/f.txt", "needle", sleds).value();
  ASSERT_EQ(a.matches.size(), c.matches.size());
  EXPECT_EQ(a.matches, c.matches);
}

TEST(GrepAppTest, QuietModeStopsEarly) {
  World w = MakeWorld();
  std::string data(2 * kPageSize, 'a');
  data += "\nneedle\n";
  data += std::string(60 * kPageSize, 'b');
  WriteFile(*w.kernel, *w.proc, "/f.txt", data);
  w.kernel->DropCaches();
  GrepOptions options;
  options.quiet_first_match = true;
  Process& p = w.kernel->CreateProcess("grepq");
  const GrepResult r = GrepApp::Run(*w.kernel, p, "/f.txt", "needle", options).value();
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.matches.empty());  // -q reports status only
  // Early exit: far fewer faults than the file has pages (the 62-page file
  // would fault everything; -q stops after the first readahead windows).
  EXPECT_LT(p.stats().major_faults, 32);
}

TEST(GrepAppTest, NoMatch) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f.txt", "nothing to see here\n");
  const GrepResult r = GrepApp::Run(*w.kernel, *w.proc, "/f.txt", "needle",
                                    GrepOptions{}).value();
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.matches.empty());
  EXPECT_EQ(GrepApp::Run(*w.kernel, *w.proc, "/f.txt", "", GrepOptions{}).error(), Err::kInval);
}

TEST(GrepAppTest, MatchSpanningChunkSeamWithinRun) {
  World w = MakeWorld();
  // Put the needle exactly across a buffer boundary (buffer = 4096).
  std::string data(4090, 'x');
  data += "needle";  // bytes 4090..4095 cross the 4096 seam
  data += std::string(1000, 'y');
  data += "\n";
  WriteFile(*w.kernel, *w.proc, "/f.txt", data);
  GrepOptions options;
  options.buffer_bytes = 4096;
  const GrepResult r = GrepApp::Run(*w.kernel, *w.proc, "/f.txt", "needle", options).value();
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.matches.size(), 1u);
  EXPECT_EQ(r.matches[0].line_offset, 0);
}

TEST(HorspoolTest, FindsAllOccurrences) {
  EXPECT_EQ(HorspoolSearchAll("abcabcabc", "abc"), (std::vector<size_t>{0, 3, 6}));
  EXPECT_EQ(HorspoolSearchAll("aaaa", "aa"), (std::vector<size_t>{0, 1, 2}));
  EXPECT_TRUE(HorspoolSearchAll("abc", "abcd").empty());
  EXPECT_TRUE(HorspoolSearchAll("abc", "").empty());
  EXPECT_EQ(HorspoolSearchAll("xneedle", "needle"), (std::vector<size_t>{1}));
}

TEST(FindAppTest, WalksTreeAndFilters) {
  World w = MakeWorld();
  ASSERT_TRUE(w.kernel->vfs().CreateDir("/src").ok());
  ASSERT_TRUE(w.kernel->vfs().CreateDir("/src/sub").ok());
  WriteFile(*w.kernel, *w.proc, "/src/main.c", "int main() {}\n");
  WriteFile(*w.kernel, *w.proc, "/src/util.h", "#pragma once\n");
  WriteFile(*w.kernel, *w.proc, "/src/sub/deep.c", "void f();\n");
  FindOptions options;
  options.name_contains = ".c";
  const FindResult r = FindApp::Run(*w.kernel, *w.proc, "/src", options).value();
  ASSERT_EQ(r.paths.size(), 2u);
  EXPECT_EQ(r.paths[0], "/src/main.c");
  EXPECT_EQ(r.paths[1], "/src/sub/deep.c");
  EXPECT_EQ(r.files_examined, 3);
}

TEST(FindAppTest, LatencyPredicatePrunesColdFiles) {
  World w = MakeWorld(/*cache_pages=*/8192);
  WriteFile(*w.kernel, *w.proc, "/hot.dat", std::string(MiB(4), 'h'));
  WriteFile(*w.kernel, *w.proc, "/cold.dat", std::string(MiB(4), 'c'));
  w.kernel->DropCaches();
  // Re-read hot.dat so it is cached.
  const int fd = w.kernel->Open(*w.proc, "/hot.dat").value();
  std::vector<char> buf(static_cast<size_t>(MiB(1)));
  while (w.kernel->Read(*w.proc, fd, std::span<char>(buf.data(), buf.size())).value() > 0) {
  }
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());

  // hot.dat delivers in ~0.1 s from memory; cold.dat needs ~0.5 s from disk.
  FindOptions fast;
  fast.latency = ParseLatencyPredicate("-m200").value();
  const FindResult r_fast = FindApp::Run(*w.kernel, *w.proc, "/", fast).value();
  ASSERT_EQ(r_fast.paths.size(), 1u);
  EXPECT_EQ(r_fast.paths[0], "/hot.dat");
  EXPECT_EQ(r_fast.files_pruned_by_latency, 1);

  FindOptions slow;
  slow.latency = ParseLatencyPredicate("+m200").value();
  const FindResult r_slow = FindApp::Run(*w.kernel, *w.proc, "/", slow).value();
  ASSERT_EQ(r_slow.paths.size(), 1u);
  EXPECT_EQ(r_slow.paths[0], "/cold.dat");
}

TEST(LatencyPredicateTest, ParsesPaperSyntax) {
  auto p = ParseLatencyPredicate("+5").value();
  EXPECT_EQ(p.cmp, LatencyCmp::kGreater);
  EXPECT_EQ(p.threshold, Seconds(5));
  p = ParseLatencyPredicate("-3").value();
  EXPECT_EQ(p.cmp, LatencyCmp::kLess);
  EXPECT_EQ(p.threshold, Seconds(3));
  p = ParseLatencyPredicate("7").value();
  EXPECT_EQ(p.cmp, LatencyCmp::kEqual);
  EXPECT_EQ(p.threshold, Seconds(7));
  p = ParseLatencyPredicate("m200").value();
  EXPECT_EQ(p.threshold, Milliseconds(200));
  p = ParseLatencyPredicate("+M15").value();
  EXPECT_EQ(p.cmp, LatencyCmp::kGreater);
  EXPECT_EQ(p.threshold, Milliseconds(15));
  p = ParseLatencyPredicate("-u10").value();
  EXPECT_EQ(p.threshold, Microseconds(10));
  p = ParseLatencyPredicate("U2").value();
  EXPECT_EQ(p.threshold, Microseconds(2));

  EXPECT_FALSE(ParseLatencyPredicate("").ok());
  EXPECT_FALSE(ParseLatencyPredicate("+").ok());
  EXPECT_FALSE(ParseLatencyPredicate("m").ok());
  EXPECT_FALSE(ParseLatencyPredicate("abc").ok());
  EXPECT_FALSE(ParseLatencyPredicate("5x").ok());
  EXPECT_FALSE(ParseLatencyPredicate("--5").ok());
}

TEST(FileInfoAppTest, PanelReportsSledsAndTotal) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f.dat", std::string(8 * kPageSize, 'a'));
  const FileInfoReport report = FileInfoApp::Run(*w.kernel, *w.proc, "/f.dat").value();
  EXPECT_EQ(report.size_bytes, 8 * kPageSize);
  EXPECT_FALSE(report.sleds.empty());
  EXPECT_GT(report.estimated_delivery.nanos(), 0);
  EXPECT_NE(report.panel_text.find("estimated total delivery time"), std::string::npos);
  EXPECT_NE(report.panel_text.find("/f.dat"), std::string::npos);
  EXPECT_EQ(FileInfoApp::Run(*w.kernel, *w.proc, "/missing").error(), Err::kNoEnt);
}

// The headline behaviour: with a warm cache holding the file's tail, wc with
// SLEDs does far less device I/O than wc without.
TEST(AppsIntegrationTest, WcWithSledsUsesCachedTail) {
  Testbed tb = MakeUnixTestbed(StorageKind::kDisk, 42);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(42);
  // 60 MiB file through a 40 MiB cache.
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/big.txt", MiB(60), rng).ok());

  auto run_wc = [&](bool use_sleds) {
    Process& p = tb.kernel->CreateProcess(use_sleds ? "wc-sleds" : "wc");
    WcOptions options;
    options.use_sleds = use_sleds;
    EXPECT_TRUE(WcApp::Run(*tb.kernel, p, "/data/big.txt", options).ok());
    return p.stats().major_faults;
  };
  (void)run_wc(false);  // warm
  const int64_t faults_plain = run_wc(false);
  // Reset to the same warm state the plain run leaves behind, then measure
  // the SLEDs run against it.
  const int64_t faults_sleds = run_wc(true);
  // Plain: the LRU pathology refetches everything (~15360 pages). SLEDs:
  // only the non-resident portion (~5120 pages).
  EXPECT_GT(faults_plain, 14000);
  EXPECT_LT(faults_sleds, faults_plain / 2);
}

}  // namespace
}  // namespace sled

namespace sled {
namespace {

TEST(GrepContextTest, BeforeAndAfterContextLines) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f.txt",
            "one\ntwo\nthree needle here\nfour\nfive\nsix\nneedle again\neight\n");
  GrepOptions options;
  options.before_context = 2;
  options.after_context = 1;
  const GrepResult r = GrepApp::Run(*w.kernel, *w.proc, "/f.txt", "needle", options).value();
  ASSERT_EQ(r.matches.size(), 2u);
  EXPECT_EQ(r.matches[0].line, "three needle here");
  EXPECT_EQ(r.matches[0].before, (std::vector<std::string>{"one", "two"}));
  EXPECT_EQ(r.matches[0].after, (std::vector<std::string>{"four"}));
  EXPECT_EQ(r.matches[1].line, "needle again");
  EXPECT_EQ(r.matches[1].before, (std::vector<std::string>{"five", "six"}));
  EXPECT_EQ(r.matches[1].after, (std::vector<std::string>{"eight"}));
}

TEST(GrepContextTest, ContextClampedAtFileEdges) {
  World w = MakeWorld();
  WriteFile(*w.kernel, *w.proc, "/f.txt", "needle first\nmid\nneedle last");
  GrepOptions options;
  options.before_context = 3;
  options.after_context = 3;
  const GrepResult r = GrepApp::Run(*w.kernel, *w.proc, "/f.txt", "needle", options).value();
  ASSERT_EQ(r.matches.size(), 2u);
  EXPECT_TRUE(r.matches[0].before.empty());
  // The after-context of the first match includes the second match's line.
  EXPECT_EQ(r.matches[0].after, (std::vector<std::string>{"mid", "needle last"}));
  EXPECT_EQ(r.matches[1].before, (std::vector<std::string>{"needle first", "mid"}));
  EXPECT_TRUE(r.matches[1].after.empty());
}

TEST(GrepContextTest, SledsModeMatchesPlainContext) {
  World w = MakeWorld();
  Rng rng(33);
  std::string data;
  for (int i = 0; i < 4000; ++i) {
    if (i % 271 == 0) {
      data += "needle line " + std::to_string(i) + "\n";
    } else {
      for (int j = 0; j < 30; ++j) {
        data.push_back(static_cast<char>('a' + rng.Uniform(0, 25)));
      }
      data.push_back('\n');
    }
  }
  WriteFile(*w.kernel, *w.proc, "/f.txt", data);
  w.kernel->DropCaches();
  const int fd = w.kernel->Open(*w.proc, "/f.txt").value();
  char b;
  for (int64_t page = 8; page < 20; ++page) {
    ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, page * kPageSize, Whence::kSet).ok());
    ASSERT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(&b, 1)).ok());
  }
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());

  GrepOptions plain;
  plain.before_context = 1;
  plain.after_context = 1;
  GrepOptions sleds = plain;
  sleds.use_sleds = true;
  const GrepResult a = GrepApp::Run(*w.kernel, *w.proc, "/f.txt", "needle", plain).value();
  const GrepResult c = GrepApp::Run(*w.kernel, *w.proc, "/f.txt", "needle", sleds).value();
  ASSERT_EQ(a.matches.size(), c.matches.size());
  // Matched lines and offsets agree everywhere; context agrees except where
  // a SLED seam cut it off (documented restriction), which can only shorten.
  for (size_t i = 0; i < a.matches.size(); ++i) {
    EXPECT_EQ(a.matches[i].line, c.matches[i].line);
    EXPECT_EQ(a.matches[i].line_offset, c.matches[i].line_offset);
    EXPECT_LE(c.matches[i].before.size(), a.matches[i].before.size());
    EXPECT_LE(c.matches[i].after.size(), a.matches[i].after.size());
  }
}

}  // namespace
}  // namespace sled

namespace sled {
namespace {

TEST(FindAppTest, XdevSkipsOtherMounts) {
  Testbed tb = MakeUnixTestbed(StorageKind::kNfs, 55);
  Process& p = tb.kernel->CreateProcess("find");
  Rng rng(55);
  ASSERT_TRUE(tb.kernel->vfs().CreateDir("/local").ok());
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, p, "/local/here.txt", kGenLineLen * 4, rng).ok());
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, p, "/data/remote.txt", kGenLineLen * 4, rng).ok());

  FindOptions everything;
  const FindResult all = FindApp::Run(*tb.kernel, p, "/", everything).value();
  EXPECT_EQ(all.files_examined, 2);

  FindOptions xdev;
  xdev.same_fs_only = true;
  const FindResult local_only = FindApp::Run(*tb.kernel, p, "/", xdev).value();
  ASSERT_EQ(local_only.paths.size(), 1u);
  EXPECT_EQ(local_only.paths[0], "/local/here.txt");
  EXPECT_EQ(local_only.mounts_skipped, 1);
}

}  // namespace
}  // namespace sled
