// Unit and property tests for the page cache, including the paper's Figure 3
// two-pass LRU walkthrough.
#include <gtest/gtest.h>

#include <set>

#include "src/cache/page_cache.h"
#include "src/common/rng.h"

namespace sled {
namespace {

PageKey K(FileId f, int64_t p) { return PageKey{f, p}; }

TEST(PageCacheTest, MissThenHit) {
  PageCache cache({.capacity_pages = 4});
  EXPECT_FALSE(cache.Touch(K(1, 0)));
  EXPECT_FALSE(cache.Contains(K(1, 0)));
  cache.Insert(K(1, 0), false);
  EXPECT_TRUE(cache.Contains(K(1, 0)));
  EXPECT_TRUE(cache.Touch(K(1, 0)));
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(PageCacheTest, LruEvictsLeastRecentlyUsed) {
  PageCache cache({.capacity_pages = 3});
  cache.Insert(K(1, 0), false);
  cache.Insert(K(1, 1), false);
  cache.Insert(K(1, 2), false);
  EXPECT_TRUE(cache.Touch(K(1, 0)));  // 1 is now LRU
  auto evicted = cache.Insert(K(1, 3), false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->key, K(1, 1));
  EXPECT_TRUE(cache.Contains(K(1, 0)));
  EXPECT_FALSE(cache.Contains(K(1, 1)));
}

// Figure 3 of the paper: a five-page file scanned twice through a three-frame
// LRU cache. The second pass gains nothing: each block is evicted just before
// it is needed again.
TEST(PageCacheTest, PaperFigure3TwoLinearPasses) {
  PageCache cache({.capacity_pages = 3});
  const FileId f = 9;
  int64_t device_reads = 0;
  auto linear_pass = [&] {
    for (int64_t p = 0; p < 5; ++p) {
      if (!cache.Touch(K(f, p))) {
        ++device_reads;
        cache.Insert(K(f, p), false);
      }
    }
  };
  linear_pass();
  EXPECT_EQ(device_reads, 5);
  // After the first pass the cache holds the tail: blocks 2,3,4 (0-indexed).
  EXPECT_EQ(cache.ResidentPagesOf(f), (std::vector<int64_t>{2, 3, 4}));
  linear_pass();
  // Second pass re-reads everything: LRU gave no reuse at all.
  EXPECT_EQ(device_reads, 10);
  EXPECT_EQ(cache.ResidentPagesOf(f), (std::vector<int64_t>{2, 3, 4}));
}

// The SLEDs fix for Figure 3: read the cached tail first, then the head.
// Only the two uncached blocks hit the device.
TEST(PageCacheTest, PaperFigure3SledsOrderReadsCachedTailFirst) {
  PageCache cache({.capacity_pages = 3});
  const FileId f = 9;
  for (int64_t p = 0; p < 5; ++p) {
    cache.Touch(K(f, p));
    cache.Insert(K(f, p), false);
  }
  int64_t device_reads = 0;
  for (int64_t p : {2, 3, 4, 0, 1}) {  // cached first, then the head
    if (!cache.Touch(K(f, p))) {
      ++device_reads;
      cache.Insert(K(f, p), false);
    }
  }
  EXPECT_EQ(device_reads, 2);
}

TEST(PageCacheTest, ReinsertRefreshesRecencyAndAccumulatesDirty) {
  PageCache cache({.capacity_pages = 2});
  cache.Insert(K(1, 0), false);
  cache.Insert(K(1, 1), false);
  cache.Insert(K(1, 0), true);  // refresh + dirty
  EXPECT_TRUE(cache.IsDirty(K(1, 0)));
  auto evicted = cache.Insert(K(1, 2), false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->key, K(1, 1));  // 0 was refreshed, 1 is the victim
}

TEST(PageCacheTest, DirtyEvictionIsReported) {
  PageCache cache({.capacity_pages = 1});
  cache.Insert(K(1, 0), true);
  auto evicted = cache.Insert(K(1, 1), false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(evicted->dirty);
  EXPECT_EQ(cache.stats().dirty_evictions, 1);
}

TEST(PageCacheTest, MarkDirtyAndFsyncWorkflow) {
  PageCache cache({.capacity_pages = 8});
  cache.Insert(K(1, 3), false);
  cache.Insert(K(1, 1), false);
  cache.Insert(K(2, 0), false);
  cache.MarkDirty(K(1, 3));
  cache.MarkDirty(K(1, 1));
  cache.MarkDirty(K(2, 0));
  const auto dirty = cache.DirtyPagesOf(1);
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_EQ(dirty[0].page, 1);  // sorted by page
  EXPECT_EQ(dirty[1].page, 3);
  cache.MarkClean(K(1, 1));
  EXPECT_EQ(cache.DirtyPagesOf(1).size(), 1u);
  EXPECT_EQ(cache.AllDirtyPages().size(), 2u);
}

TEST(PageCacheTest, RemoveFileDropsOnlyThatFile) {
  PageCache cache({.capacity_pages = 8});
  cache.Insert(K(1, 0), true);
  cache.Insert(K(1, 1), false);
  cache.Insert(K(2, 0), false);
  cache.RemoveFile(1);
  EXPECT_FALSE(cache.Contains(K(1, 0)));
  EXPECT_FALSE(cache.Contains(K(1, 1)));
  EXPECT_TRUE(cache.Contains(K(2, 0)));
  EXPECT_EQ(cache.size_pages(), 1);
}

TEST(PageCacheTest, ClearEmptiesEverything) {
  PageCache cache({.capacity_pages = 8});
  cache.Insert(K(1, 0), true);
  cache.Insert(K(2, 0), false);
  cache.Clear();
  EXPECT_EQ(cache.size_pages(), 0);
  EXPECT_FALSE(cache.Contains(K(1, 0)));
}

TEST(PageCacheTest, ContainsDoesNotPerturbReplacement) {
  PageCache cache({.capacity_pages = 2});
  cache.Insert(K(1, 0), false);
  cache.Insert(K(1, 1), false);
  // A SLED scan probes page 0 without touching it...
  EXPECT_TRUE(cache.Contains(K(1, 0)));
  // ...so page 0 is still the LRU victim.
  auto evicted = cache.Insert(K(1, 2), false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->key, K(1, 0));
}

TEST(ClockPolicyTest, SecondChanceSavesReferencedPages) {
  PageCache cache({.capacity_pages = 3, .policy = ReplacementPolicy::kClock});
  cache.Insert(K(1, 0), false);
  cache.Insert(K(1, 1), false);
  cache.Insert(K(1, 2), false);
  EXPECT_TRUE(cache.Touch(K(1, 0)));  // sets the reference bit
  auto evicted = cache.Insert(K(1, 3), false);
  ASSERT_TRUE(evicted.has_value());
  // Page 0 was referenced: the hand skips it and takes page 1.
  EXPECT_EQ(evicted->key, K(1, 1));
  EXPECT_TRUE(cache.Contains(K(1, 0)));
}

TEST(ClockPolicyTest, UnreferencedPagesEvictFifo) {
  PageCache cache({.capacity_pages = 2, .policy = ReplacementPolicy::kClock});
  cache.Insert(K(1, 0), false);
  cache.Insert(K(1, 1), false);
  auto evicted = cache.Insert(K(1, 2), false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->key, K(1, 0));
}

// Property test across policies: capacity is never exceeded, eviction always
// reports the true victim, and resident bookkeeping matches a model set.
class CachePropertyTest
    : public ::testing::TestWithParam<std::tuple<ReplacementPolicy, int, uint64_t>> {};

TEST_P(CachePropertyTest, ModelConformance) {
  const auto [policy, capacity, seed] = GetParam();
  PageCache cache({.capacity_pages = capacity, .policy = policy});
  Rng rng(seed);
  std::set<std::pair<FileId, int64_t>> model;
  for (int i = 0; i < 2000; ++i) {
    const PageKey key = K(rng.Uniform(1, 3), rng.Uniform(0, 2 * capacity));
    const int op = static_cast<int>(rng.Uniform(0, 9));
    if (op < 5) {
      const bool hit = cache.Touch(key);
      EXPECT_EQ(hit, model.contains({key.file, key.page}));
    } else if (op < 8) {
      auto evicted = cache.Insert(key, rng.Bernoulli(0.3));
      model.insert({key.file, key.page});
      if (evicted.has_value()) {
        EXPECT_TRUE(model.erase({evicted->key.file, evicted->key.page}) > 0);
      }
    } else {
      cache.Remove(key);
      model.erase({key.file, key.page});
    }
    ASSERT_LE(cache.size_pages(), capacity);
    ASSERT_EQ(cache.size_pages(), static_cast<int64_t>(model.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CachePropertyTest,
    ::testing::Combine(::testing::Values(ReplacementPolicy::kLru, ReplacementPolicy::kClock),
                       ::testing::Values(1, 3, 16, 64), ::testing::Values(11u, 42u, 1234u)));

TEST(PageCacheTest, SinglePageCacheRefusesAllPins) {
  // The pin budget is capacity/2; with capacity 1 that is zero, so even a
  // resident page cannot be pinned — the cache must keep its one frame
  // evictable.
  PageCache cache({.capacity_pages = 1});
  cache.Insert(K(1, 0), false);
  EXPECT_TRUE(cache.Contains(K(1, 0)));
  EXPECT_FALSE(cache.Pin(K(1, 0)));
  EXPECT_FALSE(cache.IsPinned(K(1, 0)));
  EXPECT_EQ(cache.pinned_pages(), 0);
  // The unpinned page still cycles normally.
  auto evicted = cache.Insert(K(1, 1), false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->key, K(1, 0));
}

TEST(PageCacheTest, PinBudgetIsHalfCapacity) {
  PageCache cache({.capacity_pages = 4});
  for (int64_t p = 0; p < 4; ++p) {
    cache.Insert(K(1, p), false);
  }
  EXPECT_TRUE(cache.Pin(K(1, 0)));
  EXPECT_TRUE(cache.Pin(K(1, 1)));
  EXPECT_FALSE(cache.Pin(K(1, 2)));  // budget (2) exhausted
  cache.Unpin(K(1, 0));
  EXPECT_TRUE(cache.Pin(K(1, 2)));  // freed slot is reusable
}

}  // namespace
}  // namespace sled
