// Tests for RemoteFs: SLEDs across the wire (client / server-cache /
// server-disk levels).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/fs/remote_fs.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/picker.h"

namespace sled {
namespace {

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
  RemoteFs* fs = nullptr;
};

World MakeWorld(int64_t client_cache_pages = 1024, int64_t server_cache_pages = 2048) {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = client_cache_pages;
  w.kernel = std::make_unique<SimKernel>(config);
  RemoteFsConfig rc;
  rc.server_cache_pages = server_cache_pages;
  auto fs = std::make_unique<RemoteFs>("nfs2", rc);
  w.fs = fs.get();
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

void WriteFile(World& w, const std::string& path, int64_t size) {
  const int fd = w.kernel->Create(*w.proc, path).value();
  const std::string data(static_cast<size_t>(size), 'r');
  ASSERT_TRUE(w.kernel->Write(*w.proc, fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(RemoteFsTest, ExposesTwoRemoteLevels) {
  World w = MakeWorld();
  const auto levels = w.fs->Levels();
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].name, "nfs-cache");
  EXPECT_EQ(levels[1].name, "nfs-disk");
  EXPECT_LT(levels[0].nominal.latency, levels[1].nominal.latency);
  EXPECT_GE(levels[0].nominal.bandwidth_bps, levels[1].nominal.bandwidth_bps);
}

TEST(RemoteFsTest, ServerCacheMakesRereadsCheaper) {
  World w = MakeWorld();
  WriteFile(w, "/f", 64 * kPageSize);
  // Flush everything: server cache keeps pages written through it, so drop
  // the *client* cache only and read once to re-warm the server.
  w.kernel->DropCaches();
  const InodeNum ino = w.kernel->vfs().Resolve("/f").value().ino;

  // First server read may hit server cache (written through); force a true
  // cold pass by overflowing the server cache with another file.
  WriteFile(w, "/filler", 3000 * kPageSize);
  w.kernel->DropCaches();
  const Duration cold = w.fs->ReadPagesFromStore(ino, 0, 64).value();
  const Duration warm = w.fs->ReadPagesFromStore(ino, 0, 64).value();
  EXPECT_LT(warm, cold);  // second pass serves from server cache: wire only
  // Warm pass ~= RPC + 256 KiB at wire speed.
  EXPECT_NEAR(warm.ToSeconds(), 0.0012 + 64.0 * kPageSize / 10.0e6, 0.01);
}

TEST(RemoteFsTest, LevelReflectsServerCacheState) {
  World w = MakeWorld(/*client_cache_pages=*/1024, /*server_cache_pages=*/32);
  WriteFile(w, "/f", 64 * kPageSize);
  w.kernel->DropCaches();
  const InodeNum ino = w.kernel->vfs().Resolve("/f").value().ino;
  // After writing 64 pages through a 32-page server cache, only the tail is
  // server-cached.
  EXPECT_EQ(w.fs->LevelOf(ino, 0), RemoteFs::kLevelServerDisk);
  EXPECT_EQ(w.fs->LevelOf(ino, 63), RemoteFs::kLevelServerCache);
}

TEST(RemoteFsTest, SledsSeeThreeTiers) {
  World w = MakeWorld(/*client_cache_pages=*/1024, /*server_cache_pages=*/32);
  WriteFile(w, "/f", 64 * kPageSize);
  w.kernel->DropCaches();
  // Client-cache pages 0..7 (read them back), server holds tail 32..63.
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  char b;
  for (int64_t page = 0; page < 8; ++page) {
    ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, page * kPageSize, Whence::kSet).ok());
    ASSERT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(&b, 1)).ok());
  }
  SledVector sleds = w.kernel->IoctlSledsGet(*w.proc, fd).value();
  // Expect at least three distinct latency classes in the vector.
  std::set<int> levels;
  for (const Sled& s : sleds) {
    levels.insert(s.level);
  }
  EXPECT_GE(levels.size(), 3u);
  // And the picker orders them client-memory, server-cache, server-disk.
  auto picker = SledsPicker::Create(*w.kernel, *w.proc, fd, PickerOptions{}).value();
  double last = -1.0;
  for (const Sled& s : picker->plan()) {
    EXPECT_GE(s.latency, last);
    last = s.latency;
  }
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
}

TEST(RemoteFsTest, WritesGoThroughServerCache) {
  World w = MakeWorld();
  WriteFile(w, "/f", 8 * kPageSize);
  const InodeNum ino = w.kernel->vfs().Resolve("/f").value().ino;
  // Dirty pages sit in the *client* cache until flushed; fsync pushes them
  // over the wire, after which the server cache holds them.
  const int fd = w.kernel->Open(*w.proc, "/f").value();
  ASSERT_TRUE(w.kernel->Fsync(*w.proc, fd).ok());
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
  EXPECT_EQ(w.fs->LevelOf(ino, 0), RemoteFs::kLevelServerCache);
  const int64_t disk_writes_before = w.fs->server().disk().stats().writes;
  // Overflow the server cache: dirty pages must reach the server disk.
  WriteFile(w, "/big", 3000 * kPageSize);
  w.kernel->DropCaches();
  EXPECT_GT(w.fs->server().disk().stats().writes, disk_writes_before);
}

TEST(RemoteFsTest, ContentsRoundTripThroughServer) {
  World w = MakeWorld();
  const std::string payload = "remote data travels well";
  const int fd = w.kernel->Create(*w.proc, "/f").value();
  ASSERT_TRUE(
      w.kernel->Write(*w.proc, fd, std::span<const char>(payload.data(), payload.size())).ok());
  ASSERT_TRUE(w.kernel->Close(*w.proc, fd).ok());
  w.kernel->DropCaches();
  const int rfd = w.kernel->Open(*w.proc, "/f").value();
  std::string out(payload.size(), '\0');
  EXPECT_EQ(w.kernel->Read(*w.proc, rfd, std::span<char>(out.data(), out.size())).value(),
            static_cast<int64_t>(payload.size()));
  EXPECT_EQ(out, payload);
  ASSERT_TRUE(w.kernel->Close(*w.proc, rfd).ok());
}

TEST(RemoteFsTest, UnlinkFreesServerState) {
  World w = MakeWorld();
  WriteFile(w, "/f", 8 * kPageSize);
  ASSERT_TRUE(w.kernel->Unlink(*w.proc, "/f").ok());
  EXPECT_EQ(w.kernel->Stat(*w.proc, "/f").error(), Err::kNoEnt);
}

}  // namespace
}  // namespace sled
