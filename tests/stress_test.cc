// fsx-style randomized stress test: a long random sequence of syscalls runs
// against every file-system kind, checked after every operation against an
// in-memory model (std::map of path -> contents). Catches content-plane
// corruption, offset bookkeeping bugs, cache/writeback inconsistencies, and
// cross-layer interactions that directed tests miss.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/fs/extent_file_system.h"
#include "src/fs/remote_fs.h"
#include "src/workload/testbed.h"

namespace sled {
namespace {

class StressWorld {
 public:
  StressWorld(StorageKind kind, uint64_t seed) : rng_(seed) {
    TestbedConfig config;
    config.kind = kind;
    config.cache_pages = 256;  // small cache: lots of eviction traffic
    config.seed = seed;
    tb_ = MakeTestbed(config);
    proc_ = &tb_->kernel->CreateProcess("stress");
  }

  explicit StressWorld(uint64_t seed) : rng_(seed) {
    // Remote variant.
    tb_.emplace();
    KernelConfig kc;
    kc.cache.capacity_pages = 256;
    tb_->kernel = std::make_unique<SimKernel>(kc);
    RemoteFsConfig rc;
    rc.server_cache_pages = 128;
    rc.seed = seed;
    EXPECT_TRUE(tb_->kernel->Mount("/data", std::make_unique<RemoteFs>("remote", rc)).ok());
    DiskDeviceConfig sys;
    sys.capacity_bytes = 1LL << 30;
    EXPECT_TRUE(tb_->kernel
                    ->Mount("/", std::make_unique<ExtFs>(
                                     "sys", std::make_unique<DiskDevice>(sys, "sys")))
                    .ok());
    proc_ = &tb_->kernel->CreateProcess("stress");
  }

  void Step() {
    const int op = static_cast<int>(rng_.Uniform(0, 99));
    if (op < 20 || model_.empty()) {
      OpCreateOrOverwrite();
    } else if (op < 55) {
      OpReadAndVerify();
    } else if (op < 75) {
      OpWriteAt();
    } else if (op < 85) {
      OpTruncate();
    } else if (op < 92) {
      OpDropOrFlush();
    } else {
      OpUnlink();
    }
  }

  size_t files() const { return model_.size(); }

 private:
  SimKernel& kernel() { return *tb_->kernel; }

  std::string RandomPath() {
    if (!model_.empty() && rng_.Bernoulli(0.7)) {
      auto it = model_.begin();
      std::advance(it, rng_.Uniform(0, static_cast<int64_t>(model_.size()) - 1));
      return it->first;
    }
    return "/data/f" + std::to_string(rng_.Uniform(0, 9));
  }

  std::string RandomData(int64_t max_len) {
    std::string data(static_cast<size_t>(rng_.Uniform(1, max_len)), '\0');
    for (char& c : data) {
      c = static_cast<char>('A' + rng_.Uniform(0, 25));
    }
    return data;
  }

  void OpCreateOrOverwrite() {
    const std::string path = RandomPath();
    const std::string data = RandomData(48 * 1024);
    auto fd = kernel().Create(*proc_, path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(kernel().Write(*proc_, fd.value(),
                               std::span<const char>(data.data(), data.size()))
                    .ok());
    ASSERT_TRUE(kernel().Close(*proc_, fd.value()).ok());
    model_[path] = data;
  }

  void OpWriteAt() {
    const std::string path = RandomPath();
    auto it = model_.find(path);
    if (it == model_.end()) {
      return;
    }
    const std::string data = RandomData(8 * 1024);
    const int64_t offset = rng_.Uniform(0, static_cast<int64_t>(it->second.size()));
    auto fd = kernel().Open(*proc_, path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(kernel().Lseek(*proc_, fd.value(), offset, Whence::kSet).ok());
    auto w = kernel().Write(*proc_, fd.value(),
                            std::span<const char>(data.data(), data.size()));
    if (w.ok()) {
      if (it->second.size() < static_cast<size_t>(offset) + data.size()) {
        it->second.resize(static_cast<size_t>(offset) + data.size(), '\0');
      }
      std::copy(data.begin(), data.end(), it->second.begin() + offset);
    }
    ASSERT_TRUE(kernel().Close(*proc_, fd.value()).ok());
  }

  void OpReadAndVerify() {
    const std::string path = RandomPath();
    auto it = model_.find(path);
    if (it == model_.end()) {
      EXPECT_EQ(kernel().Open(*proc_, path).error(), Err::kNoEnt);
      return;
    }
    auto fd = kernel().Open(*proc_, path);
    ASSERT_TRUE(fd.ok());
    // Random-range read.
    const int64_t size = static_cast<int64_t>(it->second.size());
    const int64_t offset = rng_.Uniform(0, std::max<int64_t>(0, size - 1));
    const int64_t want = rng_.Uniform(1, 16 * 1024);
    std::string buf(static_cast<size_t>(want), '\0');
    ASSERT_TRUE(kernel().Lseek(*proc_, fd.value(), offset, Whence::kSet).ok());
    auto n = kernel().Read(*proc_, fd.value(), std::span<char>(buf.data(), buf.size()));
    ASSERT_TRUE(n.ok());
    const int64_t expect_n = std::min(want, size - offset);
    ASSERT_EQ(n.value(), expect_n) << path;
    EXPECT_EQ(std::string_view(buf.data(), static_cast<size_t>(n.value())),
              std::string_view(it->second).substr(static_cast<size_t>(offset),
                                                  static_cast<size_t>(expect_n)))
        << path << " at " << offset;
    ASSERT_TRUE(kernel().Close(*proc_, fd.value()).ok());
  }

  void OpTruncate() {
    const std::string path = RandomPath();
    auto it = model_.find(path);
    if (it == model_.end()) {
      return;
    }
    const int64_t new_size =
        rng_.Uniform(0, static_cast<int64_t>(it->second.size()) + 4096);
    auto fd = kernel().Open(*proc_, path);
    ASSERT_TRUE(fd.ok());
    auto t = kernel().Ftruncate(*proc_, fd.value(), new_size);
    if (t.ok()) {
      it->second.resize(static_cast<size_t>(new_size), '\0');
    }
    ASSERT_TRUE(kernel().Close(*proc_, fd.value()).ok());
  }

  void OpDropOrFlush() {
    if (rng_.Bernoulli(0.5)) {
      kernel().DropCaches();
    } else {
      (void)kernel().FlushAllDirty();
    }
  }

  void OpUnlink() {
    const std::string path = RandomPath();
    auto r = kernel().Unlink(*proc_, path);
    if (model_.erase(path) > 0) {
      EXPECT_TRUE(r.ok()) << path;
    } else {
      EXPECT_FALSE(r.ok());
    }
  }

  std::optional<Testbed> tb_;
  Process* proc_ = nullptr;
  Rng rng_;
  std::map<std::string, std::string> model_;
};

class FsStressTest : public ::testing::TestWithParam<std::tuple<StorageKind, uint64_t>> {};

TEST_P(FsStressTest, RandomOpsMatchModel) {
  const auto [kind, seed] = GetParam();
  StressWorld world(kind, seed);
  for (int i = 0; i < 600; ++i) {
    world.Step();
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "fatal at step " << i;
    }
  }
  EXPECT_GT(world.files(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, FsStressTest,
    ::testing::Combine(::testing::Values(StorageKind::kDisk, StorageKind::kNfs),
                       ::testing::Values(101u, 202u, 303u)));

TEST(RemoteStressTest, RandomOpsMatchModel) {
  StressWorld world(/*seed=*/777u);
  for (int i = 0; i < 600; ++i) {
    world.Step();
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "fatal at step " << i;
    }
  }
}

}  // namespace
}  // namespace sled
