// Differential and statistical tests for the open-loop traffic engine
// (cache_diff_test playbook, applied to the timing wheel).
//
// The hierarchical timing wheel's semantics are pinned against a
// (deadline, sequence)-ordered binary-heap oracle under a randomized op mix
// that exercises every structural regime: level-0 wraparound, multi-level
// cascades, far-future overflow parking, past-deadline clamping, and O(1)
// cancellation. The arrival processes get statistical sanity checks at fixed
// seeds (empirical rates against configured rates), and the engine itself is
// checked for scheduler-independence (wheel == heap), run-to-run determinism,
// and shard-count invariance through the ObsAccumulator merge path.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/openload/arrival.h"
#include "src/openload/engine.h"
#include "src/openload/heap_sched.h"
#include "src/openload/timing_wheel.h"
#include "src/workload/trace.h"

namespace sled {
namespace {

struct Fired {
  uint64_t deadline;
  int32_t payload;
  bool operator==(const Fired&) const = default;
};

// Drive the wheel and the heap oracle through an identical randomized op mix
// and require identical fire sequences after every advance. Deltas are drawn
// from all structural regimes of the wheel.
TEST(TimingWheelDiff, RandomizedAgainstHeapOracle) {
  for (const uint64_t seed : {1ull, 7ull, 0xdeadbeefull}) {
    uint64_t rng = seed;
    TimingWheel<int32_t> wheel;
    HeapScheduler<int32_t> heap;
    // id -> (wheel handle, heap handle); erased on fire or cancel.
    std::unordered_map<int32_t, std::pair<uint64_t, uint64_t>> live;
    std::vector<int32_t> ids;  // may contain already-fired ids; lazily pruned
    uint64_t now = 0;
    int32_t next_id = 0;
    std::vector<Fired> wheel_fired;
    std::vector<Fired> heap_fired;
    auto expire_both = [&](uint64_t t) {
      wheel.ExpireUpTo(t, [&](uint64_t d, int32_t p) {
        wheel_fired.push_back({d, p});
        live.erase(p);
      });
      heap.ExpireUpTo(t, [&](uint64_t d, int32_t p) { heap_fired.push_back({d, p}); });
      ASSERT_EQ(wheel_fired.size(), heap_fired.size());
      for (size_t i = 0; i < wheel_fired.size(); ++i) {
        ASSERT_EQ(wheel_fired[i], heap_fired[i]) << "seed " << seed << " at fire " << i;
        if (i > 0) {
          ASSERT_GE(wheel_fired[i].deadline, wheel_fired[i - 1].deadline);
        }
      }
      wheel_fired.clear();
      heap_fired.clear();
    };

    for (int step = 0; step < 30000; ++step) {
      const uint64_t roll = OpenLoadRandom(&rng) % 100;
      if (roll < 55) {
        uint64_t deadline;
        const uint64_t kind = OpenLoadRandom(&rng) % 12;
        if (kind < 4) {
          deadline = now + OpenLoadRandom(&rng) % 256;  // level 0, incl. wrap
        } else if (kind < 7) {
          deadline = now + OpenLoadRandom(&rng) % (uint64_t{1} << 16);  // level 1
        } else if (kind < 9) {
          deadline = now + OpenLoadRandom(&rng) % (uint64_t{1} << 26);  // cascades
        } else if (kind < 10) {
          // Far future: beyond the 2^48 direct horizon (overflow parking).
          deadline = now + (uint64_t{1} << 48) + OpenLoadRandom(&rng) % (uint64_t{1} << 49);
        } else {
          // The past: both schedulers clamp to their current time.
          deadline = now - (now > 0 ? OpenLoadRandom(&rng) % now : 0);
        }
        live[next_id] = {wheel.Schedule(deadline, next_id), heap.Schedule(deadline, next_id)};
        ids.push_back(next_id);
        ++next_id;
      } else if (roll < 70 && !ids.empty()) {
        // Cancel a random still-live timer (skipping fired ids lazily).
        while (!ids.empty()) {
          const size_t i = OpenLoadRandom(&rng) % ids.size();
          const int32_t id = ids[i];
          ids[i] = ids.back();
          ids.pop_back();
          auto it = live.find(id);
          if (it != live.end()) {
            EXPECT_TRUE(wheel.Cancel(it->second.first));
            EXPECT_TRUE(heap.Cancel(it->second.second));
            live.erase(it);
            break;
          }
        }
      } else {
        const int shift = static_cast<int>(OpenLoadRandom(&rng) % 30);
        now += OpenLoadRandom(&rng) % (uint64_t{1} << shift) + 1;
        expire_both(now);
      }
      ASSERT_EQ(wheel.size(), heap.size());
    }
    // Drain everything, including the overflow parkers (forces repeated
    // top-level re-cascades until their true deadlines come into range).
    now += uint64_t{1} << 50;
    expire_both(now);
    ASSERT_TRUE(wheel.empty());
    ASSERT_TRUE(heap.empty());
  }
}

// Equal deadlines fire in schedule order, both when they stay on level 0 and
// when they reach their slot through multi-level cascades.
TEST(TimingWheelDiff, FifoAmongEqualDeadlines) {
  for (const uint64_t delta : {uint64_t{5}, uint64_t{70000}, uint64_t{1} << 30}) {
    TimingWheel<int32_t> wheel;
    const uint64_t deadline = 1000 + delta;
    for (int32_t i = 0; i < 100; ++i) {
      wheel.Schedule(deadline, i);
    }
    int32_t expect = 0;
    wheel.ExpireUpTo(deadline + 1, [&](uint64_t d, int32_t p) {
      EXPECT_EQ(d, deadline);
      EXPECT_EQ(p, expect++);
    });
    EXPECT_EQ(expect, 100);
  }
}

TEST(TimingWheelDiff, StaleHandlesNeverCancel) {
  TimingWheel<int32_t> wheel;
  const auto h = wheel.Schedule(10, 1);
  int fired = 0;
  wheel.ExpireUpTo(20, [&](uint64_t, int32_t) { ++fired; });
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(wheel.Cancel(h));  // already fired
  const auto h2 = wheel.Schedule(30, 2);
  EXPECT_TRUE(wheel.Cancel(h2));
  EXPECT_FALSE(wheel.Cancel(h2));  // double cancel
  EXPECT_TRUE(wheel.empty());
}

// A callback scheduling for the current instant joins the same sweep, after
// the batch it was scheduled from — on both schedulers, identically.
TEST(TimingWheelDiff, CallbackScheduleJoinsSweep) {
  TimingWheel<int32_t> wheel;
  HeapScheduler<int32_t> heap;
  std::vector<Fired> wf;
  std::vector<Fired> hf;
  wheel.Schedule(100, 0);
  heap.Schedule(100, 0);
  wheel.ExpireUpTo(300, [&](uint64_t d, int32_t p) {
    wf.push_back({d, p});
    if (p < 4) {
      wheel.Schedule(d, p + 10);       // same instant: fires this sweep
      wheel.Schedule(d + 50, p + 1);   // later instant: also within the sweep
    }
  });
  heap.ExpireUpTo(300, [&](uint64_t d, int32_t p) {
    hf.push_back({d, p});
    if (p < 4) {
      heap.Schedule(d, p + 10);
      heap.Schedule(d + 50, p + 1);
    }
  });
  EXPECT_EQ(wf, hf);
  EXPECT_EQ(wf.size(), 9u);
}

// ---- arrival process statistics (fixed seeds, deterministic) ----

double MeanGap(ArrivalPattern pattern, double mean_gap_ns, int n, uint64_t seed,
               double* cv2 = nullptr) {
  ArrivalParams p;
  p.pattern = pattern;
  p.mean_gap_ns = mean_gap_ns;
  ArrivalState s;
  s.rng = seed;
  uint64_t t = 0;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const uint64_t next = NextArrivalNs(p, &s, t);
    EXPECT_GT(next, t);  // strictly advancing
    const double gap = static_cast<double>(next - t);
    sum += gap;
    sum_sq += gap * gap;
    t = next;
  }
  const double mean = sum / n;
  if (cv2 != nullptr) {
    *cv2 = (sum_sq / n - mean * mean) / (mean * mean);
  }
  return mean;
}

TEST(ArrivalProcess, PoissonEmpiricalRate) {
  double cv2 = 0;
  const double mean = MeanGap(ArrivalPattern::kPoisson, 1e6, 200000, 42, &cv2);
  EXPECT_NEAR(mean, 1e6, 0.02 * 1e6);
  EXPECT_NEAR(cv2, 1.0, 0.05);  // exponential: squared CV = 1
}

TEST(ArrivalProcess, BurstKeepsLongRunRateButClumps) {
  double cv2 = 0;
  const double mean = MeanGap(ArrivalPattern::kBurst, 1e6, 400000, 7, &cv2);
  EXPECT_NEAR(mean, 1e6, 0.10 * 1e6);  // duty-preserving long-run rate
  EXPECT_GT(cv2, 1.5);                 // burstier than Poisson
}

TEST(ArrivalProcess, DiurnalThinningPreservesMeanRate) {
  const double mean = MeanGap(ArrivalPattern::kDiurnal, 1e6, 200000, 11);
  EXPECT_NEAR(mean, 1e6, 0.05 * 1e6);
}

// ---- engine-level differentials ----

TEST(OpenLoadEngine, WheelMatchesHeapOnEveryPattern) {
  for (const ArrivalPattern pattern :
       {ArrivalPattern::kPoisson, ArrivalPattern::kBurst, ArrivalPattern::kDiurnal}) {
    OpenLoadConfig c;
    c.clients = 5000;
    c.worlds = 2;
    c.service = ServiceModel::kSynthetic;
    c.pattern = pattern;
    c.per_client_rps = 20;
    c.horizon_s = 0.5;
    OpenLoadConfig heap_c = c;
    heap_c.scheduler = SchedulerKind::kHeap;
    for (int64_t w = 0; w < c.worlds; ++w) {
      const OpenLoadWorldResult a = RunOpenLoadWorld(c, w, nullptr);
      const OpenLoadWorldResult b = RunOpenLoadWorld(heap_c, w, nullptr);
      EXPECT_EQ(a, b) << ArrivalPatternName(pattern) << " world " << w;
      EXPECT_GT(a.arrivals, 0);
      EXPECT_EQ(a.arrivals, a.completions);
    }
  }
}

TEST(OpenLoadEngine, DeterministicAcrossRuns) {
  OpenLoadConfig c;
  c.clients = 3000;
  c.worlds = 3;
  c.service = ServiceModel::kSynthetic;
  c.pattern = ArrivalPattern::kBurst;
  c.per_client_rps = 40;
  c.horizon_s = 0.25;
  EXPECT_EQ(RunOpenLoadWorld(c, 1, nullptr), RunOpenLoadWorld(c, 1, nullptr));
}

// N-shard scenario == single-shard oracle, through the full kernel service
// path and the ObsAccumulator histogram merge.
TEST(OpenLoadEngine, ShardCountInvariance) {
  OpenLoadConfig c;
  c.clients = 200;
  c.worlds = 4;
  c.file_mb = 4;
  c.cache_pages = 512;
  c.per_client_rps = 10;
  c.horizon_s = 1.0;
  c.shards = 1;
  const ScenarioResult oracle = RunOpenLoadScenario(c);
  c.shards = 2;
  const ScenarioResult sharded = RunOpenLoadScenario(c);
  ASSERT_EQ(oracle.worlds.size(), sharded.worlds.size());
  for (size_t w = 0; w < oracle.worlds.size(); ++w) {
    EXPECT_EQ(oracle.worlds[w], sharded.worlds[w]) << "world " << w;
  }
  EXPECT_EQ(oracle.checksum, sharded.checksum);
  EXPECT_TRUE(oracle.latency == sharded.latency);
  EXPECT_TRUE(oracle.queue_wait == sharded.queue_wait);
  EXPECT_GT(oracle.completions, 0);
  EXPECT_EQ(oracle.latency.count(), oracle.completions);
  EXPECT_EQ(ScenarioJson(oracle), ScenarioJson(sharded));
}

TEST(OpenLoadEngine, ExtractReadOpsFollowsCursors) {
  Trace t;
  t.push_back({TraceOp::kOpen, 3, "/data/f", 0, 0});
  t.push_back({TraceOp::kRead, 3, "", 0, 4096});           // [0, 4096)
  t.push_back({TraceOp::kRead, 3, "", 0, 8192});           // [4096, 12288)
  t.push_back({TraceOp::kLseek, 3, "", 65536, 0});
  t.push_back({TraceOp::kRead, 3, "", 0, 4096});           // [65536, 69632)
  t.push_back({TraceOp::kWrite, 3, "", 0, 1024});          // advances cursor
  t.push_back({TraceOp::kRead, 3, "", 0, 512});            // [70656, 71168)
  t.push_back({TraceOp::kMmapRead, 3, "", 131072, 16384});  // explicit offset
  t.push_back({TraceOp::kClose, 3, "", 0, 0});
  const std::vector<ReadOp> ops = ExtractReadOps(t);
  ASSERT_EQ(ops.size(), 5u);
  EXPECT_EQ(ops[0].offset, 0);
  EXPECT_EQ(ops[1].offset, 4096);
  EXPECT_EQ(ops[2].offset, 65536);
  EXPECT_EQ(ops[3].offset, 70656);
  EXPECT_EQ(ops[3].length, 512);
  EXPECT_EQ(ops[4].offset, 131072);
  EXPECT_EQ(ops[4].length, 16384);
}

TEST(OpenLoadEngine, TraceArrivalPatternReplays) {
  const std::vector<ReadOp> ops = {{0, 4096}, {16384, 8192}, {65536, 16384}};
  OpenLoadConfig c;
  c.clients = 50;
  c.worlds = 1;
  c.file_mb = 2;
  c.cache_pages = 256;
  c.pattern = ArrivalPattern::kTrace;
  c.trace_ops = &ops;
  c.per_client_rps = 20;
  c.horizon_s = 0.5;
  const OpenLoadWorldResult r = RunOpenLoadWorld(c, 0, nullptr);
  EXPECT_GT(r.arrivals, 0);
  EXPECT_EQ(r.arrivals, r.completions);
  EXPECT_EQ(r.errors, 0);
  EXPECT_EQ(r, RunOpenLoadWorld(c, 0, nullptr));
}

}  // namespace
}  // namespace sled
