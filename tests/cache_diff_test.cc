// Randomized differential test: the run-indexed PageCache against a naive
// reference model that replicates the pre-index implementation (recency list
// plus flat hash map, with every query a full scan). Thousands of mixed
// operations must produce identical residency, dirty sets, eviction victims,
// pin results, and stats under both replacement policies, and the run-oriented
// queries must agree with runs derived from the naive resident-page list.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/cache/page_cache.h"
#include "src/common/rng.h"

namespace sled {
namespace {

// The old PageCache, kept deliberately simple: correctness oracle only.
class NaiveCache {
 public:
  explicit NaiveCache(PageCacheConfig config) : config_(config) {}

  bool Contains(PageKey key) const { return entries_.contains(key); }

  bool Touch(PageKey key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return false;
    }
    ++stats_.hits;
    if (config_.policy == ReplacementPolicy::kLru) {
      order_.splice(order_.end(), order_, it->second.it);
    } else {
      it->second.referenced = true;
    }
    return true;
  }

  std::optional<EvictedPage> Insert(PageKey key, bool dirty) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.dirty = it->second.dirty || dirty;
      if (config_.policy == ReplacementPolicy::kLru) {
        order_.splice(order_.end(), order_, it->second.it);
      } else {
        it->second.referenced = true;
      }
      return std::nullopt;
    }
    std::optional<EvictedPage> evicted;
    if (static_cast<int64_t>(entries_.size()) >= config_.capacity_pages) {
      evicted = EvictOne();
    }
    order_.push_back(key);
    entries_.emplace(key, Entry{std::prev(order_.end()), dirty, false, false});
    ++stats_.insertions;
    return evicted;
  }

  bool Pin(PageKey key) {
    auto it = entries_.find(key);
    if (it == entries_.end() || pinned_ >= config_.capacity_pages / 2) {
      return false;
    }
    if (!it->second.pinned) {
      it->second.pinned = true;
      ++pinned_;
    }
    return true;
  }

  void Unpin(PageKey key) {
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.pinned) {
      it->second.pinned = false;
      --pinned_;
    }
  }

  bool IsPinned(PageKey key) const {
    auto it = entries_.find(key);
    return it != entries_.end() && it->second.pinned;
  }

  void MarkDirty(PageKey key) { entries_.at(key).dirty = true; }
  void MarkClean(PageKey key) { entries_.at(key).dirty = false; }

  bool IsDirty(PageKey key) const {
    auto it = entries_.find(key);
    return it != entries_.end() && it->second.dirty;
  }

  void Remove(PageKey key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return;
    }
    if (it->second.pinned) {
      --pinned_;
    }
    order_.erase(it->second.it);
    entries_.erase(it);
  }

  void RemoveFile(FileId file) {
    for (int64_t page : ResidentPagesOf(file)) {
      Remove({file, page});
    }
  }

  void RemovePagesFrom(FileId file, int64_t first_page) {
    for (int64_t page : ResidentPagesOf(file)) {
      if (page >= first_page) {
        Remove({file, page});
      }
    }
  }

  void Clear() {
    entries_.clear();
    order_.clear();
    pinned_ = 0;
  }

  std::vector<int64_t> ResidentPagesOf(FileId file) const {
    std::vector<int64_t> pages;
    for (const auto& [key, entry] : entries_) {
      if (key.file == file) {
        pages.push_back(key.page);
      }
    }
    std::sort(pages.begin(), pages.end());
    return pages;
  }

  std::vector<PageKey> DirtyPagesOf(FileId file) const {
    std::vector<PageKey> dirty;
    for (const auto& [key, entry] : entries_) {
      if (key.file == file && entry.dirty) {
        dirty.push_back(key);
      }
    }
    std::sort(dirty.begin(), dirty.end(),
              [](const PageKey& a, const PageKey& b) { return a.page < b.page; });
    return dirty;
  }

  std::vector<PageKey> AllDirtyPages() const {
    std::vector<PageKey> dirty;
    for (const auto& [key, entry] : entries_) {
      if (entry.dirty) {
        dirty.push_back(key);
      }
    }
    std::sort(dirty.begin(), dirty.end(), [](const PageKey& a, const PageKey& b) {
      return a.file != b.file ? a.file < b.file : a.page < b.page;
    });
    return dirty;
  }

  int64_t size_pages() const { return static_cast<int64_t>(entries_.size()); }
  const PageCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::list<PageKey>::iterator it;
    bool dirty = false;
    bool referenced = false;
    bool pinned = false;
  };

  EvictedPage EvictOne() {
    for (int sweep = 0; sweep < 3; ++sweep) {
      auto it = order_.begin();
      while (it != order_.end()) {
        Entry& entry = entries_.at(*it);
        if (entry.pinned) {
          ++it;
          continue;
        }
        if (config_.policy == ReplacementPolicy::kClock && entry.referenced) {
          entry.referenced = false;
          auto next = std::next(it);
          order_.splice(order_.end(), order_, it);
          entry.it = std::prev(order_.end());
          it = next;
          continue;
        }
        EvictedPage evicted{*it, entry.dirty};
        entries_.erase(*it);
        order_.erase(it);
        ++stats_.evictions;
        if (evicted.dirty) {
          ++stats_.dirty_evictions;
        }
        return evicted;
      }
    }
    ADD_FAILURE() << "no evictable page";
    return {};
  }

  PageCacheConfig config_;
  std::unordered_map<PageKey, Entry, PageKeyHash> entries_;
  std::list<PageKey> order_;
  PageCacheStats stats_;
  int64_t pinned_ = 0;
};

std::vector<PageRun> RunsFromPages(const std::vector<int64_t>& pages) {
  std::vector<PageRun> runs;
  for (int64_t page : pages) {
    if (!runs.empty() && runs.back().end() == page) {
      ++runs.back().count;
    } else {
      runs.push_back(PageRun{page, 1});
    }
  }
  return runs;
}

void ExpectSameState(const PageCache& cache, const NaiveCache& naive,
                     const std::vector<FileId>& files, int64_t max_page) {
  ASSERT_TRUE(cache.ValidateIndex());
  EXPECT_EQ(cache.size_pages(), naive.size_pages());
  EXPECT_EQ(cache.stats().hits, naive.stats().hits);
  EXPECT_EQ(cache.stats().misses, naive.stats().misses);
  EXPECT_EQ(cache.stats().insertions, naive.stats().insertions);
  EXPECT_EQ(cache.stats().evictions, naive.stats().evictions);
  EXPECT_EQ(cache.stats().dirty_evictions, naive.stats().dirty_evictions);
  EXPECT_EQ(cache.AllDirtyPages(), naive.AllDirtyPages());
  for (FileId file : files) {
    const std::vector<int64_t> pages = naive.ResidentPagesOf(file);
    EXPECT_EQ(cache.ResidentPagesOf(file), pages);
    EXPECT_EQ(cache.DirtyPagesOf(file), naive.DirtyPagesOf(file));
    const std::vector<PageRun> runs = RunsFromPages(pages);
    EXPECT_EQ(cache.ResidentRunsOf(file), runs);
    EXPECT_EQ(cache.ResidentRunCountOf(file), static_cast<int64_t>(runs.size()));
    // Probe every page: run queries must agree with the flat page list.
    for (int64_t page = 0; page <= max_page; ++page) {
      const auto run_at = cache.ResidentRunAt(file, page);
      const bool resident = std::binary_search(pages.begin(), pages.end(), page);
      ASSERT_EQ(run_at.has_value(), resident) << "file " << file << " page " << page;
      if (resident) {
        EXPECT_LE(run_at->first, page);
        EXPECT_GT(run_at->end(), page);
        EXPECT_EQ(cache.NextMissAfter(file, page), run_at->end());
      } else {
        EXPECT_EQ(cache.NextMissAfter(file, page), page);
      }
      const auto next = cache.NextResidentRun(file, page);
      const auto expect = std::find_if(runs.begin(), runs.end(),
                                       [page](const PageRun& r) { return r.end() > page; });
      ASSERT_EQ(next.has_value(), expect != runs.end());
      if (next.has_value()) {
        EXPECT_EQ(*next, *expect);
      }
    }
  }
}

void RunDifferential(ReplacementPolicy policy, uint64_t seed) {
  const PageCacheConfig config{.capacity_pages = 64, .policy = policy};
  PageCache cache(config);
  NaiveCache naive(config);
  Rng rng(seed);
  const std::vector<FileId> files = {1, 2, 3, 7};
  constexpr int64_t kMaxPage = 99;
  constexpr int kOps = 4000;
  for (int op = 0; op < kOps; ++op) {
    const FileId file = files[static_cast<size_t>(rng.Uniform(0, 3))];
    const int64_t page = rng.Uniform(0, kMaxPage);
    const PageKey key{file, page};
    const int64_t roll = rng.Uniform(0, 99);
    if (roll < 25) {  // Touch
      EXPECT_EQ(cache.Touch(key), naive.Touch(key));
    } else if (roll < 60) {  // Insert, clean or dirty
      const bool dirty = rng.Uniform(0, 2) == 0;
      EXPECT_EQ(cache.Insert(key, dirty), naive.Insert(key, dirty));
    } else if (roll < 70) {  // Remove
      cache.Remove(key);
      naive.Remove(key);
    } else if (roll < 77) {  // Pin / Unpin
      if (rng.Uniform(0, 2) != 0) {
        EXPECT_EQ(cache.Pin(key), naive.Pin(key));
      } else {
        cache.Unpin(key);
        naive.Unpin(key);
      }
      EXPECT_EQ(cache.IsPinned(key), naive.IsPinned(key));
    } else if (roll < 87) {  // MarkDirty / MarkClean on resident pages
      if (cache.Contains(key)) {
        if (rng.Uniform(0, 1) == 0) {
          cache.MarkDirty(key);
          naive.MarkDirty(key);
        } else {
          cache.MarkClean(key);
          naive.MarkClean(key);
        }
      }
      EXPECT_EQ(cache.IsDirty(key), naive.IsDirty(key));
    } else if (roll < 93) {  // RemovePagesFrom (truncate)
      cache.RemovePagesFrom(file, page);
      naive.RemovePagesFrom(file, page);
    } else if (roll < 97) {  // RemoveFile
      cache.RemoveFile(file);
      naive.RemoveFile(file);
    } else if (roll < 99) {  // spot-check queries
      EXPECT_EQ(cache.Contains(key), naive.Contains(key));
      EXPECT_EQ(cache.IsDirty(key), naive.IsDirty(key));
    } else {  // rare full reset
      cache.Clear();
      naive.Clear();
    }
    if (op % 200 == 199) {
      ExpectSameState(cache, naive, files, kMaxPage);
      if (::testing::Test::HasFailure()) {
        FAIL() << "divergence at op " << op << " (policy "
               << (policy == ReplacementPolicy::kLru ? "lru" : "clock") << ", seed " << seed
               << ")";
      }
    }
  }
  ExpectSameState(cache, naive, files, kMaxPage);
}

TEST(CacheDiffTest, LruMatchesNaiveModel) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    RunDifferential(ReplacementPolicy::kLru, seed);
  }
}

TEST(CacheDiffTest, ClockMatchesNaiveModel) {
  for (uint64_t seed : {44u, 55u, 66u}) {
    RunDifferential(ReplacementPolicy::kClock, seed);
  }
}

}  // namespace
}  // namespace sled
