// Randomized differential test: the frame-table PageCache against a naive
// reference model that replicates the old node-based implementation (recency
// list plus flat hash map, with every query a full scan). Millions of mixed
// operations — touches, inserts (clean, dirty, in-flight, via every probe
// API), pins, truncates, arrivals — must produce identical residency, dirty
// sets, eviction sequences, pin results, and stats under both replacement
// policies, the frame table's internal audit (ValidateIndex) must hold
// throughout, and the run-oriented queries must agree with runs derived from
// the naive resident-page list.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/cache/page_cache.h"
#include "src/common/rng.h"

namespace sled {
namespace {

// The old PageCache, kept deliberately simple: correctness oracle only.
class NaiveCache {
 public:
  explicit NaiveCache(PageCacheConfig config) : config_(config) {}

  bool Contains(PageKey key) const { return entries_.contains(key); }

  bool Touch(PageKey key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return false;
    }
    ++stats_.hits;
    if (config_.policy == ReplacementPolicy::kLru) {
      order_.splice(order_.end(), order_, it->second.it);
    } else {
      it->second.referenced = true;
    }
    return true;
  }

  std::optional<EvictedPage> Insert(PageKey key, bool dirty, bool in_flight = false) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.dirty = it->second.dirty || dirty;
      if (config_.policy == ReplacementPolicy::kLru) {
        order_.splice(order_.end(), order_, it->second.it);
      } else {
        it->second.referenced = true;
      }
      return std::nullopt;
    }
    std::optional<EvictedPage> evicted;
    if (static_cast<int64_t>(entries_.size()) >= config_.capacity_pages) {
      evicted = EvictOne();
    }
    order_.push_back(key);
    entries_.emplace(key, Entry{std::prev(order_.end()), dirty, false, false, in_flight});
    if (in_flight) {
      ++in_flight_;
    }
    ++stats_.insertions;
    return evicted;
  }

  // A resident page stays completely untouched (no recency refresh).
  std::optional<EvictedPage> InsertIfAbsent(PageKey key, bool dirty, bool in_flight = false) {
    if (Contains(key)) {
      return std::nullopt;
    }
    return Insert(key, dirty, in_flight);
  }

  void MarkArrived(PageKey key) {
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.in_flight) {
      it->second.in_flight = false;
      --in_flight_;
    }
  }

  bool IsInFlight(PageKey key) const {
    auto it = entries_.find(key);
    return it != entries_.end() && it->second.in_flight;
  }

  bool Pin(PageKey key) {
    auto it = entries_.find(key);
    if (it == entries_.end() || pinned_ >= config_.capacity_pages / 2) {
      return false;
    }
    if (!it->second.pinned) {
      it->second.pinned = true;
      ++pinned_;
    }
    return true;
  }

  void Unpin(PageKey key) {
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.pinned) {
      it->second.pinned = false;
      --pinned_;
    }
  }

  bool IsPinned(PageKey key) const {
    auto it = entries_.find(key);
    return it != entries_.end() && it->second.pinned;
  }

  void MarkDirty(PageKey key) { entries_.at(key).dirty = true; }
  void MarkClean(PageKey key) { entries_.at(key).dirty = false; }

  bool IsDirty(PageKey key) const {
    auto it = entries_.find(key);
    return it != entries_.end() && it->second.dirty;
  }

  void Remove(PageKey key) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return;
    }
    if (it->second.pinned) {
      --pinned_;
    }
    if (it->second.in_flight) {
      --in_flight_;
    }
    order_.erase(it->second.it);
    entries_.erase(it);
  }

  void RemoveFile(FileId file) {
    for (int64_t page : ResidentPagesOf(file)) {
      Remove({file, page});
    }
  }

  void RemovePagesFrom(FileId file, int64_t first_page) {
    for (int64_t page : ResidentPagesOf(file)) {
      if (page >= first_page) {
        Remove({file, page});
      }
    }
  }

  void Clear() {
    entries_.clear();
    order_.clear();
    pinned_ = 0;
    in_flight_ = 0;
  }

  std::vector<int64_t> ResidentPagesOf(FileId file) const {
    std::vector<int64_t> pages;
    for (const auto& [key, entry] : entries_) {
      if (key.file == file) {
        pages.push_back(key.page);
      }
    }
    std::sort(pages.begin(), pages.end());
    return pages;
  }

  std::vector<PageKey> DirtyPagesOf(FileId file) const {
    std::vector<PageKey> dirty;
    for (const auto& [key, entry] : entries_) {
      if (key.file == file && entry.dirty) {
        dirty.push_back(key);
      }
    }
    std::sort(dirty.begin(), dirty.end(),
              [](const PageKey& a, const PageKey& b) { return a.page < b.page; });
    return dirty;
  }

  std::vector<PageKey> AllDirtyPages() const {
    std::vector<PageKey> dirty;
    for (const auto& [key, entry] : entries_) {
      if (entry.dirty) {
        dirty.push_back(key);
      }
    }
    std::sort(dirty.begin(), dirty.end(), [](const PageKey& a, const PageKey& b) {
      return a.file != b.file ? a.file < b.file : a.page < b.page;
    });
    return dirty;
  }

  int64_t size_pages() const { return static_cast<int64_t>(entries_.size()); }
  int64_t pinned_pages() const { return pinned_; }
  int64_t in_flight_pages() const { return in_flight_; }
  const PageCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::list<PageKey>::iterator it;
    bool dirty = false;
    bool referenced = false;
    bool pinned = false;
    bool in_flight = false;
  };

  EvictedPage EvictOne() {
    for (int sweep = 0; sweep < 3; ++sweep) {
      auto it = order_.begin();
      while (it != order_.end()) {
        Entry& entry = entries_.at(*it);
        if (entry.pinned || entry.in_flight) {
          ++it;
          continue;
        }
        if (config_.policy == ReplacementPolicy::kClock && entry.referenced) {
          entry.referenced = false;
          auto next = std::next(it);
          order_.splice(order_.end(), order_, it);
          entry.it = std::prev(order_.end());
          it = next;
          continue;
        }
        EvictedPage evicted{*it, entry.dirty};
        entries_.erase(*it);
        order_.erase(it);
        ++stats_.evictions;
        if (evicted.dirty) {
          ++stats_.dirty_evictions;
        }
        return evicted;
      }
    }
    ADD_FAILURE() << "no evictable page";
    return {};
  }

  PageCacheConfig config_;
  std::unordered_map<PageKey, Entry, PageKeyHash> entries_;
  std::list<PageKey> order_;
  PageCacheStats stats_;
  int64_t pinned_ = 0;
  int64_t in_flight_ = 0;
};

std::vector<PageRun> RunsFromPages(const std::vector<int64_t>& pages) {
  std::vector<PageRun> runs;
  for (int64_t page : pages) {
    if (!runs.empty() && runs.back().end() == page) {
      ++runs.back().count;
    } else {
      runs.push_back(PageRun{page, 1});
    }
  }
  return runs;
}

void ExpectSameState(const PageCache& cache, const NaiveCache& naive,
                     const std::vector<FileId>& files, int64_t max_page) {
  ASSERT_TRUE(cache.ValidateIndex());
  EXPECT_EQ(cache.size_pages(), naive.size_pages());
  EXPECT_EQ(cache.pinned_pages(), naive.pinned_pages());
  EXPECT_EQ(cache.in_flight_pages(), naive.in_flight_pages());
  EXPECT_EQ(cache.stats().hits, naive.stats().hits);
  EXPECT_EQ(cache.stats().misses, naive.stats().misses);
  EXPECT_EQ(cache.stats().insertions, naive.stats().insertions);
  EXPECT_EQ(cache.stats().evictions, naive.stats().evictions);
  EXPECT_EQ(cache.stats().dirty_evictions, naive.stats().dirty_evictions);
  EXPECT_EQ(cache.AllDirtyPages(), naive.AllDirtyPages());
  for (FileId file : files) {
    const std::vector<int64_t> pages = naive.ResidentPagesOf(file);
    EXPECT_EQ(cache.ResidentPagesOf(file), pages);
    EXPECT_EQ(cache.DirtyPagesOf(file), naive.DirtyPagesOf(file));
    const std::vector<PageRun> runs = RunsFromPages(pages);
    EXPECT_EQ(cache.ResidentRunsOf(file), runs);
    EXPECT_EQ(cache.ResidentRunCountOf(file), static_cast<int64_t>(runs.size()));
    // Probe every page: run queries must agree with the flat page list.
    for (int64_t page = 0; page <= max_page; ++page) {
      const auto run_at = cache.ResidentRunAt(file, page);
      const bool resident = std::binary_search(pages.begin(), pages.end(), page);
      ASSERT_EQ(run_at.has_value(), resident) << "file " << file << " page " << page;
      if (resident) {
        EXPECT_LE(run_at->first, page);
        EXPECT_GT(run_at->end(), page);
        EXPECT_EQ(cache.NextMissAfter(file, page), run_at->end());
      } else {
        EXPECT_EQ(cache.NextMissAfter(file, page), page);
      }
      const auto next = cache.NextResidentRun(file, page);
      const auto expect = std::find_if(runs.begin(), runs.end(),
                                       [page](const PageRun& r) { return r.end() > page; });
      ASSERT_EQ(next.has_value(), expect != runs.end());
      if (next.has_value()) {
        EXPECT_EQ(*next, *expect);
      }
    }
  }
}

// Test-enforced bound on concurrently in-flight pages: with capacity 64,
// Pin() itself caps pinned pages at 32, so <= 16 in-flight leaves at least 16
// evictable pages and eviction can never strand.
constexpr int64_t kMaxInFlight = 16;

void RunDifferential(ReplacementPolicy policy, uint64_t seed, int ops, int checkpoint_every) {
  const PageCacheConfig config{.capacity_pages = 64, .policy = policy};
  PageCache cache(config);
  NaiveCache naive(config);
  Rng rng(seed);
  const std::vector<FileId> files = {1, 2, 3, 7};
  constexpr int64_t kMaxPage = 99;
  // Every victim either layout ever reports, in order; compared at each
  // checkpoint on top of the per-op result comparison, so a divergence in
  // replacement order is caught even if the op results happen to agree.
  std::vector<EvictedPage> evictions_cache;
  std::vector<EvictedPage> evictions_naive;
  std::vector<PageKey> in_flight_keys;
  auto record = [](std::vector<EvictedPage>& log, const std::optional<EvictedPage>& e) {
    if (e.has_value()) {
      log.push_back(*e);
    }
  };
  for (int op = 0; op < ops; ++op) {
    const FileId file = files[static_cast<size_t>(rng.Uniform(0, 3))];
    const int64_t page = rng.Uniform(0, kMaxPage);
    const PageKey key{file, page};
    // Destructive ops (truncate, RemoveFile, Clear) are kept rare: insert
    // pressure must outrun removal so the cache sits at capacity and the
    // eviction path — the point of this test — is exercised constantly.
    const int64_t roll = rng.Uniform(0, 99);
    if (roll < 20) {  // Touch, half through the frame-returning probe
      if (rng.Uniform(0, 1) == 0) {
        EXPECT_EQ(cache.Touch(key), naive.Touch(key));
      } else {
        PageCache::Frame* frame = cache.TouchProbe(key);
        EXPECT_EQ(frame != nullptr, naive.Touch(key));
        if (frame != nullptr) {
          EXPECT_EQ(frame->key(), key);
          EXPECT_EQ(frame->dirty(), naive.IsDirty(key));
          EXPECT_EQ(frame->pinned(), naive.IsPinned(key));
          EXPECT_EQ(frame->in_flight(), naive.IsInFlight(key));
        }
      }
    } else if (roll < 60) {  // Insert, clean or dirty, via a random API
      const bool dirty = rng.Uniform(0, 2) == 0;
      switch (rng.Uniform(0, 2)) {
        case 0: {
          auto a = cache.Insert(key, dirty);
          auto b = naive.Insert(key, dirty);
          EXPECT_EQ(a, b);
          record(evictions_cache, a);
          record(evictions_naive, b);
          break;
        }
        case 1: {
          auto a = cache.InsertIfAbsent(key, dirty);
          auto b = naive.InsertIfAbsent(key, dirty);
          EXPECT_EQ(a, b);
          record(evictions_cache, a);
          record(evictions_naive, b);
          break;
        }
        case 2: {  // the kernel's write path: Probe then Freshen-or-Insert
          if (PageCache::Frame* frame = cache.Probe(key)) {
            cache.Freshen(frame, dirty);
            naive.Insert(key, dirty);  // resident: refresh + OR dirty
          } else {
            auto a = cache.Insert(key, dirty);
            auto b = naive.Insert(key, dirty);
            EXPECT_EQ(a, b);
            record(evictions_cache, a);
            record(evictions_naive, b);
          }
          break;
        }
      }
    } else if (roll < 66) {  // in-flight insert (bounded) / arrival
      if (cache.in_flight_pages() < kMaxInFlight && rng.Uniform(0, 1) == 0) {
        auto a = cache.InsertIfAbsent(key, /*dirty=*/false, /*in_flight=*/true);
        auto b = naive.InsertIfAbsent(key, /*dirty=*/false, /*in_flight=*/true);
        EXPECT_EQ(a, b);
        record(evictions_cache, a);
        record(evictions_naive, b);
        if (cache.IsInFlight(key)) {
          in_flight_keys.push_back(key);
        }
      } else if (!in_flight_keys.empty()) {
        const size_t pick =
            static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(in_flight_keys.size()) - 1));
        const PageKey arrived = in_flight_keys[pick];
        in_flight_keys.erase(in_flight_keys.begin() + static_cast<std::ptrdiff_t>(pick));
        cache.MarkArrived(arrived);
        naive.MarkArrived(arrived);
        EXPECT_FALSE(cache.IsInFlight(arrived));
      }
      EXPECT_EQ(cache.IsInFlight(key), naive.IsInFlight(key));
    } else if (roll < 71) {  // Remove
      cache.Remove(key);
      naive.Remove(key);
    } else if (roll < 78) {  // Pin / Unpin, half through the frame API
      if (rng.Uniform(0, 2) != 0) {
        if (rng.Uniform(0, 1) == 0) {
          EXPECT_EQ(cache.Pin(key), naive.Pin(key));
        } else {
          EXPECT_EQ(cache.Pin(cache.Probe(key)), naive.Pin(key));
        }
      } else {
        cache.Unpin(key);
        naive.Unpin(key);
      }
      EXPECT_EQ(cache.IsPinned(key), naive.IsPinned(key));
    } else if (roll < 86) {  // MarkDirty / MarkClean on resident pages
      if (PageCache::Frame* frame = cache.Probe(key)) {
        if (rng.Uniform(0, 1) == 0) {
          if (rng.Uniform(0, 1) == 0) {
            cache.MarkDirty(key);
          } else {
            cache.MarkDirty(frame);
          }
          naive.MarkDirty(key);
        } else {
          cache.MarkClean(key);
          naive.MarkClean(key);
        }
      }
      EXPECT_EQ(cache.IsDirty(key), naive.IsDirty(key));
    } else if (roll < 87) {  // RemovePagesFrom (truncate)
      cache.RemovePagesFrom(file, page);
      naive.RemovePagesFrom(file, page);
    } else if (roll < 88) {  // RemoveFile (halved again: it drops size/4 pages)
      if (rng.Uniform(0, 1) == 0) {
        cache.RemoveFile(file);
        naive.RemoveFile(file);
      } else {
        cache.Remove(key);
        naive.Remove(key);
      }
    } else if (roll < 99) {  // spot-check queries
      EXPECT_EQ(cache.Contains(key), naive.Contains(key));
      EXPECT_EQ(cache.IsDirty(key), naive.IsDirty(key));
      EXPECT_EQ(cache.IsInFlight(key), naive.IsInFlight(key));
      const PageCache::Frame* frame = cache.Probe(key);
      EXPECT_EQ(frame != nullptr, naive.Contains(key));
    } else if (rng.Uniform(0, 9) == 0) {  // very rare full reset (~0.1%)
      cache.Clear();
      naive.Clear();
      in_flight_keys.clear();
    }
    if (op % checkpoint_every == checkpoint_every - 1) {
      EXPECT_EQ(evictions_cache, evictions_naive);
      ExpectSameState(cache, naive, files, kMaxPage);
      if (::testing::Test::HasFailure()) {
        FAIL() << "divergence at op " << op << " (policy "
               << (policy == ReplacementPolicy::kLru ? "lru" : "clock") << ", seed " << seed
               << ")";
      }
    }
  }
  EXPECT_EQ(evictions_cache, evictions_naive);
  EXPECT_GT(evictions_cache.size(), 0u);
  ExpectSameState(cache, naive, files, kMaxPage);
}

TEST(CacheDiffTest, LruMatchesNaiveModel) {
  for (uint64_t seed : {11u, 22u, 33u}) {
    RunDifferential(ReplacementPolicy::kLru, seed, 4000, 200);
  }
}

TEST(CacheDiffTest, ClockMatchesNaiveModel) {
  for (uint64_t seed : {44u, 55u, 66u}) {
    RunDifferential(ReplacementPolicy::kClock, seed, 4000, 200);
  }
}

// The scale acceptance run: over a million randomized operations under each
// policy with identical eviction order throughout (full-state audits are
// spread out to keep the runtime in check; every op still compares results).
TEST(CacheDiffTest, MillionOpsLru) {
  RunDifferential(ReplacementPolicy::kLru, 77, 1000001, 100000);
}

TEST(CacheDiffTest, MillionOpsClock) {
  RunDifferential(ReplacementPolicy::kClock, 88, 1000001, 100000);
}

}  // namespace
}  // namespace sled
