// Tests for the workload module: testbeds, generators, calibration, and the
// experiment harness.
#include <gtest/gtest.h>

#include "src/apps/wc.h"
#include "src/workload/calibrate.h"
#include "src/workload/experiment.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

// Calibration asserts measured service times against device nominals; pin the
// synchronous I/O path so async readahead overlap (when $SLEDS_IO_MODE selects
// an engine mode) cannot skew the probes.
Testbed MakeSyncTestbed(StorageKind kind, uint64_t seed) {
  TestbedConfig config;
  config.kind = kind;
  config.seed = seed;
  config.io.mode = IoMode::kFifoSync;
  return MakeTestbed(config);
}

TEST(TestbedTest, UnixTestbedsMountDataFs) {
  for (StorageKind kind : {StorageKind::kDisk, StorageKind::kCdRom, StorageKind::kNfs}) {
    Testbed tb = MakeUnixTestbed(kind, 1);
    ASSERT_NE(tb.kernel, nullptr);
    EXPECT_EQ(tb.kernel->vfs().MountPathOf(tb.data_fs_id), "/data");
    FileSystem* fs = tb.kernel->vfs().FsById(tb.data_fs_id);
    ASSERT_NE(fs, nullptr);
    EXPECT_EQ(fs->name(), StorageKindName(kind));
    // Cache sized to ~40 MiB.
    EXPECT_EQ(tb.kernel->cache().capacity_pages(), 10240);
  }
}

TEST(TestbedTest, SledsTableHasMemoryPlusLevels) {
  Testbed tb = MakeUnixTestbed(StorageKind::kNfs, 2);
  const SledsTable& table = tb.kernel->sleds_table();
  // memory + sys-disk + nfs.
  ASSERT_EQ(table.size(), 3);
  EXPECT_EQ(table.row(0).name, "memory");
  EXPECT_NEAR(table.row(0).chars.latency.ToMicros(), 0.175, 0.01);
  EXPECT_EQ(table.row(2).name, "nfs");
  EXPECT_NEAR(table.row(2).chars.latency.ToMillis(), 270.0, 1.0);
}

TEST(TestbedTest, LheasoftTestbedMatchesTable3) {
  Testbed tb = MakeLheasoftTestbed(3);
  const SledsTable& table = tb.kernel->sleds_table();
  // memory 210 ns / 87 MB/s; data disk ~16.5 ms / ~7.0 MB/s.
  EXPECT_EQ(table.row(0).chars.latency.nanos(), 210);
  EXPECT_NEAR(table.row(0).chars.bandwidth_bps / 1e6, 87.0, 0.1);
  const SledsTable::Row& disk = table.row(2);
  EXPECT_EQ(disk.name, "disk");
  EXPECT_NEAR(disk.chars.latency.ToMillis(), 16.5, 1.0);
  EXPECT_NEAR(disk.chars.bandwidth_bps / 1e6, 7.0, 0.2);
}

TEST(TestbedTest, HsmTestbedExposesThreeDataLevels) {
  Testbed tb = MakeHsmTestbed(4);
  FileSystem* fs = tb.kernel->vfs().FsById(tb.data_fs_id);
  ASSERT_NE(fs, nullptr);
  EXPECT_EQ(fs->Levels().size(), 3u);
  // memory + sys-disk + 3 HSM levels.
  EXPECT_EQ(tb.kernel->sleds_table().size(), 5);
}

TEST(TestbedTest, CdromMasteringSealsAfterWrite) {
  Testbed tb = MakeUnixTestbed(StorageKind::kCdRom, 5);
  Process& p = tb.kernel->CreateProcess("master");
  Rng rng(5);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, p, "/data/disc.txt", MiB(1), rng).ok());
  tb.FinishMastering();
  EXPECT_EQ(tb.kernel->Create(p, "/data/new.txt").error(), Err::kRofs);
  // Reads still fine.
  EXPECT_TRUE(tb.kernel->Open(p, "/data/disc.txt").ok());
}

TEST(TextGenTest, GeneratesExactSizeAndLines) {
  Testbed tb = MakeUnixTestbed(StorageKind::kDisk, 6);
  Process& p = tb.kernel->CreateProcess("gen");
  Rng rng(6);
  const int64_t lines = GenerateTextFile(*tb.kernel, p, "/data/t.txt", MiB(2), rng).value();
  EXPECT_EQ(tb.kernel->Stat(p, "/data/t.txt").value().size, MiB(2));
  EXPECT_GT(lines, MiB(2) / kGenLineLen - 2);

  // Content is newline-structured lowercase text.
  const int fd = tb.kernel->Open(p, "/data/t.txt").value();
  std::string head(256, '\0');
  ASSERT_TRUE(tb.kernel->Read(p, fd, std::span<char>(head.data(), head.size())).ok());
  EXPECT_EQ(head[kGenLineLen - 1], '\n');
  ASSERT_TRUE(tb.kernel->Close(p, fd).ok());
}

TEST(TextGenTest, MarkerPlacementAndRemoval) {
  Testbed tb = MakeUnixTestbed(StorageKind::kDisk, 7);
  Process& p = tb.kernel->CreateProcess("gen");
  Rng rng(7);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, p, "/data/t.txt", MiB(1), rng).ok());
  const int64_t size_before = tb.kernel->Stat(p, "/data/t.txt").value().size;

  const int64_t where = PlaceMarker(*tb.kernel, p, "/data/t.txt", MiB(1) / 2).value();
  EXPECT_EQ(where % kGenLineLen, 0);
  EXPECT_EQ(tb.kernel->Stat(p, "/data/t.txt").value().size, size_before);

  // The marker is present exactly once.
  const int fd = tb.kernel->Open(p, "/data/t.txt").value();
  std::string all(static_cast<size_t>(size_before), '\0');
  int64_t got = 0;
  while (got < size_before) {
    const int64_t n =
        tb.kernel->Read(p, fd, std::span<char>(all.data() + got, all.size() - got)).value();
    if (n == 0) break;
    got += n;
  }
  ASSERT_TRUE(tb.kernel->Close(p, fd).ok());
  size_t count = 0;
  for (size_t pos = all.find(kGrepMarker); pos != std::string::npos;
       pos = all.find(kGrepMarker, pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(all.substr(static_cast<size_t>(where) + 4, kGrepMarker.size()), kGrepMarker);

  ASSERT_TRUE(RemoveMarker(*tb.kernel, p, "/data/t.txt", where, rng).ok());
  EXPECT_EQ(tb.kernel->Stat(p, "/data/t.txt").value().size, size_before);
}

TEST(CalibrateTest, MeasuresCloseToDeviceNominals) {
  Testbed tb = MakeSyncTestbed(StorageKind::kNfs, 8);
  Process& p = tb.kernel->CreateProcess("boot");
  const auto rows = CalibrateSledsTable(*tb.kernel, p).value();
  ASSERT_FALSE(rows.empty());
  // The NFS level must have been measured near Table 2 (270 ms / 1.0 MB/s).
  bool found_nfs = false;
  bool found_memory = false;
  for (const CalibrationRow& row : rows) {
    if (row.name == "nfs") {
      found_nfs = true;
      EXPECT_TRUE(row.filled);
      EXPECT_NEAR(row.measured.latency.ToMillis(), 270.0, 80.0);
      EXPECT_NEAR(row.measured.bandwidth_bps / 1e6, 1.0, 0.3);
    }
    if (row.level == kMemoryLevel) {
      found_memory = true;
      EXPECT_LT(row.measured.latency.ToMillis(), 1.0);
      EXPECT_GT(row.measured.bandwidth_bps / 1e6, 5.0);
    }
  }
  EXPECT_TRUE(found_nfs);
  EXPECT_TRUE(found_memory);
  // The scratch file is cleaned up.
  EXPECT_EQ(tb.kernel->Stat(p, "/data/.sleds_calib").error(), Err::kNoEnt);
}

TEST(ExperimentTest, MeasureRunIsolatesProcessStats) {
  Testbed tb = MakeUnixTestbed(StorageKind::kDisk, 9);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(9);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/t.txt", MiB(4), rng).ok());
  tb.kernel->DropCaches();
  const RunStats cold = MeasureRun(*tb.kernel, [](SimKernel& k, Process& p) {
    ASSERT_TRUE(WcApp::Run(k, p, "/data/t.txt", WcOptions{}).ok());
  });
  EXPECT_GT(cold.major_faults, 900);
  EXPECT_GT(cold.elapsed.ToSeconds(), 0.1);
  const RunStats warm = MeasureRun(*tb.kernel, [](SimKernel& k, Process& p) {
    ASSERT_TRUE(WcApp::Run(k, p, "/data/t.txt", WcOptions{}).ok());
  });
  EXPECT_EQ(warm.major_faults, 0);
  EXPECT_LT(warm.elapsed, cold.elapsed);
}

TEST(ExperimentTest, WarmCacheSeriesProducesTwelveSamples) {
  Testbed tb = MakeUnixTestbed(StorageKind::kDisk, 10);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng gen_rng(10);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/t.txt", MiB(2), gen_rng).ok());
  tb.kernel->DropCaches();
  Rng rng(11);
  const MeasuredPoint point = RunWarmCacheSeries(
      tb, kPaperRepeats, rng, nullptr, [](SimKernel& k, Process& p) {
        ASSERT_TRUE(WcApp::Run(k, p, "/data/t.txt", WcOptions{}).ok());
      });
  EXPECT_EQ(point.seconds.n, 12u);
  EXPECT_GT(point.seconds.mean, 0.0);
  // Warm cache, file fits: no faults in any measured run.
  EXPECT_EQ(point.faults.mean, 0.0);
}

TEST(ExperimentTest, PaperSweepsMatchFigures) {
  const auto unix_sizes = PaperUnixSizes();
  ASSERT_EQ(unix_sizes.size(), 16u);
  EXPECT_EQ(unix_sizes.front(), MiB(8));
  EXPECT_EQ(unix_sizes.back(), MiB(128));
  const auto astro_sizes = PaperLheasoftSizes();
  ASSERT_EQ(astro_sizes.size(), 8u);
  EXPECT_EQ(astro_sizes.back(), MiB(64));
}

}  // namespace
}  // namespace sled

namespace sled {
namespace {

TEST(CalibrateTest, DiskMachineMeasuresShortStrokeSeeks) {
  Testbed tb = MakeSyncTestbed(StorageKind::kDisk, 61);
  Process& boot = tb.kernel->CreateProcess("boot");
  const auto rows = CalibrateSledsTable(*tb.kernel, boot).value();
  for (const CalibrationRow& row : rows) {
    if (row.name == "disk") {
      EXPECT_TRUE(row.filled);
      // Within-file probes are short-stroke: measured latency is below the
      // full-stroke 18 ms nominal but clearly above zero.
      EXPECT_GT(row.measured.latency.ToMillis(), 2.0);
      EXPECT_LT(row.measured.latency.ToMillis(), 18.0);
      EXPECT_NEAR(row.measured.bandwidth_bps / 1e6, 9.0, 1.5);
    }
  }
}

TEST(CalibrateTest, SealedCdromUsesExistingFile) {
  Testbed tb = MakeSyncTestbed(StorageKind::kCdRom, 62);
  Process& gen = tb.kernel->CreateProcess("master");
  Rng rng(62);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/disc.dat", MiB(12), rng).ok());
  tb.FinishMastering();
  Process& boot = tb.kernel->CreateProcess("boot");
  const auto rows = CalibrateSledsTable(*tb.kernel, boot).value();
  bool found = false;
  for (const CalibrationRow& row : rows) {
    if (row.name == "cdrom") {
      found = true;
      EXPECT_TRUE(row.filled);
      EXPECT_NEAR(row.measured.bandwidth_bps / 1e6, 2.8, 0.5);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExperimentTest, PerRunSetupInvokedBeforeEveryRun) {
  Testbed tb = MakeUnixTestbed(StorageKind::kDisk, 63);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng grng(63);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/t.txt", MiB(1), grng).ok());
  int setups = 0;
  int runs = 0;
  Rng rng(64);
  (void)RunWarmCacheSeries(
      tb, 5, rng, [&](SimKernel&, Process&, Rng&) { ++setups; },
      [&](SimKernel&, Process&) { ++runs; });
  EXPECT_EQ(runs, 6);    // warm-up + 5 measured
  EXPECT_EQ(setups, 6);  // setup precedes every run including the warm-up
}

}  // namespace
}  // namespace sled
