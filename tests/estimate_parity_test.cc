// Estimate-vs-Access parity: for every device model, the contract is
// "Estimate is the expectation of Access" (see StorageDevice::Estimate).
// Deterministic models must match exactly; models with stochastic terms must
// stay inside the configured range of those terms, and their *average* error
// over many draws must vanish.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/device/cdrom_device.h"
#include "src/device/disk_device.h"
#include "src/device/memory_device.h"
#include "src/device/network_device.h"
#include "src/device/ssd_device.h"
#include "src/device/tape_device.h"

namespace sled {
namespace {

// Offsets for a reposition-heavy pattern, scaled into [0, cap - len).
std::vector<int64_t> RandomOffsets(int64_t cap, int64_t len, int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> offsets;
  offsets.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    offsets.push_back(PageFloor(rng.Uniform(0, cap - len)));
  }
  return offsets;
}

TEST(EstimateParityTest, MemoryIsExact) {
  MemoryDevice mem(MemoryDeviceConfig{});
  for (const int64_t off : RandomOffsets(mem.capacity_bytes(), MiB(1), 50, 11)) {
    EXPECT_EQ(mem.Estimate(off, MiB(1)), mem.Read(off, MiB(1)).value());
    EXPECT_EQ(mem.EstimateWrite(off, MiB(1)), mem.Write(off, MiB(1)).value());
  }
}

TEST(EstimateParityTest, DiskSequentialIsExact) {
  DiskDevice disk(DiskDeviceConfig{});
  (void)disk.Read(0, MiB(1));
  for (int i = 1; i < 20; ++i) {
    const int64_t off = static_cast<int64_t>(i) * MiB(1);
    const Duration e = disk.Estimate(off, MiB(1));
    EXPECT_EQ(e, disk.Read(off, MiB(1)).value()) << "sequential continuation " << i;
  }
}

TEST(EstimateParityTest, DiskRandomWithinHalfRotationAndUnbiased) {
  DiskDeviceConfig config;
  DiskDevice disk(config);
  const double half_rot = 0.5 * 60.0 / config.rpm;
  double err_sum = 0.0;
  const auto offsets = RandomOffsets(disk.capacity_bytes(), kPageSize, 400, 12);
  for (const int64_t off : offsets) {
    const double e = disk.Estimate(off, kPageSize).ToSeconds();
    const double t = disk.Read(off, kPageSize).value().ToSeconds();
    // The only stochastic term is the rotational delay, uniform in
    // [0, period); the estimate carries its mean (half a rotation).
    EXPECT_NEAR(t, e, half_rot + 1e-9);
    err_sum += t - e;
  }
  // Expectation property: the mean signed error vanishes.
  const double mean_err = err_sum / static_cast<double>(offsets.size());
  EXPECT_NEAR(mean_err, 0.0, half_rot / std::sqrt(static_cast<double>(offsets.size())) * 4);
}

TEST(EstimateParityTest, DiskZonedBandwidthSurvivesHugeCapacities) {
  // offset * num_zones used to overflow int64 for multi-TB disks, flipping
  // the zone index negative; the fix divides by the zone width instead.
  DiskDeviceConfig config;
  config.capacity_bytes = 16LL * 1000 * 1000 * 1000 * 1000;  // 16 TB
  config.num_zones = 64;
  DiskDevice disk(config);
  const int64_t last = config.capacity_bytes - kPageSize;
  EXPECT_DOUBLE_EQ(disk.BandwidthAt(0), config.outer_bandwidth_bps);
  EXPECT_DOUBLE_EQ(disk.BandwidthAt(last), config.inner_bandwidth_bps);
  // Monotone non-increasing from outer to inner zones, even at offsets where
  // the old arithmetic wrapped (anything past ~144 GB at 64 zones).
  double prev = disk.BandwidthAt(0);
  for (int z = 0; z < config.num_zones; ++z) {
    const int64_t off = z * (config.capacity_bytes / config.num_zones);
    const double bw = disk.BandwidthAt(off);
    EXPECT_GT(bw, 0.0);
    EXPECT_LE(bw, prev);
    prev = bw;
  }
  // And the estimate built on it stays finite and positive.
  EXPECT_GT(disk.Estimate(last, kPageSize), Duration());
}

TEST(EstimateParityTest, CdRomWithinJitterRange) {
  CdRomDeviceConfig config;
  CdRomDevice cd(config);
  double err_sum = 0.0;
  const auto offsets = RandomOffsets(cd.capacity_bytes(), kPageSize, 200, 13);
  int64_t position = -1;
  for (const int64_t off : offsets) {
    // Jitter multiplies the seek by 0.9 + 0.2 U: bounded by 10% of the seek,
    // mean exactly the seek. Reads and burns share the cost model.
    const double max_dev = off == position ? 0.0 : 0.1 * cd.SeekTime(position, off).ToSeconds();
    const double e = cd.Estimate(off, kPageSize).ToSeconds();
    EXPECT_EQ(cd.EstimateWrite(off, kPageSize), cd.Estimate(off, kPageSize));
    const double t = cd.Read(off, kPageSize).value().ToSeconds();
    EXPECT_NEAR(t, e, max_dev + 1e-9);
    err_sum += t - e;
    position = off + kPageSize;
  }
  const double worst = 0.1 * (config.min_seek + config.full_stroke_extra).ToSeconds();
  EXPECT_NEAR(err_sum / 200.0, 0.0, worst / std::sqrt(200.0) * 4);
}

TEST(EstimateParityTest, CdRomSequentialIsExact) {
  CdRomDevice cd(CdRomDeviceConfig{});
  (void)cd.Read(0, MiB(1));
  const Duration e = cd.Estimate(MiB(1), MiB(1));
  EXPECT_EQ(e, cd.Read(MiB(1), MiB(1)).value());
}

TEST(EstimateParityTest, NetworkWithinJitterRange) {
  NetworkDeviceConfig config;
  NetworkDevice nfs(config);
  const double max_dev = config.latency_jitter * config.first_byte_latency.ToSeconds();
  double err_sum = 0.0;
  const auto offsets = RandomOffsets(nfs.capacity_bytes(), kPageSize, 200, 14);
  for (const int64_t off : offsets) {
    const double e = nfs.Estimate(off, kPageSize).ToSeconds();
    const double t = nfs.Read(off, kPageSize).value().ToSeconds();
    // Jitter is symmetric around the configured first-byte latency.
    EXPECT_NEAR(t, e, max_dev + 1e-9);
    err_sum += t - e;
  }
  EXPECT_NEAR(err_sum / 200.0, 0.0, max_dev / std::sqrt(200.0) * 4);
}

TEST(EstimateParityTest, NetworkSequentialIsExact) {
  NetworkDevice nfs(NetworkDeviceConfig{});
  (void)nfs.Read(0, MiB(1));
  const Duration e = nfs.Estimate(MiB(1), MiB(1));
  EXPECT_EQ(e, nfs.Read(MiB(1), MiB(1)).value());
}

TEST(EstimateParityTest, TapeIsExactIncludingMountAndTrackCrossing) {
  TapeDeviceConfig config;
  // Unmounted estimate at offset 0 must equal access exactly: Mount() parks
  // at the load point, so no locate is charged.
  {
    TapeDevice tape(config);
    const Duration e = tape.Estimate(0, MiB(1));
    EXPECT_EQ(e, tape.Read(0, MiB(1)).value());
  }
  // Unmounted estimate deeper in: load + locate from the load point.
  {
    TapeDevice tape(config);
    const int64_t off = PageFloor(config.capacity_bytes / 3);
    const Duration e = tape.Estimate(off, MiB(1));
    EXPECT_EQ(e, tape.Read(off, MiB(1)).value());
  }
  // Streaming across a track boundary pays the turnaround in both worlds.
  {
    TapeDevice tape(config);
    const int64_t track_len = config.capacity_bytes / config.num_tracks;
    const int64_t off = track_len - MiB(1);
    (void)tape.Read(0, kPageSize);
    (void)tape.Read(off, kPageSize);  // park just before the boundary
    const Duration e = tape.Estimate(off + kPageSize, MiB(2));
    EXPECT_EQ(e, tape.Read(off + kPageSize, MiB(2)).value());
    EXPECT_EQ(tape.EstimateWrite(off, MiB(2)), tape.Estimate(off, MiB(2)));
  }
  // Random mounted pattern: locate arithmetic is deterministic.
  {
    TapeDevice tape(config);
    (void)tape.Mount();
    for (const int64_t off : RandomOffsets(config.capacity_bytes, MiB(1), 50, 15)) {
      const Duration e = tape.Estimate(off, MiB(1));
      EXPECT_EQ(e, tape.Read(off, MiB(1)).value());
    }
  }
}

TEST(EstimateParityTest, SsdIsExactIncludingGcDebt) {
  SsdDeviceConfig config;
  config.capacity_bytes = 64LL * 1024 * 1024;  // small: GC kicks in quickly
  SsdDevice ssd(config);
  Rng rng(16);
  // Sustained random overwrites force GC; at every step the estimate must
  // price the access exactly — the pending GC stall is deterministic state.
  for (int i = 0; i < 2000; ++i) {
    const int64_t off = PageFloor(rng.Uniform(0, config.capacity_bytes - MiB(1)));
    if (rng.Bernoulli(0.7)) {
      const Duration e = ssd.EstimateWrite(off, MiB(1));
      EXPECT_EQ(e, ssd.Write(off, MiB(1)).value()) << "write " << i;
    } else {
      const Duration e = ssd.Estimate(off, MiB(1));
      EXPECT_EQ(e, ssd.Read(off, MiB(1)).value()) << "read " << i;
    }
  }
  EXPECT_GT(ssd.gc_cycles(), 0) << "workload never triggered GC; test is vacuous";
}

}  // namespace
}  // namespace sled
