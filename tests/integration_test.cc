// End-to-end integration tests: miniature versions of the paper's
// experiments with assertions on the *direction* of every headline result.
// These guard the whole stack — devices, cache, kernel, SLEDs library,
// applications, workload harness — against regressions that unit tests of
// individual layers cannot see.
#include <gtest/gtest.h>

#include "src/apps/fimgbin.h"
#include "src/apps/fimhisto.h"
#include "src/apps/find.h"
#include "src/apps/grep.h"
#include "src/apps/wc.h"
#include "src/sleds/delivery.h"
#include "src/workload/calibrate.h"
#include "src/workload/experiment.h"
#include "src/workload/fits_gen.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

// Small machine so the experiments are fast: 8 MiB cache.
TestbedConfig SmallMachine(StorageKind kind, uint64_t seed) {
  TestbedConfig config;
  config.kind = kind;
  config.cache_pages = 2048;
  config.seed = seed;
  return config;
}

MeasuredPoint MeasureWc(Testbed& tb, bool use_sleds, int repeats = 6) {
  Rng rng(42);
  return RunWarmCacheSeries(tb, repeats, rng, nullptr, [&](SimKernel& k, Process& p) {
    WcOptions options;
    options.use_sleds = use_sleds;
    ASSERT_TRUE(WcApp::Run(k, p, "/data/f.txt", options).ok());
  });
}

// Figure 7 in miniature: wc over NFS, file 1.5x the cache.
TEST(FigureShapeTest, WcNfsAboveCacheSizeSledsWin) {
  for (bool use_sleds : {false, true}) {
    Testbed tb = MakeTestbed(SmallMachine(StorageKind::kNfs, use_sleds ? 1 : 2));
    Process& gen = tb.kernel->CreateProcess("gen");
    Rng rng(3);
    ASSERT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(12), rng).ok());
    tb.kernel->DropCaches();
    const MeasuredPoint point = MeasureWc(tb, use_sleds);
    if (use_sleds) {
      // ~4 MiB must come over the wire at 1 MB/s: at least ~4 s...
      EXPECT_GT(point.seconds.mean, 3.0);
      // ...but clearly better than the full 12 MiB refetch.
      EXPECT_LT(point.seconds.mean, 9.0);
      EXPECT_LT(point.faults.mean, 1500);
    } else {
      EXPECT_GT(point.seconds.mean, 11.0);
      EXPECT_NEAR(point.faults.mean, 3072, 64);  // every page, every run
    }
  }
}

// Below the cache size both modes are equally fast (warm).
TEST(FigureShapeTest, WcBelowCacheSizeNoDifference) {
  Testbed tb = MakeTestbed(SmallMachine(StorageKind::kDisk, 4));
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(5);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(4), rng).ok());
  tb.kernel->DropCaches();
  const MeasuredPoint without = MeasureWc(tb, false);
  const MeasuredPoint with = MeasureWc(tb, true);
  EXPECT_EQ(without.faults.mean, 0.0);
  EXPECT_EQ(with.faults.mean, 0.0);
  // SLEDs overhead on a cached file is bounded (paper: small absolute value).
  EXPECT_LT(with.seconds.mean, without.seconds.mean * 1.2);
}

// Figure 9 in miniature: fault counts, CD-ROM.
TEST(FigureShapeTest, FaultReductionEqualsCachedPortion) {
  for (bool use_sleds : {false, true}) {
    Testbed tb = MakeTestbed(SmallMachine(StorageKind::kCdRom, use_sleds ? 6 : 7));
    Process& gen = tb.kernel->CreateProcess("master");
    Rng rng(8);
    ASSERT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", MiB(16), rng).ok());
    tb.FinishMastering();
    const MeasuredPoint point = MeasureWc(tb, use_sleds);
    if (use_sleds) {
      // file pages (4096) minus cache pages (2048), within slack.
      EXPECT_LT(point.faults.mean, 2500);
    } else {
      EXPECT_NEAR(point.faults.mean, 4096, 64);
    }
  }
}

// Figure 11/13 in miniature: -q first match with random placement; the
// with-SLEDs distribution must be far below the without one, with the
// characteristic cache-fraction jump in its CDF.
TEST(FigureShapeTest, GrepFirstMatchDistribution) {
  auto collect = [&](bool use_sleds) -> Cdf {
    Testbed tb = MakeTestbed(SmallMachine(StorageKind::kDisk, use_sleds ? 9 : 10));
    Process& gen = tb.kernel->CreateProcess("gen");
    Rng rng(11);
    const int64_t size = MiB(12);
    EXPECT_TRUE(GenerateTextFile(*tb.kernel, gen, "/data/f.txt", size, rng).ok());
    tb.kernel->DropCaches();
    int64_t marker = -1;
    std::vector<double> times;
    for (int i = 0; i < 20; ++i) {
      Process& setup = tb.kernel->CreateProcess("setup");
      marker = MoveMarkerScrubbed(*tb.kernel, setup, "/data/f.txt", marker,
                                  rng.Uniform(0, size - kGenLineLen), rng)
                   .value();
      const RunStats stats = MeasureRun(*tb.kernel, [&](SimKernel& k, Process& p) {
        GrepOptions options;
        options.use_sleds = use_sleds;
        options.quiet_first_match = true;
        auto r = GrepApp::Run(k, p, "/data/f.txt", std::string(kGrepMarker), options);
        EXPECT_TRUE(r.ok());
        EXPECT_TRUE(r.ok() && r->found);
      });
      if (i > 0) {
        times.push_back(stats.elapsed.ToSeconds());
      }
    }
    return Cdf(std::move(times));
  };
  const Cdf with = collect(true);
  const Cdf without = collect(false);
  EXPECT_LT(with.Quantile(0.5), without.Quantile(0.5));
  // The with-SLEDs CDF has the instant-service regime: a solid fraction of
  // runs finish in well under the time to scan even 1 MiB from disk.
  EXPECT_GT(with.At(0.25), 0.2);
}

// Figure 14/15 in miniature.
TEST(FigureShapeTest, FitsToolsBenefitAboveCache) {
  auto run_tool = [&](bool use_sleds, bool histo) {
    TestbedConfig config = SmallMachine(StorageKind::kDisk, use_sleds ? 12 : 13);
    Testbed tb = MakeTestbed(config);
    Process& gen = tb.kernel->CreateProcess("gen");
    Rng rng(14);
    EXPECT_TRUE(GenerateFitsImage(*tb.kernel, gen, "/data/i.fits", MiB(12), -32, rng).ok());
    tb.kernel->DropCaches();
    Rng run_rng(15);
    return RunWarmCacheSeries(tb, 4, run_rng, nullptr, [&](SimKernel& k, Process& p) {
      if (histo) {
        FimhistoOptions options;
        options.use_sleds = use_sleds;
        ASSERT_TRUE(FimhistoApp::Run(k, p, "/data/i.fits", "/data/o.fits", options).ok());
      } else {
        FimgbinOptions options;
        options.use_sleds = use_sleds;
        ASSERT_TRUE(FimgbinApp::Run(k, p, "/data/i.fits", "/data/o.fits", options).ok());
      }
    });
  };
  const MeasuredPoint histo_with = run_tool(true, true);
  const MeasuredPoint histo_without = run_tool(false, true);
  EXPECT_LT(histo_with.seconds.mean, histo_without.seconds.mean);
  EXPECT_LT(histo_with.faults.mean, histo_without.faults.mean);
  const MeasuredPoint bin_with = run_tool(true, false);
  const MeasuredPoint bin_without = run_tool(false, false);
  EXPECT_LT(bin_with.seconds.mean, bin_without.seconds.mean * 1.02);
}

// The calibration + report pipeline works on every testbed kind.
TEST(PipelineTest, CalibrateThenReportOnAllKinds) {
  for (StorageKind kind : {StorageKind::kDisk, StorageKind::kCdRom, StorageKind::kNfs}) {
    Testbed tb = MakeTestbed(SmallMachine(kind, 20));
    Process& boot = tb.kernel->CreateProcess("boot");
    auto rows = CalibrateSledsTable(*tb.kernel, boot);
    ASSERT_TRUE(rows.ok()) << StorageKindName(kind);
    ASSERT_FALSE(rows->empty());
    // Latency ordering: memory is always the cheapest level.
    const SledsTable& table = tb.kernel->sleds_table();
    for (int i = 1; i < table.size(); ++i) {
      EXPECT_LE(table.row(kMemoryLevel).chars.latency, table.row(i).chars.latency);
    }
  }
}

// HSM end to end: migrate, find -latency classification, recall via read.
TEST(PipelineTest, HsmLifecycle) {
  Testbed tb = MakeHsmTestbed(30);
  auto* hsm = dynamic_cast<HsmFs*>(tb.kernel->vfs().FsById(tb.data_fs_id));
  ASSERT_NE(hsm, nullptr);
  Process& p = tb.kernel->CreateProcess("user");
  Rng rng(30);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, p, "/data/a.txt", MiB(2), rng).ok());
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, p, "/data/b.txt", MiB(2), rng).ok());
  const InodeNum b_ino = tb.kernel->vfs().Resolve("/data/b.txt").value().ino;
  ASSERT_TRUE(hsm->Migrate(b_ino).ok());
  tb.kernel->DropCaches();

  // find classifies by latency: a is cheap, b needs the robot.
  FindOptions cheap;
  cheap.latency = ParseLatencyPredicate("-5").value();
  const FindResult fast = FindApp::Run(*tb.kernel, p, "/data", cheap).value();
  ASSERT_EQ(fast.paths.size(), 1u);
  EXPECT_EQ(fast.paths[0], "/data/a.txt");

  // Reading b recalls it; afterwards it is cheap too.
  WcOptions wc;
  ASSERT_TRUE(WcApp::Run(*tb.kernel, p, "/data/b.txt", wc).ok());
  const FindResult fast2 = FindApp::Run(*tb.kernel, p, "/data", cheap).value();
  EXPECT_EQ(fast2.paths.size(), 2u);
}

// Delivery-time estimates track reality: the estimate for a cold file must
// be within a small factor of the measured cold read time.
TEST(PipelineTest, DeliveryEstimateTracksMeasuredTime) {
  Testbed tb = MakeTestbed(SmallMachine(StorageKind::kDisk, 40));
  Process& p = tb.kernel->CreateProcess("user");
  Rng rng(40);
  ASSERT_TRUE(GenerateTextFile(*tb.kernel, p, "/data/f.txt", MiB(6), rng).ok());
  tb.kernel->DropCaches();
  const int fd = tb.kernel->Open(p, "/data/f.txt").value();
  const Duration estimate = TotalDeliveryTime(*tb.kernel, p, fd, AttackPlan::kBest).value();
  ASSERT_TRUE(tb.kernel->Close(p, fd).ok());
  const RunStats measured = MeasureRun(*tb.kernel, [](SimKernel& k, Process& proc) {
    ASSERT_TRUE(WcApp::Run(k, proc, "/data/f.txt", WcOptions{}).ok());
  });
  EXPECT_GT(measured.elapsed.ToSeconds(), estimate.ToSeconds() * 0.5);
  EXPECT_LT(measured.elapsed.ToSeconds(), estimate.ToSeconds() * 3.0);
}

}  // namespace
}  // namespace sled
