// Unit tests for src/common: time, units, results, statistics, RNG, plotting.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/ascii_plot.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/stats.h"
#include "src/common/units.h"

namespace sled {
namespace {

TEST(DurationTest, ConstructionAndConversion) {
  EXPECT_EQ(Nanoseconds(175).nanos(), 175);
  EXPECT_EQ(Microseconds(3).nanos(), 3000);
  EXPECT_EQ(Milliseconds(18).nanos(), 18'000'000);
  EXPECT_EQ(Seconds(2).nanos(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(Milliseconds(18).ToSeconds(), 0.018);
  EXPECT_DOUBLE_EQ(Milliseconds(18).ToMillis(), 18.0);
  EXPECT_DOUBLE_EQ(Microseconds(5).ToMicros(), 5.0);
}

TEST(DurationTest, FloatingPointFactoriesRound) {
  EXPECT_EQ(SecondsF(0.5).nanos(), 500'000'000);
  EXPECT_EQ(MillisecondsF(1.5).nanos(), 1'500'000);
  EXPECT_EQ(MicrosecondsF(0.0005).nanos(), 1);  // rounds, not truncates
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Milliseconds(10);
  const Duration b = Milliseconds(4);
  EXPECT_EQ((a + b).nanos(), Milliseconds(14).nanos());
  EXPECT_EQ((a - b).nanos(), Milliseconds(6).nanos());
  EXPECT_EQ((b * 3).nanos(), Milliseconds(12).nanos());
  EXPECT_EQ((a / 2).nanos(), Milliseconds(5).nanos());
  EXPECT_LT(b, a);
  Duration c = a;
  c += b;
  EXPECT_EQ(c, Milliseconds(14));
}

TEST(DurationTest, ToStringPicksUnits) {
  EXPECT_EQ(Nanoseconds(175).ToString(), "175 ns");
  EXPECT_EQ(Microseconds(12).ToString(), "12.000 us");
  EXPECT_EQ(Milliseconds(18).ToString(), "18.000 ms");
  EXPECT_EQ(Seconds(3).ToString(), "3.000 s");
}

TEST(DurationTest, TransferTime) {
  // 1 MB at 1 MB/s = 1 s.
  EXPECT_EQ(TransferTime(1'000'000, 1.0e6).nanos(), Seconds(1).nanos());
  // 4 KiB at 48 MB/s ~= 85.3 us.
  EXPECT_NEAR(TransferTime(4096, 48.0e6).ToMicros(), 85.33, 0.1);
}

TEST(TimePointTest, ClockAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.Now().since_epoch().nanos(), 0);
  clock.Advance(Milliseconds(5));
  clock.Advance(Microseconds(10));
  EXPECT_EQ(clock.Now().since_epoch(), Microseconds(5010));
  const TimePoint t0;
  EXPECT_EQ(clock.Now() - t0, Microseconds(5010));
}

TEST(UnitsTest, SizesAndPageMath) {
  EXPECT_EQ(KiB(4), 4096);
  EXPECT_EQ(MiB(1), 1048576);
  EXPECT_EQ(GiB(1), 1073741824LL);
  EXPECT_EQ(kPageSize, 4096);
  EXPECT_EQ(PagesFor(0), 0);
  EXPECT_EQ(PagesFor(1), 1);
  EXPECT_EQ(PagesFor(4096), 1);
  EXPECT_EQ(PagesFor(4097), 2);
  EXPECT_EQ(PageFloor(5000), 4096);
  EXPECT_EQ(PageCeil(5000), 8192);
  EXPECT_EQ(PageCeil(8192), 8192);
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  EXPECT_EQ(good.error(), Err::kOk);
  EXPECT_EQ(good.value_or(7), 42);

  Result<int> bad = Err::kNoEnt;
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Err::kNoEnt);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(ResultTest, VoidSpecialization) {
  Result<void> ok = Result<void>::Ok();
  EXPECT_TRUE(ok.ok());
  Result<void> bad = Err::kIo;
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Err::kIo);
}

TEST(ResultTest, ErrNamesAreUnixLike) {
  EXPECT_EQ(ErrName(Err::kNoEnt), "ENOENT");
  EXPECT_EQ(ErrName(Err::kRofs), "EROFS");
  EXPECT_EQ(ErrName(Err::kNotSup), "ENOTSUP");
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return Err::kInval;
  }
  return x / 2;
}

Result<int> QuarterViaMacros(int x) {
  SLED_ASSIGN_OR_RETURN(int h, Half(x));
  SLED_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(QuarterViaMacros(8).value(), 2);
  EXPECT_EQ(QuarterViaMacros(6).error(), Err::kInval);  // fails at second Half
  EXPECT_EQ(QuarterViaMacros(5).error(), Err::kInval);  // fails at first Half
}

TEST(StatsTest, SummarizeBasics) {
  const Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);
  EXPECT_EQ(s.n, 8u);
  EXPECT_GT(s.ci90_half_width, 0.0);
  EXPECT_LT(s.lo(), s.mean);
  EXPECT_GT(s.hi(), s.mean);
}

TEST(StatsTest, SummarizeDegenerateCases) {
  EXPECT_EQ(Summarize({}).n, 0u);
  const Summary one = Summarize({3.0});
  EXPECT_DOUBLE_EQ(one.mean, 3.0);
  EXPECT_DOUBLE_EQ(one.ci90_half_width, 0.0);
  const Summary same = Summarize({2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(same.stddev, 0.0);
  EXPECT_DOUBLE_EQ(same.ci90_half_width, 0.0);
}

TEST(StatsTest, TCriticalValues) {
  EXPECT_NEAR(TCritical90(11), 1.796, 1e-3);  // the paper's n=12 case
  EXPECT_NEAR(TCritical90(1), 6.314, 1e-3);
  EXPECT_NEAR(TCritical90(1000), 1.645, 1e-3);
}

TEST(StatsTest, CdfBasics) {
  Cdf cdf({3.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.At(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.At(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.At(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.At(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 2.5);
  EXPECT_EQ(cdf.min(), 1.0);
  EXPECT_EQ(cdf.max(), 4.0);
}

TEST(StatsTest, FormatSeriesContainsRows) {
  SeriesPoint p;
  p.x = 64.0;
  p.with_sleds = Summarize({10.0, 12.0});
  p.without_sleds = Summarize({44.0, 46.0});
  const std::string table = FormatSeries("fig", "File size (MB)", "time (s)", {p});
  EXPECT_NE(table.find("64.0"), std::string::npos);
  EXPECT_NE(table.find("speedup"), std::string::npos);
  EXPECT_NEAR(p.speedup(), 45.0 / 11.0, 1e-9);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Fork();
  // Not a statistical test; just ensure both streams are usable and distinct
  // from a fresh parent-seeded stream.
  Rng fresh(99);
  (void)fresh.Uniform(0, 1 << 30);  // consumed by Fork() in `a`
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    if (child.Uniform(0, 1 << 30) != fresh.Uniform(0, 1 << 30)) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(AsciiPlotTest, RendersSeriesAndLegend) {
  PlotSeries s1{"with", '+', {0, 1, 2, 3}, {0, 1, 4, 9}};
  PlotSeries s2{"without", 'x', {0, 1, 2, 3}, {0, 2, 8, 18}};
  PlotOptions opts;
  opts.title = "demo";
  opts.x_label = "x";
  opts.y_label = "y";
  const std::string plot = RenderPlot({s1, s2}, opts);
  EXPECT_NE(plot.find('+'), std::string::npos);
  EXPECT_NE(plot.find('x'), std::string::npos);
  EXPECT_NE(plot.find("with"), std::string::npos);
  EXPECT_NE(plot.find("without"), std::string::npos);
  EXPECT_NE(plot.find("demo"), std::string::npos);
}

TEST(AsciiPlotTest, EmptyDataDoesNotCrash) {
  EXPECT_EQ(RenderPlot({}, PlotOptions{}), "(no data)\n");
}

}  // namespace
}  // namespace sled

namespace sled {
namespace {

TEST(DurationTest, NegativeDurations) {
  const Duration d = Milliseconds(3) - Milliseconds(10);
  EXPECT_EQ(d.nanos(), -7'000'000);
  EXPECT_EQ(d.ToString(), "-7.000 ms");
  EXPECT_LT(d, Duration());
}

TEST(StatsTest, CdfDegenerateSingleSample) {
  Cdf one({5.0});
  EXPECT_DOUBLE_EQ(one.Quantile(0.3), 5.0);
  EXPECT_DOUBLE_EQ(one.At(4.9), 0.0);
  EXPECT_DOUBLE_EQ(one.At(5.0), 1.0);
}

TEST(AsciiPlotTest, SinglePointAndFlatSeries) {
  PlotSeries flat{"flat", '=', {1, 2, 3}, {5, 5, 5}};
  const std::string plot = RenderPlot({flat}, PlotOptions{});
  EXPECT_NE(plot.find('='), std::string::npos);
  PlotSeries dot{"dot", '.', {1}, {1}};
  EXPECT_NE(RenderPlot({dot}, PlotOptions{}).find('.'), std::string::npos);
}

}  // namespace
}  // namespace sled
