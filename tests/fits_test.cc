// Tests for the FITS mini-library and the ff* element-oriented SLEDs layer.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/common/rng.h"
#include "src/device/disk_device.h"
#include "src/fits/ffsleds.h"
#include "src/fits/fits.h"
#include "src/fs/extent_file_system.h"

namespace sled {
namespace {

struct World {
  std::unique_ptr<SimKernel> kernel;
  Process* proc = nullptr;
};

World MakeWorld(int64_t cache_pages = 4096) {
  World w;
  KernelConfig config;
  config.cache.capacity_pages = cache_pages;
  w.kernel = std::make_unique<SimKernel>(config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  EXPECT_TRUE(w.kernel->Mount("/", std::move(fs)).ok());
  w.proc = &w.kernel->CreateProcess("test");
  return w;
}

TEST(FitsHeaderTest, EncodeParseRoundTrip) {
  FitsHeader h;
  h.bitpix = -32;
  h.naxis = {640, 480};
  const std::string encoded = FitsEncodeHeader(h);
  EXPECT_EQ(encoded.size() % kFitsBlock, 0u);
  auto parsed = FitsParseHeader(encoded);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->bitpix, -32);
  EXPECT_EQ(parsed->naxis, (std::vector<int64_t>{640, 480}));
  EXPECT_EQ(parsed->data_offset, static_cast<int64_t>(encoded.size()));
  EXPECT_EQ(parsed->element_size(), 4);
  EXPECT_EQ(parsed->element_count(), 640 * 480);
}

TEST(FitsHeaderTest, SizesAndPadding) {
  FitsHeader h;
  h.bitpix = 16;
  h.naxis = {100, 10};
  EXPECT_EQ(h.data_bytes(), 2000);
  EXPECT_EQ(h.padded_data_bytes(), kFitsBlock);
  h.naxis = {1440, 1};
  EXPECT_EQ(h.data_bytes(), 2880);
  EXPECT_EQ(h.padded_data_bytes(), 2880);
}

TEST(FitsHeaderTest, ParserRejectsMalformed) {
  EXPECT_FALSE(FitsParseHeader("garbage").ok());
  // Valid cards but no END.
  FitsHeader h;
  h.bitpix = 8;
  h.naxis = {4};
  std::string enc = FitsEncodeHeader(h);
  EXPECT_FALSE(FitsParseHeader(enc.substr(0, 160)).ok());
  // Unsupported BITPIX.
  std::string bad = enc;
  const size_t pos = bad.find("BITPIX  =");
  bad.replace(pos, 30, "BITPIX  =                   24");
  EXPECT_FALSE(FitsParseHeader(bad).ok());
  // SIMPLE = F.
  std::string notsimple = enc;
  const size_t spos = notsimple.find("                   T");
  notsimple[spos + 19] = 'F';
  EXPECT_FALSE(FitsParseHeader(notsimple).ok());
}

TEST(FitsPixelTest, RoundTripAllBitpix) {
  char buf[8];
  for (int bitpix : {8, 16, 32, -32, -64}) {
    for (double v : {0.0, 1.0, 100.0, 127.0}) {
      FitsEncodePixel(v, bitpix, buf);
      EXPECT_DOUBLE_EQ(FitsDecodePixel(buf, bitpix), v) << "bitpix=" << bitpix << " v=" << v;
    }
  }
  // Negative values survive signed integer and float types.
  for (int bitpix : {16, 32, -32, -64}) {
    FitsEncodePixel(-123.0, bitpix, buf);
    EXPECT_DOUBLE_EQ(FitsDecodePixel(buf, bitpix), -123.0);
  }
  // Fractions survive only float types.
  FitsEncodePixel(2.5, -64, buf);
  EXPECT_DOUBLE_EQ(FitsDecodePixel(buf, -64), 2.5);
  FitsEncodePixel(2.5, 16, buf);
  EXPECT_DOUBLE_EQ(FitsDecodePixel(buf, 16), 2.0);  // rounds to even
}

TEST(FitsPixelTest, IntegerSaturation) {
  char buf[8];
  FitsEncodePixel(1e9, 16, buf);
  EXPECT_DOUBLE_EQ(FitsDecodePixel(buf, 16), 32767.0);
  FitsEncodePixel(-1e9, 16, buf);
  EXPECT_DOUBLE_EQ(FitsDecodePixel(buf, 16), -32768.0);
  FitsEncodePixel(300.0, 8, buf);
  EXPECT_DOUBLE_EQ(FitsDecodePixel(buf, 8), 255.0);
  FitsEncodePixel(-5.0, 8, buf);
  EXPECT_DOUBLE_EQ(FitsDecodePixel(buf, 8), 0.0);
  FitsEncodePixel(std::nan(""), 32, buf);
  EXPECT_DOUBLE_EQ(FitsDecodePixel(buf, 32), 0.0);
}

TEST(FitsPixelTest, BigEndianLayout) {
  char buf[4];
  FitsEncodePixel(1.0, 32, buf);  // 0x00000001 big-endian
  EXPECT_EQ(buf[0], 0);
  EXPECT_EQ(buf[3], 1);
}

TEST(FitsIoTest, WriteReadImageRoundTrip) {
  World w = MakeWorld();
  FitsImage image;
  image.header.bitpix = -32;
  image.header.naxis = {32, 16};
  Rng rng(5);
  image.pixels.resize(32 * 16);
  for (double& p : image.pixels) {
    p = static_cast<double>(static_cast<float>(rng.Normal(50, 10)));
  }
  ASSERT_TRUE(FitsWriteImage(*w.kernel, *w.proc, "/img.fits", image).ok());

  // On-disk size: header block + padded data.
  const auto attr = w.kernel->Stat(*w.proc, "/img.fits").value();
  EXPECT_EQ(attr.size % kFitsBlock, 0);

  auto back = FitsReadImage(*w.kernel, *w.proc, "/img.fits");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->header.bitpix, -32);
  EXPECT_EQ(back->header.naxis, image.header.naxis);
  ASSERT_EQ(back->pixels.size(), image.pixels.size());
  for (size_t i = 0; i < image.pixels.size(); ++i) {
    EXPECT_DOUBLE_EQ(back->pixels[i], image.pixels[i]);
  }
}

TEST(FitsIoTest, SizeMismatchRejected) {
  World w = MakeWorld();
  FitsImage image;
  image.header.bitpix = 8;
  image.header.naxis = {10};
  image.pixels.resize(5);  // wrong
  EXPECT_EQ(FitsWriteImage(*w.kernel, *w.proc, "/bad.fits", image).error(), Err::kInval);
}

TEST(FfPickerTest, OffersEveryElementExactlyOnce) {
  World w = MakeWorld();
  FitsImage image;
  image.header.bitpix = -64;
  image.header.naxis = {256, 64};  // 16k elements * 8B = 128 KiB data
  image.pixels.assign(256 * 64, 1.0);
  ASSERT_TRUE(FitsWriteImage(*w.kernel, *w.proc, "/img.fits", image).ok());
  const int fd = w.kernel->Open(*w.proc, "/img.fits").value();
  const FitsHeader header = FitsReadHeader(*w.kernel, *w.proc, fd).value();

  // Touch a middle region so the plan has several segments.
  char b;
  for (int64_t page = 10; page < 20; ++page) {
    ASSERT_TRUE(w.kernel->Lseek(*w.proc, fd, page * kPageSize, Whence::kSet).ok());
    ASSERT_TRUE(w.kernel->Read(*w.proc, fd, std::span<char>(&b, 1)).ok());
  }
  auto picker = FfPicker::Create(*w.kernel, *w.proc, fd, header, 1000).value();
  std::vector<int> seen(static_cast<size_t>(header.element_count()), 0);
  while (true) {
    auto pick = picker->NextRead().value();
    if (pick.count == 0) {
      break;
    }
    ASSERT_LE(pick.count, 1000);
    for (int64_t e = pick.first_element; e < pick.first_element + pick.count; ++e) {
      ASSERT_GE(e, 0);
      ASSERT_LT(e, header.element_count());
      ASSERT_EQ(seen[static_cast<size_t>(e)], 0);
      seen[static_cast<size_t>(e)] = 1;
    }
  }
  for (int v : seen) {
    ASSERT_EQ(v, 1);
  }
}

TEST(FfPickerTest, ByteOffsetMapsThroughHeader) {
  FitsHeader header;
  header.bitpix = -32;
  header.naxis = {8, 8};
  header.data_offset = 2880;
  // Cannot construct FfPicker without a kernel; test the arithmetic helper
  // via a real instance below instead. Here: element size sanity.
  EXPECT_EQ(header.element_size(), 4);
}

TEST(FfSledsCApiTest, PaperWorkflow) {
  World w = MakeWorld();
  FitsImage image;
  image.header.bitpix = -32;
  image.header.naxis = {128, 64};
  image.pixels.assign(128 * 64, 2.0);
  ASSERT_TRUE(FitsWriteImage(*w.kernel, *w.proc, "/img.fits", image).ok());
  const int fd = w.kernel->Open(*w.proc, "/img.fits").value();
  SledsContext ctx{w.kernel.get(), w.proc};

  ASSERT_EQ(ffsleds_pick_init(ctx, fd, 512), 512);
  long first = 0;
  long count = 0;
  int64_t total = 0;
  while (ffsleds_pick_next_read(ctx, fd, &first, &count) == 0 && count > 0) {
    total += count;
  }
  EXPECT_EQ(total, 128 * 64);
  EXPECT_EQ(ffsleds_pick_finish(ctx, fd), 0);
  EXPECT_EQ(ffsleds_pick_finish(ctx, fd), -1);
  EXPECT_EQ(ffsleds_pick_init(ctx, 999, 512), -1);  // bad fd
}

}  // namespace
}  // namespace sled
