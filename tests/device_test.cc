// Unit tests for the storage device models.
#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/device/cdrom_device.h"
#include "src/device/disk_device.h"
#include "src/device/memory_device.h"
#include "src/device/network_device.h"
#include "src/device/tape_device.h"

namespace sled {
namespace {

TEST(MemoryDeviceTest, CostIsLatencyPlusTransfer) {
  MemoryDevice mem(MemoryDeviceConfig{});
  const Duration t = mem.Read(0, 4096).value();
  EXPECT_NEAR(t.ToMicros(), 0.175 + 4096 / 48.0, 0.2);
  EXPECT_EQ(mem.stats().reads, 1);
  EXPECT_EQ(mem.stats().bytes_read, 4096);
}

TEST(DiskDeviceTest, NominalMatchesPaperTable2) {
  DiskDevice disk(DiskDeviceConfig{});
  const DeviceCharacteristics c = disk.Nominal();
  // Table 2: 18 ms, 9.0 MB/s.
  EXPECT_NEAR(c.latency.ToMillis(), 18.0, 1.0);
  EXPECT_NEAR(c.bandwidth_bps / 1e6, 9.0, 0.2);
}

TEST(DiskDeviceTest, SequentialContinuationIsCheap) {
  DiskDevice disk(DiskDeviceConfig{});
  const Duration first = disk.Read(0, MiB(1)).value();
  const Duration second = disk.Read(MiB(1), MiB(1)).value();  // continues the stream
  // Second read pays no seek/rotation: pure transfer.
  EXPECT_LT(second, first);
  EXPECT_NEAR(second.ToSeconds(), MiB(1) / disk.BandwidthAt(MiB(1)), 1e-3);
  EXPECT_EQ(disk.stats().repositions, 1);  // only the initial positioning
}

TEST(DiskDeviceTest, RandomAccessPaysSeekAndRotation) {
  DiskDeviceConfig config;
  DiskDevice disk(config);
  (void)disk.Read(0, kPageSize);
  const Duration far = disk.Read(disk.capacity_bytes() - kPageSize, kPageSize).value();
  // Full-stroke seek is close to max_seek plus up to one rotation.
  EXPECT_GT(far.ToMillis(), config.max_seek.ToMillis() * 0.9);
  EXPECT_EQ(disk.stats().repositions, 2);
}

TEST(DiskDeviceTest, SeekTimeGrowsWithDistance) {
  DiskDevice disk(DiskDeviceConfig{});
  const int64_t cap = disk.capacity_bytes();
  const Duration small = disk.SeekTime(0, cap / 100);
  const Duration medium = disk.SeekTime(0, cap / 4);
  const Duration large = disk.SeekTime(0, cap - 1);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  EXPECT_EQ(disk.SeekTime(cap / 2, cap / 2), Duration());
}

TEST(DiskDeviceTest, ZonedBandwidthDeclinesInward) {
  DiskDeviceConfig config;
  config.num_zones = 8;
  DiskDevice disk(config);
  const double outer = disk.BandwidthAt(0);
  const double inner = disk.BandwidthAt(disk.capacity_bytes() - 1);
  EXPECT_DOUBLE_EQ(outer, config.outer_bandwidth_bps);
  EXPECT_NEAR(inner, config.inner_bandwidth_bps, 1.0);
  double prev = outer;
  for (int z = 1; z < 8; ++z) {
    const double bw = disk.BandwidthAt(z * disk.capacity_bytes() / 8 + 1);
    EXPECT_LE(bw, prev);
    prev = bw;
  }
}

TEST(DiskDeviceTest, EstimateDoesNotChangeState) {
  DiskDevice disk(DiskDeviceConfig{});
  (void)disk.Read(0, kPageSize);
  const Duration e1 = disk.Estimate(MiB(100), kPageSize);
  const Duration e2 = disk.Estimate(MiB(100), kPageSize);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(disk.stats().reads, 1);  // estimates are not accesses
}

TEST(CdRomDeviceTest, NominalMatchesPaperTable2) {
  CdRomDevice cd(CdRomDeviceConfig{});
  EXPECT_NEAR(cd.Nominal().latency.ToMillis(), 130.0, 1.0);
  EXPECT_NEAR(cd.Nominal().bandwidth_bps / 1e6, 2.8, 0.01);
}

TEST(CdRomDeviceTest, SeeksAreExpensiveStreamingIsNot) {
  CdRomDevice cd(CdRomDeviceConfig{});
  (void)cd.Read(0, MiB(1));
  const Duration stream = cd.Read(MiB(1), MiB(1)).value();
  EXPECT_NEAR(stream.ToSeconds(), MiB(1) / 2.8e6, 1e-2);
  const Duration seek = cd.Read(MiB(400), kPageSize).value();
  EXPECT_GT(seek.ToMillis(), 70.0);  // at least the minimum settle
}

TEST(NetworkDeviceTest, FirstByteLatencyOnlyOnStreamBreak) {
  NetworkDeviceConfig config;
  config.latency_jitter = 0.0;
  NetworkDevice nfs(config);
  const Duration first = nfs.Read(0, MiB(1)).value();
  const Duration cont = nfs.Read(MiB(1), MiB(1)).value();
  EXPECT_NEAR(first.ToSeconds() - cont.ToSeconds(), 0.270, 1e-3);
  EXPECT_NEAR(cont.ToSeconds(), MiB(1) / 1.0e6, 1e-2);
}

TEST(NetworkDeviceTest, NominalMatchesPaperTable2) {
  NetworkDevice nfs(NetworkDeviceConfig{});
  EXPECT_NEAR(nfs.Nominal().latency.ToMillis(), 270.0, 1.0);
  EXPECT_NEAR(nfs.Nominal().bandwidth_bps / 1e6, 1.0, 0.01);
}

TEST(TapeDeviceTest, FirstAccessPaysMountAndLocate) {
  TapeDeviceConfig config;
  TapeDevice tape(config);
  EXPECT_FALSE(tape.mounted());
  const Duration t = tape.Read(0, MiB(1)).value();
  EXPECT_TRUE(tape.mounted());
  // Load (40 s) dominates.
  EXPECT_GT(t.ToSeconds(), config.load_time.ToSeconds());
}

TEST(TapeDeviceTest, SequentialReadAvoidsLocate) {
  TapeDevice tape(TapeDeviceConfig{});
  (void)tape.Read(0, MiB(1));
  const Duration cont = tape.Read(MiB(1), MiB(1)).value();
  EXPECT_NEAR(cont.ToSeconds(), MiB(1) / 1.5e6, 1e-2);
}

TEST(TapeDeviceTest, SerpentineLocateDependsOnPhysicalDistance) {
  TapeDeviceConfig config;
  TapeDevice tape(config);
  (void)tape.Mount();
  const int64_t track_len = config.capacity_bytes / config.num_tracks;
  // End of track 0 and start of track 1 are physically adjacent (serpentine
  // turnaround), so locating between them is cheap; start of track 0 to
  // start of track 1 is a full longitudinal pass.
  const Duration adjacent = tape.LocateTime(track_len + 1);         // from pos 0: far
  const Duration turnaround_zone = [&] {
    TapeDevice t2(config);
    (void)t2.Mount();
    (void)t2.Read(track_len - kPageSize, kPageSize);  // park near end of track 0
    return t2.LocateTime(track_len + kPageSize);      // just over the turnaround
  }();
  EXPECT_LT(turnaround_zone, adjacent);
}

TEST(TapeDeviceTest, UnmountRewindProportionalToPosition) {
  TapeDeviceConfig config;
  TapeDevice tape(config);
  (void)tape.Mount();
  const Duration at_start = tape.Unmount();
  EXPECT_NEAR(at_start.ToSeconds(), 0.0, 1e-9);
  (void)tape.Mount();
  const int64_t track_len = config.capacity_bytes / config.num_tracks;
  (void)tape.Read(track_len / 2, kPageSize);
  const Duration mid = tape.Unmount();
  EXPECT_GT(mid.ToSeconds(), config.rewind_max.ToSeconds() * 0.3);
  EXPECT_LT(mid.ToSeconds(), config.rewind_max.ToSeconds());
}

TEST(AutochangerTest, MountOnDemandAndLruEviction) {
  TapeDeviceConfig tape_config;
  Autochanger changer(/*num_tapes=*/3, /*num_drives=*/1, tape_config);
  EXPECT_FALSE(changer.IsMounted(0));
  const Duration t0 = changer.Read(0, 0, MiB(1)).value();
  EXPECT_TRUE(changer.IsMounted(0));
  EXPECT_GT(t0.ToSeconds(), tape_config.load_time.ToSeconds());

  // Touching tape 1 with one drive evicts tape 0.
  (void)changer.Read(1, 0, MiB(1));
  EXPECT_TRUE(changer.IsMounted(1));
  EXPECT_FALSE(changer.IsMounted(0));
  EXPECT_GE(changer.exchanges(), 2);
}

TEST(AutochangerTest, SecondDriveAvoidsEviction) {
  Autochanger changer(/*num_tapes=*/3, /*num_drives=*/2, TapeDeviceConfig{});
  (void)changer.Read(0, 0, MiB(1));
  (void)changer.Read(1, 0, MiB(1));
  EXPECT_TRUE(changer.IsMounted(0));
  EXPECT_TRUE(changer.IsMounted(1));
  // A third tape evicts the least recently used (tape 0).
  (void)changer.Read(2, 0, MiB(1));
  EXPECT_FALSE(changer.IsMounted(0));
  EXPECT_TRUE(changer.IsMounted(1));
  EXPECT_TRUE(changer.IsMounted(2));
}

TEST(AutochangerTest, MountedReadIsMuchCheaperThanOffline) {
  Autochanger changer(/*num_tapes=*/2, /*num_drives=*/1, TapeDeviceConfig{});
  const Duration cold = changer.Read(0, 0, MiB(1)).value();
  const Duration warm = changer.Read(0, MiB(1), MiB(1)).value();
  EXPECT_GT(cold.ToSeconds(), 10 * warm.ToSeconds());
}

TEST(AutochangerTest, EstimateReflectsMountState) {
  Autochanger changer(/*num_tapes=*/2, /*num_drives=*/1, TapeDeviceConfig{});
  const Duration offline = changer.Estimate(0, 0, MiB(1));
  (void)changer.Read(0, 0, MiB(1));
  const Duration online = changer.Estimate(0, MiB(1), MiB(1));
  EXPECT_GT(offline.ToSeconds(), online.ToSeconds());
}

// Property sweep: for any device, Read() must never return a negative or
// absurdly large duration, and stats must add up.
class DeviceSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(DeviceSweepTest, DiskReadsAreSaneAcrossOffsets) {
  DiskDevice disk(DiskDeviceConfig{.seed = static_cast<uint64_t>(GetParam())});
  Rng rng(static_cast<uint64_t>(GetParam()));
  int64_t total_bytes = 0;
  for (int i = 0; i < 200; ++i) {
    const int64_t off =
        PageFloor(rng.Uniform(0, disk.capacity_bytes() - MiB(2)));
    const int64_t len = kPageSize * rng.Uniform(1, 256);
    const Duration t = disk.Read(off, len).value();
    EXPECT_GE(t.nanos(), 0);
    EXPECT_LT(t.ToSeconds(), 5.0);
    total_bytes += len;
  }
  EXPECT_EQ(disk.stats().bytes_read, total_bytes);
  EXPECT_EQ(disk.stats().reads, 200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceSweepTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sled
