// Tests for the FS layer: namespace, content plane, extent allocation, the
// concrete file systems, and VFS path resolution.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/device/cdrom_device.h"
#include "src/device/disk_device.h"
#include "src/device/network_device.h"
#include "src/fs/extent_file_system.h"
#include "src/fs/vfs.h"
#include "src/kernel/sim_kernel.h"

namespace sled {
namespace {

std::unique_ptr<ExtFs> MakeExtFs() {
  return std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
}

TEST(FileSystemTest, NamespaceBasics) {
  auto fs = MakeExtFs();
  auto dir = fs->CreateDir(fs->root(), "data");
  ASSERT_TRUE(dir.ok());
  auto file = fs->CreateFile(dir.value(), "a.txt");
  ASSERT_TRUE(file.ok());

  EXPECT_EQ(fs->Lookup(fs->root(), "data").value(), dir.value());
  EXPECT_EQ(fs->Lookup(dir.value(), "a.txt").value(), file.value());
  EXPECT_EQ(fs->Lookup(dir.value(), "missing").error(), Err::kNoEnt);

  const auto attr = fs->GetAttr(file.value()).value();
  EXPECT_FALSE(attr.is_dir);
  EXPECT_EQ(attr.size, 0);

  auto listing = fs->List(fs->root()).value();
  ASSERT_EQ(listing.size(), 1u);
  EXPECT_EQ(listing[0].name, "data");
  EXPECT_TRUE(listing[0].is_dir);
}

TEST(FileSystemTest, NamespaceErrors) {
  auto fs = MakeExtFs();
  const InodeNum f = fs->CreateFile(fs->root(), "f").value();
  EXPECT_EQ(fs->CreateFile(fs->root(), "f").error(), Err::kExist);
  EXPECT_EQ(fs->CreateFile(f, "child").error(), Err::kNotDir);
  EXPECT_EQ(fs->CreateFile(fs->root(), "").error(), Err::kInval);
  EXPECT_EQ(fs->CreateFile(fs->root(), "a/b").error(), Err::kInval);
  EXPECT_EQ(fs->CreateFile(fs->root(), std::string(300, 'x')).error(), Err::kNameTooLong);
  EXPECT_EQ(fs->Lookup(999, "x").error(), Err::kNoEnt);

  const InodeNum d = fs->CreateDir(fs->root(), "d").value();
  (void)fs->CreateFile(d, "inner").value();
  EXPECT_EQ(fs->Unlink(fs->root(), "d").error(), Err::kNotEmpty);
  EXPECT_TRUE(fs->Unlink(d, "inner").ok());
  EXPECT_TRUE(fs->Unlink(fs->root(), "d").ok());
}

TEST(FileSystemTest, ContentRoundTrip) {
  auto fs = MakeExtFs();
  const InodeNum f = fs->CreateFile(fs->root(), "f").value();
  const std::string payload = "hello, sleds world";
  ASSERT_TRUE(fs->WriteBytes(f, 0, std::span<const char>(payload.data(), payload.size())).ok());
  EXPECT_EQ(fs->SizeOf(f), static_cast<int64_t>(payload.size()));

  std::string out(payload.size(), '\0');
  const int64_t n = fs->ReadBytes(f, 0, std::span<char>(out.data(), out.size())).value();
  EXPECT_EQ(n, static_cast<int64_t>(payload.size()));
  EXPECT_EQ(out, payload);

  // Sparse write past EOF zero-fills the gap.
  ASSERT_TRUE(fs->WriteBytes(f, 100, std::span<const char>(payload.data(), 5)).ok());
  EXPECT_EQ(fs->SizeOf(f), 105);
  char gap = 'x';
  (void)fs->ReadBytes(f, 50, std::span<char>(&gap, 1));
  EXPECT_EQ(gap, '\0');

  // Reads at and past EOF return 0.
  EXPECT_EQ(fs->ReadBytes(f, 105, std::span<char>(out.data(), 1)).value(), 0);
  EXPECT_EQ(fs->ReadBytes(f, 9999, std::span<char>(out.data(), 1)).value(), 0);
}

TEST(FileSystemTest, TruncateShrinksAndGrows) {
  auto fs = MakeExtFs();
  const InodeNum f = fs->CreateFile(fs->root(), "f").value();
  const std::string payload(10000, 'a');
  ASSERT_TRUE(fs->WriteBytes(f, 0, std::span<const char>(payload.data(), payload.size())).ok());
  ASSERT_TRUE(fs->Truncate(f, 100).ok());
  EXPECT_EQ(fs->SizeOf(f), 100);
  ASSERT_TRUE(fs->Truncate(f, 200).ok());
  char c = 'x';
  (void)fs->ReadBytes(f, 150, std::span<char>(&c, 1));
  EXPECT_EQ(c, '\0');
}

TEST(ExtentAllocatorTest, ContiguousAllocationCoalesces) {
  auto fs = MakeExtFs();
  const InodeNum f = fs->CreateFile(fs->root(), "f").value();
  const std::string chunk(64 * 1024, 'b');
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(fs->WriteBytes(f, i * 64 * 1024,
                               std::span<const char>(chunk.data(), chunk.size()))
                    .ok());
  }
  // Sixteen appends, one extent: the allocator coalesces.
  EXPECT_EQ(fs->allocator().ExtentCountOf(f), 1);
}

TEST(ExtentAllocatorTest, FragmentationConfigSplitsExtents) {
  ExtentAllocatorConfig config;
  config.max_extent_bytes = 16 * kPageSize;
  config.inter_extent_gap_bytes = 64 * kPageSize;
  auto fs = std::make_unique<ExtFs>("aged", std::make_unique<DiskDevice>(DiskDeviceConfig{}),
                                    config);
  const InodeNum f = fs->CreateFile(fs->root(), "f").value();
  ASSERT_TRUE(fs->Truncate(f, 64 * kPageSize).ok());
  EXPECT_EQ(fs->allocator().ExtentCountOf(f), 4);
  // Device addresses of consecutive extents are separated by the gap.
  const int64_t a0 = fs->allocator().DeviceAddressOf(f, 0).value();
  const int64_t a1 = fs->allocator().DeviceAddressOf(f, 16 * kPageSize).value();
  EXPECT_EQ(a1 - a0, (16 + 64) * kPageSize);
}

TEST(ExtentAllocatorTest, OutOfSpaceReturnsNoSpc) {
  DiskDeviceConfig small;
  small.capacity_bytes = 64 * kPageSize;
  auto fs = std::make_unique<ExtFs>("tiny", std::make_unique<DiskDevice>(small));
  const InodeNum f = fs->CreateFile(fs->root(), "f").value();
  EXPECT_EQ(fs->Truncate(f, 128 * kPageSize).error(), Err::kNoSpc);
}

TEST(ExtentFileSystemTest, ReadPagesChargesDeviceTime) {
  auto fs = MakeExtFs();
  const InodeNum f = fs->CreateFile(fs->root(), "f").value();
  ASSERT_TRUE(fs->Truncate(f, MiB(1)).ok());
  const Duration t = fs->ReadPagesFromStore(f, 0, PagesFor(MiB(1))).value();
  // About 1 MiB / ~9.9 MB/s plus initial positioning.
  EXPECT_GT(t.ToMillis(), 50.0);
  EXPECT_LT(t.ToMillis(), 200.0);
  EXPECT_EQ(fs->device().stats().bytes_read, MiB(1));
  EXPECT_EQ(fs->LevelOf(f, 0), 0);
  ASSERT_EQ(fs->Levels().size(), 1u);
  EXPECT_EQ(fs->Levels()[0].name, "disk");
}

TEST(ExtentFileSystemTest, ReadBeyondAllocationFails) {
  auto fs = MakeExtFs();
  const InodeNum f = fs->CreateFile(fs->root(), "f").value();
  ASSERT_TRUE(fs->Truncate(f, kPageSize).ok());
  EXPECT_EQ(fs->ReadPagesFromStore(f, 0, 10).error(), Err::kIo);
  EXPECT_EQ(fs->ReadPagesFromStore(999, 0, 1).error(), Err::kIo);
}

TEST(IsoFsTest, SealedFsRejectsMutation) {
  auto iso = std::make_unique<IsoFs>("cdrom", std::make_unique<CdRomDevice>(CdRomDeviceConfig{}));
  const InodeNum f = iso->CreateFile(iso->root(), "f").value();
  const std::string payload(kPageSize, 'c');
  ASSERT_TRUE(iso->WriteBytes(f, 0, std::span<const char>(payload.data(), payload.size())).ok());
  iso->Seal();
  EXPECT_TRUE(iso->read_only());
  EXPECT_EQ(iso->CreateFile(iso->root(), "g").error(), Err::kRofs);
  EXPECT_EQ(iso->WriteBytes(f, 0, std::span<const char>(payload.data(), 1)).error(), Err::kRofs);
  EXPECT_EQ(iso->Truncate(f, 0).error(), Err::kRofs);
  EXPECT_EQ(iso->Unlink(iso->root(), "f").error(), Err::kRofs);
  // Reading still works.
  std::string out(8, '\0');
  EXPECT_EQ(iso->ReadBytes(f, 0, std::span<char>(out.data(), out.size())).value(), 8);
}

TEST(NfsFsTest, UsesNetworkDeviceCharacteristics) {
  auto nfs = std::make_unique<NfsFs>("nfs", std::make_unique<NetworkDevice>(NetworkDeviceConfig{}));
  ASSERT_EQ(nfs->Levels().size(), 1u);
  EXPECT_NEAR(nfs->Levels()[0].nominal.latency.ToMillis(), 270.0, 1.0);
}

TEST(VfsTest, MountAndResolve) {
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", MakeExtFs()).ok());
  auto cd = std::make_unique<IsoFs>("cdrom", std::make_unique<CdRomDevice>(CdRomDeviceConfig{}));
  ASSERT_TRUE(vfs.Mount("/mnt/cdrom", std::move(cd)).ok());

  ASSERT_TRUE(vfs.CreateDir("/home").ok());
  ASSERT_TRUE(vfs.CreateFile("/home/a.txt").ok());
  EXPECT_TRUE(vfs.Stat("/home/a.txt").ok());
  EXPECT_FALSE(vfs.Stat("/home/a.txt").value().is_dir);

  // The CD mount shadows the root fs below /mnt/cdrom.
  ASSERT_TRUE(vfs.CreateFile("/mnt/cdrom/disc.dat").ok());
  auto r = vfs.Resolve("/mnt/cdrom/disc.dat").value();
  EXPECT_EQ(r.fs->name(), "cdrom");

  EXPECT_EQ(vfs.Resolve("/nope").error(), Err::kNoEnt);
  EXPECT_EQ(vfs.Resolve("relative/path").error(), Err::kInval);
}

TEST(VfsTest, PathNormalization) {
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", MakeExtFs()).ok());
  ASSERT_TRUE(vfs.CreateDir("/a").ok());
  ASSERT_TRUE(vfs.CreateDir("/a/b").ok());
  ASSERT_TRUE(vfs.CreateFile("/a/b/c").ok());
  EXPECT_TRUE(vfs.Stat("//a///b/./c").ok());
  EXPECT_TRUE(vfs.Stat("/a/b/../b/c").ok());
  EXPECT_TRUE(vfs.Stat("/../a/b/c").ok());  // ".." stops at root
}

TEST(VfsTest, DuplicateMountRejected) {
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", MakeExtFs()).ok());
  EXPECT_EQ(vfs.Mount("/", MakeExtFs()).error(), Err::kExist);
}

TEST(VfsTest, FileIdsAreUniqueAcrossFileSystems) {
  Vfs vfs;
  const uint32_t id1 = vfs.Mount("/", MakeExtFs()).value();
  const uint32_t id2 = vfs.Mount("/mnt", MakeExtFs()).value();
  EXPECT_NE(Vfs::MakeFileId(id1, 2), Vfs::MakeFileId(id2, 2));
  EXPECT_NE(id1, id2);
  EXPECT_NE(vfs.FsById(id1), nullptr);
  EXPECT_EQ(vfs.MountPathOf(id2), "/mnt");
  EXPECT_EQ(vfs.Mounts().size(), 2u);
}

TEST(VfsTest, UnlinkThroughVfs) {
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", MakeExtFs()).ok());
  ASSERT_TRUE(vfs.CreateFile("/f").ok());
  ASSERT_TRUE(vfs.Unlink("/f").ok());
  EXPECT_EQ(vfs.Stat("/f").error(), Err::kNoEnt);
}

// Property: random namespace operations through the VFS never corrupt the
// tree (every created path resolves until unlinked).
TEST(VfsPropertyTest, RandomNamespaceOps) {
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", MakeExtFs()).ok());
  Rng rng(77);
  std::vector<std::string> live;
  for (int i = 0; i < 300; ++i) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      const std::string path = "/f" + std::to_string(i);
      ASSERT_TRUE(vfs.CreateFile(path).ok());
      live.push_back(path);
    } else {
      const size_t idx = static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(live.size()) - 1));
      ASSERT_TRUE(vfs.Unlink(live[idx]).ok());
      live.erase(live.begin() + static_cast<long>(idx));
    }
    for (const std::string& p : live) {
      ASSERT_TRUE(vfs.Stat(p).ok()) << p;
    }
  }
}

}  // namespace
}  // namespace sled

namespace sled {
namespace {

TEST(VfsTest, ListingShowsMountPoints) {
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", MakeExtFs()).ok());
  ASSERT_TRUE(vfs.CreateDir("/mnt").ok());
  ASSERT_TRUE(vfs.Mount("/mnt/cdrom", std::make_unique<IsoFs>(
                                          "cdrom", std::make_unique<CdRomDevice>(
                                                       CdRomDeviceConfig{})))
                  .ok());
  ASSERT_TRUE(vfs.Mount("/data", MakeExtFs()).ok());
  ASSERT_TRUE(vfs.CreateFile("/plain.txt").ok());

  // Root listing: the real file, the real dir, and the synthesized mount.
  auto root = vfs.List("/").value();
  std::vector<std::string> names;
  for (const DirEntry& e : root) {
    names.push_back(e.name + (e.is_dir ? "/" : ""));
  }
  EXPECT_EQ(names, (std::vector<std::string>{"data/", "mnt/", "plain.txt"}));

  // /mnt listing: only the nested mount.
  auto mnt = vfs.List("/mnt").value();
  ASSERT_EQ(mnt.size(), 1u);
  EXPECT_EQ(mnt[0].name, "cdrom");
  EXPECT_TRUE(mnt[0].is_dir);

  // Deep mounts do not leak into shallow listings.
  for (const DirEntry& e : root) {
    EXPECT_NE(e.name, "cdrom");
  }
}

TEST(VfsTest, MountVisibleDirectoryResolves) {
  Vfs vfs;
  ASSERT_TRUE(vfs.Mount("/", MakeExtFs()).ok());
  ASSERT_TRUE(vfs.Mount("/data", MakeExtFs()).ok());
  ASSERT_TRUE(vfs.CreateFile("/data/x").ok());
  // Walking through the listing like find does reaches the mounted file.
  auto entries = vfs.List("/").value();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "data");
  auto inner = vfs.List("/data").value();
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner[0].name, "x");
}

TEST(ExtentAllocatorTest, TruncateToZeroAndRegrow) {
  auto fs = MakeExtFs();
  const InodeNum f = fs->CreateFile(fs->root(), "f").value();
  ASSERT_TRUE(fs->Truncate(f, 8 * kPageSize).ok());
  EXPECT_EQ(fs->allocator().ExtentCountOf(f), 1);
  ASSERT_TRUE(fs->Truncate(f, 0).ok());
  EXPECT_EQ(fs->allocator().ExtentCountOf(f), 0);
  ASSERT_TRUE(fs->Truncate(f, 4 * kPageSize).ok());
  EXPECT_EQ(fs->allocator().ExtentCountOf(f), 1);
  EXPECT_TRUE(fs->ReadPagesFromStore(f, 0, 4).ok());
}

TEST(FileSystemTest, ContentViewMatchesReadBytes) {
  auto fs = MakeExtFs();
  const InodeNum f = fs->CreateFile(fs->root(), "f").value();
  const std::string payload = "zero copy view";
  ASSERT_TRUE(fs->WriteBytes(f, 0, std::span<const char>(payload.data(), payload.size())).ok());
  EXPECT_EQ(fs->ContentView(f).value(), payload);
  EXPECT_EQ(fs->ContentView(fs->root()).error(), Err::kIsDir);
  EXPECT_EQ(fs->ContentView(999).error(), Err::kNoEnt);
}

}  // namespace
}  // namespace sled

namespace sled {
namespace {

std::unique_ptr<ExtFs> MakeZonedExtFs() {
  DiskDeviceConfig dc;
  dc.capacity_bytes = 512LL * kMiB;  // small disk: files span zones quickly
  dc.num_zones = 8;
  return std::make_unique<ExtFs>("disk", std::make_unique<DiskDevice>(dc),
                                 ExtentAllocatorConfig{}, /*per_zone_levels=*/true);
}

TEST(ZonedLevelsTest, OneLevelPerZoneWithDecliningBandwidth) {
  auto fs = MakeZonedExtFs();
  const auto levels = fs->Levels();
  ASSERT_EQ(levels.size(), 8u);
  EXPECT_EQ(levels[0].name, "disk-z0");
  EXPECT_EQ(levels[7].name, "disk-z7");
  for (size_t z = 1; z < levels.size(); ++z) {
    EXPECT_LT(levels[z].nominal.bandwidth_bps, levels[z - 1].nominal.bandwidth_bps);
    EXPECT_EQ(levels[z].nominal.latency, levels[0].nominal.latency);
  }
}

TEST(ZonedLevelsTest, LevelFollowsDeviceAddress) {
  auto fs = MakeZonedExtFs();
  // Fill most of zone 0 with ballast, then create the test file so it
  // straddles the zone 0/1 boundary.
  const int64_t zone_span = 512LL * kMiB / 8;
  const InodeNum ballast = fs->CreateFile(fs->root(), "ballast").value();
  ASSERT_TRUE(fs->Truncate(ballast, zone_span - 16 * kPageSize).ok());
  const InodeNum f = fs->CreateFile(fs->root(), "f").value();
  ASSERT_TRUE(fs->Truncate(f, 64 * kPageSize).ok());
  EXPECT_EQ(fs->LevelOf(f, 0), 0);        // still in zone 0
  EXPECT_EQ(fs->LevelOf(f, 32), 1);       // past the boundary
  EXPECT_EQ(fs->LevelOf(f, 63), 1);
}

TEST(ZonedLevelsTest, DisabledByDefaultAndForSingleZone) {
  auto plain = std::make_unique<ExtFs>("disk", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  EXPECT_FALSE(plain->per_zone_levels());
  EXPECT_EQ(plain->Levels().size(), 1u);
  DiskDeviceConfig one_zone;
  one_zone.num_zones = 1;
  auto single = std::make_unique<ExtFs>("disk", std::make_unique<DiskDevice>(one_zone),
                                        ExtentAllocatorConfig{}, /*per_zone_levels=*/true);
  EXPECT_FALSE(single->per_zone_levels());
}

TEST(ZonedLevelsTest, SledsThroughKernelShowZoneBandwidths) {
  KernelConfig kc;
  kc.cache.capacity_pages = 64;
  SimKernel kernel(kc);
  {
    DiskDeviceConfig dc;
    dc.capacity_bytes = 512LL * kMiB;
    dc.num_zones = 8;
    ASSERT_TRUE(kernel
                    .Mount("/", std::make_unique<ExtFs>(
                                    "disk", std::make_unique<DiskDevice>(dc),
                                    ExtentAllocatorConfig{}, /*per_zone_levels=*/true))
                    .ok());
  }
  Process& p = kernel.CreateProcess("user");
  // Ballast pushes the test file across a zone boundary.
  const int bfd = kernel.Create(p, "/ballast").value();
  ASSERT_TRUE(kernel.Ftruncate(p, bfd, 512LL * kMiB / 8 - 16 * kPageSize).ok());
  ASSERT_TRUE(kernel.Close(p, bfd).ok());
  const int fd = kernel.Create(p, "/f").value();
  const std::string data(64 * kPageSize, 'z');
  ASSERT_TRUE(kernel.Write(p, fd, std::span<const char>(data.data(), data.size())).ok());
  kernel.DropCaches();
  SledVector sleds = kernel.IoctlSledsGet(p, fd).value();
  ASSERT_EQ(sleds.size(), 2u);  // one per zone the file touches
  EXPECT_GT(sleds[0].bandwidth, sleds[1].bandwidth);
  EXPECT_DOUBLE_EQ(sleds[0].latency, sleds[1].latency);
  ASSERT_TRUE(kernel.Close(p, fd).ok());
}

}  // namespace
}  // namespace sled
