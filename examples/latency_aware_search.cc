// latency_aware_search: the paper's find -exec grep anecdote (§5.2). A
// programmer greps a source tree; the interesting hit is near the end; they
// re-run the search moments later. With SLEDs, the second search reads the
// cache first and terminates an order of magnitude sooner.
//
// Run: ./build/examples/latency_aware_search
#include <cstdio>
#include <string>
#include <vector>

#include <algorithm>

#include "src/apps/find.h"
#include "src/apps/grep.h"
#include "src/common/units.h"
#include "src/sleds/delivery.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

int main() {
  using namespace sled;

  Testbed tb = MakeUnixTestbed(StorageKind::kDisk, /*seed=*/31);
  Process& user = tb.kernel->CreateProcess("user");
  Rng rng(31);

  // A "source tree": 24 files of 4 MB; the routine we want is in file 20.
  std::printf("building /data/src: 24 files x 4 MB...\n");
  (void)tb.kernel->vfs().CreateDir("/data/src");
  std::vector<std::string> files;
  for (int i = 0; i < 24; ++i) {
    const std::string path = "/data/src/mod" + std::to_string(i) + ".c";
    if (!GenerateTextFile(*tb.kernel, user, path, MiB(4), rng).ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
    files.push_back(path);
  }
  (void)PlaceMarker(*tb.kernel, user, "/data/src/mod20.c", MiB(2)).value();
  tb.kernel->DropCaches();

  auto search_tree = [&](bool use_sleds, const char* label) {
    Process& p = tb.kernel->CreateProcess(label);
    FindOptions find_options;
    find_options.name_contains = ".c";
    FindResult tree = FindApp::Run(*tb.kernel, p, "/data/src", find_options).value();
    if (use_sleds) {
      // The SLEDs-aware search orders the *file set* by estimated delivery
      // time (metadata-only FSLEDS_GET per file), so cached files go first.
      std::vector<std::pair<double, std::string>> keyed;
      for (const std::string& path : tree.paths) {
        const int fd = tb.kernel->Open(p, path).value();
        const Duration est =
            TotalDeliveryTime(*tb.kernel, p, fd, AttackPlan::kBest).value();
        (void)tb.kernel->Close(p, fd);
        keyed.emplace_back(est.ToSeconds(), path);
      }
      std::stable_sort(keyed.begin(), keyed.end());
      tree.paths.clear();
      for (auto& [cost, path] : keyed) {
        tree.paths.push_back(path);
      }
    }
    std::string found_in;
    for (const std::string& path : tree.paths) {
      GrepOptions grep_options;
      grep_options.use_sleds = use_sleds;
      grep_options.quiet_first_match = true;
      auto r = GrepApp::Run(*tb.kernel, p, path, std::string(kGrepMarker), grep_options);
      if (r.ok() && r->found) {
        found_in = path;
        break;
      }
    }
    std::printf("  %-22s found in %-22s elapsed %8.2f s, %6lld faults\n", label,
                found_in.c_str(), p.stats().elapsed().ToSeconds(),
                static_cast<long long>(p.stats().major_faults));
  };

  std::printf("\nfirst search (cold cache) — pays the disk either way:\n");
  search_tree(false, "find-exec-grep");

  std::printf("\nthe user hits ^C, tweaks the pattern, and searches again:\n");
  search_tree(false, "plain re-run");
  search_tree(true, "SLEDs re-run");

  std::printf(
      "\nThe SLEDs re-run starts from the files the previous search left in the\n"
      "cache (the tail of the tree, where the hit lives) instead of rescanning\n"
      "mod0.c onward from disk — \"the SLEDs-aware find allows him to search\n"
      "cache first, then higher latency data only as needed\" (§5.2).\n");
  return 0;
}
