// astro_pipeline: the paper's LHEASOFT scenario end to end — generate a FITS
// survey image, run fimhisto (copy + histogram) and fimgbin (boxcar rebin)
// over it with and without SLEDs on the Table 3 machine, and report the
// per-run times and fault counts.
//
// Run: ./build/examples/astro_pipeline [image-MB]
#include <cstdio>
#include <cstdlib>

#include "src/apps/fimgbin.h"
#include "src/apps/fimhisto.h"
#include "src/common/units.h"
#include "src/workload/experiment.h"
#include "src/workload/fits_gen.h"
#include "src/workload/testbed.h"

int main(int argc, char** argv) {
  using namespace sled;

  const int image_mb = argc > 1 ? std::max(8, atoi(argv[1])) : 48;
  Testbed tb = MakeLheasoftTestbed(/*seed=*/99);
  Process& gen = tb.kernel->CreateProcess("gen");
  Rng rng(99);
  std::printf("generating %d MB float image on the Table-3 machine...\n", image_mb);
  const FitsHeader header =
      GenerateFitsImage(*tb.kernel, gen, "/data/survey.fits", MiB(image_mb), -32, rng).value();
  std::printf("image: %lld x %lld, BITPIX %d, data unit %lld bytes\n",
              static_cast<long long>(header.naxis[0]), static_cast<long long>(header.naxis[1]),
              header.bitpix, static_cast<long long>(header.data_bytes()));
  tb.kernel->DropCaches();

  auto report = [&](const char* label, const RunStats& stats) {
    std::printf("  %-28s %10.2f s  %8lld faults\n", label, stats.elapsed.ToSeconds(),
                static_cast<long long>(stats.major_faults));
  };

  // Warm the cache with one discarded pass, as in the paper's protocol.
  (void)MeasureRun(*tb.kernel, [](SimKernel& k, Process& p) {
    (void)FimhistoApp::Run(k, p, "/data/survey.fits", "/data/warm.fits", FimhistoOptions{});
  });

  std::printf("\nfimhisto (3-pass copy + histogram):\n");
  for (bool use_sleds : {false, true}) {
    (void)tb.kernel->FlushAllDirty();  // don't bill one run for the other's writeback
    const RunStats stats = MeasureRun(*tb.kernel, [&](SimKernel& k, Process& p) {
      FimhistoOptions options;
      options.use_sleds = use_sleds;
      auto r = FimhistoApp::Run(k, p, "/data/survey.fits", "/data/hist.fits", options);
      if (r.ok() && use_sleds) {
        std::printf("  histogram range [%.1f, %.1f], %zu bins\n", r->min_value, r->max_value,
                    r->bins.size());
      }
    });
    report(use_sleds ? "with SLEDs" : "without SLEDs", stats);
  }

  std::printf("\nfimgbin (2x2 boxcar, 4x data reduction):\n");
  for (bool use_sleds : {false, true}) {
    (void)tb.kernel->FlushAllDirty();
    const RunStats stats = MeasureRun(*tb.kernel, [&](SimKernel& k, Process& p) {
      FimgbinOptions options;
      options.use_sleds = use_sleds;
      options.boxcar = 2;
      auto r = FimgbinApp::Run(k, p, "/data/survey.fits", "/data/binned.fits", options);
      if (r.ok() && use_sleds) {
        std::printf("  output %lld x %lld\n", static_cast<long long>(r->out_width),
                    static_cast<long long>(r->out_height));
      }
    });
    report(use_sleds ? "with SLEDs" : "without SLEDs", stats);
  }
  std::printf(
      "\n(The SLEDs runs reorder passes 2/3 through the ff* element layer to eat\n"
      "the cache-resident pixels first — the paper's §5.3 adaptation.)\n");
  return 0;
}
