// hsm_explorer: the interactive-latency story from the paper's introduction,
// on a hierarchical storage manager. A user browsing an archive wants to know
// *before opening a file* whether it will take microseconds (cache), tens of
// milliseconds (staging disk), tens of seconds (mounted tape), or minutes
// (offline tape) — the gmc properties panel (Figure 6) plus find -latency.
//
// Run: ./build/examples/hsm_explorer
#include <cstdio>
#include <string>

#include "src/apps/file_info.h"
#include "src/apps/find.h"
#include "src/common/units.h"
#include "src/workload/testbed.h"
#include "src/workload/text_gen.h"

int main() {
  using namespace sled;

  Testbed tb = MakeHsmTestbed(/*seed=*/7);
  auto* hsm = dynamic_cast<HsmFs*>(tb.kernel->vfs().FsById(tb.data_fs_id));
  Process& user = tb.kernel->CreateProcess("user");
  Rng rng(7);

  // An archive: survey images from several nights; older nights migrated.
  std::printf("building archive: 6 observation files, 4 migrated to tape...\n");
  for (int night = 0; night < 6; ++night) {
    const std::string path = "/data/night" + std::to_string(night) + ".dat";
    if (!GenerateTextFile(*tb.kernel, user, path, MiB(8), rng).ok()) {
      std::fprintf(stderr, "generation failed\n");
      return 1;
    }
  }
  for (int night = 0; night < 4; ++night) {
    const std::string path = "/data/night" + std::to_string(night) + ".dat";
    const InodeNum ino = tb.kernel->vfs().Resolve(path).value().ino;
    (void)hsm->Migrate(ino).value();
  }
  tb.kernel->DropCaches();
  // Re-read night5 so part of it is cached.
  {
    const int fd = tb.kernel->Open(user, "/data/night5.dat").value();
    std::vector<char> buf(static_cast<size_t>(MiB(1)));
    while (tb.kernel->Read(user, fd, std::span<char>(buf.data(), buf.size())).value() > 0) {
    }
    (void)tb.kernel->Close(user, fd);
  }

  // The gmc-style properties panel for each file.
  for (int night = 0; night < 6; ++night) {
    const std::string path = "/data/night" + std::to_string(night) + ".dat";
    const FileInfoReport report = FileInfoApp::Run(*tb.kernel, user, path).value();
    std::printf("\n%s\n", report.panel_text.c_str());
  }

  // find -latency: which data can I browse without waking the robot?
  std::printf("\n--- find /data -latency -m100   (instantly browsable) ---\n");
  FindOptions instant;
  instant.latency = ParseLatencyPredicate("-m100").value();
  for (const std::string& path : FindApp::Run(*tb.kernel, user, "/data", instant)->paths) {
    std::printf("  %s\n", path.c_str());
  }
  std::printf("\n--- find /data -latency +60     (needs a tape mount) ---\n");
  FindOptions offline;
  offline.latency = ParseLatencyPredicate("+60").value();
  for (const std::string& path : FindApp::Run(*tb.kernel, user, "/data", offline)->paths) {
    std::printf("  %s\n", path.c_str());
  }

  // Now actually open an offline file and watch the clock.
  std::printf("\nrecalling /data/night0.dat from tape...\n");
  const InodeNum ino = tb.kernel->vfs().Resolve("/data/night0.dat").value().ino;
  const Duration recall = hsm->Recall(ino).value();
  std::printf("recall took %s (exchange + load + locate + copy to staging)\n",
              recall.ToString().c_str());
  const FileInfoReport after = FileInfoApp::Run(*tb.kernel, user, "/data/night0.dat").value();
  std::printf("\nafter recall:\n%s\n", after.panel_text.c_str());
  return 0;
}
