// sledsh — interactive shell over the simulated SLEDs storage stack.
//
//   ./build/examples/sledsh               interactive (reads stdin)
//   ./build/examples/sledsh script.sh     run a script
//   echo "help" | ./build/examples/sledsh
//
// Example session:
//   mount ext2 /data
//   genfile /data/big.txt 60
//   dropcaches
//   cat /data/big.txt
//   sleds /data/big.txt
//   wc -s /data/big.txt
//   stats
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/workload/shell.h"

int main(int argc, char** argv) {
  sled::SledShell shell;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream script;
    script << in.rdbuf();
    std::fputs(shell.RunScript(script.str()).c_str(), stdout);
    return 0;
  }
  const bool tty = true;
  std::string line;
  if (tty) {
    std::printf("sledsh — SLEDs storage simulator shell ('help' for commands)\n");
  }
  while (true) {
    std::printf("sledsh> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    if (line == "exit" || line == "quit") {
      break;
    }
    std::fputs(shell.Execute(line).c_str(), stdout);
  }
  return 0;
}
