// Quickstart: the paper's Figure 5 application pseudocode, line for line,
// against the simulated storage stack.
//
//   fd = open(FileName, flags);
//   sleds_pick_init(fd, BUFSIZE);
//   for (Remain = FileSize; Remain; Remain -= nbytes) {
//     sleds_pick_next_read(fd, &offset, &nbytes);
//     lseek(fd, offset, SEEK_SET);
//     read(fd, buffer, nbytes);
//     process_data(buffer, nbytes);
//   }
//   sleds_pick_finish(fd);
//   close(fd);
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "src/common/units.h"
#include "src/device/disk_device.h"
#include "src/fs/extent_file_system.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/c_api.h"
#include "src/sleds/delivery.h"

namespace {

constexpr long kBufSize = 64 * 1024;

}  // namespace

int main() {
  using namespace sled;

  // --- Boot a tiny machine: 16 MiB of file cache over one ext2 disk. ---
  KernelConfig kernel_config;
  kernel_config.cache.capacity_pages = 4096;
  SimKernel kernel(kernel_config);
  auto fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(DiskDeviceConfig{}));
  if (!kernel.Mount("/", std::move(fs)).ok()) {
    std::fprintf(stderr, "mount failed\n");
    return 1;
  }
  Process& shell = kernel.CreateProcess("shell");

  // --- Create a 32 MiB file and warm the cache with its *tail* only. ---
  {
    const int fd = kernel.Create(shell, "/bigfile").value();
    const std::string chunk(1 << 20, 'x');
    for (int i = 0; i < 32; ++i) {
      (void)kernel.Write(shell, fd, std::span<const char>(chunk.data(), chunk.size()));
    }
    (void)kernel.Close(shell, fd);
    kernel.DropCaches();
    const int warm = kernel.Open(shell, "/bigfile").value();
    std::vector<char> buf(1 << 20);
    (void)kernel.Lseek(shell, warm, MiB(24), Whence::kSet);  // cache the last 8 MiB
    while (kernel.Read(shell, warm, std::span<char>(buf.data(), buf.size())).value() > 0) {
    }
    (void)kernel.Close(shell, warm);
  }

  // --- The Figure 5 loop. ---
  Process& app = kernel.CreateProcess("app");
  SledsContext ctx{&kernel, &app};

  const int fd = kernel.Open(app, "/bigfile").value();

  // Peek at the SLEDs first, the way gmc's properties panel would.
  SledVector sleds = kernel.IoctlSledsGet(app, fd).value();
  std::printf("SLEDs for /bigfile before reading:\n%s\n",
              FormatSledReport(kernel, sleds).c_str());
  std::printf("estimated delivery (LINEAR plan): %.3f s\n",
              sleds_total_delivery_time(ctx, fd, SLEDS_LINEAR));

  if (sleds_pick_init(ctx, fd, kBufSize) < 0) {
    std::fprintf(stderr, "sleds_pick_init failed\n");
    return 1;
  }
  std::vector<char> buffer(kBufSize);
  long offset = 0;
  long nbytes = 0;
  long total = 0;
  long first_chunks_from_cache = 0;
  while (sleds_pick_next_read(ctx, fd, &offset, &nbytes) == 0 && nbytes > 0) {
    (void)kernel.Lseek(app, fd, offset, Whence::kSet);
    (void)kernel.Read(app, fd, std::span<char>(buffer.data(), static_cast<size_t>(nbytes)));
    // process_data(buffer, nbytes) would go here.
    if (total < MiB(8) && offset >= MiB(24)) {
      ++first_chunks_from_cache;  // the library sent us to the cached tail first
    }
    total += nbytes;
  }
  sleds_pick_finish(ctx, fd);
  (void)kernel.Close(app, fd);

  std::printf("read %ld bytes; the first chunks came from the cached tail: %s\n", total,
              first_chunks_from_cache > 0 ? "yes" : "no");
  std::printf("process stats: %lld major faults, elapsed %s\n",
              static_cast<long long>(app.stats().major_faults),
              app.stats().elapsed().ToString().c_str());
  return 0;
}
