// The file-system buffer cache.
//
// A fixed pool of page frames shared by every file in the system, indexed by
// (file, page index). Replacement is pluggable: LRU (the Linux 2.2 behaviour
// the paper measured — its Figure 3 walks through exactly this policy) or
// Clock/second-chance for ablation studies.
//
// The cache tracks residency and dirtiness only; page *contents* live in the
// file systems' backing stores (this is a performance simulation, the data
// plane is handled by the FS layer).
//
// Alongside the (file, page) hash map, the cache maintains a per-file
// *residency index*: the ordered maximal runs of contiguous resident pages
// plus an ordered per-file dirty set. Per-file questions — "where is the
// next miss?", "which runs are cached?", "which pages are dirty?" — are
// answered from the index in O(log runs) / O(file entries) instead of
// probing every page or scanning the whole cache (see DESIGN.md §6).
#ifndef SLEDS_SRC_CACHE_PAGE_CACHE_H_
#define SLEDS_SRC_CACHE_PAGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/log.h"

namespace sled {

// Globally unique file identity (file-system id + inode number packed by the
// VFS layer).
using FileId = uint64_t;

struct PageKey {
  FileId file = 0;
  int64_t page = 0;  // page index within the file

  friend bool operator==(const PageKey&, const PageKey&) = default;
};

struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    // 64-bit mix of the two fields (splitmix-style finalizer).
    uint64_t x = k.file * 0x9E3779B97F4A7C15ull ^ static_cast<uint64_t>(k.page);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

enum class ReplacementPolicy { kLru, kClock };

struct PageCacheConfig {
  int64_t capacity_pages = 0;
  ReplacementPolicy policy = ReplacementPolicy::kLru;
};

struct PageCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;      // Touch() calls that found nothing
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t dirty_evictions = 0;
};

// A page pushed out by an insertion; dirty pages need writeback by the caller.
struct EvictedPage {
  PageKey key;
  bool dirty = false;

  friend bool operator==(const EvictedPage&, const EvictedPage&) = default;
};

// A maximal run of contiguous resident pages of one file: pages
// [first, first + count) are all resident, first - 1 and first + count are
// not.
struct PageRun {
  int64_t first = 0;
  int64_t count = 0;

  int64_t end() const { return first + count; }
  friend bool operator==(const PageRun&, const PageRun&) = default;
};

class PageCache {
 public:
  explicit PageCache(PageCacheConfig config);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Residency probe without touching replacement state. This is what the
  // kernel SLED scan uses: observing the cache must not perturb it.
  bool Contains(PageKey key) const { return entries_.contains(key); }

  // Access a page: on hit, updates recency and returns true; on miss returns
  // false (caller schedules device I/O and then Insert()s).
  bool Touch(PageKey key);

  // Insert a page (newly read, or newly written when `dirty`). If the cache
  // is full, evicts one page chosen by the policy and returns it. Inserting a
  // resident page refreshes recency and ORs in dirtiness instead.
  //
  // `in_flight` marks a page whose device transfer the async I/O engine has
  // dispatched but whose data arrives at a future simulated instant: the
  // frame is claimed now (so the page is never re-requested) but must not be
  // evicted or re-used until MarkArrived(). The engine bounds in-flight pages
  // well below capacity, so an evictable page always exists.
  std::optional<EvictedPage> Insert(PageKey key, bool dirty, bool in_flight = false);

  // Clear the in-flight flag once the simulated clock reaches the page's
  // arrival time. No-op when not resident or not in flight.
  void MarkArrived(PageKey key);
  bool IsInFlight(PageKey key) const;
  int64_t in_flight_pages() const { return in_flight_; }

  // Mark a resident page dirty. Requires residency.
  void MarkDirty(PageKey key);
  bool IsDirty(PageKey key) const;

  // Pin a resident page: pinned pages are never chosen for eviction (the
  // substrate for SLED locks, paper §3.4: "Adding a lock or reservation
  // mechanism would improve the accuracy and lifetime of SLEDs"). To keep
  // eviction always possible, at most half the capacity may be pinned;
  // beyond that Pin() refuses. Pinning a non-resident page also fails.
  bool Pin(PageKey key);
  void Unpin(PageKey key);
  bool IsPinned(PageKey key) const;
  int64_t pinned_pages() const { return pinned_; }

  // Drop a page / every page of a file (truncate, unlink). Dirty contents are
  // discarded — callers flush first if the data matters. RemoveFile and
  // RemovePagesFrom walk the file's residency index, not the global map.
  void Remove(PageKey key);
  void RemoveFile(FileId file);
  // Drop every resident page of `file` with index >= first_page (truncate).
  void RemovePagesFrom(FileId file, int64_t first_page);

  // ---- run-oriented residency queries (the SLED-scan substrate) ----
  // All of these read the per-file ordered residency index and never perturb
  // replacement state; costs are O(log runs) rather than O(pages).
  //
  // First non-resident page of `file` at or after `page`.
  int64_t NextMissAfter(FileId file, int64_t page) const;
  // The maximal resident run containing `page`, or nullopt if not resident.
  std::optional<PageRun> ResidentRunAt(FileId file, int64_t page) const;
  // The first maximal resident run containing or following `from` (i.e. the
  // first run with end() > from), or nullopt if none. The returned run is
  // *not* clipped: its first page may precede `from`.
  std::optional<PageRun> NextResidentRun(FileId file, int64_t from) const;
  // Every maximal resident run of `file`, in page order.
  std::vector<PageRun> ResidentRunsOf(FileId file) const;
  // Number of maximal resident runs of `file` (SledVector sizing).
  int64_t ResidentRunCountOf(FileId file) const;

  // Full consistency audit of the residency index against the entry map:
  // runs are maximal/disjoint/ordered, cover exactly the resident pages, and
  // the per-file dirty sets mirror the entry dirty bits. O(n); test support.
  bool ValidateIndex() const;

  // Dirty pages of one file, in page order (fsync support).
  std::vector<PageKey> DirtyPagesOf(FileId file) const;
  // Every dirty page in the cache, ordered by (file, page) — shutdown flush.
  std::vector<PageKey> AllDirtyPages() const;
  // Drop everything, dirty or not (callers flush first if contents matter).
  void Clear();
  // Clear the dirty bit after writeback.
  void MarkClean(PageKey key);

  int64_t size_pages() const { return static_cast<int64_t>(entries_.size()); }
  int64_t capacity_pages() const { return config_.capacity_pages; }
  const PageCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PageCacheStats{}; }

  // Resident pages of a file, in page order (used by tests and the Fig 3
  // cache-state printer).
  std::vector<int64_t> ResidentPagesOf(FileId file) const;

 private:
  struct Entry {
    std::list<PageKey>::iterator lru_it;  // valid under kLru
    bool dirty = false;
    bool referenced = false;  // Clock reference bit
    bool pinned = false;      // exempt from eviction (SLED lock)
    bool in_flight = false;   // transfer dispatched, data not yet arrived
  };

  // Per-file ordered residency index: the maximal resident runs (first page
  // -> length) plus the ordered set of dirty pages. Kept incrementally in
  // sync with `entries_` by every mutation; files with no resident pages
  // have no FileIndex.
  struct FileIndex {
    std::map<int64_t, int64_t> runs;  // first page -> run length
    std::set<int64_t> dirty;
  };

  // Pick and remove a victim according to the policy. Requires non-empty.
  EvictedPage EvictOne();

  // Index maintenance. IndexInsert requires `page` non-resident beforehand;
  // IndexRemove requires it resident.
  void IndexInsert(FileId file, int64_t page);
  void IndexRemove(FileId file, int64_t page);
  // Remove `key` from entries_/order_/pin accounting only; the caller fixes
  // the index (bulk paths that drop whole runs at once).
  void DropEntry(const PageKey& key);

  PageCacheConfig config_;
  std::unordered_map<PageKey, Entry, PageKeyHash> entries_;
  std::unordered_map<FileId, FileIndex> index_;
  // kLru: recency list, least-recently-used at front.
  // kClock: FIFO ring; entries get a second chance via `referenced`.
  std::list<PageKey> order_;
  PageCacheStats stats_;
  int64_t pinned_ = 0;
  int64_t in_flight_ = 0;
};

}  // namespace sled

#endif  // SLEDS_SRC_CACHE_PAGE_CACHE_H_
