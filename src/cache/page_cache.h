// The file-system buffer cache.
//
// A fixed pool of page frames shared by every file in the system, indexed by
// (file, page index). Replacement is pluggable: LRU (the Linux 2.2 behaviour
// the paper measured — its Figure 3 walks through exactly this policy) or
// Clock/second-chance for ablation studies.
//
// The cache tracks residency and dirtiness only; page *contents* live in the
// file systems' backing stores (this is a performance simulation, the data
// plane is handled by the FS layer).
//
// Storage layout (DESIGN.md §9): a single slab of `Frame` structs — one per
// capacity page, allocated once at construction — carries the entry bits
// (dirty/referenced/pinned/in-flight), the PageKey, and intrusive prev/next
// frame indices forming the LRU list / Clock ring. Lookups go through an
// open-addressing (linear-probe, backward-shift deletion, tombstone-free)
// PageKey → frame-index table sized to at most half load, and a free list
// threaded through unused frames makes Insert/Evict allocation-free. No hot
// path allocates or chases list/map nodes.
//
// Alongside the frame table, the cache maintains a per-file *residency
// index*: the ordered maximal runs of contiguous resident pages plus an
// ordered per-file dirty page list, both flat sorted vectors. Per-file
// questions — "where is the next miss?", "which runs are cached?", "which
// pages are dirty?" — are answered from the index in O(log runs) instead of
// probing every page or scanning the whole cache (see DESIGN.md §6).
#ifndef SLEDS_SRC_CACHE_PAGE_CACHE_H_
#define SLEDS_SRC_CACHE_PAGE_CACHE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/log.h"

namespace sled {

// Globally unique file identity (file-system id + inode number packed by the
// VFS layer).
using FileId = uint64_t;

struct PageKey {
  FileId file = 0;
  int64_t page = 0;  // page index within the file

  friend bool operator==(const PageKey&, const PageKey&) = default;
};

struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    // 64-bit mix of the two fields (splitmix-style finalizer).
    uint64_t x = k.file * 0x9E3779B97F4A7C15ull ^ static_cast<uint64_t>(k.page);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

enum class ReplacementPolicy { kLru, kClock };

struct PageCacheConfig {
  int64_t capacity_pages = 0;
  ReplacementPolicy policy = ReplacementPolicy::kLru;
};

struct PageCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;      // Touch() calls that found nothing
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t dirty_evictions = 0;
};

// A page pushed out by an insertion; dirty pages need writeback by the caller.
struct EvictedPage {
  PageKey key;
  bool dirty = false;

  friend bool operator==(const EvictedPage&, const EvictedPage&) = default;
};

// A maximal run of contiguous resident pages of one file: pages
// [first, first + count) are all resident, first - 1 and first + count are
// not.
struct PageRun {
  int64_t first = 0;
  int64_t count = 0;

  int64_t end() const { return first + count; }
  friend bool operator==(const PageRun&, const PageRun&) = default;
};

class PageCache {
 public:
  // One slab slot. Callers may read the flag bits through a Frame* returned
  // by Probe()/TouchProbe() to avoid re-probing the hash table; all mutation
  // goes through PageCache methods. A Frame* stays valid until the next call
  // that can insert or remove a page (Insert/Remove/Evict/Clear/...).
  class Frame {
   public:
    const PageKey& key() const { return key_; }
    bool dirty() const { return dirty_; }
    bool referenced() const { return referenced_; }
    bool pinned() const { return pinned_; }
    bool in_flight() const { return in_flight_; }

   private:
    friend class PageCache;
    PageKey key_;
    int32_t prev_ = -1;  // intrusive recency list / free list links
    int32_t next_ = -1;
    bool in_use_ = false;
    bool dirty_ = false;
    bool referenced_ = false;  // Clock reference bit
    bool pinned_ = false;      // exempt from eviction (SLED lock)
    bool in_flight_ = false;   // transfer dispatched, data not yet arrived
  };

  explicit PageCache(PageCacheConfig config);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Residency probe without touching replacement state. This is what the
  // kernel SLED scan uses: observing the cache must not perturb it.
  bool Contains(PageKey key) const { return FindFrame(key) != kNil; }

  // Single-probe residency lookup: the resident frame, or nullptr. Does not
  // touch replacement state or hit/miss counters — pair with Freshen()/
  // MarkDirty(Frame*)/Pin(Frame*) to act on the result without re-probing.
  Frame* Probe(PageKey key) {
    const int32_t f = FindFrame(key);
    return f == kNil ? nullptr : &frames_[f];
  }
  const Frame* Probe(PageKey key) const {
    const int32_t f = FindFrame(key);
    return f == kNil ? nullptr : &frames_[f];
  }

  // Access a page: on hit, updates recency and returns true; on miss returns
  // false (caller schedules device I/O and then Insert()s).
  bool Touch(PageKey key) { return TouchProbe(key) != nullptr; }
  // Touch that also hands back the frame on a hit (single probe for callers
  // that need the entry bits as well as the recency update).
  Frame* TouchProbe(PageKey key);

  // Insert a page (newly read, or newly written when `dirty`). If the cache
  // is full, evicts one page chosen by the policy and returns it. Inserting a
  // resident page refreshes recency and ORs in dirtiness instead.
  //
  // `in_flight` marks a page whose device transfer the async I/O engine has
  // dispatched but whose data arrives at a future simulated instant: the
  // frame is claimed now (so the page is never re-requested) but must not be
  // evicted or re-used until MarkArrived(). The engine bounds in-flight pages
  // well below capacity, so an evictable page always exists.
  std::optional<EvictedPage> Insert(PageKey key, bool dirty, bool in_flight = false);
  // Insert only if not resident; a resident page is left completely untouched
  // (no recency refresh, no dirty accumulation). One probe decides.
  std::optional<EvictedPage> InsertIfAbsent(PageKey key, bool dirty, bool in_flight = false);
  // The resident-reinsert half of Insert() for callers already holding the
  // frame: refresh recency (or the reference bit) and OR in dirtiness.
  void Freshen(Frame* frame, bool dirty);

  // Clear the in-flight flag once the simulated clock reaches the page's
  // arrival time. No-op when not resident or not in flight.
  void MarkArrived(PageKey key);
  bool IsInFlight(PageKey key) const;
  int64_t in_flight_pages() const { return in_flight_; }

  // Mark a resident page dirty. Requires residency.
  void MarkDirty(PageKey key);
  void MarkDirty(Frame* frame);
  bool IsDirty(PageKey key) const;

  // Pin a resident page: pinned pages are never chosen for eviction (the
  // substrate for SLED locks, paper §3.4: "Adding a lock or reservation
  // mechanism would improve the accuracy and lifetime of SLEDs"). To keep
  // eviction always possible, at most half the capacity may be pinned;
  // beyond that Pin() refuses. Pinning a non-resident page also fails.
  bool Pin(PageKey key);
  bool Pin(Frame* frame);  // same, for a frame already in hand
  void Unpin(PageKey key);
  bool IsPinned(PageKey key) const;
  int64_t pinned_pages() const { return pinned_; }

  // Drop a page / every page of a file (truncate, unlink). Dirty contents are
  // discarded — callers flush first if the data matters. RemoveFile and
  // RemovePagesFrom walk the file's residency index, not the frame table.
  void Remove(PageKey key);
  void RemoveFile(FileId file);
  // Drop every resident page of `file` with index >= first_page (truncate).
  void RemovePagesFrom(FileId file, int64_t first_page);

  // ---- run-oriented residency queries (the SLED-scan substrate) ----
  // All of these read the per-file ordered residency index and never perturb
  // replacement state; costs are O(log runs) rather than O(pages).
  //
  // First non-resident page of `file` at or after `page`.
  int64_t NextMissAfter(FileId file, int64_t page) const;
  // The maximal resident run containing `page`, or nullopt if not resident.
  std::optional<PageRun> ResidentRunAt(FileId file, int64_t page) const;
  // The first maximal resident run containing or following `from` (i.e. the
  // first run with end() > from), or nullopt if none. The returned run is
  // *not* clipped: its first page may precede `from`.
  std::optional<PageRun> NextResidentRun(FileId file, int64_t from) const;
  // Every maximal resident run of `file`, in page order.
  std::vector<PageRun> ResidentRunsOf(FileId file) const;
  // Number of maximal resident runs of `file` (SledVector sizing).
  int64_t ResidentRunCountOf(FileId file) const;

  // Full consistency audit of the residency index and the frame table: runs
  // are maximal/disjoint/ordered and cover exactly the in-use frames, the
  // per-file dirty lists mirror the frame dirty bits, the hash table maps
  // every resident key to its frame, and the recency + free lists together
  // account for every frame exactly once. O(n); test support.
  bool ValidateIndex() const;

  // Dirty pages of one file, in page order (fsync support).
  std::vector<PageKey> DirtyPagesOf(FileId file) const;
  // Every dirty page in the cache, ordered by (file, page) — shutdown flush.
  std::vector<PageKey> AllDirtyPages() const;
  // Drop everything, dirty or not (callers flush first if contents matter).
  void Clear();
  // Clear the dirty bit after writeback.
  void MarkClean(PageKey key);

  int64_t size_pages() const { return size_; }
  int64_t capacity_pages() const { return config_.capacity_pages; }
  // Files with at least one resident page (occupancy gauges).
  int64_t resident_file_count() const { return static_cast<int64_t>(index_.size()); }
  const PageCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PageCacheStats{}; }

  // Resident pages of a file, in page order (used by tests and the Fig 3
  // cache-state printer).
  std::vector<int64_t> ResidentPagesOf(FileId file) const;

 private:
  static constexpr int32_t kNil = -1;

  // Per-file ordered residency index: the maximal resident runs plus the
  // ordered dirty pages, both flat sorted vectors (no node allocation; a
  // mutation shifts O(runs) POD elements, and runs-per-file stays small).
  // Kept incrementally in sync with the frame table by every mutation; files
  // with no resident pages have no FileIndex.
  struct FileIndex {
    std::vector<PageRun> runs;   // sorted by first page, disjoint, maximal
    std::vector<int64_t> dirty;  // sorted, unique, subset of resident pages
  };

  int32_t IndexOf(const Frame* frame) const {
    return static_cast<int32_t>(frame - frames_.data());
  }
  size_t HomeSlot(PageKey key) const { return PageKeyHash{}(key) & table_mask_; }

  // Hash-table primitives: linear probing, backward-shift deletion.
  int32_t FindFrame(PageKey key) const;
  void TableInsert(PageKey key, int32_t frame);
  void TableErase(PageKey key);

  // Intrusive recency-list primitives (head = least recently used).
  void ListUnlink(int32_t frame);
  void ListPushBack(int32_t frame);
  void MoveToBack(int32_t frame) {
    if (tail_ != frame) {
      ListUnlink(frame);
      ListPushBack(frame);
    }
  }

  // Reset every frame to unused and rebuild the free list (construction and
  // Clear()).
  void ResetFrames();

  // Pick and remove a victim according to the policy. Requires non-empty.
  EvictedPage EvictOne();
  std::optional<EvictedPage> InsertNew(PageKey key, bool dirty, bool in_flight);

  // Index maintenance. IndexInsert requires `page` non-resident beforehand;
  // IndexRemove requires it resident.
  void IndexInsert(FileId file, int64_t page);
  void IndexRemove(FileId file, int64_t page);
  void DirtyInsert(FileId file, int64_t page);
  // Release `frame` back to the free list and unhook it from the recency
  // list, hash table, and pin/in-flight accounting; the caller fixes the
  // residency index (bulk paths drop whole runs at once).
  void DropFrame(int32_t frame);

  PageCacheConfig config_;
  std::vector<Frame> frames_;   // the slab: one frame per capacity page
  std::vector<int32_t> table_;  // open addressing: frame index or kNil
  size_t table_mask_ = 0;
  std::unordered_map<FileId, FileIndex> index_;
  int32_t head_ = kNil;  // recency list: LRU at head. kClock: FIFO ring;
  int32_t tail_ = kNil;  // entries get a second chance via `referenced`.
  int32_t free_head_ = kNil;  // free frames, threaded through Frame::next_
  int64_t size_ = 0;
  PageCacheStats stats_;
  int64_t pinned_ = 0;
  int64_t in_flight_ = 0;
};

}  // namespace sled

#endif  // SLEDS_SRC_CACHE_PAGE_CACHE_H_
