// The file-system buffer cache.
//
// A fixed pool of page frames shared by every file in the system, indexed by
// (file, page index). Replacement is pluggable: LRU (the Linux 2.2 behaviour
// the paper measured — its Figure 3 walks through exactly this policy) or
// Clock/second-chance for ablation studies.
//
// The cache tracks residency and dirtiness only; page *contents* live in the
// file systems' backing stores (this is a performance simulation, the data
// plane is handled by the FS layer).
#ifndef SLEDS_SRC_CACHE_PAGE_CACHE_H_
#define SLEDS_SRC_CACHE_PAGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/log.h"

namespace sled {

// Globally unique file identity (file-system id + inode number packed by the
// VFS layer).
using FileId = uint64_t;

struct PageKey {
  FileId file = 0;
  int64_t page = 0;  // page index within the file

  friend bool operator==(const PageKey&, const PageKey&) = default;
};

struct PageKeyHash {
  size_t operator()(const PageKey& k) const {
    // 64-bit mix of the two fields (splitmix-style finalizer).
    uint64_t x = k.file * 0x9E3779B97F4A7C15ull ^ static_cast<uint64_t>(k.page);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

enum class ReplacementPolicy { kLru, kClock };

struct PageCacheConfig {
  int64_t capacity_pages = 0;
  ReplacementPolicy policy = ReplacementPolicy::kLru;
};

struct PageCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;      // Touch() calls that found nothing
  int64_t insertions = 0;
  int64_t evictions = 0;
  int64_t dirty_evictions = 0;
};

// A page pushed out by an insertion; dirty pages need writeback by the caller.
struct EvictedPage {
  PageKey key;
  bool dirty = false;
};

class PageCache {
 public:
  explicit PageCache(PageCacheConfig config);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  // Residency probe without touching replacement state. This is what the
  // kernel SLED scan uses: observing the cache must not perturb it.
  bool Contains(PageKey key) const { return entries_.contains(key); }

  // Access a page: on hit, updates recency and returns true; on miss returns
  // false (caller schedules device I/O and then Insert()s).
  bool Touch(PageKey key);

  // Insert a page (newly read, or newly written when `dirty`). If the cache
  // is full, evicts one page chosen by the policy and returns it. Inserting a
  // resident page refreshes recency and ORs in dirtiness instead.
  std::optional<EvictedPage> Insert(PageKey key, bool dirty);

  // Mark a resident page dirty. Requires residency.
  void MarkDirty(PageKey key);
  bool IsDirty(PageKey key) const;

  // Pin a resident page: pinned pages are never chosen for eviction (the
  // substrate for SLED locks, paper §3.4: "Adding a lock or reservation
  // mechanism would improve the accuracy and lifetime of SLEDs"). To keep
  // eviction always possible, at most half the capacity may be pinned;
  // beyond that Pin() refuses. Pinning a non-resident page also fails.
  bool Pin(PageKey key);
  void Unpin(PageKey key);
  bool IsPinned(PageKey key) const;
  int64_t pinned_pages() const { return pinned_; }

  // Drop a page / every page of a file (truncate, unlink). Dirty contents are
  // discarded — callers flush first if the data matters.
  void Remove(PageKey key);
  void RemoveFile(FileId file);

  // Dirty pages of one file, in page order (fsync support).
  std::vector<PageKey> DirtyPagesOf(FileId file) const;
  // Every dirty page in the cache, ordered by (file, page) — shutdown flush.
  std::vector<PageKey> AllDirtyPages() const;
  // Drop everything, dirty or not (callers flush first if contents matter).
  void Clear();
  // Clear the dirty bit after writeback.
  void MarkClean(PageKey key);

  int64_t size_pages() const { return static_cast<int64_t>(entries_.size()); }
  int64_t capacity_pages() const { return config_.capacity_pages; }
  const PageCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PageCacheStats{}; }

  // Resident pages of a file, in page order (used by tests and the Fig 3
  // cache-state printer).
  std::vector<int64_t> ResidentPagesOf(FileId file) const;

 private:
  struct Entry {
    std::list<PageKey>::iterator lru_it;  // valid under kLru
    bool dirty = false;
    bool referenced = false;  // Clock reference bit
    bool pinned = false;      // exempt from eviction (SLED lock)
  };

  // Pick and remove a victim according to the policy. Requires non-empty.
  EvictedPage EvictOne();

  PageCacheConfig config_;
  std::unordered_map<PageKey, Entry, PageKeyHash> entries_;
  // kLru: recency list, least-recently-used at front.
  // kClock: FIFO ring; entries get a second chance via `referenced`.
  std::list<PageKey> order_;
  PageCacheStats stats_;
  int64_t pinned_ = 0;
};

}  // namespace sled

#endif  // SLEDS_SRC_CACHE_PAGE_CACHE_H_
