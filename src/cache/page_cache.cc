#include "src/cache/page_cache.h"

#include <algorithm>

namespace sled {

PageCache::PageCache(PageCacheConfig config) : config_(config) {
  SLED_CHECK(config_.capacity_pages > 0, "page cache needs capacity");
}

bool PageCache::Touch(PageKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  if (config_.policy == ReplacementPolicy::kLru) {
    order_.splice(order_.end(), order_, it->second.lru_it);
  } else {
    it->second.referenced = true;
  }
  return true;
}

std::optional<EvictedPage> PageCache::Insert(PageKey key, bool dirty) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Re-insert of a resident page: refresh recency, accumulate dirtiness.
    it->second.dirty = it->second.dirty || dirty;
    if (config_.policy == ReplacementPolicy::kLru) {
      order_.splice(order_.end(), order_, it->second.lru_it);
    } else {
      it->second.referenced = true;
    }
    return std::nullopt;
  }

  std::optional<EvictedPage> evicted;
  if (size_pages() >= config_.capacity_pages) {
    evicted = EvictOne();
  }
  order_.push_back(key);
  Entry entry;
  entry.lru_it = std::prev(order_.end());
  entry.dirty = dirty;
  entry.referenced = false;  // Clock inserts behind the hand, one sweep to live
  entries_.emplace(key, entry);
  ++stats_.insertions;
  return evicted;
}

EvictedPage PageCache::EvictOne() {
  SLED_CHECK(!order_.empty(), "evicting from empty cache");
  // Walk the ring from the front, skipping pinned pages. Under Clock,
  // referenced pages get their bit cleared and cycle to the back (second
  // chance); a second sweep then finds a victim. Pin() bounds pinned pages
  // to half the capacity, so an unpinned victim always exists.
  for (int sweep = 0; sweep < 3; ++sweep) {
    auto it = order_.begin();
    while (it != order_.end()) {
      auto entry_it = entries_.find(*it);
      SLED_CHECK(entry_it != entries_.end(), "ring out of sync with entry map");
      if (entry_it->second.pinned) {
        ++it;
        continue;
      }
      if (config_.policy == ReplacementPolicy::kClock && entry_it->second.referenced) {
        entry_it->second.referenced = false;
        auto next = std::next(it);
        order_.splice(order_.end(), order_, it);
        entry_it->second.lru_it = std::prev(order_.end());
        it = next;
        continue;
      }
      const PageKey victim = *it;
      EvictedPage evicted{victim, entry_it->second.dirty};
      order_.erase(it);
      entries_.erase(entry_it);
      ++stats_.evictions;
      if (evicted.dirty) {
        ++stats_.dirty_evictions;
      }
      return evicted;
    }
  }
  SLED_CHECK(false, "no evictable page (all pinned?)");
  return {};
}

bool PageCache::Pin(PageKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end() || pinned_ >= config_.capacity_pages / 2) {
    return false;
  }
  if (!it->second.pinned) {
    it->second.pinned = true;
    ++pinned_;
  }
  return true;
}

void PageCache::Unpin(PageKey key) {
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.pinned) {
    it->second.pinned = false;
    --pinned_;
  }
}

bool PageCache::IsPinned(PageKey key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.pinned;
}

void PageCache::MarkDirty(PageKey key) {
  auto it = entries_.find(key);
  SLED_CHECK(it != entries_.end(), "MarkDirty on non-resident page");
  it->second.dirty = true;
}

bool PageCache::IsDirty(PageKey key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.dirty;
}

void PageCache::Remove(PageKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  if (it->second.pinned) {
    --pinned_;
  }
  order_.erase(it->second.lru_it);
  entries_.erase(it);
}

void PageCache::RemoveFile(FileId file) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.file == file) {
      if (it->second.pinned) {
        --pinned_;
      }
      order_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<PageKey> PageCache::DirtyPagesOf(FileId file) const {
  std::vector<PageKey> dirty;
  for (const auto& [key, entry] : entries_) {
    if (key.file == file && entry.dirty) {
      dirty.push_back(key);
    }
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const PageKey& a, const PageKey& b) { return a.page < b.page; });
  return dirty;
}

std::vector<PageKey> PageCache::AllDirtyPages() const {
  std::vector<PageKey> dirty;
  for (const auto& [key, entry] : entries_) {
    if (entry.dirty) {
      dirty.push_back(key);
    }
  }
  std::sort(dirty.begin(), dirty.end(), [](const PageKey& a, const PageKey& b) {
    return a.file != b.file ? a.file < b.file : a.page < b.page;
  });
  return dirty;
}

void PageCache::Clear() {
  entries_.clear();
  order_.clear();
  pinned_ = 0;
}

void PageCache::MarkClean(PageKey key) {
  auto it = entries_.find(key);
  SLED_CHECK(it != entries_.end(), "MarkClean on non-resident page");
  it->second.dirty = false;
}

std::vector<int64_t> PageCache::ResidentPagesOf(FileId file) const {
  std::vector<int64_t> pages;
  for (const auto& [key, entry] : entries_) {
    if (key.file == file) {
      pages.push_back(key.page);
    }
  }
  std::sort(pages.begin(), pages.end());
  return pages;
}

}  // namespace sled
