#include "src/cache/page_cache.h"

#include <algorithm>
#include <limits>

namespace sled {

namespace {

// Flat-vector bound helpers over the per-file run index: the run list is
// sorted by `first`, so lower/upper bound on that field localise a page in
// O(log runs).
template <typename Runs>
auto RunLowerBound(Runs& runs, int64_t page) {
  return std::lower_bound(runs.begin(), runs.end(), page,
                          [](const PageRun& r, int64_t p) { return r.first < p; });
}

template <typename Runs>
auto RunUpperBound(Runs& runs, int64_t page) {
  return std::upper_bound(runs.begin(), runs.end(), page,
                          [](int64_t p, const PageRun& r) { return p < r.first; });
}

}  // namespace

PageCache::PageCache(PageCacheConfig config) : config_(config) {
  SLED_CHECK(config_.capacity_pages > 0, "page cache needs capacity");
  // Frames are addressed by int32 throughout (intrusive links, hash slots).
  SLED_CHECK(config_.capacity_pages <= (int64_t{1} << 30),
             "page cache capacity exceeds frame-table addressing");
  frames_.resize(static_cast<size_t>(config_.capacity_pages));
  // At most half load so linear probes stay short even at full capacity.
  size_t table_size = 16;
  while (table_size < static_cast<size_t>(config_.capacity_pages) * 2) {
    table_size <<= 1;
  }
  table_.assign(table_size, kNil);
  table_mask_ = table_size - 1;
  ResetFrames();
}

void PageCache::ResetFrames() {
  free_head_ = kNil;
  for (int32_t f = static_cast<int32_t>(frames_.size()) - 1; f >= 0; --f) {
    frames_[f] = Frame{};
    frames_[f].next_ = free_head_;
    free_head_ = f;
  }
}

int32_t PageCache::FindFrame(PageKey key) const {
  size_t i = HomeSlot(key);
  while (true) {
    const int32_t f = table_[i];
    if (f == kNil) {
      return kNil;
    }
    if (frames_[f].key_ == key) {
      return f;
    }
    i = (i + 1) & table_mask_;
  }
}

void PageCache::TableInsert(PageKey key, int32_t frame) {
  size_t i = HomeSlot(key);
  while (table_[i] != kNil) {
    i = (i + 1) & table_mask_;
  }
  table_[i] = frame;
}

void PageCache::TableErase(PageKey key) {
  size_t i = HomeSlot(key);
  while (true) {
    const int32_t f = table_[i];
    SLED_CHECK(f != kNil, "hash table missing key on erase");
    if (frames_[f].key_ == key) {
      break;
    }
    i = (i + 1) & table_mask_;
  }
  // Backward-shift deletion: walk the probe chain past the hole and pull back
  // any entry whose home slot lies cyclically at or before the hole, keeping
  // every chain contiguous without tombstones.
  size_t j = i;
  while (true) {
    j = (j + 1) & table_mask_;
    const int32_t f = table_[j];
    if (f == kNil) {
      break;
    }
    const size_t home = HomeSlot(frames_[f].key_);
    if (((i - home) & table_mask_) < ((j - home) & table_mask_)) {
      table_[i] = f;
      i = j;
    }
  }
  table_[i] = kNil;
}

void PageCache::ListUnlink(int32_t frame) {
  Frame& fr = frames_[frame];
  if (fr.prev_ != kNil) {
    frames_[fr.prev_].next_ = fr.next_;
  } else {
    head_ = fr.next_;
  }
  if (fr.next_ != kNil) {
    frames_[fr.next_].prev_ = fr.prev_;
  } else {
    tail_ = fr.prev_;
  }
  fr.prev_ = kNil;
  fr.next_ = kNil;
}

void PageCache::ListPushBack(int32_t frame) {
  Frame& fr = frames_[frame];
  fr.prev_ = tail_;
  fr.next_ = kNil;
  if (tail_ != kNil) {
    frames_[tail_].next_ = frame;
  } else {
    head_ = frame;
  }
  tail_ = frame;
}

PageCache::Frame* PageCache::TouchProbe(PageKey key) {
  const int32_t f = FindFrame(key);
  if (f == kNil) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  if (config_.policy == ReplacementPolicy::kLru) {
    MoveToBack(f);
  } else {
    frames_[f].referenced_ = true;
  }
  return &frames_[f];
}

void PageCache::IndexInsert(FileId file, int64_t page) {
  FileIndex& fi = index_[file];
  auto next = RunLowerBound(fi.runs, page);
  SLED_CHECK(next == fi.runs.end() || next->first != page, "index already holds page");
  bool merge_left = false;
  auto prev = fi.runs.end();
  if (next != fi.runs.begin()) {
    prev = std::prev(next);
    SLED_CHECK(prev->end() <= page, "index run overlaps inserted page");
    merge_left = prev->end() == page;
  }
  const bool merge_right = next != fi.runs.end() && next->first == page + 1;
  if (merge_left && merge_right) {
    prev->count += 1 + next->count;
    fi.runs.erase(next);
  } else if (merge_left) {
    prev->count += 1;
  } else if (merge_right) {
    next->first = page;
    next->count += 1;
  } else {
    fi.runs.insert(next, PageRun{page, 1});
  }
}

void PageCache::IndexRemove(FileId file, int64_t page) {
  auto fit = index_.find(file);
  SLED_CHECK(fit != index_.end(), "index missing file on remove");
  FileIndex& fi = fit->second;
  auto it = RunUpperBound(fi.runs, page);
  SLED_CHECK(it != fi.runs.begin(), "index missing page on remove");
  --it;
  SLED_CHECK(page >= it->first && page < it->end(), "index missing page on remove");
  if (it->count == 1) {
    fi.runs.erase(it);
  } else if (page == it->first) {
    it->first += 1;
    it->count -= 1;
  } else if (page == it->end() - 1) {
    it->count -= 1;
  } else {
    const int64_t old_end = it->end();
    it->count = page - it->first;
    fi.runs.insert(std::next(it), PageRun{page + 1, old_end - page - 1});
  }
  auto dit = std::lower_bound(fi.dirty.begin(), fi.dirty.end(), page);
  if (dit != fi.dirty.end() && *dit == page) {
    fi.dirty.erase(dit);
  }
  if (fi.runs.empty()) {
    index_.erase(fit);
  }
}

void PageCache::DirtyInsert(FileId file, int64_t page) {
  FileIndex& fi = index_[file];
  auto it = std::lower_bound(fi.dirty.begin(), fi.dirty.end(), page);
  if (it == fi.dirty.end() || *it != page) {
    fi.dirty.insert(it, page);
  }
}

void PageCache::DropFrame(int32_t frame) {
  Frame& fr = frames_[frame];
  SLED_CHECK(fr.in_use_, "dropping non-resident frame");
  if (fr.pinned_) {
    --pinned_;
  }
  if (fr.in_flight_) {
    --in_flight_;
  }
  ListUnlink(frame);
  TableErase(fr.key_);
  fr.in_use_ = false;
  fr.dirty_ = false;
  fr.referenced_ = false;
  fr.pinned_ = false;
  fr.in_flight_ = false;
  fr.next_ = free_head_;
  free_head_ = frame;
  --size_;
}

void PageCache::Freshen(Frame* frame, bool dirty) {
  frame->dirty_ = frame->dirty_ || dirty;
  if (dirty) {
    DirtyInsert(frame->key_.file, frame->key_.page);
  }
  if (config_.policy == ReplacementPolicy::kLru) {
    MoveToBack(IndexOf(frame));
  } else {
    frame->referenced_ = true;
  }
}

std::optional<EvictedPage> PageCache::Insert(PageKey key, bool dirty, bool in_flight) {
  if (Frame* frame = Probe(key)) {
    // Re-insert of a resident page: refresh recency, accumulate dirtiness.
    Freshen(frame, dirty);
    return std::nullopt;
  }
  return InsertNew(key, dirty, in_flight);
}

std::optional<EvictedPage> PageCache::InsertIfAbsent(PageKey key, bool dirty,
                                                     bool in_flight) {
  if (FindFrame(key) != kNil) {
    return std::nullopt;
  }
  return InsertNew(key, dirty, in_flight);
}

std::optional<EvictedPage> PageCache::InsertNew(PageKey key, bool dirty, bool in_flight) {
  std::optional<EvictedPage> evicted;
  if (size_ >= config_.capacity_pages) {
    evicted = EvictOne();
  }
  const int32_t frame = free_head_;
  SLED_CHECK(frame != kNil, "frame table out of free frames");
  Frame& fr = frames_[frame];
  free_head_ = fr.next_;
  fr.key_ = key;
  fr.in_use_ = true;
  fr.dirty_ = dirty;
  fr.referenced_ = false;  // Clock inserts behind the hand, one sweep to live
  fr.pinned_ = false;
  fr.in_flight_ = in_flight;
  if (in_flight) {
    ++in_flight_;
  }
  ListPushBack(frame);
  TableInsert(key, frame);
  IndexInsert(key.file, key.page);
  if (dirty) {
    DirtyInsert(key.file, key.page);
  }
  ++size_;
  ++stats_.insertions;
  return evicted;
}

EvictedPage PageCache::EvictOne() {
  SLED_CHECK(head_ != kNil, "evicting from empty cache");
  // Walk the ring from the front, skipping pinned pages. Under Clock,
  // referenced pages get their bit cleared and cycle to the back (second
  // chance); a second sweep then finds a victim. Pin() bounds pinned pages
  // to half the capacity, so an unpinned victim always exists.
  for (int sweep = 0; sweep < 3; ++sweep) {
    int32_t f = head_;
    while (f != kNil) {
      Frame& fr = frames_[f];
      const int32_t next = fr.next_;
      if (fr.pinned_ || fr.in_flight_) {
        f = next;
        continue;
      }
      if (config_.policy == ReplacementPolicy::kClock && fr.referenced_) {
        fr.referenced_ = false;
        MoveToBack(f);  // re-examined later this same sweep, now unreferenced
        f = next;
        continue;
      }
      EvictedPage evicted{fr.key_, fr.dirty_};
      IndexRemove(fr.key_.file, fr.key_.page);
      DropFrame(f);
      ++stats_.evictions;
      if (evicted.dirty) {
        ++stats_.dirty_evictions;
      }
      return evicted;
    }
  }
  SLED_CHECK(false, "no evictable page (all pinned or in flight?)");
  return {};
}

void PageCache::MarkArrived(PageKey key) {
  Frame* frame = Probe(key);
  if (frame != nullptr && frame->in_flight_) {
    frame->in_flight_ = false;
    --in_flight_;
  }
}

bool PageCache::IsInFlight(PageKey key) const {
  const Frame* frame = Probe(key);
  return frame != nullptr && frame->in_flight_;
}

bool PageCache::Pin(PageKey key) { return Pin(Probe(key)); }

bool PageCache::Pin(Frame* frame) {
  if (frame == nullptr || pinned_ >= config_.capacity_pages / 2) {
    return false;
  }
  if (!frame->pinned_) {
    frame->pinned_ = true;
    ++pinned_;
  }
  return true;
}

void PageCache::Unpin(PageKey key) {
  Frame* frame = Probe(key);
  if (frame != nullptr && frame->pinned_) {
    frame->pinned_ = false;
    --pinned_;
  }
}

bool PageCache::IsPinned(PageKey key) const {
  const Frame* frame = Probe(key);
  return frame != nullptr && frame->pinned_;
}

void PageCache::MarkDirty(PageKey key) {
  Frame* frame = Probe(key);
  SLED_CHECK(frame != nullptr, "MarkDirty on non-resident page");
  MarkDirty(frame);
}

void PageCache::MarkDirty(Frame* frame) {
  frame->dirty_ = true;
  DirtyInsert(frame->key_.file, frame->key_.page);
}

bool PageCache::IsDirty(PageKey key) const {
  const Frame* frame = Probe(key);
  return frame != nullptr && frame->dirty_;
}

void PageCache::Remove(PageKey key) {
  const int32_t frame = FindFrame(key);
  if (frame == kNil) {
    return;
  }
  IndexRemove(key.file, key.page);
  DropFrame(frame);
}

void PageCache::RemoveFile(FileId file) {
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return;
  }
  for (const PageRun& run : fit->second.runs) {
    for (int64_t page = run.first; page < run.end(); ++page) {
      const int32_t frame = FindFrame({file, page});
      SLED_CHECK(frame != kNil, "index out of sync with frame table");
      DropFrame(frame);
    }
  }
  index_.erase(fit);
}

void PageCache::RemovePagesFrom(FileId file, int64_t first_page) {
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return;
  }
  FileIndex& fi = fit->second;
  auto it = RunLowerBound(fi.runs, first_page);
  // A run straddling first_page keeps its head and loses its tail.
  if (it != fi.runs.begin()) {
    auto prev = std::prev(it);
    const int64_t prev_end = prev->end();
    if (prev_end > first_page) {
      for (int64_t page = first_page; page < prev_end; ++page) {
        const int32_t frame = FindFrame({file, page});
        SLED_CHECK(frame != kNil, "index out of sync with frame table");
        DropFrame(frame);
      }
      prev->count = first_page - prev->first;
    }
  }
  for (auto run = it; run != fi.runs.end(); ++run) {
    for (int64_t page = run->first; page < run->end(); ++page) {
      const int32_t frame = FindFrame({file, page});
      SLED_CHECK(frame != kNil, "index out of sync with frame table");
      DropFrame(frame);
    }
  }
  fi.runs.erase(it, fi.runs.end());
  fi.dirty.erase(std::lower_bound(fi.dirty.begin(), fi.dirty.end(), first_page),
                 fi.dirty.end());
  if (fi.runs.empty()) {
    index_.erase(fit);
  }
}

int64_t PageCache::NextMissAfter(FileId file, int64_t page) const {
  if (auto run = ResidentRunAt(file, page); run.has_value()) {
    return run->end();  // runs are maximal: the page past the run is a miss
  }
  return page;
}

std::optional<PageRun> PageCache::ResidentRunAt(FileId file, int64_t page) const {
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return std::nullopt;
  }
  const auto& runs = fit->second.runs;
  auto it = RunUpperBound(runs, page);
  if (it == runs.begin()) {
    return std::nullopt;
  }
  --it;
  if (page >= it->end()) {
    return std::nullopt;
  }
  return *it;
}

std::optional<PageRun> PageCache::NextResidentRun(FileId file, int64_t from) const {
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return std::nullopt;
  }
  const auto& runs = fit->second.runs;
  auto it = RunUpperBound(runs, from);
  if (it != runs.begin()) {
    auto prev = std::prev(it);
    if (prev->end() > from) {
      return *prev;
    }
  }
  if (it == runs.end()) {
    return std::nullopt;
  }
  return *it;
}

std::vector<PageRun> PageCache::ResidentRunsOf(FileId file) const {
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return {};
  }
  return fit->second.runs;
}

int64_t PageCache::ResidentRunCountOf(FileId file) const {
  auto fit = index_.find(file);
  return fit == index_.end() ? 0 : static_cast<int64_t>(fit->second.runs.size());
}

std::vector<PageKey> PageCache::DirtyPagesOf(FileId file) const {
  std::vector<PageKey> dirty;
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return dirty;
  }
  dirty.reserve(fit->second.dirty.size());
  for (int64_t page : fit->second.dirty) {
    dirty.push_back({file, page});
  }
  return dirty;
}

std::vector<PageKey> PageCache::AllDirtyPages() const {
  // (file, page) order without touching clean entries: visit the files with
  // dirty pages in id order, then each ordered dirty list.
  std::vector<FileId> files;
  size_t total = 0;
  for (const auto& [file, fi] : index_) {
    if (!fi.dirty.empty()) {
      files.push_back(file);
      total += fi.dirty.size();
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<PageKey> dirty;
  dirty.reserve(total);
  for (FileId file : files) {
    for (int64_t page : index_.at(file).dirty) {
      dirty.push_back({file, page});
    }
  }
  return dirty;
}

void PageCache::Clear() {
  index_.clear();
  std::fill(table_.begin(), table_.end(), kNil);
  head_ = kNil;
  tail_ = kNil;
  size_ = 0;
  pinned_ = 0;
  in_flight_ = 0;
  ResetFrames();
}

void PageCache::MarkClean(PageKey key) {
  Frame* frame = Probe(key);
  SLED_CHECK(frame != nullptr, "MarkClean on non-resident page");
  frame->dirty_ = false;
  auto fit = index_.find(key.file);
  SLED_CHECK(fit != index_.end(), "index missing file on MarkClean");
  auto& dirty = fit->second.dirty;
  auto dit = std::lower_bound(dirty.begin(), dirty.end(), key.page);
  if (dit != dirty.end() && *dit == key.page) {
    dirty.erase(dit);
  }
}

std::vector<int64_t> PageCache::ResidentPagesOf(FileId file) const {
  std::vector<int64_t> pages;
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return pages;
  }
  for (const PageRun& run : fit->second.runs) {
    for (int64_t page = run.first; page < run.end(); ++page) {
      pages.push_back(page);
    }
  }
  return pages;
}

bool PageCache::ValidateIndex() const {
  int64_t indexed_pages = 0;
  for (const auto& [file, fi] : index_) {
    if (fi.runs.empty()) {
      return false;  // empty FileIndex entries must be garbage-collected
    }
    if (!std::is_sorted(fi.dirty.begin(), fi.dirty.end()) ||
        std::adjacent_find(fi.dirty.begin(), fi.dirty.end()) != fi.dirty.end()) {
      return false;  // dirty list must be sorted and duplicate-free
    }
    int64_t prev_end = std::numeric_limits<int64_t>::min();
    for (const PageRun& run : fi.runs) {
      if (run.count <= 0 || run.first <= prev_end) {
        return false;  // runs must be non-empty, ordered, and non-adjacent
      }
      prev_end = run.end();
      for (int64_t page = run.first; page < run.end(); ++page) {
        const int32_t f = FindFrame({file, page});
        if (f == kNil || !frames_[f].in_use_) {
          return false;
        }
        const bool in_dirty = std::binary_search(fi.dirty.begin(), fi.dirty.end(), page);
        if (frames_[f].dirty_ != in_dirty) {
          return false;
        }
        ++indexed_pages;
      }
    }
    for (int64_t page : fi.dirty) {
      if (!ResidentRunAt(file, page).has_value()) {
        return false;  // dirty pages must be resident
      }
    }
  }
  if (indexed_pages != size_) {
    return false;
  }
  // The recency list holds exactly the in-use frames, with consistent links.
  int64_t list_count = 0;
  int32_t prev = kNil;
  for (int32_t f = head_; f != kNil; prev = f, f = frames_[f].next_) {
    if (!frames_[f].in_use_ || frames_[f].prev_ != prev) {
      return false;
    }
    if (++list_count > size_) {
      return false;  // cycle
    }
  }
  if (list_count != size_ || tail_ != prev) {
    return false;
  }
  // The free list holds exactly the remaining frames.
  int64_t free_count = 0;
  for (int32_t f = free_head_; f != kNil; f = frames_[f].next_) {
    if (frames_[f].in_use_) {
      return false;
    }
    if (++free_count > static_cast<int64_t>(frames_.size())) {
      return false;  // cycle
    }
  }
  if (list_count + free_count != static_cast<int64_t>(frames_.size())) {
    return false;
  }
  // Every hash-table slot refers to an in-use frame; one slot per page.
  int64_t table_count = 0;
  for (int32_t f : table_) {
    if (f == kNil) {
      continue;
    }
    if (!frames_[f].in_use_) {
      return false;
    }
    ++table_count;
  }
  return table_count == size_;
}

}  // namespace sled
