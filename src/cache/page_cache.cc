#include "src/cache/page_cache.h"

#include <algorithm>
#include <limits>

namespace sled {

PageCache::PageCache(PageCacheConfig config) : config_(config) {
  SLED_CHECK(config_.capacity_pages > 0, "page cache needs capacity");
}

bool PageCache::Touch(PageKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  if (config_.policy == ReplacementPolicy::kLru) {
    order_.splice(order_.end(), order_, it->second.lru_it);
  } else {
    it->second.referenced = true;
  }
  return true;
}

void PageCache::IndexInsert(FileId file, int64_t page) {
  FileIndex& fi = index_[file];
  auto next = fi.runs.lower_bound(page);
  SLED_CHECK(next == fi.runs.end() || next->first != page, "index already holds page");
  bool merge_left = false;
  auto prev = fi.runs.end();
  if (next != fi.runs.begin()) {
    prev = std::prev(next);
    SLED_CHECK(prev->first + prev->second <= page, "index run overlaps inserted page");
    merge_left = prev->first + prev->second == page;
  }
  const bool merge_right = next != fi.runs.end() && next->first == page + 1;
  if (merge_left && merge_right) {
    prev->second += 1 + next->second;
    fi.runs.erase(next);
  } else if (merge_left) {
    prev->second += 1;
  } else if (merge_right) {
    const int64_t count = next->second + 1;
    fi.runs.erase(next);
    fi.runs.emplace(page, count);
  } else {
    fi.runs.emplace(page, 1);
  }
}

void PageCache::IndexRemove(FileId file, int64_t page) {
  auto fit = index_.find(file);
  SLED_CHECK(fit != index_.end(), "index missing file on remove");
  FileIndex& fi = fit->second;
  auto it = fi.runs.upper_bound(page);
  SLED_CHECK(it != fi.runs.begin(), "index missing page on remove");
  --it;
  const int64_t first = it->first;
  const int64_t count = it->second;
  SLED_CHECK(page >= first && page < first + count, "index missing page on remove");
  fi.runs.erase(it);
  if (page > first) {
    fi.runs.emplace(first, page - first);
  }
  if (page + 1 < first + count) {
    fi.runs.emplace(page + 1, first + count - page - 1);
  }
  fi.dirty.erase(page);
  if (fi.runs.empty()) {
    index_.erase(fit);
  }
}

void PageCache::DropEntry(const PageKey& key) {
  auto it = entries_.find(key);
  SLED_CHECK(it != entries_.end(), "dropping non-resident page");
  if (it->second.pinned) {
    --pinned_;
  }
  if (it->second.in_flight) {
    --in_flight_;
  }
  order_.erase(it->second.lru_it);
  entries_.erase(it);
}

std::optional<EvictedPage> PageCache::Insert(PageKey key, bool dirty, bool in_flight) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Re-insert of a resident page: refresh recency, accumulate dirtiness.
    it->second.dirty = it->second.dirty || dirty;
    if (dirty) {
      index_[key.file].dirty.insert(key.page);
    }
    if (config_.policy == ReplacementPolicy::kLru) {
      order_.splice(order_.end(), order_, it->second.lru_it);
    } else {
      it->second.referenced = true;
    }
    return std::nullopt;
  }

  std::optional<EvictedPage> evicted;
  if (size_pages() >= config_.capacity_pages) {
    evicted = EvictOne();
  }
  order_.push_back(key);
  Entry entry;
  entry.lru_it = std::prev(order_.end());
  entry.dirty = dirty;
  entry.referenced = false;  // Clock inserts behind the hand, one sweep to live
  entry.in_flight = in_flight;
  if (in_flight) {
    ++in_flight_;
  }
  entries_.emplace(key, entry);
  IndexInsert(key.file, key.page);
  if (dirty) {
    index_[key.file].dirty.insert(key.page);
  }
  ++stats_.insertions;
  return evicted;
}

EvictedPage PageCache::EvictOne() {
  SLED_CHECK(!order_.empty(), "evicting from empty cache");
  // Walk the ring from the front, skipping pinned pages. Under Clock,
  // referenced pages get their bit cleared and cycle to the back (second
  // chance); a second sweep then finds a victim. Pin() bounds pinned pages
  // to half the capacity, so an unpinned victim always exists.
  for (int sweep = 0; sweep < 3; ++sweep) {
    auto it = order_.begin();
    while (it != order_.end()) {
      auto entry_it = entries_.find(*it);
      SLED_CHECK(entry_it != entries_.end(), "ring out of sync with entry map");
      if (entry_it->second.pinned || entry_it->second.in_flight) {
        ++it;
        continue;
      }
      if (config_.policy == ReplacementPolicy::kClock && entry_it->second.referenced) {
        entry_it->second.referenced = false;
        auto next = std::next(it);
        order_.splice(order_.end(), order_, it);
        entry_it->second.lru_it = std::prev(order_.end());
        it = next;
        continue;
      }
      const PageKey victim = *it;
      EvictedPage evicted{victim, entry_it->second.dirty};
      order_.erase(it);
      entries_.erase(entry_it);
      IndexRemove(victim.file, victim.page);
      ++stats_.evictions;
      if (evicted.dirty) {
        ++stats_.dirty_evictions;
      }
      return evicted;
    }
  }
  SLED_CHECK(false, "no evictable page (all pinned or in flight?)");
  return {};
}

void PageCache::MarkArrived(PageKey key) {
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.in_flight) {
    it->second.in_flight = false;
    --in_flight_;
  }
}

bool PageCache::IsInFlight(PageKey key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.in_flight;
}

bool PageCache::Pin(PageKey key) {
  auto it = entries_.find(key);
  if (it == entries_.end() || pinned_ >= config_.capacity_pages / 2) {
    return false;
  }
  if (!it->second.pinned) {
    it->second.pinned = true;
    ++pinned_;
  }
  return true;
}

void PageCache::Unpin(PageKey key) {
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.pinned) {
    it->second.pinned = false;
    --pinned_;
  }
}

bool PageCache::IsPinned(PageKey key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.pinned;
}

void PageCache::MarkDirty(PageKey key) {
  auto it = entries_.find(key);
  SLED_CHECK(it != entries_.end(), "MarkDirty on non-resident page");
  it->second.dirty = true;
  index_[key.file].dirty.insert(key.page);
}

bool PageCache::IsDirty(PageKey key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.dirty;
}

void PageCache::Remove(PageKey key) {
  if (!entries_.contains(key)) {
    return;
  }
  DropEntry(key);
  IndexRemove(key.file, key.page);
}

void PageCache::RemoveFile(FileId file) {
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return;
  }
  for (const auto& [first, count] : fit->second.runs) {
    for (int64_t page = first; page < first + count; ++page) {
      DropEntry({file, page});
    }
  }
  index_.erase(fit);
}

void PageCache::RemovePagesFrom(FileId file, int64_t first_page) {
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return;
  }
  FileIndex& fi = fit->second;
  auto it = fi.runs.lower_bound(first_page);
  // A run straddling first_page keeps its head and loses its tail.
  if (it != fi.runs.begin()) {
    auto prev = std::prev(it);
    const int64_t prev_end = prev->first + prev->second;
    if (prev_end > first_page) {
      for (int64_t page = first_page; page < prev_end; ++page) {
        DropEntry({file, page});
      }
      prev->second = first_page - prev->first;
    }
  }
  while (it != fi.runs.end()) {
    for (int64_t page = it->first; page < it->first + it->second; ++page) {
      DropEntry({file, page});
    }
    it = fi.runs.erase(it);
  }
  fi.dirty.erase(fi.dirty.lower_bound(first_page), fi.dirty.end());
  if (fi.runs.empty()) {
    index_.erase(fit);
  }
}

int64_t PageCache::NextMissAfter(FileId file, int64_t page) const {
  if (auto run = ResidentRunAt(file, page); run.has_value()) {
    return run->end();  // runs are maximal: the page past the run is a miss
  }
  return page;
}

std::optional<PageRun> PageCache::ResidentRunAt(FileId file, int64_t page) const {
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return std::nullopt;
  }
  const auto& runs = fit->second.runs;
  auto it = runs.upper_bound(page);
  if (it == runs.begin()) {
    return std::nullopt;
  }
  --it;
  if (page >= it->first + it->second) {
    return std::nullopt;
  }
  return PageRun{it->first, it->second};
}

std::optional<PageRun> PageCache::NextResidentRun(FileId file, int64_t from) const {
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return std::nullopt;
  }
  const auto& runs = fit->second.runs;
  auto it = runs.upper_bound(from);
  if (it != runs.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second > from) {
      return PageRun{prev->first, prev->second};
    }
  }
  if (it == runs.end()) {
    return std::nullopt;
  }
  return PageRun{it->first, it->second};
}

std::vector<PageRun> PageCache::ResidentRunsOf(FileId file) const {
  std::vector<PageRun> runs;
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return runs;
  }
  runs.reserve(fit->second.runs.size());
  for (const auto& [first, count] : fit->second.runs) {
    runs.push_back(PageRun{first, count});
  }
  return runs;
}

int64_t PageCache::ResidentRunCountOf(FileId file) const {
  auto fit = index_.find(file);
  return fit == index_.end() ? 0 : static_cast<int64_t>(fit->second.runs.size());
}

std::vector<PageKey> PageCache::DirtyPagesOf(FileId file) const {
  std::vector<PageKey> dirty;
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return dirty;
  }
  dirty.reserve(fit->second.dirty.size());
  for (int64_t page : fit->second.dirty) {
    dirty.push_back({file, page});
  }
  return dirty;
}

std::vector<PageKey> PageCache::AllDirtyPages() const {
  // (file, page) order without touching clean entries: visit the files with
  // dirty pages in id order, then each ordered dirty set.
  std::vector<FileId> files;
  size_t total = 0;
  for (const auto& [file, fi] : index_) {
    if (!fi.dirty.empty()) {
      files.push_back(file);
      total += fi.dirty.size();
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<PageKey> dirty;
  dirty.reserve(total);
  for (FileId file : files) {
    for (int64_t page : index_.at(file).dirty) {
      dirty.push_back({file, page});
    }
  }
  return dirty;
}

void PageCache::Clear() {
  entries_.clear();
  index_.clear();
  order_.clear();
  pinned_ = 0;
  in_flight_ = 0;
}

void PageCache::MarkClean(PageKey key) {
  auto it = entries_.find(key);
  SLED_CHECK(it != entries_.end(), "MarkClean on non-resident page");
  it->second.dirty = false;
  auto fit = index_.find(key.file);
  SLED_CHECK(fit != index_.end(), "index missing file on MarkClean");
  fit->second.dirty.erase(key.page);
}

std::vector<int64_t> PageCache::ResidentPagesOf(FileId file) const {
  std::vector<int64_t> pages;
  auto fit = index_.find(file);
  if (fit == index_.end()) {
    return pages;
  }
  for (const auto& [first, count] : fit->second.runs) {
    for (int64_t page = first; page < first + count; ++page) {
      pages.push_back(page);
    }
  }
  return pages;
}

bool PageCache::ValidateIndex() const {
  size_t indexed_pages = 0;
  for (const auto& [file, fi] : index_) {
    if (fi.runs.empty()) {
      return false;  // empty FileIndex entries must be garbage-collected
    }
    int64_t prev_end = std::numeric_limits<int64_t>::min();
    for (const auto& [first, count] : fi.runs) {
      if (count <= 0 || first <= prev_end) {
        return false;  // runs must be non-empty, ordered, and non-adjacent
      }
      prev_end = first + count;
      for (int64_t page = first; page < first + count; ++page) {
        auto it = entries_.find({file, page});
        if (it == entries_.end() || it->second.dirty != fi.dirty.contains(page)) {
          return false;
        }
        ++indexed_pages;
      }
    }
    for (int64_t page : fi.dirty) {
      if (!ResidentRunAt(file, page).has_value()) {
        return false;  // dirty pages must be resident
      }
    }
  }
  return indexed_pages == entries_.size();
}

}  // namespace sled
