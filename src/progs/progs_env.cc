#include "src/progs/progs_env.h"

#include <cstdlib>

namespace sled {

bool ProgsEnabledFromEnv() {
  static const bool enabled = [] {
    const char* v = std::getenv("SLEDS_PROGS");
    return v != nullptr && atoi(v) != 0;
  }();
  return enabled;
}

Duration SyscallCostFromEnv(Duration fallback) {
  // The override is process-wide and immutable, like $SLEDS_IO_MODE: a
  // negative, zero, or unparsable value means "no override".
  static const long long override_ns = [] {
    const char* v = std::getenv("SLEDS_SYSCALL_COST");
    return v == nullptr ? -1LL : atoll(v);
  }();
  return override_ns > 0 ? Nanoseconds(override_ns) : fallback;
}

}  // namespace sled
