#include "src/progs/program.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace sled {
namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;

// wc's whitespace class, byte for byte (src/apps/wc.cc): the in-kernel
// reduction must return the exact counters the userspace oracle returns.
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f';
}

uint64_t GetBe(const char* in, int n) {
  uint64_t v = 0;
  for (int i = 0; i < n; ++i) {
    v = (v << 8) | static_cast<uint8_t>(in[i]);
  }
  return v;
}

int64_t ReadI64Le(std::string_view data, size_t at) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(data[at + static_cast<size_t>(i)]);
  }
  return static_cast<int64_t>(v);
}

}  // namespace

int64_t ProgElementSize(int bitpix) { return (bitpix < 0 ? -bitpix : bitpix) / 8; }

double ProgDecodeBe(const char* in, int bitpix) {
  switch (bitpix) {
    case 8:
      return static_cast<double>(GetBe(in, 1));
    case 16:
      return static_cast<double>(static_cast<int16_t>(GetBe(in, 2)));
    case 32:
      return static_cast<double>(static_cast<int32_t>(GetBe(in, 4)));
    case -32:
      return static_cast<double>(std::bit_cast<float>(static_cast<uint32_t>(GetBe(in, 4))));
    case -64:
      return std::bit_cast<double>(GetBe(in, 8));
    default:
      return 0.0;  // Create() rejects other widths
  }
}

CompletionProgram::CompletionProgram(const ProgSpec& spec) : spec_(spec) {}

Result<CompletionProgram> CompletionProgram::Create(const ProgSpec& spec) {
  if (spec.pattern.size() > static_cast<size_t>(kProgMaxPattern)) {
    return Err::kInval;
  }
  if (spec.chunk_bytes <= 0 || spec.limits.max_step_bytes <= 0 || spec.limits.max_resubmits < 0) {
    return Err::kInval;
  }
  if (spec.step_cost_ns_per_byte < 0.0) {
    return Err::kInval;
  }
  switch (spec.kind) {
    case ProgKind::kFindFirst:
      if (spec.pattern.empty()) {
        return Err::kInval;
      }
      break;
    case ProgKind::kCount:
      break;
    case ProgKind::kChainWalk:
      if (spec.block_bytes < 16 || spec.start_offset < 0) {
        return Err::kInval;
      }
      break;
    case ProgKind::kHistogram:
      if (spec.num_bins <= 0 || spec.num_bins > kProgMaxBins || spec.element_count < 0 ||
          spec.data_offset < 0) {
        return Err::kInval;
      }
      if (ProgElementSize(spec.bitpix) == 0 ||
          (spec.bitpix != 8 && spec.bitpix != 16 && spec.bitpix != 32 && spec.bitpix != -32 &&
           spec.bitpix != -64)) {
        return Err::kInval;
      }
      break;
  }
  CompletionProgram prog(spec);
  std::memcpy(prog.pattern_.data(), spec.pattern.data(), spec.pattern.size());
  prog.pattern_len_ = static_cast<int32_t>(spec.pattern.size());
  prog.elem_size_ = ProgElementSize(spec.bitpix);
  return prog;
}

CompletionProgram::Action CompletionProgram::Abort(ProgStatus status) {
  result_.status = status;
  return Action{.kind = Action::Kind::kAbort};
}

// Every kSeek is one program-driven chained read — the hop that would have
// been a Lseek+Read round trip through the app. Budgeted.
CompletionProgram::Action CompletionProgram::SeekNext(int64_t offset, int64_t length) {
  if (offset < 0 || length <= 0 || offset + length > file_size_) {
    return Abort(ProgStatus::kFaulted);
  }
  if (result_.resubmits >= spec_.limits.max_resubmits) {
    return Abort(ProgStatus::kAbortedResubmits);
  }
  ++result_.resubmits;
  return Action{.kind = Action::Kind::kSeek, .offset = offset, .length = length};
}

CompletionProgram::Action CompletionProgram::Start(int64_t file_size) {
  file_size_ = file_size;
  switch (spec_.kind) {
    case ProgKind::kFindFirst:
    case ProgKind::kCount:
      return Action{.kind = Action::Kind::kNext};
    case ProgKind::kChainWalk: {
      if (spec_.start_offset + spec_.block_bytes > file_size_) {
        return Abort(ProgStatus::kFaulted);
      }
      // The head block is the installed first read, not a chained one: a
      // resubmit count of N means N completions fed the *next* hop.
      return Action{.kind = Action::Kind::kSeek,
                    .offset = spec_.start_offset,
                    .length = spec_.block_bytes};
    }
    case ProgKind::kHistogram: {
      cursor_ = spec_.data_offset;
      elements_done_ = 0;
      phase_ = 0;
      lo_ = std::numeric_limits<double>::infinity();
      hi_ = -std::numeric_limits<double>::infinity();
      if (spec_.element_count == 0) {
        result_.min_value = 0.0;
        result_.max_value = 0.0;
        return Action{.kind = Action::Kind::kDone};
      }
      if (spec_.data_offset + spec_.element_count * elem_size_ > file_size_) {
        return Abort(ProgStatus::kFaulted);
      }
      return HistogramAdvance();
    }
  }
  return Abort(ProgStatus::kFaulted);
}

CompletionProgram::Action CompletionProgram::OnComplete(int64_t offset, std::string_view data) {
  ++result_.invocations;
  result_.bytes_examined += static_cast<int64_t>(data.size());
  if (result_.bytes_examined > spec_.limits.max_step_bytes) {
    return Abort(ProgStatus::kAbortedSteps);
  }
  switch (spec_.kind) {
    case ProgKind::kFindFirst:
      return FindFirstChunk(offset, data);
    case ProgKind::kCount:
      return CountChunk(data);
    case ProgKind::kChainWalk:
      return ChainWalkBlock(offset, data);
    case ProgKind::kHistogram:
      return HistogramChunk(data);
  }
  return Abort(ProgStatus::kFaulted);
}

CompletionProgram::Action CompletionProgram::OnPlanEnd() {
  return Action{.kind = Action::Kind::kDone};
}

CompletionProgram::Action CompletionProgram::FindFirstChunk(int64_t offset,
                                                            std::string_view data) {
  const std::string_view needle(pattern_.data(), static_cast<size_t>(pattern_len_));
  // Chunks are overlapped by pattern_len-1 bytes by the planner, so a match
  // straddling a nominal chunk boundary is seen by the chunk it starts in.
  const size_t pos = data.find(needle);
  if (pos == std::string_view::npos) {
    return Action{.kind = Action::Kind::kNext};
  }
  result_.found = true;
  result_.match_offset = offset + static_cast<int64_t>(pos);
  return Action{.kind = Action::Kind::kDone, .cancel_pending = true};
}

CompletionProgram::Action CompletionProgram::CountChunk(std::string_view data) {
  // Chunks arrive in file order (the kernel keeps kCount plans sequential),
  // so a single in_word_ carry reproduces wc's seam merge exactly.
  for (char ch : data) {
    if (ch == '\n') {
      ++result_.lines;
    }
    if (IsSpace(ch)) {
      in_word_ = false;
    } else if (!in_word_) {
      in_word_ = true;
      ++result_.words;
    }
  }
  result_.bytes += static_cast<int64_t>(data.size());
  return Action{.kind = Action::Kind::kNext};
}

CompletionProgram::Action CompletionProgram::ChainWalkBlock(int64_t offset,
                                                            std::string_view data) {
  // Block layout (workload chain_gen): [0,8) next-block byte offset (int64
  // LE, -1 = end of chain); [8,16) name length; [16,16+len) name bytes.
  if (data.size() < 16) {
    return Abort(ProgStatus::kFaulted);
  }
  const int64_t next = ReadI64Le(data, 0);
  const int64_t name_len = ReadI64Le(data, 8);
  if (name_len < 0 || 16 + name_len > static_cast<int64_t>(data.size())) {
    return Abort(ProgStatus::kFaulted);
  }
  const std::string_view name = data.substr(16, static_cast<size_t>(name_len));
  ++result_.blocks_visited;
  for (char c : name) {
    result_.chain_hash = (result_.chain_hash ^ static_cast<uint8_t>(c)) * kFnvPrime;
  }
  const std::string_view filter(pattern_.data(), static_cast<size_t>(pattern_len_));
  if (!filter.empty() && name.find(filter) != std::string_view::npos) {
    if (result_.names_matched < kProgMaxRecorded) {
      result_.matched_offsets[static_cast<size_t>(result_.names_matched)] = offset;
    }
    ++result_.names_matched;
    result_.matched_count = static_cast<int32_t>(
        std::min<int64_t>(result_.names_matched, kProgMaxRecorded));
  }
  if (next < 0) {
    return Action{.kind = Action::Kind::kDone};
  }
  return SeekNext(next, spec_.block_bytes);
}

CompletionProgram::Action CompletionProgram::HistogramAdvance() {
  const int64_t total = spec_.element_count;
  if (elements_done_ >= total) {
    if (phase_ == 0) {
      // Pass flip *inside the completion path*: the last min/max completion
      // directly submits the first binning read (fimhisto's pass chaining).
      if (!std::isfinite(lo_)) {
        lo_ = 0.0;
        hi_ = 0.0;
      }
      result_.min_value = lo_;
      result_.max_value = hi_;
      width_ = hi_ > lo_ ? (hi_ - lo_) / spec_.num_bins : 1.0;
      phase_ = 1;
      elements_done_ = 0;
      cursor_ = spec_.data_offset;
    } else {
      return Action{.kind = Action::Kind::kDone};
    }
  }
  // Whole elements per chunk: round the chunk down to an element multiple so
  // no pixel ever straddles two completions.
  int64_t elems = std::max<int64_t>(spec_.chunk_bytes / elem_size_, 1);
  elems = std::min(elems, total - elements_done_);
  return SeekNext(cursor_, elems * elem_size_);
}

CompletionProgram::Action CompletionProgram::HistogramChunk(std::string_view data) {
  if (data.size() % static_cast<size_t>(elem_size_) != 0) {
    return Abort(ProgStatus::kFaulted);
  }
  const int64_t elems = static_cast<int64_t>(data.size()) / elem_size_;
  const char* in = data.data();
  if (phase_ == 0) {
    for (int64_t i = 0; i < elems; ++i, in += elem_size_) {
      const double v = ProgDecodeBe(in, spec_.bitpix);
      lo_ = std::min(lo_, v);
      hi_ = std::max(hi_, v);
    }
  } else {
    for (int64_t i = 0; i < elems; ++i, in += elem_size_) {
      const double v = ProgDecodeBe(in, spec_.bitpix);
      int bin = static_cast<int>((v - lo_) / width_);
      bin = std::clamp(bin, 0, spec_.num_bins - 1);
      ++result_.bins[static_cast<size_t>(bin)];
    }
  }
  elements_done_ += elems;
  cursor_ += elems * elem_size_;
  return HistogramAdvance();
}

}  // namespace sled
