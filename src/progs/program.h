// Completion-path storage programs (BPF-for-storage style, PAPERS.md).
//
// A completion program is a small, sandboxed state machine that an
// application installs on an open file (SimKernel::InstallProgram) and that
// the kernel runs against I/O completions (SimKernel::RunProgram) instead of
// bouncing every chunk back across the app/kernel boundary. Programs can
//
//   * prune   — kFindFirst stops the scan at the first pattern hit and the
//               kernel cancels the readahead already queued past it;
//   * chain   — kChainWalk and kHistogram return the *next* read from inside
//               the completion path (pointer-chase hops, pass N -> pass N+1),
//               so a dependent I/O chain pays one syscall total instead of
//               two per hop;
//   * reduce  — kCount and kHistogram aggregate in the kernel and return
//               only counters.
//
// Sandbox contract (enforced here, not trusted from the app):
//   - no allocation after Create(): all state is fixed-size members, the
//     pattern is copied into a bounded buffer at install time;
//   - explicit resource bounds: max_step_bytes caps bytes examined and
//     max_resubmits caps program-driven chained reads; exceeding either
//     aborts the *program* (status != kOk) while the kernel and the file
//     stay fully consistent;
//   - programs only ever see bytes of the file they are installed on and
//     only ever request reads inside it (out-of-range chain pointers fault
//     the program, not the kernel).
//
// This layer is pure logic: it never touches the clock, the cache, or a
// device. The kernel owns scheduling, pricing (see CpuCosts.prog_*), fault
// handling, and replica routing for every byte a program consumes.
#ifndef SLEDS_SRC_PROGS_PROGRAM_H_
#define SLEDS_SRC_PROGS_PROGRAM_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/units.h"
#include "src/sleds/sled.h"

namespace sled {

inline constexpr int kProgMaxPattern = 128;    // install-time copy bound
inline constexpr int kProgMaxBins = 256;       // histogram reduction width
inline constexpr int kProgMaxRecorded = 64;    // matched-offset ring bound

enum class ProgKind : uint8_t {
  kFindFirst,  // prune: stop at the first pattern occurrence
  kCount,      // reduce: line/word/byte counters (wc semantics)
  kChainWalk,  // chain: pointer-chase over fixed-size linked blocks
  kHistogram,  // chain+reduce: min/max pass, then a binning pass
};

enum class ProgStatus : uint8_t {
  kOk,                // ran to completion
  kAbortedSteps,      // examined more than limits.max_step_bytes
  kAbortedResubmits,  // chained more reads than limits.max_resubmits
  kFaulted,           // malformed data (bad chain pointer / short block)
};

struct ProgLimits {
  int64_t max_step_bytes = 256 * kMiB;  // bytes a program may examine
  int32_t max_resubmits = 1 << 20;      // program-driven chained reads
};

struct ProgSpec {
  ProgKind kind = ProgKind::kCount;

  // kFindFirst needle / kChainWalk name filter (empty = match nothing).
  // Copied into a fixed buffer at install; longer than kProgMaxPattern is
  // rejected by InstallProgram.
  std::string pattern;

  // Linear-scan chunk size for the plan-driven kinds and the histogram
  // passes. The kernel clamps each chunk to the file.
  int64_t chunk_bytes = kDefaultProgChunk;

  // Plan-driven kinds only: consume chunks lowest-latency-first using the
  // picker's §4.2 ordering (SortByPickOrder) instead of file order, so a
  // pruning program drains cheap sections before expensive ones.
  bool order_by_sleds = false;
  RankBy rank_by = RankBy::kMean;

  // kChainWalk: offset of the head block and the fixed block size.
  int64_t start_offset = 0;
  int64_t block_bytes = kPageSize;

  // kHistogram: FITS-style data unit geometry. bitpix in {8,16,32,-32,-64}.
  int num_bins = 0;
  int bitpix = -32;
  int64_t data_offset = 0;
  int64_t element_count = 0;

  // Pricing: the app-declared compute cost of the program body, charged by
  // the kernel per byte examined (same contract as AppCpuCosts per-byte
  // charges, so a program variant and its userspace oracle pay the same
  // compute and differ only in crossings and copies).
  double step_cost_ns_per_byte = 0.0;

  ProgLimits limits;

  static constexpr int64_t kDefaultProgChunk = 64 * kKiB;
};

struct ProgResult {
  ProgStatus status = ProgStatus::kOk;

  // kFindFirst
  bool found = false;
  int64_t match_offset = -1;

  // kCount
  int64_t lines = 0;
  int64_t words = 0;
  int64_t bytes = 0;

  // kChainWalk
  int64_t blocks_visited = 0;
  int64_t names_matched = 0;
  uint64_t chain_hash = 1469598103934665603ULL;  // FNV-1a basis, order-sensitive
  std::array<int64_t, kProgMaxRecorded> matched_offsets{};
  int32_t matched_count = 0;  // total recorded (capped at kProgMaxRecorded)

  // kHistogram
  double min_value = 0.0;
  double max_value = 0.0;
  std::array<int64_t, kProgMaxBins> bins{};

  // Execution accounting (all kinds).
  int64_t bytes_examined = 0;  // "steps" against limits.max_step_bytes
  int32_t resubmits = 0;       // program-driven chained reads issued
  int32_t invocations = 0;     // completion-path invocations
};

// The sandboxed machine itself. Create() validates the spec and copies the
// pattern; afterwards execution is allocation-free. The kernel drives it:
//
//   plan-driven (kFindFirst, kCount): the kernel builds the chunk plan
//     (sequential or SLED-ordered) and feeds each chunk to OnComplete();
//     OnPlanEnd() finalizes when the plan is exhausted without kDone.
//   self-driven (kChainWalk, kHistogram): Start() names the first read and
//     every OnComplete() may return kSeek naming the next one — the chained
//     resubmit that replaces an app round trip.
class CompletionProgram {
 public:
  struct Action {
    enum class Kind : uint8_t {
      kNext,  // plan-driven: feed me the next planned chunk
      kSeek,  // self-driven: read [offset, offset+length) next
      kDone,  // finished; result is final
      kAbort, // resource bound hit or data fault; result holds the status
    };
    Kind kind = Kind::kNext;
    int64_t offset = 0;
    int64_t length = 0;
    // kDone only: queued I/O for this file past the consumed point is now
    // useless (early exit) — the kernel cancels it.
    bool cancel_pending = false;
  };

  static Result<CompletionProgram> Create(const ProgSpec& spec);

  // kChainWalk / kHistogram issue their own reads.
  bool self_driven() const {
    return spec_.kind == ProgKind::kChainWalk || spec_.kind == ProgKind::kHistogram;
  }

  // First read of a self-driven program (kSeek), or kNext for plan-driven
  // kinds. `file_size` bounds every subsequent seek.
  Action Start(int64_t file_size);

  // One completed chunk of file bytes at `offset`. Enforces the step budget
  // before examining data and the resubmit budget before chaining.
  Action OnComplete(int64_t offset, std::string_view data);

  // Plan-driven kinds: the plan ran dry without an early exit.
  Action OnPlanEnd();

  const ProgSpec& spec() const { return spec_; }
  const ProgResult& result() const { return result_; }

 private:
  explicit CompletionProgram(const ProgSpec& spec);

  Action Abort(ProgStatus status);
  Action SeekNext(int64_t offset, int64_t length);

  Action FindFirstChunk(int64_t offset, std::string_view data);
  Action CountChunk(std::string_view data);
  Action ChainWalkBlock(int64_t offset, std::string_view data);
  Action HistogramChunk(std::string_view data);
  Action HistogramAdvance();  // next seek of the current pass, or pass flip

  ProgSpec spec_;
  ProgResult result_;

  // Fixed-size sandbox state — no allocation after Create().
  std::array<char, kProgMaxPattern> pattern_{};
  int32_t pattern_len_ = 0;
  int64_t file_size_ = 0;

  // kCount: word-seam carry between sequential chunks.
  bool in_word_ = false;

  // kChainWalk
  int64_t next_block_ = -1;

  // kHistogram
  int phase_ = 0;              // 0 = min/max, 1 = bin
  int64_t elem_size_ = 4;
  int64_t elements_done_ = 0;  // within the current pass
  int64_t cursor_ = 0;         // next byte offset of the current pass
  double lo_ = 0.0;
  double hi_ = 0.0;
  double width_ = 1.0;
};

// The exact big-endian FITS pixel decode used by src/fits (duplicated here
// because progs sits below the kernel in the layering; progs_test pins the
// two against each other). Reads ElementSize(bitpix) bytes from `in`.
double ProgDecodeBe(const char* in, int bitpix);
int64_t ProgElementSize(int bitpix);

}  // namespace sled

#endif  // SLEDS_SRC_PROGS_PROGRAM_H_
