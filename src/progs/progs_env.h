// Cached process-wide environment knobs for the completion-program facility.
//
// Same contract as ResolveIoMode / FaultPlan::FromEnv (the PR 7 pattern):
// each variable is read from the environment exactly once per process via a
// magic static, so constructing thousands of kernels (shard worlds, the
// open-loop engine) never re-enters getenv on a hot path and every world in
// a process sees one consistent setting.
#ifndef SLEDS_SRC_PROGS_PROGS_ENV_H_
#define SLEDS_SRC_PROGS_PROGS_ENV_H_

#include "src/common/sim_time.h"

namespace sled {

// $SLEDS_PROGS: nonzero = tools that have a completion-program variant
// (shell wc/grep/chain, fimhisto) default to using it. The explicit -p flag
// turns a single invocation on regardless.
bool ProgsEnabledFromEnv();

// $SLEDS_SYSCALL_COST: per-syscall crossing cost in nanoseconds, applied to
// CpuCosts.syscall_overhead at kernel construction. Unset or unparsable
// returns `fallback` (the historical 4 us), keeping faults-off BENCH output
// byte-identical when the knob is absent.
Duration SyscallCostFromEnv(Duration fallback);

}  // namespace sled

#endif  // SLEDS_SRC_PROGS_PROGS_ENV_H_
