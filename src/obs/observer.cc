#include "src/obs/observer.h"

#include <cstdio>

#include "src/common/log.h"

namespace sled {
namespace {

// Level/device names become metric-key segments; keep them to one token.
std::string Sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

Observer::Observer(const SimClock* clock, size_t trace_capacity)
    : clock_(clock), trace_(trace_capacity) {
  SLED_CHECK(clock_ != nullptr, "observer needs a clock");
}

void Observer::SetLevelName(int level, std::string name) {
  if (level < 0) {
    return;
  }
  if (static_cast<int>(level_names_.size()) <= level) {
    level_names_.resize(static_cast<size_t>(level) + 1);
  }
  level_names_[static_cast<size_t>(level)] = Sanitize(name);
}

std::string_view Observer::LevelName(int level) const {
  if (level < 0 || level >= static_cast<int>(level_names_.size())) {
    return "unknown";
  }
  return level_names_[static_cast<size_t>(level)];
}

std::string Observer::LevelKey(int level, std::string_view suffix) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "level.%d.", level);
  std::string key = buf;
  key += LevelName(level);
  key += '.';
  key += suffix;
  return key;
}

void Observer::SyscallEnter(int pid, const char* name) {
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kSyscallEnter;
  e.pid = pid;
  e.tag = name;
  trace_.Push(std::move(e));
}

void Observer::SyscallExit(int pid, const char* name, Duration latency) {
  metrics_.Observe(std::string("syscall.") + name, latency);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kSyscallExit;
  e.pid = pid;
  e.dur = latency;
  e.tag = name;
  trace_.Push(std::move(e));
}

void Observer::PageIn(int pid, uint64_t file, int64_t first_page, int64_t pages, int level,
                      Duration device_time) {
  metrics_.Add("kernel.pageins");
  metrics_.Add("kernel.pages_paged_in", pages);
  if (level >= 0) {
    metrics_.Add(LevelKey(level, "pageins"));
    metrics_.Add(LevelKey(level, "pagein_pages"), pages);
    metrics_.Observe(LevelKey(level, "pagein_time"), device_time);
  }
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kPageIn;
  e.pid = pid;
  e.level = level;
  e.file = file;
  e.a = first_page;
  e.b = pages;
  e.dur = device_time;
  trace_.Push(std::move(e));
}

void Observer::Readahead(int pid, uint64_t file, int64_t first_page, int64_t pages) {
  metrics_.Add("kernel.readahead_batches");
  metrics_.Add("kernel.readahead_pages", pages);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kReadahead;
  e.pid = pid;
  e.file = file;
  e.a = first_page;
  e.b = pages;
  trace_.Push(std::move(e));
}

void Observer::WritebackQueued(uint64_t file, int64_t page) {
  metrics_.Add("kernel.writeback_queued");
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kWritebackQueue;
  e.file = file;
  e.a = page;
  trace_.Push(std::move(e));
}

void Observer::WritebackFlush(int pid, int64_t pages, int64_t runs, Duration device_time) {
  metrics_.Add("kernel.writeback_flushes");
  metrics_.Add("kernel.writeback_pages", pages);
  metrics_.Add("kernel.writeback_runs", runs);
  metrics_.Observe("writeback.flush_time", device_time);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kWritebackFlush;
  e.pid = pid;
  e.a = pages;
  e.b = runs;
  e.dur = device_time;
  trace_.Push(std::move(e));
}

void Observer::DeviceTransfer(std::string_view device, bool write, int64_t offset, int64_t nbytes,
                              Duration service_time, bool repositioned) {
  std::string key = "dev.";
  key += Sanitize(device);
  const size_t base_len = key.size();
  key += write ? ".writes" : ".reads";
  metrics_.Add(key);
  key.resize(base_len);
  key += write ? ".bytes_written" : ".bytes_read";
  metrics_.Add(key, nbytes);
  if (repositioned) {
    key.resize(base_len);
    key += ".repositions";
    metrics_.Add(key);
  }
  key.resize(base_len);
  key += write ? ".write_time" : ".read_time";
  metrics_.Observe(key, service_time);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = write ? TraceKind::kDeviceWrite : TraceKind::kDeviceRead;
  e.a = offset;
  e.b = nbytes;
  e.dur = service_time;
  e.tag = std::string(device);
  trace_.Push(std::move(e));
}

void Observer::SledScan(int pid, uint64_t file, int64_t pages, int64_t runs) {
  metrics_.Add("kernel.sled_scans");
  metrics_.Add("kernel.sled_scan_pages", pages);
  // Run-length accounting: how many SLED segments the scan produced. The
  // pages/runs ratio is the fragmentation the run-indexed scan exploits.
  metrics_.Add("kernel.sled_scan_runs", runs);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kSledScan;
  e.pid = pid;
  e.file = file;
  e.a = runs;
  e.b = pages;
  trace_.Push(std::move(e));
}

void Observer::VfsResolve() { metrics_.Add("vfs.resolves"); }

void Observer::CacheGauges(int64_t size_pages, int64_t capacity_pages, int64_t pinned_pages,
                           int64_t in_flight_pages, int64_t dirty_pages,
                           int64_t resident_files) {
  metrics_.SetGauge("cache.size_pages", size_pages);
  metrics_.SetGauge("cache.capacity_pages", capacity_pages);
  metrics_.SetGauge("cache.pinned_pages", pinned_pages);
  metrics_.SetGauge("cache.in_flight_pages", in_flight_pages);
  metrics_.SetGauge("cache.dirty_pages", dirty_pages);
  metrics_.SetGauge("cache.resident_files", resident_files);
}

void Observer::IoSubmit(int pid, std::string_view queue, uint64_t file, int64_t first_page,
                        int64_t pages, bool write, int64_t depth) {
  std::string key = "io.";
  key += Sanitize(queue);
  const size_t base_len = key.size();
  key += ".submitted";
  metrics_.Add(key);
  key.resize(base_len);
  key += ".depth";
  metrics_.SetGauge(key, depth);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kIoSubmit;
  e.pid = pid;
  e.file = file;
  e.a = first_page;
  e.b = pages;
  e.tag = std::string(queue);
  e.level = write ? 1 : 0;  // repurposed: 1 = write request
  trace_.Push(std::move(e));
}

void Observer::IoDispatch(std::string_view queue, int64_t pages, int64_t parts, int64_t depth,
                          Duration service_time) {
  std::string key = "io.";
  key += Sanitize(queue);
  const size_t base_len = key.size();
  key += ".dispatches";
  metrics_.Add(key);
  key.resize(base_len);
  key += ".dispatched_pages";
  metrics_.Add(key, pages);
  if (parts > 1) {
    key.resize(base_len);
    key += ".merged";
    metrics_.Add(key, parts - 1);
  }
  key.resize(base_len);
  key += ".depth";
  metrics_.SetGauge(key, depth);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kIoDispatch;
  e.a = pages;
  e.b = parts;
  e.dur = service_time;
  e.tag = std::string(queue);
  trace_.Push(std::move(e));
}

void Observer::IoWait(int pid, uint64_t file, Duration waited) {
  metrics_.Add("kernel.io_waits");
  metrics_.Observe("io.wait_time", waited);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kIoWait;
  e.pid = pid;
  e.file = file;
  e.dur = waited;
  trace_.Push(std::move(e));
}

void Observer::DeviceError(std::string_view device, bool write, Err error) {
  std::string key = "dev.";
  key += Sanitize(device);
  key += write ? ".write_errors" : ".read_errors";
  metrics_.Add(key);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kDeviceError;
  e.level = write ? 1 : 0;  // repurposed: 1 = write op
  e.tag = std::string(device);
  e.tag += ':';
  e.tag += ErrName(error);
  trace_.Push(std::move(e));
}

void Observer::IoRetry(int pid, uint64_t file, int attempt, Err error) {
  metrics_.Add("kernel.io_retries");
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kIoRetry;
  e.pid = pid;
  e.file = file;
  e.a = attempt;
  e.tag = ErrName(error);
  trace_.Push(std::move(e));
}

void Observer::WritebackError(uint64_t file, int64_t first_page, int64_t pages, bool lost) {
  metrics_.Add("kernel.writeback_errors");
  if (lost) {
    metrics_.Add("kernel.writeback_lost", pages);
  }
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kWritebackError;
  e.file = file;
  e.a = first_page;
  e.b = pages;
  e.level = lost ? 1 : 0;  // repurposed: 1 = pages dropped past the attempt cap
  trace_.Push(std::move(e));
}

void Observer::ReplicaDegradedRead(std::string_view fs, int replica, int64_t bytes) {
  metrics_.Add("replica.degraded_reads");
  metrics_.Add("replica.degraded_bytes", bytes);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kReplicaDegraded;
  e.level = replica;  // repurposed: replica index that served the read
  e.b = bytes;
  e.tag = std::string(fs);
  trace_.Push(std::move(e));
}

void Observer::ReplicaStale(std::string_view fs, int replica, int64_t bytes) {
  metrics_.Add("replica.stale_marks");
  metrics_.Add("replica.stale_bytes", bytes);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kReplicaStale;
  e.level = replica;  // repurposed: replica index left stale
  e.b = bytes;
  e.tag = std::string(fs);
  trace_.Push(std::move(e));
}

void Observer::ReplicaRecovery(std::string_view fs, int replica, int64_t bytes) {
  metrics_.Add("replica.recovery_runs");
  metrics_.Add("replica.recovery_bytes", bytes);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kReplicaRecovery;
  e.level = replica;  // repurposed: replica index re-synced
  e.b = bytes;
  e.tag = std::string(fs);
  trace_.Push(std::move(e));
}

void Observer::ReplicaHedge(std::string_view fs, bool win) {
  metrics_.Add("replica.hedges");
  if (win) {
    metrics_.Add("replica.hedge_wins");
  }
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kReplicaHedge;
  e.level = win ? 1 : 0;  // repurposed: 1 = the hedge won
  e.tag = std::string(fs);
  trace_.Push(std::move(e));
}

void Observer::ProgInstall(int pid, uint64_t file, int kind) {
  metrics_.Add("progs.installed");
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kProgInstall;
  e.pid = pid;
  e.file = file;
  e.a = kind;  // repurposed: ProgKind ordinal
  trace_.Push(std::move(e));
}

void Observer::ProgResubmit(int pid, uint64_t file, int64_t offset, int64_t bytes) {
  metrics_.Add("progs.resubmits");
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kProgResubmit;
  e.pid = pid;
  e.file = file;
  e.a = offset;
  e.b = bytes;
  trace_.Push(std::move(e));
}

void Observer::ProgDone(int pid, uint64_t file, int kind, bool aborted, int64_t invocations,
                        int64_t resubmits, int64_t bytes_examined) {
  metrics_.Add("progs.runs");
  if (aborted) {
    metrics_.Add("progs.aborts");
  }
  metrics_.Add("progs.invocations", invocations);
  metrics_.Add("progs.bytes_examined", bytes_examined);
  TraceRecord e;
  e.at = clock_->Now();
  e.kind = TraceKind::kProgDone;
  e.pid = pid;
  e.file = file;
  e.level = aborted ? 1 : 0;  // repurposed: 1 = resource bound hit
  e.a = kind;                 // repurposed: ProgKind ordinal
  e.b = resubmits;
  trace_.Push(std::move(e));
}

std::string Observer::MetricsJson() const {
  std::string out = metrics_.ToJson();
  SLED_CHECK(!out.empty() && out.back() == '}', "malformed metrics json");
  out.pop_back();
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                ",  \"trace\": {\"total\": %lld, \"retained\": %lld, \"dropped\": %lld}\n}",
                static_cast<long long>(trace_.total()),
                static_cast<long long>(trace_.size()),
                static_cast<long long>(trace_.dropped()));
  out += buf;
  return out;
}

}  // namespace sled
