// Merge-on-export for sharded observability. Each shard's worlds own a full
// Observer (metric registry + trace ring) that dies with the world's kernel;
// an ObsAccumulator is the thread-confined per-shard sink those observers are
// absorbed into, and per-shard accumulators merge into one for export once
// the workers have joined.
//
// Every merge operation is commutative and associative (counter adds,
// bucket-wise histogram adds, min/max, trace-total sums), so the exported
// JSON is byte-identical regardless of shard count, world placement, or merge
// order — the property that lets an N-shard run be diffed against the
// single-shard oracle as a string.
#ifndef SLEDS_SRC_OBS_MERGE_H_
#define SLEDS_SRC_OBS_MERGE_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"

namespace sled {

class Observer;

struct ObsAccumulator {
  MetricRegistry metrics;
  // TraceRing contents stay with their world (events are debugging state, not
  // aggregate results); the export keeps the same summary block
  // Observer::MetricsJson emits, summed across absorbed rings.
  int64_t trace_total = 0;
  int64_t trace_retained = 0;
  int64_t trace_dropped = 0;
  int64_t observers_absorbed = 0;

  // Fold one world's observer in (called on the shard thread that owns both).
  void Absorb(const Observer& obs);
  // Fold another accumulator in (called after workers join).
  void Absorb(const ObsAccumulator& other);

  // Same shape as Observer::MetricsJson: the merged registry plus the summed
  // trace block.
  std::string MetricsJson() const;
};

}  // namespace sled

#endif  // SLEDS_SRC_OBS_MERGE_H_
