// Observer: the kernel-wide observability facade. Owns the event-trace ring
// and the metric registry and exposes one typed hook per instrumented event;
// the kernel, the VFS, the file systems, and the storage devices all report
// through the same Observer so a single export shows where simulated time
// went per syscall, per device, and per storage level.
//
// Hooks read the SimClock to timestamp events but never advance it: tracing
// is harness instrumentation, not modeled CPU work, so an instrumented run
// and an uninstrumented one take identical simulated time.
#ifndef SLEDS_SRC_OBS_OBSERVER_H_
#define SLEDS_SRC_OBS_OBSERVER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/sim_time.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace sled {

class Observer {
 public:
  explicit Observer(const SimClock* clock, size_t trace_capacity = 16384);

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  const SimClock* clock() const { return clock_; }

  MetricRegistry& metrics() { return metrics_; }
  const MetricRegistry& metrics() const { return metrics_; }
  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }

  // Storage-level names, registered by the kernel as sleds_table rows are
  // created; used to label per-level metrics and the iostat table.
  void SetLevelName(int level, std::string name);
  std::string_view LevelName(int level) const;
  int num_levels() const { return static_cast<int>(level_names_.size()); }

  // ---- hooks ----
  void SyscallEnter(int pid, const char* name);
  void SyscallExit(int pid, const char* name, Duration latency);
  void PageIn(int pid, uint64_t file, int64_t first_page, int64_t pages, int level,
              Duration device_time);
  void Readahead(int pid, uint64_t file, int64_t first_page, int64_t pages);
  void WritebackQueued(uint64_t file, int64_t page);
  void WritebackFlush(int pid, int64_t pages, int64_t runs, Duration device_time);
  void DeviceTransfer(std::string_view device, bool write, int64_t offset, int64_t nbytes,
                      Duration service_time, bool repositioned);
  // `runs` = SLED segments the scan emitted (residency/level run count).
  void SledScan(int pid, uint64_t file, int64_t pages, int64_t runs);
  void VfsResolve();

  // Frame-table occupancy snapshot (shell `stats`, the scale bench). Fired on
  // demand only: the first gauge creates the JSON "gauges" section, which the
  // figure benches must keep absent for byte-identical exports.
  void CacheGauges(int64_t size_pages, int64_t capacity_pages, int64_t pinned_pages,
                   int64_t in_flight_pages, int64_t dirty_pages, int64_t resident_files);

  // ---- I/O engine hooks (fire only in the async engine modes) ----
  // A request entered a device queue; `depth` is the queue depth after.
  void IoSubmit(int pid, std::string_view queue, uint64_t file, int64_t first_page, int64_t pages,
                bool write, int64_t depth);
  // A merged batch of `parts` requests left the queue for the device.
  void IoDispatch(std::string_view queue, int64_t pages, int64_t parts, int64_t depth,
                  Duration service_time);
  // A process blocked until an in-flight page arrived.
  void IoWait(int pid, uint64_t file, Duration waited);

  // ---- error-path hooks (fire only under an active fault plan) ----
  // A device rejected a transfer (fault plan said no).
  void DeviceError(std::string_view device, bool write, Err error);
  // The kernel re-issued a failed store transfer; `attempt` counts from 1.
  void IoRetry(int pid, uint64_t file, int attempt, Err error);
  // A writeback run failed and its pages were re-queued (or, past the
  // attempt cap, counted lost).
  void WritebackError(uint64_t file, int64_t first_page, int64_t pages, bool lost);

  // ---- replication hooks (fire only on a replicated mount) ----
  // A read run failed over to `replica` after better-ranked copies were
  // skipped (stale) or errored.
  void ReplicaDegradedRead(std::string_view fs, int replica, int64_t bytes);
  // A replica write failed: `bytes` on `replica` are stale pending re-sync.
  void ReplicaStale(std::string_view fs, int replica, int64_t bytes);
  // Background recovery re-synced `bytes` onto `replica`.
  void ReplicaRecovery(std::string_view fs, int replica, int64_t bytes);
  // A hedged read was issued to the second-ranked replica; `win` = the hedge
  // beat the straggling primary to the deadline-adjusted finish.
  void ReplicaHedge(std::string_view fs, bool win);

  // ---- completion-program hooks (fire only when programs are used) ----
  // A program was installed on an open file; `kind` is the ProgKind ordinal.
  void ProgInstall(int pid, uint64_t file, int kind);
  // A program chained a dependent read from the completion path (the hop
  // that would have been an app round trip).
  void ProgResubmit(int pid, uint64_t file, int64_t offset, int64_t bytes);
  // A program run finished (or was aborted by its resource bounds).
  void ProgDone(int pid, uint64_t file, int kind, bool aborted, int64_t invocations,
                int64_t resubmits, int64_t bytes_examined);

  // Combined export: the metric registry plus a trace summary block.
  std::string MetricsJson() const;

 private:
  // "level.<id>.<suffix>", using the registered name when present.
  std::string LevelKey(int level, std::string_view suffix) const;

  const SimClock* clock_;
  TraceRing trace_;
  MetricRegistry metrics_;
  std::vector<std::string> level_names_;
};

}  // namespace sled

#endif  // SLEDS_SRC_OBS_OBSERVER_H_
