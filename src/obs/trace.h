// Deterministic event-trace ring buffer: timestamped records of syscall
// entry/exit, page-ins, readahead batches, writeback activity, raw device
// transfers, and SLED scans. This is the per-request record stream that
// aggregate counters cannot replace when attributing latency across layers
// (cf. Boukhobza & Timsit's per-request disk traces, and Borge et al.'s
// cross-layer SSD variability study).
//
// Timestamps come from the SimClock; pushing or dumping events never
// advances it. The ring has fixed capacity and drops the oldest events,
// keeping a monotonic sequence number so drops are visible in dumps. All
// rendering is integer-valued: two identical runs dump byte-identical text.
#ifndef SLEDS_SRC_OBS_TRACE_H_
#define SLEDS_SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/sim_time.h"

namespace sled {

enum class TraceKind : uint8_t {
  kSyscallEnter,
  kSyscallExit,
  kPageIn,
  kReadahead,
  kWritebackQueue,
  kWritebackFlush,
  kDeviceRead,
  kDeviceWrite,
  kSledScan,
  kIoSubmit,
  kIoDispatch,
  kIoWait,
  kDeviceError,
  kIoRetry,
  kWritebackError,
  kReplicaDegraded,
  kReplicaStale,
  kReplicaRecovery,
  kReplicaHedge,
  kProgInstall,
  kProgResubmit,
  kProgDone,
};

std::string_view TraceKindName(TraceKind kind);

struct TraceRecord {
  TimePoint at;            // simulated time of the event
  TraceKind kind = TraceKind::kSyscallEnter;
  int32_t pid = 0;         // triggering process, 0 = kernel
  int32_t level = -1;      // global storage level, -1 when not applicable
  uint64_t file = 0;       // FileId, 0 when not applicable
  int64_t a = 0;           // kind-specific: page / byte offset
  int64_t b = 0;           // kind-specific: page count / byte count
  Duration dur;            // service time or syscall latency, 0 when n/a
  std::string tag;         // syscall or device name, may be empty
};

class TraceRing {
 public:
  explicit TraceRing(size_t capacity);

  void Push(TraceRecord event);

  size_t size() const { return events_.size(); }
  size_t capacity() const { return capacity_; }
  // Events ever pushed / dropped by overflow.
  int64_t total() const { return total_; }
  int64_t dropped() const { return total_ - static_cast<int64_t>(events_.size()); }

  // Retained events, oldest first.
  std::vector<TraceRecord> Snapshot() const;

  // CSV dump of the last `max_events` retained events (default: all), with a
  // header line. Columns: seq,t_ns,kind,pid,level,file,a,b,dur_ns,tag.
  std::string DumpCsv(size_t max_events = SIZE_MAX) const;

  void Clear();

 private:
  size_t capacity_;
  std::vector<TraceRecord> events_;  // ring storage
  size_t head_ = 0;                 // index of the oldest event once full
  int64_t total_ = 0;
};

}  // namespace sled

#endif  // SLEDS_SRC_OBS_TRACE_H_
