#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace sled {
namespace {

void AppendJsonKey(std::string* out, std::string_view key) {
  out->push_back('"');
  for (char c : key) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
    }
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendInt(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out->append(buf);
}

}  // namespace

int LatencyHistogram::BucketIndex(int64_t nanos) {
  const uint64_t v = nanos <= 0 ? 0 : static_cast<uint64_t>(nanos);
  if (v < kSubBuckets) {
    return static_cast<int>(v);  // exact buckets for 0..3 ns
  }
  const int msb = 63 - std::countl_zero(v);
  const int sub = static_cast<int>((v >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  const int index = (msb - kSubBucketBits + 1) * kSubBuckets + sub;
  return std::min(index, kNumBuckets - 1);
}

int64_t LatencyHistogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) {
    return index;
  }
  const int msb = index / kSubBuckets + kSubBucketBits - 1;
  const int sub = index % kSubBuckets;
  const int64_t base = int64_t{1} << msb;
  const int64_t step = int64_t{1} << (msb - kSubBucketBits);
  return base + step * (sub + 1) - 1;
}

void LatencyHistogram::Record(Duration d) {
  const int64_t nanos = std::max<int64_t>(0, d.nanos());
  ++buckets_[static_cast<size_t>(BucketIndex(nanos))];
  ++count_;
  sum_ += Duration(nanos);
  if (count_ == 1 || Duration(nanos) < min_) {
    min_ = Duration(nanos);
  }
  if (Duration(nanos) > max_) {
    max_ = Duration(nanos);
  }
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[static_cast<size_t>(i)] += other.buckets_[static_cast<size_t>(i)];
  }
  if (count_ == 0 || other.min_ < min_) {
    min_ = other.min_;
  }
  if (other.max_ > max_) {
    max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Duration LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) {
    return Duration();
  }
  const int64_t target =
      std::clamp<int64_t>(static_cast<int64_t>(q * static_cast<double>(count_) + 0.999999),
                          1, count_);
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[static_cast<size_t>(i)];
    if (cumulative >= target) {
      const int64_t upper = BucketUpperBound(i);
      return Duration(std::clamp(upper, min_.nanos(), max_.nanos()));
    }
  }
  return max_;
}

void MetricRegistry::Add(std::string_view counter, int64_t delta) {
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), delta);
  } else {
    it->second += delta;
  }
}

void MetricRegistry::SetGauge(std::string_view gauge, int64_t value) {
  auto it = gauges_.find(gauge);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(gauge), value);
  } else {
    it->second = value;
  }
}

void MetricRegistry::Observe(std::string_view histogram, Duration d) {
  auto it = histograms_.find(histogram);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(histogram), LatencyHistogram{}).first;
  }
  it->second.Record(d);
}

void MetricRegistry::MergeHistogram(std::string_view histogram, const LatencyHistogram& h) {
  auto it = histograms_.find(histogram);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(histogram), LatencyHistogram{}).first;
  }
  it->second.MergeFrom(h);
}

void MetricRegistry::MergeFrom(const MetricRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    Add(name, value);
  }
  // Gauges are last-value samples per shard; the merged export reports their
  // sum (e.g. total resident pages across all shard caches).
  for (const auto& [name, value] : other.gauges_) {
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_.emplace(name, value);
    } else {
      it->second += value;
    }
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, LatencyHistogram{}).first;
    }
    it->second.MergeFrom(h);
  }
}

int64_t MetricRegistry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

int64_t MetricRegistry::gauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

const LatencyHistogram* MetricRegistry::histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string MetricRegistry::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += ": ";
    AppendInt(&out, value);
  }
  out += first ? "},\n" : "\n  },\n";
  if (!gauges_.empty()) {
    out += "  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : gauges_) {
      out += first ? "\n    " : ",\n    ";
      first = false;
      AppendJsonKey(&out, name);
      out += ": ";
      AppendInt(&out, value);
    }
    out += "\n  },\n";
  }
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, name);
    out += ": {\"count\": ";
    AppendInt(&out, h.count());
    out += ", \"sum_ns\": ";
    AppendInt(&out, h.sum().nanos());
    out += ", \"min_ns\": ";
    AppendInt(&out, h.min().nanos());
    out += ", \"max_ns\": ";
    AppendInt(&out, h.max().nanos());
    out += ", \"p50_ns\": ";
    AppendInt(&out, h.Quantile(0.50).nanos());
    out += ", \"p95_ns\": ";
    AppendInt(&out, h.Quantile(0.95).nanos());
    out += ", \"p99_ns\": ";
    AppendInt(&out, h.Quantile(0.99).nanos());
    out += "}";
  }
  out += first ? "}\n}" : "\n  }\n}";
  return out;
}

std::string MetricRegistry::ToCsv() const {
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += "counter," + name + ",";
    AppendInt(&out, value);
    out += "\n";
  }
  for (const auto& [name, value] : gauges_) {
    out += "gauge," + name + ",";
    AppendInt(&out, value);
    out += "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "histogram," + name + ",";
    AppendInt(&out, h.count());
    out += ",";
    AppendInt(&out, h.sum().nanos());
    out += ",";
    AppendInt(&out, h.min().nanos());
    out += ",";
    AppendInt(&out, h.max().nanos());
    out += ",";
    AppendInt(&out, h.Quantile(0.50).nanos());
    out += ",";
    AppendInt(&out, h.Quantile(0.95).nanos());
    out += ",";
    AppendInt(&out, h.Quantile(0.99).nanos());
    out += "\n";
  }
  return out;
}

void MetricRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace sled
