// Metrics registry for the observability subsystem: named monotonic counters
// and log-bucketed latency histograms (p50/p95/p99 accessors), keyed by
// device / file system / storage level. This is the "reporting latency to
// users" leg of the paper (§3, fimhisto/fimgbin): the simulator itself needs
// the same per-layer attribution to explain where simulated time goes.
//
// Everything here is harness instrumentation: recording a sample never
// touches the simulated clock, and all exported values are integers so two
// identical runs produce byte-identical exports.
#ifndef SLEDS_SRC_OBS_METRICS_H_
#define SLEDS_SRC_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/common/sim_time.h"

namespace sled {

// Log-bucketed latency histogram over nanosecond durations. Buckets are
// powers of two refined into 4 sub-buckets each (relative error <= 25%), a
// fixed 256-entry array — no allocation on the record path. Quantiles are
// deterministic: the upper bound of the bucket holding the target rank,
// clamped to the observed min/max.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 2;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kNumBuckets = 256;

  void Record(Duration d);

  // Bucket-wise merge for shard aggregation. Commutative and associative
  // (integer adds, min/max), so a merged histogram is identical however the
  // samples were partitioned across shards.
  void MergeFrom(const LatencyHistogram& other);

  int64_t count() const { return count_; }
  Duration sum() const { return sum_; }
  Duration min() const { return count_ == 0 ? Duration() : min_; }
  Duration max() const { return max_; }
  Duration mean() const { return count_ == 0 ? Duration() : sum_ / count_; }

  // The q-quantile (q in (0, 1]); p50 is Quantile(0.50).
  Duration Quantile(double q) const;

  static int BucketIndex(int64_t nanos);
  // Largest nanosecond value mapping to `index`.
  static int64_t BucketUpperBound(int index);

  // Raw bucket counts (CDF export walks the occupied buckets directly).
  const std::array<int64_t, kNumBuckets>& buckets() const { return buckets_; }

  // Bucket-wise equality: what the open-loop engine's wheel-vs-heap and
  // shard-count identity assertions compare.
  bool operator==(const LatencyHistogram&) const = default;

 private:
  std::array<int64_t, kNumBuckets> buckets_{};
  int64_t count_ = 0;
  Duration sum_;
  Duration min_;
  Duration max_;
};

// Named counters + histograms. Keys are stable strings ("kernel.pages_paged_in",
// "syscall.read", "level.1.pagein_time", "dev.disk.read_time"); storage is an
// ordered map so exports list keys in sorted order, deterministically.
class MetricRegistry {
 public:
  void Add(std::string_view counter, int64_t delta = 1);
  void Observe(std::string_view histogram, Duration d);
  // Fold a whole recorded histogram in at once (per-world histograms merging
  // into a shard accumulator without replaying every sample).
  void MergeHistogram(std::string_view histogram, const LatencyHistogram& h);
  // Last-value gauge ("io.disk.depth"). Exported in a separate JSON section
  // that is omitted entirely while no gauge exists, so subsystems that never
  // set one keep their exports byte-identical.
  void SetGauge(std::string_view gauge, int64_t value);

  // Merge another registry into this one: counters and gauges add, histograms
  // merge bucket-wise. All operations commute, so merging per-shard
  // registries yields the same result for any shard count and merge order —
  // the property the shard differential test pins down.
  void MergeFrom(const MetricRegistry& other);

  // 0 / nullptr when the key was never recorded.
  int64_t counter(std::string_view name) const;
  int64_t gauge(std::string_view name) const;
  const LatencyHistogram* histogram(std::string_view name) const;

  const std::map<std::string, int64_t, std::less<>>& counters() const { return counters_; }
  const std::map<std::string, int64_t, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, LatencyHistogram, std::less<>>& histograms() const {
    return histograms_;
  }

  // {"counters": {...}, "histograms": {name: {count, sum_ns, min_ns, max_ns,
  // p50_ns, p95_ns, p99_ns}, ...}} — integers only, keys sorted.
  std::string ToJson() const;
  // One record per line:
  //   counter,<name>,<value>
  //   histogram,<name>,<count>,<sum_ns>,<min_ns>,<max_ns>,<p50_ns>,<p95_ns>,<p99_ns>
  std::string ToCsv() const;

  void Reset();

 private:
  std::map<std::string, int64_t, std::less<>> counters_;
  std::map<std::string, int64_t, std::less<>> gauges_;
  std::map<std::string, LatencyHistogram, std::less<>> histograms_;
};

}  // namespace sled

#endif  // SLEDS_SRC_OBS_METRICS_H_
