#include "src/obs/trace.h"

#include <cstdio>

#include "src/common/log.h"

namespace sled {

std::string_view TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kSyscallEnter:
      return "syscall_enter";
    case TraceKind::kSyscallExit:
      return "syscall_exit";
    case TraceKind::kPageIn:
      return "page_in";
    case TraceKind::kReadahead:
      return "readahead";
    case TraceKind::kWritebackQueue:
      return "writeback_queue";
    case TraceKind::kWritebackFlush:
      return "writeback_flush";
    case TraceKind::kDeviceRead:
      return "device_read";
    case TraceKind::kDeviceWrite:
      return "device_write";
    case TraceKind::kSledScan:
      return "sled_scan";
    case TraceKind::kIoSubmit:
      return "io_submit";
    case TraceKind::kIoDispatch:
      return "io_dispatch";
    case TraceKind::kIoWait:
      return "io_wait";
    case TraceKind::kDeviceError:
      return "device_error";
    case TraceKind::kIoRetry:
      return "io_retry";
    case TraceKind::kWritebackError:
      return "writeback_error";
    case TraceKind::kReplicaDegraded:
      return "replica_degraded";
    case TraceKind::kReplicaStale:
      return "replica_stale";
    case TraceKind::kReplicaRecovery:
      return "replica_recovery";
    case TraceKind::kReplicaHedge:
      return "replica_hedge";
    case TraceKind::kProgInstall:
      return "prog_install";
    case TraceKind::kProgResubmit:
      return "prog_resubmit";
    case TraceKind::kProgDone:
      return "prog_done";
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity) : capacity_(capacity) {
  SLED_CHECK(capacity_ > 0, "trace ring needs capacity");
  events_.reserve(capacity_);
}

void TraceRing::Push(TraceRecord event) {
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
  } else {
    events_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TraceRecord> TraceRing::Snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

std::string TraceRing::DumpCsv(size_t max_events) const {
  const std::vector<TraceRecord> events = Snapshot();
  const size_t n = std::min(max_events, events.size());
  const size_t skip = events.size() - n;
  std::string out = "seq,t_ns,kind,pid,level,file,a,b,dur_ns,tag\n";
  // Sequence numbers are global: the oldest retained event is `dropped()`.
  int64_t seq = dropped() + static_cast<int64_t>(skip);
  char buf[256];
  for (size_t i = skip; i < events.size(); ++i, ++seq) {
    const TraceRecord& e = events[i];
    std::snprintf(buf, sizeof(buf), "%lld,%lld,%.*s,%d,%d,%llu,%lld,%lld,%lld,",
                  static_cast<long long>(seq),
                  static_cast<long long>(e.at.since_epoch().nanos()),
                  static_cast<int>(TraceKindName(e.kind).size()), TraceKindName(e.kind).data(),
                  e.pid, e.level, static_cast<unsigned long long>(e.file),
                  static_cast<long long>(e.a), static_cast<long long>(e.b),
                  static_cast<long long>(e.dur.nanos()));
    out += buf;
    out += e.tag;
    out += "\n";
  }
  return out;
}

void TraceRing::Clear() {
  events_.clear();
  head_ = 0;
  total_ = 0;
}

}  // namespace sled
