#include "src/obs/merge.h"

#include <cstdio>

#include "src/common/log.h"
#include "src/obs/observer.h"

namespace sled {

void ObsAccumulator::Absorb(const Observer& obs) {
  metrics.MergeFrom(obs.metrics());
  trace_total += obs.trace().total();
  trace_retained += static_cast<int64_t>(obs.trace().size());
  trace_dropped += obs.trace().dropped();
  ++observers_absorbed;
}

void ObsAccumulator::Absorb(const ObsAccumulator& other) {
  metrics.MergeFrom(other.metrics);
  trace_total += other.trace_total;
  trace_retained += other.trace_retained;
  trace_dropped += other.trace_dropped;
  observers_absorbed += other.observers_absorbed;
}

std::string ObsAccumulator::MetricsJson() const {
  std::string out = metrics.ToJson();
  SLED_CHECK(!out.empty() && out.back() == '}', "malformed metrics json");
  out.pop_back();
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                ",  \"trace\": {\"total\": %lld, \"retained\": %lld, \"dropped\": %lld}\n}",
                static_cast<long long>(trace_total), static_cast<long long>(trace_retained),
                static_cast<long long>(trace_dropped));
  out += buf;
  return out;
}

}  // namespace sled
