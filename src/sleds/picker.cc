#include "src/sleds/picker.h"

#include <algorithm>
#include <cstring>

#include "src/common/log.h"

namespace sled {
namespace {

constexpr int64_t kScanBlock = 4 * kKiB;

}  // namespace

SledsPicker::SledsPicker(SimKernel& kernel, Process& process, int fd, PickerOptions options)
    : kernel_(kernel), process_(process), fd_(fd), options_(options) {}

void SledsPicker::PruneUnavailable(SledVector& sleds) {
  // Accumulates into pruned_bytes_ across refreshes; only a full plan
  // rebuild (BuildPlan) resets the counter, as the header documents.
  if (!options_.prune_unavailable) {
    return;
  }
  std::erase_if(sleds, [this](const Sled& s) {
    if (s.unavailable) {
      pruned_bytes_ += s.length;
      return true;
    }
    return false;
  });
}

Result<std::unique_ptr<SledsPicker>> SledsPicker::Create(SimKernel& kernel, Process& process,
                                                         int fd, PickerOptions options) {
  if (options.preferred_chunk_bytes <= 0 || options.element_size < 0 ||
      options.element_base < 0) {
    return Err::kInval;
  }
  if (options.element_size > 0) {
    // Picks must cover whole elements: round the chunk down to a multiple.
    options.preferred_chunk_bytes =
        std::max(options.element_size,
                 (options.preferred_chunk_bytes / options.element_size) * options.element_size);
  }
  std::unique_ptr<SledsPicker> picker(new SledsPicker(kernel, process, fd, options));
  SLED_ASSIGN_OR_RETURN(InodeAttr attr, kernel.Fstat(process, fd));
  picker->file_size_ = attr.size;
  SLED_RETURN_IF_ERROR(picker->BuildPlan());
  return picker;
}

Result<SledVector> SledsPicker::FetchSleds(
    const std::vector<std::pair<int64_t, int64_t>>& ranges) {
  if (ranges.empty()) {
    // Forward rank_by as the route rank: a replicated store then advertises,
    // for each section, the copy that minimizes the statistic this plan is
    // ordered by (rank_by-aware replica routing).
    return kernel_.IoctlSledsGet(process_, fd_, options_.rank_by);
  }
  // Merge the requested ranges into disjoint intervals and issue one ranged
  // FSLEDS_GET per interval. The kernel charges per page actually scanned, so
  // a refresh pays for the not-yet-consumed part of the plan instead of
  // re-scanning the whole file.
  std::vector<std::pair<int64_t, int64_t>> merged(ranges);
  std::sort(merged.begin(), merged.end());
  size_t tail = 0;
  for (size_t i = 1; i < merged.size(); ++i) {
    if (merged[i].first <= merged[tail].second) {
      merged[tail].second = std::max(merged[tail].second, merged[i].second);
    } else {
      merged[++tail] = merged[i];
    }
  }
  merged.resize(tail + 1);
  SledVector all;
  for (const auto& [lo, hi] : merged) {
    SLED_ASSIGN_OR_RETURN(SledVector part,
                          kernel_.IoctlSledsGet(process_, fd_, lo, hi - lo, options_.rank_by));
    // The ranged get returns whole pages; trim the page overhang so each
    // SLED stays inside its own interval (intervals are disjoint, so a SLED
    // can then only match this interval's ranges below).
    for (Sled s : part) {
      const int64_t begin = std::max(s.offset, lo);
      const int64_t end = std::min(s.offset + s.length, hi);
      if (begin < end) {
        s.offset = begin;
        s.length = end - begin;
        all.push_back(s);
      }
    }
  }
  // Clip each SLED against the requested byte ranges.
  SledVector clipped;
  for (const Sled& s : all) {
    for (const auto& [lo, hi] : ranges) {
      const int64_t begin = std::max(s.offset, lo);
      const int64_t end = std::min(s.offset + s.length, hi);
      if (begin < end) {
        Sled part = s;
        part.offset = begin;
        part.length = end - begin;
        clipped.push_back(part);
      }
    }
  }
  std::sort(clipped.begin(), clipped.end(),
            [](const Sled& a, const Sled& b) { return a.offset < b.offset; });
  return clipped;
}

Result<void> SledsPicker::BuildPlan() {
  pruned_bytes_ = 0;
  SLED_ASSIGN_OR_RETURN(SledVector sleds, FetchSleds({}));
  if (options_.record_oriented) {
    SLED_RETURN_IF_ERROR(AdjustToRecordBoundaries(sleds));
  }
  if (options_.element_size > 0) {
    AdjustToElementBoundaries(sleds);
  }
  PruneUnavailable(sleds);
  SortByPickOrder(sleds, options_.rank_by);
  plan_ = std::move(sleds);
  current_ = 0;
  position_ = plan_.empty() ? 0 : plan_.front().offset;
  return Result<void>::Ok();
}

Result<int64_t> SledsPicker::ScanForward(int64_t from, int64_t limit) {
  std::vector<char> buf(static_cast<size_t>(kScanBlock));
  int64_t pos = from;
  while (pos < limit) {
    const int64_t want = std::min<int64_t>(kScanBlock, limit - pos);
    SLED_RETURN_IF_ERROR(kernel_.Lseek(process_, fd_, pos, Whence::kSet));
    SLED_ASSIGN_OR_RETURN(
        int64_t n, kernel_.Read(process_, fd_, std::span<char>(buf.data(),
                                                               static_cast<size_t>(want))));
    if (n <= 0) {
      break;
    }
    const void* hit = std::memchr(buf.data(), options_.record_separator, static_cast<size_t>(n));
    if (hit != nullptr) {
      return pos + (static_cast<const char*>(hit) - buf.data()) + 1;
    }
    pos += n;
  }
  return static_cast<int64_t>(-1);
}

Result<int64_t> SledsPicker::ScanBackward(int64_t from, int64_t limit) {
  std::vector<char> buf(static_cast<size_t>(kScanBlock));
  int64_t end = from;
  while (end > limit) {
    const int64_t want = std::min<int64_t>(kScanBlock, end - limit);
    const int64_t start = end - want;
    SLED_RETURN_IF_ERROR(kernel_.Lseek(process_, fd_, start, Whence::kSet));
    SLED_ASSIGN_OR_RETURN(
        int64_t n, kernel_.Read(process_, fd_, std::span<char>(buf.data(),
                                                               static_cast<size_t>(want))));
    if (n <= 0) {
      break;
    }
    for (int64_t i = n - 1; i >= 0; --i) {
      if (buf[static_cast<size_t>(i)] == options_.record_separator) {
        return start + i + 1;
      }
    }
    end = start;
  }
  return static_cast<int64_t>(-1);
}

Result<void> SledsPicker::AdjustToRecordBoundaries(SledVector& sleds) {
  if (sleds.size() < 2) {
    return Result<void>::Ok();
  }
  // Interior boundaries; boundary[i] separates sleds[i] and sleds[i+1].
  std::vector<int64_t> boundary(sleds.size() - 1);
  for (size_t i = 0; i + 1 < sleds.size(); ++i) {
    boundary[i] = sleds[i].offset + sleds[i].length;
  }
  for (size_t i = 0; i + 1 < sleds.size(); ++i) {
    const int64_t b = boundary[i];
    if (RankLatency(sleds[i + 1], options_.rank_by) < RankLatency(sleds[i], options_.rank_by)) {
      // Left edge of a low-latency SLED: push the leading record fragment out
      // to the expensive neighbour by scanning forward (on the cheap side)
      // for the first record start.
      const int64_t scan_limit =
          std::min(sleds[i + 1].offset + sleds[i + 1].length, b + options_.max_record_scan_bytes);
      SLED_ASSIGN_OR_RETURN(int64_t adjusted, ScanForward(b, scan_limit));
      if (adjusted >= 0) {
        boundary[i] = adjusted;
      }
    } else if (RankLatency(sleds[i], options_.rank_by) <
               RankLatency(sleds[i + 1], options_.rank_by)) {
      // Right edge of a low-latency SLED: push the trailing fragment out by
      // scanning backward (still on the cheap side) for the last record end.
      const int64_t scan_limit = std::max(sleds[i].offset, b - options_.max_record_scan_bytes);
      SLED_ASSIGN_OR_RETURN(int64_t adjusted, ScanBackward(b, scan_limit));
      if (adjusted >= 0) {
        boundary[i] = adjusted;
      }
    }
  }
  // Rebuild, keeping boundaries monotone (a tiny low-latency SLED with no
  // separators can collapse to nothing).
  for (size_t i = 1; i < boundary.size(); ++i) {
    boundary[i] = std::max(boundary[i], boundary[i - 1]);
  }
  SledVector rebuilt;
  for (size_t i = 0; i < sleds.size(); ++i) {
    const int64_t begin = i == 0 ? sleds.front().offset : boundary[i - 1];
    const int64_t end =
        i + 1 == sleds.size() ? sleds.back().offset + sleds.back().length : boundary[i];
    if (end > begin) {
      Sled s = sleds[i];
      s.offset = begin;
      s.length = end - begin;
      rebuilt.push_back(s);
    }
  }
  sleds = std::move(rebuilt);
  return Result<void>::Ok();
}

void SledsPicker::AdjustToElementBoundaries(SledVector& sleds) const {
  if (sleds.size() < 2) {
    return;
  }
  const int64_t elem = options_.element_size;
  const int64_t base = options_.element_base;
  std::vector<int64_t> boundary(sleds.size() - 1);
  for (size_t i = 0; i + 1 < sleds.size(); ++i) {
    boundary[i] = sleds[i].offset + sleds[i].length;
  }
  for (size_t i = 0; i + 1 < sleds.size(); ++i) {
    const int64_t b = boundary[i];
    if (b <= base) {
      continue;  // inside the header region; element grid starts at base
    }
    const int64_t rel = b - base;
    if (RankLatency(sleds[i + 1], options_.rank_by) < RankLatency(sleds[i], options_.rank_by)) {
      // Left edge of a low-latency SLED: round up (fragment joins the
      // expensive left neighbour).
      boundary[i] = base + ((rel + elem - 1) / elem) * elem;
    } else if (RankLatency(sleds[i], options_.rank_by) <
               RankLatency(sleds[i + 1], options_.rank_by)) {
      // Right edge: round down.
      boundary[i] = base + (rel / elem) * elem;
    }
  }
  for (size_t i = 1; i < boundary.size(); ++i) {
    boundary[i] = std::max(boundary[i], boundary[i - 1]);
  }
  const int64_t file_end = sleds.back().offset + sleds.back().length;
  SledVector rebuilt;
  for (size_t i = 0; i < sleds.size(); ++i) {
    const int64_t begin = i == 0 ? sleds.front().offset : boundary[i - 1];
    const int64_t end = i + 1 == sleds.size() ? file_end : std::min(boundary[i], file_end);
    if (end > begin) {
      Sled s = sleds[i];
      s.offset = begin;
      s.length = end - begin;
      rebuilt.push_back(s);
    }
  }
  sleds = std::move(rebuilt);
}

Result<void> SledsPicker::Refresh() {
  // Remaining work: the tail of the current segment plus all later segments.
  std::vector<std::pair<int64_t, int64_t>> remaining;
  if (current_ < plan_.size()) {
    const Sled& cur = plan_[current_];
    if (position_ < cur.offset + cur.length) {
      remaining.emplace_back(position_, cur.offset + cur.length);
    }
    for (size_t i = current_ + 1; i < plan_.size(); ++i) {
      remaining.emplace_back(plan_[i].offset, plan_[i].offset + plan_[i].length);
    }
  }
  if (remaining.empty()) {
    return Result<void>::Ok();
  }
  SLED_ASSIGN_OR_RETURN(SledVector fresh, FetchSleds(remaining));
  // Record adjustment is applied at init only; refreshed estimates keep page
  // granularity (the separator scan already happened once). Element
  // alignment is arithmetic, so it is re-applied.
  if (options_.element_size > 0) {
    AdjustToElementBoundaries(fresh);
  }
  PruneUnavailable(fresh);
  SortByPickOrder(fresh, options_.rank_by);
  plan_ = std::move(fresh);
  current_ = 0;
  position_ = plan_.empty() ? 0 : plan_.front().offset;
  return Result<void>::Ok();
}

Result<SledsPicker::Pick> SledsPicker::NextRead() {
  if (options_.refresh_every_n_picks > 0 &&
      picks_since_refresh_ >= options_.refresh_every_n_picks) {
    SLED_RETURN_IF_ERROR(Refresh());
    picks_since_refresh_ = 0;
  }
  while (current_ < plan_.size() && position_ >= plan_[current_].offset + plan_[current_].length) {
    ++current_;
    if (current_ < plan_.size()) {
      position_ = plan_[current_].offset;
    }
  }
  if (current_ >= plan_.size()) {
    return Pick{0, 0};
  }
  const Sled& seg = plan_[current_];
  const int64_t len = std::min(options_.preferred_chunk_bytes, seg.offset + seg.length - position_);
  Pick pick{position_, len};
  position_ += len;
  ++picks_since_refresh_;
  return pick;
}

int64_t SledsPicker::remaining_bytes() const {
  if (current_ >= plan_.size()) {
    return 0;
  }
  int64_t total = plan_[current_].offset + plan_[current_].length - position_;
  for (size_t i = current_ + 1; i < plan_.size(); ++i) {
    total += plan_[i].length;
  }
  return total;
}

}  // namespace sled
