// The Storage Latency Estimation Descriptor itself (paper Figure 2).
//
//   struct sled {
//     long  offset;     /* into the file */
//     long  length;     /* of the segment */
//     float latency;    /* in seconds */
//     float bandwidth;  /* in bytes/sec */
//   };
//
// A SLED describes one contiguous section of a file whose pages share a
// retrieval estimate: the latency to the first byte and the bandwidth once
// data begins arriving. Walking a file start to end, every discontinuity in
// storage medium / latency / bandwidth starts a new SLED (§3).
//
// We use double rather than float (the paper chose floating point for range
// and arithmetic convenience; width is an implementation detail) and carry
// the storage-level index as an extension field so utilities can name the
// level ("memory", "disk", "tape-far") when reporting to users.
#ifndef SLEDS_SRC_SLEDS_SLED_H_
#define SLEDS_SRC_SLEDS_SLED_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"

namespace sled {

struct Sled {
  int64_t offset = 0;       // byte offset into the file
  int64_t length = 0;       // bytes covered by this descriptor
  double latency = 0.0;     // seconds to the first byte
  double bandwidth = 0.0;   // bytes/second once flowing

  // Extension: index into the kernel sleds_table identifying the storage
  // level that produced the estimate (0 = primary memory).
  int level = 0;

  // Extension: the level was unreachable when the estimate was made (server
  // down window). `latency` is ballooned to the kernel's unavailable penalty
  // so latency-ordered consumers naturally defer the section; pickers may
  // also prune it outright (PickerOptions::prune_unavailable).
  bool unavailable = false;

  // Estimated time to deliver the whole section.
  Duration DeliveryTime() const {
    return SecondsF(latency) + TransferTime(length, bandwidth);
  }

  friend bool operator==(const Sled&, const Sled&) = default;
};

using SledVector = std::vector<Sled>;

// Estimated delivery time for a whole SLED vector under a given access plan
// (see sleds_total_delivery_time, §4.2):
//   kLinear — sections read in file order; every section pays its latency.
//   kBest   — sections read lowest-latency-first; the estimate is identical
//             in total (every section is still fetched once) but is the
//             honest estimate for an application using the pick library.
enum class AttackPlan { kLinear, kBest };

}  // namespace sled

#endif  // SLEDS_SRC_SLEDS_SLED_H_
