// The Storage Latency Estimation Descriptor itself (paper Figure 2).
//
//   struct sled {
//     long  offset;     /* into the file */
//     long  length;     /* of the segment */
//     float latency;    /* in seconds */
//     float bandwidth;  /* in bytes/sec */
//   };
//
// A SLED describes one contiguous section of a file whose pages share a
// retrieval estimate: the latency to the first byte and the bandwidth once
// data begins arriving. Walking a file start to end, every discontinuity in
// storage medium / latency / bandwidth starts a new SLED (§3).
//
// We use double rather than float (the paper chose floating point for range
// and arithmetic convenience; width is an implementation detail) and carry
// the storage-level index as an extension field so utilities can name the
// level ("memory", "disk", "tape-far") when reporting to users.
#ifndef SLEDS_SRC_SLEDS_SLED_H_
#define SLEDS_SRC_SLEDS_SLED_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"

namespace sled {

struct Sled {
  int64_t offset = 0;       // byte offset into the file
  int64_t length = 0;       // bytes covered by this descriptor
  double latency = 0.0;     // seconds to the first byte
  double bandwidth = 0.0;   // bytes/second once flowing

  // Extension: index into the kernel sleds_table identifying the storage
  // level that produced the estimate (0 = primary memory).
  int level = 0;

  // Extension: the level was unreachable when the estimate was made (server
  // down window). `latency` is ballooned to the kernel's unavailable penalty
  // so latency-ordered consumers naturally defer the section; pickers may
  // also prune it outright (PickerOptions::prune_unavailable).
  bool unavailable = false;

  // Extension: fixed quantiles of the first-byte latency distribution, in
  // seconds. `latency` above stays the *mean* — the scalar every paper-era
  // consumer reads — while these express the spread: an SSD mid-GC and a
  // quiet disk can share a mean yet differ 10x at the p99, and only the
  // quantiles let a picker defer the section whose tail bites (rank_by).
  // All-zero means "not characterized"; use Quantile()/RankLatency, which
  // fall back to the mean.
  double latency_p50 = 0.0;
  double latency_p90 = 0.0;
  double latency_p99 = 0.0;

  // Estimated time to deliver the whole section.
  Duration DeliveryTime() const {
    return SecondsF(latency) + TransferTime(length, bandwidth);
  }

  friend bool operator==(const Sled&, const Sled&) = default;
};

using SledVector = std::vector<Sled>;

// Which statistic of a SLED's latency distribution an ordering consumer
// ranks by. kMean reproduces the paper's scalar behavior exactly.
enum class RankBy { kMean, kP50, kP90, kP99 };

// The ranking statistic of `s` under `rank_by`, falling back to the scalar
// mean when the SLED carries no quantile characterization.
inline double RankLatency(const Sled& s, RankBy rank_by) {
  const bool has_q = s.latency_p50 != 0.0 || s.latency_p90 != 0.0 || s.latency_p99 != 0.0;
  switch (rank_by) {
    case RankBy::kP50:
      return has_q ? s.latency_p50 : s.latency;
    case RankBy::kP90:
      return has_q ? s.latency_p90 : s.latency;
    case RankBy::kP99:
      return has_q ? s.latency_p99 : s.latency;
    case RankBy::kMean:
      break;
  }
  return s.latency;
}

// The pick library's §4.2 ordering: lowest ranking latency first, ties in
// file order (stable). Shared between SledsPicker::BuildPlan and the
// kernel's completion-program planner, so a SLED-ordered in-kernel plan
// consumes sections in exactly the order the userspace picker would have
// requested them.
inline void SortByPickOrder(SledVector& sleds, RankBy rank_by) {
  std::stable_sort(sleds.begin(), sleds.end(), [rank_by](const Sled& a, const Sled& b) {
    const double la = RankLatency(a, rank_by);
    const double lb = RankLatency(b, rank_by);
    if (la != lb) {
      return la < lb;
    }
    return a.offset < b.offset;
  });
}

// Estimated delivery time for a whole SLED vector under a given access plan
// (see sleds_total_delivery_time, §4.2):
//   kLinear — sections read in file order; every section pays its latency.
//   kBest   — sections read lowest-latency-first; the estimate is identical
//             in total (every section is still fetched once) but is the
//             honest estimate for an application using the pick library.
enum class AttackPlan { kLinear, kBest };

}  // namespace sled

#endif  // SLEDS_SRC_SLEDS_SLED_H_
