#include "src/sleds/delivery.h"

#include <algorithm>
#include <cstdio>

namespace sled {

Duration TotalDeliveryTime(const SledVector& sleds, AttackPlan plan) {
  if (plan == AttackPlan::kLinear) {
    Duration total;
    for (const Sled& s : sleds) {
      total += s.DeliveryTime();
    }
    return total;
  }
  // kBest: cheapest-first order.
  SledVector ordered = sleds;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Sled& a, const Sled& b) { return a.latency < b.latency; });
  Duration total;
  for (const Sled& s : ordered) {
    total += s.DeliveryTime();
  }
  return total;
}

Result<Duration> TotalDeliveryTime(SimKernel& kernel, Process& process, int fd, AttackPlan plan) {
  SLED_ASSIGN_OR_RETURN(SledVector sleds, kernel.IoctlSledsGet(process, fd));
  return TotalDeliveryTime(sleds, plan);
}

std::string FormatSledReport(const SimKernel& kernel, const SledVector& sleds) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%10s %12s %14s %14s  %s\n", "offset", "length", "latency",
                "bandwidth", "level");
  out += buf;
  for (const Sled& s : sleds) {
    std::snprintf(buf, sizeof(buf), "%10lld %12lld %14s %11.2f MB/s  %s\n",
                  static_cast<long long>(s.offset), static_cast<long long>(s.length),
                  SecondsF(s.latency).ToString().c_str(), s.bandwidth / 1e6,
                  kernel.sleds_table().row(s.level).name.c_str());
    out += buf;
  }
  const Duration total = TotalDeliveryTime(sleds, AttackPlan::kBest);
  std::snprintf(buf, sizeof(buf), "estimated total delivery time: %s\n",
                total.ToString().c_str());
  out += buf;
  return out;
}

}  // namespace sled
