// sleds_total_delivery_time (paper §4.2) and SLED reporting helpers (the gmc
// file-properties panel, §5.2).
#ifndef SLEDS_SRC_SLEDS_DELIVERY_H_
#define SLEDS_SRC_SLEDS_DELIVERY_H_

#include <string>

#include "src/common/result.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/sled.h"

namespace sled {

// Estimated time to deliver a whole SLED vector under the given attack plan.
// kLinear charges each section's latency in file order; kBest orders sections
// cheapest-first (the pick library's plan). For full-file delivery the totals
// coincide — every section is fetched exactly once either way — but the two
// plans are kept distinct for API fidelity and for future device-state-aware
// estimators.
Duration TotalDeliveryTime(const SledVector& sleds, AttackPlan plan);

// Convenience wrapper: fetch the SLEDs for `fd` and estimate.
Result<Duration> TotalDeliveryTime(SimKernel& kernel, Process& process, int fd, AttackPlan plan);

// Render a SLED vector the way the gmc properties panel shows it: one row per
// SLED (offset, length, latency, bandwidth, level name) plus the estimated
// total delivery time.
std::string FormatSledReport(const SimKernel& kernel, const SledVector& sleds);

}  // namespace sled

#endif  // SLEDS_SRC_SLEDS_DELIVERY_H_
