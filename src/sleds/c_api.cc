#include "src/sleds/c_api.h"

#include <map>
#include <memory>
#include <tuple>

#include "src/sleds/delivery.h"
#include "src/sleds/picker.h"

namespace sled {
namespace {

// Registry of live pickers, keyed by (kernel, pid, fd). A process-global
// table is inherent to the C API being mirrored (Core Guidelines I.30:
// encapsulate the rule violation here, nowhere else).
using PickerKey = std::tuple<const SimKernel*, int, int>;

std::map<PickerKey, std::unique_ptr<SledsPicker>>& Registry() {
  static std::map<PickerKey, std::unique_ptr<SledsPicker>> registry;
  return registry;
}

PickerKey KeyOf(const SledsContext& ctx, int fd) {
  return {ctx.kernel, ctx.process->pid(), fd};
}

bool ValidContext(const SledsContext& ctx) {
  return ctx.kernel != nullptr && ctx.process != nullptr;
}

}  // namespace

long sleds_pick_init(SledsContext ctx, int fd, long preferred_buffer_size,
                     int record_separator) {
  return sleds_pick_init_ranked(ctx, fd, preferred_buffer_size, SLEDS_RANK_MEAN,
                                record_separator);
}

long sleds_pick_init_ranked(SledsContext ctx, int fd, long preferred_buffer_size,
                            int rank_by, int record_separator) {
  if (!ValidContext(ctx) || preferred_buffer_size <= 0) {
    return -1;
  }
  PickerOptions options;
  options.preferred_chunk_bytes = preferred_buffer_size;
  switch (rank_by) {
    case SLEDS_RANK_MEAN:
      options.rank_by = RankBy::kMean;
      break;
    case SLEDS_RANK_P50:
      options.rank_by = RankBy::kP50;
      break;
    case SLEDS_RANK_P90:
      options.rank_by = RankBy::kP90;
      break;
    case SLEDS_RANK_P99:
      options.rank_by = RankBy::kP99;
      break;
    default:
      return -1;
  }
  if (record_separator >= 0) {
    options.record_oriented = true;
    options.record_separator = static_cast<char>(record_separator);
  }
  auto picker = SledsPicker::Create(*ctx.kernel, *ctx.process, fd, options);
  if (!picker.ok()) {
    return -1;
  }
  Registry()[KeyOf(ctx, fd)] = std::move(picker).value();
  return preferred_buffer_size;
}

int sleds_pick_next_read(SledsContext ctx, int fd, long* offset, long* nbytes) {
  if (!ValidContext(ctx) || offset == nullptr || nbytes == nullptr) {
    return -1;
  }
  auto it = Registry().find(KeyOf(ctx, fd));
  if (it == Registry().end()) {
    return -1;
  }
  auto pick = it->second->NextRead();
  if (!pick.ok()) {
    return -1;
  }
  *offset = pick->offset;
  *nbytes = pick->length;
  return 0;
}

int sleds_pick_finish(SledsContext ctx, int fd) {
  if (!ValidContext(ctx)) {
    return -1;
  }
  return Registry().erase(KeyOf(ctx, fd)) > 0 ? 0 : -1;
}

double sleds_total_delivery_time(SledsContext ctx, int fd, int attack_plan) {
  if (!ValidContext(ctx)) {
    return -1.0;
  }
  const AttackPlan plan = attack_plan == SLEDS_BEST ? AttackPlan::kBest : AttackPlan::kLinear;
  auto t = TotalDeliveryTime(*ctx.kernel, *ctx.process, fd, plan);
  if (!t.ok()) {
    return -1.0;
  }
  return t->ToSeconds();
}

}  // namespace sled
