// The paper's C-flavoured library surface (Table 1):
//
//   function                    arguments                              returns
//   sleds_pick_init             fd, preferred buffer size              buffer size
//   sleds_pick_next_read        fd, buffer size, record flag           read location, size
//   sleds_pick_finish           fd                                     (none)
//   sleds_total_delivery_time   fd, attack plan                        estimated delivery time
//
// Because our kernel is a library object rather than the ambient OS, every
// call takes a SledsContext naming the kernel and calling process; otherwise
// signatures and semantics follow the paper. Applications written against
// this API look exactly like the paper's Figure 5 pseudocode (see
// examples/quickstart.cc).
#ifndef SLEDS_SRC_SLEDS_C_API_H_
#define SLEDS_SRC_SLEDS_C_API_H_

#include "src/kernel/sim_kernel.h"

namespace sled {

struct SledsContext {
  SimKernel* kernel = nullptr;
  Process* process = nullptr;
};

inline constexpr int SLEDS_LINEAR = 0;
inline constexpr int SLEDS_BEST = 1;

// Initialize picking for `fd`. `record_separator` < 0 requests byte/page
// oriented SLEDs; >= 0 requests record-oriented SLEDs with that separator
// (paper: "to specify the character used to identify record boundaries").
// Returns the buffer size the library will honour (== preferred_buffer_size),
// or -1 on error.
long sleds_pick_init(SledsContext ctx, int fd, long preferred_buffer_size,
                     int record_separator = -1);

// Ranking statistics for sleds_pick_init_ranked.
inline constexpr int SLEDS_RANK_MEAN = 0;
inline constexpr int SLEDS_RANK_P50 = 1;
inline constexpr int SLEDS_RANK_P90 = 2;
inline constexpr int SLEDS_RANK_P99 = 3;

// Extension: sleds_pick_init with an explicit latency statistic ordering the
// plan (SLEDS_RANK_*). The paper-era sleds_pick_init is exactly
// SLEDS_RANK_MEAN, so existing callers keep their byte-identical plans; the
// quantile fields ride in extension slots of `struct sled` that old readers
// never look at.
long sleds_pick_init_ranked(SledsContext ctx, int fd, long preferred_buffer_size,
                            int rank_by, int record_separator = -1);

// Advise the next read. Returns 0 and fills *offset/*nbytes; *nbytes == 0
// when the file has been fully offered. Returns -1 on error or if
// sleds_pick_init was not called for this fd.
int sleds_pick_next_read(SledsContext ctx, int fd, long* offset, long* nbytes);

// Tear down picking state for `fd`. Returns 0, or -1 if none exists.
int sleds_pick_finish(SledsContext ctx, int fd);

// Estimated delivery time, in seconds, for the whole file under
// SLEDS_LINEAR or SLEDS_BEST. Returns a negative value on error.
double sleds_total_delivery_time(SledsContext ctx, int fd, int attack_plan);

}  // namespace sled

#endif  // SLEDS_SRC_SLEDS_C_API_H_
