// The SLEDs "pick" library (paper §4.2): advises applications where to read
// next so that low-latency (cached / fast-device) data is consumed first.
//
//   sleds_pick_init       -> SledsPicker::Create
//   sleds_pick_next_read  -> SledsPicker::NextRead
//   sleds_pick_finish     -> SledsPicker destruction / Finish
//
// Policy, verbatim from the paper: "The library checks for the lowest latency
// among unseen chunks, then chooses to return the chunk with the lowest file
// offset among those with equivalent latencies. [...] The library will return
// each chunk of the file exactly once."
//
// Record-oriented mode implements Figure 4: the edges of low-latency SLEDs
// are pulled in from page boundaries to record boundaries, pushing the
// leading/trailing record fragments out to the higher-latency neighbours, so
// that applications handling variable-sized records never run off the edge of
// cheap data into an expensive fetch. Finding the boundaries requires the
// library to perform a little I/O itself (on the low-latency side).
#ifndef SLEDS_SRC_SLEDS_PICKER_H_
#define SLEDS_SRC_SLEDS_PICKER_H_

#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/sled.h"

namespace sled {

struct PickerOptions {
  // Preferred chunk size; NextRead returns chunks of this size or smaller.
  int64_t preferred_chunk_bytes = 64 * kKiB;

  // Record-oriented SLEDs (Figure 4).
  bool record_oriented = false;
  char record_separator = '\n';
  // Farthest the library will scan for a separator before giving up and
  // keeping the page-aligned edge.
  int64_t max_record_scan_bytes = 64 * kKiB;

  // Element-oriented SLEDs, the ff* layer the paper added for LHEASOFT
  // ("allows applications to access SLEDs in units of data elements (usually
  // floating point numbers), rather than bytes", §5.3). When element_size > 0
  // every SLED edge and every pick is aligned to element boundaries measured
  // from element_base (the FITS data-unit start). Purely arithmetic — no
  // boundary-scan I/O is needed, unlike record mode.
  int64_t element_size = 0;
  int64_t element_base = 0;

  // Extension (paper §4.2 closing remark): re-fetch SLEDs from the kernel
  // every N picks to notice prefetch-driven state changes. 0 = snapshot at
  // init only (the paper's implementation).
  int refresh_every_n_picks = 0;

  // Which latency statistic orders (and edge-adjusts) the plan. kMean is the
  // paper's behavior; kP99 sorts by tail risk, deferring sections whose
  // distribution is wide (an SSD inside a GC window) even when their mean
  // looks cheap. Falls back to the mean for uncharacterized SLEDs.
  RankBy rank_by = RankBy::kMean;

  // Drop sections whose storage level is unreachable (Sled::unavailable)
  // from the plan instead of merely deferring them: the picker consumes all
  // reachable data and reports the pruned byte count. With periodic refresh,
  // a section whose down window has ended rejoins the plan on the next
  // rebuild. Off by default — "each chunk exactly once" is the paper's
  // contract.
  bool prune_unavailable = false;
};

class SledsPicker {
 public:
  struct Pick {
    int64_t offset = 0;
    int64_t length = 0;  // 0 => no chunks remain
  };

  // Retrieves SLEDs for `fd` via FSLEDS_GET and builds the pick plan.
  static Result<std::unique_ptr<SledsPicker>> Create(SimKernel& kernel, Process& process, int fd,
                                                     PickerOptions options);

  // Advise the next (offset, length) to read. Each byte of the file is
  // offered exactly once; a zero-length pick signals completion.
  Result<Pick> NextRead();

  // Bytes not yet returned.
  int64_t remaining_bytes() const;
  bool done() const { return remaining_bytes() == 0; }

  // Bytes dropped from the plan because their level was unreachable
  // (prune_unavailable mode). Accumulates across refreshes over the picker's
  // lifetime — a section pruned from the original plan stays counted after
  // later Refresh() calls — and resets only when the plan is rebuilt from
  // scratch (BuildPlan).
  int64_t pruned_bytes() const { return pruned_bytes_; }

  // The (possibly record-adjusted) SLEDs driving the plan, in pick order.
  const SledVector& plan() const { return plan_; }

 private:
  SledsPicker(SimKernel& kernel, Process& process, int fd, PickerOptions options);

  Result<void> BuildPlan();
  // Drop unreachable sections (prune_unavailable), accumulating pruned_bytes_.
  void PruneUnavailable(SledVector& sleds);
  // Pull low-latency SLED edges in to multiples of element_size (from
  // element_base); fragments join the higher-latency neighbour.
  void AdjustToElementBoundaries(SledVector& sleds) const;
  // Fetch SLEDs, restricted to the given byte ranges (empty = whole file).
  Result<SledVector> FetchSleds(const std::vector<std::pair<int64_t, int64_t>>& ranges);
  Result<void> AdjustToRecordBoundaries(SledVector& sleds);
  // Scan for the separator: forward from `from` (inclusive) up to `limit`,
  // returning the offset just past the first separator, or -1.
  Result<int64_t> ScanForward(int64_t from, int64_t limit);
  // Backward from `from` (exclusive) down to `limit`, returning the offset
  // just past the last separator strictly before `from`, or -1.
  Result<int64_t> ScanBackward(int64_t from, int64_t limit);
  Result<void> Refresh();

  SimKernel& kernel_;
  Process& process_;
  int fd_;
  PickerOptions options_;
  int64_t file_size_ = 0;

  SledVector plan_;       // sorted by (latency, offset)
  size_t current_ = 0;    // index into plan_
  int64_t position_ = 0;  // next byte within plan_[current_]
  int picks_since_refresh_ = 0;
  int64_t pruned_bytes_ = 0;
};

}  // namespace sled

#endif  // SLEDS_SRC_SLEDS_PICKER_H_
