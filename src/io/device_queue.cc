#include "src/io/device_queue.h"

#include <algorithm>

#include "src/common/log.h"

namespace sled {

DeviceQueue::DeviceQueue(std::string name, DeviceQueueConfig config)
    : name_(std::move(name)), config_(config) {
  SLED_CHECK(config_.max_merge_pages >= 1, "merge bound must be >= 1");
}

void DeviceQueue::Push(IoRequest req) {
  SLED_CHECK(req.count > 0, "empty I/O request");
  SLED_CHECK(pending_.empty() || pending_.back().id < req.id, "request ids must increase");
  pending_pages_[static_cast<size_t>(req.op)] += req.count;
  pending_.push_back(std::move(req));
  ++stats_.submitted;
  stats_.max_depth = std::max(stats_.max_depth, depth());
}

bool DeviceQueue::HasPending(int64_t id) const {
  for (const IoRequest& r : pending_) {
    if (r.id == id) {
      return true;
    }
  }
  return false;
}

TimePoint DeviceQueue::EarliestSubmit() const {
  SLED_CHECK(!pending_.empty(), "EarliestSubmit on empty queue");
  // The kernel submits in nondecreasing clock order, so the oldest request
  // (front) has the earliest submit time.
  return pending_.front().submit;
}

size_t DeviceQueue::PickPrimary(TimePoint at) const {
  size_t best = pending_.size();
  // Ranks: 0 = addressed, at or ahead of the sweep head; 1 = addressed,
  // behind the head (served after the wrap); addressless requests always rank
  // 0 with their submission order as the address (FIFO among themselves —
  // multi-level file systems that cannot map pages to a flat address degrade
  // to arrival order). kFifo ranks everything by id alone.
  int best_rank = 0;
  int64_t best_addr = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    const IoRequest& r = pending_[i];
    if (r.submit > at) {
      continue;  // not yet submitted at the decision instant
    }
    int rank = 0;
    int64_t addr = 0;
    if (config_.policy == IoPolicy::kClook && r.device_addr >= 0) {
      rank = r.device_addr >= head_addr_ ? 0 : 1;
      addr = r.device_addr;
    }
    if (best == pending_.size() || rank < best_rank ||
        (rank == best_rank && (addr < best_addr || (addr == best_addr && r.id < pending_[best].id)))) {
      best = i;
      best_rank = rank;
      best_addr = addr;
    }
  }
  SLED_CHECK(best < pending_.size(), "PopBatch with no candidate at decision time");
  return best;
}

IoBatch DeviceQueue::PopBatch(TimePoint at) {
  const size_t primary_idx = PickPrimary(at);
  IoBatch batch;
  batch.parts.push_back(pending_[primary_idx]);
  pending_pages_[static_cast<size_t>(batch.parts.front().op)] -= batch.parts.front().count;
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(primary_idx));

  if (config_.coalesce) {
    // Grow the batch by pending candidates that extend it contiguously in
    // both the file's page space and the device address space (unknown
    // addresses merge on page adjacency alone — a single-level store keeps
    // consecutive pages consecutive). Repeat until nothing attaches or the
    // merge bound is hit.
    bool grew = true;
    while (grew) {
      grew = false;
      int64_t pages = 0;
      for (const IoRequest& part : batch.parts) {
        pages += part.count;
      }
      const IoRequest& lo = batch.parts.front();
      const IoRequest& hi = batch.parts.back();
      for (size_t i = 0; i < pending_.size(); ++i) {
        const IoRequest& r = pending_[i];
        if (r.submit > at || r.file != lo.file || r.op != lo.op ||
            pages + r.count > config_.max_merge_pages) {
          continue;
        }
        const bool addr_known = r.device_addr >= 0;
        const bool extends_hi =
            r.first_page == hi.end_page() &&
            (addr_known ? r.device_addr == hi.device_end_addr : hi.device_addr < 0);
        const bool extends_lo =
            r.end_page() == lo.first_page &&
            (addr_known ? r.device_end_addr == lo.device_addr : lo.device_addr < 0);
        if (!extends_hi && !extends_lo) {
          continue;
        }
        pending_pages_[static_cast<size_t>(r.op)] -= r.count;
        if (extends_hi) {
          batch.parts.push_back(r);
        } else {
          batch.parts.insert(batch.parts.begin(), r);
        }
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        ++stats_.merged;
        grew = true;
        break;
      }
    }
  }

  // The merged request inherits the primary's identity (id, pid, submit) and
  // covers the union of the parts.
  batch.merged = batch.parts.front();
  const IoRequest& last = batch.parts.back();
  batch.merged.count = last.end_page() - batch.merged.first_page;
  batch.merged.device_end_addr = last.device_end_addr;
  if (batch.merged.device_end_addr >= 0) {
    head_addr_ = batch.merged.device_end_addr;
  }
  ++stats_.dispatched_batches;
  stats_.dispatched_pages += batch.merged.count;
  return batch;
}

std::vector<IoRequest> DeviceQueue::CancelMatching(
    const std::function<bool(const IoRequest&)>& pred) {
  std::vector<IoRequest> out;
  std::erase_if(pending_, [&](const IoRequest& r) {
    if (!pred(r)) {
      return false;
    }
    pending_pages_[static_cast<size_t>(r.op)] -= r.count;
    out.push_back(r);
    return true;
  });
  stats_.canceled += static_cast<int64_t>(out.size());
  return out;
}

void DeviceQueue::ForEachPending(const std::function<void(const IoRequest&)>& fn) const {
  for (const IoRequest& r : pending_) {
    fn(r);
  }
}

}  // namespace sled
