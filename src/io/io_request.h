// IoRequest: one queued page-range transfer between a file system's backing
// store and the page cache. Requests are created by the kernel (demand
// page-ins, asynchronous readahead, writeback) and sit in a per-device
// DeviceQueue until the IoScheduler dispatches them.
//
// Everything here is plain data on the simulated timeline: `submit` is the
// clock time the request entered the queue; the scheduler computes a start
// and completion time when it dispatches. `device_addr`/`device_end_addr`
// are the byte addresses of the request's first page and one past its last
// page on the backing device (-1 when the file system cannot map pages to a
// flat device address, e.g. an offline HSM file); the C-LOOK elevator sorts
// by them and the coalescer requires them to be adjacent before merging.
#ifndef SLEDS_SRC_IO_IO_REQUEST_H_
#define SLEDS_SRC_IO_IO_REQUEST_H_

#include <cstdint>

#include "src/common/sim_time.h"
#include "src/common/units.h"

namespace sled {

enum class IoOp : uint8_t { kRead, kWrite };

// Queue service order. kFifo dispatches in arrival order (today's kernel
// behavior, just made asynchronous); kClook services pending requests in
// ascending device-address order and wraps to the lowest address when the
// sweep passes the end (C-LOOK elevator).
enum class IoPolicy : uint8_t { kFifo, kClook };

struct IoRequest {
  int64_t id = 0;  // scheduler-assigned, strictly increasing (tie-breaker)
  IoOp op = IoOp::kRead;
  uint64_t file = 0;   // FileId (fs id + inode packed by the VFS)
  int64_t ino = 0;     // inode within the owning file system
  int64_t first_page = 0;
  int64_t count = 0;   // pages
  // Device byte address of first_page / one past the last page; -1 unknown.
  int64_t device_addr = -1;
  int64_t device_end_addr = -1;
  TimePoint submit;    // clock time the request entered the queue
  int32_t pid = 0;     // submitting process (0 = kernel/background)
  int32_t attempts = 0;  // dispatch attempts so far (failed-write resubmits)

  int64_t end_page() const { return first_page + count; }
  int64_t bytes() const { return count * kPageSize; }
};

}  // namespace sled

#endif  // SLEDS_SRC_IO_IO_REQUEST_H_
