// IoScheduler: the discrete-event engine driving every DeviceQueue on the
// simulated timeline. Each queue models one device that services one request
// batch at a time; `busy_until` is when the device next goes idle.
//
// The engine is *lazy*: nothing happens at future times until somebody needs
// the answer. CatchUp(now) replays, in order, every dispatch decision the
// device would have made up to `now`; WaitFor() keeps dispatching one queue
// until a specific request has been serviced (its completion time may be in
// the caller's future — the kernel sleeps the waiting process to it). Because
// the simulation is single-threaded and submissions arrive in nondecreasing
// clock order, a lazy replay makes exactly the decisions an eager event loop
// would have made — see DESIGN.md §7 for the determinism argument.
//
// Completion delivery: dispatching a batch invokes the queue's dispatch
// callback (which performs the device access and returns its service time),
// then the completion callback once per merged part, carrying the absolute
// completion time. Callbacks may submit new requests (writeback of pages
// evicted by arriving data); the pump guard makes such nested submissions
// queue quietly and be reconsidered by the outer dispatch loop.
#ifndef SLEDS_SRC_IO_IO_SCHEDULER_H_
#define SLEDS_SRC_IO_IO_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/io/device_queue.h"

namespace sled {

// Performs the device access for one merged batch; returns its service time.
// `parts` is how many submitted requests the batch folds together.
using IoDispatchFn = std::function<Result<Duration>(const IoRequest& merged, int parts)>;
// Delivers the completion of one submitted request. `ok` is false when the
// dispatch callback failed (the data never arrives).
using IoCompleteFn = std::function<void(const IoRequest& part, TimePoint done, bool ok)>;

class IoScheduler {
 public:
  IoScheduler() = default;

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  void AttachQueue(uint32_t queue_id, std::string name, DeviceQueueConfig config,
                   IoDispatchFn dispatch, IoCompleteFn complete);
  bool HasQueue(uint32_t queue_id) const { return queues_.contains(queue_id); }
  const DeviceQueue* queue(uint32_t queue_id) const;
  void ForEachQueue(const std::function<void(uint32_t, const DeviceQueue&)>& fn) const;

  // Ids are allocated by the caller *before* Submit so it can index its own
  // bookkeeping first — Submit may dispatch (and complete) the request
  // reentrantly when the device is idle.
  int64_t AllocateId() { return next_id_++; }

  // Enqueue and pump. req.id must come from AllocateId(); req.submit is the
  // current clock time.
  void Submit(uint32_t queue_id, IoRequest req);

  // Replay every dispatch decision with a start time <= now, on all queues.
  void CatchUp(TimePoint now);

  // Dispatch batches from `queue_id` (ignoring the busy horizon) until
  // request `id` is no longer pending. Its completion arrives through the
  // completion callback; no-op if the id is not pending.
  void ForceDispatch(uint32_t queue_id, int64_t id, TimePoint now);

  // Dispatch everything pending on every queue. Returns the latest completion
  // time produced (or `now` when nothing was pending).
  TimePoint Drain(TimePoint now);

  // Remove pending requests matching `pred` from every queue and return them.
  // No completion callbacks fire for canceled requests.
  std::vector<IoRequest> CancelMatching(const std::function<bool(const IoRequest&)>& pred);

  // Pages pending across all queues (in-flight budget accounting).
  int64_t PendingPages(IoOp op) const;

 private:
  struct QueueState {
    DeviceQueue queue;
    IoDispatchFn dispatch;
    IoCompleteFn complete;
    TimePoint busy_until;

    QueueState(std::string name, DeviceQueueConfig config, IoDispatchFn d, IoCompleteFn c)
        : queue(std::move(name), config), dispatch(std::move(d)), complete(std::move(c)) {}
  };

  // Dispatch one batch from `qs` at its natural start time; returns the
  // completion time.
  TimePoint DispatchOne(QueueState& qs);

  std::map<uint32_t, std::unique_ptr<QueueState>> queues_;  // ordered: deterministic pumping
  int64_t next_id_ = 1;
  bool pumping_ = false;  // re-entrancy guard (completions may Submit)
};

}  // namespace sled

#endif  // SLEDS_SRC_IO_IO_SCHEDULER_H_
