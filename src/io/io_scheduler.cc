#include "src/io/io_scheduler.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"

namespace sled {

void IoScheduler::AttachQueue(uint32_t queue_id, std::string name, DeviceQueueConfig config,
                              IoDispatchFn dispatch, IoCompleteFn complete) {
  SLED_CHECK(!queues_.contains(queue_id), "queue id already attached");
  queues_.emplace(queue_id, std::make_unique<QueueState>(std::move(name), config,
                                                         std::move(dispatch), std::move(complete)));
}

const DeviceQueue* IoScheduler::queue(uint32_t queue_id) const {
  auto it = queues_.find(queue_id);
  return it == queues_.end() ? nullptr : &it->second->queue;
}

void IoScheduler::ForEachQueue(
    const std::function<void(uint32_t, const DeviceQueue&)>& fn) const {
  for (const auto& [id, qs] : queues_) {
    fn(id, qs->queue);
  }
}

TimePoint IoScheduler::DispatchOne(QueueState& qs) {
  // The device goes idle at busy_until; the decision instant is when it both
  // is idle and has work. Only requests already submitted by then compete.
  const TimePoint at = std::max(qs.busy_until, qs.queue.EarliestSubmit());
  IoBatch batch = qs.queue.PopBatch(at);
  Result<Duration> service = qs.dispatch(batch.merged, static_cast<int>(batch.parts.size()));
  // busy_until moves *before* completions fire: a completion callback may
  // Submit (e.g. writeback of an evicted dirty page), and that submission must
  // see the device busy through this batch.
  const bool ok = service.ok();
  const TimePoint done = at + (ok ? *service : Duration());
  qs.busy_until = done;
  for (const IoRequest& part : batch.parts) {
    qs.complete(part, done, ok);
  }
  return done;
}

void IoScheduler::Submit(uint32_t queue_id, IoRequest req) {
  auto it = queues_.find(queue_id);
  SLED_CHECK(it != queues_.end(), "Submit to unattached queue");
  const TimePoint now = req.submit;
  it->second->queue.Push(std::move(req));
  CatchUp(now);  // no-op when called from inside a dispatch (pump guard)
}

void IoScheduler::CatchUp(TimePoint now) {
  if (pumping_) {
    return;  // nested submission during a dispatch; outer loop re-evaluates
  }
  pumping_ = true;
  // Keep dispatching any queue whose next decision instant is <= now. A
  // completion can push new requests onto *other* queues, so loop to a fixed
  // point across all of them.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [id, qs] : queues_) {
      while (!qs->queue.empty() &&
             std::max(qs->busy_until, qs->queue.EarliestSubmit()) <= now) {
        DispatchOne(*qs);
        progress = true;
      }
    }
  }
  pumping_ = false;
}

void IoScheduler::ForceDispatch(uint32_t queue_id, int64_t id, TimePoint now) {
  auto it = queues_.find(queue_id);
  SLED_CHECK(it != queues_.end(), "ForceDispatch on unattached queue");
  SLED_CHECK(!pumping_, "ForceDispatch during dispatch");
  QueueState& qs = *it->second;
  pumping_ = true;
  while (qs.queue.HasPending(id)) {
    DispatchOne(qs);
  }
  pumping_ = false;
  // The forced wait may have idled other queues past their next decision
  // instant; bring everything back to `now`.
  CatchUp(now);
}

TimePoint IoScheduler::Drain(TimePoint now) {
  SLED_CHECK(!pumping_, "Drain during dispatch");
  TimePoint latest = now;
  pumping_ = true;
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto& [id, qs] : queues_) {
      while (!qs->queue.empty()) {
        latest = std::max(latest, DispatchOne(*qs));
        progress = true;
      }
    }
  }
  pumping_ = false;
  return latest;
}

std::vector<IoRequest> IoScheduler::CancelMatching(
    const std::function<bool(const IoRequest&)>& pred) {
  std::vector<IoRequest> out;
  for (auto& [id, qs] : queues_) {
    std::vector<IoRequest> canceled = qs->queue.CancelMatching(pred);
    out.insert(out.end(), canceled.begin(), canceled.end());
  }
  return out;
}

int64_t IoScheduler::PendingPages(IoOp op) const {
  int64_t pages = 0;
  for (const auto& [id, qs] : queues_) {
    pages += qs->queue.PendingPages(op);
  }
  return pages;
}

}  // namespace sled
