// DeviceQueue: the pending-request queue of one storage device (one mounted
// file system's backing store). Holds requests between submit and dispatch,
// picks the next request according to the configured policy, and merges
// adjacent pending requests into one device access when coalescing is on.
//
// The queue itself is pure ordering logic — it never touches a device or the
// clock. The IoScheduler owns the timeline (busy_until, completion times) and
// asks the queue only "which request(s) would the device service next if it
// went idle at time `at`?". Causality rule: only requests with submit <= `at`
// are candidates; a request submitted after the decision instant cannot
// influence it.
#ifndef SLEDS_SRC_IO_DEVICE_QUEUE_H_
#define SLEDS_SRC_IO_DEVICE_QUEUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/io/io_request.h"

namespace sled {

struct DeviceQueueConfig {
  IoPolicy policy = IoPolicy::kFifo;
  // Merge pending requests that are logically and physically adjacent to the
  // picked request into one dispatch (adjacent-request coalescing).
  bool coalesce = false;
  // Upper bound on one merged dispatch, in pages.
  int64_t max_merge_pages = 256;
};

struct DeviceQueueStats {
  int64_t submitted = 0;
  int64_t dispatched_batches = 0;
  int64_t dispatched_pages = 0;
  int64_t merged = 0;    // requests folded into another request's dispatch
  int64_t canceled = 0;
  int64_t max_depth = 0;
};

// One dispatch decision: `merged` is the single device access to perform
// (covering every part's pages), `parts` are the original requests it
// completes, in ascending page order.
struct IoBatch {
  IoRequest merged;
  std::vector<IoRequest> parts;
};

class DeviceQueue {
 public:
  DeviceQueue(std::string name, DeviceQueueConfig config);

  DeviceQueue(const DeviceQueue&) = delete;
  DeviceQueue& operator=(const DeviceQueue&) = delete;

  const std::string& name() const { return name_; }
  bool empty() const { return pending_.empty(); }
  int64_t depth() const { return static_cast<int64_t>(pending_.size()); }
  const DeviceQueueStats& stats() const { return stats_; }

  void Push(IoRequest req);
  bool HasPending(int64_t id) const;

  // Earliest submit time among pending requests (the soonest instant an idle
  // device could start servicing the queue). Requires non-empty.
  TimePoint EarliestSubmit() const;

  // Pick and remove the next batch the device would service at decision time
  // `at`. Candidates are requests with submit <= at; requires at least one
  // (i.e. at >= EarliestSubmit()). Updates the elevator head position.
  IoBatch PopBatch(TimePoint at);

  // Remove and return every pending request matching `pred` (truncate/unlink
  // cancellation). Already-dispatched requests are not here and cannot be
  // recalled.
  std::vector<IoRequest> CancelMatching(const std::function<bool(const IoRequest&)>& pred);

  // Pages still pending per op (writeback-drain planning; also consulted per
  // demand miss by the readahead budget, so kept as a running counter instead
  // of an O(depth) scan).
  int64_t PendingPages(IoOp op) const {
    return pending_pages_[static_cast<size_t>(op)];
  }
  void ForEachPending(const std::function<void(const IoRequest&)>& fn) const;

 private:
  // Index into pending_ of the primary candidate at decision time `at`.
  size_t PickPrimary(TimePoint at) const;

  std::string name_;
  DeviceQueueConfig config_;
  std::vector<IoRequest> pending_;  // arrival order (ids strictly increase)
  // C-LOOK sweep position: device address one past the last dispatched byte.
  int64_t head_addr_ = 0;
  int64_t pending_pages_[2] = {0, 0};  // indexed by IoOp; mirrors pending_
  DeviceQueueStats stats_;
};

}  // namespace sled

#endif  // SLEDS_SRC_IO_DEVICE_QUEUE_H_
