// grep — fixed-string line search, with and without SLEDs (paper §4.3/§5.2).
//
// The SLEDs adaptation follows the paper's description: the file is traversed
// in the order recommended by the pick library (record-oriented, so no line
// ever spans a low/high-latency seam), matches are buffered, sorted by their
// offset in the file at the end, and only then "dumped to stdout" — which is
// why switches like -b and -n had to be reimplemented (line numbers are not
// known until the whole file has been seen).
//
// Two modes are measured in the paper: a full pass over the file, and -q
// (terminate on the first match found — with SLEDs that is the first match
// in *pick* order, which is exactly where the dramatic speedups come from).
#ifndef SLEDS_SRC_APPS_GREP_H_
#define SLEDS_SRC_APPS_GREP_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/apps/app_costs.h"
#include "src/common/result.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

struct GrepOptions {
  bool use_sleds = false;
  bool quiet_first_match = false;  // -q: stop at the first match
  bool line_numbers = false;       // -n
  bool byte_offsets = false;       // -b
  // Context lines (-B / -A). In SLEDs mode context never crosses a SLED
  // seam: record-oriented picking aligns seams to line boundaries, and the
  // library does not fetch extra data just for context — the same
  // restructuring cost the paper describes for its buffered output.
  int before_context = 0;
  int after_context = 0;
  int64_t buffer_bytes = kDefaultAppBuffer;
  // Run the scan as a kernel-resident completion program (kFindFirst):
  // requires -q (the program returns found/offset, not match lines). The
  // kernel scans chunks at completion, stops at the first hit, and cancels
  // queued readahead past it — zero per-chunk syscalls. With use_sleds the
  // in-kernel plan consumes SLED sections lowest-latency-first.
  bool kernel_program = false;
  AppCpuCosts costs;
};

struct GrepMatch {
  int64_t line_offset = 0;  // byte offset of the start of the matching line
  int64_t line_number = 0;  // 1-based; filled when -n was requested
  std::string line;
  std::vector<std::string> before;  // -B context, oldest first
  std::vector<std::string> after;   // -A context, in file order

  friend bool operator==(const GrepMatch&, const GrepMatch&) = default;
};

struct GrepResult {
  bool found = false;
  // In file order (the SLEDs path sorts before returning). Empty under -q.
  std::vector<GrepMatch> matches;
};

class GrepApp {
 public:
  static Result<GrepResult> Run(SimKernel& kernel, Process& process, std::string_view path,
                                std::string_view pattern, const GrepOptions& options);
};

// Boyer-Moore-Horspool search over `haystack` (exposed for tests). Returns
// match positions.
std::vector<size_t> HorspoolSearchAll(std::string_view haystack, std::string_view needle);

}  // namespace sled

#endif  // SLEDS_SRC_APPS_GREP_H_
