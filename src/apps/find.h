// find — directory-tree walk with predicates, including the paper's new
// `-latency` predicate (§4.3/§5.2):
//
//   find -latency +n   files whose total estimated delivery time > n seconds
//   find -latency  n   ... == n seconds (rounded)
//   find -latency -n   ... < n seconds
//
// `mn`/`Mn` select milliseconds and `un`/`Un` microseconds, as in the paper.
// The predicate prunes expensive I/O: on an HSM it can restrict a search to
// data that is staged on disk or on an already-mounted tape.
#ifndef SLEDS_SRC_APPS_FIND_H_
#define SLEDS_SRC_APPS_FIND_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

enum class LatencyCmp { kLess, kEqual, kGreater };

struct LatencyPredicate {
  LatencyCmp cmp = LatencyCmp::kEqual;
  Duration threshold;
};

// Parse the paper's predicate syntax: "+5", "-5", "5", "m200", "+u10", ...
// Sign first (optional), then unit letter (optional m/M or u/U), then the
// number. Fails on anything else.
Result<LatencyPredicate> ParseLatencyPredicate(std::string_view text);

struct FindOptions {
  // Substring filter on the file name (empty = all). (Real find uses globs;
  // a substring is enough for the experiments.)
  std::string name_contains;
  std::optional<LatencyPredicate> latency;
  bool include_dirs = false;
  // -xdev: do not descend into other mounted file systems. The paper pairs
  // this classic switch with -latency: "useful to, for example, prevent find
  // from running on NFS-mounted partitions" (§5.2).
  bool same_fs_only = false;
};

struct FindResult {
  std::vector<std::string> paths;      // matches, in walk order
  int64_t files_examined = 0;
  int64_t files_pruned_by_latency = 0;
  int64_t mounts_skipped = 0;          // entries skipped by -xdev
};

class FindApp {
 public:
  static Result<FindResult> Run(SimKernel& kernel, Process& process, std::string_view root,
                                const FindOptions& options);
};

}  // namespace sled

#endif  // SLEDS_SRC_APPS_FIND_H_
