// find — directory-tree walk with predicates, including the paper's new
// `-latency` predicate (§4.3/§5.2):
//
//   find -latency +n   files whose total estimated delivery time > n seconds
//   find -latency  n   ... == n seconds (rounded)
//   find -latency -n   ... < n seconds
//
// `mn`/`Mn` select milliseconds and `un`/`Un` microseconds, as in the paper.
// The predicate prunes expensive I/O: on an HSM it can restrict a search to
// data that is staged on disk or on an already-mounted tape.
#ifndef SLEDS_SRC_APPS_FIND_H_
#define SLEDS_SRC_APPS_FIND_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/apps/app_costs.h"
#include "src/common/result.h"
#include "src/common/units.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

enum class LatencyCmp { kLess, kEqual, kGreater };

struct LatencyPredicate {
  LatencyCmp cmp = LatencyCmp::kEqual;
  Duration threshold;
};

// Parse the paper's predicate syntax: "+5", "-5", "5", "m200", "+u10", ...
// Sign first (optional), then unit letter (optional m/M or u/U), then the
// number. Fails on anything else.
Result<LatencyPredicate> ParseLatencyPredicate(std::string_view text);

struct FindOptions {
  // Substring filter on the file name (empty = all). (Real find uses globs;
  // a substring is enough for the experiments.)
  std::string name_contains;
  std::optional<LatencyPredicate> latency;
  bool include_dirs = false;
  // -xdev: do not descend into other mounted file systems. The paper pairs
  // this classic switch with -latency: "useful to, for example, prevent find
  // from running on NFS-mounted partitions" (§5.2).
  bool same_fs_only = false;
};

struct FindResult {
  std::vector<std::string> paths;      // matches, in walk order
  int64_t files_examined = 0;
  int64_t files_pruned_by_latency = 0;
  int64_t mounts_skipped = 0;          // entries skipped by -xdev
};

// ---- directory-chain walk (completion-program showcase) ----
//
// A chain file is find's worst I/O shape distilled: fixed-size blocks, each
// holding the offset of the next block plus a name, visited strictly one
// dependent hop at a time (see workload/chain_gen.h for the block layout).
// The userspace oracle pays two syscalls (lseek + read) and one user-space
// copy per hop; the kernel_program variant walks the same chain from the
// I/O completion path — one syscall total.
struct ChainOptions {
  // Substring filter on block names; matched block offsets are recorded (up
  // to kProgMaxRecorded, the shared reporting cap).
  std::string name_contains;
  int64_t start_offset = 0;
  int64_t block_bytes = kPageSize;
  // Hop budget: the oracle stops after this many blocks; the program's
  // resubmit bound enforces the same limit in-kernel.
  int64_t max_hops = 1 << 20;
  bool kernel_program = false;
  AppCpuCosts costs;
};

struct ChainResult {
  int64_t blocks_visited = 0;
  int64_t names_matched = 0;
  // Order-sensitive FNV-1a over every visited block's name: equal hashes
  // prove the two paths visited the same blocks in the same order.
  uint64_t chain_hash = 0;
  std::vector<int64_t> matched_offsets;  // first kProgMaxRecorded matches

  friend bool operator==(const ChainResult&, const ChainResult&) = default;
};

class FindApp {
 public:
  static Result<FindResult> Run(SimKernel& kernel, Process& process, std::string_view root,
                                const FindOptions& options);
  static Result<ChainResult> RunChain(SimKernel& kernel, Process& process, std::string_view path,
                                      const ChainOptions& options);
};

}  // namespace sled

#endif  // SLEDS_SRC_APPS_FIND_H_
