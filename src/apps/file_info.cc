#include "src/apps/file_info.h"

#include "src/sleds/delivery.h"

namespace sled {

Result<FileInfoReport> FileInfoApp::Run(SimKernel& kernel, Process& process,
                                        std::string_view path) {
  FileInfoReport report;
  report.path = std::string(path);
  SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
  SLED_ASSIGN_OR_RETURN(InodeAttr attr, kernel.Fstat(process, fd));
  report.size_bytes = attr.size;
  auto sleds = kernel.IoctlSledsGet(process, fd);
  if (!sleds.ok()) {
    // Error path: fd cleanup is best-effort; the original error is the story.
    (void)kernel.Close(process, fd);
    return sleds.error();
  }
  report.sleds = std::move(sleds).value();
  report.estimated_delivery = TotalDeliveryTime(report.sleds, AttackPlan::kBest);
  report.panel_text = "Properties: " + report.path + "\n" +
                      "size: " + std::to_string(report.size_bytes) + " bytes\n" +
                      FormatSledReport(kernel, report.sleds);
  SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
  return report;
}

}  // namespace sled
