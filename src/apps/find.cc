#include "src/apps/find.h"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "src/sleds/delivery.h"

namespace sled {

Result<LatencyPredicate> ParseLatencyPredicate(std::string_view text) {
  if (text.empty()) {
    return Err::kInval;
  }
  LatencyPredicate pred;
  size_t i = 0;
  if (text[i] == '+') {
    pred.cmp = LatencyCmp::kGreater;
    ++i;
  } else if (text[i] == '-') {
    pred.cmp = LatencyCmp::kLess;
    ++i;
  } else {
    pred.cmp = LatencyCmp::kEqual;
  }
  double scale = 1.0;  // seconds
  if (i < text.size() && (text[i] == 'm' || text[i] == 'M')) {
    scale = 1e-3;
    ++i;
  } else if (i < text.size() && (text[i] == 'u' || text[i] == 'U')) {
    scale = 1e-6;
    ++i;
  }
  if (i >= text.size()) {
    return Err::kInval;
  }
  char* end = nullptr;
  const std::string digits(text.substr(i));
  const double value = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || *end != '\0' || value < 0) {
    return Err::kInval;
  }
  pred.threshold = SecondsF(value * scale);
  return pred;
}

namespace {

bool LatencyMatches(const LatencyPredicate& pred, Duration estimate) {
  switch (pred.cmp) {
    case LatencyCmp::kGreater:
      return estimate > pred.threshold;
    case LatencyCmp::kLess:
      return estimate < pred.threshold;
    case LatencyCmp::kEqual:
      // "Exactly n" compares at the predicate's own granularity (whole
      // seconds / milliseconds / microseconds would all be surprising to
      // match bit-exactly; find -atime rounds the same way).
      return std::llround(estimate.ToSeconds()) == std::llround(pred.threshold.ToSeconds());
  }
  return false;
}

Result<void> Walk(SimKernel& kernel, Process& process, const std::string& dir,
                  const FindOptions& options, uint32_t root_fs_id, FindResult* out) {
  SLED_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, kernel.ReadDir(process, dir));
  for (const DirEntry& e : entries) {
    const std::string path = dir == "/" ? "/" + e.name : dir + "/" + e.name;
    if (options.same_fs_only) {
      auto resolved = kernel.vfs().Resolve(path);
      if (resolved.ok() && resolved->fs_id != root_fs_id) {
        ++out->mounts_skipped;
        continue;  // -xdev: a different file system is mounted here
      }
    }
    if (e.is_dir) {
      if (options.include_dirs &&
          (options.name_contains.empty() ||
           e.name.find(options.name_contains) != std::string::npos)) {
        out->paths.push_back(path);
      }
      SLED_RETURN_IF_ERROR(Walk(kernel, process, path, options, root_fs_id, out));
      continue;
    }
    ++out->files_examined;
    if (!options.name_contains.empty() &&
        e.name.find(options.name_contains) == std::string::npos) {
      continue;
    }
    if (options.latency.has_value()) {
      // The -latency predicate costs one open + FSLEDS_GET + close per file;
      // it never reads file data. This is the pruning power of SLEDs: the
      // decision is made before any expensive I/O happens.
      SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
      auto estimate = TotalDeliveryTime(kernel, process, fd, AttackPlan::kBest);
      SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
      if (!estimate.ok()) {
        return estimate.error();
      }
      if (!LatencyMatches(*options.latency, estimate.value())) {
        ++out->files_pruned_by_latency;
        continue;
      }
    }
    out->paths.push_back(path);
  }
  return Result<void>::Ok();
}

}  // namespace

Result<FindResult> FindApp::Run(SimKernel& kernel, Process& process, std::string_view root,
                                const FindOptions& options) {
  FindResult result;
  SLED_ASSIGN_OR_RETURN(Vfs::Resolved r, kernel.vfs().Resolve(root));
  SLED_RETURN_IF_ERROR(Walk(kernel, process, std::string(root), options, r.fs_id, &result));
  return result;
}

namespace {

int64_t ChainReadI64Le(const char* data) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(data[i]);
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Result<ChainResult> FindApp::RunChain(SimKernel& kernel, Process& process, std::string_view path,
                                      const ChainOptions& options) {
  if (options.block_bytes < 16 || options.start_offset < 0 || options.max_hops < 1) {
    return Err::kInval;
  }
  SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));

  if (options.kernel_program) {
    ProgSpec spec;
    spec.kind = ProgKind::kChainWalk;
    spec.pattern = options.name_contains;
    spec.start_offset = options.start_offset;
    spec.block_bytes = options.block_bytes;
    // The head read is the installed first fetch, not a resubmit, so a
    // budget of max_hops-1 chained reads visits exactly max_hops blocks —
    // the same cutoff as the oracle loop below.
    spec.limits.max_resubmits = static_cast<int32_t>(
        std::min<int64_t>(options.max_hops - 1, std::numeric_limits<int32_t>::max()));
    spec.step_cost_ns_per_byte = static_cast<double>(options.costs.chain_per_byte.nanos());
    auto run = [&]() -> Result<ProgResult> {
      SLED_RETURN_IF_ERROR(kernel.InstallProgram(process, fd, spec));
      return kernel.RunProgram(process, fd);
    }();
    if (!run.ok()) {
      // Error path: fd cleanup is best-effort; the original error is the story.
      (void)kernel.Close(process, fd);
      return run.error();
    }
    SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
    // Hitting the hop budget is the expected way bounded walks end; data
    // faults (bad pointer, short block) are a malformed chain.
    if (run->status != ProgStatus::kOk && run->status != ProgStatus::kAbortedResubmits) {
      return Err::kInval;
    }
    ChainResult result;
    result.blocks_visited = run->blocks_visited;
    result.names_matched = run->names_matched;
    result.chain_hash = run->chain_hash;
    result.matched_offsets.assign(run->matched_offsets.begin(),
                                  run->matched_offsets.begin() + run->matched_count);
    return result;
  }

  // Userspace oracle: two syscalls (lseek + read) and one buffer copy per
  // hop — exactly the per-hop cost the completion program eliminates.
  ChainResult result;
  result.chain_hash = ProgResult().chain_hash;  // shared FNV-1a basis
  std::vector<char> buf(static_cast<size_t>(options.block_bytes));
  SLED_ASSIGN_OR_RETURN(InodeAttr attr, kernel.Fstat(process, fd));
  int64_t offset = options.start_offset;
  for (int64_t hop = 0; offset >= 0; ++hop) {
    if (offset + options.block_bytes > attr.size) {
      (void)kernel.Close(process, fd);
      return Err::kInval;
    }
    SLED_RETURN_IF_ERROR(kernel.Lseek(process, fd, offset, Whence::kSet));
    SLED_ASSIGN_OR_RETURN(
        int64_t n, kernel.Read(process, fd, std::span<char>(buf.data(), buf.size())));
    if (n != options.block_bytes) {
      (void)kernel.Close(process, fd);
      return Err::kIo;
    }
    kernel.ChargeAppCpu(process, options.costs.chain_per_byte * n);
    const int64_t next = ChainReadI64Le(buf.data());
    const int64_t name_len = ChainReadI64Le(buf.data() + 8);
    if (name_len < 0 || 16 + name_len > n) {
      (void)kernel.Close(process, fd);
      return Err::kInval;
    }
    const std::string_view name(buf.data() + 16, static_cast<size_t>(name_len));
    ++result.blocks_visited;
    for (char c : name) {
      result.chain_hash = (result.chain_hash ^ static_cast<uint8_t>(c)) * 1099511628211ULL;
    }
    if (!options.name_contains.empty() &&
        name.find(options.name_contains) != std::string_view::npos) {
      if (result.names_matched < kProgMaxRecorded) {
        result.matched_offsets.push_back(offset);
      }
      ++result.names_matched;
    }
    if (hop + 1 >= options.max_hops) {
      break;
    }
    offset = next;
  }
  SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
  return result;
}

}  // namespace sled
