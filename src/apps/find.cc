#include "src/apps/find.h"

#include <cmath>
#include <cstdlib>

#include "src/sleds/delivery.h"

namespace sled {

Result<LatencyPredicate> ParseLatencyPredicate(std::string_view text) {
  if (text.empty()) {
    return Err::kInval;
  }
  LatencyPredicate pred;
  size_t i = 0;
  if (text[i] == '+') {
    pred.cmp = LatencyCmp::kGreater;
    ++i;
  } else if (text[i] == '-') {
    pred.cmp = LatencyCmp::kLess;
    ++i;
  } else {
    pred.cmp = LatencyCmp::kEqual;
  }
  double scale = 1.0;  // seconds
  if (i < text.size() && (text[i] == 'm' || text[i] == 'M')) {
    scale = 1e-3;
    ++i;
  } else if (i < text.size() && (text[i] == 'u' || text[i] == 'U')) {
    scale = 1e-6;
    ++i;
  }
  if (i >= text.size()) {
    return Err::kInval;
  }
  char* end = nullptr;
  const std::string digits(text.substr(i));
  const double value = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str() || *end != '\0' || value < 0) {
    return Err::kInval;
  }
  pred.threshold = SecondsF(value * scale);
  return pred;
}

namespace {

bool LatencyMatches(const LatencyPredicate& pred, Duration estimate) {
  switch (pred.cmp) {
    case LatencyCmp::kGreater:
      return estimate > pred.threshold;
    case LatencyCmp::kLess:
      return estimate < pred.threshold;
    case LatencyCmp::kEqual:
      // "Exactly n" compares at the predicate's own granularity (whole
      // seconds / milliseconds / microseconds would all be surprising to
      // match bit-exactly; find -atime rounds the same way).
      return std::llround(estimate.ToSeconds()) == std::llround(pred.threshold.ToSeconds());
  }
  return false;
}

Result<void> Walk(SimKernel& kernel, Process& process, const std::string& dir,
                  const FindOptions& options, uint32_t root_fs_id, FindResult* out) {
  SLED_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, kernel.ReadDir(process, dir));
  for (const DirEntry& e : entries) {
    const std::string path = dir == "/" ? "/" + e.name : dir + "/" + e.name;
    if (options.same_fs_only) {
      auto resolved = kernel.vfs().Resolve(path);
      if (resolved.ok() && resolved->fs_id != root_fs_id) {
        ++out->mounts_skipped;
        continue;  // -xdev: a different file system is mounted here
      }
    }
    if (e.is_dir) {
      if (options.include_dirs &&
          (options.name_contains.empty() ||
           e.name.find(options.name_contains) != std::string::npos)) {
        out->paths.push_back(path);
      }
      SLED_RETURN_IF_ERROR(Walk(kernel, process, path, options, root_fs_id, out));
      continue;
    }
    ++out->files_examined;
    if (!options.name_contains.empty() &&
        e.name.find(options.name_contains) == std::string::npos) {
      continue;
    }
    if (options.latency.has_value()) {
      // The -latency predicate costs one open + FSLEDS_GET + close per file;
      // it never reads file data. This is the pruning power of SLEDs: the
      // decision is made before any expensive I/O happens.
      SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
      auto estimate = TotalDeliveryTime(kernel, process, fd, AttackPlan::kBest);
      SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
      if (!estimate.ok()) {
        return estimate.error();
      }
      if (!LatencyMatches(*options.latency, estimate.value())) {
        ++out->files_pruned_by_latency;
        continue;
      }
    }
    out->paths.push_back(path);
  }
  return Result<void>::Ok();
}

}  // namespace

Result<FindResult> FindApp::Run(SimKernel& kernel, Process& process, std::string_view root,
                                const FindOptions& options) {
  FindResult result;
  SLED_ASSIGN_OR_RETURN(Vfs::Resolved r, kernel.vfs().Resolve(root));
  SLED_RETURN_IF_ERROR(Walk(kernel, process, std::string(root), options, r.fs_id, &result));
  return result;
}

}  // namespace sled
