// file_info — the gmc file-properties SLEDs panel (paper §5.2, Figure 6):
// reports the length, offset, latency and bandwidth of each SLED plus the
// estimated total delivery time, so a user can decide whether a file is
// worth opening before paying the retrieval cost.
#ifndef SLEDS_SRC_APPS_FILE_INFO_H_
#define SLEDS_SRC_APPS_FILE_INFO_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/kernel/sim_kernel.h"
#include "src/sleds/sled.h"

namespace sled {

struct FileInfoReport {
  std::string path;
  int64_t size_bytes = 0;
  SledVector sleds;
  Duration estimated_delivery;
  std::string panel_text;  // the rendered properties panel
};

class FileInfoApp {
 public:
  static Result<FileInfoReport> Run(SimKernel& kernel, Process& process, std::string_view path);
};

}  // namespace sled

#endif  // SLEDS_SRC_APPS_FILE_INFO_H_
