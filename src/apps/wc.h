// wc — word/line/byte count, with and without SLEDs (paper §4.3/§5.2).
//
// "For wc, since the order of data access is not significant, little overhead
// is generated in modifying the code." Lines and bytes are trivially
// order-independent; words need a small amount of bookkeeping because a word
// can span two chunks that arrive out of order: each processed chunk records
// whether its first/last byte was inside a word, and adjacent chunk pairs
// that were both "in a word" at the seam are merged at the end.
#ifndef SLEDS_SRC_APPS_WC_H_
#define SLEDS_SRC_APPS_WC_H_

#include <string_view>

#include "src/apps/app_costs.h"
#include "src/common/result.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

struct WcResult {
  int64_t lines = 0;
  int64_t words = 0;
  int64_t bytes = 0;

  friend bool operator==(const WcResult&, const WcResult&) = default;
};

struct WcOptions {
  bool use_sleds = false;  // the command-line switch the paper added
  // Access the file through the mmap path instead of read(): no kernel copy,
  // the "mmap-friendly" variant the paper projects in §5.2.
  bool use_mmap = false;
  int64_t buffer_bytes = kDefaultAppBuffer;
  // Run the count as a kernel-resident completion program (kCount): the
  // kernel reduces lines/words/bytes at I/O completion and returns only the
  // three counters — one syscall for the whole file instead of one per
  // buffer. Program plans are sequential (word seams carry in file order),
  // which is also wc's natural access pattern.
  bool kernel_program = false;
  AppCpuCosts costs;
};

class WcApp {
 public:
  static Result<WcResult> Run(SimKernel& kernel, Process& process, std::string_view path,
                              const WcOptions& options);
};

}  // namespace sled

#endif  // SLEDS_SRC_APPS_WC_H_
