// Per-byte user-CPU costs for the modified utilities. Values are late-90s
// workstation ballparks; what matters for the reproduction is that SLEDs-mode
// code paths pay *more* CPU than plain paths ("The increase in execution time
// for small files is all CPU time", §5.2), so that the small-file overhead
// and the CPU/I/O trade-off are visible in the results.
#ifndef SLEDS_SRC_APPS_APP_COSTS_H_
#define SLEDS_SRC_APPS_APP_COSTS_H_

#include "src/common/sim_time.h"

namespace sled {

struct AppCpuCosts {
  // wc: classify each byte (whitespace/word state machine).
  Duration wc_per_byte = Nanoseconds(8);
  // grep: Boyer-Moore-Horspool scan amortizes below 1 cycle/byte, but line
  // assembly and bookkeeping dominate.
  Duration grep_per_byte = Nanoseconds(12);
  // Extra per-byte cost of SLEDs record management and data copying in grep
  // (§5.2: read() instead of mmap() copies data; record handling adds
  // complexity).
  Duration sleds_record_per_byte = Nanoseconds(4);
  // Extra per-byte bookkeeping for order-insensitive apps like wc ("little
  // overhead is generated in modifying the code", §5.2).
  Duration sleds_pick_per_byte = Nanoseconds(1);
  // Per buffered match: linked-list insert plus final sort share.
  Duration grep_per_match = Microseconds(2);
  // FITS pixel conversion (big-endian decode + float convert).
  Duration fits_per_element = Nanoseconds(30);
  // Histogram binning / boxcar accumulation per element.
  Duration image_per_element = Nanoseconds(15);
  // Chain-walk block parse (pointer + name extraction). Charged identically
  // by the userspace oracle (FindApp::RunChain) and the kernel-resident
  // program (ProgSpec::step_cost_ns_per_byte), so the measured difference
  // between the two paths is purely crossings and copies.
  Duration chain_per_byte = Nanoseconds(4);
};

// The per-syscall crossing cost itself lives in CpuCosts::syscall_overhead
// (src/kernel/sim_kernel.h), overridable process-wide via
// $SLEDS_SYSCALL_COST; completion-program variants of the tools below
// eliminate crossings rather than re-pricing them.

inline constexpr int64_t kDefaultAppBuffer = 64 * 1024;

}  // namespace sled

#endif  // SLEDS_SRC_APPS_APP_COSTS_H_
