#include "src/apps/fimhisto.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/apps/fits_scan.h"

namespace sled {
namespace {

// Pass 1: byte-for-byte copy of the whole input file (header + data unit).
Result<void> CopyFile(SimKernel& kernel, Process& process, int in_fd, std::string_view output,
                      int* out_fd) {
  SLED_ASSIGN_OR_RETURN(*out_fd, kernel.Create(process, output));
  SLED_RETURN_IF_ERROR(kernel.Lseek(process, in_fd, 0, Whence::kSet));
  std::vector<char> buf(static_cast<size_t>(64 * kKiB));
  while (true) {
    SLED_ASSIGN_OR_RETURN(int64_t n,
                          kernel.Read(process, in_fd, std::span<char>(buf.data(), buf.size())));
    if (n == 0) {
      return Result<void>::Ok();
    }
    SLED_ASSIGN_OR_RETURN(
        int64_t w, kernel.Write(process, *out_fd,
                                std::span<const char>(buf.data(), static_cast<size_t>(n))));
    if (w != n) {
      return Err::kIo;
    }
  }
}

}  // namespace

Result<FimhistoResult> FimhistoApp::Run(SimKernel& kernel, Process& process,
                                        std::string_view input, std::string_view output,
                                        const FimhistoOptions& options) {
  if (options.num_bins <= 0) {
    return Err::kInval;
  }
  SLED_ASSIGN_OR_RETURN(int in_fd, kernel.Open(process, input));
  SLED_ASSIGN_OR_RETURN(FitsHeader header, FitsReadHeader(kernel, process, in_fd));

  // ---- pass 1: copy ----
  int out_fd = -1;
  {
    auto copied = CopyFile(kernel, process, in_fd, output, &out_fd);
    if (!copied.ok()) {
      // Error path: fd cleanup is best-effort; the original error is the story.
      (void)kernel.Close(process, in_fd);
      return copied.error();
    }
  }

  FimhistoResult result;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  if (options.kernel_program) {
    // Completion-program variant: one kHistogram program performs both the
    // min/max pass and the binning pass at I/O completion, using the header
    // geometry the app already parsed. Costs match the oracle's per-element
    // charges (format conversion + image op), expressed per byte.
    ProgSpec spec;
    spec.kind = ProgKind::kHistogram;
    spec.num_bins = options.num_bins;
    spec.bitpix = header.bitpix;
    spec.data_offset = header.data_offset;
    spec.element_count = header.element_count();
    spec.chunk_bytes = options.buffer_elements * header.element_size();
    spec.step_cost_ns_per_byte =
        static_cast<double>(
            (options.costs.fits_per_element + options.costs.image_per_element).nanos()) /
        static_cast<double>(header.element_size());
    auto run = [&]() -> Result<ProgResult> {
      SLED_RETURN_IF_ERROR(kernel.InstallProgram(process, in_fd, spec));
      return kernel.RunProgram(process, in_fd);
    }();
    if (run.ok() && run->status != ProgStatus::kOk) {
      run = Err::kInval;  // program exceeded its sandbox budget
    }
    if (!run.ok()) {
      // Error path: fd cleanup is best-effort; the original error is the story.
      (void)kernel.Close(process, in_fd);
      (void)kernel.Close(process, out_fd);
      return run.error();
    }
    lo = run->min_value;
    hi = run->max_value;
    result.min_value = lo;
    result.max_value = hi;
    result.bins.assign(run->bins.begin(), run->bins.begin() + options.num_bins);
  } else {
  // ---- pass 2: min/max (with format conversion) ----
  SLED_RETURN_IF_ERROR(FitsScanElements(
      kernel, process, in_fd, header, options.use_sleds, options.buffer_elements, options.costs,
      [&](int64_t /*first*/, std::span<const double> values) {
        for (double v : values) {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
        kernel.ChargeAppCpu(process,
                            options.costs.image_per_element *
                                static_cast<int64_t>(values.size()));
      }));
  if (!std::isfinite(lo)) {
    lo = 0.0;
    hi = 0.0;
  }
  result.min_value = lo;
  result.max_value = hi;

  // ---- pass 3: bin ----
  result.bins.assign(static_cast<size_t>(options.num_bins), 0);
  const double width = hi > lo ? (hi - lo) / options.num_bins : 1.0;
  SLED_RETURN_IF_ERROR(FitsScanElements(
      kernel, process, in_fd, header, options.use_sleds, options.buffer_elements, options.costs,
      [&](int64_t /*first*/, std::span<const double> values) {
        for (double v : values) {
          int bin = static_cast<int>((v - lo) / width);
          bin = std::clamp(bin, 0, options.num_bins - 1);
          ++result.bins[static_cast<size_t>(bin)];
        }
        kernel.ChargeAppCpu(process,
                            options.costs.image_per_element *
                                static_cast<int64_t>(values.size()));
      }));
  }

  // Append the histogram to the output as a small extension: one header
  // block plus the bins as big-endian doubles, padded to the FITS block.
  {
    std::string ext;
    char card[128];
    std::snprintf(card, sizeof(card), "XTENSION= 'HISTOGRAM'  NBINS = %d  MIN = %g  MAX = %g",
                  options.num_bins, lo, hi);
    ext = card;
    ext.resize(static_cast<size_t>(kFitsBlock), ' ');
    std::string data;
    char scratch[8];
    for (int64_t count : result.bins) {
      FitsEncodePixel(static_cast<double>(count), -64, scratch);
      data.append(scratch, 8);
    }
    data.resize(((data.size() + kFitsBlock - 1) / kFitsBlock) * kFitsBlock, '\0');
    ext += data;
    SLED_RETURN_IF_ERROR(kernel.Lseek(process, out_fd, 0, Whence::kEnd));
    SLED_RETURN_IF_ERROR(
        kernel.Write(process, out_fd, std::span<const char>(ext.data(), ext.size())));
  }
  SLED_RETURN_IF_ERROR(kernel.Close(process, in_fd));
  SLED_RETURN_IF_ERROR(kernel.Close(process, out_fd));
  return result;
}

}  // namespace sled
