#include "src/apps/fits_scan.h"

#include <algorithm>
#include <vector>

#include "src/fits/ffsleds.h"

namespace sled {
namespace {

// Read and decode `count` elements starting at `first`, then hand them to fn.
Result<void> ReadRun(SimKernel& kernel, Process& process, int fd, const FitsHeader& header,
                     int64_t first, int64_t count, const AppCpuCosts& costs,
                     std::vector<char>* raw, std::vector<double>* decoded,
                     const ElementRunFn& fn) {
  const int64_t elem = header.element_size();
  raw->resize(static_cast<size_t>(count * elem));
  SLED_RETURN_IF_ERROR(
      kernel.Lseek(process, fd, header.data_offset + first * elem, Whence::kSet));
  SLED_ASSIGN_OR_RETURN(int64_t n,
                        kernel.Read(process, fd, std::span<char>(raw->data(), raw->size())));
  if (n != count * elem) {
    return Err::kIo;
  }
  decoded->resize(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    (*decoded)[static_cast<size_t>(i)] = FitsDecodePixel(raw->data() + i * elem, header.bitpix);
  }
  kernel.ChargeAppCpu(process, costs.fits_per_element * count);
  fn(first, std::span<const double>(decoded->data(), decoded->size()));
  return Result<void>::Ok();
}

}  // namespace

Result<void> FitsScanElements(SimKernel& kernel, Process& process, int fd,
                              const FitsHeader& header, bool use_sleds, int64_t buffer_elements,
                              const AppCpuCosts& costs, const ElementRunFn& fn) {
  if (buffer_elements <= 0) {
    return Err::kInval;
  }
  std::vector<char> raw;
  std::vector<double> decoded;
  const int64_t total = header.element_count();
  if (!use_sleds) {
    for (int64_t first = 0; first < total; first += buffer_elements) {
      const int64_t count = std::min(buffer_elements, total - first);
      SLED_RETURN_IF_ERROR(
          ReadRun(kernel, process, fd, header, first, count, costs, &raw, &decoded, fn));
    }
    return Result<void>::Ok();
  }
  SLED_ASSIGN_OR_RETURN(std::unique_ptr<FfPicker> picker,
                        FfPicker::Create(kernel, process, fd, header, buffer_elements));
  while (true) {
    SLED_ASSIGN_OR_RETURN(FfPicker::ElementPick pick, picker->NextRead());
    if (pick.count == 0) {
      return Result<void>::Ok();
    }
    SLED_RETURN_IF_ERROR(ReadRun(kernel, process, fd, header, pick.first_element, pick.count,
                                 costs, &raw, &decoded, fn));
  }
}

}  // namespace sled
