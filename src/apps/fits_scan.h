// Shared element-scan driver for the LHEASOFT-style tools: iterate over every
// data element of an open FITS file exactly once, either sequentially (plain
// builds) or in the order advised by the ff* SLEDs layer, decoding pixels to
// double and charging conversion CPU.
#ifndef SLEDS_SRC_APPS_FITS_SCAN_H_
#define SLEDS_SRC_APPS_FITS_SCAN_H_

#include <functional>

#include "src/apps/app_costs.h"
#include "src/common/result.h"
#include "src/fits/fits.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

// Called with (index of first element in the run, decoded values).
using ElementRunFn = std::function<void(int64_t, std::span<const double>)>;

// Scan all elements of the image once. `buffer_elements` bounds each run.
Result<void> FitsScanElements(SimKernel& kernel, Process& process, int fd,
                              const FitsHeader& header, bool use_sleds, int64_t buffer_elements,
                              const AppCpuCosts& costs, const ElementRunFn& fn);

}  // namespace sled

#endif  // SLEDS_SRC_APPS_FITS_SCAN_H_
