#include "src/apps/grep.h"

#include <algorithm>
#include <array>
#include <deque>
#include <memory>

#include "src/sleds/picker.h"

namespace sled {

std::vector<size_t> HorspoolSearchAll(std::string_view haystack, std::string_view needle) {
  std::vector<size_t> hits;
  if (needle.empty() || haystack.size() < needle.size()) {
    return hits;
  }
  std::array<size_t, 256> shift;
  shift.fill(needle.size());
  for (size_t i = 0; i + 1 < needle.size(); ++i) {
    shift[static_cast<uint8_t>(needle[i])] = needle.size() - 1 - i;
  }
  size_t pos = 0;
  while (pos + needle.size() <= haystack.size()) {
    if (haystack.compare(pos, needle.size(), needle) == 0) {
      hits.push_back(pos);
    }
    pos += shift[static_cast<uint8_t>(haystack[pos + needle.size() - 1])];
  }
  return hits;
}

namespace {

// Per contiguous-run line scanner: assembles complete lines from chunks that
// arrive in order, searches them, and records matches with enough local
// context to reconstruct global line numbers later.
class RunScanner {
 public:
  RunScanner(std::string_view pattern, const GrepOptions& options,
             std::vector<GrepMatch>* matches)
      : pattern_(pattern), options_(options), matches_(matches) {}

  // Begin a new contiguous run at `offset`. Flushes nothing: callers must
  // FinishRun() first.
  void StartRun(int64_t offset) {
    run_start_ = offset;
    next_offset_ = offset;
    pending_.clear();
    pending_start_ = offset;
    local_newlines_ = 0;
    run_newlines_ = 0;
    before_buf_.clear();
    after_pending_.clear();
  }

  int64_t next_offset() const { return next_offset_; }

  // Feed the next chunk of the run; returns true if -q satisfied.
  bool Feed(std::string_view data) {
    pending_ += data;
    next_offset_ += static_cast<int64_t>(data.size());
    // Process complete lines (up to the last newline).
    const size_t last_nl = pending_.rfind('\n');
    if (last_nl == std::string::npos) {
      return false;
    }
    const bool done = ScanLines(std::string_view(pending_).substr(0, last_nl + 1));
    pending_.erase(0, last_nl + 1);
    pending_start_ += static_cast<int64_t>(last_nl + 1);
    return done;
  }

  // End of run: the remainder (no trailing newline) is still a line.
  bool FinishRun() {
    if (pending_.empty()) {
      return false;
    }
    const bool done = ScanLines(pending_);
    pending_start_ += static_cast<int64_t>(pending_.size());
    pending_.clear();
    return done;
  }

  // (newline count, run info) bookkeeping for -n reconstruction.
  struct RunInfo {
    int64_t start = 0;
    int64_t length = 0;
    int64_t newlines = 0;
  };
  RunInfo TakeRunInfo() const { return {run_start_, next_offset_ - run_start_, run_newlines_}; }
  void ResetRunNewlines() { run_newlines_ = 0; }

 private:
  // Scan whole lines in `text` (which starts at pending_start_).
  bool ScanLines(std::string_view text) {
    size_t line_start = 0;
    while (line_start < text.size()) {
      size_t line_end = text.find('\n', line_start);
      size_t next = 0;
      if (line_end == std::string_view::npos) {
        line_end = text.size();
        next = line_end;
      } else {
        next = line_end + 1;
      }
      const std::string_view line = text.substr(line_start, line_end - line_start);
      // Feed -A context of earlier matches in this run.
      if (!after_pending_.empty()) {
        for (auto it = after_pending_.begin(); it != after_pending_.end();) {
          (*matches_)[it->first].after.emplace_back(line);
          if (--it->second == 0) {
            it = after_pending_.erase(it);
          } else {
            ++it;
          }
        }
      }
      if (!HorspoolSearchAll(line, pattern_).empty()) {
        GrepMatch m;
        m.line_offset = pending_start_ + static_cast<int64_t>(line_start);
        // Local line index within this run; converted to a global number
        // after all runs are merged.
        m.line_number = local_newlines_;
        m.line = std::string(line);
        m.before.assign(before_buf_.begin(), before_buf_.end());
        matches_->push_back(std::move(m));
        if (options_.quiet_first_match) {
          return true;
        }
        if (options_.after_context > 0) {
          after_pending_.emplace_back(matches_->size() - 1, options_.after_context);
        }
      }
      if (options_.before_context > 0) {
        before_buf_.emplace_back(line);
        while (static_cast<int>(before_buf_.size()) > options_.before_context) {
          before_buf_.pop_front();
        }
      }
      if (line_end < text.size()) {
        ++local_newlines_;
        ++run_newlines_;
      }
      line_start = next;
    }
    return false;
  }

  std::string_view pattern_;
  const GrepOptions& options_;
  std::vector<GrepMatch>* matches_;
  int64_t run_start_ = 0;
  int64_t next_offset_ = 0;
  std::string pending_;
  int64_t pending_start_ = 0;
  int64_t local_newlines_ = 0;  // newlines seen before the current line
  int64_t run_newlines_ = 0;
  std::deque<std::string> before_buf_;                    // last -B lines
  std::vector<std::pair<size_t, int>> after_pending_;     // match idx, lines left
};

}  // namespace

Result<GrepResult> GrepApp::Run(SimKernel& kernel, Process& process, std::string_view path,
                                std::string_view pattern, const GrepOptions& options) {
  if (pattern.empty()) {
    return Err::kInval;
  }
  if (options.kernel_program) {
    // Completion-program variant: -q only (the program returns found/offset,
    // not assembled lines). One install + one run replaces the whole
    // read-a-buffer / scan / repeat loop.
    if (!options.quiet_first_match) {
      return Err::kInval;
    }
    SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
    ProgSpec spec;
    spec.kind = ProgKind::kFindFirst;
    spec.pattern = std::string(pattern);
    spec.chunk_bytes = options.buffer_bytes;
    spec.order_by_sleds = options.use_sleds;
    // Same per-byte compute the userspace scan declares, so the two paths
    // differ only in crossings and copies.
    spec.step_cost_ns_per_byte = static_cast<double>(options.costs.grep_per_byte.nanos());
    auto run = [&]() -> Result<ProgResult> {
      SLED_RETURN_IF_ERROR(kernel.InstallProgram(process, fd, spec));
      return kernel.RunProgram(process, fd);
    }();
    if (!run.ok()) {
      // Error path: fd cleanup is best-effort; the original error is the story.
      (void)kernel.Close(process, fd);
      return run.error();
    }
    SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
    if (run->status != ProgStatus::kOk) {
      return Err::kInval;  // program exceeded its sandbox budget
    }
    GrepResult result;
    result.found = run->found;
    kernel.ChargeAppCpu(process, options.costs.grep_per_match * (run->found ? 1 : 0));
    return result;
  }
  SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
  std::vector<char> buf(static_cast<size_t>(options.buffer_bytes));
  std::vector<GrepMatch> matches;
  std::vector<RunScanner::RunInfo> runs;
  RunScanner scanner(pattern, options, &matches);
  bool done = false;

  auto charge = [&](int64_t n) {
    Duration per_byte = options.costs.grep_per_byte;
    if (options.use_sleds) {
      per_byte += options.costs.sleds_record_per_byte;
    }
    kernel.ChargeAppCpu(process, per_byte * n);
  };

  if (!options.use_sleds) {
    scanner.StartRun(0);
    while (!done) {
      SLED_ASSIGN_OR_RETURN(int64_t n,
                            kernel.Read(process, fd, std::span<char>(buf.data(), buf.size())));
      if (n == 0) {
        done = scanner.FinishRun();
        break;
      }
      charge(n);
      done = scanner.Feed(std::string_view(buf.data(), static_cast<size_t>(n)));
    }
    runs.push_back(scanner.TakeRunInfo());
  } else {
    PickerOptions picker_options;
    picker_options.preferred_chunk_bytes = options.buffer_bytes;
    picker_options.record_oriented = true;
    picker_options.record_separator = '\n';
    SLED_ASSIGN_OR_RETURN(std::unique_ptr<SledsPicker> picker,
                          SledsPicker::Create(kernel, process, fd, picker_options));
    bool in_run = false;
    while (!done) {
      SLED_ASSIGN_OR_RETURN(SledsPicker::Pick pick, picker->NextRead());
      if (pick.length == 0) {
        if (in_run) {
          done = scanner.FinishRun();
          runs.push_back(scanner.TakeRunInfo());
        }
        break;
      }
      if (!in_run || pick.offset != scanner.next_offset()) {
        if (in_run) {
          done = scanner.FinishRun();
          runs.push_back(scanner.TakeRunInfo());
          if (done) {
            break;
          }
        }
        scanner.StartRun(pick.offset);
        in_run = true;
      }
      SLED_RETURN_IF_ERROR(kernel.Lseek(process, fd, pick.offset, Whence::kSet));
      SLED_ASSIGN_OR_RETURN(
          int64_t n, kernel.Read(process, fd,
                                 std::span<char>(buf.data(), static_cast<size_t>(pick.length))));
      if (n != pick.length) {
        // Error path: fd cleanup is best-effort; the original error is the story.
        (void)kernel.Close(process, fd);
        return Err::kIo;
      }
      charge(n);
      done = scanner.Feed(std::string_view(buf.data(), static_cast<size_t>(n)));
      if (done) {
        runs.push_back(scanner.TakeRunInfo());
      }
    }
  }
  SLED_RETURN_IF_ERROR(kernel.Close(process, fd));

  GrepResult result;
  result.found = !matches.empty();
  if (options.quiet_first_match) {
    // -q reports status only.
    kernel.ChargeAppCpu(process, options.costs.grep_per_match *
                                     static_cast<int64_t>(matches.size()));
    return result;
  }

  // Sort matches into file order (the linked-list sort of §5.2) and resolve
  // line numbers from per-run newline counts.
  kernel.ChargeAppCpu(process,
                      options.costs.grep_per_match * static_cast<int64_t>(matches.size()));
  std::sort(matches.begin(), matches.end(),
            [](const GrepMatch& a, const GrepMatch& b) { return a.line_offset < b.line_offset; });
  if (options.line_numbers) {
    std::sort(runs.begin(), runs.end(),
              [](const RunScanner::RunInfo& a, const RunScanner::RunInfo& b) {
                return a.start < b.start;
              });
    for (GrepMatch& m : matches) {
      int64_t newlines_before = 0;
      for (const RunScanner::RunInfo& run : runs) {
        if (run.start + run.length <= m.line_offset) {
          newlines_before += run.newlines;
        } else if (run.start <= m.line_offset) {
          newlines_before += m.line_number;  // local index within this run
          break;
        }
      }
      m.line_number = newlines_before + 1;
    }
  } else {
    for (GrepMatch& m : matches) {
      m.line_number = 0;
    }
  }
  result.matches = std::move(matches);
  return result;
}

}  // namespace sled
