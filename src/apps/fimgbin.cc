#include "src/apps/fimgbin.h"

#include <vector>

#include "src/apps/fits_scan.h"

namespace sled {

Result<FimgbinResult> FimgbinApp::Run(SimKernel& kernel, Process& process, std::string_view input,
                                      std::string_view output, const FimgbinOptions& options) {
  if (options.boxcar < 1) {
    return Err::kInval;
  }
  SLED_ASSIGN_OR_RETURN(int in_fd, kernel.Open(process, input));
  SLED_ASSIGN_OR_RETURN(FitsHeader header, FitsReadHeader(kernel, process, in_fd));
  if (header.naxis.size() != 2 || header.naxis[0] % options.boxcar != 0 ||
      header.naxis[1] % options.boxcar != 0) {
    // Error path: fd cleanup is best-effort; the original error is the story.
    (void)kernel.Close(process, in_fd);
    return Err::kInval;
  }
  const int64_t in_w = header.naxis[0];
  const int64_t out_w = in_w / options.boxcar;
  const int64_t out_h = header.naxis[1] / options.boxcar;

  // Accumulate boxcar sums. Input elements may arrive in any order (SLEDs
  // mode), so the whole output plane is buffered — the "array-based code ...
  // does more internal buffering" the paper notes for fimgbin's write path.
  std::vector<double> sums(static_cast<size_t>(out_w * out_h), 0.0);
  SLED_RETURN_IF_ERROR(FitsScanElements(
      kernel, process, in_fd, header, options.use_sleds, options.buffer_elements, options.costs,
      [&](int64_t first, std::span<const double> values) {
        for (size_t i = 0; i < values.size(); ++i) {
          const int64_t idx = first + static_cast<int64_t>(i);
          const int64_t x = idx % in_w;
          const int64_t y = idx / in_w;
          const int64_t ox = x / options.boxcar;
          const int64_t oy = y / options.boxcar;
          sums[static_cast<size_t>(oy * out_w + ox)] += values[i];
        }
        kernel.ChargeAppCpu(process,
                            options.costs.image_per_element *
                                static_cast<int64_t>(values.size()));
      }));
  SLED_RETURN_IF_ERROR(kernel.Close(process, in_fd));

  // Average and write the reduced image (same BITPIX as the input).
  FimgbinResult result;
  result.out_width = out_w;
  result.out_height = out_h;
  FitsImage out_image;
  out_image.header.bitpix = header.bitpix;
  out_image.header.naxis = {out_w, out_h};
  out_image.pixels.resize(sums.size());
  const double scale = 1.0 / (static_cast<double>(options.boxcar) * options.boxcar);
  for (size_t i = 0; i < sums.size(); ++i) {
    out_image.pixels[i] = sums[i] * scale;
    result.output_sum += out_image.pixels[i];
  }
  kernel.ChargeAppCpu(process,
                      options.costs.image_per_element * static_cast<int64_t>(sums.size()));
  SLED_RETURN_IF_ERROR(FitsWriteImage(kernel, process, output, out_image));
  return result;
}

}  // namespace sled
