// fimgbin — LHEASOFT image rebinning tool (paper §5.3).
//
// "fimgbin rebins an image with a rectangular boxcar filter. The amount of
// data written is smaller than the input by a fixed factor, typically four
// or 16." A data-reduction factor of four is a 2x2 boxcar; 16 is 4x4. The
// SLEDs adaptation reorders the reads of the input file; output is written
// sequentially afterwards.
#ifndef SLEDS_SRC_APPS_FIMGBIN_H_
#define SLEDS_SRC_APPS_FIMGBIN_H_

#include <string_view>

#include "src/apps/app_costs.h"
#include "src/common/result.h"
#include "src/fits/fits.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

struct FimgbinOptions {
  bool use_sleds = false;
  // Linear boxcar factor: 2 => data reduction 4; 4 => data reduction 16.
  int boxcar = 2;
  int64_t buffer_elements = 16 * 1024;
  AppCpuCosts costs;
};

struct FimgbinResult {
  int64_t out_width = 0;
  int64_t out_height = 0;
  double output_sum = 0.0;  // checksum for validation
};

class FimgbinApp {
 public:
  // Input must be a 2-D image whose dimensions are divisible by the boxcar.
  static Result<FimgbinResult> Run(SimKernel& kernel, Process& process, std::string_view input,
                                   std::string_view output, const FimgbinOptions& options);
};

}  // namespace sled

#endif  // SLEDS_SRC_APPS_FIMGBIN_H_
