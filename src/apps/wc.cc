#include "src/apps/wc.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <vector>

#include "src/sleds/picker.h"

namespace sled {
namespace {

bool IsSpace(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' ||
                              c == '\f'; }

// Counts for one contiguous chunk, processed in isolation.
struct ChunkCount {
  int64_t offset = 0;
  int64_t length = 0;
  int64_t lines = 0;
  int64_t words = 0;  // words fully or partially inside the chunk
  bool starts_in_word = false;
  bool ends_in_word = false;
};

ChunkCount CountChunk(int64_t offset, std::string_view data) {
  ChunkCount c;
  c.offset = offset;
  c.length = static_cast<int64_t>(data.size());
  bool in_word = false;
  for (char ch : data) {
    if (ch == '\n') {
      ++c.lines;
    }
    if (IsSpace(ch)) {
      in_word = false;
    } else if (!in_word) {
      in_word = true;
      ++c.words;
    }
  }
  if (!data.empty()) {
    c.starts_in_word = !IsSpace(data.front());
    c.ends_in_word = !IsSpace(data.back());
  }
  return c;
}

// Fetch [offset, offset+length) either by read() into `buf` or through the
// mmap path; returns a view of the bytes.
Result<std::string_view> FetchChunk(SimKernel& kernel, Process& process, int fd, int64_t offset,
                                    int64_t length, bool use_mmap, std::vector<char>* buf) {
  if (use_mmap) {
    return kernel.MmapRead(process, fd, offset, length);
  }
  SLED_RETURN_IF_ERROR(kernel.Lseek(process, fd, offset, Whence::kSet));
  SLED_ASSIGN_OR_RETURN(
      int64_t n,
      kernel.Read(process, fd, std::span<char>(buf->data(), static_cast<size_t>(length))));
  return std::string_view(buf->data(), static_cast<size_t>(n));
}

}  // namespace

Result<WcResult> WcApp::Run(SimKernel& kernel, Process& process, std::string_view path,
                            const WcOptions& options) {
  if (options.kernel_program) {
    // Completion-program variant: the kernel runs the whole count at I/O
    // completion and returns three counters — no per-buffer crossings, no
    // user copies. Plans are sequential, so use_sleds does not apply.
    SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
    ProgSpec spec;
    spec.kind = ProgKind::kCount;
    spec.chunk_bytes = options.buffer_bytes;
    spec.step_cost_ns_per_byte = static_cast<double>(options.costs.wc_per_byte.nanos());
    auto run = [&]() -> Result<ProgResult> {
      SLED_RETURN_IF_ERROR(kernel.InstallProgram(process, fd, spec));
      return kernel.RunProgram(process, fd);
    }();
    if (!run.ok()) {
      // Error path: fd cleanup is best-effort; the original error is the story.
      (void)kernel.Close(process, fd);
      return run.error();
    }
    SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
    if (run->status != ProgStatus::kOk) {
      return Err::kInval;  // program exceeded its sandbox budget
    }
    return WcResult{run->lines, run->words, run->bytes};
  }
  SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
  std::vector<char> buf(static_cast<size_t>(options.buffer_bytes));
  std::vector<ChunkCount> chunks;

  if (!options.use_sleds) {
    // Plain GNU wc: one linear pass.
    SLED_ASSIGN_OR_RETURN(InodeAttr attr, kernel.Fstat(process, fd));
    int64_t offset = 0;
    while (offset < attr.size) {
      const int64_t want = std::min(options.buffer_bytes, attr.size - offset);
      SLED_ASSIGN_OR_RETURN(std::string_view data, FetchChunk(kernel, process, fd, offset, want,
                                                              options.use_mmap, &buf));
      if (data.empty()) {
        break;
      }
      chunks.push_back(CountChunk(offset, data));
      kernel.ChargeAppCpu(process, options.costs.wc_per_byte *
                                       static_cast<int64_t>(data.size()));
      offset += static_cast<int64_t>(data.size());
    }
  } else {
    // SLEDs mode: the Figure 5 loop — ask the library where to read next.
    PickerOptions picker_options;
    picker_options.preferred_chunk_bytes = options.buffer_bytes;
    SLED_ASSIGN_OR_RETURN(std::unique_ptr<SledsPicker> picker,
                          SledsPicker::Create(kernel, process, fd, picker_options));
    while (true) {
      SLED_ASSIGN_OR_RETURN(SledsPicker::Pick pick, picker->NextRead());
      if (pick.length == 0) {
        break;
      }
      SLED_ASSIGN_OR_RETURN(std::string_view data,
                            FetchChunk(kernel, process, fd, pick.offset, pick.length,
                                       options.use_mmap, &buf));
      if (static_cast<int64_t>(data.size()) != pick.length) {
        // Error path: fd cleanup is best-effort; the original error is the story.
        (void)kernel.Close(process, fd);
        return Err::kIo;
      }
      chunks.push_back(CountChunk(pick.offset, data));
      kernel.ChargeAppCpu(process, (options.costs.wc_per_byte +
                                    options.costs.sleds_pick_per_byte) *
                                       static_cast<int64_t>(data.size()));
    }
  }
  SLED_RETURN_IF_ERROR(kernel.Close(process, fd));

  // Merge chunk counts. Words spanning a seam between adjacent chunks were
  // counted twice (once as a trailing fragment, once as a leading one).
  std::sort(chunks.begin(), chunks.end(),
            [](const ChunkCount& a, const ChunkCount& b) { return a.offset < b.offset; });
  WcResult result;
  for (size_t i = 0; i < chunks.size(); ++i) {
    result.lines += chunks[i].lines;
    result.words += chunks[i].words;
    result.bytes += chunks[i].length;
    if (i > 0 && chunks[i - 1].offset + chunks[i - 1].length == chunks[i].offset &&
        chunks[i - 1].ends_in_word && chunks[i].starts_in_word) {
      --result.words;
    }
  }
  return result;
}

}  // namespace sled
