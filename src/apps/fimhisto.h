// fimhisto — LHEASOFT image histogram tool (paper §5.3).
//
// "fimhisto copies an input data image file to an output file and appends an
// additional data column containing a histogram of the pixel values. It is
// implemented in three passes. The first pass copies the main data unit
// without any processing. The second pass reads the data again (including
// performing a data format conversion, if necessary) to prepare for binning
// the data into the histogram. The third pass performs the actual binning
// operation, then appends the histogram to the output file."
//
// The SLEDs adaptation reorders passes two and three through the ff* layer;
// pass one remains a sequential copy, exactly as in the paper.
#ifndef SLEDS_SRC_APPS_FIMHISTO_H_
#define SLEDS_SRC_APPS_FIMHISTO_H_

#include <string_view>
#include <vector>

#include "src/apps/app_costs.h"
#include "src/common/result.h"
#include "src/fits/fits.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

struct FimhistoOptions {
  bool use_sleds = false;
  int num_bins = 64;
  int64_t buffer_elements = 16 * 1024;
  // Replace passes two and three with one kernel-resident completion program
  // (kHistogram): the kernel runs min/max and binning at I/O completion and
  // returns the finished histogram — one syscall instead of one per buffer
  // per pass. Pass one (the copy) is unchanged. Requires
  // num_bins <= kProgMaxBins.
  bool kernel_program = false;
  AppCpuCosts costs;
};

struct FimhistoResult {
  double min_value = 0.0;
  double max_value = 0.0;
  std::vector<int64_t> bins;
};

class FimhistoApp {
 public:
  static Result<FimhistoResult> Run(SimKernel& kernel, Process& process, std::string_view input,
                                    std::string_view output, const FimhistoOptions& options);
};

}  // namespace sled

#endif  // SLEDS_SRC_APPS_FIMHISTO_H_
