// Per-process accounting: the simulated equivalent of what the paper read
// from time(1) — elapsed time and page faults — plus the file-descriptor
// table and per-descriptor readahead state.
#ifndef SLEDS_SRC_KERNEL_PROCESS_H_
#define SLEDS_SRC_KERNEL_PROCESS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/page_cache.h"
#include "src/common/sim_time.h"
#include "src/fs/filesystem.h"

namespace sled {

struct ProcessStats {
  int64_t syscalls = 0;
  // Pages copied out of the resident cache (soft work, no device I/O).
  int64_t minor_faults = 0;
  // Pages brought in from a backing device on this process's behalf,
  // including its readahead. This matches the magnitude the paper plots
  // (e.g. Fig 9: ~24.5k faults for a 96 MB file = every 4 KiB page).
  int64_t major_faults = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  // Times the process blocked on an in-flight asynchronous I/O completion
  // (event-driven engine only; the synchronous path never blocks-and-waits).
  int64_t io_waits = 0;
  Duration cpu_time;
  Duration io_time;

  // Processes run alone in these experiments (paper §5.1: "no other user
  // activity"), so elapsed time is CPU plus I/O wait.
  Duration elapsed() const { return cpu_time + io_time; }
};

// An open file description (the kernel side of a file descriptor).
struct OpenFile {
  uint32_t fs_id = 0;
  InodeNum ino = 0;
  FileId fid = 0;
  int64_t offset = 0;

  // Sequential-readahead state (Linux 2.2-style window doubling): the page
  // where the next demand miss would count as sequential, and the current
  // window size in pages (0 = kernel minimum).
  int64_t last_demand_page = -2;
  int readahead_window = 0;

  // Pages this descriptor has pinned via FSLEDS_LOCK; auto-unpinned on
  // close (paper §3.4's lock/reservation mechanism).
  std::vector<int64_t> locked_pages;

  // Completion-program handle installed via SimKernel::InstallProgram
  // (-1 = none); auto-uninstalled on close.
  int64_t prog = -1;
};

class Process {
 public:
  Process(int pid, std::string name) : pid_(pid), name_(std::move(name)) {}

  int pid() const { return pid_; }
  const std::string& name() const { return name_; }

  ProcessStats& stats() { return stats_; }
  const ProcessStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ProcessStats{}; }

  // ---- fd table (used by the kernel) ----
  int InstallFd(OpenFile of) {
    const int fd = next_fd_++;
    fds_.emplace(fd, of);
    return fd;
  }
  OpenFile* FindFd(int fd) {
    auto it = fds_.find(fd);
    return it == fds_.end() ? nullptr : &it->second;
  }
  bool RemoveFd(int fd) { return fds_.erase(fd) > 0; }
  size_t open_fd_count() const { return fds_.size(); }

 private:
  int pid_;
  std::string name_;
  ProcessStats stats_;
  std::unordered_map<int, OpenFile> fds_;
  int next_fd_ = 3;  // 0-2 notionally reserved for std streams
};

}  // namespace sled

#endif  // SLEDS_SRC_KERNEL_PROCESS_H_
