#include "src/kernel/sleds_table.h"

#include "src/common/log.h"

namespace sled {

SledsTable::SledsTable(DeviceCharacteristics memory_chars) {
  rows_.push_back({"memory", memory_chars, 0, -1});
}

int SledsTable::RegisterLevel(std::string name, DeviceCharacteristics chars, uint32_t fs_id,
                              int local_level) {
  rows_.push_back({std::move(name), chars, fs_id, local_level});
  return static_cast<int>(rows_.size()) - 1;
}

Result<void> SledsTable::Fill(int level, DeviceCharacteristics chars) {
  if (level < 0 || level >= size()) {
    return Err::kInval;
  }
  Row& row = rows_[static_cast<size_t>(level)];
  // Scalar calibration (a caller measuring only means) must not erase the
  // model's tail shape: rescale the existing quantiles by the mean ratio.
  // A caller that does provide quantiles replaces them wholesale.
  if (chars.latency_q.empty() && !row.chars.latency_q.empty() &&
      row.chars.latency.nanos() > 0) {
    const double ratio = chars.latency.ToSeconds() / row.chars.latency.ToSeconds();
    chars.latency_q = row.chars.latency_q.Scaled(ratio);
  }
  row.chars = chars;
  return Result<void>::Ok();
}

Result<int> SledsTable::GlobalLevelOf(uint32_t fs_id, int local_level) const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].fs_id == fs_id && rows_[i].local_level == local_level) {
      return static_cast<int>(i);
    }
  }
  return Err::kInval;
}

const SledsTable::Row& SledsTable::row(int level) const {
  SLED_CHECK(level >= 0 && level < size(), "sleds_table row %d out of range", level);
  return rows_[static_cast<size_t>(level)];
}

}  // namespace sled
