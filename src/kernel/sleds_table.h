// The kernel `sleds_table` (paper §4.1): one latency/bandwidth row per
// storage level in the system — primary memory plus every level of every
// mounted file system. Rows are seeded with each device's model-derived
// nominal characteristics at mount time and may be overwritten by the
// boot-time calibration script through the FSLEDS_FILL ioctl, exactly as the
// paper fills its table from lmbench measurements.
#ifndef SLEDS_SRC_KERNEL_SLEDS_TABLE_H_
#define SLEDS_SRC_KERNEL_SLEDS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/device/device.h"

namespace sled {

// Global index of the primary-memory row.
inline constexpr int kMemoryLevel = 0;

class SledsTable {
 public:
  struct Row {
    std::string name;
    DeviceCharacteristics chars;
    uint32_t fs_id = 0;    // owning file system (0 for memory)
    int local_level = -1;  // that file system's level index
  };

  explicit SledsTable(DeviceCharacteristics memory_chars);

  // Register a storage level; returns its global level index.
  int RegisterLevel(std::string name, DeviceCharacteristics chars, uint32_t fs_id,
                    int local_level);

  // FSLEDS_FILL: overwrite a row's characteristics with measured values.
  Result<void> Fill(int level, DeviceCharacteristics chars);

  // Map a file system's local level index to the global one. Fails if the
  // level was never registered.
  Result<int> GlobalLevelOf(uint32_t fs_id, int local_level) const;

  const Row& row(int level) const;
  int size() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<Row> rows_;
};

}  // namespace sled

#endif  // SLEDS_SRC_KERNEL_SLEDS_TABLE_H_
