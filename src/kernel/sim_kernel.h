// SimKernel: the simulated operating system. Owns the clock, the VFS, the
// unified page cache, the writeback queue, the sleds_table, and the syscall
// surface applications run against. This stands in for the paper's modified
// Linux 2.2 kernel; the SLEDs changes live in exactly the places the paper
// put them — the VFS-level page scan and two generic-file ioctls.
#ifndef SLEDS_SRC_KERNEL_SIM_KERNEL_H_
#define SLEDS_SRC_KERNEL_SIM_KERNEL_H_

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/page_cache.h"
#include "src/common/result.h"
#include "src/common/sim_time.h"
#include "src/fs/vfs.h"
#include "src/io/io_scheduler.h"
#include "src/kernel/process.h"
#include "src/kernel/sleds_table.h"
#include "src/obs/observer.h"
#include "src/openload/timing_wheel.h"
#include "src/progs/program.h"
#include "src/sleds/sled.h"

namespace sled {

// CPU charges for kernel entry and bookkeeping. These keep the "modest CPU
// increases are an acceptable price" trade-off (§5.2) visible: SLED scans and
// extra syscalls cost real (simulated) time.
struct CpuCosts {
  // Per-syscall crossing cost. $SLEDS_SYSCALL_COST (nanoseconds, cached once
  // per process) overrides this at kernel construction; unset keeps the
  // historical 4 us, so existing BENCH output stays byte-identical.
  Duration syscall_overhead = Microseconds(4);
  Duration fault_overhead = Microseconds(15);   // per major-fault event
  Duration sled_scan_per_page = Nanoseconds(150);
  Duration mmap_touch_per_page = Nanoseconds(600);  // minor fault / TLB work
  // Completion-program execution (src/progs): one in-kernel dispatch per
  // completion-path invocation, plus a per-page touch while the program
  // examines bytes in place (mmap-class — no user copy, no crossing). These
  // price what a program run *does* cost, so the syscalls it eliminates are
  // an honest win, not an accounting hole.
  Duration prog_invoke_overhead = Nanoseconds(500);
  Duration prog_touch_per_page = Nanoseconds(600);
};

// How page transfers reach the backing devices.
//   kFifoSync  — every page-in is one synchronous device access in arrival
//                order, the paper's Linux 2.2 behavior. The default: all
//                paper-figure benches run (and stay byte-identical) here.
//   kFifoAsync — the event-driven engine with FIFO queues: readahead beyond
//                the demand run and writeback become asynchronous requests
//                that overlap with process CPU time.
//   kElevator  — the engine with C-LOOK device-address ordering and
//                adjacent-request coalescing on each queue.
//   kFromEnv   — resolve from $SLEDS_IO_MODE ("elevator", "fifo_async";
//                anything else, or unset, means kFifoSync).
enum class IoMode { kFromEnv, kFifoSync, kFifoAsync, kElevator };

struct IoEngineConfig {
  IoMode mode = IoMode::kFromEnv;
  // Merge adjacent pending requests into one device access (elevator mode).
  bool coalesce = true;
  // Upper bound on one merged dispatch, in pages.
  int64_t max_merge_pages = 256;
};

// Kernel-level fault tolerance. Device faults are fail-fast (zero device
// time, see src/device/fault.h), so every simulated cost of failure handling
// is decided here: how often a failed store transfer is re-issued, and how
// writeback retries back off before pages count as lost.
struct FaultToleranceConfig {
  // Immediate re-issues of a failed store transfer before the error escapes
  // to the caller. Applies to kIo (media errors) only; kUnavailable (server
  // down window) fails fast — retrying into a closed window is pointless.
  int max_io_retries = 2;
  // Total attempts for one writeback before its pages count as lost.
  int max_writeback_attempts = 6;
  // Backoff before writeback attempt n+1: backoff << (n-1), capped.
  Duration writeback_backoff = Milliseconds(10);
  Duration writeback_backoff_cap = Seconds(1);
  // SLED latency reported for a level inside a down window, in seconds —
  // large enough that latency-ordered pickers defer it past everything real.
  double unavailable_latency_s = 3600.0;
};

struct KernelConfig {
  PageCacheConfig cache;
  // Primary-memory characteristics: the cost of delivering cached pages to
  // user space, and row 0 of the sleds_table (paper Table 2: 175 ns, 48 MB/s).
  DeviceCharacteristics memory{Nanoseconds(175), 48.0e6, {}};
  // Sequential readahead window, in pages (Linux 2.2 used small windows that
  // grow on sequential access, up to 32 pages / 128 KiB).
  int min_readahead_pages = 4;
  int max_readahead_pages = 32;
  // Dirty pages evicted from the cache queue here and flush in batches,
  // approximating bdflush.
  int writeback_batch_pages = 256;
  // I/O engine selection; the default resolves from the environment and
  // falls back to kFifoSync (no behavior change).
  IoEngineConfig io;
  CpuCosts costs;
  FaultToleranceConfig fault;
  // Capacity of the observability event-trace ring (events). Tracing is
  // harness instrumentation: it records simulated timestamps but costs zero
  // simulated time.
  int trace_events = 16384;
  // Shard handle (ShardRuntime worlds): which shard this kernel is pinned to
  // and which world it simulates. Identity only — no kernel behavior may
  // depend on shard_id, or world placement would break the determinism
  // contract (merged results identical across shard counts).
  int shard_id = 0;
  int64_t world_id = 0;
};

enum class Whence { kSet, kCur, kEnd };

struct KernelStats {
  int64_t pages_paged_in = 0;
  int64_t pages_written_back = 0;
  int64_t readahead_pages = 0;  // pages fetched beyond the demand page
  int64_t io_errors = 0;        // store transfers that failed past all retries
  int64_t io_retries = 0;       // immediate re-issues of failed transfers
  int64_t writeback_retries = 0;  // writeback runs re-queued after a failure
  int64_t writeback_lost = 0;     // dirty pages dropped past the attempt cap
};

class SimKernel {
 public:
  explicit SimKernel(KernelConfig config);

  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  // Mount a file system and register its storage levels in the sleds_table.
  Result<uint32_t> Mount(std::string path, std::unique_ptr<FileSystem> fs);

  Process& CreateProcess(std::string name);

  // ---- syscalls ----
  Result<int> Open(Process& p, std::string_view path);
  // Open with O_CREAT|O_TRUNC semantics.
  Result<int> Create(Process& p, std::string_view path);
  Result<void> Close(Process& p, int fd);
  Result<int64_t> Read(Process& p, int fd, std::span<char> dst);
  // mmap-style access: fault in the pages of [offset, offset+length) exactly
  // as Read would (demand paging, readahead, fault accounting) but return a
  // zero-copy view instead of copying to a user buffer — no per-byte copy
  // charge, only a small per-page touch cost. This is the "mmap-friendly
  // SLEDs library" path the paper projects would reduce the CPU penalty
  // (§5.2). The view is clamped at EOF and is invalidated by any operation
  // that changes the file's size.
  Result<std::string_view> MmapRead(Process& p, int fd, int64_t offset, int64_t length);
  Result<int64_t> Write(Process& p, int fd, std::span<const char> src);
  Result<int64_t> Lseek(Process& p, int fd, int64_t offset, Whence whence);
  Result<InodeAttr> Stat(Process& p, std::string_view path);
  Result<InodeAttr> Fstat(Process& p, int fd);
  Result<std::vector<DirEntry>> ReadDir(Process& p, std::string_view path);
  Result<void> Unlink(Process& p, std::string_view path);
  Result<void> Ftruncate(Process& p, int fd, int64_t size);
  Result<void> Fsync(Process& p, int fd);

  // ---- SLEDs ioctls (paper §4.1) ----
  // FSLEDS_FILL: install measured characteristics for a storage level.
  Result<void> IoctlSledsFill(Process& p, int level, DeviceCharacteristics chars);
  // FSLEDS_GET: scan the open file's pages and return its SLED vector. The
  // scan walks the page cache's residency index and the file system's level
  // runs, so its wall-clock cost is O(runs); the *simulated* CPU charge stays
  // sled_scan_per_page * pages scanned, exactly as the paper's per-page VFS
  // scan pays.
  // `route_rank` is forwarded to FileSystem::RouteLevelOf so replicated
  // stores advertise the copy that minimizes the caller's ranking statistic;
  // the default (kMean) leaves every single-copy file system untouched.
  Result<SledVector> IoctlSledsGet(Process& p, int fd, RankBy route_rank = RankBy::kMean);
  // Ranged FSLEDS_GET: scan only the pages overlapping [offset,
  // offset+length). Charges sled_scan_per_page per page actually scanned —
  // this is what lets SledsPicker::Refresh() re-fetch just the not-yet-
  // consumed part of its plan instead of re-paying for the whole file.
  Result<SledVector> IoctlSledsGet(Process& p, int fd, int64_t offset, int64_t length,
                                   RankBy route_rank = RankBy::kMean);
  // FSLEDS_LOCK / FSLEDS_UNLOCK (paper §3.4's proposed lock/reservation
  // mechanism): pin the *currently resident* pages of [offset,
  // offset+length) so eviction cannot invalidate the low-latency SLEDs an
  // application just planned around. Returns the number of pages pinned.
  // The kernel bounds total pins to half the cache; locks auto-release on
  // Close. Unlock releases this descriptor's pins in the range (or all,
  // with length < 0).
  Result<int64_t> IoctlSledsLock(Process& p, int fd, int64_t offset, int64_t length);
  Result<int64_t> IoctlSledsUnlock(Process& p, int fd, int64_t offset, int64_t length);

  // ---- completion-path storage programs (src/progs) ----
  // Install `spec` on the open file; replaces the descriptor's previous
  // program, auto-uninstalls on Close. Validates the sandbox bounds (pattern
  // size, bin count, limits) and returns the program handle.
  Result<int64_t> InstallProgram(Process& p, int fd, const ProgSpec& spec);
  // Execute the descriptor's installed program to completion inside ONE
  // syscall. The kernel faults chunks in exactly as Read/MmapRead would
  // (same readahead planning, engine submission, and replica routing), hands
  // each completed chunk to the program in place (no user copy), and acts on
  // its verdict: feed the next planned chunk, chain a program-chosen read
  // (kSeek — the hop that replaces an app round trip), or finish — early
  // exits cancel the readahead already queued past the match. A program that
  // exhausts its step or resubmit budget is aborted (status in the result);
  // the kernel and the file stay fully consistent either way.
  Result<ProgResult> RunProgram(Process& p, int fd);

  // Charge user-level CPU work (application processing loops) to a process.
  // Keeps app compute on the same virtual clock as kernel work.
  void ChargeAppCpu(Process& p, Duration d) { ChargeCpu(p, d); }

  // ---- non-syscall control (test/experiment harness) ----
  SimClock& clock() { return clock_; }
  Vfs& vfs() { return vfs_; }
  PageCache& cache() { return cache_; }
  const SledsTable& sleds_table() const { return sleds_table_; }
  const KernelStats& stats() const { return stats_; }
  const KernelConfig& config() const { return config_; }
  // The observability subsystem: event trace + metric registry covering every
  // syscall, page-in, writeback, SLED scan, and raw device transfer.
  Observer& obs() { return obs_; }
  const Observer& obs() const { return obs_; }
  // Publish the frame-table occupancy gauges to the metric registry. On
  // demand only (shell `stats`, scale bench): the first gauge creates the
  // JSON "gauges" section the figure-bench exports must not contain.
  void PublishCacheGauges() {
    obs_.CacheGauges(cache_.size_pages(), cache_.capacity_pages(), cache_.pinned_pages(),
                     cache_.in_flight_pages(),
                     static_cast<int64_t>(cache_.AllDirtyPages().size()),
                     cache_.resident_file_count());
  }
  // Shard identity (see KernelConfig::shard_id).
  int shard_id() const { return config_.shard_id; }
  int64_t world_id() const { return config_.world_id; }
  // The resolved I/O mode (kFromEnv is resolved at construction).
  IoMode io_mode() const { return io_mode_; }
  // The event-driven engine's scheduler; queues exist only in async modes.
  const IoScheduler& io_scheduler() const { return scheduler_; }

  // Drop every clean page and discard the writeback queue after flushing.
  // (Cold-cache experiment setup.)
  void DropCaches();
  // Flush all dirty state; returns device time spent (charged to the clock
  // but no process).
  Duration FlushAllDirty();
  // Give every mounted file system one pass of deferred background work
  // (replica re-sync after an outage window). Device time advances the clock
  // but is charged to no process, like a background flush.
  Duration RunMaintenance();

 private:
  // RAII syscall bracket: counts the call, charges entry overhead, and
  // records enter/exit trace events plus a per-syscall latency sample
  // covering everything charged while in the kernel.
  class SyscallScope;

  Result<OpenFile*> FdOf(Process& p, int fd);
  void ChargeCpu(Process& p, Duration d);
  void ChargeIo(Process& p, Duration d);

  // Fetch pages [first, first+count) of the file into the cache, charging
  // device time and fault accounting to `p`. Evicted dirty pages spill to
  // the writeback queue (possibly flushing synchronously, charged to `p`).
  Result<void> PageIn(Process& p, const OpenFile& of, int64_t first_page, int64_t count,
                      int64_t demand_pages);

  // ---- event-driven I/O engine (async modes only) ----
  bool engine_on() const { return io_mode_ != IoMode::kFifoSync; }
  // Engine counterpart of PageIn: submits the demand pages (in cache-bounded
  // chunks, waiting for each), then the readahead tail as an asynchronous
  // request trimmed to the in-flight budget. Returns the effective run length
  // actually requested starting at `page` (the caller's readahead bookmark).
  Result<int64_t> EnginePageIn(Process& p, const OpenFile& of, int64_t page, int64_t run,
                               int64_t demand);
  // Completion callback for every dispatched request part: records write
  // completion times, claims cache frames for read pages (flagged in-flight
  // until the clock reaches `done`), and schedules their arrivals.
  void CompleteIo(const IoRequest& part, TimePoint done, bool ok);
  // Enqueue a read of pages [first, first+count); returns the request id.
  int64_t SubmitRead(int pid, const OpenFile& of, int64_t first, int64_t count);
  // Enqueue a writeback of pages [first, first+count); 0 when the file
  // system is gone. Write submissions need no per-page tracking: contents
  // already live in the FS content plane, the request models device timing.
  int64_t SubmitWrite(int pid, FileId fid, int64_t first, int64_t count);
  // Block `p` until `key` has arrived: force-dispatch its request if still
  // queued, then advance the clock to the arrival time, charging the wait to
  // the process's I/O account. No-op if the page is not in flight.
  void AwaitPage(Process& p, PageKey key);
  // Clear in-flight flags for every arrival at or before the current clock.
  void HarvestArrivals();
  // Drop queued requests and in-flight tracking for pages >= first_page of
  // the file (truncate/unlink).
  void CancelFileIo(FileId fid, int64_t first_page);

  // Demand miss on `page`: grow (sequential) or reset (random) the
  // descriptor's readahead window, then return the length of the run of
  // non-resident pages to fetch starting at `page`. Shared by Read and
  // MmapRead so the two paths cannot drift.
  int64_t PlanReadaheadRun(OpenFile& of, int64_t page, int64_t file_pages);

  // Fault pages of [offset, offset+length) into the cache for a completion
  // program: the same demand/readahead/engine logic as Read and MmapRead
  // (kept in their exact shape so the three paths cannot drift), but charges
  // prog_touch_per_page instead of a user-space copy.
  Result<void> ProgFaultSpan(Process& p, OpenFile& of, int64_t offset, int64_t length,
                             int64_t size);

  // Shared FSLEDS_GET body: charge the scan, build the SLED vector for pages
  // [first_page, end_page) of the file, and record the scan event.
  Result<SledVector> BuildSleds(Process& p, const OpenFile& of, int64_t first_page,
                                int64_t end_page, int64_t size, RankBy route_rank);

  // One store transfer with the kernel's immediate-retry policy: re-issues on
  // kIo up to fault.max_io_retries times (each failed attempt is fail-fast at
  // the device, so retries cost zero simulated time), then maps the final
  // error to its syscall-boundary code (kUnavailable -> kTimedOut). Shared by
  // the synchronous page-in path, the engine dispatch callback, and every
  // writeback flush so both I/O modes retry identically.
  Result<Duration> StoreTransfer(int pid, uint64_t file, FileSystem* fs, InodeNum ino,
                                 int64_t first, int64_t count, bool write);
  // Capped exponential backoff before writeback attempt `attempt` (>= 1).
  Duration WritebackBackoff(int attempt) const;
  // A background (non-fsync) writeback request failed at dispatch: resubmit
  // it with backoff, or count its pages lost past the attempt cap.
  void HandleWritebackFailure(const IoRequest& part, TimePoint done);

  // Writeback machinery. `force` flushes entries whose backoff deadline is
  // still in the future (shutdown drain).
  void QueueWriteback(Process* p, PageKey key);
  Result<Duration> FlushWriteback(Process* p, bool force = false);

  FileSystem* FsOf(const OpenFile& of);

  // A read request's life, per page: submitted (queued, `dispatched` false),
  // dispatched (frame claimed in the cache, flagged in-flight, data arrives
  // at `ready_at`), then harvested once the clock reaches `ready_at`.
  struct InFlightPage {
    int64_t request_id = 0;
    uint32_t fs_id = 0;
    TimePoint ready_at;
    bool dispatched = false;
  };
  // One queued dirty page (synchronous-writeback mode). A failed flush
  // re-queues its pages with attempts+1 and a backoff deadline; pages past
  // fault.max_writeback_attempts count as lost.
  struct WritebackEntry {
    PageKey key;
    int attempts = 0;
    TimePoint not_before;
  };
  // Completion record Fsync collects while its sink is armed. The request is
  // kept so failures can be handled after the sink is disarmed: Fsync's own
  // requests re-dirty their pages; unrelated background writebacks that
  // completed inside the window get the normal resubmit treatment.
  struct WriteDone {
    TimePoint done;
    bool ok = true;
    IoRequest req;
  };
  KernelConfig config_;
  IoMode io_mode_ = IoMode::kFifoSync;
  SimClock clock_;
  Observer obs_;
  Vfs vfs_;
  PageCache cache_;
  SledsTable sleds_table_;
  IoScheduler scheduler_;
  KernelStats stats_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<WritebackEntry> writeback_queue_;
  std::unordered_map<PageKey, InFlightPage, PageKeyHash> inflight_;
  // Pending page arrivals (completion time -> page), on the hierarchical
  // timing wheel shared with the open-loop engine. Completions are enqueued
  // at or after the previous harvest time and harvested per-key with
  // order-independent actions, so replacing the old binary heap keeps every
  // simulated outcome byte-identical while making enqueue/harvest O(1)
  // amortized instead of O(log n).
  TimingWheel<PageKey> arrivals_;
  // Armed by Fsync to collect its requests' completions (time + success);
  // while armed, CompleteIo leaves write-failure handling to Fsync instead of
  // auto-resubmitting.
  std::unordered_map<int64_t, WriteDone>* write_done_sink_ = nullptr;
  // Error code of the most recent failed engine dispatch, already mapped to
  // its syscall-boundary code; EnginePageIn reports it when an awaited page
  // never arrived. kOk when no dispatch has failed since the last report.
  Err last_io_error_ = Err::kOk;
  // Installed completion programs, keyed by handle; OpenFile::prog points
  // here and Close uninstalls.
  std::unordered_map<int64_t, CompletionProgram> progs_;
  int64_t next_prog_id_ = 1;
  int next_pid_ = 1;
};

}  // namespace sled

#endif  // SLEDS_SRC_KERNEL_SIM_KERNEL_H_
