#include "src/kernel/sim_kernel.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <unordered_set>

#include <cmath>

#include "src/common/log.h"
#include "src/common/units.h"
#include "src/progs/progs_env.h"

namespace sled {
namespace {

constexpr uint64_t kInoMask = (1ull << 40) - 1;

uint32_t FsIdOfFid(FileId fid) { return static_cast<uint32_t>(fid >> 40); }
InodeNum InoOfFid(FileId fid) { return static_cast<InodeNum>(fid & kInoMask); }

// Error-code mapping at the syscall boundary: kUnavailable is the storage
// stack's internal "server down window" code; user space sees ETIMEDOUT,
// like an NFS hard-mount interruption. Everything else passes through.
Err ToSyscallErr(Err e) { return e == Err::kUnavailable ? Err::kTimedOut : e; }

IoMode ResolveIoMode(IoMode mode) {
  if (mode != IoMode::kFromEnv) {
    return mode;
  }
  // Resolved once per process (thread-safe magic static): shard workers
  // construct kernels concurrently, and libc's environment is the one piece
  // of process-global state those constructions would otherwise all touch.
  // Caching also guarantees every shard resolves the same mode even if the
  // environment were mutated mid-run.
  static const IoMode env_mode = [] {
    const char* env = std::getenv("SLEDS_IO_MODE");
    if (env == nullptr) {
      return IoMode::kFifoSync;
    }
    const std::string_view v(env);
    if (v == "elevator" || v == "clook") {
      return IoMode::kElevator;
    }
    if (v == "fifo_async" || v == "fifo") {
      return IoMode::kFifoAsync;
    }
    return IoMode::kFifoSync;
  }();
  return env_mode;
}

}  // namespace

SimKernel::SimKernel(KernelConfig config)
    : config_(config),
      io_mode_(ResolveIoMode(config.io.mode)),
      obs_(&clock_, static_cast<size_t>(std::max(1, config.trace_events))),
      cache_(config.cache),
      sleds_table_(config.memory) {
  SLED_CHECK(config_.min_readahead_pages >= 1, "readahead minimum must be >= 1");
  SLED_CHECK(config_.max_readahead_pages >= config_.min_readahead_pages,
             "readahead maximum below minimum");
  // Process-wide crossing-cost override (cached read; see progs_env.h).
  config_.costs.syscall_overhead = SyscallCostFromEnv(config_.costs.syscall_overhead);
  obs_.SetLevelName(kMemoryLevel, "memory");
  vfs_.AttachObserver(&obs_);
}

Result<uint32_t> SimKernel::Mount(std::string path, std::unique_ptr<FileSystem> fs) {
  FileSystem* raw = fs.get();
  SLED_ASSIGN_OR_RETURN(uint32_t fs_id, vfs_.Mount(std::move(path), std::move(fs)));
  const std::vector<StorageLevelInfo> levels = raw->Levels();
  for (size_t i = 0; i < levels.size(); ++i) {
    const int global = sleds_table_.RegisterLevel(levels[i].name, levels[i].nominal, fs_id,
                                                  static_cast<int>(i));
    obs_.SetLevelName(global, levels[i].name);
  }
  if (engine_on()) {
    DeviceQueueConfig qc;
    qc.policy = io_mode_ == IoMode::kElevator ? IoPolicy::kClook : IoPolicy::kFifo;
    qc.coalesce = io_mode_ == IoMode::kElevator && config_.io.coalesce;
    qc.max_merge_pages = config_.io.max_merge_pages;
    StorageDevice* primary = raw->PrimaryDevice();
    std::string qname = primary != nullptr ? std::string(primary->name()) : raw->name();
    scheduler_.AttachQueue(
        fs_id, std::move(qname), qc,
        // Dispatch: one merged batch = one store access. The returned service
        // time becomes the queue's busy span; the clock is not advanced here —
        // waiting processes are charged at AwaitPage.
        [this, fs_id, raw](const IoRequest& merged, int parts) -> Result<Duration> {
          int level = -1;
          if (merged.op == IoOp::kRead) {
            // Level attribution before the read: an HSM recall re-stages the
            // file as a side effect, exactly as in the synchronous path.
            if (auto g = sleds_table_.GlobalLevelOf(fs_id, raw->LevelOf(merged.ino,
                                                                        merged.first_page));
                g.ok()) {
              level = g.value();
            }
          }
          const Result<Duration> t =
              StoreTransfer(merged.pid, merged.file, raw, merged.ino, merged.first_page,
                            merged.count, merged.op == IoOp::kWrite);
          if (!t.ok()) {
            last_io_error_ = t.error();  // for EnginePageIn / Fsync to report
          }
          const DeviceQueue* q = scheduler_.queue(fs_id);
          // Not an error swallow: the dispatch event is pure instrumentation,
          // and a failed (fail-fast) dispatch really did cost zero device
          // time. The error itself propagates through the return below.
          obs_.IoDispatch(q->name(), merged.count, parts, q->depth(),
                          t.ok() ? t.value() : Duration());
          if (merged.op == IoOp::kRead && t.ok()) {
            obs_.PageIn(merged.pid, merged.file, merged.first_page, merged.count, level,
                        t.value());
          }
          return t;
        },
        [this](const IoRequest& part, TimePoint done, bool ok) {
          CompleteIo(part, done, ok);
        });
  }
  return fs_id;
}

void SimKernel::CompleteIo(const IoRequest& part, TimePoint done, bool ok) {
  if (part.op == IoOp::kWrite) {
    if (ok) {
      stats_.pages_written_back += part.count;
    }
    if (write_done_sink_ != nullptr) {
      // Fsync is force-dispatching: it owns failure handling for this window
      // (re-dirty + error to the caller, or deferred resubmit for unrelated
      // background writes), so nothing more happens here.
      (*write_done_sink_)[part.id] = WriteDone{done, ok, part};
      return;
    }
    if (!ok) {
      HandleWritebackFailure(part, done);
    }
    return;
  }
  for (int64_t q = part.first_page; q < part.end_page(); ++q) {
    const PageKey key{part.file, q};
    auto it = inflight_.find(key);
    if (it == inflight_.end() || it->second.request_id != part.id) {
      continue;  // canceled (truncate/unlink) while queued or in service
    }
    if (!ok) {
      inflight_.erase(it);
      continue;
    }
    it->second.dispatched = true;
    it->second.ready_at = done;
    // Claim the frame now (unless already resident), flagged in-flight until
    // the clock reaches `done`; a dirty page pushed out spills to
    // (asynchronous) writeback.
    auto evicted = cache_.InsertIfAbsent(key, /*dirty=*/false, /*in_flight=*/true);
    if (evicted.has_value() && evicted->dirty) {
      QueueWriteback(nullptr, evicted->key);
    }
    arrivals_.Schedule(static_cast<uint64_t>(done.since_epoch().nanos()), key);
  }
  if (ok) {
    stats_.pages_paged_in += part.count;
  }
}

// Records syscall entry on construction and the exit event (with the full
// in-kernel latency, CPU charges plus I/O stalls) on destruction, so every
// return path of every syscall is covered.
class SimKernel::SyscallScope {
 public:
  SyscallScope(SimKernel& k, Process& p, const char* name)
      : k_(k), p_(p), name_(name), entered_(k.clock_.Now()) {
    ++p_.stats().syscalls;
    k_.obs_.SyscallEnter(p_.pid(), name_);
    k_.ChargeCpu(p_, k_.config_.costs.syscall_overhead);
    if (k_.engine_on()) {
      // Kernel entry is where elapsed CPU time becomes visible to the I/O
      // engine: replay device progress up to now and absorb any arrivals.
      k_.scheduler_.CatchUp(k_.clock_.Now());
      k_.HarvestArrivals();
    }
  }
  ~SyscallScope() { k_.obs_.SyscallExit(p_.pid(), name_, k_.clock_.Now() - entered_); }

  SyscallScope(const SyscallScope&) = delete;
  SyscallScope& operator=(const SyscallScope&) = delete;

 private:
  SimKernel& k_;
  Process& p_;
  const char* name_;
  TimePoint entered_;
};

Process& SimKernel::CreateProcess(std::string name) {
  processes_.push_back(std::make_unique<Process>(next_pid_++, std::move(name)));
  return *processes_.back();
}

void SimKernel::ChargeCpu(Process& p, Duration d) {
  p.stats().cpu_time += d;
  clock_.Advance(d);
}

void SimKernel::ChargeIo(Process& p, Duration d) {
  p.stats().io_time += d;
  clock_.Advance(d);
}

Result<OpenFile*> SimKernel::FdOf(Process& p, int fd) {
  OpenFile* of = p.FindFd(fd);
  if (of == nullptr) {
    return Err::kBadF;
  }
  return of;
}

FileSystem* SimKernel::FsOf(const OpenFile& of) { return vfs_.FsById(of.fs_id); }

Result<Duration> SimKernel::StoreTransfer(int pid, uint64_t file, FileSystem* fs, InodeNum ino,
                                          int64_t first, int64_t count, bool write) {
  auto issue = [&]() {
    return write ? fs->WritePagesToStore(ino, first, count)
                 : fs->ReadPagesFromStore(ino, first, count);
  };
  Result<Duration> t = issue();
  for (int attempt = 1; !t.ok() && t.error() == Err::kIo && attempt <= config_.fault.max_io_retries;
       ++attempt) {
    ++stats_.io_retries;
    obs_.IoRetry(pid, file, attempt, t.error());
    t = issue();
  }
  if (!t.ok()) {
    ++stats_.io_errors;
    return ToSyscallErr(t.error());
  }
  return t;
}

Duration SimKernel::WritebackBackoff(int attempt) const {
  const int shift = std::min(attempt - 1, 20);  // 2^20 x base is past any sane cap
  const Duration b = config_.fault.writeback_backoff * (int64_t{1} << shift);
  return std::min(b, config_.fault.writeback_backoff_cap);
}

void SimKernel::HandleWritebackFailure(const IoRequest& part, TimePoint done) {
  // The pages' frames are already gone (they were evicted), so re-queue the
  // request itself with capped exponential backoff; past the attempt cap the
  // pages count as lost.
  const int next_attempt = part.attempts + 1;
  if (next_attempt >= config_.fault.max_writeback_attempts) {
    stats_.writeback_lost += part.count;
    obs_.WritebackError(part.file, part.first_page, part.count, /*lost=*/true);
    return;
  }
  ++stats_.writeback_retries;
  obs_.WritebackError(part.file, part.first_page, part.count, /*lost=*/false);
  IoRequest retry = part;
  retry.id = scheduler_.AllocateId();
  retry.attempts = next_attempt;
  // A future submit time is the backoff: the queue's EarliestSubmit causality
  // delays the retry's dispatch until the deadline passes.
  retry.submit = done + WritebackBackoff(next_attempt);
  scheduler_.Submit(FsIdOfFid(part.file), retry);
}

Result<int> SimKernel::Open(Process& p, std::string_view path) {
  SyscallScope sys(*this, p, "open");
  SLED_ASSIGN_OR_RETURN(Vfs::Resolved r, vfs_.Resolve(path));
  SLED_ASSIGN_OR_RETURN(InodeAttr attr, r.fs->GetAttr(r.ino));
  if (attr.is_dir) {
    return Err::kIsDir;
  }
  OpenFile of;
  of.fs_id = r.fs_id;
  of.ino = r.ino;
  of.fid = Vfs::MakeFileId(r.fs_id, r.ino);
  return p.InstallFd(of);
}

Result<int> SimKernel::Create(Process& p, std::string_view path) {
  SyscallScope sys(*this, p, "creat");
  Vfs::Resolved r;
  auto existing = vfs_.Resolve(path);
  if (existing.ok()) {
    r = existing.value();
    SLED_ASSIGN_OR_RETURN(InodeAttr attr, r.fs->GetAttr(r.ino));
    if (attr.is_dir) {
      return Err::kIsDir;
    }
    // O_TRUNC: drop contents, cached pages, and any I/O still in the queues.
    const FileId fid = Vfs::MakeFileId(r.fs_id, r.ino);
    CancelFileIo(fid, 0);
    cache_.RemoveFile(fid);
    std::erase_if(writeback_queue_,
                  [fid](const WritebackEntry& e) { return e.key.file == fid; });
    SLED_RETURN_IF_ERROR(r.fs->Truncate(r.ino, 0));
  } else {
    SLED_ASSIGN_OR_RETURN(r, vfs_.CreateFile(path));
  }
  OpenFile of;
  of.fs_id = r.fs_id;
  of.ino = r.ino;
  of.fid = Vfs::MakeFileId(r.fs_id, r.ino);
  return p.InstallFd(of);
}

Result<void> SimKernel::Close(Process& p, int fd) {
  SyscallScope sys(*this, p, "close");
  OpenFile* of = p.FindFd(fd);
  if (of == nullptr) {
    return Err::kBadF;
  }
  // Release any SLED locks this descriptor held.
  for (int64_t page : of->locked_pages) {
    cache_.Unpin({of->fid, page});
  }
  // Uninstall the descriptor's completion program, if any.
  if (of->prog >= 0) {
    progs_.erase(of->prog);
  }
  p.RemoveFd(fd);
  return Result<void>::Ok();
}

Result<void> SimKernel::PageIn(Process& p, const OpenFile& of, int64_t first_page, int64_t count,
                               int64_t demand_pages) {
  FileSystem* fs = FsOf(of);
  // Attribute the transfer to the level holding the data *before* the read —
  // an HSM recall, for example, re-stages the file as a side effect.
  int level = -1;
  if (auto global = sleds_table_.GlobalLevelOf(of.fs_id, fs->LevelOf(of.ino, first_page));
      global.ok()) {
    level = global.value();
  }
  // Fault bookkeeping is charged *before* the store transfer, mirroring the
  // engine path (which charges it before submit): a transfer that fails after
  // all retries then costs the same simulated time in every I/O mode.
  ChargeCpu(p, config_.costs.fault_overhead);
  SLED_ASSIGN_OR_RETURN(Duration t,
                        StoreTransfer(p.pid(), of.fid, fs, of.ino, first_page, count,
                                      /*write=*/false));
  ChargeIo(p, t);
  p.stats().major_faults += count;
  stats_.pages_paged_in += count;
  stats_.readahead_pages += count - demand_pages;
  obs_.PageIn(p.pid(), of.fid, first_page, count, level, t);
  if (count > demand_pages) {
    obs_.Readahead(p.pid(), of.fid, first_page + demand_pages, count - demand_pages);
  }
  for (int64_t q = first_page; q < first_page + count; ++q) {
    auto evicted = cache_.Insert({of.fid, q}, /*dirty=*/false);
    if (evicted.has_value() && evicted->dirty) {
      QueueWriteback(&p, evicted->key);
    }
  }
  return Result<void>::Ok();
}

int64_t SimKernel::SubmitRead(int pid, const OpenFile& of, int64_t first, int64_t count) {
  FileSystem* fs = vfs_.FsById(of.fs_id);
  const int64_t id = scheduler_.AllocateId();
  for (int64_t q = first; q < first + count; ++q) {
    inflight_[{of.fid, q}] = InFlightPage{id, of.fs_id, TimePoint(), false};
  }
  IoRequest req;
  req.id = id;
  req.op = IoOp::kRead;
  req.file = of.fid;
  req.ino = static_cast<int64_t>(of.ino);
  req.first_page = first;
  req.count = count;
  req.device_addr = fs->DeviceAddressOf(of.ino, first);
  const int64_t last_addr = fs->DeviceAddressOf(of.ino, first + count - 1);
  req.device_end_addr = last_addr >= 0 ? last_addr + kPageSize : -1;
  req.submit = clock_.Now();
  req.pid = pid;
  const DeviceQueue* dq = scheduler_.queue(of.fs_id);
  obs_.IoSubmit(pid, dq->name(), of.fid, first, count, /*write=*/false, dq->depth() + 1);
  scheduler_.Submit(of.fs_id, req);
  return id;
}

int64_t SimKernel::SubmitWrite(int pid, FileId fid, int64_t first, int64_t count) {
  const uint32_t fs_id = FsIdOfFid(fid);
  FileSystem* fs = vfs_.FsById(fs_id);
  if (fs == nullptr || !scheduler_.HasQueue(fs_id)) {
    return 0;
  }
  const InodeNum ino = InoOfFid(fid);
  const int64_t id = scheduler_.AllocateId();
  IoRequest req;
  req.id = id;
  req.op = IoOp::kWrite;
  req.file = fid;
  req.ino = static_cast<int64_t>(ino);
  req.first_page = first;
  req.count = count;
  req.device_addr = fs->DeviceAddressOf(ino, first);
  const int64_t last_addr = fs->DeviceAddressOf(ino, first + count - 1);
  req.device_end_addr = last_addr >= 0 ? last_addr + kPageSize : -1;
  req.submit = clock_.Now();
  req.pid = pid;
  const DeviceQueue* dq = scheduler_.queue(fs_id);
  obs_.IoSubmit(pid, dq->name(), fid, first, count, /*write=*/true, dq->depth() + 1);
  scheduler_.Submit(fs_id, req);
  return id;
}

void SimKernel::AwaitPage(Process& p, PageKey key) {
  const TimePoint now = clock_.Now();
  scheduler_.CatchUp(now);
  auto it = inflight_.find(key);
  if (it == inflight_.end()) {
    HarvestArrivals();
    return;
  }
  if (!it->second.dispatched) {
    // Still queued: the device must service it (and everything the policy
    // puts ahead of it) before the process can continue.
    scheduler_.ForceDispatch(it->second.fs_id, it->second.request_id, now);
    it = inflight_.find(key);
    if (it == inflight_.end() || !it->second.dispatched) {
      HarvestArrivals();
      return;  // request failed at the device; caller sees the missing page
    }
  }
  if (now < it->second.ready_at) {
    const Duration wait = it->second.ready_at - now;
    clock_.Advance(wait);
    p.stats().io_time += wait;
    ++p.stats().io_waits;
    obs_.IoWait(p.pid(), key.file, wait);
  }
  HarvestArrivals();
}

void SimKernel::HarvestArrivals() {
  const TimePoint now = clock_.Now();
  arrivals_.ExpireUpTo(static_cast<uint64_t>(now.since_epoch().nanos()),
                       [&](uint64_t, const PageKey& key) {
                         cache_.MarkArrived(key);
                         auto it = inflight_.find(key);
                         if (it != inflight_.end() && it->second.dispatched &&
                             !(now < it->second.ready_at)) {
                           inflight_.erase(it);
                         }
                       });
}

Result<int64_t> SimKernel::EnginePageIn(Process& p, const OpenFile& of, int64_t page,
                                        int64_t run, int64_t demand) {
  // The planned run must not re-request pages with an outstanding request:
  // clip at the first such page. (`page` itself missed and is not in flight.)
  for (int64_t q = page + 1; q < page + run; ++q) {
    if (inflight_.contains({of.fid, q})) {
      run = q - page;
      break;
    }
  }
  demand = std::min(demand, run);
  ChargeCpu(p, config_.costs.fault_overhead);
  // Demand pages: submit in cache-bounded chunks and wait for each, so a run
  // larger than the cache never claims more in-flight frames than the budget.
  const int64_t budget = std::max<int64_t>(1, cache_.capacity_pages() / 4);
  int64_t submitted = 0;
  while (submitted < demand) {
    const int64_t chunk = std::min(demand - submitted, budget);
    SubmitRead(p.pid(), of, page + submitted, chunk);
    p.stats().major_faults += chunk;
    AwaitPage(p, {of.fid, page + submitted});
    for (int64_t q = page + submitted; q < page + submitted + chunk; ++q) {
      if (!cache_.Contains({of.fid, q})) {
        // The device read failed past all retries; report the code the
        // dispatch recorded (already syscall-mapped), kIo if none.
        const Err e = last_io_error_ != Err::kOk ? last_io_error_ : Err::kIo;
        last_io_error_ = Err::kOk;
        return e;
      }
    }
    submitted += chunk;
  }
  // Readahead tail: purely asynchronous, trimmed to the in-flight budget so
  // speculation can never fill the cache with unevictable frames.
  int64_t ra = run - demand;
  const int64_t outstanding = cache_.in_flight_pages() + scheduler_.PendingPages(IoOp::kRead);
  ra = std::min(ra, std::max<int64_t>(0, budget - outstanding));
  if (ra > 0) {
    SubmitRead(p.pid(), of, page + demand, ra);
    p.stats().major_faults += ra;
    stats_.readahead_pages += ra;
    obs_.Readahead(p.pid(), of.fid, page + demand, ra);
  }
  return demand + ra;
}

void SimKernel::CancelFileIo(FileId fid, int64_t first_page) {
  if (!engine_on()) {
    return;
  }
  scheduler_.CancelMatching([fid, first_page](const IoRequest& r) {
    return r.file == fid && r.first_page >= first_page;
  });
  std::erase_if(inflight_, [fid, first_page](const auto& kv) {
    return kv.first.file == fid && kv.first.page >= first_page;
  });
}

int64_t SimKernel::PlanReadaheadRun(OpenFile& of, int64_t page, int64_t file_pages) {
  if (page == of.last_demand_page) {
    of.readahead_window =
        std::min(std::max(of.readahead_window, 1) * 2, config_.max_readahead_pages);
  } else {
    of.readahead_window = config_.min_readahead_pages;
  }
  // The run extends to the window edge, EOF, or the next resident page —
  // whichever comes first. `page` itself missed, so no run covers it and the
  // next resident run (if any) starts strictly after `page`.
  int64_t run = std::min<int64_t>(of.readahead_window, file_pages - page);
  if (const auto next = cache_.NextResidentRun(of.fid, page + 1); next.has_value()) {
    run = std::min(run, next->first - page);
  }
  return std::max<int64_t>(run, 1);
}

Result<int64_t> SimKernel::Read(Process& p, int fd, std::span<char> dst) {
  SyscallScope sys(*this, p, "read");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  const int64_t size = fs->SizeOf(of->ino);
  if (of->offset >= size || dst.empty()) {
    return static_cast<int64_t>(0);
  }
  const int64_t n = std::min<int64_t>(static_cast<int64_t>(dst.size()), size - of->offset);
  SLED_ASSIGN_OR_RETURN(int64_t copied,
                        fs->ReadBytes(of->ino, of->offset, dst.subspan(0, static_cast<size_t>(n))));
  SLED_CHECK(copied == n, "short content read: %lld != %lld", static_cast<long long>(copied),
             static_cast<long long>(n));

  const int64_t file_pages = PagesFor(size);
  const int64_t first = of->offset / kPageSize;
  const int64_t last = (of->offset + n - 1) / kPageSize;
  const int64_t read_end = of->offset + n;
  const Duration mem_latency = SecondsF(config_.memory.latency.ToSeconds());
  const double mem_bw = config_.memory.bandwidth_bps;
  for (int64_t page = first; page <= last; ++page) {
    const PageKey key{of->fid, page};
    if (engine_on() && inflight_.contains(key)) {
      AwaitPage(p, key);  // readahead in flight for this page: block until it lands
    }
    if (!cache_.Touch(key)) {
      // Demand miss: page in the readahead-planned run starting here.
      const int64_t run = PlanReadaheadRun(*of, page, file_pages);
      const int64_t demand = std::min<int64_t>(run, last - page + 1);
      if (engine_on()) {
        SLED_ASSIGN_OR_RETURN(const int64_t eff, EnginePageIn(p, *of, page, run, demand));
        of->last_demand_page = page + eff;
      } else {
        SLED_RETURN_IF_ERROR(PageIn(p, *of, page, run, demand));
        of->last_demand_page = page + run;  // next sequential miss lands here
      }
    } else {
      ++p.stats().minor_faults;
    }
    // Copy the consumed bytes of this page to user space.
    const int64_t page_lo = std::max(of->offset, page * kPageSize);
    const int64_t page_hi = std::min(read_end, (page + 1) * kPageSize);
    ChargeCpu(p, mem_latency + TransferTime(page_hi - page_lo, mem_bw));
  }
  of->offset += n;
  p.stats().bytes_read += n;
  return n;
}

Result<std::string_view> SimKernel::MmapRead(Process& p, int fd, int64_t offset,
                                             int64_t length) {
  SyscallScope sys(*this, p, "mmap_read");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  const int64_t size = fs->SizeOf(of->ino);
  if (offset < 0 || length < 0) {
    return Err::kInval;
  }
  if (offset >= size || length == 0) {
    return std::string_view();
  }
  const int64_t n = std::min(length, size - offset);
  const int64_t file_pages = PagesFor(size);
  const int64_t first = offset / kPageSize;
  const int64_t last = (offset + n - 1) / kPageSize;
  for (int64_t page = first; page <= last; ++page) {
    const PageKey key{of->fid, page};
    if (engine_on() && inflight_.contains(key)) {
      AwaitPage(p, key);
    }
    if (!cache_.Touch(key)) {
      // Demand miss: identical readahead planning to Read().
      const int64_t run = PlanReadaheadRun(*of, page, file_pages);
      const int64_t demand = std::min<int64_t>(run, last - page + 1);
      if (engine_on()) {
        SLED_ASSIGN_OR_RETURN(const int64_t eff, EnginePageIn(p, *of, page, run, demand));
        of->last_demand_page = page + eff;
      } else {
        SLED_RETURN_IF_ERROR(PageIn(p, *of, page, run, demand));
        of->last_demand_page = page + run;
      }
    } else {
      ++p.stats().minor_faults;
    }
    ChargeCpu(p, config_.costs.mmap_touch_per_page);
  }
  p.stats().bytes_read += n;
  SLED_ASSIGN_OR_RETURN(std::string_view content, fs->ContentView(of->ino));
  return content.substr(static_cast<size_t>(offset), static_cast<size_t>(n));
}

Result<void> SimKernel::ProgFaultSpan(Process& p, OpenFile& of, int64_t offset, int64_t length,
                                      int64_t size) {
  if (length <= 0) {
    return Result<void>::Ok();
  }
  const int64_t file_pages = PagesFor(size);
  const int64_t first = offset / kPageSize;
  const int64_t last = (offset + length - 1) / kPageSize;
  for (int64_t page = first; page <= last; ++page) {
    const PageKey key{of.fid, page};
    if (engine_on() && inflight_.contains(key)) {
      AwaitPage(p, key);
    }
    if (!cache_.Touch(key)) {
      // Demand miss: identical readahead planning to Read()/MmapRead().
      const int64_t run = PlanReadaheadRun(of, page, file_pages);
      const int64_t demand = std::min<int64_t>(run, last - page + 1);
      if (engine_on()) {
        SLED_ASSIGN_OR_RETURN(const int64_t eff, EnginePageIn(p, of, page, run, demand));
        of.last_demand_page = page + eff;
      } else {
        SLED_RETURN_IF_ERROR(PageIn(p, of, page, run, demand));
        of.last_demand_page = page + run;
      }
    } else {
      ++p.stats().minor_faults;
    }
    ChargeCpu(p, config_.costs.prog_touch_per_page);
  }
  return Result<void>::Ok();
}

Result<int64_t> SimKernel::InstallProgram(Process& p, int fd, const ProgSpec& spec) {
  SyscallScope sys(*this, p, "prog_install");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  SLED_ASSIGN_OR_RETURN(CompletionProgram prog, CompletionProgram::Create(spec));
  if (of->prog >= 0) {
    progs_.erase(of->prog);  // replace the descriptor's previous program
  }
  const int64_t handle = next_prog_id_++;
  progs_.emplace(handle, std::move(prog));
  of->prog = handle;
  obs_.ProgInstall(p.pid(), of->fid, static_cast<int>(spec.kind));
  return handle;
}

Result<ProgResult> SimKernel::RunProgram(Process& p, int fd) {
  SyscallScope sys(*this, p, "prog_run");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  auto it = of->prog < 0 ? progs_.end() : progs_.find(of->prog);
  if (it == progs_.end()) {
    return Err::kInval;
  }
  CompletionProgram& prog = it->second;
  const ProgSpec& spec = prog.spec();
  FileSystem* fs = FsOf(*of);
  const int64_t size = fs->SizeOf(of->ino);

  // One completed chunk: fault it in (demand paging, readahead, engine
  // submission, and — inside the FS — replica routing, all exactly as a
  // Read would), then run the program over the bytes in place. The program
  // body is priced per invocation plus its app-declared per-byte compute;
  // there is no crossing and no user copy — that is the entire win.
  auto run_chunk = [&](int64_t off, int64_t len) -> Result<CompletionProgram::Action> {
    SLED_RETURN_IF_ERROR(ProgFaultSpan(p, *of, off, len, size));
    SLED_ASSIGN_OR_RETURN(std::string_view content, fs->ContentView(of->ino));
    const std::string_view data =
        content.substr(static_cast<size_t>(off), static_cast<size_t>(len));
    ChargeCpu(p, config_.costs.prog_invoke_overhead +
                     Nanoseconds(std::llround(spec.step_cost_ns_per_byte *
                                              static_cast<double>(len))));
    p.stats().bytes_read += len;
    return prog.OnComplete(off, data);
  };

  using Action = CompletionProgram::Action;
  Action act = prog.Start(size);
  if (prog.self_driven()) {
    // kChainWalk / kHistogram: every completion names the next read — the
    // chained resubmit that replaces an app round trip per hop.
    while (act.kind == Action::Kind::kSeek) {
      const int64_t off = act.offset;
      const int64_t len = std::min(act.length, size - off);
      SLED_ASSIGN_OR_RETURN(act, run_chunk(off, len));
      if (act.kind == Action::Kind::kSeek) {
        obs_.ProgResubmit(p.pid(), of->fid, act.offset, act.length);
      }
    }
  } else if (size > 0 && act.kind == Action::Kind::kNext) {
    // kFindFirst / kCount: the kernel owns the chunk plan — file order, or
    // the picker's §4.2 lowest-latency-first order over the file's SLEDs.
    // kFindFirst chunks overlap by needle-1 bytes so a match straddling a
    // chunk boundary is still seen by the chunk it starts in.
    const int64_t overlap =
        spec.kind == ProgKind::kFindFirst
            ? static_cast<int64_t>(spec.pattern.size()) - 1
            : 0;
    std::vector<std::pair<int64_t, int64_t>> plan;
    if (spec.order_by_sleds) {
      SLED_ASSIGN_OR_RETURN(SledVector sleds,
                            BuildSleds(p, *of, 0, PagesFor(size), size, spec.rank_by));
      SortByPickOrder(sleds, spec.rank_by);
      for (const Sled& s : sleds) {
        const int64_t end = std::min(s.offset + s.length, size);
        for (int64_t off = s.offset; off < end; off += spec.chunk_bytes) {
          plan.emplace_back(off, std::min(spec.chunk_bytes, end - off));
        }
      }
    } else {
      for (int64_t off = 0; off < size; off += spec.chunk_bytes) {
        plan.emplace_back(off, std::min(spec.chunk_bytes, size - off));
      }
    }
    for (const auto& [off, nominal] : plan) {
      const int64_t len = std::min(nominal + overlap, size - off);
      SLED_ASSIGN_OR_RETURN(act, run_chunk(off, len));
      if (act.kind != Action::Kind::kNext) {
        break;
      }
    }
    if (act.kind == Action::Kind::kNext) {
      act = prog.OnPlanEnd();
    }
  }

  const ProgResult& r = prog.result();
  if (act.kind == Action::Kind::kDone && act.cancel_pending) {
    // Prune: the program is done with this file, so readahead still queued
    // past the match is pure waste — cancel it before it reaches a device.
    CancelFileIo(of->fid, PagesFor(r.match_offset + 1));
  }
  obs_.ProgDone(p.pid(), of->fid, static_cast<int>(spec.kind),
                r.status != ProgStatus::kOk, r.invocations, r.resubmits, r.bytes_examined);
  return r;
}

Result<int64_t> SimKernel::Write(Process& p, int fd, std::span<const char> src) {
  SyscallScope sys(*this, p, "write");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  if (src.empty()) {
    return static_cast<int64_t>(0);
  }
  const int64_t old_size = fs->SizeOf(of->ino);
  const int64_t n = static_cast<int64_t>(src.size());
  SLED_ASSIGN_OR_RETURN(int64_t written, fs->WriteBytes(of->ino, of->offset, src));
  SLED_CHECK(written == n, "short content write");

  const int64_t first = of->offset / kPageSize;
  const int64_t last = (of->offset + n - 1) / kPageSize;
  const int64_t write_end = of->offset + n;
  const Duration mem_latency = SecondsF(config_.memory.latency.ToSeconds());
  const double mem_bw = config_.memory.bandwidth_bps;
  for (int64_t page = first; page <= last; ++page) {
    const PageKey key{of->fid, page};
    const int64_t page_lo = page * kPageSize;
    const int64_t page_hi = (page + 1) * kPageSize;
    const bool full_cover = of->offset <= page_lo && write_end >= page_hi;
    const bool beyond_old_eof = page_lo >= old_size;
    if (engine_on() && inflight_.contains(key)) {
      AwaitPage(p, key);  // overwriting a page whose read is in flight
    }
    PageCache::Frame* frame = cache_.Probe(key);
    if (frame == nullptr && !full_cover && !beyond_old_eof) {
      // Read-modify-write of a non-resident partial page.
      if (engine_on()) {
        SLED_RETURN_IF_ERROR(EnginePageIn(p, *of, page, 1, 1));
      } else {
        SLED_RETURN_IF_ERROR(PageIn(p, *of, page, 1, 1));
      }
      frame = cache_.Probe(key);  // the page-in made it resident
    }
    if (frame != nullptr) {
      cache_.Freshen(frame, /*dirty=*/true);
    } else {
      auto evicted = cache_.Insert(key, /*dirty=*/true);
      if (evicted.has_value() && evicted->dirty) {
        QueueWriteback(&p, evicted->key);
      }
    }
    const int64_t copy_lo = std::max(of->offset, page_lo);
    const int64_t copy_hi = std::min(write_end, page_hi);
    ChargeCpu(p, mem_latency + TransferTime(copy_hi - copy_lo, mem_bw));
  }
  of->offset += n;
  p.stats().bytes_written += n;
  return n;
}

Result<int64_t> SimKernel::Lseek(Process& p, int fd, int64_t offset, Whence whence) {
  SyscallScope sys(*this, p, "lseek");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCur:
      base = of->offset;
      break;
    case Whence::kEnd:
      base = fs->SizeOf(of->ino);
      break;
  }
  const int64_t target = base + offset;
  if (target < 0) {
    return Err::kInval;
  }
  of->offset = target;
  return target;
}

Result<InodeAttr> SimKernel::Stat(Process& p, std::string_view path) {
  SyscallScope sys(*this, p, "stat");
  SLED_ASSIGN_OR_RETURN(Vfs::Resolved r, vfs_.Resolve(path));
  return r.fs->GetAttr(r.ino);
}

Result<InodeAttr> SimKernel::Fstat(Process& p, int fd) {
  SyscallScope sys(*this, p, "fstat");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  // Attribute fetches need the server: inside a down window the caller sees
  // ETIMEDOUT (NFS hard-mount semantics), not stale cached attributes.
  if (auto avail = fs->CheckAvailable(); !avail.ok()) {
    return ToSyscallErr(avail.error());
  }
  return fs->GetAttr(of->ino);
}

Result<std::vector<DirEntry>> SimKernel::ReadDir(Process& p, std::string_view path) {
  SyscallScope sys(*this, p, "readdir");
  return vfs_.List(path);
}

Result<void> SimKernel::Unlink(Process& p, std::string_view path) {
  SyscallScope sys(*this, p, "unlink");
  SLED_ASSIGN_OR_RETURN(Vfs::Resolved r, vfs_.Resolve(path));
  const FileId fid = Vfs::MakeFileId(r.fs_id, r.ino);
  CancelFileIo(fid, 0);
  cache_.RemoveFile(fid);
  std::erase_if(writeback_queue_,
                [fid](const WritebackEntry& e) { return e.key.file == fid; });
  return vfs_.Unlink(path);
}

Result<void> SimKernel::Ftruncate(Process& p, int fd, int64_t size) {
  SyscallScope sys(*this, p, "ftruncate");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  SLED_RETURN_IF_ERROR(fs->Truncate(of->ino, size));
  const int64_t first_dropped = PagesFor(size);
  CancelFileIo(of->fid, first_dropped);
  cache_.RemovePagesFrom(of->fid, first_dropped);
  const FileId fid = of->fid;
  std::erase_if(writeback_queue_,
                [fid, first_dropped](const WritebackEntry& e) {
                  return e.key.file == fid && e.key.page >= first_dropped;
                });
  return Result<void>::Ok();
}

Result<void> SimKernel::Fsync(Process& p, int fd) {
  SyscallScope sys(*this, p, "fsync");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  const std::vector<PageKey> dirty = cache_.DirtyPagesOf(of->fid);
  if (engine_on()) {
    // Submit each contiguous dirty run as one write request, force the queue
    // to service them all, and sleep the process to the last completion.
    std::unordered_map<int64_t, WriteDone> done;
    write_done_sink_ = &done;
    std::vector<int64_t> ids;
    size_t i = 0;
    while (i < dirty.size()) {
      size_t j = i + 1;
      while (j < dirty.size() && dirty[j].page == dirty[j - 1].page + 1) {
        ++j;
      }
      ids.push_back(SubmitWrite(p.pid(), of->fid, dirty[i].page,
                                static_cast<int64_t>(j - i)));
      i = j;
    }
    for (const PageKey& key : dirty) {
      cache_.MarkClean(key);
    }
    const TimePoint now = clock_.Now();
    for (const int64_t id : ids) {
      if (id != 0) {
        scheduler_.ForceDispatch(of->fs_id, id, now);
      }
    }
    write_done_sink_ = nullptr;
    TimePoint latest = now;
    for (const auto& [id, wd] : done) {
      latest = std::max(latest, wd.done);
    }
    if (now < latest) {
      const Duration wait = latest - now;
      clock_.Advance(wait);
      p.stats().io_time += wait;
      ++p.stats().io_waits;
      obs_.IoWait(p.pid(), of->fid, wait);
    }
    HarvestArrivals();
    // Failure handling, after the sink is disarmed. Fsync's own failed runs
    // re-dirty their (still resident) pages and the caller gets the error —
    // the data is not on stable storage. A background writeback that happened
    // to complete inside the window gets the normal resubmit treatment.
    const std::unordered_set<int64_t> own(ids.begin(), ids.end());
    Err first_err = Err::kOk;
    for (const auto& [id, wd] : done) {
      if (wd.ok) {
        continue;
      }
      if (own.contains(id)) {
        for (int64_t q = wd.req.first_page; q < wd.req.end_page(); ++q) {
          const PageKey key{of->fid, q};
          if (PageCache::Frame* frame = cache_.Probe(key)) {
            cache_.MarkDirty(frame);
          }
        }
        if (first_err == Err::kOk) {
          first_err = last_io_error_ != Err::kOk ? last_io_error_ : Err::kIo;
        }
      } else {
        HandleWritebackFailure(wd.req, wd.done);
      }
    }
    last_io_error_ = Err::kOk;
    if (first_err != Err::kOk) {
      return first_err;
    }
    return Result<void>::Ok();
  }
  // Collect the dirty runs first, then flush; a page is marked clean only
  // after its run reaches the store, so a failed flush leaves its pages (and
  // every later run's) dirty for a retry and the caller sees the error.
  struct Run {
    int64_t first = 0;
    int64_t len = 0;
  };
  std::vector<Run> runs;
  for (const PageKey& key : dirty) {
    if (!runs.empty() && key.page == runs.back().first + runs.back().len) {
      ++runs.back().len;
    } else {
      runs.push_back({key.page, 1});
    }
  }
  for (const Run& r : runs) {
    SLED_ASSIGN_OR_RETURN(Duration t,
                          StoreTransfer(p.pid(), of->fid, fs, of->ino, r.first, r.len,
                                        /*write=*/true));
    ChargeIo(p, t);
    stats_.pages_written_back += r.len;
    for (int64_t q = r.first; q < r.first + r.len; ++q) {
      cache_.MarkClean({of->fid, q});
    }
  }
  return Result<void>::Ok();
}

void SimKernel::QueueWriteback(Process* p, PageKey key) {
  obs_.WritebackQueued(key.file, key.page);
  if (engine_on()) {
    // Hand the page straight to the device queue: it goes out asynchronously
    // and the coalescer folds adjacent evictions into one access. Not an
    // error swallow: the id is unneeded (no one waits on eviction writeback)
    // and a dispatch failure is handled by CompleteIo's resubmit path.
    (void)SubmitWrite(p != nullptr ? p->pid() : 0, key.file, key.page, 1);
    return;
  }
  writeback_queue_.push_back(WritebackEntry{key, /*attempts=*/0, TimePoint()});
  if (static_cast<int>(writeback_queue_.size()) >= config_.writeback_batch_pages) {
    // Not an error swallow: FlushWriteback handles its own failures (failed
    // runs stay queued with backoff, or count as lost past the attempt cap);
    // the returned duration is only of interest to FlushAllDirty.
    (void)FlushWriteback(p);
  }
}

Result<Duration> SimKernel::FlushWriteback(Process* p, bool force) {
  if (writeback_queue_.empty()) {
    return Duration();
  }
  const TimePoint now = clock_.Now();
  // Entries still inside their backoff window stay queued (unless forced).
  std::vector<WritebackEntry> waiting;
  std::vector<WritebackEntry> batch;
  batch.reserve(writeback_queue_.size());
  for (const WritebackEntry& e : writeback_queue_) {
    if (!force && now < e.not_before) {
      waiting.push_back(e);
    } else {
      batch.push_back(e);
    }
  }
  if (batch.empty()) {
    writeback_queue_ = std::move(waiting);
    return Duration();
  }
  std::sort(batch.begin(), batch.end(),
            [](const WritebackEntry& a, const WritebackEntry& b) {
              if (a.key.file != b.key.file) {
                return a.key.file < b.key.file;
              }
              if (a.key.page != b.key.page) {
                return a.key.page < b.key.page;
              }
              return a.attempts > b.attempts;  // duplicate: keep the retried entry
            });
  // A page can be queued twice between flushes (dirtied, evicted, re-read,
  // re-dirtied, evicted again). Deduplicate so each dirty page is written
  // exactly once per flush; the survivor keeps the higher attempt count so a
  // re-dirtied page cannot reset its ticket toward the lost cap.
  batch.erase(std::unique(batch.begin(), batch.end(),
                          [](const WritebackEntry& a, const WritebackEntry& b) {
                            return a.key.file == b.key.file && a.key.page == b.key.page;
                          }),
              batch.end());
  // Dispatch in device order, not file order: one ascending sweep per device
  // instead of seeking back and forth between files' extents. Ties (and pages
  // with no flat device address) keep the (file, page) order from above, so
  // single-file batches — and any file system whose allocation is sequential —
  // are flushed exactly as before.
  std::stable_sort(batch.begin(), batch.end(),
                   [this](const WritebackEntry& a, const WritebackEntry& b) {
                     const uint32_t afs = FsIdOfFid(a.key.file);
                     const uint32_t bfs = FsIdOfFid(b.key.file);
                     if (afs != bfs) {
                       return afs < bfs;
                     }
                     FileSystem* fs = vfs_.FsById(afs);
                     if (fs == nullptr) {
                       return false;
                     }
                     const int64_t aa = fs->DeviceAddressOf(InoOfFid(a.key.file), a.key.page);
                     const int64_t ba = fs->DeviceAddressOf(InoOfFid(b.key.file), b.key.page);
                     return aa < ba;
                   });
  Duration total;
  int64_t pages_flushed = 0;
  int64_t runs_flushed = 0;
  size_t i = 0;
  while (i < batch.size()) {
    const FileId fid = batch[i].key.file;
    const int64_t first = batch[i].key.page;
    size_t j = i + 1;
    while (j < batch.size() && batch[j].key.file == fid &&
           batch[j].key.page == batch[j - 1].key.page + 1) {
      ++j;
    }
    FileSystem* fs = vfs_.FsById(FsIdOfFid(fid));
    if (fs != nullptr) {
      auto t = StoreTransfer(p != nullptr ? p->pid() : 0, fid, fs, InoOfFid(fid), first,
                             static_cast<int64_t>(j - i), /*write=*/true);
      if (t.ok()) {
        total += t.value();
        stats_.pages_written_back += static_cast<int64_t>(j - i);
        pages_flushed += static_cast<int64_t>(j - i);
        ++runs_flushed;
      } else if (t.error() == Err::kIo || t.error() == Err::kTimedOut) {
        // Device/server failure past the immediate retries: the dirty data is
        // only in this queue now, so re-queue each page with backoff until the
        // attempt cap, past which it counts as lost.
        bool any_lost = false;
        for (size_t k = i; k < j; ++k) {
          WritebackEntry e = batch[k];
          ++e.attempts;
          if (e.attempts >= config_.fault.max_writeback_attempts) {
            ++stats_.writeback_lost;
            any_lost = true;
            continue;
          }
          ++stats_.writeback_retries;
          e.not_before = now + WritebackBackoff(e.attempts);
          waiting.push_back(e);
        }
        obs_.WritebackError(fid, first, static_cast<int64_t>(j - i), any_lost);
      }
      // Other errors (unlinked file, offline HSM file) drop the pages: the
      // data was already discarded at the content layer.
    }
    i = j;
  }
  writeback_queue_ = std::move(waiting);
  clock_.Advance(total);
  // A synchronous flush happens on behalf of whichever process pushed the
  // queue over the batch threshold; its device time belongs on that process's
  // I/O account (background flushes pass p == nullptr).
  if (p != nullptr) {
    p->stats().io_time += total;
  }
  obs_.WritebackFlush(p != nullptr ? p->pid() : 0, pages_flushed, runs_flushed, total);
  return total;
}

Result<void> SimKernel::IoctlSledsFill(Process& p, int level, DeviceCharacteristics chars) {
  SyscallScope sys(*this, p, "ioctl_sleds_fill");
  return sleds_table_.Fill(level, chars);
}

// The scan is O(residency runs + level runs), not O(pages): resident stretches
// come straight from the cache's ordered index and non-resident stretches ask
// the file system for the length of each uniform-level run. The *simulated*
// charge stays sled_scan_per_page per page scanned, and the emitted vector is
// identical to a page-at-a-time scan (segments merge on equal level; a
// segment's byte length is min(end_page * kPageSize, size) - start byte).
Result<SledVector> SimKernel::BuildSleds(Process& p, const OpenFile& of, int64_t first_page,
                                         int64_t end_page, int64_t size, RankBy route_rank) {
  FileSystem* fs = FsOf(of);
  const int64_t npages = end_page - first_page;
  ChargeCpu(p, config_.costs.sled_scan_per_page * npages);

  SledVector sleds;
  sleds.reserve(static_cast<size_t>(2 * cache_.ResidentRunCountOf(of.fid) + 1));
  // Local->global level lookups repeat for every run of the same level;
  // memoizing is safe because pages are visited in ascending order, so an
  // unregistered level still fails on its first (lowest) page.
  std::vector<int> global_of_local;
  std::vector<DeviceHealth> health_of_local;
  auto append = [&](int64_t from_page, int64_t to_page, int level,
                    const DeviceHealth& health) {
    const int64_t bytes = std::min(to_page * kPageSize, size) - from_page * kPageSize;
    if (!sleds.empty() && sleds.back().level == level) {
      sleds.back().length += bytes;
      return;
    }
    const SledsTable::Row& row = sleds_table_.row(level);
    Sled s;
    s.offset = from_page * kPageSize;
    s.length = bytes;
    s.level = level;
    if (health.unavailable) {
      // Down window: the estimate must steer consumers away. Balloon the
      // latency to the unavailable penalty so latency-ordered plans defer the
      // section, and flag it so pickers can prune it outright.
      s.unavailable = true;
      s.latency = config_.fault.unavailable_latency_s;
      s.bandwidth = row.chars.bandwidth_bps;
      s.latency_p50 = s.latency_p90 = s.latency_p99 = s.latency;
    } else {
      // Slow window: the level answers, just late — the whole distribution
      // scales together. GC window: the mean moves by duty * stall while
      // quantile p absorbs the whole stall when duty exceeds 1 - p. The
      // arithmetic lives in AdjustForHealth so replica routers agree with
      // the SLEDs they advertise.
      const HealthAdjustedLatency adj = AdjustForHealth(row.chars, health);
      s.latency = adj.mean_s;
      s.bandwidth = adj.bandwidth_bps;
      s.latency_p50 = adj.q.p50;
      s.latency_p90 = adj.q.p90;
      s.latency_p99 = adj.q.p99;
    }
    sleds.push_back(s);
  };
  int64_t page = first_page;
  while (page < end_page) {
    const auto run = cache_.NextResidentRun(of.fid, page);
    if (run.has_value() && run->first <= page) {
      // Resident stretch: one memory-level segment to the run's end.
      const int64_t to = std::min(run->end(), end_page);
      append(page, to, kMemoryLevel, DeviceHealth{});
      page = to;
      continue;
    }
    // Non-resident stretch up to the next resident run (or the scan end):
    // walk it a level-run at a time.
    const int64_t miss_end = run.has_value() ? std::min(run->first, end_page) : end_page;
    while (page < miss_end) {
      const int local = fs->RouteLevelOf(of.ino, page, route_rank);
      int global = -1;
      if (local >= 0 && static_cast<size_t>(local) < global_of_local.size()) {
        global = global_of_local[static_cast<size_t>(local)];
      }
      if (global < 0) {
        SLED_ASSIGN_OR_RETURN(global, sleds_table_.GlobalLevelOf(of.fs_id, local));
        if (local >= 0) {
          if (static_cast<size_t>(local) >= global_of_local.size()) {
            global_of_local.resize(static_cast<size_t>(local) + 1, -1);
            health_of_local.resize(static_cast<size_t>(local) + 1);
          }
          global_of_local[static_cast<size_t>(local)] = global;
          // Health is sampled once per scan per level (with the same memo):
          // one consistent estimate even if a fault window edge passes mid-scan.
          health_of_local[static_cast<size_t>(local)] = fs->LevelHealth(local);
        }
      }
      const DeviceHealth health =
          local >= 0 && static_cast<size_t>(local) < health_of_local.size()
              ? health_of_local[static_cast<size_t>(local)]
              : fs->LevelHealth(local);
      int64_t len = fs->LevelRunLen(of.ino, page, miss_end - page);
      len = std::max<int64_t>(1, std::min(len, miss_end - page));
      append(page, page + len, global, health);
      page += len;
    }
  }
  obs_.SledScan(p.pid(), of.fid, npages, static_cast<int64_t>(sleds.size()));
  return sleds;
}

Result<SledVector> SimKernel::IoctlSledsGet(Process& p, int fd, RankBy route_rank) {
  SyscallScope sys(*this, p, "ioctl_sleds_get");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  const int64_t size = fs->SizeOf(of->ino);
  return BuildSleds(p, *of, 0, PagesFor(size), size, route_rank);
}

Result<SledVector> SimKernel::IoctlSledsGet(Process& p, int fd, int64_t offset, int64_t length,
                                            RankBy route_rank) {
  SyscallScope sys(*this, p, "ioctl_sleds_get");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  if (offset < 0 || length < 0) {
    return Err::kInval;
  }
  FileSystem* fs = FsOf(*of);
  const int64_t size = fs->SizeOf(of->ino);
  const int64_t npages = PagesFor(size);
  const int64_t first = std::min(offset / kPageSize, npages);
  const int64_t end =
      length == 0 ? first : std::min((offset + length - 1) / kPageSize + 1, npages);
  return BuildSleds(p, *of, first, std::max(first, end), size, route_rank);
}

Result<int64_t> SimKernel::IoctlSledsLock(Process& p, int fd, int64_t offset, int64_t length) {
  SyscallScope sys(*this, p, "ioctl_sleds_lock");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  if (offset < 0 || length <= 0) {
    return Err::kInval;
  }
  FileSystem* fs = FsOf(*of);
  const int64_t size = fs->SizeOf(of->ino);
  const int64_t first = offset / kPageSize;
  const int64_t last = std::min(PagesFor(size) - 1, (offset + length - 1) / kPageSize);
  // Non-resident pages are skipped: a SLED lock freezes the *current* state;
  // it does not promote data into the cache. Walking the residency index
  // visits only resident pages, so the pinned set (and its order) matches a
  // page-at-a-time probe.
  int64_t pinned = 0;
  int64_t page = first;
  while (page <= last) {
    const auto run = cache_.NextResidentRun(of->fid, page);
    if (!run.has_value() || run->first > last) {
      break;
    }
    const int64_t hi = std::min(run->end() - 1, last);
    for (int64_t q = std::max(run->first, page); q <= hi; ++q) {
      PageCache::Frame* frame = cache_.Probe({of->fid, q});
      if (frame == nullptr || frame->pinned()) {
        continue;  // already locked (possibly by another descriptor)
      }
      if (cache_.Pin(frame)) {
        of->locked_pages.push_back(q);
        ++pinned;
      }
    }
    page = run->end();
  }
  ChargeCpu(p, config_.costs.sled_scan_per_page * (last - first + 1));
  return pinned;
}

Result<int64_t> SimKernel::IoctlSledsUnlock(Process& p, int fd, int64_t offset, int64_t length) {
  SyscallScope sys(*this, p, "ioctl_sleds_unlock");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  const int64_t first = length < 0 ? 0 : offset / kPageSize;
  const int64_t last =
      length < 0 ? std::numeric_limits<int64_t>::max() : (offset + length - 1) / kPageSize;
  int64_t released = 0;
  std::erase_if(of->locked_pages, [&](int64_t page) {
    if (page < first || page > last) {
      return false;
    }
    cache_.Unpin({of->fid, page});
    ++released;
    return true;
  });
  return released;
}

void SimKernel::DropCaches() {
  // Not an error swallow: FlushAllDirty accounts its own failures (retries,
  // then stats_.writeback_lost); the duration is irrelevant to cache setup.
  (void)FlushAllDirty();
  cache_.Clear();
}

Duration SimKernel::FlushAllDirty() {
  if (engine_on()) {
    // Submit every dirty run, then drain all queues to quiescence: after the
    // drain the clock sits at (or past) every completion, so a harvest clears
    // all in-flight state and DropCaches can safely clear the cache.
    const std::vector<PageKey> dirty = cache_.AllDirtyPages();
    size_t i = 0;
    while (i < dirty.size()) {
      size_t j = i + 1;
      while (j < dirty.size() && dirty[j].file == dirty[i].file &&
             dirty[j].page == dirty[j - 1].page + 1) {
        ++j;
      }
      // Not an error swallow: SubmitWrite returns the request id (0 when the
      // file system is gone); completion — including failure resubmits — is
      // handled by CompleteIo during the drain below.
      (void)SubmitWrite(0, dirty[i].file, dirty[i].page, static_cast<int64_t>(j - i));
      i = j;
    }
    for (const PageKey& key : dirty) {
      cache_.MarkClean(key);
    }
    const TimePoint now = clock_.Now();
    const TimePoint latest = scheduler_.Drain(now);
    const Duration waited = now < latest ? latest - now : Duration();
    clock_.Advance(waited);
    HarvestArrivals();
    return waited;
  }
  Duration total;
  for (const PageKey& key : cache_.AllDirtyPages()) {
    FileSystem* fs = vfs_.FsById(FsIdOfFid(key.file));
    if (fs != nullptr) {
      auto t = StoreTransfer(0, key.file, fs, InoOfFid(key.file), key.page, 1,
                             /*write=*/true);
      if (t.ok()) {
        total += t.value();
        stats_.pages_written_back += 1;
      } else if (t.error() == Err::kIo || t.error() == Err::kTimedOut) {
        // The frame is about to be surrendered (DropCaches): hand the page to
        // the writeback queue so the forced drain below retries it.
        writeback_queue_.push_back(
            WritebackEntry{key, /*attempts=*/1, clock_.Now() + WritebackBackoff(1)});
        ++stats_.writeback_retries;
        obs_.WritebackError(key.file, key.page, 1, /*lost=*/false);
      }
      // Other errors (unlinked file, offline HSM file) drop the page: the
      // data was already discarded at the content layer.
    }
    cache_.MarkClean(key);
  }
  clock_.Advance(total);
  // Forced drain of the queue: retried entries go back in with a higher
  // attempt count, so max_writeback_attempts passes bound the loop — anything
  // still failing by then has been counted lost and dropped.
  for (int pass = 0; pass < config_.fault.max_writeback_attempts && !writeback_queue_.empty();
       ++pass) {
    auto queued = FlushWriteback(nullptr, /*force=*/true);  // advances the clock itself
    if (queued.ok()) {
      total += queued.value();
    }
  }
  return total;
}

Duration SimKernel::RunMaintenance() {
  Duration total;
  for (const auto& [path, fs_id] : vfs_.Mounts()) {
    FileSystem* fs = vfs_.FsById(fs_id);
    if (fs == nullptr) {
      continue;
    }
    auto t = fs->BackgroundMaintenance();
    if (t.ok()) {
      total += t.value();
    }
  }
  clock_.Advance(total);
  return total;
}

}  // namespace sled
