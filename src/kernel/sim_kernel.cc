#include "src/kernel/sim_kernel.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "src/common/log.h"
#include "src/common/units.h"

namespace sled {
namespace {

constexpr uint64_t kInoMask = (1ull << 40) - 1;

uint32_t FsIdOfFid(FileId fid) { return static_cast<uint32_t>(fid >> 40); }
InodeNum InoOfFid(FileId fid) { return static_cast<InodeNum>(fid & kInoMask); }

IoMode ResolveIoMode(IoMode mode) {
  if (mode != IoMode::kFromEnv) {
    return mode;
  }
  const char* env = std::getenv("SLEDS_IO_MODE");
  if (env == nullptr) {
    return IoMode::kFifoSync;
  }
  const std::string_view v(env);
  if (v == "elevator" || v == "clook") {
    return IoMode::kElevator;
  }
  if (v == "fifo_async" || v == "fifo") {
    return IoMode::kFifoAsync;
  }
  return IoMode::kFifoSync;
}

}  // namespace

SimKernel::SimKernel(KernelConfig config)
    : config_(config),
      io_mode_(ResolveIoMode(config.io.mode)),
      obs_(&clock_, static_cast<size_t>(std::max(1, config.trace_events))),
      cache_(config.cache),
      sleds_table_(config.memory) {
  SLED_CHECK(config_.min_readahead_pages >= 1, "readahead minimum must be >= 1");
  SLED_CHECK(config_.max_readahead_pages >= config_.min_readahead_pages,
             "readahead maximum below minimum");
  obs_.SetLevelName(kMemoryLevel, "memory");
  vfs_.AttachObserver(&obs_);
}

Result<uint32_t> SimKernel::Mount(std::string path, std::unique_ptr<FileSystem> fs) {
  FileSystem* raw = fs.get();
  SLED_ASSIGN_OR_RETURN(uint32_t fs_id, vfs_.Mount(std::move(path), std::move(fs)));
  const std::vector<StorageLevelInfo> levels = raw->Levels();
  for (size_t i = 0; i < levels.size(); ++i) {
    const int global = sleds_table_.RegisterLevel(levels[i].name, levels[i].nominal, fs_id,
                                                  static_cast<int>(i));
    obs_.SetLevelName(global, levels[i].name);
  }
  if (engine_on()) {
    DeviceQueueConfig qc;
    qc.policy = io_mode_ == IoMode::kElevator ? IoPolicy::kClook : IoPolicy::kFifo;
    qc.coalesce = io_mode_ == IoMode::kElevator && config_.io.coalesce;
    qc.max_merge_pages = config_.io.max_merge_pages;
    StorageDevice* primary = raw->PrimaryDevice();
    std::string qname = primary != nullptr ? std::string(primary->name()) : raw->name();
    scheduler_.AttachQueue(
        fs_id, std::move(qname), qc,
        // Dispatch: one merged batch = one store access. The returned service
        // time becomes the queue's busy span; the clock is not advanced here —
        // waiting processes are charged at AwaitPage.
        [this, fs_id, raw](const IoRequest& merged, int parts) -> Result<Duration> {
          int level = -1;
          if (merged.op == IoOp::kRead) {
            // Level attribution before the read: an HSM recall re-stages the
            // file as a side effect, exactly as in the synchronous path.
            if (auto g = sleds_table_.GlobalLevelOf(fs_id, raw->LevelOf(merged.ino,
                                                                        merged.first_page));
                g.ok()) {
              level = g.value();
            }
          }
          const Result<Duration> t =
              merged.op == IoOp::kRead
                  ? raw->ReadPagesFromStore(merged.ino, merged.first_page, merged.count)
                  : raw->WritePagesToStore(merged.ino, merged.first_page, merged.count);
          const DeviceQueue* q = scheduler_.queue(fs_id);
          obs_.IoDispatch(q->name(), merged.count, parts, q->depth(),
                          t.ok() ? t.value() : Duration());
          if (merged.op == IoOp::kRead && t.ok()) {
            obs_.PageIn(merged.pid, merged.file, merged.first_page, merged.count, level,
                        t.value());
          }
          return t;
        },
        [this](const IoRequest& part, TimePoint done, bool ok) {
          CompleteIo(part, done, ok);
        });
  }
  return fs_id;
}

void SimKernel::CompleteIo(const IoRequest& part, TimePoint done, bool ok) {
  if (part.op == IoOp::kWrite) {
    if (write_done_sink_ != nullptr) {
      (*write_done_sink_)[part.id] = done;
    }
    if (ok) {
      stats_.pages_written_back += part.count;
    }
    return;
  }
  for (int64_t q = part.first_page; q < part.end_page(); ++q) {
    const PageKey key{part.file, q};
    auto it = inflight_.find(key);
    if (it == inflight_.end() || it->second.request_id != part.id) {
      continue;  // canceled (truncate/unlink) while queued or in service
    }
    if (!ok) {
      inflight_.erase(it);
      continue;
    }
    it->second.dispatched = true;
    it->second.ready_at = done;
    if (!cache_.Contains(key)) {
      // Claim the frame now, flagged in-flight until the clock reaches
      // `done`; a dirty page pushed out spills to (asynchronous) writeback.
      auto evicted = cache_.Insert(key, /*dirty=*/false, /*in_flight=*/true);
      if (evicted.has_value() && evicted->dirty) {
        QueueWriteback(nullptr, evicted->key);
      }
    }
    arrivals_.push(Arrival{done, key});
  }
  if (ok) {
    stats_.pages_paged_in += part.count;
  }
}

// Records syscall entry on construction and the exit event (with the full
// in-kernel latency, CPU charges plus I/O stalls) on destruction, so every
// return path of every syscall is covered.
class SimKernel::SyscallScope {
 public:
  SyscallScope(SimKernel& k, Process& p, const char* name)
      : k_(k), p_(p), name_(name), entered_(k.clock_.Now()) {
    ++p_.stats().syscalls;
    k_.obs_.SyscallEnter(p_.pid(), name_);
    k_.ChargeCpu(p_, k_.config_.costs.syscall_overhead);
    if (k_.engine_on()) {
      // Kernel entry is where elapsed CPU time becomes visible to the I/O
      // engine: replay device progress up to now and absorb any arrivals.
      k_.scheduler_.CatchUp(k_.clock_.Now());
      k_.HarvestArrivals();
    }
  }
  ~SyscallScope() { k_.obs_.SyscallExit(p_.pid(), name_, k_.clock_.Now() - entered_); }

  SyscallScope(const SyscallScope&) = delete;
  SyscallScope& operator=(const SyscallScope&) = delete;

 private:
  SimKernel& k_;
  Process& p_;
  const char* name_;
  TimePoint entered_;
};

Process& SimKernel::CreateProcess(std::string name) {
  processes_.push_back(std::make_unique<Process>(next_pid_++, std::move(name)));
  return *processes_.back();
}

void SimKernel::ChargeCpu(Process& p, Duration d) {
  p.stats().cpu_time += d;
  clock_.Advance(d);
}

void SimKernel::ChargeIo(Process& p, Duration d) {
  p.stats().io_time += d;
  clock_.Advance(d);
}

Result<OpenFile*> SimKernel::FdOf(Process& p, int fd) {
  OpenFile* of = p.FindFd(fd);
  if (of == nullptr) {
    return Err::kBadF;
  }
  return of;
}

FileSystem* SimKernel::FsOf(const OpenFile& of) { return vfs_.FsById(of.fs_id); }

Result<int> SimKernel::Open(Process& p, std::string_view path) {
  SyscallScope sys(*this, p, "open");
  SLED_ASSIGN_OR_RETURN(Vfs::Resolved r, vfs_.Resolve(path));
  SLED_ASSIGN_OR_RETURN(InodeAttr attr, r.fs->GetAttr(r.ino));
  if (attr.is_dir) {
    return Err::kIsDir;
  }
  OpenFile of;
  of.fs_id = r.fs_id;
  of.ino = r.ino;
  of.fid = Vfs::MakeFileId(r.fs_id, r.ino);
  return p.InstallFd(of);
}

Result<int> SimKernel::Create(Process& p, std::string_view path) {
  SyscallScope sys(*this, p, "creat");
  Vfs::Resolved r;
  auto existing = vfs_.Resolve(path);
  if (existing.ok()) {
    r = existing.value();
    SLED_ASSIGN_OR_RETURN(InodeAttr attr, r.fs->GetAttr(r.ino));
    if (attr.is_dir) {
      return Err::kIsDir;
    }
    // O_TRUNC: drop contents, cached pages, and any I/O still in the queues.
    const FileId fid = Vfs::MakeFileId(r.fs_id, r.ino);
    CancelFileIo(fid, 0);
    cache_.RemoveFile(fid);
    std::erase_if(writeback_queue_, [fid](const PageKey& k) { return k.file == fid; });
    SLED_RETURN_IF_ERROR(r.fs->Truncate(r.ino, 0));
  } else {
    SLED_ASSIGN_OR_RETURN(r, vfs_.CreateFile(path));
  }
  OpenFile of;
  of.fs_id = r.fs_id;
  of.ino = r.ino;
  of.fid = Vfs::MakeFileId(r.fs_id, r.ino);
  return p.InstallFd(of);
}

Result<void> SimKernel::Close(Process& p, int fd) {
  SyscallScope sys(*this, p, "close");
  OpenFile* of = p.FindFd(fd);
  if (of == nullptr) {
    return Err::kBadF;
  }
  // Release any SLED locks this descriptor held.
  for (int64_t page : of->locked_pages) {
    cache_.Unpin({of->fid, page});
  }
  p.RemoveFd(fd);
  return Result<void>::Ok();
}

Result<void> SimKernel::PageIn(Process& p, const OpenFile& of, int64_t first_page, int64_t count,
                               int64_t demand_pages) {
  FileSystem* fs = FsOf(of);
  // Attribute the transfer to the level holding the data *before* the read —
  // an HSM recall, for example, re-stages the file as a side effect.
  int level = -1;
  if (auto global = sleds_table_.GlobalLevelOf(of.fs_id, fs->LevelOf(of.ino, first_page));
      global.ok()) {
    level = global.value();
  }
  SLED_ASSIGN_OR_RETURN(Duration t, fs->ReadPagesFromStore(of.ino, first_page, count));
  ChargeIo(p, t);
  ChargeCpu(p, config_.costs.fault_overhead);
  p.stats().major_faults += count;
  stats_.pages_paged_in += count;
  stats_.readahead_pages += count - demand_pages;
  obs_.PageIn(p.pid(), of.fid, first_page, count, level, t);
  if (count > demand_pages) {
    obs_.Readahead(p.pid(), of.fid, first_page + demand_pages, count - demand_pages);
  }
  for (int64_t q = first_page; q < first_page + count; ++q) {
    auto evicted = cache_.Insert({of.fid, q}, /*dirty=*/false);
    if (evicted.has_value() && evicted->dirty) {
      QueueWriteback(&p, evicted->key);
    }
  }
  return Result<void>::Ok();
}

int64_t SimKernel::SubmitRead(int pid, const OpenFile& of, int64_t first, int64_t count) {
  FileSystem* fs = vfs_.FsById(of.fs_id);
  const int64_t id = scheduler_.AllocateId();
  for (int64_t q = first; q < first + count; ++q) {
    inflight_[{of.fid, q}] = InFlightPage{id, of.fs_id, TimePoint(), false};
  }
  IoRequest req;
  req.id = id;
  req.op = IoOp::kRead;
  req.file = of.fid;
  req.ino = static_cast<int64_t>(of.ino);
  req.first_page = first;
  req.count = count;
  req.device_addr = fs->DeviceAddressOf(of.ino, first);
  const int64_t last_addr = fs->DeviceAddressOf(of.ino, first + count - 1);
  req.device_end_addr = last_addr >= 0 ? last_addr + kPageSize : -1;
  req.submit = clock_.Now();
  req.pid = pid;
  const DeviceQueue* dq = scheduler_.queue(of.fs_id);
  obs_.IoSubmit(pid, dq->name(), of.fid, first, count, /*write=*/false, dq->depth() + 1);
  scheduler_.Submit(of.fs_id, req);
  return id;
}

int64_t SimKernel::SubmitWrite(int pid, FileId fid, int64_t first, int64_t count) {
  const uint32_t fs_id = FsIdOfFid(fid);
  FileSystem* fs = vfs_.FsById(fs_id);
  if (fs == nullptr || !scheduler_.HasQueue(fs_id)) {
    return 0;
  }
  const InodeNum ino = InoOfFid(fid);
  const int64_t id = scheduler_.AllocateId();
  IoRequest req;
  req.id = id;
  req.op = IoOp::kWrite;
  req.file = fid;
  req.ino = static_cast<int64_t>(ino);
  req.first_page = first;
  req.count = count;
  req.device_addr = fs->DeviceAddressOf(ino, first);
  const int64_t last_addr = fs->DeviceAddressOf(ino, first + count - 1);
  req.device_end_addr = last_addr >= 0 ? last_addr + kPageSize : -1;
  req.submit = clock_.Now();
  req.pid = pid;
  const DeviceQueue* dq = scheduler_.queue(fs_id);
  obs_.IoSubmit(pid, dq->name(), fid, first, count, /*write=*/true, dq->depth() + 1);
  scheduler_.Submit(fs_id, req);
  return id;
}

void SimKernel::AwaitPage(Process& p, PageKey key) {
  const TimePoint now = clock_.Now();
  scheduler_.CatchUp(now);
  auto it = inflight_.find(key);
  if (it == inflight_.end()) {
    HarvestArrivals();
    return;
  }
  if (!it->second.dispatched) {
    // Still queued: the device must service it (and everything the policy
    // puts ahead of it) before the process can continue.
    scheduler_.ForceDispatch(it->second.fs_id, it->second.request_id, now);
    it = inflight_.find(key);
    if (it == inflight_.end() || !it->second.dispatched) {
      HarvestArrivals();
      return;  // request failed at the device; caller sees the missing page
    }
  }
  if (now < it->second.ready_at) {
    const Duration wait = it->second.ready_at - now;
    clock_.Advance(wait);
    p.stats().io_time += wait;
    ++p.stats().io_waits;
    obs_.IoWait(p.pid(), key.file, wait);
  }
  HarvestArrivals();
}

void SimKernel::HarvestArrivals() {
  const TimePoint now = clock_.Now();
  while (!arrivals_.empty() && !(now < arrivals_.top().ready)) {
    const PageKey key = arrivals_.top().key;
    arrivals_.pop();
    cache_.MarkArrived(key);
    auto it = inflight_.find(key);
    if (it != inflight_.end() && it->second.dispatched && !(now < it->second.ready_at)) {
      inflight_.erase(it);
    }
  }
}

Result<int64_t> SimKernel::EnginePageIn(Process& p, const OpenFile& of, int64_t page,
                                        int64_t run, int64_t demand) {
  // The planned run must not re-request pages with an outstanding request:
  // clip at the first such page. (`page` itself missed and is not in flight.)
  for (int64_t q = page + 1; q < page + run; ++q) {
    if (inflight_.contains({of.fid, q})) {
      run = q - page;
      break;
    }
  }
  demand = std::min(demand, run);
  ChargeCpu(p, config_.costs.fault_overhead);
  // Demand pages: submit in cache-bounded chunks and wait for each, so a run
  // larger than the cache never claims more in-flight frames than the budget.
  const int64_t budget = std::max<int64_t>(1, cache_.capacity_pages() / 4);
  int64_t submitted = 0;
  while (submitted < demand) {
    const int64_t chunk = std::min(demand - submitted, budget);
    SubmitRead(p.pid(), of, page + submitted, chunk);
    p.stats().major_faults += chunk;
    AwaitPage(p, {of.fid, page + submitted});
    for (int64_t q = page + submitted; q < page + submitted + chunk; ++q) {
      if (!cache_.Contains({of.fid, q})) {
        return Err::kIo;  // the device read failed
      }
    }
    submitted += chunk;
  }
  // Readahead tail: purely asynchronous, trimmed to the in-flight budget so
  // speculation can never fill the cache with unevictable frames.
  int64_t ra = run - demand;
  const int64_t outstanding = cache_.in_flight_pages() + scheduler_.PendingPages(IoOp::kRead);
  ra = std::min(ra, std::max<int64_t>(0, budget - outstanding));
  if (ra > 0) {
    SubmitRead(p.pid(), of, page + demand, ra);
    p.stats().major_faults += ra;
    stats_.readahead_pages += ra;
    obs_.Readahead(p.pid(), of.fid, page + demand, ra);
  }
  return demand + ra;
}

void SimKernel::CancelFileIo(FileId fid, int64_t first_page) {
  if (!engine_on()) {
    return;
  }
  scheduler_.CancelMatching([fid, first_page](const IoRequest& r) {
    return r.file == fid && r.first_page >= first_page;
  });
  std::erase_if(inflight_, [fid, first_page](const auto& kv) {
    return kv.first.file == fid && kv.first.page >= first_page;
  });
}

int64_t SimKernel::PlanReadaheadRun(OpenFile& of, int64_t page, int64_t file_pages) {
  if (page == of.last_demand_page) {
    of.readahead_window =
        std::min(std::max(of.readahead_window, 1) * 2, config_.max_readahead_pages);
  } else {
    of.readahead_window = config_.min_readahead_pages;
  }
  // The run extends to the window edge, EOF, or the next resident page —
  // whichever comes first. `page` itself missed, so no run covers it and the
  // next resident run (if any) starts strictly after `page`.
  int64_t run = std::min<int64_t>(of.readahead_window, file_pages - page);
  if (const auto next = cache_.NextResidentRun(of.fid, page + 1); next.has_value()) {
    run = std::min(run, next->first - page);
  }
  return std::max<int64_t>(run, 1);
}

Result<int64_t> SimKernel::Read(Process& p, int fd, std::span<char> dst) {
  SyscallScope sys(*this, p, "read");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  const int64_t size = fs->SizeOf(of->ino);
  if (of->offset >= size || dst.empty()) {
    return static_cast<int64_t>(0);
  }
  const int64_t n = std::min<int64_t>(static_cast<int64_t>(dst.size()), size - of->offset);
  SLED_ASSIGN_OR_RETURN(int64_t copied,
                        fs->ReadBytes(of->ino, of->offset, dst.subspan(0, static_cast<size_t>(n))));
  SLED_CHECK(copied == n, "short content read: %lld != %lld", static_cast<long long>(copied),
             static_cast<long long>(n));

  const int64_t file_pages = PagesFor(size);
  const int64_t first = of->offset / kPageSize;
  const int64_t last = (of->offset + n - 1) / kPageSize;
  const int64_t read_end = of->offset + n;
  const Duration mem_latency = SecondsF(config_.memory.latency.ToSeconds());
  const double mem_bw = config_.memory.bandwidth_bps;
  for (int64_t page = first; page <= last; ++page) {
    const PageKey key{of->fid, page};
    if (engine_on() && inflight_.contains(key)) {
      AwaitPage(p, key);  // readahead in flight for this page: block until it lands
    }
    if (!cache_.Touch(key)) {
      // Demand miss: page in the readahead-planned run starting here.
      const int64_t run = PlanReadaheadRun(*of, page, file_pages);
      const int64_t demand = std::min<int64_t>(run, last - page + 1);
      if (engine_on()) {
        SLED_ASSIGN_OR_RETURN(const int64_t eff, EnginePageIn(p, *of, page, run, demand));
        of->last_demand_page = page + eff;
      } else {
        SLED_RETURN_IF_ERROR(PageIn(p, *of, page, run, demand));
        of->last_demand_page = page + run;  // next sequential miss lands here
      }
    } else {
      ++p.stats().minor_faults;
    }
    // Copy the consumed bytes of this page to user space.
    const int64_t page_lo = std::max(of->offset, page * kPageSize);
    const int64_t page_hi = std::min(read_end, (page + 1) * kPageSize);
    ChargeCpu(p, mem_latency + TransferTime(page_hi - page_lo, mem_bw));
  }
  of->offset += n;
  p.stats().bytes_read += n;
  return n;
}

Result<std::string_view> SimKernel::MmapRead(Process& p, int fd, int64_t offset,
                                             int64_t length) {
  SyscallScope sys(*this, p, "mmap_read");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  const int64_t size = fs->SizeOf(of->ino);
  if (offset < 0 || length < 0) {
    return Err::kInval;
  }
  if (offset >= size || length == 0) {
    return std::string_view();
  }
  const int64_t n = std::min(length, size - offset);
  const int64_t file_pages = PagesFor(size);
  const int64_t first = offset / kPageSize;
  const int64_t last = (offset + n - 1) / kPageSize;
  for (int64_t page = first; page <= last; ++page) {
    const PageKey key{of->fid, page};
    if (engine_on() && inflight_.contains(key)) {
      AwaitPage(p, key);
    }
    if (!cache_.Touch(key)) {
      // Demand miss: identical readahead planning to Read().
      const int64_t run = PlanReadaheadRun(*of, page, file_pages);
      const int64_t demand = std::min<int64_t>(run, last - page + 1);
      if (engine_on()) {
        SLED_ASSIGN_OR_RETURN(const int64_t eff, EnginePageIn(p, *of, page, run, demand));
        of->last_demand_page = page + eff;
      } else {
        SLED_RETURN_IF_ERROR(PageIn(p, *of, page, run, demand));
        of->last_demand_page = page + run;
      }
    } else {
      ++p.stats().minor_faults;
    }
    ChargeCpu(p, config_.costs.mmap_touch_per_page);
  }
  p.stats().bytes_read += n;
  SLED_ASSIGN_OR_RETURN(std::string_view content, fs->ContentView(of->ino));
  return content.substr(static_cast<size_t>(offset), static_cast<size_t>(n));
}

Result<int64_t> SimKernel::Write(Process& p, int fd, std::span<const char> src) {
  SyscallScope sys(*this, p, "write");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  if (src.empty()) {
    return static_cast<int64_t>(0);
  }
  const int64_t old_size = fs->SizeOf(of->ino);
  const int64_t n = static_cast<int64_t>(src.size());
  SLED_ASSIGN_OR_RETURN(int64_t written, fs->WriteBytes(of->ino, of->offset, src));
  SLED_CHECK(written == n, "short content write");

  const int64_t first = of->offset / kPageSize;
  const int64_t last = (of->offset + n - 1) / kPageSize;
  const int64_t write_end = of->offset + n;
  const Duration mem_latency = SecondsF(config_.memory.latency.ToSeconds());
  const double mem_bw = config_.memory.bandwidth_bps;
  for (int64_t page = first; page <= last; ++page) {
    const PageKey key{of->fid, page};
    const int64_t page_lo = page * kPageSize;
    const int64_t page_hi = (page + 1) * kPageSize;
    const bool full_cover = of->offset <= page_lo && write_end >= page_hi;
    const bool beyond_old_eof = page_lo >= old_size;
    if (engine_on() && inflight_.contains(key)) {
      AwaitPage(p, key);  // overwriting a page whose read is in flight
    }
    if (!full_cover && !beyond_old_eof && !cache_.Contains(key)) {
      // Read-modify-write of a non-resident partial page.
      if (engine_on()) {
        SLED_RETURN_IF_ERROR(EnginePageIn(p, *of, page, 1, 1));
      } else {
        SLED_RETURN_IF_ERROR(PageIn(p, *of, page, 1, 1));
      }
    }
    auto evicted = cache_.Insert(key, /*dirty=*/true);
    if (evicted.has_value() && evicted->dirty) {
      QueueWriteback(&p, evicted->key);
    }
    const int64_t copy_lo = std::max(of->offset, page_lo);
    const int64_t copy_hi = std::min(write_end, page_hi);
    ChargeCpu(p, mem_latency + TransferTime(copy_hi - copy_lo, mem_bw));
  }
  of->offset += n;
  p.stats().bytes_written += n;
  return n;
}

Result<int64_t> SimKernel::Lseek(Process& p, int fd, int64_t offset, Whence whence) {
  SyscallScope sys(*this, p, "lseek");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCur:
      base = of->offset;
      break;
    case Whence::kEnd:
      base = fs->SizeOf(of->ino);
      break;
  }
  const int64_t target = base + offset;
  if (target < 0) {
    return Err::kInval;
  }
  of->offset = target;
  return target;
}

Result<InodeAttr> SimKernel::Stat(Process& p, std::string_view path) {
  SyscallScope sys(*this, p, "stat");
  SLED_ASSIGN_OR_RETURN(Vfs::Resolved r, vfs_.Resolve(path));
  return r.fs->GetAttr(r.ino);
}

Result<InodeAttr> SimKernel::Fstat(Process& p, int fd) {
  SyscallScope sys(*this, p, "fstat");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  return FsOf(*of)->GetAttr(of->ino);
}

Result<std::vector<DirEntry>> SimKernel::ReadDir(Process& p, std::string_view path) {
  SyscallScope sys(*this, p, "readdir");
  return vfs_.List(path);
}

Result<void> SimKernel::Unlink(Process& p, std::string_view path) {
  SyscallScope sys(*this, p, "unlink");
  SLED_ASSIGN_OR_RETURN(Vfs::Resolved r, vfs_.Resolve(path));
  const FileId fid = Vfs::MakeFileId(r.fs_id, r.ino);
  CancelFileIo(fid, 0);
  cache_.RemoveFile(fid);
  std::erase_if(writeback_queue_, [fid](const PageKey& k) { return k.file == fid; });
  return vfs_.Unlink(path);
}

Result<void> SimKernel::Ftruncate(Process& p, int fd, int64_t size) {
  SyscallScope sys(*this, p, "ftruncate");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  SLED_RETURN_IF_ERROR(fs->Truncate(of->ino, size));
  const int64_t first_dropped = PagesFor(size);
  CancelFileIo(of->fid, first_dropped);
  cache_.RemovePagesFrom(of->fid, first_dropped);
  const FileId fid = of->fid;
  std::erase_if(writeback_queue_,
                [fid, first_dropped](const PageKey& k) {
                  return k.file == fid && k.page >= first_dropped;
                });
  return Result<void>::Ok();
}

Result<void> SimKernel::Fsync(Process& p, int fd) {
  SyscallScope sys(*this, p, "fsync");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  const std::vector<PageKey> dirty = cache_.DirtyPagesOf(of->fid);
  if (engine_on()) {
    // Submit each contiguous dirty run as one write request, force the queue
    // to service them all, and sleep the process to the last completion.
    std::unordered_map<int64_t, TimePoint> done;
    write_done_sink_ = &done;
    std::vector<int64_t> ids;
    size_t i = 0;
    while (i < dirty.size()) {
      size_t j = i + 1;
      while (j < dirty.size() && dirty[j].page == dirty[j - 1].page + 1) {
        ++j;
      }
      ids.push_back(SubmitWrite(p.pid(), of->fid, dirty[i].page,
                                static_cast<int64_t>(j - i)));
      i = j;
    }
    for (const PageKey& key : dirty) {
      cache_.MarkClean(key);
    }
    const TimePoint now = clock_.Now();
    for (const int64_t id : ids) {
      if (id != 0) {
        scheduler_.ForceDispatch(of->fs_id, id, now);
      }
    }
    write_done_sink_ = nullptr;
    TimePoint latest = now;
    for (const auto& [id, t] : done) {
      latest = std::max(latest, t);
    }
    if (now < latest) {
      const Duration wait = latest - now;
      clock_.Advance(wait);
      p.stats().io_time += wait;
      ++p.stats().io_waits;
      obs_.IoWait(p.pid(), of->fid, wait);
    }
    HarvestArrivals();
    return Result<void>::Ok();
  }
  int64_t run_start = -1;
  int64_t run_len = 0;
  auto flush_run = [&]() -> Result<void> {
    if (run_len == 0) {
      return Result<void>::Ok();
    }
    SLED_ASSIGN_OR_RETURN(Duration t, fs->WritePagesToStore(of->ino, run_start, run_len));
    ChargeIo(p, t);
    stats_.pages_written_back += run_len;
    run_len = 0;
    return Result<void>::Ok();
  };
  for (const PageKey& key : dirty) {
    if (run_len > 0 && key.page == run_start + run_len) {
      ++run_len;
    } else {
      SLED_RETURN_IF_ERROR(flush_run());
      run_start = key.page;
      run_len = 1;
    }
    cache_.MarkClean(key);
  }
  SLED_RETURN_IF_ERROR(flush_run());
  return Result<void>::Ok();
}

void SimKernel::QueueWriteback(Process* p, PageKey key) {
  obs_.WritebackQueued(key.file, key.page);
  if (engine_on()) {
    // Hand the page straight to the device queue: it goes out asynchronously
    // and the coalescer folds adjacent evictions into one access.
    (void)SubmitWrite(p != nullptr ? p->pid() : 0, key.file, key.page, 1);
    return;
  }
  writeback_queue_.push_back(key);
  if (static_cast<int>(writeback_queue_.size()) >= config_.writeback_batch_pages) {
    (void)FlushWriteback(p);
  }
}

Result<Duration> SimKernel::FlushWriteback(Process* p) {
  if (writeback_queue_.empty()) {
    return Duration();
  }
  std::sort(writeback_queue_.begin(), writeback_queue_.end(),
            [](const PageKey& a, const PageKey& b) {
              return a.file != b.file ? a.file < b.file : a.page < b.page;
            });
  // A page can be queued twice between flushes (dirtied, evicted, re-read,
  // re-dirtied, evicted again). Deduplicate so each dirty page is written
  // exactly once per flush.
  writeback_queue_.erase(std::unique(writeback_queue_.begin(), writeback_queue_.end(),
                                     [](const PageKey& a, const PageKey& b) {
                                       return a.file == b.file && a.page == b.page;
                                     }),
                         writeback_queue_.end());
  // Dispatch in device order, not file order: one ascending sweep per device
  // instead of seeking back and forth between files' extents. Ties (and pages
  // with no flat device address) keep the (file, page) order from above, so
  // single-file batches — and any file system whose allocation is sequential —
  // are flushed exactly as before.
  std::stable_sort(writeback_queue_.begin(), writeback_queue_.end(),
                   [this](const PageKey& a, const PageKey& b) {
                     const uint32_t afs = FsIdOfFid(a.file);
                     const uint32_t bfs = FsIdOfFid(b.file);
                     if (afs != bfs) {
                       return afs < bfs;
                     }
                     FileSystem* fs = vfs_.FsById(afs);
                     if (fs == nullptr) {
                       return false;
                     }
                     const int64_t aa = fs->DeviceAddressOf(InoOfFid(a.file), a.page);
                     const int64_t ba = fs->DeviceAddressOf(InoOfFid(b.file), b.page);
                     return aa < ba;
                   });
  Duration total;
  int64_t pages_flushed = 0;
  int64_t runs_flushed = 0;
  size_t i = 0;
  while (i < writeback_queue_.size()) {
    const FileId fid = writeback_queue_[i].file;
    const int64_t first = writeback_queue_[i].page;
    size_t j = i + 1;
    while (j < writeback_queue_.size() && writeback_queue_[j].file == fid &&
           writeback_queue_[j].page == writeback_queue_[j - 1].page + 1) {
      ++j;
    }
    FileSystem* fs = vfs_.FsById(FsIdOfFid(fid));
    if (fs != nullptr) {
      auto t = fs->WritePagesToStore(InoOfFid(fid), first, static_cast<int64_t>(j - i));
      if (t.ok()) {
        total += t.value();
        stats_.pages_written_back += static_cast<int64_t>(j - i);
        pages_flushed += static_cast<int64_t>(j - i);
        ++runs_flushed;
      }
      // Errors (unlinked file, offline HSM file) drop the pages: the data
      // was already discarded at the content layer.
    }
    i = j;
  }
  writeback_queue_.clear();
  clock_.Advance(total);
  // A synchronous flush happens on behalf of whichever process pushed the
  // queue over the batch threshold; its device time belongs on that process's
  // I/O account (background flushes pass p == nullptr).
  if (p != nullptr) {
    p->stats().io_time += total;
  }
  obs_.WritebackFlush(p != nullptr ? p->pid() : 0, pages_flushed, runs_flushed, total);
  return total;
}

Result<void> SimKernel::IoctlSledsFill(Process& p, int level, DeviceCharacteristics chars) {
  SyscallScope sys(*this, p, "ioctl_sleds_fill");
  return sleds_table_.Fill(level, chars);
}

// The scan is O(residency runs + level runs), not O(pages): resident stretches
// come straight from the cache's ordered index and non-resident stretches ask
// the file system for the length of each uniform-level run. The *simulated*
// charge stays sled_scan_per_page per page scanned, and the emitted vector is
// identical to a page-at-a-time scan (segments merge on equal level; a
// segment's byte length is min(end_page * kPageSize, size) - start byte).
Result<SledVector> SimKernel::BuildSleds(Process& p, const OpenFile& of, int64_t first_page,
                                         int64_t end_page, int64_t size) {
  FileSystem* fs = FsOf(of);
  const int64_t npages = end_page - first_page;
  ChargeCpu(p, config_.costs.sled_scan_per_page * npages);

  SledVector sleds;
  sleds.reserve(static_cast<size_t>(2 * cache_.ResidentRunCountOf(of.fid) + 1));
  // Local->global level lookups repeat for every run of the same level;
  // memoizing is safe because pages are visited in ascending order, so an
  // unregistered level still fails on its first (lowest) page.
  std::vector<int> global_of_local;
  auto append = [&](int64_t from_page, int64_t to_page, int level) {
    const int64_t bytes = std::min(to_page * kPageSize, size) - from_page * kPageSize;
    if (!sleds.empty() && sleds.back().level == level) {
      sleds.back().length += bytes;
      return;
    }
    const SledsTable::Row& row = sleds_table_.row(level);
    Sled s;
    s.offset = from_page * kPageSize;
    s.length = bytes;
    s.latency = row.chars.latency.ToSeconds();
    s.bandwidth = row.chars.bandwidth_bps;
    s.level = level;
    sleds.push_back(s);
  };
  int64_t page = first_page;
  while (page < end_page) {
    const auto run = cache_.NextResidentRun(of.fid, page);
    if (run.has_value() && run->first <= page) {
      // Resident stretch: one memory-level segment to the run's end.
      const int64_t to = std::min(run->end(), end_page);
      append(page, to, kMemoryLevel);
      page = to;
      continue;
    }
    // Non-resident stretch up to the next resident run (or the scan end):
    // walk it a level-run at a time.
    const int64_t miss_end = run.has_value() ? std::min(run->first, end_page) : end_page;
    while (page < miss_end) {
      const int local = fs->LevelOf(of.ino, page);
      int global = -1;
      if (local >= 0 && static_cast<size_t>(local) < global_of_local.size()) {
        global = global_of_local[static_cast<size_t>(local)];
      }
      if (global < 0) {
        SLED_ASSIGN_OR_RETURN(global, sleds_table_.GlobalLevelOf(of.fs_id, local));
        if (local >= 0) {
          if (static_cast<size_t>(local) >= global_of_local.size()) {
            global_of_local.resize(static_cast<size_t>(local) + 1, -1);
          }
          global_of_local[static_cast<size_t>(local)] = global;
        }
      }
      int64_t len = fs->LevelRunLen(of.ino, page, miss_end - page);
      len = std::max<int64_t>(1, std::min(len, miss_end - page));
      append(page, page + len, global);
      page += len;
    }
  }
  obs_.SledScan(p.pid(), of.fid, npages, static_cast<int64_t>(sleds.size()));
  return sleds;
}

Result<SledVector> SimKernel::IoctlSledsGet(Process& p, int fd) {
  SyscallScope sys(*this, p, "ioctl_sleds_get");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  FileSystem* fs = FsOf(*of);
  const int64_t size = fs->SizeOf(of->ino);
  return BuildSleds(p, *of, 0, PagesFor(size), size);
}

Result<SledVector> SimKernel::IoctlSledsGet(Process& p, int fd, int64_t offset, int64_t length) {
  SyscallScope sys(*this, p, "ioctl_sleds_get");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  if (offset < 0 || length < 0) {
    return Err::kInval;
  }
  FileSystem* fs = FsOf(*of);
  const int64_t size = fs->SizeOf(of->ino);
  const int64_t npages = PagesFor(size);
  const int64_t first = std::min(offset / kPageSize, npages);
  const int64_t end =
      length == 0 ? first : std::min((offset + length - 1) / kPageSize + 1, npages);
  return BuildSleds(p, *of, first, std::max(first, end), size);
}

Result<int64_t> SimKernel::IoctlSledsLock(Process& p, int fd, int64_t offset, int64_t length) {
  SyscallScope sys(*this, p, "ioctl_sleds_lock");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  if (offset < 0 || length <= 0) {
    return Err::kInval;
  }
  FileSystem* fs = FsOf(*of);
  const int64_t size = fs->SizeOf(of->ino);
  const int64_t first = offset / kPageSize;
  const int64_t last = std::min(PagesFor(size) - 1, (offset + length - 1) / kPageSize);
  // Non-resident pages are skipped: a SLED lock freezes the *current* state;
  // it does not promote data into the cache. Walking the residency index
  // visits only resident pages, so the pinned set (and its order) matches a
  // page-at-a-time probe.
  int64_t pinned = 0;
  int64_t page = first;
  while (page <= last) {
    const auto run = cache_.NextResidentRun(of->fid, page);
    if (!run.has_value() || run->first > last) {
      break;
    }
    const int64_t hi = std::min(run->end() - 1, last);
    for (int64_t q = std::max(run->first, page); q <= hi; ++q) {
      const PageKey key{of->fid, q};
      if (cache_.IsPinned(key)) {
        continue;  // already locked (possibly by another descriptor)
      }
      if (cache_.Pin(key)) {
        of->locked_pages.push_back(q);
        ++pinned;
      }
    }
    page = run->end();
  }
  ChargeCpu(p, config_.costs.sled_scan_per_page * (last - first + 1));
  return pinned;
}

Result<int64_t> SimKernel::IoctlSledsUnlock(Process& p, int fd, int64_t offset, int64_t length) {
  SyscallScope sys(*this, p, "ioctl_sleds_unlock");
  SLED_ASSIGN_OR_RETURN(OpenFile * of, FdOf(p, fd));
  const int64_t first = length < 0 ? 0 : offset / kPageSize;
  const int64_t last =
      length < 0 ? std::numeric_limits<int64_t>::max() : (offset + length - 1) / kPageSize;
  int64_t released = 0;
  std::erase_if(of->locked_pages, [&](int64_t page) {
    if (page < first || page > last) {
      return false;
    }
    cache_.Unpin({of->fid, page});
    ++released;
    return true;
  });
  return released;
}

void SimKernel::DropCaches() {
  (void)FlushAllDirty();
  cache_.Clear();
}

Duration SimKernel::FlushAllDirty() {
  if (engine_on()) {
    // Submit every dirty run, then drain all queues to quiescence: after the
    // drain the clock sits at (or past) every completion, so a harvest clears
    // all in-flight state and DropCaches can safely clear the cache.
    const std::vector<PageKey> dirty = cache_.AllDirtyPages();
    size_t i = 0;
    while (i < dirty.size()) {
      size_t j = i + 1;
      while (j < dirty.size() && dirty[j].file == dirty[i].file &&
             dirty[j].page == dirty[j - 1].page + 1) {
        ++j;
      }
      (void)SubmitWrite(0, dirty[i].file, dirty[i].page, static_cast<int64_t>(j - i));
      i = j;
    }
    for (const PageKey& key : dirty) {
      cache_.MarkClean(key);
    }
    const TimePoint now = clock_.Now();
    const TimePoint latest = scheduler_.Drain(now);
    const Duration waited = now < latest ? latest - now : Duration();
    clock_.Advance(waited);
    HarvestArrivals();
    return waited;
  }
  Duration total;
  for (const PageKey& key : cache_.AllDirtyPages()) {
    FileSystem* fs = vfs_.FsById(FsIdOfFid(key.file));
    if (fs != nullptr) {
      auto t = fs->WritePagesToStore(InoOfFid(key.file), key.page, 1);
      if (t.ok()) {
        total += t.value();
        stats_.pages_written_back += 1;
      }
    }
    cache_.MarkClean(key);
  }
  clock_.Advance(total);
  auto queued = FlushWriteback(nullptr);  // advances the clock itself
  if (queued.ok()) {
    total += queued.value();
  }
  return total;
}

}  // namespace sled
