// ShardRuntime: the shard-per-core parallel simulation driver.
//
// The simulation scales out as independent *worlds* — each world is a full
// SimKernel with its own clock, page cache, I/O engine, Observer, and RNG
// stream, so worlds never share mutable state. The runtime hash-partitions
// worlds onto N shards, runs each shard's worlds in world-id order on a
// dedicated worker thread, and drains per-shard SPSC message channels on the
// calling thread while the workers run.
//
// Determinism contract:
//   * A world's simulated behavior depends only on its own configuration and
//     seed — never on the shard it ran on, the number of shards, or the wall
//     clock. Hence every per-world result (simulated time, fault counts,
//     metric values) is identical across repeated runs and across shard
//     counts.
//   * Everything the runtime aggregates from messages is a commutative sum,
//     so the report's deterministic fields are independent of message-arrival
//     order. (acquire_waits is the one wall-clock-dependent diagnostic.)
//   * shards == 1 runs every world inline on the calling thread — no worker
//     threads, byte-identical to driving the kernels directly. This is the
//     oracle the differential test compares N-shard runs against.
#ifndef SLEDS_SRC_SHARD_SHARD_RUNTIME_H_
#define SLEDS_SRC_SHARD_SHARD_RUNTIME_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/shard/message_pool.h"

namespace sled {

// Number of hardware threads, never less than 1.
int HardwareThreads();

// Shard-count resolution: a positive `requested` wins; otherwise $SLEDS_SHARDS
// (cached on first read, like $SLEDS_IO_MODE); otherwise the hardware thread
// count. Always >= 1.
int ResolveShardCount(int requested);

struct ShardConfig {
  // <= 0 resolves via ResolveShardCount.
  int shards = 0;
  // Pooled messages per shard channel.
  size_t channel_messages = 256;
};

class ShardRuntime;

// Handed to the world body: identity plus the progress-reporting hook.
class WorldContext {
 public:
  int64_t world_id() const { return world_id_; }
  int shard_id() const { return shard_id_; }

  // Report a completed unit of work over this shard's SPSC channel. Blocks
  // (spinning) only when the pool is dry, i.e. the control thread is more
  // than pool_size messages behind.
  void Progress(int64_t sim_ns, int64_t syscalls, int64_t pages);

 private:
  friend class ShardRuntime;
  WorldContext(ShardRuntime* runtime, int64_t world_id, int shard_id)
      : runtime_(runtime), world_id_(world_id), shard_id_(shard_id) {}

  ShardRuntime* runtime_;
  int64_t world_id_;
  int shard_id_;
};

// Aggregated over every message the control thread drained. All fields except
// acquire_waits are deterministic (commutative sums over per-world values).
struct RuntimeReport {
  int shards = 0;
  int64_t worlds = 0;             // kWorldDone messages received
  int64_t progress_messages = 0;  // kProgress messages received
  int64_t sim_ns_sum = 0;         // sum of reported sim_ns
  int64_t syscalls_sum = 0;       // sum of reported syscalls
  int64_t pages_sum = 0;          // sum of reported pages
  // Times a worker found its message pool dry and had to wait for the control
  // thread to recycle. Wall-clock dependent; excluded from determinism
  // comparisons.
  int64_t acquire_waits = 0;
};

class ShardRuntime {
 public:
  explicit ShardRuntime(ShardConfig config = {});
  ~ShardRuntime();

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  int shards() const { return shards_; }

  // The partition rule: splitmix64(world_id) % shards. A pure function of
  // (world_id, shards) so testbed setup, the benches, and the diff test all
  // agree on placement.
  int ShardOf(int64_t world_id) const;

  // Run `body` once per world in [0, worlds). With one shard, runs inline on
  // the calling thread (the deterministic oracle); otherwise spawns one
  // worker thread per shard, each executing its assigned worlds in ascending
  // world-id order, while the calling thread drains the message channels.
  // The body must confine its mutable state to the world (or to per-shard
  // slots indexed by ctx.shard_id()); results should be written to
  // caller-owned per-world slots, which is race-free because each world id
  // runs exactly once.
  RuntimeReport Run(int64_t worlds, const std::function<void(WorldContext&)>& body);

 private:
  friend class WorldContext;

  // Drain every channel once into `report`; returns messages consumed.
  int64_t DrainChannels(RuntimeReport* report);

  int shards_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  // Set while Run is inline (single shard) so a dry pool can self-drain
  // instead of deadlocking against the (absent) control thread.
  RuntimeReport* inline_report_ = nullptr;
  std::vector<int64_t> acquire_waits_;  // per shard, summed after join
};

}  // namespace sled

#endif  // SLEDS_SRC_SHARD_SHARD_RUNTIME_H_
