// Pooled cross-shard messages. A ShardChannel pairs two SPSC rings over one
// preallocated message slab: worker-to-control traffic travels the outbox
// ring, and consumed messages return to the worker through the freelist ring.
// After construction nothing allocates, so a shard's hot simulation loop can
// report progress without touching the global heap (the allocator is the one
// lock all shards would otherwise share).
//
//   worker thread                    control thread
//   Acquire() <--- freelist ring --- Release(msg)
//   Send(msg) ---- outbox ring ----> Receive()
//
// Each ring has exactly one producer and one consumer, so the SPSC contract
// holds: the worker produces into the outbox and consumes the freelist; the
// control thread consumes the outbox and produces into the freelist.
#ifndef SLEDS_SRC_SHARD_MESSAGE_POOL_H_
#define SLEDS_SRC_SHARD_MESSAGE_POOL_H_

#include <cstdint>
#include <vector>

#include "src/common/log.h"
#include "src/shard/spsc_queue.h"

namespace sled {

// Fixed-size message record. Plain data only: messages are reused from the
// pool, so nothing here may own memory.
struct ShardMessage {
  enum class Kind : uint8_t {
    kNone = 0,
    kProgress,   // a shard finished a unit of work (e.g. one process loop)
    kWorldDone,  // a shard finished simulating one world
  };

  Kind kind = Kind::kNone;
  int32_t shard = 0;
  int64_t world = 0;
  int64_t sim_ns = 0;    // simulated time reached by the reporting kernel
  int64_t syscalls = 0;  // syscalls completed in the reported unit
  int64_t pages = 0;     // pages paged in during the reported unit
};

class ShardChannel {
 public:
  // `messages` is the pool size; both rings are sized to hold the whole pool
  // so Send and Release can never fail (at most `messages` are in flight).
  explicit ShardChannel(size_t messages)
      : slab_(messages < 2 ? 2 : messages), outbox_(slab_.size()), freelist_(slab_.size()) {
    for (uint32_t i = 0; i < slab_.size(); ++i) {
      SLED_CHECK(freelist_.TryPush(i), "freelist ring smaller than slab");
    }
  }

  size_t pool_size() const { return slab_.size(); }

  // ---- worker (producer) side ----
  // nullptr when the pool is dry (control has not recycled yet); the caller
  // decides whether to spin, yield, or drop.
  ShardMessage* Acquire() {
    uint32_t index;
    if (!freelist_.TryPop(&index)) {
      return nullptr;
    }
    ShardMessage* m = &slab_[index];
    *m = ShardMessage{};
    return m;
  }

  void Send(ShardMessage* m) {
    SLED_CHECK(outbox_.TryPush(IndexOf(m)), "shard outbox overflow");
  }

  // ---- control (consumer) side ----
  ShardMessage* Receive() {
    uint32_t index;
    if (!outbox_.TryPop(&index)) {
      return nullptr;
    }
    return &slab_[index];
  }

  void Release(ShardMessage* m) {
    SLED_CHECK(freelist_.TryPush(IndexOf(m)), "shard freelist overflow");
  }

 private:
  uint32_t IndexOf(const ShardMessage* m) const {
    SLED_CHECK(m >= slab_.data() && m < slab_.data() + slab_.size(),
               "message not from this channel's pool");
    return static_cast<uint32_t>(m - slab_.data());
  }

  std::vector<ShardMessage> slab_;
  SpscQueue<uint32_t> outbox_;
  SpscQueue<uint32_t> freelist_;
};

}  // namespace sled

#endif  // SLEDS_SRC_SHARD_MESSAGE_POOL_H_
