// Lock-free single-producer/single-consumer ring buffer for cross-shard
// messages. Exactly one thread may call the producer side (TryPush) and
// exactly one thread the consumer side (TryPop); under that contract every
// operation is wait-free and allocation-free after construction.
//
// The layout is the classic cached-index SPSC ring (cf. the HFT backtester's
// order queues in SNIPPETS.md): head and tail live on separate cache lines,
// and each side keeps a cached copy of the other's index so the hot path
// touches shared state only when its cached view says the ring might be
// full/empty. Indices are monotonic 64-bit counters masked into a
// power-of-two slot array, so empty is head == tail and full is
// tail - head == capacity with no wasted slot.
#ifndef SLEDS_SRC_SHARD_SPSC_QUEUE_H_
#define SLEDS_SRC_SHARD_SPSC_QUEUE_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sled {

template <typename T>
class SpscQueue {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(size_t min_capacity)
      : slots_(std::bit_ceil(min_capacity < 2 ? size_t{2} : min_capacity)),
        mask_(slots_.size() - 1) {}

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return slots_.size(); }

  // Producer side. Returns false when the ring is full.
  bool TryPush(const T& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= slots_.size()) {
        return false;
      }
    }
    slots_[static_cast<size_t>(tail) & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return false;
      }
    }
    *out = slots_[static_cast<size_t>(head) & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer-side view; may undercount while the producer is mid-push.
  size_t SizeApprox() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }

 private:
  std::vector<T> slots_;
  size_t mask_;
  // Consumer-owned: next slot to pop, plus the producer index as last seen.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;
  // Producer-owned: next slot to fill, plus the consumer index as last seen.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;
};

}  // namespace sled

#endif  // SLEDS_SRC_SHARD_SPSC_QUEUE_H_
