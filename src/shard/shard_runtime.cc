#include "src/shard/shard_runtime.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "src/common/log.h"

namespace sled {
namespace {

// splitmix64: the partition hash. Cheap, well-mixed, and stable across
// platforms, so world placement never depends on std::hash implementation.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ResolveShardCount(int requested) {
  if (requested > 0) {
    return std::min(requested, 256);
  }
  // One env read for the whole process (thread-safe magic static): kernels
  // and runtimes constructed concurrently on shard threads must not each
  // re-enter libc's environment.
  static const int env_shards = [] {
    const char* env = std::getenv("SLEDS_SHARDS");
    if (env == nullptr) {
      return 0;
    }
    return std::clamp(std::atoi(env), 0, 256);
  }();
  if (env_shards > 0) {
    return env_shards;
  }
  return HardwareThreads();
}

ShardRuntime::ShardRuntime(ShardConfig config) : shards_(ResolveShardCount(config.shards)) {
  SLED_CHECK(shards_ >= 1, "shard count must be >= 1");
  channels_.reserve(static_cast<size_t>(shards_));
  for (int s = 0; s < shards_; ++s) {
    channels_.push_back(std::make_unique<ShardChannel>(config.channel_messages));
  }
  acquire_waits_.assign(static_cast<size_t>(shards_), 0);
}

ShardRuntime::~ShardRuntime() = default;

int ShardRuntime::ShardOf(int64_t world_id) const {
  return static_cast<int>(SplitMix64(static_cast<uint64_t>(world_id)) %
                          static_cast<uint64_t>(shards_));
}

void WorldContext::Progress(int64_t sim_ns, int64_t syscalls, int64_t pages) {
  ShardChannel& ch = *runtime_->channels_[static_cast<size_t>(shard_id_)];
  ShardMessage* m = nullptr;
  while ((m = ch.Acquire()) == nullptr) {
    ++runtime_->acquire_waits_[static_cast<size_t>(shard_id_)];
    if (runtime_->inline_report_ != nullptr) {
      runtime_->DrainChannels(runtime_->inline_report_);
    } else {
      std::this_thread::yield();
    }
  }
  m->kind = ShardMessage::Kind::kProgress;
  m->shard = shard_id_;
  m->world = world_id_;
  m->sim_ns = sim_ns;
  m->syscalls = syscalls;
  m->pages = pages;
  ch.Send(m);
}

int64_t ShardRuntime::DrainChannels(RuntimeReport* report) {
  int64_t drained = 0;
  for (auto& channel : channels_) {
    while (ShardMessage* m = channel->Receive()) {
      switch (m->kind) {
        case ShardMessage::Kind::kProgress:
          ++report->progress_messages;
          report->sim_ns_sum += m->sim_ns;
          report->syscalls_sum += m->syscalls;
          report->pages_sum += m->pages;
          break;
        case ShardMessage::Kind::kWorldDone:
          ++report->worlds;
          break;
        case ShardMessage::Kind::kNone:
          SLED_CHECK(false, "blank message on shard channel");
          break;
      }
      channel->Release(m);
      ++drained;
    }
  }
  return drained;
}

RuntimeReport ShardRuntime::Run(int64_t worlds,
                                const std::function<void(WorldContext&)>& body) {
  SLED_CHECK(worlds >= 0, "negative world count");
  RuntimeReport report;
  report.shards = shards_;
  std::fill(acquire_waits_.begin(), acquire_waits_.end(), 0);

  // One world per body call; the kWorldDone marker travels the same pooled
  // channel as progress traffic, so the final report.worlds == worlds check
  // doubles as an end-to-end no-message-lost proof of the SPSC path.
  auto run_world = [&](int64_t w, int shard) {
    WorldContext ctx(this, w, shard);
    body(ctx);
    ShardChannel& ch = *channels_[static_cast<size_t>(shard)];
    ShardMessage* m = nullptr;
    while ((m = ch.Acquire()) == nullptr) {
      ++acquire_waits_[static_cast<size_t>(shard)];
      if (inline_report_ != nullptr) {
        DrainChannels(inline_report_);
      } else {
        std::this_thread::yield();
      }
    }
    m->kind = ShardMessage::Kind::kWorldDone;
    m->shard = shard;
    m->world = w;
    ch.Send(m);
  };

  if (shards_ == 1) {
    // Oracle mode: no threads, the calling thread interleaves simulation and
    // draining. Byte-identical to driving the worlds directly.
    inline_report_ = &report;
    for (int64_t w = 0; w < worlds; ++w) {
      run_world(w, 0);
      DrainChannels(&report);
    }
    inline_report_ = nullptr;
  } else {
    std::atomic<int> live{shards_};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(shards_));
    for (int s = 0; s < shards_; ++s) {
      workers.emplace_back([&, s] {
        for (int64_t w = 0; w < worlds; ++w) {
          if (ShardOf(w) == s) {
            run_world(w, s);
          }
        }
        live.fetch_sub(1, std::memory_order_release);
      });
    }
    while (live.load(std::memory_order_acquire) > 0) {
      if (DrainChannels(&report) == 0) {
        std::this_thread::yield();
      }
    }
    for (std::thread& t : workers) {
      t.join();
    }
  }
  DrainChannels(&report);
  SLED_CHECK(report.worlds == worlds, "world-done messages lost: %lld of %lld",
             static_cast<long long>(report.worlds), static_cast<long long>(worlds));
  for (int64_t waits : acquire_waits_) {
    report.acquire_waits += waits;
  }
  return report;
}

}  // namespace sled
