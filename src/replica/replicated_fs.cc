#include "src/replica/replicated_fs.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/obs/observer.h"

namespace sled {

namespace {
// Rank assigned to an unreachable replica: worse than any real statistic so
// the sort pushes it behind every answering copy, but still finite so the
// index tie-break stays total.
constexpr double kUnreachableRank = 1.0e18;
}  // namespace

ReplicatedFs::ReplicatedFs(std::string name, std::vector<std::unique_ptr<StorageDevice>> replicas,
                           ReplicatedFsConfig config)
    : FileSystem(std::move(name)), config_(config), devices_(std::move(replicas)) {
  const int n = static_cast<int>(devices_.size());
  SLED_CHECK(n >= 1 && n <= 8, "replicated fs needs 1..8 devices, got %d", n);
  for (const auto& dev : devices_) {
    SLED_CHECK(dev != nullptr, "replicated fs given a null device");
  }
  SLED_CHECK(config_.stripe_pages >= 1, "stripe must be at least one page");
  replication_factor_ = config_.replication_factor;
  if (replication_factor_ <= 0 || replication_factor_ > n) {
    replication_factor_ = n;
  }
  replication_min_ = std::clamp(config_.replication_min, 1, replication_factor_);
  // Reserve the first page of each device for metadata, as the extent
  // allocator does.
  next_free_.assign(devices_.size(), kPageSize);
  stale_.resize(devices_.size());
}

void ReplicatedFs::AttachObserver(Observer* obs) {
  FileSystem::AttachObserver(obs);
  for (auto& dev : devices_) {
    dev->AttachObserver(obs);
  }
}

std::vector<StorageLevelInfo> ReplicatedFs::Levels() const {
  std::vector<StorageLevelInfo> levels;
  levels.reserve(devices_.size());
  for (const auto& dev : devices_) {
    levels.push_back({std::string(dev->name()), dev->Nominal()});
  }
  return levels;
}

DeviceHealth ReplicatedFs::LevelHealth(int local_level) const {
  if (local_level < 0 || local_level >= num_replicas()) {
    return DeviceHealth{};
  }
  return devices_[static_cast<size_t>(local_level)]->Health();
}

bool ReplicatedFs::Placed(int replica, int64_t stripe) const {
  const int n = num_replicas();
  // Stripe s lives on replicas {(s + k) % n : k < R}.
  const int delta = static_cast<int>((replica - stripe % n + n) % n);
  return delta < replication_factor_;
}

bool ReplicatedFs::IsStale(int replica, InodeNum ino, int64_t stripe) const {
  const auto& by_ino = stale_[static_cast<size_t>(replica)];
  const auto it = by_ino.find(ino);
  return it != by_ino.end() && it->second.contains(stripe);
}

void ReplicatedFs::MarkStale(int replica, InodeNum ino, int64_t stripe) {
  stale_[static_cast<size_t>(replica)][ino].insert(stripe);
}

int64_t ReplicatedFs::stale_stripes() const {
  int64_t total = 0;
  for (const auto& by_ino : stale_) {
    for (const auto& [ino, stripes] : by_ino) {
      total += static_cast<int64_t>(stripes.size());
    }
  }
  return total;
}

double ReplicatedFs::RankStatOf(int replica, RankBy rank_by) const {
  const StorageDevice& dev = *devices_[static_cast<size_t>(replica)];
  const HealthAdjustedLatency adj = AdjustForHealth(dev.Nominal(), dev.Health());
  switch (rank_by) {
    case RankBy::kP50:
      return adj.q.p50;
    case RankBy::kP90:
      return adj.q.p90;
    case RankBy::kP99:
      return adj.q.p99;
    case RankBy::kMean:
      break;
  }
  return adj.mean_s;
}

std::vector<ReplicatedFs::Candidate> ReplicatedFs::CandidatesFor(InodeNum ino, int64_t stripe,
                                                                 RankBy rank_by) const {
  std::vector<Candidate> cands;
  cands.reserve(static_cast<size_t>(replication_factor_));
  const int n = num_replicas();
  for (int k = 0; k < replication_factor_; ++k) {
    const int r = static_cast<int>((stripe + k) % n);
    if (IsStale(r, ino, stripe)) {
      continue;  // this copy is behind; it cannot serve the stripe
    }
    Candidate c;
    c.replica = r;
    c.unreachable = devices_[static_cast<size_t>(r)]->Health().unavailable;
    c.rank = c.unreachable ? kUnreachableRank : RankStatOf(r, rank_by);
    cands.push_back(c);
  }
  std::sort(cands.begin(), cands.end(), [](const Candidate& a, const Candidate& b) {
    if (a.unreachable != b.unreachable) {
      return b.unreachable;
    }
    if (a.rank != b.rank) {
      return a.rank < b.rank;
    }
    return a.replica < b.replica;
  });
  return cands;
}

int ReplicatedFs::RouteLevelOf(InodeNum ino, int64_t page, RankBy rank_by) const {
  const int64_t stripe = StripeOf(page);
  const std::vector<Candidate> cands = CandidatesFor(ino, stripe, rank_by);
  if (cands.empty()) {
    // Every placed copy is stale (a write that failed everywhere): fall back
    // to the placement primary; reads will surface the error.
    return static_cast<int>(stripe % num_replicas());
  }
  return cands.front().replica;
}

Result<void> ReplicatedFs::OnResize(InodeNum ino, int64_t /*old_size*/, int64_t new_size) {
  if (new_size == 0) {
    regions_.erase(ino);
    for (auto& by_ino : stale_) {
      by_ino.erase(ino);  // nothing left to re-sync
    }
    return Result<void>::Ok();
  }
  const int64_t span = (new_size + kPageSize - 1) / kPageSize;
  Region& reg = regions_[ino];
  if (span <= reg.pages) {
    return Result<void>::Ok();  // shrink: keep the regions (bump allocator)
  }
  // Grow: reserve a fresh contiguous region on every replica covering the
  // whole span (the old one is abandoned — bump allocation, like the extent
  // allocator). All replicas allocate in lockstep, so a page's device
  // address is identical across copies. Check every replica before
  // committing any, so a kNoSpc on one leaves all bump pointers untouched.
  for (size_t r = 0; r < devices_.size(); ++r) {
    if (next_free_[r] + span * kPageSize > devices_[r]->capacity_bytes()) {
      return Err::kNoSpc;
    }
  }
  reg.base.assign(devices_.size(), 0);
  for (size_t r = 0; r < devices_.size(); ++r) {
    reg.base[r] = next_free_[r];
    next_free_[r] += span * kPageSize;
  }
  reg.pages = span;
  return Result<void>::Ok();
}

Result<int64_t> ReplicatedFs::ReplicaAddressOf(int replica, InodeNum ino, int64_t page) const {
  const auto it = regions_.find(ino);
  if (it == regions_.end() || page >= it->second.pages) {
    return Err::kInval;
  }
  return it->second.base[static_cast<size_t>(replica)] + page * kPageSize;
}

Result<Duration> ReplicatedFs::ReadRun(InodeNum ino, int64_t first_page, int64_t run) {
  const int64_t stripe = StripeOf(first_page);
  const int64_t nbytes = run * kPageSize;
  const std::vector<Candidate> cands = CandidatesFor(ino, stripe, config_.route_rank_by);
  if (cands.empty()) {
    return Err::kIo;  // no surviving copy
  }
  Err last = Err::kIo;
  for (size_t i = 0; i < cands.size(); ++i) {
    const int r = cands[i].replica;
    SLED_ASSIGN_OR_RETURN(const int64_t addr, ReplicaAddressOf(r, ino, first_page));
    auto res = devices_[static_cast<size_t>(r)]->Read(addr, nbytes);
    if (!res.ok()) {
      last = res.error();
      continue;  // fail over to the next-ranked copy
    }
    Duration t = res.value();
    if (i > 0) {
      ++rstats_.degraded_reads;
      if (observer() != nullptr) {
        observer()->ReplicaDegradedRead(name(), r, nbytes);
      }
    }
    // Hedge: the chosen replica answered, but slower than its own estimate
    // promised. Issue the read to the runner-up and take the earlier finish;
    // the hedge starts at the deadline, so it pays deadline + its own time.
    if (config_.hedge_reads && i + 1 < cands.size() && !cands[i + 1].unreachable) {
      const StorageDevice& dev = *devices_[static_cast<size_t>(r)];
      const HealthAdjustedLatency adj = AdjustForHealth(dev.Nominal(), dev.Health());
      const Duration deadline = SecondsF(adj.q.p99 * config_.hedge_deadline_factor) +
                                TransferTime(nbytes, adj.bandwidth_bps);
      if (t > deadline) {
        ++rstats_.hedges_issued;
        bool win = false;
        const int hr = cands[i + 1].replica;
        SLED_ASSIGN_OR_RETURN(const int64_t haddr, ReplicaAddressOf(hr, ino, first_page));
        auto hedge = devices_[static_cast<size_t>(hr)]->Read(haddr, nbytes);
        if (hedge.ok() && deadline + hedge.value() < t) {
          t = deadline + hedge.value();
          win = true;
          ++rstats_.hedge_wins;
        }
        if (observer() != nullptr) {
          observer()->ReplicaHedge(name(), win);
        }
      }
    }
    return t;
  }
  return last;
}

Result<Duration> ReplicatedFs::WriteRun(InodeNum ino, int64_t first_page, int64_t run) {
  const int64_t stripe = StripeOf(first_page);
  const int64_t nbytes = run * kPageSize;
  const int n = num_replicas();
  Duration slowest;
  int acks = 0;
  int placed = 0;
  Err last = Err::kIo;
  for (int k = 0; k < replication_factor_; ++k) {
    const int r = static_cast<int>((stripe + k) % n);
    ++placed;
    SLED_ASSIGN_OR_RETURN(const int64_t addr, ReplicaAddressOf(r, ino, first_page));
    auto res = devices_[static_cast<size_t>(r)]->Write(addr, nbytes);
    if (res.ok()) {
      ++acks;
      slowest = std::max(slowest, res.value());
      continue;
    }
    // This copy missed the write: the whole stripe is stale on r until
    // background recovery re-syncs it.
    last = res.error();
    ++rstats_.failed_writes;
    MarkStale(r, ino, stripe);
    if (observer() != nullptr) {
      observer()->ReplicaStale(name(), r, nbytes);
    }
  }
  if (acks < replication_min_) {
    return last;  // too few copies committed — the write itself fails
  }
  if (acks < placed) {
    ++rstats_.degraded_writes;
  }
  // Primary-copy commit: the caller waits for every (surviving) ack, so the
  // charge is the slowest replica, not the sum.
  return slowest;
}

Result<Duration> ReplicatedFs::ReadPagesFromStore(InodeNum ino, int64_t first_page,
                                                  int64_t count) {
  Duration total;
  int64_t page = first_page;
  const int64_t end = first_page + count;
  while (page < end) {
    const int64_t run = LevelRunLen(ino, page, end - page);
    SLED_ASSIGN_OR_RETURN(const Duration t, ReadRun(ino, page, run));
    total += t;
    page += run;
  }
  return total;
}

Result<Duration> ReplicatedFs::WritePagesToStore(InodeNum ino, int64_t first_page,
                                                 int64_t count) {
  Duration total;
  int64_t page = first_page;
  const int64_t end = first_page + count;
  while (page < end) {
    const int64_t run = LevelRunLen(ino, page, end - page);
    SLED_ASSIGN_OR_RETURN(const Duration t, WriteRun(ino, page, run));
    total += t;
    page += run;
  }
  return total;
}

Result<Duration> ReplicatedFs::EstimateWritePages(InodeNum ino, int64_t first_page,
                                                  int64_t count) {
  Duration total;
  int64_t page = first_page;
  const int64_t end = first_page + count;
  const int n = num_replicas();
  while (page < end) {
    const int64_t run = LevelRunLen(ino, page, end - page);
    const int64_t stripe = StripeOf(page);
    Duration slowest;
    for (int k = 0; k < replication_factor_; ++k) {
      const int r = static_cast<int>((stripe + k) % n);
      SLED_ASSIGN_OR_RETURN(const int64_t addr, ReplicaAddressOf(r, ino, page));
      slowest = std::max(slowest,
                         devices_[static_cast<size_t>(r)]->EstimateWrite(addr, run * kPageSize));
    }
    total += slowest;
    page += run;
  }
  return total;
}

Result<Duration> ReplicatedFs::BackgroundMaintenance() {
  Duration total;
  for (int r = 0; r < num_replicas(); ++r) {
    auto& by_ino = stale_[static_cast<size_t>(r)];
    if (by_ino.empty()) {
      continue;
    }
    if (devices_[static_cast<size_t>(r)]->Health().unavailable) {
      continue;  // still inside its outage window; retry next pass
    }
    for (auto it = by_ino.begin(); it != by_ino.end();) {
      const InodeNum ino = it->first;
      std::set<int64_t>& stripes = it->second;
      const auto reg = regions_.find(ino);
      if (reg == regions_.end()) {
        it = by_ino.erase(it);  // truncated or unlinked since the failure
        continue;
      }
      for (auto sit = stripes.begin(); sit != stripes.end();) {
        const int64_t stripe = *sit;
        const int64_t first = stripe * config_.stripe_pages;
        if (first >= reg->second.pages) {
          sit = stripes.erase(sit);  // the file shrank past this stripe
          continue;
        }
        const int64_t pages = std::min(config_.stripe_pages, reg->second.pages - first);
        const int64_t nbytes = pages * kPageSize;
        // Re-copy from the best-ranked clean replica (r itself is stale, so
        // it is never a candidate).
        bool synced = false;
        for (const Candidate& c : CandidatesFor(ino, stripe, config_.route_rank_by)) {
          if (c.unreachable) {
            break;  // candidates are sorted: no reachable source remains
          }
          auto src = devices_[static_cast<size_t>(c.replica)]->Read(
              reg->second.base[static_cast<size_t>(c.replica)] + first * kPageSize, nbytes);
          if (!src.ok()) {
            continue;
          }
          total += src.value();
          auto dst = devices_[static_cast<size_t>(r)]->Write(
              reg->second.base[static_cast<size_t>(r)] + first * kPageSize, nbytes);
          if (!dst.ok()) {
            break;  // destination failed again; keep the stripe stale
          }
          total += dst.value();
          rstats_.recovered_bytes += nbytes;
          if (observer() != nullptr) {
            observer()->ReplicaRecovery(name(), r, nbytes);
          }
          synced = true;
          break;
        }
        sit = synced ? stripes.erase(sit) : std::next(sit);
      }
      it = stripes.empty() ? by_ino.erase(it) : std::next(it);
    }
  }
  return total;
}

}  // namespace sled
