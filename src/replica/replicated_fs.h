// Replicated file system: one namespace striped over N heterogeneous storage
// devices, each stripe held by R of them (primary-copy replication).
//
// The paper treats a file's location as a fact to be *estimated* (§3); a
// replicated store turns it into a *choice*. Every page has several
// equivalent copies whose latency distributions differ — a quiet disk, an
// SSD mid-GC, an NFS server behind a slow WAN — and the right copy depends
// on which statistic the consumer cares about: the GC'd SSD wins on the mean
// but loses badly at the p99. RouteLevelOf makes that choice per ranking
// statistic, so the SLEDs a picker fetches already name the copy that
// minimizes *its* ordering, and the data plane serves reads from the same
// copy the estimate advertised.
//
// Fault story (primary-copy):
//   * writes go to every placed replica and charge the slowest (the ack
//     horizon of a synchronous-replication commit). A replica that fails
//     mid-write is marked stale for the affected stripes and queued for
//     re-sync; the write itself succeeds as long as `replication_min`
//     replicas acked (degraded write).
//   * reads try replicas in rank order, skipping stale copies; an erroring
//     replica fails over to the next candidate (degraded read) instead of
//     surfacing the error.
//   * BackgroundMaintenance() re-syncs stale stripes from a clean copy once
//     the stale replica answers again, clearing them for routing.
//   * optionally, reads are hedged: if the chosen replica's service time
//     exceeds a p99-derived deadline, the second-ranked replica is issued
//     the same read and the process pays min(straggler, deadline + hedge).
//
// Staleness is tracked at stripe granularity: a failed write dirties the
// whole stripe, recovery re-copies the whole stripe. This keeps routing and
// LevelRunLen O(1) per stripe and over-recovers at most stripe_pages - 1
// pages per failure.
#ifndef SLEDS_SRC_REPLICA_REPLICATED_FS_H_
#define SLEDS_SRC_REPLICA_REPLICATED_FS_H_

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/fs/filesystem.h"

namespace sled {

struct ReplicatedFsConfig {
  // Pages per stripe (the placement and staleness granule).
  int64_t stripe_pages = 64;
  // Copies per stripe; 0 (or anything >= the device count) means every
  // replica holds every stripe. Stripe s is placed on replicas
  // {(s + k) % N : k < R}.
  int replication_factor = 0;
  // Fewest replicas that must ack a write for it to succeed (degraded
  // write). Clamped to [1, R].
  int replication_min = 1;
  // Hedge reads: when the chosen replica's service time exceeds its
  // p99-derived deadline, issue the read to the second-ranked replica too
  // and pay min(straggler, deadline + hedge). $SLEDS_HEDGE_P99=1 turns this
  // on for the shell and benches.
  bool hedge_reads = false;
  // Deadline = hedge_deadline_factor * (health-adjusted p99 first-byte
  // latency) + transfer time at the health-adjusted bandwidth.
  double hedge_deadline_factor = 1.0;
  // The statistic the *data plane* routes by (LevelOf, reads). SLED
  // consumers route per their own rank_by via RouteLevelOf regardless.
  RankBy route_rank_by = RankBy::kMean;
};

// Running replication counters, for tests and the bench harness.
struct ReplicaStats {
  int64_t degraded_reads = 0;   // read runs served after skipping a better-ranked copy
  int64_t failed_writes = 0;    // per-replica write ops that failed (stripes went stale)
  int64_t degraded_writes = 0;  // write runs acked by fewer than all placed replicas
  int64_t hedges_issued = 0;
  int64_t hedge_wins = 0;
  int64_t recovered_bytes = 0;  // bytes re-synced by background recovery
};

class ReplicatedFs final : public FileSystem {
 public:
  // Each device becomes one storage level (replica index == local level).
  ReplicatedFs(std::string name, std::vector<std::unique_ptr<StorageDevice>> replicas,
               ReplicatedFsConfig config = {});

  // ---- FileSystem data plane ----
  Result<Duration> ReadPagesFromStore(InodeNum ino, int64_t first_page, int64_t count) override;
  Result<Duration> WritePagesToStore(InodeNum ino, int64_t first_page, int64_t count) override;
  Result<Duration> EstimateWritePages(InodeNum ino, int64_t first_page, int64_t count) override;
  int LevelOf(InodeNum ino, int64_t page) const override {
    return RouteLevelOf(ino, page, config_.route_rank_by);
  }
  int RouteLevelOf(InodeNum ino, int64_t page, RankBy rank_by) const override;
  int64_t LevelRunLen(InodeNum /*ino*/, int64_t page, int64_t max_pages) const override {
    // Routing decisions are per stripe, so a level run ends at the stripe
    // boundary at the latest (equal-level neighbours re-merge in the scan).
    const int64_t left = config_.stripe_pages - page % config_.stripe_pages;
    return left < max_pages ? left : max_pages;
  }
  std::vector<StorageLevelInfo> Levels() const override;
  // Several devices share the queue: no flat address space, no elevator.
  int64_t DeviceAddressOf(InodeNum /*ino*/, int64_t /*page*/) const override { return -1; }
  StorageDevice* PrimaryDevice() override { return nullptr; }
  DeviceHealth LevelHealth(int local_level) const override;
  Result<Duration> BackgroundMaintenance() override;

  void AttachObserver(Observer* obs) override;

  // ---- replication surface (tests, benches, shell) ----
  int num_replicas() const { return static_cast<int>(devices_.size()); }
  StorageDevice& replica(int index) { return *devices_[static_cast<size_t>(index)]; }
  const ReplicaStats& rstats() const { return rstats_; }
  // Stripes currently awaiting re-sync, across all replicas.
  int64_t stale_stripes() const;

 protected:
  Result<void> OnResize(InodeNum ino, int64_t old_size, int64_t new_size) override;

 private:
  // Candidate replica for one stripe, ordered by (unreachable-last, rank
  // statistic, replica index) — the index tie-break keeps equal-rank routing
  // deterministic and pinned to the lowest replica.
  struct Candidate {
    int replica = 0;
    double rank = 0.0;
    bool unreachable = false;
  };

  int64_t StripeOf(int64_t page) const { return page / config_.stripe_pages; }
  bool Placed(int replica, int64_t stripe) const;
  bool IsStale(int replica, InodeNum ino, int64_t stripe) const;
  void MarkStale(int replica, InodeNum ino, int64_t stripe);
  // Health-adjusted ranking statistic of one replica's nominal
  // characterization — the same arithmetic BuildSleds advertises.
  double RankStatOf(int replica, RankBy rank_by) const;
  // Stale-aware candidates for one stripe, sorted for routing.
  std::vector<Candidate> CandidatesFor(InodeNum ino, int64_t stripe, RankBy rank_by) const;
  // Device byte address of `page` on `replica` (every replica reserves the
  // file's full span, so the layout is position-identical across copies).
  Result<int64_t> ReplicaAddressOf(int replica, InodeNum ino, int64_t page) const;
  // Read one stripe run from the best candidate, failing over and
  // (optionally) hedging. Returns the process-visible service time.
  Result<Duration> ReadRun(InodeNum ino, int64_t first_page, int64_t run);
  // Write one stripe run to every placed replica, charging the slowest ack.
  Result<Duration> WriteRun(InodeNum ino, int64_t first_page, int64_t run);

  ReplicatedFsConfig config_;
  int replication_factor_ = 0;  // resolved: clamped to [1, N]
  int replication_min_ = 1;     // resolved: clamped to [1, replication_factor_]
  std::vector<std::unique_ptr<StorageDevice>> devices_;

  struct Region {
    std::vector<int64_t> base;  // per-replica region start (device bytes)
    int64_t pages = 0;          // logical pages the regions cover
  };
  std::unordered_map<InodeNum, Region> regions_;
  std::vector<int64_t> next_free_;  // per-replica bump pointer

  // stale_[r][ino] = stripes of `ino` whose copy on replica r is behind.
  // Ordered containers so recovery order (and therefore simulated time) is
  // deterministic.
  std::vector<std::map<InodeNum, std::set<int64_t>>> stale_;

  ReplicaStats rstats_;
};

}  // namespace sled

#endif  // SLEDS_SRC_REPLICA_REPLICATED_FS_H_
