#include "src/fs/remote_fs.h"

#include <algorithm>

namespace sled {

RemoteServer::RemoteServer(const RemoteFsConfig& config)
    : disk_(std::make_unique<DiskDevice>(
          [&] {
            DiskDeviceConfig dc = config.server_disk;
            dc.seed = config.seed * 31 + 7;
            return dc;
          }(),
          "server-disk")),
      allocator_(disk_.get(), ExtentAllocatorConfig{}),
      cache_({.capacity_pages = config.server_cache_pages}) {
  disk_->InjectFaults(FaultPlan::FromEnv(disk_->name()));
}

Result<Duration> RemoteServer::WritebackEvicted(const EvictedPage& evicted) {
  if (!evicted.dirty) {
    return Duration();
  }
  // The evicted key's file field is the inode number (server-local ids).
  return allocator_.TransferPages(static_cast<InodeNum>(evicted.key.file), evicted.key.page, 1,
                                  /*writing=*/true);
}

Result<Duration> RemoteServer::ReadPages(InodeNum ino, int64_t first_page, int64_t count) {
  Duration total;
  int64_t run_start = -1;
  int64_t run_len = 0;
  // Miss pages are claimed in the cache as the run is built (so eviction cost
  // lands inside this call), then filled by one disk read per run. If the fill
  // or an eviction writeback fails, the claimed frames hold no data — drop
  // them so a failed read can never leave poisoned "resident" pages behind.
  auto drop_run = [&]() {
    for (int64_t p = run_start; p < run_start + run_len; ++p) {
      cache_.Remove({static_cast<FileId>(ino), p});
    }
    run_len = 0;
  };
  auto flush_run = [&]() -> Result<void> {
    if (run_len == 0) {
      return Result<void>::Ok();
    }
    auto t = allocator_.TransferPages(ino, run_start, run_len, /*writing=*/false);
    if (!t.ok()) {
      drop_run();
      return t.error();
    }
    total += t.value();
    run_len = 0;
    return Result<void>::Ok();
  };
  for (int64_t page = first_page; page < first_page + count; ++page) {
    const PageKey key{static_cast<FileId>(ino), page};
    if (cache_.Touch(key)) {
      SLED_RETURN_IF_ERROR(flush_run());
      continue;
    }
    if (run_len == 0) {
      run_start = page;
    }
    ++run_len;
    auto evicted = cache_.Insert(key, /*dirty=*/false);
    if (evicted.has_value()) {
      auto wt = WritebackEvicted(*evicted);
      if (!wt.ok()) {
        drop_run();
        return wt.error();
      }
      total += wt.value();
    }
  }
  SLED_RETURN_IF_ERROR(flush_run());
  return total;
}

Result<Duration> RemoteServer::WritePages(InodeNum ino, int64_t first_page, int64_t count) {
  Duration total;
  for (int64_t page = first_page; page < first_page + count; ++page) {
    auto evicted = cache_.Insert({static_cast<FileId>(ino), page}, /*dirty=*/true);
    if (evicted.has_value()) {
      SLED_ASSIGN_OR_RETURN(Duration wt, WritebackEvicted(*evicted));
      total += wt;
    }
  }
  return total;
}

bool RemoteServer::IsCached(InodeNum ino, int64_t page) const {
  return cache_.Contains({static_cast<FileId>(ino), page});
}

int64_t RemoteServer::CachedRunLen(InodeNum ino, int64_t page, int64_t max_pages) const {
  const auto run = cache_.NextResidentRun(static_cast<FileId>(ino), page);
  if (!run.has_value()) {
    return max_pages;  // nothing cached at or after `page`
  }
  if (run->first <= page) {
    return std::min(max_pages, run->end() - page);  // inside a cached run
  }
  return std::min(max_pages, run->first - page);  // uncached gap before the run
}

Result<void> RemoteServer::Resize(InodeNum ino, int64_t new_size) {
  if (new_size == 0) {
    Free(ino);
    return Result<void>::Ok();
  }
  return allocator_.Resize(ino, new_size);
}

void RemoteServer::Free(InodeNum ino) {
  // Drop cached pages (dirty ones are discarded with the file).
  cache_.RemoveFile(static_cast<FileId>(ino));
  allocator_.Free(ino);
}

RemoteFs::RemoteFs(std::string name, RemoteFsConfig config)
    : FileSystem(std::move(name)), config_(config), server_(config) {}

Result<Duration> RemoteFs::ReadPagesFromStore(InodeNum ino, int64_t first_page, int64_t count) {
  // A down server rejects the RPC outright — even pages in its cache are
  // unreachable while the window is open.
  SLED_RETURN_IF_ERROR(CheckAvailable());
  SLED_ASSIGN_OR_RETURN(Duration server_time, server_.ReadPages(ino, first_page, count));
  return server_time + WireTime(count * kPageSize);
}

Result<Duration> RemoteFs::WritePagesToStore(InodeNum ino, int64_t first_page, int64_t count) {
  SLED_RETURN_IF_ERROR(CheckAvailable());
  SLED_ASSIGN_OR_RETURN(Duration server_time, server_.WritePages(ino, first_page, count));
  return server_time + WireTime(count * kPageSize);
}

int RemoteFs::LevelOf(InodeNum ino, int64_t page) const {
  return server_.IsCached(ino, page) ? kLevelServerCache : kLevelServerDisk;
}

std::vector<StorageLevelInfo> RemoteFs::Levels() const {
  const DeviceCharacteristics disk = server_.DiskNominal();
  // Server cache: one RPC, wire-limited.
  StorageLevelInfo cache_level{"nfs-cache", {config_.rpc_latency, config_.wire_bandwidth_bps}};
  // Server disk: RPC + disk positioning; streaming limited by the slower leg.
  StorageLevelInfo disk_level{
      "nfs-disk",
      {config_.rpc_latency + disk.latency,
       std::min(config_.wire_bandwidth_bps, disk.bandwidth_bps)}};
  return {cache_level, disk_level};
}

Result<void> RemoteFs::OnResize(InodeNum ino, int64_t /*old_size*/, int64_t new_size) {
  return server_.Resize(ino, new_size);
}

}  // namespace sled
