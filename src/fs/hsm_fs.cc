#include "src/fs/hsm_fs.h"

#include <algorithm>
#include <map>

#include "src/common/log.h"
#include "src/device/tape_schedule.h"

namespace sled {

HsmFs::HsmFs(std::string name, HsmFsConfig config)
    : FileSystem(std::move(name)),
      config_(config),
      staging_device_(std::make_unique<DiskDevice>(config.staging_disk, "hsm-disk")),
      staging_(staging_device_.get(), ExtentAllocatorConfig{}),
      changer_(config.num_tapes, config.num_drives, config.tape, config.exchange_time),
      tape_free_offset_(static_cast<size_t>(config.num_tapes), 0) {
  if (config_.staging_capacity_bytes == 0) {
    config_.staging_capacity_bytes = config_.staging_disk.capacity_bytes;
  }
  staging_device_->InjectFaults(FaultPlan::FromEnv(staging_device_->name()));
}

HsmFs::HsmState& HsmFs::StateOf(InodeNum ino) { return state_[ino]; }

const HsmFs::HsmState* HsmFs::FindState(InodeNum ino) const {
  auto it = state_.find(ino);
  return it == state_.end() ? nullptr : &it->second;
}

bool HsmFs::IsStaged(InodeNum ino) const {
  const HsmState* s = FindState(ino);
  return s != nullptr && s->staged;
}

bool HsmFs::IsOnTape(InodeNum ino) const {
  const HsmState* s = FindState(ino);
  return s != nullptr && s->tape_index >= 0;
}

int HsmFs::TapeOf(InodeNum ino) const {
  const HsmState* s = FindState(ino);
  return s == nullptr ? -1 : s->tape_index;
}

void HsmFs::TouchStagedLru(InodeNum ino) {
  staged_lru_.remove(ino);
  staged_lru_.push_back(ino);
}

Result<Duration> HsmFs::CopyToTape(InodeNum ino) {
  const int64_t size = PageCeil(SizeOf(ino));
  if (size == 0) {
    return Duration();
  }
  // Pick the tape with the most free space.
  int best = -1;
  int64_t best_free = -1;
  for (int i = 0; i < changer_.num_tapes(); ++i) {
    const int64_t free = changer_.tape(i).capacity_bytes() - tape_free_offset_[i];
    if (free >= size && free > best_free) {
      best = i;
      best_free = free;
    }
  }
  if (best < 0) {
    return Err::kNoSpc;
  }
  HsmState& s = StateOf(ino);
  SLED_ASSIGN_OR_RETURN(Duration t,
                        staging_.TransferPages(ino, 0, PagesFor(size), /*writing=*/false));
  SLED_ASSIGN_OR_RETURN(Duration wt, changer_.Write(best, tape_free_offset_[best], size));
  t += wt;
  s.tape_index = best;
  s.tape_offset = tape_free_offset_[best];
  s.tape_length = size;
  s.staged_dirty = false;
  tape_free_offset_[best] += size;
  return t;
}

Result<Duration> HsmFs::Migrate(InodeNum ino) {
  SLED_ASSIGN_OR_RETURN(InodeAttr attr, GetAttr(ino));
  if (attr.is_dir) {
    return Err::kIsDir;
  }
  HsmState& s = StateOf(ino);
  Duration t;
  if (s.staged && (s.staged_dirty || s.tape_index < 0)) {
    SLED_ASSIGN_OR_RETURN(t, CopyToTape(ino));
  }
  if (s.staged) {
    staging_.Free(ino);
    staged_bytes_ -= PageCeil(attr.size);
    staged_lru_.remove(ino);
    s.staged = false;
  }
  return t;
}

Result<void> HsmFs::MakeStagingRoom(int64_t need, Duration* t) {
  while (staged_bytes_ + need > config_.staging_capacity_bytes && !staged_lru_.empty()) {
    const InodeNum victim = staged_lru_.front();
    SLED_ASSIGN_OR_RETURN(Duration mt, Migrate(victim));
    *t += mt;
  }
  if (staged_bytes_ + need > config_.staging_capacity_bytes) {
    return Err::kNoSpc;
  }
  return Result<void>::Ok();
}

Result<Duration> HsmFs::Recall(InodeNum ino) {
  SLED_ASSIGN_OR_RETURN(InodeAttr attr, GetAttr(ino));
  HsmState& s = StateOf(ino);
  if (s.staged) {
    TouchStagedLru(ino);
    return Duration();
  }
  if (s.tape_index < 0) {
    return Err::kIo;  // neither staged nor on tape: no data to recall
  }
  Duration t;
  const int64_t size = PageCeil(attr.size);
  SLED_RETURN_IF_ERROR(MakeStagingRoom(size, &t));
  SLED_ASSIGN_OR_RETURN(Duration tape_t,
                        changer_.Read(s.tape_index, s.tape_offset, std::max<int64_t>(size, 1)));
  t += tape_t;
  SLED_RETURN_IF_ERROR(staging_.Resize(ino, attr.size));
  if (size > 0) {
    SLED_ASSIGN_OR_RETURN(Duration stage_t,
                          staging_.TransferPages(ino, 0, PagesFor(size), /*writing=*/true));
    t += stage_t;
  }
  s.staged = true;
  s.staged_dirty = false;
  staged_bytes_ += size;
  TouchStagedLru(ino);
  return t;
}

Result<Duration> HsmFs::RecallBatch(const std::vector<InodeNum>& inos, bool scheduled) {
  if (!scheduled) {
    // FIFO baseline: serve strictly in argument order — every tape
    // alternation costs a robot exchange and a mount.
    Duration total;
    for (InodeNum ino : inos) {
      const HsmState* s = FindState(ino);
      if (s == nullptr || s->staged || s->tape_index < 0) {
        continue;
      }
      SLED_ASSIGN_OR_RETURN(Duration t, Recall(ino));
      total += t;
    }
    return total;
  }

  // Partition offline files by tape.
  std::map<int, std::vector<InodeNum>> by_tape;
  for (InodeNum ino : inos) {
    const HsmState* s = FindState(ino);
    if (s == nullptr || s->staged || s->tape_index < 0) {
      continue;
    }
    by_tape[s->tape_index].push_back(ino);
  }
  // Serve the currently mounted tape's group first.
  std::vector<int> tape_order;
  for (const auto& [tape, group] : by_tape) {
    tape_order.push_back(tape);
  }
  std::stable_sort(tape_order.begin(), tape_order.end(), [&](int a, int b) {
    return changer_.IsMounted(a) > changer_.IsMounted(b);
  });

  Duration total;
  for (int tape : tape_order) {
    std::vector<InodeNum>& group = by_tape[tape];
    {
      std::vector<TapeRequest> requests;
      requests.reserve(group.size());
      for (InodeNum ino : group) {
        const HsmState& s = StateOf(ino);
        requests.push_back({s.tape_offset, s.tape_length});
      }
      const int64_t start = changer_.IsMounted(tape) ? changer_.tape(tape).position() : 0;
      const std::vector<size_t> order = ScheduleTapeReads(config_.tape, start, requests);
      std::vector<InodeNum> reordered;
      reordered.reserve(group.size());
      for (size_t idx : order) {
        reordered.push_back(group[idx]);
      }
      group = std::move(reordered);
    }
    for (InodeNum ino : group) {
      SLED_ASSIGN_OR_RETURN(Duration t, Recall(ino));
      total += t;
    }
  }
  return total;
}

Result<Duration> HsmFs::ReadPagesFromStore(InodeNum ino, int64_t first_page, int64_t count) {
  HsmState& s = StateOf(ino);
  if (s.staged) {
    TouchStagedLru(ino);
    return staging_.TransferPages(ino, first_page, count, /*writing=*/false);
  }
  if (s.tape_index < 0) {
    return Err::kIo;
  }
  if (config_.stage_on_read) {
    SLED_ASSIGN_OR_RETURN(Duration t, Recall(ino));
    SLED_ASSIGN_OR_RETURN(Duration rt,
                          staging_.TransferPages(ino, first_page, count, /*writing=*/false));
    return t + rt;
  }
  // Direct partial read from tape; only the page cache keeps the data near.
  return changer_.Read(s.tape_index, s.tape_offset + first_page * kPageSize, count * kPageSize);
}

Result<Duration> HsmFs::WritePagesToStore(InodeNum ino, int64_t first_page, int64_t count) {
  HsmState& s = StateOf(ino);
  if (!s.staged) {
    return Err::kNotSup;  // offline file: caller must Recall() first
  }
  s.staged_dirty = true;
  TouchStagedLru(ino);
  return staging_.TransferPages(ino, first_page, count, /*writing=*/true);
}

int HsmFs::LevelOf(InodeNum ino, int64_t /*page*/) const {
  const HsmState* s = FindState(ino);
  if (s == nullptr || s->staged) {
    return kLevelDisk;
  }
  return changer_.IsMounted(s->tape_index) ? kLevelTapeNear : kLevelTapeFar;
}

int64_t HsmFs::DeviceAddressOf(InodeNum ino, int64_t page) const {
  const HsmState* s = FindState(ino);
  if (s == nullptr || !s->staged) {
    return -1;
  }
  Result<int64_t> addr = staging_.DeviceAddressOf(ino, page * kPageSize);
  // Not an error swallow: -1 is this interface's documented "no flat address"
  // value (sparse staging hole), and the elevator degrades to FIFO on it.
  return addr.ok() ? *addr : -1;
}

Result<Duration> HsmFs::EstimateWritePages(InodeNum ino, int64_t first_page, int64_t count) {
  const HsmState* s = FindState(ino);
  if (s != nullptr && s->staged) {
    return staging_.EstimateTransferPages(ino, first_page, count, /*writing=*/true);
  }
  return FileSystem::EstimateWritePages(ino, first_page, count);
}

std::vector<StorageLevelInfo> HsmFs::Levels() const {
  const DeviceCharacteristics tape_near = changer_.tape(0).Nominal();
  DeviceCharacteristics tape_far = tape_near;
  // Offline tape additionally pays robot exchange(s) and load+thread.
  tape_far.latency += config_.exchange_time * 2 + config_.tape.load_time;
  return {{"hsm-disk", staging_device_->Nominal()},
          {"tape-near", tape_near},
          {"tape-far", tape_far}};
}

Result<void> HsmFs::OnResize(InodeNum ino, int64_t old_size, int64_t new_size) {
  HsmState& s = StateOf(ino);
  if (new_size == 0) {
    if (s.staged) {
      staging_.Free(ino);
      staged_bytes_ -= PageCeil(old_size);
      staged_lru_.remove(ino);
    }
    state_.erase(ino);
    return Result<void>::Ok();
  }
  if (!s.staged && s.tape_index >= 0) {
    return Err::kNotSup;  // offline file: Recall() before writing
  }
  Duration ignored;
  const int64_t delta = PageCeil(new_size) - PageCeil(old_size);
  if (delta > 0) {
    SLED_RETURN_IF_ERROR(MakeStagingRoom(delta, &ignored));
  }
  SLED_RETURN_IF_ERROR(staging_.Resize(ino, new_size));
  if (!s.staged) {
    s.staged = true;
  }
  staged_bytes_ += delta;
  s.staged_dirty = true;
  TouchStagedLru(ino);
  return Result<void>::Ok();
}

}  // namespace sled
