// RemoteFs: a distributed file system where SLEDs cross the wire.
//
// The paper proposes SLEDs as "the vocabulary of communication between
// clients and servers as well as between applications and operating systems"
// (§2) and lists server/client SLED communication as primary future work
// (§6). This module builds that: a file server with its own disk and its own
// server-side page cache, and a client file system whose page-level estimates
// distinguish *three* storage levels:
//
//   client memory     (the local page cache — level 0, as always)
//   server cache      (one wire round-trip, wire bandwidth)
//   server disk       (wire round-trip + server disk positioning + the
//                      slower of wire/disk bandwidth)
//
// A SLEDs-aware application can therefore order its reads client-cache
// first, then server-cache, then server-disk — reducing not only its own
// latency but the server's disk load, which is exactly the "better citizen"
// argument of §3.2.
#ifndef SLEDS_SRC_FS_REMOTE_FS_H_
#define SLEDS_SRC_FS_REMOTE_FS_H_

#include <memory>

#include "src/cache/page_cache.h"
#include "src/device/disk_device.h"
#include "src/fs/extent_allocator.h"
#include "src/fs/filesystem.h"

namespace sled {

struct RemoteFsConfig {
  // Wire characteristics (per-RPC latency and streaming bandwidth). Defaults
  // are 100 Mb-class ethernet, much faster than the paper's Table 2 NFS so
  // the server-cache tier is visibly cheaper than the server disk.
  Duration rpc_latency = MillisecondsF(1.2);
  double wire_bandwidth_bps = 10.0e6;
  // Server-side buffer cache, in pages.
  int64_t server_cache_pages = 4096;  // 16 MiB
  DiskDeviceConfig server_disk;
  uint64_t seed = 17;
};

// The server: disk + server page cache + the per-page residency answer the
// client's SLED scan asks for. Single-client, request-response; server work
// is charged into the returned service times.
class RemoteServer {
 public:
  explicit RemoteServer(const RemoteFsConfig& config);

  // Service time for reading/writing pages of (server-side) inode `ino`.
  // Reads fill the server cache; writes go through it (write-back on
  // eviction).
  Result<Duration> ReadPages(InodeNum ino, int64_t first_page, int64_t count);
  Result<Duration> WritePages(InodeNum ino, int64_t first_page, int64_t count);

  // Is this page in the server's cache right now? (The SLEDs-over-the-wire
  // query; costs one RPC, amortized by the client asking per file.)
  bool IsCached(InodeNum ino, int64_t page) const;
  // Pages starting at `page` (at most max_pages) that share page's cached /
  // not-cached answer, read from the server cache's residency index.
  int64_t CachedRunLen(InodeNum ino, int64_t page, int64_t max_pages) const;

  Result<void> Resize(InodeNum ino, int64_t new_size);
  void Free(InodeNum ino);

  const PageCache& cache() const { return cache_; }
  DiskDevice& disk() { return *disk_; }
  const DiskDevice& disk() const { return *disk_; }
  DeviceCharacteristics DiskNominal() const { return disk_->Nominal(); }
  // Server reachability = its disk's health (the fault plan's down/slow
  // windows model the "NFS server down / overloaded" scenarios).
  DeviceHealth Health() const { return disk_->Health(); }
  void AttachObserver(Observer* obs) { disk_->AttachObserver(obs); }

 private:
  // Flush one evicted dirty page; returns disk time, or the disk's error (the
  // page's contents are gone with the frame, so the caller must fail the
  // triggering operation rather than pretend the write landed).
  Result<Duration> WritebackEvicted(const EvictedPage& evicted);

  std::unique_ptr<DiskDevice> disk_;
  ExtentAllocator allocator_;
  PageCache cache_;
};

class RemoteFs final : public FileSystem {
 public:
  RemoteFs(std::string name, RemoteFsConfig config);

  Result<Duration> ReadPagesFromStore(InodeNum ino, int64_t first_page, int64_t count) override;
  Result<Duration> WritePagesToStore(InodeNum ino, int64_t first_page, int64_t count) override;
  int LevelOf(InodeNum ino, int64_t page) const override;
  int64_t LevelRunLen(InodeNum ino, int64_t page, int64_t max_pages) const override {
    return server_.CachedRunLen(ino, page, max_pages);
  }
  std::vector<StorageLevelInfo> Levels() const override;
  // Both remote levels sit behind the same wire and server: a down or slow
  // server degrades them together.
  DeviceHealth LevelHealth(int /*local_level*/) const override { return server_.Health(); }
  Result<void> CheckAvailable() const override {
    return server_.Health().unavailable ? Result<void>(Err::kUnavailable) : Result<void>::Ok();
  }

  RemoteServer& server() { return server_; }
  const RemoteServer& server() const { return server_; }

  void AttachObserver(Observer* obs) override {
    FileSystem::AttachObserver(obs);
    server_.AttachObserver(obs);
  }

  static constexpr int kLevelServerCache = 0;
  static constexpr int kLevelServerDisk = 1;

 protected:
  Result<void> OnResize(InodeNum ino, int64_t old_size, int64_t new_size) override;

 private:
  Duration WireTime(int64_t nbytes) const {
    return config_.rpc_latency + TransferTime(nbytes, config_.wire_bandwidth_bps);
  }

  RemoteFsConfig config_;
  RemoteServer server_;
};

}  // namespace sled

#endif  // SLEDS_SRC_FS_REMOTE_FS_H_
