// The virtual file system layer: a mount table plus path resolution over the
// mounted file systems, mirroring the layer the paper modified ("All of the
// changes were made in the virtual file system (VFS) layer, independent of
// the on-disk data structure of ext2 or ISO9660", §4.1).
#ifndef SLEDS_SRC_FS_VFS_H_
#define SLEDS_SRC_FS_VFS_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/cache/page_cache.h"
#include "src/fs/filesystem.h"

namespace sled {

class Vfs {
 public:
  Vfs() = default;
  Vfs(const Vfs&) = delete;
  Vfs& operator=(const Vfs&) = delete;

  struct Resolved {
    FileSystem* fs = nullptr;
    uint32_t fs_id = 0;
    InodeNum ino = 0;
  };

  // Mount a file system at an absolute path ("/", "/mnt/cdrom", ...). Mount
  // points may nest; resolution picks the longest matching prefix. Returns
  // the assigned fs id.
  Result<uint32_t> Mount(std::string path, std::unique_ptr<FileSystem> fs);

  // Resolve an absolute path to (fs, inode). Handles ".", "..", and
  // duplicate slashes; ".." does not cross mount points (it stops at the
  // mounted root, like a chroot).
  Result<Resolved> Resolve(std::string_view path) const;

  // Resolve the parent directory of `path`, returning the final component in
  // *leaf (for create/unlink).
  Result<Resolved> ResolveParent(std::string_view path, std::string* leaf) const;

  // ---- path-level conveniences ----
  Result<Resolved> CreateFile(std::string_view path);
  Result<Resolved> CreateDir(std::string_view path);
  Result<void> Unlink(std::string_view path);
  Result<InodeAttr> Stat(std::string_view path) const;
  Result<std::vector<DirEntry>> List(std::string_view path) const;

  // Globally unique file identity for the page cache.
  static FileId MakeFileId(uint32_t fs_id, InodeNum ino) {
    return (static_cast<FileId>(fs_id) << 40) | static_cast<FileId>(ino);
  }

  FileSystem* FsById(uint32_t fs_id) const;
  // Mount path of a file system id (for diagnostics).
  std::string MountPathOf(uint32_t fs_id) const;
  // All mounts as (path, fs_id) in path order.
  std::vector<std::pair<std::string, uint32_t>> Mounts() const;

  // Attach the kernel's observability sink: counts resolutions and forwards
  // the observer to every mounted (and future) file system and its devices.
  void AttachObserver(Observer* obs);

 private:
  struct MountEntry {
    std::string path;  // normalized, no trailing slash except root
    uint32_t fs_id = 0;
    std::unique_ptr<FileSystem> fs;
  };

  // Split into normalized components, resolving "." and "..".
  static Result<std::vector<std::string>> SplitPath(std::string_view path);
  const MountEntry* FindMount(const std::vector<std::string>& components,
                              size_t* consumed) const;

  std::vector<MountEntry> mounts_;
  uint32_t next_fs_id_ = 1;
  Observer* obs_ = nullptr;
};

}  // namespace sled

#endif  // SLEDS_SRC_FS_VFS_H_
