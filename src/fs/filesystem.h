// FileSystem base: the common namespace + content plane every concrete file
// system (ExtFs, IsoFs, NfsFs, HsmFs) shares, and the data-plane interface
// the kernel uses to charge device time and to construct SLEDs.
//
// Split of responsibilities:
//   * namespace + file contents: kept in memory here. Metadata I/O cost is
//     out of scope for the paper's experiments (they measure data-plane
//     reads); file *contents* are real bytes so applications (wc, grep, FITS
//     tools) compute real answers.
//   * data-plane cost: virtual. ReadPagesFromStore/WritePagesToStore charge
//     simulated device time for moving pages between the backing store and
//     the buffer cache; LevelOf reports which storage level currently holds a
//     page, which is exactly what the kernel SLED scan needs (paper §4.1).
#ifndef SLEDS_SRC_FS_FILESYSTEM_H_
#define SLEDS_SRC_FS_FILESYSTEM_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/sim_time.h"
#include "src/common/units.h"
#include "src/device/device.h"
#include "src/sleds/sled.h"  // RankBy (header-only, no library dependency)

namespace sled {

class Observer;

using InodeNum = int64_t;

inline constexpr InodeNum kRootIno = 1;

struct InodeAttr {
  InodeNum ino = 0;
  bool is_dir = false;
  int64_t size = 0;
};

struct DirEntry {
  std::string name;
  InodeNum ino = 0;
  bool is_dir = false;
};

// One storage level of a file system, registered into the kernel sleds_table
// at mount time. `nominal` is the model's own average-case characterization;
// the boot-time calibrator may overwrite the table row with measured values
// (paper §4.1: lmbench fills the table via FSLEDS_FILL).
struct StorageLevelInfo {
  std::string name;
  DeviceCharacteristics nominal;
};

class FileSystem {
 public:
  explicit FileSystem(std::string name);
  virtual ~FileSystem() = default;

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  const std::string& name() const { return name_; }

  // ---- namespace ----
  InodeNum root() const { return kRootIno; }
  Result<InodeNum> Lookup(InodeNum dir, std::string_view child) const;
  Result<InodeNum> CreateFile(InodeNum dir, std::string_view child);
  Result<InodeNum> CreateDir(InodeNum dir, std::string_view child);
  Result<void> Unlink(InodeNum dir, std::string_view child);
  Result<std::vector<DirEntry>> List(InodeNum dir) const;
  Result<InodeAttr> GetAttr(InodeNum ino) const;
  bool Exists(InodeNum ino) const { return inodes_.contains(ino); }

  // ---- content plane (real bytes, no cost model) ----
  // Copy out up to dst.size() bytes at `offset`; returns bytes copied (0 at
  // or past EOF).
  Result<int64_t> ReadBytes(InodeNum ino, int64_t offset, std::span<char> dst) const;
  // Copy in, extending the file as needed.
  Result<int64_t> WriteBytes(InodeNum ino, int64_t offset, std::span<const char> src);
  Result<void> Truncate(InodeNum ino, int64_t new_size);
  int64_t SizeOf(InodeNum ino) const;

  // Zero-copy view of the whole file's contents (mmap support). The view is
  // invalidated by any operation that changes the file's size.
  Result<std::string_view> ContentView(InodeNum ino) const;

  // ---- data-plane cost model ----
  virtual bool read_only() const { return false; }
  // Device time to fetch pages [first_page, first_page + count) of `ino` from
  // the backing store into memory.
  virtual Result<Duration> ReadPagesFromStore(InodeNum ino, int64_t first_page,
                                              int64_t count) = 0;
  // Device time to write those pages back.
  virtual Result<Duration> WritePagesToStore(InodeNum ino, int64_t first_page,
                                             int64_t count) = 0;
  // Index (into Levels()) of the storage level currently holding this page.
  virtual int LevelOf(InodeNum ino, int64_t page) const = 0;
  // Number of consecutive pages starting at `page` (at least 1, at most
  // `max_pages`) whose LevelOf equals LevelOf(ino, page). Semantically
  // identical to probing LevelOf page by page; concrete file systems whose
  // geometry makes the answer O(1) override it so the kernel SLED scan costs
  // O(level runs) wall-clock instead of O(pages).
  virtual int64_t LevelRunLen(InodeNum ino, int64_t page, int64_t max_pages) const;
  virtual std::vector<StorageLevelInfo> Levels() const = 0;

  // Which storage level the kernel SLED scan should *advertise* for this
  // page when the consumer ranks by `rank_by`. For single-copy file systems
  // this is LevelOf — the page is where it is. File systems holding several
  // equivalent copies (replication) override it to route: report the replica
  // that minimizes the requested latency statistic, so a rank_by=p99 picker
  // sees the tail-safe copy's estimate rather than the primary's.
  virtual int RouteLevelOf(InodeNum ino, int64_t page, RankBy /*rank_by*/) const {
    return LevelOf(ino, page);
  }

  // Flat device byte address backing `page` of `ino`, or -1 when the file
  // system cannot map pages to a single flat address space (multi-level
  // stores, offline HSM data). The I/O engine's C-LOOK elevator sorts by
  // these addresses and its coalescer requires them to be adjacent.
  virtual int64_t DeviceAddressOf(InodeNum /*ino*/, int64_t /*page*/) const { return -1; }

  // The device whose mechanics service this file system's request queue, or
  // nullptr when no single device dominates (the queue then degrades to FIFO
  // order with nominal-cost planning).
  virtual StorageDevice* PrimaryDevice() { return nullptr; }

  // Health of one *local* storage level, for SLED construction: a level in a
  // down window reports unavailable (its SLED latency balloons so pickers
  // prune or defer it — the paper's degraded-NFS story); a slow window
  // reports latency_factor > 1. Default: always healthy.
  virtual DeviceHealth LevelHealth(int /*local_level*/) const { return DeviceHealth{}; }

  // Is the file system reachable at all right now? Metadata syscalls (Fstat)
  // check this so a down server surfaces as kTimedOut without touching data.
  // Default: always reachable.
  virtual Result<void> CheckAvailable() const { return Result<void>::Ok(); }

  // Estimated device time to write pages back, without performing the write
  // or disturbing device state — writeback-drain planning. Defaults to the
  // nominal characterization of the pages' current level.
  virtual Result<Duration> EstimateWritePages(InodeNum ino, int64_t first_page, int64_t count);

  // Perform deferred background work — replica re-sync after an outage
  // window, scrubbing, compaction. Driven by SimKernel::RunMaintenance();
  // returns the device time consumed (charged to the clock, no process).
  // Default: nothing to do.
  virtual Result<Duration> BackgroundMaintenance() { return Duration(); }

  // Attach the kernel's observability sink. Concrete file systems forward
  // the observer to their storage devices; pure instrumentation, no effect
  // on any modeled cost. Called by the VFS at mount time.
  virtual void AttachObserver(Observer* obs) { obs_ = obs; }

 protected:
  Observer* observer() const { return obs_; }

 protected:
  // Allocation hook invoked after any size change (append, truncate). Gives
  // concrete file systems a chance to (de)allocate backing extents.
  virtual Result<void> OnResize(InodeNum ino, int64_t old_size, int64_t new_size) = 0;

  // Subclass override to veto mutation (read-only media): checked before any
  // namespace or content mutation.
  virtual Result<void> CheckWritable() const;

  // Per-inode mutation veto, checked before WriteBytes/Truncate even when no
  // resize happens (HSM: writing an offline file requires an explicit
  // recall first).
  virtual Result<void> CheckInodeWritable(InodeNum /*ino*/) const {
    return Result<void>::Ok();
  }

 private:
  struct Inode {
    bool is_dir = false;
    std::string data;                        // file contents
    std::map<std::string, InodeNum> children;  // directory entries (sorted)
  };

  Result<const Inode*> FindInode(InodeNum ino) const;
  Result<Inode*> FindInode(InodeNum ino);
  Result<InodeNum> CreateNode(InodeNum dir, std::string_view child, bool is_dir);

  std::string name_;
  std::unordered_map<InodeNum, Inode> inodes_;
  InodeNum next_ino_ = kRootIno + 1;
  Observer* obs_ = nullptr;
};

}  // namespace sled

#endif  // SLEDS_SRC_FS_FILESYSTEM_H_
