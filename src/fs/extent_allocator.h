// Extent-based block allocation on a flat device address space, shared by the
// concrete file systems. Tracks, per inode, the list of device extents
// backing its pages and charges device time for page-range transfers by
// splitting them into per-extent runs (a run that continues the device's
// current stream pays no positioning cost; see StorageDevice).
//
// Allocation is bump-pointer with a configurable maximum extent length and an
// optional inter-extent gap, which models file-system aging/fragmentation for
// ablation experiments (a fragmented file pays one reposition per extent).
#ifndef SLEDS_SRC_FS_EXTENT_ALLOCATOR_H_
#define SLEDS_SRC_FS_EXTENT_ALLOCATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/units.h"
#include "src/device/device.h"
#include "src/fs/filesystem.h"

namespace sled {

struct ExtentAllocatorConfig {
  // Longest contiguous run handed to a single file. Defaults to "effectively
  // contiguous" (modern allocators get close for streaming writes).
  int64_t max_extent_bytes = 1LL << 40;
  // Device bytes skipped between consecutive extents of the same file;
  // non-zero values simulate an aged, fragmented file system.
  int64_t inter_extent_gap_bytes = 0;
  // First usable device byte (reserved area for superblock/metadata).
  int64_t base_offset = kPageSize;
};

class ExtentAllocator {
 public:
  struct Extent {
    int64_t logical_start = 0;  // byte offset within the file
    int64_t device_start = 0;   // byte address on the device
    int64_t length = 0;         // bytes
  };

  ExtentAllocator(StorageDevice* device, ExtentAllocatorConfig config);

  // Grow/shrink the allocation for `ino` to cover `new_size` bytes (rounded
  // up to whole pages). Shrinking frees nothing (bump allocator) but forgets
  // extents beyond the new size. Growing returns kNoSpc when the device is
  // exhausted.
  Result<void> Resize(InodeNum ino, int64_t new_size);

  // Remove all allocation state for an inode.
  void Free(InodeNum ino);

  // Device time to transfer pages [first_page, first_page+count). Walks the
  // extent list; each extent crossing is a separate device access.
  Result<Duration> TransferPages(InodeNum ino, int64_t first_page, int64_t count, bool writing);

  // Like TransferPages, but using the device's estimate: no device state
  // changes, no stats. Honest about write asymmetry via EstimateWrite.
  Result<Duration> EstimateTransferPages(InodeNum ino, int64_t first_page, int64_t count,
                                         bool writing) const;

  // Device address backing a logical byte offset (for tests/debugging).
  Result<int64_t> DeviceAddressOf(InodeNum ino, int64_t logical_offset) const;

  // Number of extents currently backing the inode.
  int64_t ExtentCountOf(InodeNum ino) const;

  StorageDevice* device() const { return device_; }
  int64_t allocated_bytes() const { return next_free_ - config_.base_offset; }

 private:
  // Allocated (page-aligned) bytes currently backing `ino`.
  int64_t AllocatedSizeOf(const std::vector<Extent>& extents) const;

  StorageDevice* device_;
  ExtentAllocatorConfig config_;
  int64_t next_free_;
  std::unordered_map<InodeNum, std::vector<Extent>> extents_;
};

}  // namespace sled

#endif  // SLEDS_SRC_FS_EXTENT_ALLOCATOR_H_
