// Hierarchical storage management file system: a disk staging area in front
// of a robotic tape library.
//
// The paper's headline motivation (§1) is HSM, where latencies span eleven
// orders of magnitude, but its experiments only cover disk/CD/NFS; HSM is
// "expected to benefit more" (§5) and a Linux migrating HSM is named as
// future work (§6). This module builds that testbed:
//
//   * new files are created *staged* on the disk staging area;
//   * Migrate() copies a staged file to a tape and releases its staging
//     space (policy: the tape with most free space);
//   * reading an offline file triggers a *recall* — tape mount + locate +
//     read — and (with stage_on_read) re-stages the whole file on disk,
//     evicting least-recently-used staged files when the staging budget is
//     exceeded;
//   * writes to offline files fail with kNotSup until the caller Recall()s
//     them (the behaviour of classic HSMs).
//
// Storage levels (for SLEDs): 0 = staging disk, 1 = tape mounted in a drive,
// 2 = tape offline in the library. find -latency can therefore distinguish
// "cheap", "seconds", and "minutes" classes of file exactly as §4.3 suggests.
#ifndef SLEDS_SRC_FS_HSM_FS_H_
#define SLEDS_SRC_FS_HSM_FS_H_

#include <list>
#include <memory>
#include <unordered_map>

#include "src/device/disk_device.h"
#include "src/device/tape_device.h"
#include "src/fs/extent_allocator.h"
#include "src/fs/filesystem.h"

namespace sled {

struct HsmFsConfig {
  DiskDeviceConfig staging_disk;
  // Logical staging budget; eviction begins above this. Defaults to the
  // whole staging disk.
  int64_t staging_capacity_bytes = 0;
  int num_tapes = 8;
  int num_drives = 1;
  TapeDeviceConfig tape;
  Duration exchange_time = Seconds(10);
  // Recall the whole file to the staging disk on first read (classic HSM);
  // when false, offline reads stream directly from tape and only the page
  // cache retains them.
  bool stage_on_read = true;
};

class HsmFs final : public FileSystem {
 public:
  explicit HsmFs(std::string name, HsmFsConfig config);

  // ---- FileSystem data plane ----
  Result<Duration> ReadPagesFromStore(InodeNum ino, int64_t first_page, int64_t count) override;
  Result<Duration> WritePagesToStore(InodeNum ino, int64_t first_page, int64_t count) override;
  int LevelOf(InodeNum ino, int64_t page) const override;
  // A file is staged or on tape as a whole: its level is page-independent.
  int64_t LevelRunLen(InodeNum /*ino*/, int64_t /*page*/, int64_t max_pages) const override {
    return max_pages;
  }
  std::vector<StorageLevelInfo> Levels() const override;
  // Staged files map through the staging allocator; offline data has no flat
  // address (-1), so the I/O engine's elevator degrades to FIFO for recalls.
  int64_t DeviceAddressOf(InodeNum ino, int64_t page) const override;
  StorageDevice* PrimaryDevice() override { return staging_device_.get(); }
  // Staging-disk health covers the disk level; both tape levels follow the
  // library's composed health, so a down or slow window on any cartridge
  // inflates (or prunes) the tape-level SLEDs instead of being silently
  // reported healthy.
  DeviceHealth LevelHealth(int local_level) const override {
    if (local_level == kLevelDisk) {
      return staging_device_->Health();
    }
    if (local_level == kLevelTapeNear || local_level == kLevelTapeFar) {
      return changer_.Health();
    }
    return DeviceHealth{};
  }
  Result<Duration> EstimateWritePages(InodeNum ino, int64_t first_page, int64_t count) override;

  // ---- HSM management ----
  // Copy a staged file to tape and release its staging space. Returns the
  // device time consumed. No-op cost if already migrated and clean.
  Result<Duration> Migrate(InodeNum ino);
  // Bring an offline file back to the staging area (explicit recall).
  Result<Duration> Recall(InodeNum ino);

  // Recall several offline files. Files are grouped by tape (the mounted
  // tape's group goes first to avoid a pointless exchange); within each tape
  // the recalls are ordered by the locate-aware scheduler (device/
  // tape_schedule.h) instead of argument order. `scheduled = false` keeps
  // argument order within each tape — the FIFO baseline. Staged files are
  // skipped. Returns total device time.
  Result<Duration> RecallBatch(const std::vector<InodeNum>& inos, bool scheduled = true);

  void AttachObserver(Observer* obs) override {
    FileSystem::AttachObserver(obs);
    staging_device_->AttachObserver(obs);
    changer_.AttachObserver(obs);
  }

  bool IsStaged(InodeNum ino) const;
  bool IsOnTape(InodeNum ino) const;
  // Tape index holding the file's offline copy; -1 if none.
  int TapeOf(InodeNum ino) const;

  Autochanger& changer() { return changer_; }
  const Autochanger& changer() const { return changer_; }
  int64_t staged_bytes() const { return staged_bytes_; }

  static constexpr int kLevelDisk = 0;
  static constexpr int kLevelTapeNear = 1;
  static constexpr int kLevelTapeFar = 2;

 protected:
  Result<void> OnResize(InodeNum ino, int64_t old_size, int64_t new_size) override;
  Result<void> CheckInodeWritable(InodeNum ino) const override {
    const HsmState* s = FindState(ino);
    if (s != nullptr && !s->staged && s->tape_index >= 0) {
      return Err::kNotSup;  // offline: Recall() first
    }
    return Result<void>::Ok();
  }

 private:
  struct HsmState {
    bool staged = false;
    bool staged_dirty = false;  // staged copy differs from (or lacks) a tape copy
    int tape_index = -1;
    int64_t tape_offset = 0;
    int64_t tape_length = 0;  // bytes valid on tape
  };

  HsmState& StateOf(InodeNum ino);
  const HsmState* FindState(InodeNum ino) const;
  void TouchStagedLru(InodeNum ino);
  // Evict LRU staged files until the staging budget holds `need` more bytes.
  // Dirty/unmigrated victims are migrated first (cost accumulates into *t).
  Result<void> MakeStagingRoom(int64_t need, Duration* t);
  // Copy the file's bytes disk->tape. Chooses a tape, appends, updates state.
  Result<Duration> CopyToTape(InodeNum ino);

  HsmFsConfig config_;
  std::unique_ptr<DiskDevice> staging_device_;
  ExtentAllocator staging_;
  Autochanger changer_;
  std::vector<int64_t> tape_free_offset_;  // append position per tape
  std::unordered_map<InodeNum, HsmState> state_;
  std::list<InodeNum> staged_lru_;  // least recently used first
  int64_t staged_bytes_ = 0;
};

}  // namespace sled

#endif  // SLEDS_SRC_FS_HSM_FS_H_
