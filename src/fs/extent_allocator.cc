#include "src/fs/extent_allocator.h"

#include <algorithm>

#include "src/common/log.h"

namespace sled {

ExtentAllocator::ExtentAllocator(StorageDevice* device, ExtentAllocatorConfig config)
    : device_(device), config_(config), next_free_(config.base_offset) {
  SLED_CHECK(device_ != nullptr, "extent allocator needs a device");
  SLED_CHECK(config_.max_extent_bytes >= kPageSize, "max extent below page size");
}

int64_t ExtentAllocator::AllocatedSizeOf(const std::vector<Extent>& extents) const {
  int64_t total = 0;
  for (const Extent& e : extents) {
    total += e.length;
  }
  return total;
}

Result<void> ExtentAllocator::Resize(InodeNum ino, int64_t new_size) {
  std::vector<Extent>& extents = extents_[ino];
  const int64_t target = PageCeil(new_size);
  int64_t have = AllocatedSizeOf(extents);

  if (target < have) {
    // Shrink: trim extents past the target; freed space is not reused.
    while (!extents.empty()) {
      Extent& last = extents.back();
      if (last.logical_start >= target) {
        extents.pop_back();
      } else if (last.logical_start + last.length > target) {
        last.length = target - last.logical_start;
        break;
      } else {
        break;
      }
    }
    return Result<void>::Ok();
  }

  while (have < target) {
    const int64_t want = std::min(target - have, config_.max_extent_bytes);
    if (next_free_ + want > device_->capacity_bytes()) {
      return Err::kNoSpc;
    }
    // Coalesce with the previous extent when device-contiguous.
    if (!extents.empty()) {
      Extent& last = extents.back();
      if (last.device_start + last.length == next_free_ &&
          config_.inter_extent_gap_bytes == 0 && last.length + want <= config_.max_extent_bytes) {
        last.length += want;
        next_free_ += want;
        have += want;
        continue;
      }
    }
    extents.push_back({have, next_free_, want});
    next_free_ += want + config_.inter_extent_gap_bytes;
    have += want;
  }
  return Result<void>::Ok();
}

void ExtentAllocator::Free(InodeNum ino) { extents_.erase(ino); }

Result<Duration> ExtentAllocator::TransferPages(InodeNum ino, int64_t first_page, int64_t count,
                                                bool writing) {
  auto it = extents_.find(ino);
  if (it == extents_.end()) {
    return Err::kIo;
  }
  const std::vector<Extent>& extents = it->second;
  int64_t begin = first_page * kPageSize;
  int64_t remaining = count * kPageSize;
  Duration total;
  for (const Extent& e : extents) {
    if (remaining <= 0) {
      break;
    }
    const int64_t e_end = e.logical_start + e.length;
    if (e_end <= begin) {
      continue;
    }
    if (e.logical_start >= begin + remaining) {
      break;
    }
    const int64_t run_start = std::max(begin, e.logical_start);
    const int64_t run_len = std::min(begin + remaining, e_end) - run_start;
    const int64_t dev_off = e.device_start + (run_start - e.logical_start);
    SLED_ASSIGN_OR_RETURN(Duration t, writing ? device_->Write(dev_off, run_len)
                                              : device_->Read(dev_off, run_len));
    total += t;
    begin += run_len;
    remaining -= run_len;
  }
  if (remaining > 0) {
    return Err::kIo;  // range extends past the allocation
  }
  return total;
}

Result<Duration> ExtentAllocator::EstimateTransferPages(InodeNum ino, int64_t first_page,
                                                        int64_t count, bool writing) const {
  auto it = extents_.find(ino);
  if (it == extents_.end()) {
    return Err::kIo;
  }
  int64_t begin = first_page * kPageSize;
  int64_t remaining = count * kPageSize;
  Duration total;
  for (const Extent& e : it->second) {
    if (remaining <= 0) {
      break;
    }
    const int64_t e_end = e.logical_start + e.length;
    if (e_end <= begin) {
      continue;
    }
    if (e.logical_start >= begin + remaining) {
      break;
    }
    const int64_t run_start = std::max(begin, e.logical_start);
    const int64_t run_len = std::min(begin + remaining, e_end) - run_start;
    const int64_t dev_off = e.device_start + (run_start - e.logical_start);
    total += writing ? device_->EstimateWrite(dev_off, run_len) : device_->Estimate(dev_off, run_len);
    begin += run_len;
    remaining -= run_len;
  }
  if (remaining > 0) {
    return Err::kIo;
  }
  return total;
}

Result<int64_t> ExtentAllocator::DeviceAddressOf(InodeNum ino, int64_t logical_offset) const {
  auto it = extents_.find(ino);
  if (it == extents_.end()) {
    return Err::kIo;
  }
  for (const Extent& e : it->second) {
    if (logical_offset >= e.logical_start && logical_offset < e.logical_start + e.length) {
      return e.device_start + (logical_offset - e.logical_start);
    }
  }
  return Err::kIo;
}

int64_t ExtentAllocator::ExtentCountOf(InodeNum ino) const {
  auto it = extents_.find(ino);
  return it == extents_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

}  // namespace sled
