// Shared implementation for single-device, extent-allocated file systems:
// ExtFs (hard disk), IsoFs (CD-ROM, sealed read-only), NfsFs (remote store).
// Each exposes exactly one storage level — the backing device.
#ifndef SLEDS_SRC_FS_EXTENT_FILE_SYSTEM_H_
#define SLEDS_SRC_FS_EXTENT_FILE_SYSTEM_H_

#include <memory>

#include "src/device/disk_device.h"

#include "src/fs/extent_allocator.h"
#include "src/fs/filesystem.h"

namespace sled {

class ExtentFileSystem : public FileSystem {
 public:
  // `per_zone_levels` implements the paper's §4.1 future-work item: "The
  // current implementation keeps only a single entry per device; for better
  // accuracy, entries which account for the different bandwidths of
  // different disk zones will be added in a future version [Van97]." When
  // enabled (and the device is a zoned DiskDevice), every recording zone
  // registers its own sleds_table row and LevelOf maps each page through its
  // device address to the zone actually holding it.
  ExtentFileSystem(std::string name, std::unique_ptr<StorageDevice> device,
                   ExtentAllocatorConfig alloc_config, bool per_zone_levels = false);

  Result<Duration> ReadPagesFromStore(InodeNum ino, int64_t first_page,
                                      int64_t count) override;
  Result<Duration> WritePagesToStore(InodeNum ino, int64_t first_page, int64_t count) override;
  int LevelOf(InodeNum ino, int64_t page) const override;
  int64_t LevelRunLen(InodeNum ino, int64_t page, int64_t max_pages) const override;
  std::vector<StorageLevelInfo> Levels() const override;
  int64_t DeviceAddressOf(InodeNum ino, int64_t page) const override {
    Result<int64_t> addr = allocator_.DeviceAddressOf(ino, page * kPageSize);
    // Not an error swallow: -1 is this interface's documented "no flat
    // address" value (unallocated sparse page), handled by the elevator.
    return addr.ok() ? *addr : -1;
  }
  StorageDevice* PrimaryDevice() override { return device_.get(); }
  // Every level (zoned or not) is the one backing device.
  DeviceHealth LevelHealth(int /*local_level*/) const override { return device_->Health(); }
  Result<Duration> EstimateWritePages(InodeNum ino, int64_t first_page, int64_t count) override {
    return allocator_.EstimateTransferPages(ino, first_page, count, /*writing=*/true);
  }

  void AttachObserver(Observer* obs) override {
    FileSystem::AttachObserver(obs);
    device_->AttachObserver(obs);
  }

  StorageDevice& device() { return *device_; }
  const StorageDevice& device() const { return *device_; }
  ExtentAllocator& allocator() { return allocator_; }
  bool per_zone_levels() const { return zoned_ != nullptr; }

 protected:
  Result<void> OnResize(InodeNum ino, int64_t old_size, int64_t new_size) override;

 private:
  std::unique_ptr<StorageDevice> device_;
  ExtentAllocator allocator_;
  // Non-null when per-zone levels are active; points into *device_.
  const DiskDevice* zoned_ = nullptr;
  int num_zones_ = 1;
};

// ext2-style local disk file system.
class ExtFs final : public ExtentFileSystem {
 public:
  ExtFs(std::string name, std::unique_ptr<StorageDevice> disk,
        ExtentAllocatorConfig alloc_config = {}, bool per_zone_levels = false)
      : ExtentFileSystem(std::move(name), std::move(disk), alloc_config, per_zone_levels) {}
};

// NFS-style remote file system; identical mechanics over a NetworkDevice
// (whose cost model charges RPC latency on stream breaks).
class NfsFs final : public ExtentFileSystem {
 public:
  NfsFs(std::string name, std::unique_ptr<StorageDevice> remote,
        ExtentAllocatorConfig alloc_config = {})
      : ExtentFileSystem(std::move(name), std::move(remote), alloc_config) {}
};

// ISO9660-style mastered medium: writable while being authored, read-only
// after Seal(). Files are laid out contiguously, as on a real pressed disc.
class IsoFs final : public ExtentFileSystem {
 public:
  IsoFs(std::string name, std::unique_ptr<StorageDevice> cdrom,
        ExtentAllocatorConfig alloc_config = {})
      : ExtentFileSystem(std::move(name), std::move(cdrom), alloc_config) {}

  // Finish mastering: all subsequent mutations fail with EROFS.
  void Seal() { sealed_ = true; }
  bool sealed() const { return sealed_; }
  bool read_only() const override { return sealed_; }

 protected:
  Result<void> CheckWritable() const override {
    if (sealed_) {
      return Err::kRofs;
    }
    return Result<void>::Ok();
  }

 private:
  bool sealed_ = false;
};

}  // namespace sled

#endif  // SLEDS_SRC_FS_EXTENT_FILE_SYSTEM_H_
