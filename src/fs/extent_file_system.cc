#include "src/fs/extent_file_system.h"

namespace sled {

ExtentFileSystem::ExtentFileSystem(std::string name, std::unique_ptr<StorageDevice> device,
                                   ExtentAllocatorConfig alloc_config, bool per_zone_levels)
    : FileSystem(std::move(name)),
      device_(std::move(device)),
      allocator_(device_.get(), alloc_config) {
  device_->InjectFaults(FaultPlan::FromEnv(device_->name()));
  if (per_zone_levels) {
    zoned_ = dynamic_cast<const DiskDevice*>(device_.get());
    if (zoned_ != nullptr) {
      num_zones_ = zoned_->num_zones();
      if (num_zones_ < 2) {
        zoned_ = nullptr;  // single zone: nothing to distinguish
        num_zones_ = 1;
      }
    }
  }
}

Result<Duration> ExtentFileSystem::ReadPagesFromStore(InodeNum ino, int64_t first_page,
                                                      int64_t count) {
  return allocator_.TransferPages(ino, first_page, count, /*writing=*/false);
}

Result<Duration> ExtentFileSystem::WritePagesToStore(InodeNum ino, int64_t first_page,
                                                     int64_t count) {
  return allocator_.TransferPages(ino, first_page, count, /*writing=*/true);
}

int ExtentFileSystem::LevelOf(InodeNum ino, int64_t page) const {
  if (zoned_ == nullptr) {
    return 0;
  }
  auto addr = allocator_.DeviceAddressOf(ino, page * kPageSize);
  if (!addr.ok()) {
    return 0;  // unallocated (sparse); report the outermost zone
  }
  // Divide by the zone width; `addr * num_zones` overflows int64 for
  // multi-TB devices with many zones.
  const int64_t zone_bytes = device_->capacity_bytes() / num_zones_;
  const int zone = static_cast<int>(addr.value() / zone_bytes);
  return std::min(zone, num_zones_ - 1);
}

int64_t ExtentFileSystem::LevelRunLen(InodeNum ino, int64_t page, int64_t max_pages) const {
  if (zoned_ == nullptr) {
    return max_pages;  // single level: every page of the device matches
  }
  // Zoned layout: the level follows the extent map; fall back to probing.
  return FileSystem::LevelRunLen(ino, page, max_pages);
}

std::vector<StorageLevelInfo> ExtentFileSystem::Levels() const {
  if (zoned_ == nullptr) {
    return {{std::string(device_->name()), device_->Nominal()}};
  }
  // One row per recording zone: same positioning latency, the zone's own
  // media rate (measured at the zone's midpoint).
  std::vector<StorageLevelInfo> levels;
  const DeviceCharacteristics nominal = device_->Nominal();
  const int64_t zone_span = device_->capacity_bytes() / num_zones_;
  for (int z = 0; z < num_zones_; ++z) {
    StorageLevelInfo level;
    level.name = std::string(device_->name()) + "-z" + std::to_string(z);
    level.nominal.latency = nominal.latency;
    level.nominal.bandwidth_bps = zoned_->BandwidthAt(z * zone_span + zone_span / 2);
    levels.push_back(std::move(level));
  }
  return levels;
}

Result<void> ExtentFileSystem::OnResize(InodeNum ino, int64_t /*old_size*/, int64_t new_size) {
  if (new_size == 0) {
    allocator_.Free(ino);  // unlink or truncate-to-zero; Resize recreates on regrowth
    return Result<void>::Ok();
  }
  return allocator_.Resize(ino, new_size);
}

}  // namespace sled
