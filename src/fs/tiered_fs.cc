#include "src/fs/tiered_fs.h"

#include <algorithm>

#include "src/common/log.h"

namespace sled {

TieredFs::TieredFs(std::string name, std::unique_ptr<StorageDevice> fast,
                   std::unique_ptr<StorageDevice> slow, TieredFsConfig config)
    : FileSystem(std::move(name)), config_(config) {
  SLED_CHECK(fast != nullptr && slow != nullptr, "tiered fs needs two devices");
  SLED_CHECK(config_.stripe_pages >= 1, "stripe must be at least one page");
  devices_[0] = std::move(fast);
  devices_[1] = std::move(slow);
  // Reserve the first page of each device for metadata, as the extent
  // allocator does.
  next_free_[0] = kPageSize;
  next_free_[1] = kPageSize;
}

void TieredFs::AttachObserver(Observer* obs) {
  FileSystem::AttachObserver(obs);
  devices_[0]->AttachObserver(obs);
  devices_[1]->AttachObserver(obs);
}

DeviceHealth TieredFs::LevelHealth(int local_level) const {
  if (local_level < 0 || local_level > 1) {
    return DeviceHealth{};
  }
  return devices_[static_cast<size_t>(local_level)]->Health();
}

std::vector<StorageLevelInfo> TieredFs::Levels() const {
  return {{std::string(devices_[0]->name()), devices_[0]->Nominal()},
          {std::string(devices_[1]->name()), devices_[1]->Nominal()}};
}

Result<void> TieredFs::OnResize(InodeNum ino, int64_t /*old_size*/, int64_t new_size) {
  if (new_size == 0) {
    regions_.erase(ino);
    return Result<void>::Ok();
  }
  const int64_t span = (new_size + kPageSize - 1) / kPageSize;
  Region& r = regions_[ino];
  if (span <= r.pages) {
    return Result<void>::Ok();  // shrink: keep the regions (bump allocator)
  }
  // Grow: reserve a fresh contiguous region per tier covering the whole span
  // (the old one is abandoned — bump allocation, like the extent allocator).
  // Each region is indexed by the *logical* page, so both tiers reserve the
  // full span; the idle half of each stripe is simply never addressed.
  int64_t base[2];
  for (int t = 0; t < 2; ++t) {
    if (next_free_[t] + span * kPageSize > devices_[t]->capacity_bytes()) {
      return Err::kNoSpc;
    }
    base[t] = next_free_[t];
  }
  for (int t = 0; t < 2; ++t) {
    r.base[t] = base[t];
    next_free_[t] = base[t] + span * kPageSize;
  }
  r.pages = span;
  return Result<void>::Ok();
}

Result<int64_t> TieredFs::TierAddressOf(InodeNum ino, int64_t page) const {
  const auto it = regions_.find(ino);
  if (it == regions_.end() || page >= it->second.pages) {
    return Err::kInval;
  }
  const int tier = LevelOf(ino, page);
  return it->second.base[tier] + page * kPageSize;
}

template <typename Op>
Result<Duration> TieredFs::ForEachRun(InodeNum ino, int64_t first_page, int64_t count, Op op) {
  Duration total;
  int64_t page = first_page;
  const int64_t end = first_page + count;
  while (page < end) {
    const int64_t run = LevelRunLen(ino, page, end - page);
    const int tier = LevelOf(ino, page);
    SLED_ASSIGN_OR_RETURN(const int64_t addr, TierAddressOf(ino, page));
    SLED_ASSIGN_OR_RETURN(const Duration t,
                          op(*devices_[static_cast<size_t>(tier)], addr, run * kPageSize));
    total += t;
    page += run;
  }
  return total;
}

Result<Duration> TieredFs::ReadPagesFromStore(InodeNum ino, int64_t first_page, int64_t count) {
  return ForEachRun(ino, first_page, count,
                    [](StorageDevice& dev, int64_t addr, int64_t nbytes) {
                      return dev.Read(addr, nbytes);
                    });
}

Result<Duration> TieredFs::WritePagesToStore(InodeNum ino, int64_t first_page, int64_t count) {
  return ForEachRun(ino, first_page, count,
                    [](StorageDevice& dev, int64_t addr, int64_t nbytes) {
                      return dev.Write(addr, nbytes);
                    });
}

Result<Duration> TieredFs::EstimateWritePages(InodeNum ino, int64_t first_page, int64_t count) {
  return ForEachRun(ino, first_page, count,
                    [](StorageDevice& dev, int64_t addr, int64_t nbytes) {
                      return Result<Duration>(dev.EstimateWrite(addr, nbytes));
                    });
}

}  // namespace sled
