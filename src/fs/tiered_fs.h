// Tiered file system: one namespace striped across two storage devices.
//
// Every file's pages alternate between tier 0 and tier 1 in fixed-size
// stripes, the way a volume manager or tiering layer interleaves an SSD with
// a disk. The point for SLEDs is that a *single fd* then spans levels with
// different latency distributions: a mean-ranked picker and a p99-ranked
// picker genuinely disagree about which half of the file to consume first
// whenever one tier's tail is fat (an SSD inside a GC window has a cheaper
// mean than the disk but a far worse p99). This is the testbed for
// rank_by — no single-device file system can pose the question.
#ifndef SLEDS_SRC_FS_TIERED_FS_H_
#define SLEDS_SRC_FS_TIERED_FS_H_

#include <memory>
#include <unordered_map>

#include "src/fs/filesystem.h"

namespace sled {

struct TieredFsConfig {
  // Pages per stripe before switching to the other tier.
  int64_t stripe_pages = 64;
};

class TieredFs final : public FileSystem {
 public:
  // `fast` becomes tier/level 0, `slow` level 1. Stripe k of a file lives on
  // tier k % 2.
  TieredFs(std::string name, std::unique_ptr<StorageDevice> fast,
           std::unique_ptr<StorageDevice> slow, TieredFsConfig config = {});

  Result<Duration> ReadPagesFromStore(InodeNum ino, int64_t first_page, int64_t count) override;
  Result<Duration> WritePagesToStore(InodeNum ino, int64_t first_page, int64_t count) override;
  Result<Duration> EstimateWritePages(InodeNum ino, int64_t first_page, int64_t count) override;
  int LevelOf(InodeNum /*ino*/, int64_t page) const override {
    return static_cast<int>((page / config_.stripe_pages) % 2);
  }
  int64_t LevelRunLen(InodeNum /*ino*/, int64_t page, int64_t max_pages) const override {
    // O(1): a level run ends at the stripe boundary.
    const int64_t left = config_.stripe_pages - page % config_.stripe_pages;
    return std::min(left, max_pages);
  }
  std::vector<StorageLevelInfo> Levels() const override;
  // Two devices share the queue: no flat address space, no single elevator.
  int64_t DeviceAddressOf(InodeNum /*ino*/, int64_t /*page*/) const override { return -1; }
  StorageDevice* PrimaryDevice() override { return nullptr; }
  DeviceHealth LevelHealth(int local_level) const override;

  void AttachObserver(Observer* obs) override;

  StorageDevice& tier(int level) { return *devices_[static_cast<size_t>(level) & 1]; }

 protected:
  Result<void> OnResize(InodeNum ino, int64_t old_size, int64_t new_size) override;

 private:
  // Device time (or estimate) to move pages [first, first+count), stripe run
  // by stripe run, each run on its own tier.
  template <typename Op>
  Result<Duration> ForEachRun(InodeNum ino, int64_t first_page, int64_t count, Op op);

  // Byte address of `page` on its tier's device. Each inode reserves a
  // contiguous region per tier covering its full page span (simple and
  // sparse-friendly; the region index is the logical page itself).
  Result<int64_t> TierAddressOf(InodeNum ino, int64_t page) const;

  TieredFsConfig config_;
  std::unique_ptr<StorageDevice> devices_[2];
  struct Region {
    int64_t base[2] = {-1, -1};  // per-tier region start (device bytes)
    int64_t pages = 0;           // logical pages the regions cover
  };
  std::unordered_map<InodeNum, Region> regions_;
  int64_t next_free_[2];  // per-tier bump pointer
};

}  // namespace sled

#endif  // SLEDS_SRC_FS_TIERED_FS_H_
