#include "src/fs/vfs.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/obs/observer.h"

namespace sled {

Result<std::vector<std::string>> Vfs::SplitPath(std::string_view path) {
  if (path.empty() || path[0] != '/') {
    return Err::kInval;
  }
  std::vector<std::string> components;
  size_t i = 1;
  while (i <= path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string_view::npos) {
      j = path.size();
    }
    std::string_view part = path.substr(i, j - i);
    if (part.empty() || part == ".") {
      // skip
    } else if (part == "..") {
      if (!components.empty()) {
        components.pop_back();
      }
    } else {
      components.emplace_back(part);
    }
    i = j + 1;
  }
  return components;
}

Result<uint32_t> Vfs::Mount(std::string path, std::unique_ptr<FileSystem> fs) {
  SLED_CHECK(fs != nullptr, "Mount of null file system");
  SLED_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  std::string normalized = "/";
  for (size_t i = 0; i < components.size(); ++i) {
    normalized += components[i];
    if (i + 1 < components.size()) {
      normalized += '/';
    }
  }
  for (const MountEntry& m : mounts_) {
    if (m.path == normalized) {
      return Err::kExist;
    }
  }
  MountEntry entry;
  entry.path = normalized;
  entry.fs_id = next_fs_id_++;
  entry.fs = std::move(fs);
  if (obs_ != nullptr) {
    entry.fs->AttachObserver(obs_);
  }
  mounts_.push_back(std::move(entry));
  // Longest paths first so prefix matching finds the deepest mount.
  std::sort(mounts_.begin(), mounts_.end(),
            [](const MountEntry& a, const MountEntry& b) { return a.path.size() > b.path.size(); });
  for (const MountEntry& m : mounts_) {
    if (m.path == normalized) {
      return m.fs_id;
    }
  }
  return Err::kIo;  // unreachable
}

const Vfs::MountEntry* Vfs::FindMount(const std::vector<std::string>& components,
                                      size_t* consumed) const {
  for (const MountEntry& m : mounts_) {
    // Split the mount path into components for comparison.
    std::vector<std::string> mcomp;
    if (m.path != "/") {
      size_t i = 1;
      while (i <= m.path.size()) {
        size_t j = m.path.find('/', i);
        if (j == std::string::npos) {
          j = m.path.size();
        }
        mcomp.emplace_back(m.path.substr(i, j - i));
        i = j + 1;
      }
    }
    if (mcomp.size() > components.size()) {
      continue;
    }
    if (std::equal(mcomp.begin(), mcomp.end(), components.begin())) {
      *consumed = mcomp.size();
      return &m;
    }
  }
  return nullptr;
}

Result<Vfs::Resolved> Vfs::Resolve(std::string_view path) const {
  if (obs_ != nullptr) {
    obs_->VfsResolve();
  }
  SLED_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  size_t consumed = 0;
  const MountEntry* mount = FindMount(components, &consumed);
  if (mount == nullptr) {
    return Err::kNoEnt;
  }
  Resolved r{mount->fs.get(), mount->fs_id, mount->fs->root()};
  for (size_t i = consumed; i < components.size(); ++i) {
    SLED_ASSIGN_OR_RETURN(r.ino, r.fs->Lookup(r.ino, components[i]));
  }
  return r;
}

Result<Vfs::Resolved> Vfs::ResolveParent(std::string_view path, std::string* leaf) const {
  SLED_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  if (components.empty()) {
    return Err::kInval;  // cannot create/unlink the root
  }
  *leaf = components.back();
  components.pop_back();
  size_t consumed = 0;
  const MountEntry* mount = FindMount(components, &consumed);
  if (mount == nullptr) {
    return Err::kNoEnt;
  }
  Resolved r{mount->fs.get(), mount->fs_id, mount->fs->root()};
  for (size_t i = consumed; i < components.size(); ++i) {
    SLED_ASSIGN_OR_RETURN(r.ino, r.fs->Lookup(r.ino, components[i]));
  }
  return r;
}

Result<Vfs::Resolved> Vfs::CreateFile(std::string_view path) {
  std::string leaf;
  SLED_ASSIGN_OR_RETURN(Resolved parent, ResolveParent(path, &leaf));
  SLED_ASSIGN_OR_RETURN(InodeNum ino, parent.fs->CreateFile(parent.ino, leaf));
  return Resolved{parent.fs, parent.fs_id, ino};
}

Result<Vfs::Resolved> Vfs::CreateDir(std::string_view path) {
  std::string leaf;
  SLED_ASSIGN_OR_RETURN(Resolved parent, ResolveParent(path, &leaf));
  SLED_ASSIGN_OR_RETURN(InodeNum ino, parent.fs->CreateDir(parent.ino, leaf));
  return Resolved{parent.fs, parent.fs_id, ino};
}

Result<void> Vfs::Unlink(std::string_view path) {
  std::string leaf;
  SLED_ASSIGN_OR_RETURN(Resolved parent, ResolveParent(path, &leaf));
  return parent.fs->Unlink(parent.ino, leaf);
}

Result<InodeAttr> Vfs::Stat(std::string_view path) const {
  SLED_ASSIGN_OR_RETURN(Resolved r, Resolve(path));
  return r.fs->GetAttr(r.ino);
}

Result<std::vector<DirEntry>> Vfs::List(std::string_view path) const {
  SLED_ASSIGN_OR_RETURN(Resolved r, Resolve(path));
  SLED_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, r.fs->List(r.ino));
  // Mount points that are direct children of this directory appear in the
  // listing (as directories), exactly as on a real system.
  SLED_ASSIGN_OR_RETURN(std::vector<std::string> components, SplitPath(path));
  std::string normalized = "/";
  for (size_t i = 0; i < components.size(); ++i) {
    normalized += components[i];
    if (i + 1 < components.size()) {
      normalized += '/';
    }
  }
  const std::string prefix = normalized == "/" ? "/" : normalized + "/";
  for (const MountEntry& m : mounts_) {
    if (m.path.size() <= prefix.size() || m.path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string leaf = m.path.substr(prefix.size());
    if (leaf.find('/') != std::string::npos) {
      continue;  // deeper than one component
    }
    const bool already_listed =
        std::any_of(entries.begin(), entries.end(),
                    [&](const DirEntry& e) { return e.name == leaf; });
    if (!already_listed) {
      entries.push_back({leaf, m.fs->root(), true});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  return entries;
}

FileSystem* Vfs::FsById(uint32_t fs_id) const {
  for (const MountEntry& m : mounts_) {
    if (m.fs_id == fs_id) {
      return m.fs.get();
    }
  }
  return nullptr;
}

std::string Vfs::MountPathOf(uint32_t fs_id) const {
  for (const MountEntry& m : mounts_) {
    if (m.fs_id == fs_id) {
      return m.path;
    }
  }
  return "";
}

void Vfs::AttachObserver(Observer* obs) {
  obs_ = obs;
  for (MountEntry& m : mounts_) {
    m.fs->AttachObserver(obs);
  }
}

std::vector<std::pair<std::string, uint32_t>> Vfs::Mounts() const {
  std::vector<std::pair<std::string, uint32_t>> out;
  out.reserve(mounts_.size());
  for (const MountEntry& m : mounts_) {
    out.emplace_back(m.path, m.fs_id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sled
