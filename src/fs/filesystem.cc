#include "src/fs/filesystem.h"

#include <algorithm>

namespace sled {
namespace {

constexpr size_t kMaxNameLen = 255;

bool ValidName(std::string_view name) {
  return !name.empty() && name.size() <= kMaxNameLen && name != "." && name != ".." &&
         name.find('/') == std::string_view::npos;
}

}  // namespace

FileSystem::FileSystem(std::string name) : name_(std::move(name)) {
  Inode root;
  root.is_dir = true;
  inodes_.emplace(kRootIno, std::move(root));
}

Result<void> FileSystem::CheckWritable() const { return Result<void>::Ok(); }

int64_t FileSystem::LevelRunLen(InodeNum ino, int64_t page, int64_t max_pages) const {
  const int level = LevelOf(ino, page);
  int64_t n = 1;
  while (n < max_pages && LevelOf(ino, page + n) == level) {
    ++n;
  }
  return n;
}

Result<Duration> FileSystem::EstimateWritePages(InodeNum ino, int64_t first_page, int64_t count) {
  const std::vector<StorageLevelInfo> levels = Levels();
  const int level = LevelOf(ino, first_page);
  if (level < 0 || level >= static_cast<int>(levels.size())) {
    return Err::kIo;
  }
  const DeviceCharacteristics& c = levels[static_cast<size_t>(level)].nominal;
  return c.latency + TransferTime(count * kPageSize, c.bandwidth_bps);
}

Result<const FileSystem::Inode*> FileSystem::FindInode(InodeNum ino) const {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) {
    return Err::kNoEnt;
  }
  return &it->second;
}

Result<FileSystem::Inode*> FileSystem::FindInode(InodeNum ino) {
  auto it = inodes_.find(ino);
  if (it == inodes_.end()) {
    return Err::kNoEnt;
  }
  return &it->second;
}

Result<InodeNum> FileSystem::Lookup(InodeNum dir, std::string_view child) const {
  SLED_ASSIGN_OR_RETURN(const Inode* d, FindInode(dir));
  if (!d->is_dir) {
    return Err::kNotDir;
  }
  auto it = d->children.find(std::string(child));
  if (it == d->children.end()) {
    return Err::kNoEnt;
  }
  return it->second;
}

Result<InodeNum> FileSystem::CreateNode(InodeNum dir, std::string_view child, bool is_dir) {
  SLED_RETURN_IF_ERROR(CheckWritable());
  if (!ValidName(child)) {
    return child.size() > kMaxNameLen ? Err::kNameTooLong : Err::kInval;
  }
  SLED_ASSIGN_OR_RETURN(Inode* d, FindInode(dir));
  if (!d->is_dir) {
    return Err::kNotDir;
  }
  if (d->children.contains(std::string(child))) {
    return Err::kExist;
  }
  const InodeNum ino = next_ino_++;
  Inode node;
  node.is_dir = is_dir;
  inodes_.emplace(ino, std::move(node));
  // Re-find: the emplace may have invalidated `d`.
  inodes_.at(dir).children.emplace(std::string(child), ino);
  return ino;
}

Result<InodeNum> FileSystem::CreateFile(InodeNum dir, std::string_view child) {
  return CreateNode(dir, child, /*is_dir=*/false);
}

Result<InodeNum> FileSystem::CreateDir(InodeNum dir, std::string_view child) {
  return CreateNode(dir, child, /*is_dir=*/true);
}

Result<void> FileSystem::Unlink(InodeNum dir, std::string_view child) {
  SLED_RETURN_IF_ERROR(CheckWritable());
  SLED_ASSIGN_OR_RETURN(Inode* d, FindInode(dir));
  if (!d->is_dir) {
    return Err::kNotDir;
  }
  auto it = d->children.find(std::string(child));
  if (it == d->children.end()) {
    return Err::kNoEnt;
  }
  const InodeNum ino = it->second;
  Inode& node = inodes_.at(ino);
  if (node.is_dir && !node.children.empty()) {
    return Err::kNotEmpty;
  }
  const int64_t old_size = static_cast<int64_t>(node.data.size());
  if (!node.is_dir && old_size > 0) {
    SLED_RETURN_IF_ERROR(OnResize(ino, old_size, 0));
  }
  d->children.erase(it);
  inodes_.erase(ino);
  return Result<void>::Ok();
}

Result<std::vector<DirEntry>> FileSystem::List(InodeNum dir) const {
  SLED_ASSIGN_OR_RETURN(const Inode* d, FindInode(dir));
  if (!d->is_dir) {
    return Err::kNotDir;
  }
  std::vector<DirEntry> entries;
  entries.reserve(d->children.size());
  for (const auto& [child_name, ino] : d->children) {
    entries.push_back({child_name, ino, inodes_.at(ino).is_dir});
  }
  return entries;
}

Result<InodeAttr> FileSystem::GetAttr(InodeNum ino) const {
  SLED_ASSIGN_OR_RETURN(const Inode* node, FindInode(ino));
  InodeAttr attr;
  attr.ino = ino;
  attr.is_dir = node->is_dir;
  attr.size = static_cast<int64_t>(node->data.size());
  return attr;
}

Result<int64_t> FileSystem::ReadBytes(InodeNum ino, int64_t offset,
                                      std::span<char> dst) const {
  SLED_ASSIGN_OR_RETURN(const Inode* node, FindInode(ino));
  if (node->is_dir) {
    return Err::kIsDir;
  }
  if (offset < 0) {
    return Err::kInval;
  }
  const int64_t size = static_cast<int64_t>(node->data.size());
  if (offset >= size) {
    return static_cast<int64_t>(0);
  }
  const int64_t n = std::min<int64_t>(static_cast<int64_t>(dst.size()), size - offset);
  std::copy_n(node->data.data() + offset, n, dst.data());
  return n;
}

Result<int64_t> FileSystem::WriteBytes(InodeNum ino, int64_t offset,
                                       std::span<const char> src) {
  SLED_RETURN_IF_ERROR(CheckWritable());
  SLED_RETURN_IF_ERROR(CheckInodeWritable(ino));
  SLED_ASSIGN_OR_RETURN(Inode* node, FindInode(ino));
  if (node->is_dir) {
    return Err::kIsDir;
  }
  if (offset < 0) {
    return Err::kInval;
  }
  const int64_t old_size = static_cast<int64_t>(node->data.size());
  const int64_t end = offset + static_cast<int64_t>(src.size());
  if (end > old_size) {
    SLED_RETURN_IF_ERROR(OnResize(ino, old_size, end));
    node->data.resize(static_cast<size_t>(end), '\0');
  }
  std::copy(src.begin(), src.end(), node->data.begin() + offset);
  return static_cast<int64_t>(src.size());
}

Result<void> FileSystem::Truncate(InodeNum ino, int64_t new_size) {
  SLED_RETURN_IF_ERROR(CheckWritable());
  SLED_RETURN_IF_ERROR(CheckInodeWritable(ino));
  SLED_ASSIGN_OR_RETURN(Inode* node, FindInode(ino));
  if (node->is_dir) {
    return Err::kIsDir;
  }
  if (new_size < 0) {
    return Err::kInval;
  }
  const int64_t old_size = static_cast<int64_t>(node->data.size());
  if (new_size != old_size) {
    SLED_RETURN_IF_ERROR(OnResize(ino, old_size, new_size));
    node->data.resize(static_cast<size_t>(new_size), '\0');
  }
  return Result<void>::Ok();
}

int64_t FileSystem::SizeOf(InodeNum ino) const {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? 0 : static_cast<int64_t>(it->second.data.size());
}

Result<std::string_view> FileSystem::ContentView(InodeNum ino) const {
  SLED_ASSIGN_OR_RETURN(const Inode* node, FindInode(ino));
  if (node->is_dir) {
    return Err::kIsDir;
  }
  return std::string_view(node->data);
}

}  // namespace sled
