#include "src/openload/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/log.h"
#include "src/common/units.h"
#include "src/openload/heap_sched.h"
#include "src/openload/timing_wheel.h"
#include "src/shard/shard_runtime.h"

namespace sled {
namespace {

constexpr char kLoadPath[] = "/data/load";

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t DeriveSeed(uint64_t base, uint64_t salt) { return SplitMix64(base ^ SplitMix64(salt)); }

// The kKernel service rig: one world's simulated machine, its load file, and
// the station process every request is charged to. Requests are serviced one
// at a time (the engine models a FIFO single-server station per world), so a
// single fd cursor is enough.
struct WorldRig {
  Testbed tb;
  Process* station = nullptr;
  int fd = -1;
  int64_t file_bytes = 0;
  std::vector<char> buf;
};

WorldRig BuildRig(const OpenLoadConfig& c, uint64_t world_seed, int64_t world_id) {
  TestbedConfig tc;
  tc.kind = c.kind;
  tc.cache_pages = c.cache_pages;
  tc.seed = world_seed | 1;
  tc.world_id = world_id;
  WorldRig rig;
  rig.tb = MakeTestbed(tc);
  SimKernel& k = *rig.tb.kernel;
  rig.file_bytes = c.file_mb * kMiB;

  Process& gen = k.CreateProcess("ol-gen-" + std::to_string(world_id));
  auto fd = k.Create(gen, kLoadPath);
  SLED_CHECK(fd.ok(), "openload: create %s failed", kLoadPath);
  std::string chunk(64 * kKiB, 'x');
  for (int64_t written = 0; written < rig.file_bytes;) {
    const int64_t n =
        std::min<int64_t>(static_cast<int64_t>(chunk.size()), rig.file_bytes - written);
    auto w = k.Write(gen, fd.value(), std::span<const char>(chunk.data(), static_cast<size_t>(n)));
    SLED_CHECK(w.ok(), "openload: populate write failed");
    written += w.value();
  }
  SLED_CHECK(k.Close(gen, fd.value()).ok(), "openload: close failed");
  rig.tb.FinishMastering();
  k.DropCaches();

  rig.station = &k.CreateProcess("ol-station-" + std::to_string(world_id));
  auto sfd = k.Open(*rig.station, kLoadPath);
  SLED_CHECK(sfd.ok(), "openload: open %s failed", kLoadPath);
  rig.fd = sfd.value();
  rig.buf.resize(static_cast<size_t>(std::max<int64_t>(c.request_bytes, 64 * kKiB)));
  return rig;
}

// Issue one read of [offset, offset+length) and return the kernel-clock delta
// in ns (>= 1) plus whether every syscall succeeded. This is the service-time
// oracle: the delta includes cache hits/misses, readahead, device service,
// and injected faults, exactly as the closed-loop harness would pay them.
struct ServiceSample {
  uint64_t ns = 1;
  bool ok = true;
};

ServiceSample ServiceRead(WorldRig& rig, int64_t offset, int64_t length) {
  SimKernel& k = *rig.tb.kernel;
  const TimePoint before = k.clock().Now();
  ServiceSample s;
  auto seek = k.Lseek(*rig.station, rig.fd, offset, Whence::kSet);
  if (!seek.ok()) {
    s.ok = false;
  } else {
    const size_t n = static_cast<size_t>(std::min<int64_t>(
        length, static_cast<int64_t>(rig.buf.size())));
    auto r = k.Read(*rig.station, rig.fd, std::span<char>(rig.buf.data(), n));
    s.ok = r.ok();
  }
  const int64_t delta = (k.clock().Now() - before).nanos();
  s.ns = delta < 1 ? 1 : static_cast<uint64_t>(delta);
  return s;
}

// Probe the world's mean service time, in ns, after arranging the cache the
// way steady state will see it: the hot region warmed (it stays resident),
// the cold region cold. Deterministic — fixed probe offsets, no RNG.
double ProbeMeanServiceNs(const OpenLoadConfig& c, WorldRig& rig) {
  if (c.pattern == ArrivalPattern::kTrace) {
    // Probe the real request stream: a deterministic sample spread through
    // the recorded ops, so calibration reflects the trace's own byte ranges
    // (a sequential scan's cold misses, not the synthetic hot/cold mix).
    const auto& ops = *c.trace_ops;
    const size_t n = std::min<size_t>(ops.size(), 32);
    uint64_t total = 0;
    for (size_t i = 0; i < n; ++i) {
      const ReadOp& op = ops[ops.size() * i / n];
      const int64_t length = std::clamp<int64_t>(op.length, 1, rig.file_bytes);
      const int64_t offset = std::clamp<int64_t>(op.offset, 0, rig.file_bytes - length);
      total += ServiceRead(rig, offset, length).ns;
    }
    const double mean = static_cast<double>(total) / static_cast<double>(n);
    return mean < 1.0 ? 1.0 : mean;
  }
  const int64_t hot_bytes = std::max<int64_t>(rig.file_bytes / 8, c.request_bytes);
  // Warm the hot region once, sequentially.
  for (int64_t off = 0; off + c.request_bytes <= hot_bytes; off += c.request_bytes) {
    (void)ServiceRead(rig, off, c.request_bytes);
  }
  constexpr int kHotProbes = 16;
  constexpr int kColdProbes = 8;
  uint64_t hot_total = 0;
  for (int i = 0; i < kHotProbes; ++i) {
    const int64_t span = std::max<int64_t>(hot_bytes - c.request_bytes, 1);
    const int64_t off = (span * i / kHotProbes) / kPageSize * kPageSize;
    hot_total += ServiceRead(rig, off, c.request_bytes).ns;
  }
  uint64_t cold_total = 0;
  const int64_t cold_span = std::max<int64_t>(rig.file_bytes - hot_bytes - c.request_bytes, 1);
  for (int i = 0; i < kColdProbes; ++i) {
    const int64_t off = (hot_bytes + cold_span * i / kColdProbes) / kPageSize * kPageSize;
    cold_total += ServiceRead(rig, off, c.request_bytes).ns;
  }
  const double mean_hot = static_cast<double>(hot_total) / kHotProbes;
  const double mean_cold = static_cast<double>(cold_total) / kColdProbes;
  const double mean = c.hot_fraction * mean_hot + (1.0 - c.hot_fraction) * mean_cold;
  return mean < 1.0 ? 1.0 : mean;
}

// Per-client engine state: the arrival stream, an independent request-shape
// stream, and (kTrace) the client's cursor into the shared op stream. Kept
// deliberately small — a million of these exist at once.
struct Client {
  ArrivalState arrival;
  uint64_t req_rng = 0;
  uint32_t cursor = 0;
};

struct Request {
  int64_t offset = 0;
  int64_t length = 0;
};

Request PickRequest(const OpenLoadConfig& c, Client* cl, int64_t file_bytes) {
  if (c.pattern == ArrivalPattern::kTrace) {
    const auto& ops = *c.trace_ops;
    const ReadOp& op = ops[cl->cursor % ops.size()];
    ++cl->cursor;
    const int64_t length = std::clamp<int64_t>(op.length, 1, file_bytes);
    const int64_t offset = std::clamp<int64_t>(op.offset, 0, file_bytes - length);
    return {offset, length};
  }
  const int64_t length = std::min(c.request_bytes, file_bytes);
  const int64_t hot_bytes = std::max<int64_t>(file_bytes / 8, length);
  const double u = OpenLoadUniform(&cl->req_rng);
  const double v = OpenLoadUniform(&cl->req_rng);
  int64_t offset;
  if (u < c.hot_fraction || hot_bytes >= file_bytes) {
    offset = static_cast<int64_t>(v * static_cast<double>(hot_bytes - length));
  } else {
    const int64_t cold_span = file_bytes - hot_bytes - length;
    offset = hot_bytes + (cold_span > 0 ? static_cast<int64_t>(v * static_cast<double>(cold_span))
                                        : 0);
  }
  offset = offset / kPageSize * kPageSize;
  return {offset, length};
}

// The engine core, templated over the scheduler so the wheel and the heap
// oracle run the exact same code path — the differential guarantee is about
// the scheduler, not about two divergent drivers.
template <typename Sched>
OpenLoadWorldResult RunWorldWith(const OpenLoadConfig& c, int64_t world_id, ObsAccumulator* acc) {
  OpenLoadWorldResult res;
  res.world_id = world_id;
  const int64_t base = c.clients / c.worlds;
  const int64_t extra = c.clients % c.worlds;
  const int64_t clients_n = base + (world_id < extra ? 1 : 0);
  res.clients = clients_n;
  if (clients_n == 0) {
    return res;
  }
  const uint64_t world_seed = DeriveSeed(c.seed, static_cast<uint64_t>(world_id) ^ 0x0be71ull);

  std::unique_ptr<WorldRig> rig;
  double mean_service_ns =
      static_cast<double>(c.synthetic_base_ns) + static_cast<double>(c.synthetic_jitter_mask) / 2.0;
  if (c.service == ServiceModel::kKernel) {
    rig = std::make_unique<WorldRig>(BuildRig(c, world_seed, world_id));
    mean_service_ns = ProbeMeanServiceNs(c, *rig);
  }

  ArrivalParams params;
  params.pattern = c.pattern;
  if (c.per_client_rps > 0) {
    params.mean_gap_ns = 1e9 / c.per_client_rps;
  } else {
    // Calibrated: the world's aggregate offered rate is `utilization` of the
    // station's capacity (1/mean_service), split evenly over its clients.
    params.mean_gap_ns =
        static_cast<double>(clients_n) * mean_service_ns / std::max(c.utilization, 1e-6);
  }
  if (params.mean_gap_ns < 1.0) {
    params.mean_gap_ns = 1.0;
  }

  std::vector<Client> clients(static_cast<size_t>(clients_n));
  Sched sched;
  sched.Reserve(static_cast<size_t>(clients_n));
  const uint64_t horizon_ns = static_cast<uint64_t>(std::llround(c.horizon_s * 1e9));
  SLED_CHECK(horizon_ns >= 1, "openload: degenerate horizon");
  for (int64_t i = 0; i < clients_n; ++i) {
    Client& cl = clients[static_cast<size_t>(i)];
    cl.arrival.rng = DeriveSeed(world_seed, 0xA0000000ull + static_cast<uint64_t>(i));
    cl.req_rng = DeriveSeed(world_seed, 0xB0000000ull + static_cast<uint64_t>(i));
    if (c.pattern == ArrivalPattern::kTrace) {
      cl.cursor = static_cast<uint32_t>((static_cast<uint64_t>(i) * 7919ull) %
                                        c.trace_ops->size());
    }
    // Every client keeps exactly one pending arrival in the scheduler at all
    // times — a population of N clients is N concurrent timers, even for the
    // ones whose next arrival lies past the horizon.
    sched.Schedule(NextArrivalNs(params, &cl.arrival, 0), static_cast<int32_t>(i));
  }

  uint64_t busy_until_ns = 0;  // FIFO single-server station per world
  auto fire = [&](uint64_t at_ns, int32_t ci) {
    Client& cl = clients[static_cast<size_t>(ci)];
    ++res.arrivals;
    uint64_t service_ns;
    bool ok = true;
    if (rig != nullptr) {
      const Request rq = PickRequest(c, &cl, rig->file_bytes);
      const ServiceSample s = ServiceRead(*rig, rq.offset, rq.length);
      service_ns = s.ns;
      ok = s.ok;
    } else {
      service_ns = c.synthetic_base_ns + (OpenLoadRandom(&cl.req_rng) & c.synthetic_jitter_mask);
      if (service_ns == 0) {
        service_ns = 1;
      }
    }
    const uint64_t start_ns = std::max(at_ns, busy_until_ns);
    const uint64_t done_ns = start_ns + service_ns;
    busy_until_ns = done_ns;
    ++res.completions;
    if (!ok) {
      ++res.errors;
    }
    const int64_t queue_ns = static_cast<int64_t>(start_ns - at_ns);
    const int64_t latency_ns = static_cast<int64_t>(done_ns - at_ns);
    res.latency_sum_ns += latency_ns;
    res.queue_sum_ns += queue_ns;
    res.service_sum_ns += static_cast<int64_t>(service_ns);
    res.max_latency_ns = std::max(res.max_latency_ns, latency_ns);
    res.last_completion_ns = static_cast<int64_t>(done_ns);  // completions are monotone
    res.latency.Record(Duration(latency_ns));
    res.queue_wait.Record(Duration(queue_ns));
    res.checksum = SplitMix64(res.checksum ^ (done_ns + 0x9e3779b97f4a7c15ull *
                                                             static_cast<uint64_t>(ci + 1)));
    sched.Schedule(NextArrivalNs(params, &cl.arrival, at_ns), ci);
  };
  // Arrivals occur in [0, horizon): the expiry sweep is inclusive.
  sched.ExpireUpTo(horizon_ns - 1, fire);
  SLED_CHECK(sched.size() == static_cast<size_t>(clients_n),
             "openload: client population leaked timers");

  if (acc != nullptr) {
    acc->metrics.MergeHistogram("openload.latency", res.latency);
    acc->metrics.MergeHistogram("openload.queue_wait", res.queue_wait);
    acc->metrics.Add("openload.arrivals", res.arrivals);
    acc->metrics.Add("openload.completions", res.completions);
    acc->metrics.Add("openload.errors", res.errors);
    if (rig != nullptr) {
      acc->Absorb(rig->tb.kernel->obs());
    }
  }
  return res;
}

void AppendF(std::string* out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
void AppendF(std::string* out, const char* fmt, ...) {
  char buf[160];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

}  // namespace

std::vector<ReadOp> ExtractReadOps(const Trace& trace) {
  std::vector<ReadOp> ops;
  std::map<int, int64_t> cursor;  // per-descriptor file offset
  for (const TraceEvent& ev : trace) {
    switch (ev.op) {
      case TraceOp::kOpen:
        cursor[ev.fd] = 0;
        break;
      case TraceOp::kClose:
        cursor.erase(ev.fd);
        break;
      case TraceOp::kLseek:
        cursor[ev.fd] = ev.offset;
        break;
      case TraceOp::kRead:
        if (ev.length > 0) {
          int64_t& off = cursor[ev.fd];
          ops.push_back(ReadOp{off, ev.length});
          off += ev.length;
        }
        break;
      case TraceOp::kMmapRead:
        if (ev.length > 0) {
          ops.push_back(ReadOp{ev.offset, ev.length});
        }
        break;
      case TraceOp::kWrite:
        // Writes advance the cursor but produce no replayable read.
        cursor[ev.fd] += ev.length;
        break;
    }
  }
  return ops;
}

OpenLoadWorldResult RunOpenLoadWorld(const OpenLoadConfig& config, int64_t world_id,
                                     ObsAccumulator* acc) {
  SLED_CHECK(config.clients >= 1 && config.worlds >= 1 && world_id >= 0 &&
                 world_id < config.worlds,
             "openload: bad world shape");
  SLED_CHECK(config.pattern != ArrivalPattern::kTrace ||
                 (config.trace_ops != nullptr && !config.trace_ops->empty()),
             "openload: kTrace requires a non-empty op stream");
  if (config.scheduler == SchedulerKind::kHeap) {
    return RunWorldWith<HeapScheduler<int32_t>>(config, world_id, acc);
  }
  return RunWorldWith<TimingWheel<int32_t>>(config, world_id, acc);
}

ScenarioResult RunOpenLoadScenario(const OpenLoadConfig& config) {
  ScenarioResult out;
  out.horizon_s = config.horizon_s;
  out.clients = config.clients;
  out.worlds.resize(static_cast<size_t>(config.worlds));

  ShardRuntime rt(ShardConfig{.shards = config.shards});
  std::vector<ObsAccumulator> accs(static_cast<size_t>(rt.shards()));
  rt.Run(config.worlds, [&](WorldContext& ctx) {
    OpenLoadWorldResult r =
        RunOpenLoadWorld(config, ctx.world_id(), &accs[static_cast<size_t>(ctx.shard_id())]);
    ctx.Progress(r.last_completion_ns, r.arrivals, r.completions);
    out.worlds[static_cast<size_t>(ctx.world_id())] = std::move(r);
  });

  // Scalar merge from the per-world results; histogram merge through the
  // ObsAccumulator path (commutative, so any shard count and absorb order
  // yields the same buckets — the property openload_diff_test pins down).
  int64_t last_completion_ns = 0;
  for (const OpenLoadWorldResult& w : out.worlds) {
    out.arrivals += w.arrivals;
    out.completions += w.completions;
    out.errors += w.errors;
    out.checksum ^= w.checksum;
    last_completion_ns = std::max(last_completion_ns, w.last_completion_ns);
  }
  ObsAccumulator merged;
  for (ObsAccumulator& a : accs) {
    merged.Absorb(a);
  }
  if (const LatencyHistogram* h = merged.metrics.histogram("openload.latency")) {
    out.latency = *h;
  }
  if (const LatencyHistogram* h = merged.metrics.histogram("openload.queue_wait")) {
    out.queue_wait = *h;
  }
  const double horizon_ns = config.horizon_s * 1e9;
  const double span_ns = std::max(horizon_ns, static_cast<double>(last_completion_ns));
  out.offered_rps = static_cast<double>(out.arrivals) / (horizon_ns * 1e-9);
  out.achieved_rps =
      span_ns <= 0 ? 0 : static_cast<double>(out.completions) / (span_ns * 1e-9);
  return out;
}

std::string ScenarioJson(const ScenarioResult& result) {
  std::string out;
  AppendF(&out, "\"clients\": %lld, ", static_cast<long long>(result.clients));
  AppendF(&out, "\"worlds\": %lld, ", static_cast<long long>(result.worlds.size()));
  AppendF(&out, "\"arrivals\": %lld, ", static_cast<long long>(result.arrivals));
  AppendF(&out, "\"completions\": %lld, ", static_cast<long long>(result.completions));
  AppendF(&out, "\"errors\": %lld, ", static_cast<long long>(result.errors));
  AppendF(&out, "\"horizon_s\": %.3f, ", result.horizon_s);
  AppendF(&out, "\"offered_rps\": %.1f, ", result.offered_rps);
  AppendF(&out, "\"achieved_rps\": %.1f, ", result.achieved_rps);
  const LatencyHistogram& h = result.latency;
  AppendF(&out, "\"p50_ns\": %lld, ", static_cast<long long>(h.Quantile(0.50).nanos()));
  AppendF(&out, "\"p95_ns\": %lld, ", static_cast<long long>(h.Quantile(0.95).nanos()));
  AppendF(&out, "\"p99_ns\": %lld, ", static_cast<long long>(h.Quantile(0.99).nanos()));
  AppendF(&out, "\"p999_ns\": %lld, ", static_cast<long long>(h.Quantile(0.999).nanos()));
  AppendF(&out, "\"mean_ns\": %lld, ", static_cast<long long>(h.mean().nanos()));
  AppendF(&out, "\"max_ns\": %lld, ", static_cast<long long>(h.max().nanos()));
  AppendF(&out, "\"queue_p99_ns\": %lld, ",
          static_cast<long long>(result.queue_wait.Quantile(0.99).nanos()));
  out += "\"cdf\": [";
  int64_t cumulative = 0;
  bool first = true;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    const int64_t n = h.buckets()[static_cast<size_t>(i)];
    if (n == 0) {
      continue;
    }
    cumulative += n;
    AppendF(&out, "%s[%lld, %lld]", first ? "" : ", ",
            static_cast<long long>(LatencyHistogram::BucketUpperBound(i)),
            static_cast<long long>(cumulative));
    first = false;
  }
  out += "]";
  return out;
}

}  // namespace sled
