// Hierarchical timing wheel: the event scheduler at the core of the
// open-loop traffic engine (DESIGN.md §12), and the replacement for the
// SimKernel's heap-based arrival queue.
//
// Three levels of 65536 slots each over 1 ns ticks give O(1) amortized
// schedule/expire out to 2^48 ns (~3.26 days); deadlines beyond the horizon
// park in the top level and re-cascade. Wide levels are the perf-critical
// choice: a timer scheduled ~10^8 ns ahead (an open-loop client's next
// arrival) lands at level 1 and crosses exactly one cascade before firing —
// three random slab touches per event total (place, cascade, fire) — where
// 256-slot levels would cost five. Timers live in a preallocated slab with
// intrusive int32 doubly-linked list links — steady-state operation
// (schedule, cancel, cascade, expire) allocates nothing; the slab grows only
// when the live-timer high-water mark does. Per-level two-tier occupancy
// bitmaps (a summary bit per 64-slot word) let an expiry sweep jump straight
// from one occupied slot start to the next, so advancing across seconds of
// empty simulated time costs a handful of word scans, not millions of empty
// ticks.
//
// Semantics (pinned by tests/openload_diff_test.cc against a
// (deadline, sequence)-ordered std::priority_queue oracle):
//   * ExpireUpTo(t) fires every timer with effective deadline <= t in
//     nondecreasing deadline order; ties fire in schedule order (FIFO).
//   * Deadlines in the past are clamped to the current wheel time: a timer
//     never fires before it is scheduled, and never earlier than a
//     previously fired time (wheel time is monotone).
//   * Callbacks may Schedule and Cancel freely; a timer scheduled for the
//     current instant from inside a callback fires in the same sweep, after
//     the batch it was scheduled from — exactly where the oracle puts it.
#ifndef SLEDS_SRC_OPENLOAD_TIMING_WHEEL_H_
#define SLEDS_SRC_OPENLOAD_TIMING_WHEEL_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace sled {

template <typename T>
class TimingWheel {
 public:
  // (generation << 32 | slab index). Generations start at 1 and bump on every
  // free, so a stale handle (fired or canceled timer) never matches.
  using Handle = uint64_t;

  static constexpr int kSlotBits = 16;
  static constexpr int kSlots = 1 << kSlotBits;     // 65536 slots per level
  static constexpr int kLevels = 3;                  // 2^48 ns direct horizon
  static constexpr uint64_t kSlotMask = kSlots - 1;

  TimingWheel() {
    for (int l = 0; l < kLevels; ++l) {
      for (int s = 0; s < kSlots; ++s) {
        slots_[l][s].head = kNil;
        slots_[l][s].tail = kNil;
      }
      for (uint64_t& w : bitmap_[l]) {
        w = 0;
      }
      for (uint64_t& w : summary_[l]) {
        w = 0;
      }
      level_count_[l] = 0;
    }
  }

  // Grow the slab ahead of the first Schedule so a known client population
  // (e.g. one pending arrival per client) never reallocates mid-run.
  void Reserve(size_t timers) {
    slab_.reserve(timers);
    seq_.reserve(timers);
  }

  uint64_t now() const { return now_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Handle Schedule(uint64_t deadline, T payload) {
    if (deadline < now_) {
      deadline = now_;
    }
    const int32_t idx = Alloc();
    Node& n = slab_[static_cast<size_t>(idx)];
    n.deadline = deadline;
    seq_[static_cast<size_t>(idx)] = next_seq_++;
    n.payload = std::move(payload);
    Place(idx);
    ++size_;
    return (static_cast<uint64_t>(n.gen) << 32) | static_cast<uint32_t>(idx);
  }

  // O(1). False when the handle's timer already fired or was canceled.
  bool Cancel(Handle h) {
    const int32_t idx = static_cast<int32_t>(h & 0xffffffffu);
    if (idx < 0 || static_cast<size_t>(idx) >= slab_.size()) {
      return false;
    }
    Node& n = slab_[static_cast<size_t>(idx)];
    if (n.gen != static_cast<uint32_t>(h >> 32)) {
      return false;
    }
    Unlink(idx);
    Free(idx);
    --size_;
    return true;
  }

  // Advance wheel time to `t`, invoking fn(deadline, payload) for every timer
  // with deadline <= t (order documented above). fn may call Schedule/Cancel.
  template <typename Fn>
  void ExpireUpTo(uint64_t t, Fn&& fn) {
    if (t < now_) {
      return;
    }
    while (size_ > 0) {
      // Level-0 slots are exact 1 ns ticks within the current 2^16-tick block;
      // everything due in this block is already here (higher levels only hold
      // deadlines at least one full block away).
      const uint64_t block_base = now_ & ~kSlotMask;
      const int cur = static_cast<int>(now_ & kSlotMask);
      const uint64_t block_last = block_base + kSlotMask;
      const uint64_t limit = t < block_last ? t : block_last;
      const int limit_idx = static_cast<int>(limit - block_base);
      const int s = NextOccupied(0, cur, limit_idx);
      if (s >= 0) {
        now_ = block_base + static_cast<uint64_t>(s);
        // Every node in a level-0 slot shares the same exact-tick deadline,
        // but cascades deliver them in slot-insertion order, which is not
        // schedule order when ties were filed into different levels. Snapshot
        // the batch and fire it in schedule-sequence order (the oracle's tie
        // rule); timers the callbacks add to this slot land in the emptied
        // list and form the next batch — after this one, like the oracle's
        // larger sequence numbers. Canceled-mid-batch nodes are skipped via
        // their generation. Slot batches are almost always a single node, so
        // the sort is a no-op in the common case.
        int32_t idx;
        while ((idx = slots_[0][s].head) != kNil) {
          if (slab_[static_cast<size_t>(idx)].next == kNil) {
            // Sole node in the slot (the overwhelmingly common case): no tie
            // to order, fire directly.
            Node& n = slab_[static_cast<size_t>(idx)];
            Unlink(idx);
            const uint64_t deadline = n.deadline;
            T payload = std::move(n.payload);
            Free(idx);
            --size_;
            fn(deadline, payload);
            continue;
          }
          batch_.clear();
          for (; idx != kNil; idx = slab_[static_cast<size_t>(idx)].next) {
            batch_.push_back(BatchEntry{seq_[static_cast<size_t>(idx)], idx,
                                        slab_[static_cast<size_t>(idx)].gen});
          }
          std::sort(batch_.begin(), batch_.end(),
                    [](const BatchEntry& a, const BatchEntry& b) { return a.seq < b.seq; });
          for (const BatchEntry& e : batch_) {
            Node& n = slab_[static_cast<size_t>(e.idx)];
            if (n.gen != e.gen) {
              continue;  // canceled by an earlier callback in this batch
            }
            Unlink(e.idx);
            const uint64_t deadline = n.deadline;
            T payload = std::move(n.payload);
            Free(e.idx);
            --size_;
            fn(deadline, payload);
          }
        }
        continue;
      }
      // Nothing due in this block: jump to the earliest occupied slot start
      // across all levels, cascade it down, and re-examine. Slots strictly
      // between now_ and that start are empty at every level, so skipping
      // their boundaries is a no-op by construction.
      const uint64_t next_start = NextSlotStart();
      if (next_start > t) {
        break;
      }
      now_ = next_start;
      for (int l = kLevels - 1; l >= 1; --l) {
        const uint64_t gran_mask = (uint64_t{1} << (kSlotBits * l)) - 1;
        if ((now_ & gran_mask) == 0 && level_count_[l] > 0) {
          CascadeSlot(l, static_cast<int>((now_ >> (kSlotBits * l)) & kSlotMask));
        }
      }
    }
    if (now_ < t) {
      now_ = t;
    }
  }

 private:
  static constexpr int32_t kNil = -1;

  // The global schedule sequence (the tie-break rule for fires) lives in the
  // parallel `seq_` array, not here: it is only read on the rare multi-node
  // slot batch, and keeping it cold holds an int32-payload node to 32 bytes —
  // two nodes per cache line on the cascade walk, the hot loop's one
  // unavoidable pointer chase.
  struct Node {
    uint64_t deadline = 0;
    int32_t prev = kNil;
    int32_t next = kNil;
    uint32_t gen = 1;
    uint16_t level = 0;
    uint16_t slot = 0;
    T payload{};
  };

  struct BatchEntry {
    uint64_t seq;
    int32_t idx;
    uint32_t gen;
  };

  static constexpr uint64_t SpanOf(int level) {
    return uint64_t{1} << (kSlotBits * (level + 1));
  }

  int32_t Alloc() {
    if (free_head_ != kNil) {
      const int32_t idx = free_head_;
      free_head_ = slab_[static_cast<size_t>(idx)].next;
      return idx;
    }
    slab_.emplace_back();
    seq_.push_back(0);
    return static_cast<int32_t>(slab_.size() - 1);
  }

  void Free(int32_t idx) {
    Node& n = slab_[static_cast<size_t>(idx)];
    ++n.gen;  // invalidate outstanding handles
    n.next = free_head_;
    free_head_ = idx;
  }

  // Append to the tail of (level, slot), preserving schedule order.
  void PushBack(int level, int slot, int32_t idx) {
    Node& n = slab_[static_cast<size_t>(idx)];
    n.level = static_cast<uint16_t>(level);
    n.slot = static_cast<uint16_t>(slot);
    n.next = kNil;
    Slot& sl = slots_[level][slot];
    n.prev = sl.tail;
    if (sl.tail == kNil) {
      sl.head = idx;
      bitmap_[level][slot >> 6] |= uint64_t{1} << (slot & 63);
      summary_[level][slot >> 12] |= uint64_t{1} << ((slot >> 6) & 63);
    } else {
      slab_[static_cast<size_t>(sl.tail)].next = idx;
    }
    sl.tail = idx;
    ++level_count_[level];
  }

  void Unlink(int32_t idx) {
    Node& n = slab_[static_cast<size_t>(idx)];
    const int level = n.level;
    const int slot = n.slot;
    if (n.prev == kNil) {
      slots_[level][slot].head = n.next;
    } else {
      slab_[static_cast<size_t>(n.prev)].next = n.next;
    }
    if (n.next == kNil) {
      slots_[level][slot].tail = n.prev;
    } else {
      slab_[static_cast<size_t>(n.next)].prev = n.prev;
    }
    if (slots_[level][slot].head == kNil) {
      ClearOccupied(level, slot);
    }
    --level_count_[level];
  }

  void ClearOccupied(int level, int slot) {
    const int word = slot >> 6;
    if ((bitmap_[level][word] &= ~(uint64_t{1} << (slot & 63))) == 0) {
      summary_[level][word >> 6] &= ~(uint64_t{1} << (word & 63));
    }
  }

  // File `idx` into the level/slot its deadline belongs to, relative to now_.
  // The level is the delta's bit width divided by the per-level slot bits:
  // delta < 2^(16(l+1)) exactly when its most significant bit is below 16(l+1).
  void Place(int32_t idx) {
    const uint64_t deadline = slab_[static_cast<size_t>(idx)].deadline;
    const uint64_t delta = deadline - now_;
    const int l = delta == 0 ? 0 : (63 - std::countl_zero(delta)) >> 4;
    if (l < kLevels) {
      PushBack(l, static_cast<int>((deadline >> (kSlotBits * l)) & kSlotMask), idx);
      return;
    }
    // Beyond the direct horizon: park in the top-level slot whose start is at
    // most now_ + span (i.e. no later than any overflow deadline), so the
    // timer re-cascades — and re-places by its true deadline — in time.
    const int top = kLevels - 1;
    PushBack(top, static_cast<int>((now_ >> (kSlotBits * top)) & kSlotMask), idx);
  }

  // Detach (level, slot) and re-place its nodes in order against current now_.
  void CascadeSlot(int level, int slot) {
    int32_t idx = slots_[level][slot].head;
    if (idx == kNil) {
      return;
    }
    slots_[level][slot].head = kNil;
    slots_[level][slot].tail = kNil;
    ClearOccupied(level, slot);
    while (idx != kNil) {
      const int32_t next = slab_[static_cast<size_t>(idx)].next;
      if (next != kNil) {
        // The list threads nodes at arbitrary slab offsets; overlap the next
        // node's cache miss with re-placing this one.
        __builtin_prefetch(&slab_[static_cast<size_t>(next)]);
      }
      Place(idx);
      idx = next;
    }
  }

  // First occupied slot of `level` with index in [from, to], else -1. The
  // summary bitmap (one bit per 64-slot word) turns a scan across the 1024
  // bitmap words into at most a 16-word summary scan plus two word reads.
  int NextOccupied(int level, int from, int to) const {
    if (from > to) {
      return -1;
    }
    const int last_word = to >> 6;
    int word = from >> 6;
    uint64_t bits = bitmap_[level][word] & (~uint64_t{0} << (from & 63));
    if (bits == 0) {
      // The starting word is exhausted; jump to the next non-empty word via
      // the summary (a set summary bit guarantees its word has a set bit).
      if (++word > last_word) {
        return -1;
      }
      int sw = word >> 6;
      uint64_t sbits = summary_[level][sw] & (~uint64_t{0} << (word & 63));
      while (sbits == 0) {
        if (++sw > (last_word >> 6)) {
          return -1;
        }
        sbits = summary_[level][sw];
      }
      word = (sw << 6) + std::countr_zero(sbits);
      if (word > last_word) {
        return -1;
      }
      bits = bitmap_[level][word];
    }
    const int s = (word << 6) + std::countr_zero(bits);
    return s <= to ? s : -1;
  }

  // Earliest absolute start time of any occupied slot, across all levels.
  // For level l >= 1, slot indexes at or before the current index wrap into
  // the *next* window of that level (timers are only ever filed ahead of
  // now_), which is what makes the start computable from (level, index, now_).
  uint64_t NextSlotStart() const {
    uint64_t best = std::numeric_limits<uint64_t>::max();
    if (level_count_[0] > 0) {
      const int cur = static_cast<int>(now_ & kSlotMask);
      const int ahead = NextOccupied(0, cur, kSlots - 1);
      if (ahead >= 0) {
        best = (now_ & ~kSlotMask) + static_cast<uint64_t>(ahead);
      } else {
        const int wrapped = NextOccupied(0, 0, cur - 1);
        if (wrapped >= 0) {
          best = (now_ & ~kSlotMask) + static_cast<uint64_t>(wrapped) + kSlots;
        }
      }
    }
    for (int l = 1; l < kLevels; ++l) {
      if (level_count_[l] == 0) {
        continue;
      }
      const uint64_t gran = uint64_t{1} << (kSlotBits * l);
      const uint64_t base = now_ & ~(SpanOf(l) - 1);
      const int cur = static_cast<int>((now_ >> (kSlotBits * l)) & kSlotMask);
      const int ahead = NextOccupied(l, cur + 1, kSlots - 1);
      uint64_t start;
      if (ahead >= 0) {
        start = base + static_cast<uint64_t>(ahead) * gran;
      } else {
        const int wrapped = NextOccupied(l, 0, cur);
        if (wrapped < 0) {
          continue;
        }
        start = base + (static_cast<uint64_t>(wrapped) + kSlots) * gran;
      }
      if (start < best) {
        best = start;
      }
    }
    return best;
  }

  std::vector<Node> slab_;
  std::vector<uint64_t> seq_;      // parallel to slab_; see Node comment
  std::vector<BatchEntry> batch_;  // reused per fired slot; no steady-state allocation
  uint64_t next_seq_ = 1;
  int32_t free_head_ = kNil;
  // head and tail share an 8-byte struct so a push or a fire touches one
  // cache line of slot metadata, not one line in each of two parallel arrays.
  struct Slot {
    int32_t head;
    int32_t tail;
  };
  Slot slots_[kLevels][kSlots];
  uint64_t bitmap_[kLevels][kSlots / 64];
  uint64_t summary_[kLevels][kSlots / 64 / 64];  // bit g = "bitmap word g non-empty"
  int64_t level_count_[kLevels];  // occupancy, to skip empty levels in scans
  uint64_t now_ = 0;
  size_t size_ = 0;
};

}  // namespace sled

#endif  // SLEDS_SRC_OPENLOAD_TIMING_WHEEL_H_
