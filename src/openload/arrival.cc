#include "src/openload/arrival.h"

#include <cmath>

namespace sled {
namespace {

// Exponential draw with the given mean, in ns, never zero: log1p of a draw in
// (-1, 0] is finite and <= 0, so the result is >= 1 after the floor.
uint64_t ExponentialNs(uint64_t* rng, double mean_ns) {
  const double u = OpenLoadUniform(rng);
  const double draw = -mean_ns * std::log1p(-u);
  return draw < 1.0 ? 1 : static_cast<uint64_t>(draw);
}

uint64_t PoissonNext(const ArrivalParams& p, ArrivalState* s, uint64_t now_ns) {
  return now_ns + ExponentialNs(&s->rng, p.mean_gap_ns);
}

// Two-state Markov-modulated Poisson process. Arrivals only occur in ON
// phases, at mean gap mean_gap_ns * duty, so the long-run rate matches the
// Poisson pattern while arrivals clump. Phase boundaries are resampled
// lazily, from the same per-client stream, whenever a candidate arrival
// overshoots the current phase.
uint64_t BurstNext(const ArrivalParams& p, ArrivalState* s, uint64_t now_ns) {
  const double on_gap_ns = p.mean_gap_ns * p.burst_duty;
  const double off_ns = p.burst_on_ns * (1.0 - p.burst_duty) / p.burst_duty;
  uint64_t t = now_ns;
  for (;;) {
    if (s->on == 0) {
      // In (or starting) an OFF phase: skip to its end, then switch ON.
      if (s->phase_end_ns <= t) {
        s->phase_end_ns = t + ExponentialNs(&s->rng, off_ns);
      }
      t = s->phase_end_ns;
      s->on = 1;
      s->phase_end_ns = t + ExponentialNs(&s->rng, p.burst_on_ns);
    }
    const uint64_t candidate = t + ExponentialNs(&s->rng, on_gap_ns);
    if (candidate <= s->phase_end_ns) {
      return candidate;
    }
    // Burst over before the next arrival: move to the OFF phase and retry.
    t = s->phase_end_ns;
    s->on = 0;
    s->phase_end_ns = 0;
  }
}

// Lewis-Shedler thinning against the curve's peak rate.
uint64_t DiurnalNext(const ArrivalParams& p, ArrivalState* s, uint64_t now_ns) {
  const double peak_factor = 1.0 + p.diurnal_depth;
  const double candidate_gap_ns = p.mean_gap_ns / peak_factor;
  const double two_pi = 6.283185307179586;
  uint64_t t = now_ns;
  for (;;) {
    t += ExponentialNs(&s->rng, candidate_gap_ns);
    const double phase = two_pi * static_cast<double>(t % static_cast<uint64_t>(
                                      p.diurnal_period_ns)) /
                         p.diurnal_period_ns;
    const double relative = (1.0 + p.diurnal_depth * std::sin(phase)) / peak_factor;
    if (OpenLoadUniform(&s->rng) < relative) {
      return t;
    }
  }
}

}  // namespace

const char* ArrivalPatternName(ArrivalPattern pattern) {
  switch (pattern) {
    case ArrivalPattern::kPoisson:
      return "poisson";
    case ArrivalPattern::kBurst:
      return "burst";
    case ArrivalPattern::kDiurnal:
      return "diurnal";
    case ArrivalPattern::kTrace:
      return "trace";
  }
  return "unknown";
}

uint64_t OpenLoadRandom(uint64_t* state) {
  uint64_t x = (*state += 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double OpenLoadUniform(uint64_t* state) {
  return static_cast<double>(OpenLoadRandom(state) >> 11) * 0x1.0p-53;
}

uint64_t NextArrivalNs(const ArrivalParams& params, ArrivalState* state, uint64_t now_ns) {
  switch (params.pattern) {
    case ArrivalPattern::kBurst:
      return BurstNext(params, state, now_ns);
    case ArrivalPattern::kDiurnal:
      return DiurnalNext(params, state, now_ns);
    case ArrivalPattern::kPoisson:
    case ArrivalPattern::kTrace:
      break;
  }
  return PoissonNext(params, state, now_ns);
}

}  // namespace sled
