// Heap-based reference scheduler: the semantic oracle the timing wheel is
// differentially tested against, and the baseline bench_openloop times the
// wheel's O(1) paths over. A std::priority_queue ordered by
// (deadline, schedule sequence) — exactly the wheel's contract: nondecreasing
// deadline, FIFO among ties, past deadlines clamped to the current time.
// Cancellation is lazy (a tombstone set), the standard binary-heap idiom.
#ifndef SLEDS_SRC_OPENLOAD_HEAP_SCHED_H_
#define SLEDS_SRC_OPENLOAD_HEAP_SCHED_H_

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

namespace sled {

template <typename T>
class HeapScheduler {
 public:
  using Handle = uint64_t;  // the schedule sequence number

  void Reserve(size_t timers) { storage_.reserve(timers); }

  uint64_t now() const { return now_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Handle Schedule(uint64_t deadline, T payload) {
    if (deadline < now_) {
      deadline = now_;
    }
    const uint64_t seq = next_seq_++;
    heap_.push(Entry{deadline, seq, std::move(payload)});
    ++size_;
    return seq;
  }

  // Lazy tombstone cancel. Unlike the wheel, the oracle does not detect a
  // handle that already fired — callers must only cancel live handles (the
  // differential test tracks liveness itself). Double-cancel returns false.
  bool Cancel(Handle h) {
    if (h >= next_seq_ || !dead_.insert(h).second) {
      return false;
    }
    --size_;
    return true;
  }

  template <typename Fn>
  void ExpireUpTo(uint64_t t, Fn&& fn) {
    if (t < now_) {
      return;
    }
    while (!heap_.empty() && heap_.top().deadline <= t) {
      Entry e = heap_.top();
      heap_.pop();
      if (dead_.erase(e.seq) > 0) {
        continue;  // canceled
      }
      now_ = e.deadline;
      --size_;
      fn(e.deadline, e.payload);
    }
    if (now_ < t) {
      now_ = t;
    }
  }

 private:
  struct Entry {
    uint64_t deadline;
    uint64_t seq;
    T payload;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.deadline != b.deadline ? a.deadline > b.deadline : a.seq > b.seq;
    }
  };

  std::vector<Entry> storage_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_{Later{}, std::move(storage_)};
  std::unordered_set<uint64_t> dead_;  // tombstones for canceled sequences
  uint64_t next_seq_ = 1;
  uint64_t now_ = 0;
  size_t size_ = 0;
};

}  // namespace sled

#endif  // SLEDS_SRC_OPENLOAD_HEAP_SCHED_H_
