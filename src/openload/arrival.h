// Open-loop arrival processes for the traffic engine (DESIGN.md §12).
//
// Each simulated client owns an independent arrival stream that is a pure
// function of its seed: the next arrival time never depends on request
// completion (that is what makes the load open-loop), on the shard the
// world runs on, or on any other client. Per-client state is 24 bytes — a
// splitmix64 counter stream plus the on/off phase words — because a million
// clients cannot afford a std::mt19937_64 (~2.5 KB) each.
//
// Catalog (PAPERS.md: Boukhobza & Timsit's PC disk traces are bursty and
// self-similar, not Poisson-smooth; Borge et al. show tails, not means,
// expose the stalls):
//   kPoisson  — memoryless exponential inter-arrivals at the configured rate.
//   kBurst    — two-state on/off modulation (exponential state holding
//               times); all arrivals happen inside ON phases at rate/duty,
//               so the long-run mean rate matches kPoisson while arrivals
//               clump into bursts.
//   kDiurnal  — inhomogeneous Poisson with a sinusoidal rate curve (period =
//               one simulated "day"), sampled by Lewis-Shedler thinning.
//   kTrace    — arrival *times* are Poisson; the request byte ranges replay a
//               recorded I/O trace (see ExtractReadOps in engine.h).
#ifndef SLEDS_SRC_OPENLOAD_ARRIVAL_H_
#define SLEDS_SRC_OPENLOAD_ARRIVAL_H_

#include <cstdint>

namespace sled {

enum class ArrivalPattern { kPoisson, kBurst, kDiurnal, kTrace };

const char* ArrivalPatternName(ArrivalPattern pattern);

struct ArrivalParams {
  ArrivalPattern pattern = ArrivalPattern::kPoisson;
  // Long-run mean inter-arrival gap per client, in simulated nanoseconds.
  double mean_gap_ns = 1e9;
  // kBurst: fraction of time spent ON (arrivals happen only while ON, at
  // mean_gap_ns * duty between arrivals) and the mean ON-phase length.
  double burst_duty = 0.125;
  double burst_on_ns = 250e6;
  // kDiurnal: rate(t) = base * (1 + depth * sin(2*pi*t / period_ns)).
  double diurnal_period_ns = 4e9;
  double diurnal_depth = 0.8;
};

// Per-client stream state. Zero-initialized except the rng word, which must
// be seeded (distinctly per client) before the first NextArrivalNs call.
struct ArrivalState {
  uint64_t rng = 0;
  uint64_t phase_end_ns = 0;  // kBurst: end of the current on/off phase
  uint32_t on = 0;            // kBurst: currently in the ON phase
};

// The client's next arrival time, given the previous one. Strictly advances
// (gaps are clamped to >= 1 ns).
uint64_t NextArrivalNs(const ArrivalParams& params, ArrivalState* state, uint64_t now_ns);

// splitmix64: the engine's 8-byte-state PRNG step, shared with request
// offset sampling. Advances *state and returns the next 64-bit draw.
uint64_t OpenLoadRandom(uint64_t* state);

// Uniform double in [0, 1) from one OpenLoadRandom draw.
double OpenLoadUniform(uint64_t* state);

}  // namespace sled

#endif  // SLEDS_SRC_OPENLOAD_ARRIVAL_H_
