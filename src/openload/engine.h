// The open-loop traffic engine (DESIGN.md §12): drives millions of
// concurrent simulated clients against SimKernel worlds.
//
// Closed-loop workloads (everything in src/apps) issue the next I/O only
// after the previous one completes, so they can never overload the system —
// offered load collapses to completion rate. This engine decouples the two:
// clients arrive on their own clock (src/openload/arrival.h), requests queue
// FIFO in front of each world's kernel, and the interesting output is the
// latency *distribution* — p50/p99/p999 and the offered-vs-achieved gap —
// not a mean.
//
// Two timelines cooperate per world:
//   * the engine timeline (uint64 ns since scenario start): arrivals live
//     here, scheduled on the hierarchical timing wheel; one pending arrival
//     per client, so a million clients means a million concurrent timers.
//   * the kernel's simulated clock: the service-time oracle. A request's
//     service time is the kernel-clock delta of actually issuing its reads
//     against the world's storage stack (cache state, readahead, device
//     model, faults included). Requests are serviced in arrival order, so
//     completion = max(arrival, previous completion) + service, and latency
//     = completion - arrival includes the queueing the closed-loop harness
//     could never produce.
//
// Worlds are ShardRuntime units: everything a world does is a pure function
// of (config, world_id), per-world latency histograms are log-bucketed
// obs::LatencyHistograms, and cross-shard aggregation reuses the
// ObsAccumulator merge layer — so an N-shard run's merged CDF is
// byte-identical to the single-shard oracle's.
#ifndef SLEDS_SRC_OPENLOAD_ENGINE_H_
#define SLEDS_SRC_OPENLOAD_ENGINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/merge.h"
#include "src/openload/arrival.h"
#include "src/workload/testbed.h"
#include "src/workload/trace.h"

namespace sled {

// How a request's service time is produced.
//   kKernel    — issue real Lseek+Read syscalls on the world's SimKernel and
//                charge the kernel-clock delta (the scenario mode).
//   kSynthetic — a deterministic per-client draw, no kernel at all (the
//                scheduler-benchmark mode: every nanosecond of wall time is
//                wheel-vs-heap, not page cache).
enum class ServiceModel { kKernel, kSynthetic };

enum class SchedulerKind { kWheel, kHeap };

// One replayable read: the (offset, length) stream ExtractReadOps distills
// from a recorded Trace for the kTrace arrival pattern.
struct ReadOp {
  int64_t offset = 0;
  int64_t length = 0;
};

struct OpenLoadConfig {
  // Total client population, split evenly across worlds.
  int64_t clients = 1'000'000;
  int64_t worlds = 8;
  int shards = 0;  // <= 0: ResolveShardCount($SLEDS_SHARDS or hw threads)

  ArrivalPattern pattern = ArrivalPattern::kPoisson;
  // Mean arrivals per client per simulated second. <= 0 selects calibration:
  // each world probes its own mean service time and offers
  // `utilization` * capacity.
  double per_client_rps = 0.0;
  double utilization = 0.85;
  double horizon_s = 20.0;  // arrivals occur in [0, horizon)

  // Request shape (kKernel service): bytes per read, and the probability a
  // request targets the hot eighth of the file (the cache-resident region).
  int64_t request_bytes = 16 * 1024;
  double hot_fraction = 0.9;

  // World shape (kKernel service).
  StorageKind kind = StorageKind::kDisk;
  int64_t file_mb = 24;
  int64_t cache_pages = 3072;

  uint64_t seed = 1;
  ServiceModel service = ServiceModel::kKernel;
  SchedulerKind scheduler = SchedulerKind::kWheel;

  // kSynthetic service: base + (draw & jitter_mask) nanoseconds.
  uint64_t synthetic_base_ns = 800;
  uint64_t synthetic_jitter_mask = 1023;

  // kTrace pattern: the read stream to replay (required; clients start at
  // staggered cursors). Must outlive the run.
  const std::vector<ReadOp>* trace_ops = nullptr;
};

// Integer outcome of one world; operator== is what the wheel-vs-heap and
// shard-count identity assertions compare (the histogram compares bucket-wise
// through LatencyHistogram::operator==).
struct OpenLoadWorldResult {
  int64_t world_id = 0;
  int64_t clients = 0;
  int64_t arrivals = 0;
  int64_t completions = 0;
  int64_t errors = 0;            // requests whose syscalls failed (faults)
  int64_t latency_sum_ns = 0;
  int64_t queue_sum_ns = 0;      // waiting for the server, pre-service
  int64_t service_sum_ns = 0;
  int64_t max_latency_ns = 0;
  int64_t last_completion_ns = 0;
  uint64_t checksum = 0;  // order-sensitive fold of every completion
  LatencyHistogram latency;
  LatencyHistogram queue_wait;

  bool operator==(const OpenLoadWorldResult&) const = default;
};

struct ScenarioResult {
  std::vector<OpenLoadWorldResult> worlds;
  int64_t clients = 0;
  int64_t arrivals = 0;
  int64_t completions = 0;
  int64_t errors = 0;
  double horizon_s = 0;
  double offered_rps = 0;   // arrivals / horizon
  double achieved_rps = 0;  // completions / max(horizon, last completion)
  LatencyHistogram latency;      // merged across worlds
  LatencyHistogram queue_wait;   // merged across worlds
  uint64_t checksum = 0;         // xor-fold of world checksums
};

// Distill the kRead/kMmapRead byte ranges (with kLseek bookkeeping) from a
// recorded trace into a replayable stream for ArrivalPattern::kTrace.
std::vector<ReadOp> ExtractReadOps(const Trace& trace);

// Run one world. Pure function of (config, world_id); `acc`, when non-null,
// receives the world's latency/queue histograms and (kKernel) the kernel's
// Observer export, keyed under "openload.*" — the ObsAccumulator merge path
// the shard runtime aggregates through.
OpenLoadWorldResult RunOpenLoadWorld(const OpenLoadConfig& config, int64_t world_id,
                                     ObsAccumulator* acc);

// Run the full scenario on the shard runtime and merge. Deterministic for a
// fixed config: independent of shard count, thread schedule, and wall clock.
ScenarioResult RunOpenLoadScenario(const OpenLoadConfig& config);

// Render the scenario as a BENCH_*.json block body: counts, offered vs
// achieved throughput, p50/p95/p99/p999, and the latency CDF as
// [bucket upper bound ns, cumulative count] pairs over occupied buckets.
std::string ScenarioJson(const ScenarioResult& result);

}  // namespace sled

#endif  // SLEDS_SRC_OPENLOAD_ENGINE_H_
