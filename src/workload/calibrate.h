// Boot-time device characterization — the paper's lmbench script (§4.1):
// "A sleds table, kept in the kernel, is filled by calling a script from
// /etc/rc.d/init.d every time the machine is booted. ... The latency and
// bandwidth for both local and network file systems are obtained by running
// the lmbench benchmark. The script fills the kernel table via a new ioctl
// call, FSLEDS_FILL."
//
// The calibrator measures each single-level mounted file system with timed
// reads on the virtual clock (sequential sweep for bandwidth, scattered
// cold-cache reads for latency) and installs the results via FSLEDS_FILL.
// Multi-level file systems (HSM) keep their model-derived nominals: probing
// a tape library at boot would take minutes of (simulated) robot time.
#ifndef SLEDS_SRC_WORKLOAD_CALIBRATE_H_
#define SLEDS_SRC_WORKLOAD_CALIBRATE_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

struct CalibrationRow {
  int level = 0;
  std::string name;
  DeviceCharacteristics measured;
  bool filled = false;  // false: kept the mount-time nominal
};

// Measure every eligible level and FSLEDS_FILL the kernel table. Also
// measures and fills the primary-memory row. Returns what was installed.
Result<std::vector<CalibrationRow>> CalibrateSledsTable(SimKernel& kernel, Process& process);

}  // namespace sled

#endif  // SLEDS_SRC_WORKLOAD_CALIBRATE_H_
