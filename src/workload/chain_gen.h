// Chain-file workload generation for the completion-program experiments: a
// file of fixed-size blocks forming a singly linked list in a seeded random
// order. Each block holds the file offset of the next block plus a short
// name; every k-th visited block carries a marker substring that the chain
// walk searches for. This is the pointer-chase access pattern (directory
// chains, index pages, database leaf links) where each read depends on the
// previous one — the shape where per-hop syscall cost dominates and a
// kernel-resident completion program helps most (see src/apps/find.h
// RunChain and DESIGN.md §14).
//
// Block layout (matching ProgKind::kChainWalk):
//   [0, 8)           next block's file offset, int64 little-endian; -1 ends
//   [8, 16)          name length, int64 little-endian
//   [16, 16 + len)   name bytes; rest of the block is zero padding
#ifndef SLEDS_SRC_WORKLOAD_CHAIN_GEN_H_
#define SLEDS_SRC_WORKLOAD_CHAIN_GEN_H_

#include <string_view>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

// Marker substring carried by every k-th visited block's name. Generated
// names are otherwise "node-NNNNNN", so the marker cannot occur by accident.
inline constexpr std::string_view kChainMarker = "XCHAINX";

struct ChainGenOptions {
  int64_t num_blocks = 1024;
  int64_t block_bytes = kPageSize;
  // Every `marker_every`-th block in *visit order* (1-based: visits k, 2k,
  // ...) gets the marker in its name; 0 disables markers entirely.
  int64_t marker_every = 0;
};

struct ChainGenInfo {
  int64_t head_offset = 0;  // where the walk starts (always block 0)
  int64_t file_bytes = 0;
  int64_t marker_count = 0;
};

// Create `path` as a chain file: `num_blocks` blocks whose visit order is a
// seeded random permutation starting at file offset 0. Deterministic for a
// given rng state.
Result<ChainGenInfo> GenerateChainFile(SimKernel& kernel, Process& process,
                                       std::string_view path, const ChainGenOptions& options,
                                       Rng& rng);

}  // namespace sled

#endif  // SLEDS_SRC_WORKLOAD_CHAIN_GEN_H_
