// The measurement harness implementing the paper's experimental protocol
// (§5.1): warm file cache, the first run discarded, twelve runs per
// configuration executed repeatedly in the same mode, means with 90%
// confidence intervals.
#ifndef SLEDS_SRC_WORKLOAD_EXPERIMENT_H_
#define SLEDS_SRC_WORKLOAD_EXPERIMENT_H_

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/kernel/sim_kernel.h"
#include "src/workload/testbed.h"

namespace sled {

inline constexpr int kPaperRepeats = 12;

// Stats deltas of one application run executed in a fresh process.
struct RunStats {
  Duration elapsed;
  int64_t major_faults = 0;
};

// Execute `fn` in a fresh process; elapsed is the process's CPU + I/O time.
RunStats MeasureRun(SimKernel& kernel, const std::function<void(SimKernel&, Process&)>& fn);

// One measured configuration: time and fault summaries over `repeats` runs
// after one discarded warm-up run. `per_run_setup` (may be empty) runs before
// every run including the warm-up — e.g. moving grep's random marker.
struct MeasuredPoint {
  Summary seconds;
  Summary faults;
};

MeasuredPoint RunWarmCacheSeries(
    Testbed& tb, int repeats, Rng& rng,
    const std::function<void(SimKernel&, Process&, Rng&)>& per_run_setup,
    const std::function<void(SimKernel&, Process&)>& run);

// Paper file-size sweeps.
std::vector<int64_t> PaperUnixSizes();      // 8..128 MB step 8 (Figs 7-13)
std::vector<int64_t> PaperLheasoftSizes();  // 8..64 MB step 8 (Figs 14-15)

}  // namespace sled

#endif  // SLEDS_SRC_WORKLOAD_EXPERIMENT_H_
