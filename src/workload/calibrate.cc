#include "src/workload/calibrate.h"

#include <algorithm>
#include <string>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace sled {
namespace {

constexpr int64_t kScratchBytes = 8 * kMiB;
constexpr int kLatencySamples = 16;

// Pick a readable file on the fs for probing: a scratch file if writable,
// else the first regular file found at the mount root.
Result<std::string> ProbeFile(SimKernel& kernel, Process& process, const std::string& mount,
                              FileSystem* fs) {
  const std::string scratch = (mount == "/" ? "" : mount) + "/.sleds_calib";
  if (!fs->read_only()) {
    SLED_ASSIGN_OR_RETURN(int fd, kernel.Create(process, scratch));
    const std::string block(static_cast<size_t>(256 * kKiB), 'c');
    int64_t written = 0;
    while (written < kScratchBytes) {
      SLED_ASSIGN_OR_RETURN(
          int64_t n, kernel.Write(process, fd, std::span<const char>(block.data(), block.size())));
      written += n;
    }
    SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
    return scratch;
  }
  SLED_ASSIGN_OR_RETURN(std::vector<DirEntry> entries, kernel.ReadDir(process, mount));
  for (const DirEntry& e : entries) {
    if (!e.is_dir) {
      const std::string path = (mount == "/" ? "" : mount) + "/" + e.name;
      SLED_ASSIGN_OR_RETURN(InodeAttr attr, kernel.Stat(process, path));
      if (attr.size >= kScratchBytes / 2) {
        return path;
      }
    }
  }
  return Err::kNoEnt;
}

struct Measured {
  DeviceCharacteristics chars;
};

Result<Measured> MeasureFile(SimKernel& kernel, Process& process, const std::string& path,
                             bool from_cache) {
  SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
  SLED_ASSIGN_OR_RETURN(InodeAttr attr, kernel.Fstat(process, fd));
  const int64_t probe_bytes = std::min<int64_t>(attr.size, kScratchBytes);

  // Bandwidth: one sequential sweep. Warm the cache first if measuring
  // memory; drop it if measuring the device.
  std::vector<char> buf(static_cast<size_t>(256 * kKiB));
  auto sweep = [&]() -> Result<Duration> {
    SLED_RETURN_IF_ERROR(kernel.Lseek(process, fd, 0, Whence::kSet));
    const TimePoint t0 = kernel.clock().Now();
    int64_t remaining = probe_bytes;
    while (remaining > 0) {
      const int64_t want = std::min<int64_t>(remaining, static_cast<int64_t>(buf.size()));
      SLED_ASSIGN_OR_RETURN(
          int64_t n, kernel.Read(process, fd, std::span<char>(buf.data(),
                                                              static_cast<size_t>(want))));
      if (n == 0) {
        break;
      }
      remaining -= n;
    }
    return kernel.clock().Now() - t0;
  };
  if (from_cache) {
    SLED_RETURN_IF_ERROR(sweep());  // warm
  } else {
    kernel.DropCaches();
  }
  SLED_ASSIGN_OR_RETURN(Duration sweep_time, sweep());
  const double bandwidth =
      static_cast<double>(probe_bytes) / std::max(sweep_time.ToSeconds(), 1e-12);

  // Syscall baseline: a read at EOF goes through the whole syscall path but
  // touches no pages; subtracting it isolates the storage-level cost.
  char b;
  SLED_RETURN_IF_ERROR(kernel.Lseek(process, fd, attr.size, Whence::kSet));
  const TimePoint b0 = kernel.clock().Now();
  SLED_RETURN_IF_ERROR(kernel.Read(process, fd, std::span<char>(&b, 1)));
  const double baseline = (kernel.clock().Now() - b0).ToSeconds();

  // Latency: scattered single-byte reads; subtract the baseline and the
  // transfer component of the pages the kernel demand-fetches per probe.
  Rng rng(12345);
  const int64_t pages = PagesFor(probe_bytes);
  double latency_sum = 0.0;
  for (int i = 0; i < kLatencySamples; ++i) {
    if (!from_cache) {
      kernel.DropCaches();
    }
    const int64_t page = rng.Uniform(0, std::max<int64_t>(0, pages - 5));
    SLED_RETURN_IF_ERROR(kernel.Lseek(process, fd, page * kPageSize, Whence::kSet));
    const TimePoint t0 = kernel.clock().Now();
    SLED_RETURN_IF_ERROR(kernel.Read(process, fd, std::span<char>(&b, 1)));
    const Duration sample = kernel.clock().Now() - t0;
    const double fetched_bytes =
        from_cache ? 1.0 : static_cast<double>(kernel.config().min_readahead_pages) * kPageSize;
    latency_sum += std::max(0.0, sample.ToSeconds() - baseline - fetched_bytes / bandwidth);
  }
  SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
  Measured m;
  m.chars.latency = SecondsF(latency_sum / kLatencySamples);
  m.chars.bandwidth_bps = bandwidth;
  return m;
}

}  // namespace

Result<std::vector<CalibrationRow>> CalibrateSledsTable(SimKernel& kernel, Process& process) {
  std::vector<CalibrationRow> rows;
  const SledsTable& table = kernel.sleds_table();

  for (const auto& [mount, fs_id] : kernel.vfs().Mounts()) {
    FileSystem* fs = kernel.vfs().FsById(fs_id);
    if (fs->Levels().size() != 1) {
      // Multi-level (HSM): keep nominals.
      for (size_t i = 0; i < fs->Levels().size(); ++i) {
        auto level = table.GlobalLevelOf(fs_id, static_cast<int>(i));
        if (level.ok()) {
          rows.push_back({level.value(), fs->Levels()[i].name,
                          table.row(level.value()).chars, false});
        }
      }
      continue;
    }
    auto probe = ProbeFile(kernel, process, mount, fs);
    if (!probe.ok()) {
      continue;  // nothing to measure with; keep the nominal
    }
    SLED_ASSIGN_OR_RETURN(Measured m, MeasureFile(kernel, process, probe.value(), false));
    SLED_ASSIGN_OR_RETURN(int level, table.GlobalLevelOf(fs_id, 0));
    SLED_RETURN_IF_ERROR(kernel.IoctlSledsFill(process, level, m.chars));
    rows.push_back({level, fs->Levels()[0].name, m.chars, true});

    // Use the first measurable file also for the memory row (once).
    if (std::none_of(rows.begin(), rows.end(),
                     [](const CalibrationRow& r) { return r.level == kMemoryLevel; })) {
      SLED_ASSIGN_OR_RETURN(Measured mem, MeasureFile(kernel, process, probe.value(), true));
      SLED_RETURN_IF_ERROR(kernel.IoctlSledsFill(process, kMemoryLevel, mem.chars));
      rows.push_back({kMemoryLevel, "memory", mem.chars, true});
    }
    if (!fs->read_only()) {
      const std::string scratch = (mount == "/" ? "" : mount) + "/.sleds_calib";
      // Not an error swallow: the scratch file only exists if the write probe
      // ran; kNoEnt here is the normal read-only-probe case.
      (void)kernel.Unlink(process, scratch);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const CalibrationRow& a, const CalibrationRow& b) { return a.level < b.level; });
  return rows;
}

}  // namespace sled
