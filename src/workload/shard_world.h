// Shard worlds: the unit of work the ShardRuntime partitions across cores.
//
// A world is one simulated machine — its own SimKernel with two data mounts
// (ext2 disk at /data, flash at /ssd) — plus a closed-loop population of
// processes running a mixed syscall workload against both mounts. Everything
// a world does is a pure function of (config, base_seed, world_id): the
// shard it lands on, the thread that runs it, and the wall clock never enter
// the simulation, which is what makes N-shard merges comparable to the
// single-shard oracle byte for byte.
#ifndef SLEDS_SRC_WORKLOAD_SHARD_WORLD_H_
#define SLEDS_SRC_WORKLOAD_SHARD_WORLD_H_

#include <cstdint>

#include "src/obs/merge.h"

namespace sled {

struct ShardWorldConfig {
  int64_t world_id = 0;
  uint64_t base_seed = 1;  // per-world streams derive from (base_seed, world_id)
  int shard_id = 0;        // placement handle only; forwarded to the kernel

  // Population and footprint.
  int processes = 3;
  int files_per_process = 3;  // alternating between the /data and /ssd mounts
  int64_t file_kib = 192;
  int64_t ops_per_process = 120;
  int64_t cache_pages = 1024;
};

// Aggregate outcome of one world. Integer-valued so cross-shard comparisons
// are exact; operator== is what the differential test leans on.
struct ShardWorldResult {
  int64_t world_id = 0;
  int64_t sim_ns = 0;  // final kernel clock
  int64_t syscalls = 0;
  int64_t major_faults = 0;
  int64_t pages_paged_in = 0;
  int64_t pages_written_back = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;

  bool operator==(const ShardWorldResult&) const = default;
};

// Build the world's testbed, run every process's closed-loop mix, flush, and
// absorb the world's Observer into `acc` (skipped when null). `acc` must be
// owned by the calling shard's thread.
ShardWorldResult RunShardWorld(const ShardWorldConfig& config, ObsAccumulator* acc);

}  // namespace sled

#endif  // SLEDS_SRC_WORKLOAD_SHARD_WORLD_H_
