// Testbed construction: simulated machines matching the paper's two
// experimental setups (Tables 2 and 3) plus the HSM extension testbed.
//
// The Unix-utility machine has 64 MB of RAM of which roughly 40 MB is
// available to cache file pages (§5.1: a 128 MB file is "roughly three times
// the size of the portion of memory available to cache file pages"), and its
// data file system lives on a hard disk, a CD-ROM, or an NFS mount with the
// Table 2 characteristics. The LHEASOFT machine is faster (Table 3).
#ifndef SLEDS_SRC_WORKLOAD_TESTBED_H_
#define SLEDS_SRC_WORKLOAD_TESTBED_H_

#include <memory>
#include <string>

#include "src/fs/hsm_fs.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

enum class StorageKind { kDisk, kCdRom, kNfs, kHsm };

std::string_view StorageKindName(StorageKind kind);

struct TestbedConfig {
  StorageKind kind = StorageKind::kDisk;
  // ~40 MiB of 4 KiB pages.
  int64_t cache_pages = 10240;
  ReplacementPolicy cache_policy = ReplacementPolicy::kLru;
  DeviceCharacteristics memory{Nanoseconds(175), 48.0e6, {}};  // Table 2 row 1
  int min_readahead_pages = 4;
  int max_readahead_pages = 32;
  ExtentAllocatorConfig alloc;  // data-FS allocation (fragmentation ablation)
  HsmFsConfig hsm;              // used when kind == kHsm
  IoEngineConfig io;            // I/O engine selection (default: environment)
  uint64_t seed = 1;
  // Shard placement (ShardRuntime worlds): threaded into the kernel as its
  // shard handle. Identity only; must never influence simulated behavior.
  int shard_id = 0;
  int64_t world_id = 0;
};

// A simulated machine: root fs on a small system disk, the data file system
// mounted at /data.
struct Testbed {
  std::unique_ptr<SimKernel> kernel;
  std::string data_dir = "/data";
  uint32_t data_fs_id = 0;
  StorageKind kind = StorageKind::kDisk;

  // Seal the data file system if it is mastered media (IsoFs); no-op
  // otherwise. Call after writing the test files.
  void FinishMastering();
};

Testbed MakeTestbed(const TestbedConfig& config);

// The Table 2 machine with the chosen data device.
Testbed MakeUnixTestbed(StorageKind kind, uint64_t seed);

// The Table 3 machine (memory 210 ns / 87 MB/s, disk 16.5 ms / 7.0 MB/s).
Testbed MakeLheasoftTestbed(uint64_t seed);

// The HSM extension testbed: disk staging area + tape library at /data.
Testbed MakeHsmTestbed(uint64_t seed);

}  // namespace sled

#endif  // SLEDS_SRC_WORKLOAD_TESTBED_H_
