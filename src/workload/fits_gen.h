// FITS image workload generation for the LHEASOFT experiments.
#ifndef SLEDS_SRC_WORKLOAD_FITS_GEN_H_
#define SLEDS_SRC_WORKLOAD_FITS_GEN_H_

#include <string_view>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/fits/fits.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

// Create a square 2-D image at `path` whose on-disk size (header + padded
// data) is approximately `approx_bytes`. Pixels are a smooth gradient plus
// noise (so histograms and rebinning produce meaningful output). Dimensions
// are rounded to a multiple of 4 so fimgbin's 2x and 4x boxcars divide them.
Result<FitsHeader> GenerateFitsImage(SimKernel& kernel, Process& process, std::string_view path,
                                     int64_t approx_bytes, int bitpix, Rng& rng);

}  // namespace sled

#endif  // SLEDS_SRC_WORKLOAD_FITS_GEN_H_
