#include "src/workload/experiment.h"

#include "src/common/units.h"

namespace sled {

RunStats MeasureRun(SimKernel& kernel, const std::function<void(SimKernel&, Process&)>& fn) {
  Process& p = kernel.CreateProcess("run");
  fn(kernel, p);
  RunStats stats;
  stats.elapsed = p.stats().elapsed();
  stats.major_faults = p.stats().major_faults;
  return stats;
}

MeasuredPoint RunWarmCacheSeries(
    Testbed& tb, int repeats, Rng& rng,
    const std::function<void(SimKernel&, Process&, Rng&)>& per_run_setup,
    const std::function<void(SimKernel&, Process&)>& run) {
  auto one_run = [&]() -> RunStats {
    if (per_run_setup) {
      Process& setup = tb.kernel->CreateProcess("setup");
      per_run_setup(*tb.kernel, setup, rng);
    }
    return MeasureRun(*tb.kernel, run);
  };
  // Warm-up: "The first run to warm the cache was discarded from the result."
  (void)one_run();
  std::vector<double> seconds;
  std::vector<double> faults;
  seconds.reserve(static_cast<size_t>(repeats));
  faults.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    const RunStats stats = one_run();
    seconds.push_back(stats.elapsed.ToSeconds());
    faults.push_back(static_cast<double>(stats.major_faults));
  }
  return {Summarize(seconds), Summarize(faults)};
}

std::vector<int64_t> PaperUnixSizes() {
  std::vector<int64_t> sizes;
  for (int mb = 8; mb <= 128; mb += 8) {
    sizes.push_back(MiB(mb));
  }
  return sizes;
}

std::vector<int64_t> PaperLheasoftSizes() {
  std::vector<int64_t> sizes;
  for (int mb = 8; mb <= 64; mb += 8) {
    sizes.push_back(MiB(mb));
  }
  return sizes;
}

}  // namespace sled
