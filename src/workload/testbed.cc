#include "src/workload/testbed.h"

#include "src/common/log.h"
#include "src/device/cdrom_device.h"
#include "src/device/disk_device.h"
#include "src/device/network_device.h"
#include "src/fs/extent_file_system.h"

namespace sled {

std::string_view StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kDisk:
      return "ext2";
    case StorageKind::kCdRom:
      return "cdrom";
    case StorageKind::kNfs:
      return "nfs";
    case StorageKind::kHsm:
      return "hsm";
  }
  return "?";
}

void Testbed::FinishMastering() {
  auto* iso = dynamic_cast<IsoFs*>(kernel->vfs().FsById(data_fs_id));
  if (iso != nullptr) {
    kernel->DropCaches();  // flush mastering writes to the medium
    iso->Seal();
  }
}

Testbed MakeTestbed(const TestbedConfig& config) {
  Testbed tb;
  tb.kind = config.kind;
  KernelConfig kc;
  kc.cache.capacity_pages = config.cache_pages;
  kc.cache.policy = config.cache_policy;
  kc.memory = config.memory;
  kc.min_readahead_pages = config.min_readahead_pages;
  kc.max_readahead_pages = config.max_readahead_pages;
  kc.io = config.io;
  kc.shard_id = config.shard_id;
  kc.world_id = config.world_id;
  tb.kernel = std::make_unique<SimKernel>(kc);

  // Small system disk at /.
  DiskDeviceConfig sys_disk;
  sys_disk.capacity_bytes = 2LL * 1000 * 1000 * 1000;
  sys_disk.seed = config.seed * 11 + 1;
  auto root = std::make_unique<ExtFs>("sys", std::make_unique<DiskDevice>(sys_disk, "sys-disk"));
  SLED_CHECK(tb.kernel->Mount("/", std::move(root)).ok(), "mounting / failed");

  std::unique_ptr<FileSystem> data;
  switch (config.kind) {
    case StorageKind::kDisk: {
      DiskDeviceConfig dc;
      dc.seed = config.seed * 11 + 2;
      data = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(dc), config.alloc);
      break;
    }
    case StorageKind::kCdRom: {
      CdRomDeviceConfig cc;
      cc.seed = config.seed * 11 + 3;
      data = std::make_unique<IsoFs>("cdrom", std::make_unique<CdRomDevice>(cc), config.alloc);
      break;
    }
    case StorageKind::kNfs: {
      NetworkDeviceConfig nc;
      nc.seed = config.seed * 11 + 4;
      data = std::make_unique<NfsFs>("nfs", std::make_unique<NetworkDevice>(nc), config.alloc);
      break;
    }
    case StorageKind::kHsm: {
      HsmFsConfig hc = config.hsm;
      hc.staging_disk.seed = config.seed * 11 + 5;
      data = std::make_unique<HsmFs>("hsm", hc);
      break;
    }
  }
  auto mounted = tb.kernel->Mount(tb.data_dir, std::move(data));
  SLED_CHECK(mounted.ok(), "mounting %s failed", tb.data_dir.c_str());
  tb.data_fs_id = mounted.value();
  return tb;
}

Testbed MakeUnixTestbed(StorageKind kind, uint64_t seed) {
  TestbedConfig config;
  config.kind = kind;
  config.seed = seed;
  return MakeTestbed(config);
}

Testbed MakeLheasoftTestbed(uint64_t seed) {
  TestbedConfig config;
  config.kind = StorageKind::kDisk;
  config.seed = seed;
  // Table 3: memory 210 ns / 87 MB/s, disk 16.5 ms / 7.0 MB/s.
  config.memory = DeviceCharacteristics{Nanoseconds(210), 87.0e6, {}};
  // Seek curve averaging ~12.3 ms + half a 7200 rpm rotation ~= 16.5 ms.
  Testbed tb;
  KernelConfig kc;
  kc.cache.capacity_pages = config.cache_pages;
  kc.memory = config.memory;
  tb.kernel = std::make_unique<SimKernel>(kc);
  DiskDeviceConfig sys_disk;
  sys_disk.capacity_bytes = 2LL * 1000 * 1000 * 1000;
  sys_disk.seed = seed * 13 + 1;
  auto root = std::make_unique<ExtFs>("sys", std::make_unique<DiskDevice>(sys_disk, "sys-disk"));
  SLED_CHECK(tb.kernel->Mount("/", std::move(root)).ok(), "mounting / failed");
  DiskDeviceConfig dc;
  dc.min_seek = MicrosecondsF(1200);
  dc.max_seek = MillisecondsF(18.0);
  dc.outer_bandwidth_bps = 7.7e6;
  dc.inner_bandwidth_bps = 6.3e6;
  dc.seed = seed * 13 + 2;
  auto data = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(dc));
  auto mounted = tb.kernel->Mount(tb.data_dir, std::move(data));
  SLED_CHECK(mounted.ok(), "mounting /data failed");
  tb.data_fs_id = mounted.value();
  tb.kind = StorageKind::kDisk;
  return tb;
}

Testbed MakeHsmTestbed(uint64_t seed) {
  TestbedConfig config;
  config.kind = StorageKind::kHsm;
  config.seed = seed;
  config.hsm.staging_disk.capacity_bytes = 9LL * 1000 * 1000 * 1000;
  config.hsm.staging_capacity_bytes = 512LL * 1024 * 1024;
  config.hsm.num_tapes = 8;
  config.hsm.num_drives = 1;
  return MakeTestbed(config);
}

}  // namespace sled
