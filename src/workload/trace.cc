#include "src/workload/trace.h"

#include <map>
#include <sstream>

#include "src/sleds/picker.h"

namespace sled {
namespace {

const char* OpName(TraceOp op) {
  switch (op) {
    case TraceOp::kOpen:
      return "open";
    case TraceOp::kClose:
      return "close";
    case TraceOp::kRead:
      return "read";
    case TraceOp::kWrite:
      return "write";
    case TraceOp::kLseek:
      return "lseek";
    case TraceOp::kMmapRead:
      return "mmap_read";
  }
  return "?";
}

}  // namespace

std::string FormatTrace(const Trace& trace) {
  std::string out;
  for (const TraceEvent& e : trace) {
    out += OpName(e.op);
    out += ' ' + std::to_string(e.fd);
    switch (e.op) {
      case TraceOp::kOpen:
        out += ' ' + e.path;
        break;
      case TraceOp::kClose:
        break;
      case TraceOp::kRead:
      case TraceOp::kWrite:
        out += ' ' + std::to_string(e.length);
        break;
      case TraceOp::kLseek:
        out += ' ' + std::to_string(e.offset);
        break;
      case TraceOp::kMmapRead:
        out += ' ' + std::to_string(e.offset) + ' ' + std::to_string(e.length);
        break;
    }
    out += '\n';
  }
  return out;
}

Result<Trace> ParseTrace(const std::string& text) {
  Trace trace;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    std::string op;
    TraceEvent e;
    if (!(ls >> op >> e.fd)) {
      return Err::kInval;
    }
    if (op == "open") {
      e.op = TraceOp::kOpen;
      if (!(ls >> e.path)) {
        return Err::kInval;
      }
    } else if (op == "close") {
      e.op = TraceOp::kClose;
    } else if (op == "read" || op == "write") {
      e.op = op == "read" ? TraceOp::kRead : TraceOp::kWrite;
      if (!(ls >> e.length)) {
        return Err::kInval;
      }
    } else if (op == "lseek") {
      e.op = TraceOp::kLseek;
      if (!(ls >> e.offset)) {
        return Err::kInval;
      }
    } else if (op == "mmap_read") {
      e.op = TraceOp::kMmapRead;
      if (!(ls >> e.offset >> e.length)) {
        return Err::kInval;
      }
    } else {
      return Err::kInval;
    }
    trace.push_back(std::move(e));
  }
  return trace;
}

TraceStats SummarizeTrace(const Trace& trace) {
  TraceStats stats;
  stats.events = static_cast<int64_t>(trace.size());
  for (const TraceEvent& e : trace) {
    switch (e.op) {
      case TraceOp::kOpen:
        ++stats.opens;
        break;
      case TraceOp::kRead:
      case TraceOp::kMmapRead:
        stats.bytes_read += e.length;
        break;
      case TraceOp::kWrite:
        stats.bytes_written += e.length;
        break;
      case TraceOp::kLseek:
        ++stats.seeks;
        break;
      case TraceOp::kClose:
        break;
    }
  }
  return stats;
}

// ---- recording ----

Result<int> TraceRecorder::Open(std::string_view path) {
  SLED_ASSIGN_OR_RETURN(int fd, kernel_.Open(process_, path));
  trace_.push_back({TraceOp::kOpen, fd, std::string(path), 0, 0});
  return fd;
}

Result<void> TraceRecorder::Close(int fd) {
  SLED_RETURN_IF_ERROR(kernel_.Close(process_, fd));
  trace_.push_back({TraceOp::kClose, fd, "", 0, 0});
  return Result<void>::Ok();
}

Result<int64_t> TraceRecorder::Read(int fd, std::span<char> dst) {
  SLED_ASSIGN_OR_RETURN(int64_t n, kernel_.Read(process_, fd, dst));
  if (n > 0) {
    trace_.push_back({TraceOp::kRead, fd, "", 0, n});
  }
  return n;
}

Result<int64_t> TraceRecorder::Write(int fd, std::span<const char> src) {
  SLED_ASSIGN_OR_RETURN(int64_t n, kernel_.Write(process_, fd, src));
  if (n > 0) {
    trace_.push_back({TraceOp::kWrite, fd, "", 0, n});
  }
  return n;
}

Result<int64_t> TraceRecorder::Lseek(int fd, int64_t offset, Whence whence) {
  SLED_ASSIGN_OR_RETURN(int64_t absolute, kernel_.Lseek(process_, fd, offset, whence));
  trace_.push_back({TraceOp::kLseek, fd, "", absolute, 0});
  return absolute;
}

Result<std::string_view> TraceRecorder::MmapRead(int fd, int64_t offset, int64_t length) {
  SLED_ASSIGN_OR_RETURN(std::string_view view, kernel_.MmapRead(process_, fd, offset, length));
  trace_.push_back({TraceOp::kMmapRead, fd, "", offset, static_cast<int64_t>(view.size())});
  return view;
}

// ---- replay ----

namespace {

// A per-descriptor session: either replayed verbatim, or (read-only sessions
// under reorder mode) re-planned with the picker.
struct Session {
  int real_fd = -1;
  bool wrote = false;
};

Result<void> ReplayPickerSession(SimKernel& kernel, Process& p, int fd,
                                 const ReplayOptions& options) {
  PickerOptions picker_options;
  picker_options.preferred_chunk_bytes = options.picker_chunk_bytes;
  SLED_ASSIGN_OR_RETURN(std::unique_ptr<SledsPicker> picker,
                        SledsPicker::Create(kernel, p, fd, picker_options));
  std::vector<char> buf(static_cast<size_t>(options.picker_chunk_bytes));
  while (true) {
    SLED_ASSIGN_OR_RETURN(SledsPicker::Pick pick, picker->NextRead());
    if (pick.length == 0) {
      return Result<void>::Ok();
    }
    SLED_RETURN_IF_ERROR(kernel.Lseek(p, fd, pick.offset, Whence::kSet));
    SLED_ASSIGN_OR_RETURN(
        int64_t n,
        kernel.Read(p, fd, std::span<char>(buf.data(), static_cast<size_t>(pick.length))));
    if (n != pick.length) {
      return Err::kIo;
    }
  }
}

// Does this fd's session (starting at `start`) perform any writes?
bool SessionWrites(const Trace& trace, size_t start, int fd) {
  for (size_t i = start; i < trace.size(); ++i) {
    if (trace[i].fd != fd) {
      continue;
    }
    if (trace[i].op == TraceOp::kWrite) {
      return true;
    }
    if (trace[i].op == TraceOp::kClose) {
      return false;
    }
  }
  return false;
}

}  // namespace

Result<ReplayResult> ReplayTrace(SimKernel& kernel, const Trace& trace,
                                 const ReplayOptions& options) {
  Process& p = kernel.CreateProcess("replay");
  std::map<int, Session> sessions;  // trace fd -> live session
  std::vector<char> buf;

  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    switch (e.op) {
      case TraceOp::kOpen: {
        Session session;
        SLED_ASSIGN_OR_RETURN(session.real_fd, kernel.Open(p, e.path));
        if (options.reorder_reads_with_sleds && !SessionWrites(trace, i + 1, e.fd)) {
          // Re-plan the whole read-only session now, then skip its recorded
          // reads/seeks as they come by.
          SLED_RETURN_IF_ERROR(ReplayPickerSession(kernel, p, session.real_fd, options));
          session.wrote = false;
          sessions[e.fd] = session;
          // Mark the session as pre-served by recording a negative fd.
          sessions[e.fd].real_fd = ~session.real_fd;
          break;
        }
        sessions[e.fd] = session;
        break;
      }
      case TraceOp::kClose: {
        auto it = sessions.find(e.fd);
        if (it == sessions.end()) {
          return Err::kBadF;
        }
        const int real = it->second.real_fd < 0 ? ~it->second.real_fd : it->second.real_fd;
        SLED_RETURN_IF_ERROR(kernel.Close(p, real));
        sessions.erase(it);
        break;
      }
      case TraceOp::kRead:
      case TraceOp::kLseek:
      case TraceOp::kMmapRead: {
        auto it = sessions.find(e.fd);
        if (it == sessions.end()) {
          return Err::kBadF;
        }
        if (it->second.real_fd < 0) {
          break;  // session was re-planned wholesale; skip recorded reads
        }
        if (e.op == TraceOp::kLseek) {
          SLED_RETURN_IF_ERROR(kernel.Lseek(p, it->second.real_fd, e.offset, Whence::kSet));
        } else if (e.op == TraceOp::kRead) {
          buf.resize(static_cast<size_t>(e.length));
          SLED_RETURN_IF_ERROR(
              kernel.Read(p, it->second.real_fd, std::span<char>(buf.data(), buf.size())));
        } else {
          SLED_RETURN_IF_ERROR(kernel.MmapRead(p, it->second.real_fd, e.offset, e.length));
        }
        break;
      }
      case TraceOp::kWrite: {
        auto it = sessions.find(e.fd);
        if (it == sessions.end() || it->second.real_fd < 0) {
          return Err::kBadF;
        }
        buf.assign(static_cast<size_t>(e.length), 'w');
        SLED_RETURN_IF_ERROR(
            kernel.Write(p, it->second.real_fd, std::span<const char>(buf.data(), buf.size())));
        break;
      }
    }
  }
  // Close anything the trace left open (truncated captures).
  for (auto& [fd, session] : sessions) {
    const int real = session.real_fd < 0 ? ~session.real_fd : session.real_fd;
    // Not an error swallow: best-effort cleanup; kBadF just means the trace
    // already closed it.
    (void)kernel.Close(p, real);
  }
  return ReplayResult{p.stats().elapsed(), p.stats().major_faults};
}

}  // namespace sled
