// Text-file workload generation for the wc / grep experiments: files of
// newline-terminated lines of pseudo-random words, with an optional unique
// marker line that grep searches for (placed, and re-placed between runs, at
// a random position — "a single match that was placed randomly in the test
// file", §5.2).
#ifndef SLEDS_SRC_WORKLOAD_TEXT_GEN_H_
#define SLEDS_SRC_WORKLOAD_TEXT_GEN_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

// The unique token used as grep's needle. Generated filler never contains
// uppercase characters, so the marker cannot occur by accident.
inline constexpr std::string_view kGrepMarker = "XNEEDLEX";

// Line length used by the generator (fixed so markers can be swapped
// in place without changing the file size).
inline constexpr int64_t kGenLineLen = 64;

// Create `path` with `bytes` bytes of lowercase text lines. Returns the
// number of lines written.
Result<int64_t> GenerateTextFile(SimKernel& kernel, Process& process, std::string_view path,
                                 int64_t bytes, Rng& rng);

// Place the marker on the line containing `byte_offset`, replacing that
// line's content (file size unchanged). Returns the marker line's offset.
Result<int64_t> PlaceMarker(SimKernel& kernel, Process& process, std::string_view path,
                            int64_t byte_offset);

// Overwrite the marker line at `marker_offset` with filler again.
Result<void> RemoveMarker(SimKernel& kernel, Process& process, std::string_view path,
                          int64_t marker_offset, Rng& rng);

// Move the marker (removing the old one at `old_offset`, < 0 if none) to the
// line containing `new_byte_offset`, then flush and evict every page the move
// touched. This makes the marker's position independent of the cache state —
// in the paper's experiment the match was part of the file, not a fresh
// write, so its page is only cached if a previous *run* read it.
Result<int64_t> MoveMarkerScrubbed(SimKernel& kernel, Process& process, std::string_view path,
                                   int64_t old_offset, int64_t new_byte_offset, Rng& rng);

}  // namespace sled

#endif  // SLEDS_SRC_WORKLOAD_TEXT_GEN_H_
