#include "src/workload/shard_world.h"

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/log.h"
#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/device/ssd_device.h"
#include "src/fs/extent_file_system.h"
#include "src/workload/testbed.h"

namespace sled {
namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Independent stream derivation. Chaining through SplitMix64 keeps every
// (world, process) stream decorrelated from its neighbors while staying a
// pure function of the inputs — no shard id, no thread id.
uint64_t DeriveSeed(uint64_t base, uint64_t salt) { return SplitMix64(base ^ SplitMix64(salt)); }

std::string FilePath(int64_t world, int process, int file) {
  // Odd file indexes live on flash, even on the disk mount: every process
  // exercises both mounts.
  std::string path = (file % 2 == 0) ? "/data/w" : "/ssd/w";
  path += std::to_string(world);
  path += 'p';
  path += std::to_string(process);
  path += 'f';
  path += std::to_string(file);
  return path;
}

}  // namespace

ShardWorldResult RunShardWorld(const ShardWorldConfig& config, ObsAccumulator* acc) {
  SLED_CHECK(config.processes >= 1 && config.files_per_process >= 1 &&
                 config.ops_per_process >= 1 && config.file_kib >= 4,
             "degenerate shard world config");
  const uint64_t world_seed = DeriveSeed(config.base_seed, static_cast<uint64_t>(config.world_id));

  TestbedConfig tc;
  tc.kind = StorageKind::kDisk;
  tc.cache_pages = config.cache_pages;
  tc.seed = world_seed | 1;
  tc.shard_id = config.shard_id;
  tc.world_id = config.world_id;
  Testbed tb = MakeTestbed(tc);
  SimKernel& kernel = *tb.kernel;

  // Second data mount: a flash file system at /ssd, so SLED scans and
  // writeback see two storage levels with different cost structure.
  SsdDeviceConfig ssd_cfg;
  ssd_cfg.capacity_bytes = 64LL * 1024 * 1024;
  ssd_cfg.seed = DeriveSeed(world_seed, 0x55d);
  SLED_CHECK(
      kernel.Mount("/ssd", std::make_unique<ExtFs>("ssd", std::make_unique<SsdDevice>(ssd_cfg)))
          .ok(),
      "mounting /ssd failed");

  const int64_t file_bytes = config.file_kib * kKiB;
  std::vector<Process*> procs;
  procs.reserve(static_cast<size_t>(config.processes));
  std::string chunk(16 * kKiB, 'x');
  for (int p = 0; p < config.processes; ++p) {
    Process& proc = kernel.CreateProcess("w" + std::to_string(config.world_id) + ".p" +
                                         std::to_string(p));
    procs.push_back(&proc);
    for (int f = 0; f < config.files_per_process; ++f) {
      const std::string path = FilePath(config.world_id, p, f);
      auto fd = kernel.Create(proc, path);
      SLED_CHECK(fd.ok(), "create %s failed", path.c_str());
      for (int64_t written = 0; written < file_bytes;) {
        const int64_t n = std::min<int64_t>(static_cast<int64_t>(chunk.size()),
                                            file_bytes - written);
        auto w = kernel.Write(proc, fd.value(), std::span<const char>(chunk.data(),
                                                                      static_cast<size_t>(n)));
        SLED_CHECK(w.ok(), "populate write failed");
        written += w.value();
      }
      SLED_CHECK(kernel.Close(proc, fd.value()).ok(), "close failed");
    }
  }

  // Closed-loop mixed op stream per process. Individual operations may fail
  // under an active fault plan (check.sh's fault smoke runs the whole suite
  // with SLEDS_FAULT_SEED set); failures are part of the simulated outcome,
  // not harness errors, so results just absorb them.
  std::vector<char> read_buf(32 * kKiB);
  std::string write_buf(8 * kKiB, 'y');
  for (int p = 0; p < config.processes; ++p) {
    Process& proc = *procs[p];
    Rng rng(DeriveSeed(world_seed, 0x1000 + static_cast<uint64_t>(p)));
    for (int64_t op = 0; op < config.ops_per_process; ++op) {
      const int f = static_cast<int>(rng.Uniform(0, config.files_per_process - 1));
      const std::string path = FilePath(config.world_id, p, f);
      auto fd = kernel.Open(proc, path);
      if (!fd.ok()) {
        continue;
      }
      const int64_t page_off = rng.Uniform(0, std::max<int64_t>(file_bytes / kPageSize - 1, 0));
      const int64_t offset = page_off * kPageSize;
      const int roll = static_cast<int>(rng.Uniform(0, 99));
      if (roll < 45) {
        // Sequential chunk read from a random aligned start.
        (void)kernel.Lseek(proc, fd.value(), offset, Whence::kSet);
        (void)kernel.Read(proc, fd.value(),
                          std::span<char>(read_buf.data(), read_buf.size()));
      } else if (roll < 65) {
        // Point read.
        (void)kernel.Lseek(proc, fd.value(), offset, Whence::kSet);
        (void)kernel.Read(proc, fd.value(), std::span<char>(read_buf.data(), kPageSize));
      } else if (roll < 85) {
        // Dirtying overwrite; pages reach the device through writeback.
        (void)kernel.Lseek(proc, fd.value(), offset, Whence::kSet);
        (void)kernel.Write(proc, fd.value(),
                           std::span<const char>(write_buf.data(), write_buf.size()));
      } else if (roll < 92) {
        // Ranged SLED scan over the tail from the chosen offset.
        (void)kernel.IoctlSledsGet(proc, fd.value(), offset, file_bytes - offset);
      } else if (roll < 97) {
        (void)kernel.Fsync(proc, fd.value());
      } else {
        (void)kernel.Fstat(proc, fd.value());
        (void)kernel.ReadDir(proc, f % 2 == 0 ? "/data" : "/ssd");
      }
      (void)kernel.Close(proc, fd.value());
    }
  }
  kernel.FlushAllDirty();

  ShardWorldResult result;
  result.world_id = config.world_id;
  result.sim_ns = kernel.clock().Now().since_epoch().nanos();
  for (const Process* proc : procs) {
    result.syscalls += proc->stats().syscalls;
    result.major_faults += proc->stats().major_faults;
    result.bytes_read += proc->stats().bytes_read;
    result.bytes_written += proc->stats().bytes_written;
  }
  result.pages_paged_in = kernel.stats().pages_paged_in;
  result.pages_written_back = kernel.stats().pages_written_back;
  if (acc != nullptr) {
    acc->Absorb(kernel.obs());
  }
  return result;
}

}  // namespace sled
