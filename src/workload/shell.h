// sledsh — a scriptable shell over the simulated storage stack, the
// "scripts and other utilities built around this concept" the paper's
// conclusion envisions. One command per line; output is plain text. Used by
// examples/sledsh for interactive exploration and by tests as a high-level
// integration surface.
//
// Commands:
//   mount <ext2|cdrom|nfs|hsm|remote> <path>
//   genfile <path> <MB>            pseudo-random text
//   genfits <path> <MB>            FITS float image
//   genchain <path> <blocks> [every]  linked-block chain file
//   mkdir <path> | rm <path> | ls <path> | stat <path>
//   cat <path>                     read fully; report time and faults
//   wc [-s] [-m] [-p] <path>       -s: SLEDs order, -m: mmap, -p: in-kernel
//   grep [-s] [-q] [-n] [-p] <pattern> <path>
//   find <path> [-name <substr>] [-latency <pred>]
//   chain <path> [-name <substr>] [-p]  walk a chain file hop by hop
//
// -p runs the command as a kernel-resident completion program (grep needs
// -q with it); $SLEDS_PROGS=1 makes -p the default for wc/grep/chain.
//   sleds <path>                   the gmc properties panel
//   delivery <path>                estimated total delivery time
//   lock <path> | unlock <path>    FSLEDS_LOCK whole file / release
//   migrate <path> | recall <path> HSM control (hsm mounts only)
//   seal <path>                    finish mastering an ISO mount
//   dropcaches | flush | stats | clock
//   trace [n]                      last n kernel trace events as CSV (20)
//   iostat                         per-storage-level I/O metrics table
//   help
#ifndef SLEDS_SRC_WORKLOAD_SHELL_H_
#define SLEDS_SRC_WORKLOAD_SHELL_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

class SledShell {
 public:
  SledShell();

  // Execute one command line; returns the textual output (never throws; all
  // errors are reported in the output, prefixed "error:").
  std::string Execute(const std::string& line);

  // Convenience: run a whole script, concatenating per-line outputs, each
  // prefixed by "> <line>" for readability.
  std::string RunScript(const std::string& script);

  SimKernel& kernel() { return *kernel_; }

 private:
  std::string CmdMount(const std::vector<std::string>& args);
  std::string CmdGenFile(const std::vector<std::string>& args);
  std::string CmdGenFits(const std::vector<std::string>& args);
  std::string CmdGenChain(const std::vector<std::string>& args);
  std::string CmdCat(const std::vector<std::string>& args);
  std::string CmdWc(const std::vector<std::string>& args);
  std::string CmdGrep(const std::vector<std::string>& args);
  std::string CmdFind(const std::vector<std::string>& args);
  std::string CmdChain(const std::vector<std::string>& args);
  std::string CmdSleds(const std::vector<std::string>& args);
  std::string CmdDelivery(const std::vector<std::string>& args);
  std::string CmdLock(const std::vector<std::string>& args, bool lock);
  std::string CmdHsm(const std::vector<std::string>& args, bool migrate);
  std::string CmdSeal(const std::vector<std::string>& args);
  std::string CmdLs(const std::vector<std::string>& args);
  std::string CmdStat(const std::vector<std::string>& args);
  std::string CmdStats();
  std::string CmdTrace(const std::vector<std::string>& args);
  std::string CmdIostat();

  // Fresh process per command, like a shell forking.
  Process& NewProcess(const std::string& name);

  std::unique_ptr<SimKernel> kernel_;
  Rng rng_;
  // fds held open by `lock` commands, per path (released by `unlock`).
  std::map<std::string, std::pair<int, Process*>> lock_fds_;
};

}  // namespace sled

#endif  // SLEDS_SRC_WORKLOAD_SHELL_H_
