#include "src/workload/shell.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "src/apps/file_info.h"
#include "src/apps/find.h"
#include "src/apps/grep.h"
#include "src/apps/wc.h"
#include "src/device/cdrom_device.h"
#include "src/device/disk_device.h"
#include "src/device/network_device.h"
#include "src/device/ssd_device.h"
#include "src/fs/extent_file_system.h"
#include "src/fs/hsm_fs.h"
#include "src/fs/remote_fs.h"
#include "src/fs/tiered_fs.h"
#include "src/progs/progs_env.h"
#include "src/replica/replicated_fs.h"
#include "src/sleds/delivery.h"
#include "src/workload/chain_gen.h"
#include "src/workload/fits_gen.h"
#include "src/workload/text_gen.h"

namespace sled {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

std::string ErrText(Err e) { return "error: " + std::string(ErrName(e)) + "\n"; }

std::string Format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

constexpr char kHelp[] =
    "commands:\n"
    "  mount <ext2|zoned|cdrom|nfs|ssd|tiered|hsm|remote|replicated> <path>\n"
    "  genfile <path> <MB> | genfits <path> <MB>\n"
    "  genchain <path> <blocks> [marker-every]\n"
    "  mkdir|rm|ls|stat <path>\n"
    "  cat <path>\n"
    "  wc [-s] [-m] [-p] <path>\n"
    "  grep [-s] [-q] [-n] [-p] <pattern> <path>\n"
    "  find <path> [-name <substr>] [-latency <pred>] [-xdev]\n"
    "  chain <path> [-name <substr>] [-p]   (-p: in-kernel completion program)\n"
    "  sleds <path> | delivery <path>\n"
    "  lock <path> | unlock <path>\n"
    "  migrate <path> | recall <path> | seal <path>\n"
    "  dropcaches | flush | recover | stats | clock | help\n"
    "  trace [n]   (last n kernel trace events as CSV, default 20)\n"
    "  iostat      (per-storage-level I/O metrics)\n";

}  // namespace

SledShell::SledShell() : rng_(20000705) {
  KernelConfig config;
  config.cache.capacity_pages = 10240;  // the Table 2 machine
  kernel_ = std::make_unique<SimKernel>(config);
  DiskDeviceConfig sys;
  sys.capacity_bytes = 2LL * 1000 * 1000 * 1000;
  auto root = std::make_unique<ExtFs>("sys", std::make_unique<DiskDevice>(sys, "sys-disk"));
  SLED_CHECK(kernel_->Mount("/", std::move(root)).ok(), "root mount failed");
}

Process& SledShell::NewProcess(const std::string& name) {
  return kernel_->CreateProcess(name);
}

std::string SledShell::RunScript(const std::string& script) {
  std::string out;
  std::istringstream in(script);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    out += "> " + line + "\n";
    out += Execute(line);
  }
  return out;
}

std::string SledShell::Execute(const std::string& line) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return "";
  }
  const std::string& cmd = tokens[0];
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  if (cmd == "help") {
    return kHelp;
  }
  if (cmd == "mount") {
    return CmdMount(args);
  }
  if (cmd == "genfile") {
    return CmdGenFile(args);
  }
  if (cmd == "genfits") {
    return CmdGenFits(args);
  }
  if (cmd == "genchain") {
    return CmdGenChain(args);
  }
  if (cmd == "mkdir" && args.size() == 1) {
    auto r = kernel_->vfs().CreateDir(args[0]);
    return r.ok() ? "" : ErrText(r.error());
  }
  if (cmd == "rm" && args.size() == 1) {
    auto r = kernel_->Unlink(NewProcess("rm"), args[0]);
    return r.ok() ? "" : ErrText(r.error());
  }
  if (cmd == "ls") {
    return CmdLs(args);
  }
  if (cmd == "stat") {
    return CmdStat(args);
  }
  if (cmd == "cat") {
    return CmdCat(args);
  }
  if (cmd == "wc") {
    return CmdWc(args);
  }
  if (cmd == "grep") {
    return CmdGrep(args);
  }
  if (cmd == "find") {
    return CmdFind(args);
  }
  if (cmd == "chain") {
    return CmdChain(args);
  }
  if (cmd == "sleds") {
    return CmdSleds(args);
  }
  if (cmd == "delivery") {
    return CmdDelivery(args);
  }
  if (cmd == "lock") {
    return CmdLock(args, true);
  }
  if (cmd == "unlock") {
    return CmdLock(args, false);
  }
  if (cmd == "migrate") {
    return CmdHsm(args, true);
  }
  if (cmd == "recall") {
    return CmdHsm(args, false);
  }
  if (cmd == "seal") {
    return CmdSeal(args);
  }
  if (cmd == "dropcaches") {
    kernel_->DropCaches();
    return "";
  }
  if (cmd == "flush") {
    const Duration t = kernel_->FlushAllDirty();
    return Format("flushed in %s\n", t.ToString().c_str());
  }
  if (cmd == "recover") {
    // One pass of deferred background work: replica re-sync after an outage.
    const Duration t = kernel_->RunMaintenance();
    return Format("maintenance in %s\n", t.ToString().c_str());
  }
  if (cmd == "stats") {
    return CmdStats();
  }
  if (cmd == "trace") {
    return CmdTrace(args);
  }
  if (cmd == "iostat") {
    return CmdIostat();
  }
  if (cmd == "clock") {
    return Format("t = %s\n", kernel_->clock().Now().since_epoch().ToString().c_str());
  }
  return "error: unknown command '" + cmd + "' (try: help)\n";
}

std::string SledShell::CmdMount(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return "usage: mount <ext2|zoned|cdrom|nfs|ssd|tiered|hsm|remote|replicated> <path>\n";
  }
  std::unique_ptr<FileSystem> fs;
  const uint64_t seed = rng_.Uniform(1, 1 << 30);
  if (args[0] == "ext2") {
    DiskDeviceConfig dc;
    dc.seed = seed;
    fs = std::make_unique<ExtFs>("ext2", std::make_unique<DiskDevice>(dc));
  } else if (args[0] == "zoned") {
    // ext2 with per-zone sleds_table rows (the §4.1 [Van97] refinement).
    DiskDeviceConfig dc;
    dc.seed = seed;
    fs = std::make_unique<ExtFs>("ext2z", std::make_unique<DiskDevice>(dc),
                                 ExtentAllocatorConfig{}, /*per_zone_levels=*/true);
  } else if (args[0] == "cdrom") {
    CdRomDeviceConfig cc;
    cc.seed = seed;
    fs = std::make_unique<IsoFs>("cdrom", std::make_unique<CdRomDevice>(cc));
  } else if (args[0] == "nfs") {
    NetworkDeviceConfig nc;
    nc.seed = seed;
    fs = std::make_unique<NfsFs>("nfs", std::make_unique<NetworkDevice>(nc)) ;
  } else if (args[0] == "ssd") {
    SsdDeviceConfig sc;
    sc.seed = seed;
    fs = std::make_unique<ExtFs>("ssd", std::make_unique<SsdDevice>(sc));
  } else if (args[0] == "tiered") {
    SsdDeviceConfig sc;
    sc.seed = seed;
    DiskDeviceConfig dc;
    dc.seed = seed + 1;
    fs = std::make_unique<TieredFs>("tiered", std::make_unique<SsdDevice>(sc),
                                    std::make_unique<DiskDevice>(dc));
  } else if (args[0] == "hsm") {
    HsmFsConfig hc;
    hc.staging_capacity_bytes = 512LL * 1024 * 1024;
    hc.staging_disk.seed = seed;
    fs = std::make_unique<HsmFs>("hsm", hc);
  } else if (args[0] == "remote") {
    RemoteFsConfig rc;
    rc.seed = seed;
    fs = std::make_unique<RemoteFs>("remote", rc);
  } else if (args[0] == "replicated") {
    // Three-way replication over heterogeneous media: local disk, local SSD,
    // and an NFS-class network store. $SLEDS_HEDGE_P99=1 enables hedged reads.
    DiskDeviceConfig dc;
    dc.seed = seed;
    SsdDeviceConfig sc;
    sc.seed = seed + 1;
    NetworkDeviceConfig nc;
    nc.seed = seed + 2;
    std::vector<std::unique_ptr<StorageDevice>> replicas;
    replicas.push_back(std::make_unique<DiskDevice>(dc));
    replicas.push_back(std::make_unique<SsdDevice>(sc));
    replicas.push_back(std::make_unique<NetworkDevice>(nc));
    ReplicatedFsConfig rc;
    // Read once and cache: repeated mounts must not re-consult the
    // environment mid-run (same magic-static pattern as ResolveIoMode).
    static const bool hedge = [] {
      const char* v = std::getenv("SLEDS_HEDGE_P99");
      return v != nullptr && atoi(v) != 0;
    }();
    rc.hedge_reads = hedge;
    fs = std::make_unique<ReplicatedFs>("replicated", std::move(replicas), rc);
  } else {
    return "error: unknown fs kind '" + args[0] + "'\n";
  }
  auto r = kernel_->Mount(args[1], std::move(fs));
  if (!r.ok()) {
    return ErrText(r.error());
  }
  return Format("mounted %s at %s (fs id %u)\n", args[0].c_str(), args[1].c_str(), r.value());
}

std::string SledShell::CmdGenFile(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return "usage: genfile <path> <MB>\n";
  }
  const int64_t mb = atoll(args[1].c_str());
  if (mb <= 0) {
    return "error: bad size\n";
  }
  Process& p = NewProcess("gen");
  auto r = GenerateTextFile(*kernel_, p, args[0], mb * kMiB, rng_);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  return Format("wrote %lld lines (%lld MB) in %s\n", static_cast<long long>(r.value()),
                static_cast<long long>(mb), p.stats().elapsed().ToString().c_str());
}

std::string SledShell::CmdGenFits(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    return "usage: genfits <path> <MB>\n";
  }
  const int64_t mb = atoll(args[1].c_str());
  if (mb <= 0) {
    return "error: bad size\n";
  }
  Process& p = NewProcess("gen");
  auto r = GenerateFitsImage(*kernel_, p, args[0], mb * kMiB, -32, rng_);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  return Format("wrote %lldx%lld float image in %s\n", static_cast<long long>(r->naxis[0]),
                static_cast<long long>(r->naxis[1]), p.stats().elapsed().ToString().c_str());
}

std::string SledShell::CmdGenChain(const std::vector<std::string>& args) {
  if (args.size() < 2 || args.size() > 3) {
    return "usage: genchain <path> <blocks> [marker-every]\n";
  }
  ChainGenOptions options;
  options.num_blocks = atoll(args[1].c_str());
  if (args.size() == 3) {
    options.marker_every = atoll(args[2].c_str());
  }
  if (options.num_blocks <= 0 || options.marker_every < 0) {
    return "error: bad block count\n";
  }
  Process& p = NewProcess("gen");
  auto r = GenerateChainFile(*kernel_, p, args[0], options, rng_);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  return Format("wrote %lld-block chain (%lld bytes, %lld marked) in %s\n",
                static_cast<long long>(options.num_blocks),
                static_cast<long long>(r->file_bytes),
                static_cast<long long>(r->marker_count),
                p.stats().elapsed().ToString().c_str());
}

std::string SledShell::CmdCat(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return "usage: cat <path>\n";
  }
  Process& p = NewProcess("cat");
  auto fd = kernel_->Open(p, args[0]);
  if (!fd.ok()) {
    return ErrText(fd.error());
  }
  std::vector<char> buf(static_cast<size_t>(256 * kKiB));
  int64_t total = 0;
  while (true) {
    auto n = kernel_->Read(p, fd.value(), std::span<char>(buf.data(), buf.size()));
    if (!n.ok()) {
      return ErrText(n.error());
    }
    if (n.value() == 0) {
      break;
    }
    total += n.value();
  }
  (void)kernel_->Close(p, fd.value());
  return Format("read %lld bytes in %s (%lld major faults)\n", static_cast<long long>(total),
                p.stats().elapsed().ToString().c_str(),
                static_cast<long long>(p.stats().major_faults));
}

std::string SledShell::CmdWc(const std::vector<std::string>& args) {
  WcOptions options;
  options.kernel_program = ProgsEnabledFromEnv();  // $SLEDS_PROGS=1
  std::string path;
  for (const std::string& a : args) {
    if (a == "-s") {
      options.use_sleds = true;
    } else if (a == "-m") {
      options.use_mmap = true;
    } else if (a == "-p") {
      options.kernel_program = true;
    } else {
      path = a;
    }
  }
  if (path.empty()) {
    return "usage: wc [-s] [-m] [-p] <path>\n";
  }
  Process& p = NewProcess("wc");
  auto r = WcApp::Run(*kernel_, p, path, options);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  return Format("%lld lines, %lld words, %lld bytes  (%s, %lld faults)\n",
                static_cast<long long>(r->lines), static_cast<long long>(r->words),
                static_cast<long long>(r->bytes), p.stats().elapsed().ToString().c_str(),
                static_cast<long long>(p.stats().major_faults));
}

std::string SledShell::CmdGrep(const std::vector<std::string>& args) {
  GrepOptions options;
  std::vector<std::string> positional;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "-s") {
      options.use_sleds = true;
    } else if (a == "-q") {
      options.quiet_first_match = true;
    } else if (a == "-n") {
      options.line_numbers = true;
    } else if (a == "-p") {
      options.kernel_program = true;
    } else if ((a == "-A" || a == "-B") && i + 1 < args.size()) {
      const int count = atoi(args[++i].c_str());
      (a == "-A" ? options.after_context : options.before_context) = count;
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() != 2) {
    return "usage: grep [-s] [-q] [-n] [-p] [-A n] [-B n] <pattern> <path>\n";
  }
  // $SLEDS_PROGS=1 turns -q greps into completion programs by default; other
  // greps need assembled lines, which only the userspace path produces.
  if (options.quiet_first_match && ProgsEnabledFromEnv()) {
    options.kernel_program = true;
  }
  Process& p = NewProcess("grep");
  auto r = GrepApp::Run(*kernel_, p, positional[1], positional[0], options);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  std::string out;
  for (const GrepMatch& m : r->matches) {
    for (const std::string& b : m.before) {
      out += b + "\n";
    }
    if (options.line_numbers) {
      out += Format("%lld:", static_cast<long long>(m.line_number));
    }
    out += m.line + "\n";
    for (const std::string& a : m.after) {
      out += a + "\n";
    }
    if (options.before_context > 0 || options.after_context > 0) {
      out += "--\n";
    }
  }
  out += Format("%s (%zu matches, %s, %lld faults)\n", r->found ? "found" : "no match",
                r->matches.size(), p.stats().elapsed().ToString().c_str(),
                static_cast<long long>(p.stats().major_faults));
  return out;
}

std::string SledShell::CmdFind(const std::vector<std::string>& args) {
  if (args.empty()) {
    return "usage: find <path> [-name <substr>] [-latency <pred>] [-xdev]\n";
  }
  FindOptions options;
  const std::string root = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-xdev") {
      options.same_fs_only = true;
      continue;
    }
    if (i + 1 >= args.size()) {
      return "error: switch '" + args[i] + "' needs a value\n";
    }
    if (args[i] == "-name") {
      options.name_contains = args[++i];
    } else if (args[i] == "-latency") {
      auto pred = ParseLatencyPredicate(args[++i]);
      if (!pred.ok()) {
        return "error: bad latency predicate\n";
      }
      options.latency = pred.value();
    } else {
      return "error: unknown find switch '" + args[i] + "'\n";
    }
  }
  Process& p = NewProcess("find");
  auto r = FindApp::Run(*kernel_, p, root, options);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  std::string out;
  for (const std::string& path : r->paths) {
    out += path + "\n";
  }
  out += Format("(%zu of %lld files; %lld pruned by latency)\n", r->paths.size(),
                static_cast<long long>(r->files_examined),
                static_cast<long long>(r->files_pruned_by_latency));
  return out;
}

std::string SledShell::CmdChain(const std::vector<std::string>& args) {
  if (args.empty()) {
    return "usage: chain <path> [-name <substr>] [-p]\n";
  }
  ChainOptions options;
  options.kernel_program = ProgsEnabledFromEnv();  // $SLEDS_PROGS=1
  const std::string path = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "-p") {
      options.kernel_program = true;
    } else if (args[i] == "-name" && i + 1 < args.size()) {
      options.name_contains = args[++i];
    } else {
      return "error: unknown chain switch '" + args[i] + "'\n";
    }
  }
  Process& p = NewProcess("chain");
  auto r = FindApp::RunChain(*kernel_, p, path, options);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  return Format("%lld blocks, %lld matched, hash %016llx  (%s, %lld syscalls)\n",
                static_cast<long long>(r->blocks_visited),
                static_cast<long long>(r->names_matched),
                static_cast<unsigned long long>(r->chain_hash),
                p.stats().elapsed().ToString().c_str(),
                static_cast<long long>(p.stats().syscalls));
}

std::string SledShell::CmdSleds(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return "usage: sleds <path>\n";
  }
  Process& p = NewProcess("sleds");
  auto r = FileInfoApp::Run(*kernel_, p, args[0]);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  return r->panel_text;
}

std::string SledShell::CmdDelivery(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return "usage: delivery <path>\n";
  }
  Process& p = NewProcess("delivery");
  auto fd = kernel_->Open(p, args[0]);
  if (!fd.ok()) {
    return ErrText(fd.error());
  }
  auto t = TotalDeliveryTime(*kernel_, p, fd.value(), AttackPlan::kBest);
  (void)kernel_->Close(p, fd.value());
  if (!t.ok()) {
    return ErrText(t.error());
  }
  return Format("estimated delivery: %s\n", t->ToString().c_str());
}

std::string SledShell::CmdLock(const std::vector<std::string>& args, bool lock) {
  if (args.size() != 1) {
    return lock ? "usage: lock <path>\n" : "usage: unlock <path>\n";
  }
  const std::string& path = args[0];
  if (lock) {
    if (lock_fds_.contains(path)) {
      return "error: already locked\n";
    }
    Process& p = NewProcess("lock");
    auto fd = kernel_->Open(p, path);
    if (!fd.ok()) {
      return ErrText(fd.error());
    }
    auto attr = kernel_->Fstat(p, fd.value());
    auto pinned = kernel_->IoctlSledsLock(p, fd.value(), 0, std::max<int64_t>(attr->size, 1));
    if (!pinned.ok()) {
      (void)kernel_->Close(p, fd.value());
      return ErrText(pinned.error());
    }
    lock_fds_[path] = {fd.value(), &p};
    return Format("locked %lld resident pages\n", static_cast<long long>(pinned.value()));
  }
  auto it = lock_fds_.find(path);
  if (it == lock_fds_.end()) {
    return "error: not locked\n";
  }
  (void)kernel_->Close(*it->second.second, it->second.first);  // releases the pins
  lock_fds_.erase(it);
  return "unlocked\n";
}

std::string SledShell::CmdHsm(const std::vector<std::string>& args, bool migrate) {
  if (args.size() != 1) {
    return migrate ? "usage: migrate <path>\n" : "usage: recall <path>\n";
  }
  auto r = kernel_->vfs().Resolve(args[0]);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  auto* hsm = dynamic_cast<HsmFs*>(r->fs);
  if (hsm == nullptr) {
    return "error: not an HSM mount\n";
  }
  auto t = migrate ? hsm->Migrate(r->ino) : hsm->Recall(r->ino);
  if (!t.ok()) {
    return ErrText(t.error());
  }
  kernel_->clock().Advance(t.value());
  return Format("%s in %s\n", migrate ? "migrated" : "recalled", t->ToString().c_str());
}

std::string SledShell::CmdSeal(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return "usage: seal <path>\n";
  }
  auto r = kernel_->vfs().Resolve(args[0]);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  auto* iso = dynamic_cast<IsoFs*>(r->fs);
  if (iso == nullptr) {
    return "error: not an ISO mount\n";
  }
  kernel_->DropCaches();
  iso->Seal();
  return "sealed\n";
}

std::string SledShell::CmdLs(const std::vector<std::string>& args) {
  const std::string path = args.empty() ? "/" : args[0];
  auto r = kernel_->vfs().List(path);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  std::string out;
  for (const DirEntry& e : r.value()) {
    out += Format("%s%s\n", e.name.c_str(), e.is_dir ? "/" : "");
  }
  return out;
}

std::string SledShell::CmdStat(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return "usage: stat <path>\n";
  }
  auto r = kernel_->vfs().Stat(args[0]);
  if (!r.ok()) {
    return ErrText(r.error());
  }
  return Format("%s: %s, %lld bytes\n", args[0].c_str(), r->is_dir ? "directory" : "file",
                static_cast<long long>(r->size));
}

std::string SledShell::CmdStats() {
  kernel_->PublishCacheGauges();  // refresh cache.* gauges for iostat/exports
  const PageCacheStats& cs = kernel_->cache().stats();
  const KernelStats& ks = kernel_->stats();
  std::string out;
  out += Format("cache: %lld/%lld pages (%lld pinned), %lld hits, %lld misses\n",
                static_cast<long long>(kernel_->cache().size_pages()),
                static_cast<long long>(kernel_->cache().capacity_pages()),
                static_cast<long long>(kernel_->cache().pinned_pages()),
                static_cast<long long>(cs.hits), static_cast<long long>(cs.misses));
  out += Format("kernel: %lld pages in, %lld written back, %lld readahead\n",
                static_cast<long long>(ks.pages_paged_in),
                static_cast<long long>(ks.pages_written_back),
                static_cast<long long>(ks.readahead_pages));
  out += "sleds_table:\n";
  for (int i = 0; i < kernel_->sleds_table().size(); ++i) {
    const SledsTable::Row& row = kernel_->sleds_table().row(i);
    out += Format("  [%d] %-10s %12s %8.1f MB/s", i, row.name.c_str(),
                  row.chars.latency.ToString().c_str(), row.chars.bandwidth_bps / 1e6);
    if (!row.chars.latency_q.empty()) {
      const LatencyQuantiles& q = row.chars.latency_q;
      out += Format("  p50 %s p90 %s p99 %s", SecondsF(q.p50).ToString().c_str(),
                    SecondsF(q.p90).ToString().c_str(), SecondsF(q.p99).ToString().c_str());
    }
    out += "\n";
  }
  return out;
}

std::string SledShell::CmdTrace(const std::vector<std::string>& args) {
  int64_t n = 20;
  if (!args.empty()) {
    n = atoll(args[0].c_str());
    if (n <= 0) {
      return "usage: trace [n]\n";
    }
  }
  const TraceRing& ring = kernel_->obs().trace();
  std::string out = Format("%lld events recorded, %lld dropped, showing last %lld:\n",
                           static_cast<long long>(ring.total()),
                           static_cast<long long>(ring.dropped()),
                           static_cast<long long>(std::min<int64_t>(
                               n, static_cast<int64_t>(ring.size()))));
  out += ring.DumpCsv(static_cast<size_t>(n));
  return out;
}

std::string SledShell::CmdIostat() {
  const Observer& obs = kernel_->obs();
  const MetricRegistry& m = obs.metrics();
  std::string out;
  out += Format("%-3s %-10s %10s %10s %14s %12s %12s %12s\n", "lvl", "name", "pageins", "pages",
                "device_time", "p50", "p95", "p99");
  for (int i = 0; i < obs.num_levels(); ++i) {
    const std::string name(obs.LevelName(i));
    const std::string base = Format("level.%d.%s.", i, name.c_str());
    const LatencyHistogram* h = m.histogram(base + "pagein_time");
    const std::string sum = h ? h->sum().ToString() : "-";
    const std::string p50 = h ? h->Quantile(0.50).ToString() : "-";
    const std::string p95 = h ? h->Quantile(0.95).ToString() : "-";
    const std::string p99 = h ? h->Quantile(0.99).ToString() : "-";
    out += Format("%-3d %-10s %10lld %10lld %14s %12s %12s %12s\n", i, name.c_str(),
                  static_cast<long long>(m.counter(base + "pageins")),
                  static_cast<long long>(m.counter(base + "pagein_pages")), sum.c_str(),
                  p50.c_str(), p95.c_str(), p99.c_str());
  }
  out += Format("readahead: %lld batches, %lld pages\n",
                static_cast<long long>(m.counter("kernel.readahead_batches")),
                static_cast<long long>(m.counter("kernel.readahead_pages")));
  out += Format("writeback: %lld queued, %lld flushes, %lld pages, %lld runs\n",
                static_cast<long long>(m.counter("kernel.writeback_queued")),
                static_cast<long long>(m.counter("kernel.writeback_flushes")),
                static_cast<long long>(m.counter("kernel.writeback_pages")),
                static_cast<long long>(m.counter("kernel.writeback_runs")));
  // Per-device transfer counters and busy-time utilization, from the dev.*
  // metric namespace every StorageDevice reports into.
  std::set<std::string> devices;
  for (const auto& [key, value] : m.counters()) {
    if (key.rfind("dev.", 0) == 0) {
      const size_t dot = key.find('.', 4);
      if (dot != std::string::npos) {
        devices.insert(key.substr(4, dot - 4));
      }
    }
  }
  const Duration elapsed = kernel_->clock().Now().since_epoch();
  for (const std::string& dev : devices) {
    const std::string base = "dev." + dev + ".";
    const LatencyHistogram* rt = m.histogram(base + "read_time");
    const LatencyHistogram* wt = m.histogram(base + "write_time");
    Duration busy;
    if (rt != nullptr) {
      busy += rt->sum();
    }
    if (wt != nullptr) {
      busy += wt->sum();
    }
    const double util =
        elapsed.nanos() > 0 ? 100.0 * busy.ToSeconds() / elapsed.ToSeconds() : 0.0;
    out += Format("device %-10s reads %lld writes %lld repositions %lld busy %s (%.1f%%)\n",
                  dev.c_str(), static_cast<long long>(m.counter(base + "reads")),
                  static_cast<long long>(m.counter(base + "writes")),
                  static_cast<long long>(m.counter(base + "repositions")),
                  busy.ToString().c_str(), util);
  }
  // Request queues (event-driven engine modes only; empty under kFifoSync).
  kernel_->io_scheduler().ForEachQueue([&](uint32_t /*id*/, const DeviceQueue& q) {
    const DeviceQueueStats& s = q.stats();
    out += Format(
        "queue  %-10s depth %lld (max %lld) submitted %lld dispatched %lld/%lld "
        "batches/pages merged %lld canceled %lld\n",
        q.name().c_str(), static_cast<long long>(q.depth()),
        static_cast<long long>(s.max_depth), static_cast<long long>(s.submitted),
        static_cast<long long>(s.dispatched_batches),
        static_cast<long long>(s.dispatched_pages), static_cast<long long>(s.merged),
        static_cast<long long>(s.canceled));
  });
  return out;
}

}  // namespace sled
