#include "src/workload/text_gen.h"

#include <algorithm>

#include "src/common/units.h"

namespace sled {
namespace {

// One fixed-length line: words of lowercase letters, '\n'-terminated.
void AppendLine(std::string* out, Rng& rng) {
  const size_t end = out->size() + kGenLineLen - 1;
  while (out->size() < end) {
    const int64_t word = std::min<int64_t>(rng.Uniform(2, 9), static_cast<int64_t>(end - out->size()));
    for (int64_t i = 0; i < word; ++i) {
      out->push_back(static_cast<char>('a' + rng.Uniform(0, 25)));
    }
    if (out->size() < end) {
      out->push_back(' ');
    }
  }
  out->push_back('\n');
}

}  // namespace

Result<int64_t> GenerateTextFile(SimKernel& kernel, Process& process, std::string_view path,
                                 int64_t bytes, Rng& rng) {
  SLED_ASSIGN_OR_RETURN(int fd, kernel.Create(process, path));
  std::string buf;
  buf.reserve(static_cast<size_t>(256 * kKiB + kGenLineLen));
  int64_t written = 0;
  int64_t lines = 0;
  while (written < bytes) {
    buf.clear();
    while (buf.size() < static_cast<size_t>(256 * kKiB) &&
           written + static_cast<int64_t>(buf.size()) + kGenLineLen <= bytes) {
      AppendLine(&buf, rng);
      ++lines;
    }
    if (buf.empty()) {
      // Tail shorter than a line: fill with 'z' and a final newline.
      const int64_t tail = bytes - written;
      buf.assign(static_cast<size_t>(tail), 'z');
      buf.back() = '\n';
    }
    SLED_ASSIGN_OR_RETURN(
        int64_t n, kernel.Write(process, fd, std::span<const char>(buf.data(), buf.size())));
    written += n;
  }
  SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
  return lines;
}

Result<int64_t> PlaceMarker(SimKernel& kernel, Process& process, std::string_view path,
                            int64_t byte_offset) {
  SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
  SLED_ASSIGN_OR_RETURN(InodeAttr attr, kernel.Fstat(process, fd));
  if (attr.size < kGenLineLen) {
    (void)kernel.Close(process, fd);  // error path: kInval is the real story
    return Err::kInval;
  }
  // Snap to the start of the generator line containing byte_offset; the last
  // (possibly ragged) line is avoided.
  int64_t line_start = (byte_offset / kGenLineLen) * kGenLineLen;
  line_start = std::min(line_start, ((attr.size / kGenLineLen) - 1) * kGenLineLen);
  std::string line(static_cast<size_t>(kGenLineLen - 1), 'q');
  std::copy(kGrepMarker.begin(), kGrepMarker.end(), line.begin() + 4);
  line.push_back('\n');
  SLED_RETURN_IF_ERROR(kernel.Lseek(process, fd, line_start, Whence::kSet));
  SLED_RETURN_IF_ERROR(kernel.Write(process, fd, std::span<const char>(line.data(), line.size())));
  SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
  return line_start;
}

Result<void> RemoveMarker(SimKernel& kernel, Process& process, std::string_view path,
                          int64_t marker_offset, Rng& rng) {
  SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
  std::string line;
  line.reserve(static_cast<size_t>(kGenLineLen));
  AppendLine(&line, rng);
  SLED_RETURN_IF_ERROR(kernel.Lseek(process, fd, marker_offset, Whence::kSet));
  SLED_RETURN_IF_ERROR(kernel.Write(process, fd, std::span<const char>(line.data(), line.size())));
  SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
  return Result<void>::Ok();
}

Result<int64_t> MoveMarkerScrubbed(SimKernel& kernel, Process& process, std::string_view path,
                                   int64_t old_offset, int64_t new_byte_offset, Rng& rng) {
  const bool old_was_cached = [&] {
    if (old_offset < 0) {
      return false;
    }
    auto r = kernel.vfs().Resolve(path);
    if (!r.ok()) {
      return false;
    }
    const FileId fid = Vfs::MakeFileId(r->fs_id, r->ino);
    return kernel.cache().Contains({fid, old_offset / kPageSize});
  }();
  if (old_offset >= 0) {
    SLED_RETURN_IF_ERROR(RemoveMarker(kernel, process, path, old_offset, rng));
  }
  SLED_ASSIGN_OR_RETURN(int64_t placed, PlaceMarker(kernel, process, path, new_byte_offset));
  const bool new_was_cached = [&] {
    auto r = kernel.vfs().Resolve(path);
    if (!r.ok()) {
      return false;
    }
    const FileId fid = Vfs::MakeFileId(r->fs_id, r->ino);
    // Contains() is true after the write; what matters is whether the page
    // was resident *before* the setup touched it — approximated by whether
    // it sat inside a resident neighbourhood.
    return kernel.cache().Contains({fid, placed / kPageSize - 1}) ||
           kernel.cache().Contains({fid, (placed + kGenLineLen) / kPageSize + 1});
  }();

  // Flush the dirty marker pages, then evict any page of the two touched
  // lines that was not already resident before the move.
  SLED_ASSIGN_OR_RETURN(Vfs::Resolved r, kernel.vfs().Resolve(path));
  const FileId fid = Vfs::MakeFileId(r.fs_id, r.ino);
  SLED_ASSIGN_OR_RETURN(int fd, kernel.Open(process, path));
  SLED_RETURN_IF_ERROR(kernel.Fsync(process, fd));
  SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
  auto scrub = [&](int64_t offset, bool keep) {
    if (offset < 0 || keep) {
      return;
    }
    for (int64_t page = offset / kPageSize; page <= (offset + kGenLineLen - 1) / kPageSize;
         ++page) {
      kernel.cache().Remove({fid, page});
    }
  };
  scrub(old_offset, old_was_cached);
  scrub(placed, new_was_cached);
  return placed;
}

}  // namespace sled
