#include "src/workload/chain_gen.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

namespace sled {
namespace {

void PutI64Le(char* out, int64_t value) {
  auto v = static_cast<uint64_t>(value);
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
}

}  // namespace

Result<ChainGenInfo> GenerateChainFile(SimKernel& kernel, Process& process,
                                       std::string_view path, const ChainGenOptions& options,
                                       Rng& rng) {
  if (options.num_blocks <= 0 || options.block_bytes < 16 + 32 ||
      options.marker_every < 0) {
    return Err::kInval;
  }

  // Visit order: block 0 first (the head must sit at a known offset), the
  // rest a Fisher-Yates shuffle so consecutive hops land on far-apart file
  // offsets — the worst case for readahead, the motivating case for
  // completion programs.
  std::vector<int64_t> order(static_cast<size_t>(options.num_blocks));
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = order.size() - 1; i >= 2; --i) {
    const size_t j = static_cast<size_t>(rng.Uniform(1, static_cast<int64_t>(i)));
    std::swap(order[i], order[j]);
  }

  ChainGenInfo info;
  info.file_bytes = options.num_blocks * options.block_bytes;
  std::string image(static_cast<size_t>(info.file_bytes), '\0');
  for (size_t visit = 0; visit < order.size(); ++visit) {
    char* block = image.data() + order[visit] * options.block_bytes;
    const int64_t next =
        visit + 1 < order.size() ? order[visit + 1] * options.block_bytes : -1;
    PutI64Le(block, next);
    char name[64];
    int len = std::snprintf(name, sizeof(name), "node-%06zu", visit);
    if (options.marker_every > 0 &&
        (static_cast<int64_t>(visit) + 1) % options.marker_every == 0) {
      len += std::snprintf(name + len, sizeof(name) - static_cast<size_t>(len), "-%.*s",
                           static_cast<int>(kChainMarker.size()), kChainMarker.data());
      ++info.marker_count;
    }
    PutI64Le(block + 8, len);
    std::copy(name, name + len, block + 16);
  }

  SLED_ASSIGN_OR_RETURN(int fd, kernel.Create(process, path));
  SLED_ASSIGN_OR_RETURN(
      int64_t w, kernel.Write(process, fd, std::span<const char>(image.data(), image.size())));
  if (w != info.file_bytes) {
    (void)kernel.Close(process, fd);
    return Err::kIo;
  }
  SLED_RETURN_IF_ERROR(kernel.Close(process, fd));
  return info;
}

}  // namespace sled
