// I/O trace capture and replay.
//
// A TraceSink attached to the kernel records every data-plane syscall an
// application issues (open/read/write/lseek/mmap/close). A recorded trace
// can then be replayed — verbatim, or with the SLEDs pick library re-planning
// the read order — against any testbed, separating *what* an application
// asks for from *where* the data lives. This is the workhorse for
// device-sensitivity studies: capture wc's pattern once, replay it on disk,
// CD-ROM, NFS, or the HSM without re-running the application logic.
#ifndef SLEDS_SRC_WORKLOAD_TRACE_H_
#define SLEDS_SRC_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/kernel/sim_kernel.h"

namespace sled {

enum class TraceOp { kOpen, kClose, kRead, kWrite, kLseek, kMmapRead };

struct TraceEvent {
  TraceOp op = TraceOp::kOpen;
  int fd = -1;           // application-side descriptor id
  std::string path;      // for kOpen
  int64_t offset = 0;    // kLseek target (absolute), kMmapRead offset
  int64_t length = 0;    // kRead/kWrite/kMmapRead byte count
};

using Trace = std::vector<TraceEvent>;

// Render / parse a compact one-event-per-line text form, so traces can be
// saved and shipped:  "open 3 /data/f.txt", "read 3 65536", ...
std::string FormatTrace(const Trace& trace);
Result<Trace> ParseTrace(const std::string& text);

// Statistics over a trace (for reporting).
struct TraceStats {
  int64_t events = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t seeks = 0;
  int64_t opens = 0;
};
TraceStats SummarizeTrace(const Trace& trace);

// Replay options.
struct ReplayOptions {
  // Re-plan each file's reads with the SLEDs picker instead of following the
  // recorded order. Only applies to files the trace *reads sequentially or
  // with explicit seeks*; writes always replay verbatim.
  bool reorder_reads_with_sleds = false;
  int64_t picker_chunk_bytes = 64 * 1024;
};

struct ReplayResult {
  Duration elapsed;
  int64_t major_faults = 0;
};

// Replay `trace` in a fresh process on `kernel`. Descriptor ids in the trace
// are mapped to live fds. Fails on the first syscall error.
Result<ReplayResult> ReplayTrace(SimKernel& kernel, const Trace& trace,
                                 const ReplayOptions& options = {});

// A recorder the instrumented helpers below append to. (The kernel itself is
// unmodified; recording wraps the syscall layer, the way strace wraps libc.)
class TraceRecorder {
 public:
  explicit TraceRecorder(SimKernel& kernel, Process& process)
      : kernel_(kernel), process_(process) {}

  // Wrapped syscalls: identical signatures and behaviour, plus recording.
  Result<int> Open(std::string_view path);
  Result<void> Close(int fd);
  Result<int64_t> Read(int fd, std::span<char> dst);
  Result<int64_t> Write(int fd, std::span<const char> src);
  Result<int64_t> Lseek(int fd, int64_t offset, Whence whence);
  Result<std::string_view> MmapRead(int fd, int64_t offset, int64_t length);

  const Trace& trace() const { return trace_; }
  Trace TakeTrace() { return std::move(trace_); }

 private:
  SimKernel& kernel_;
  Process& process_;
  Trace trace_;
};

}  // namespace sled

#endif  // SLEDS_SRC_WORKLOAD_TRACE_H_
