#include "src/workload/fits_gen.h"

#include <cmath>

namespace sled {

Result<FitsHeader> GenerateFitsImage(SimKernel& kernel, Process& process, std::string_view path,
                                     int64_t approx_bytes, int bitpix, Rng& rng) {
  const int64_t elem = (bitpix < 0 ? -bitpix : bitpix) / 8;
  if (elem == 0 || approx_bytes < kFitsBlock * 2) {
    return Err::kInval;
  }
  int64_t side = static_cast<int64_t>(std::sqrt(static_cast<double>(approx_bytes / elem)));
  side -= side % 4;
  if (side < 4) {
    return Err::kInval;
  }
  FitsImage image;
  image.header.bitpix = bitpix;
  image.header.naxis = {side, side};
  image.pixels.resize(static_cast<size_t>(side * side));
  for (int64_t y = 0; y < side; ++y) {
    for (int64_t x = 0; x < side; ++x) {
      const double gradient = 100.0 * (static_cast<double>(x + y) / static_cast<double>(2 * side));
      const double noise = rng.Normal(0.0, 5.0);
      image.pixels[static_cast<size_t>(y * side + x)] = gradient + noise;
    }
  }
  SLED_RETURN_IF_ERROR(FitsWriteImage(kernel, process, path, image));
  FitsHeader header = image.header;
  header.data_offset = static_cast<int64_t>(FitsEncodeHeader(header).size());
  return header;
}

}  // namespace sled
