// Errno-style error codes and a small Result<T> for the syscall boundary.
//
// The VFS mimics Unix semantics: operations fail with an error code, not an
// exception (Core Guidelines I.10 notwithstanding, a simulated kernel's ABI is
// exactly the place to "encapsulate rule violations", I.30). Exceptions remain
// reserved for programmer errors (SLED_CHECK).
#ifndef SLEDS_SRC_COMMON_RESULT_H_
#define SLEDS_SRC_COMMON_RESULT_H_

#include <string_view>
#include <utility>
#include <variant>

#include "src/common/log.h"

namespace sled {

enum class Err {
  kOk = 0,
  kNoEnt,       // no such file or directory
  kExist,       // file already exists
  kBadF,        // bad file descriptor
  kInval,       // invalid argument
  kNoSpc,       // device out of space
  kIsDir,       // is a directory
  kNotDir,      // not a directory
  kRofs,        // read-only file system
  kNotSup,      // operation not supported
  kIo,          // low-level I/O error
  kNotEmpty,    // directory not empty
  kNameTooLong, // path component too long
  kXDev,        // cross-device link
  kTimedOut,    // operation timed out (server down window, at the syscall boundary)
  kUnavailable, // storage level currently unreachable (internal; maps to kTimedOut)
};

std::string_view ErrName(Err e);

// Result<T>: either a value or an error code. Result<void> holds only status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Err e) : v_(e) { SLED_CHECK(e != Err::kOk, "error Result requires a real error"); }  // NOLINT

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  Err error() const { return ok() ? Err::kOk : std::get<Err>(v_); }

  T& value() & {
    SLED_CHECK(ok(), "value() on error Result: %s", ErrName(error()).data());
    return std::get<T>(v_);
  }
  const T& value() const& {
    SLED_CHECK(ok(), "value() on error Result: %s", ErrName(error()).data());
    return std::get<T>(v_);
  }
  T&& value() && {
    SLED_CHECK(ok(), "value() on error Result: %s", ErrName(error()).data());
    return std::get<T>(std::move(v_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? std::get<T>(v_) : std::move(fallback); }

 private:
  std::variant<T, Err> v_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() : e_(Err::kOk) {}
  Result(Err e) : e_(e) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return e_ == Err::kOk; }
  explicit operator bool() const { return ok(); }
  Err error() const { return e_; }

  static Result Ok() { return Result(); }

 private:
  Err e_;
};

// Propagate an error from an expression yielding a Result.
#define SLED_RETURN_IF_ERROR(expr)         \
  do {                                     \
    auto sled_status_ = (expr);            \
    if (!sled_status_.ok()) {              \
      return sled_status_.error();         \
    }                                      \
  } while (0)

// Evaluate `rexpr` (a Result<T>), return its error on failure, otherwise bind
// the value to `lhs`. Usage: SLED_ASSIGN_OR_RETURN(auto fd, vfs.Open(path));
#define SLED_ASSIGN_OR_RETURN(lhs, rexpr)                    \
  SLED_ASSIGN_OR_RETURN_IMPL_(SLED_CONCAT_(sled_res_, __LINE__), lhs, rexpr)
#define SLED_CONCAT_INNER_(a, b) a##b
#define SLED_CONCAT_(a, b) SLED_CONCAT_INNER_(a, b)
#define SLED_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) {                                   \
    return tmp.error();                              \
  }                                                  \
  lhs = std::move(tmp).value()

}  // namespace sled

#endif  // SLEDS_SRC_COMMON_RESULT_H_
