// Minimal leveled logging and fatal checks.
#ifndef SLEDS_SRC_COMMON_LOG_H_
#define SLEDS_SRC_COMMON_LOG_H_

#include <cstdarg>

namespace sled {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kFatal };

// Global minimum level; messages below it are dropped. Defaults to kWarn so
// benchmarks and tests stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style log emission. kFatal aborts after printing.
[[gnu::format(printf, 4, 5)]] void LogF(LogLevel level, const char* file, int line,
                                        const char* fmt, ...);

[[noreturn]] void FatalF(const char* file, int line, const char* fmt, ...);

}  // namespace sled

#define SLED_LOG(level, ...) ::sled::LogF((level), __FILE__, __LINE__, __VA_ARGS__)
#define SLED_DEBUG(...) SLED_LOG(::sled::LogLevel::kDebug, __VA_ARGS__)
#define SLED_INFO(...) SLED_LOG(::sled::LogLevel::kInfo, __VA_ARGS__)
#define SLED_WARN(...) SLED_LOG(::sled::LogLevel::kWarn, __VA_ARGS__)
#define SLED_ERROR(...) SLED_LOG(::sled::LogLevel::kError, __VA_ARGS__)

// Invariant check: aborts with a message when `cond` is false. Used for
// programmer errors (API misuse, broken internal invariants), never for
// recoverable I/O failures — those go through Result<T>.
#define SLED_CHECK(cond, ...)                         \
  do {                                                \
    if (!(cond)) {                                    \
      ::sled::FatalF(__FILE__, __LINE__, __VA_ARGS__); \
    }                                                 \
  } while (0)

#endif  // SLEDS_SRC_COMMON_LOG_H_
