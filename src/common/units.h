// Byte-size units and page constants used throughout the simulator.
#ifndef SLEDS_SRC_COMMON_UNITS_H_
#define SLEDS_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace sled {

inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

// Size of a virtual-memory / file-cache page. Linux 2.2 on x86 used 4 KiB
// pages; all SLED offsets and lengths produced by the kernel are initially
// page-aligned (the library may later pull them in to record boundaries).
inline constexpr int64_t kPageSize = 4 * kKiB;

constexpr int64_t KiB(int64_t n) { return n * kKiB; }
constexpr int64_t MiB(int64_t n) { return n * kMiB; }
constexpr int64_t GiB(int64_t n) { return n * kGiB; }

// Number of pages needed to hold `bytes` bytes (rounding up).
constexpr int64_t PagesFor(int64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }

// First byte of the page containing `offset`.
constexpr int64_t PageFloor(int64_t offset) { return offset - (offset % kPageSize); }

// First byte of the page after the one containing `offset - 1`.
constexpr int64_t PageCeil(int64_t offset) { return PageFloor(offset + kPageSize - 1); }

}  // namespace sled

#endif  // SLEDS_SRC_COMMON_UNITS_H_
