#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sled {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void VLogF(LogLevel level, const char* file, int line, const char* fmt, va_list args) {
  std::fprintf(stderr, "[%s %s:%d] ", LevelName(level), file, line);
  std::vfprintf(stderr, fmt, args);
  std::fputc('\n', stderr);
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void LogF(LogLevel level, const char* file, int line, const char* fmt, ...) {
  if (level < g_level.load() && level != LogLevel::kFatal) {
    return;
  }
  va_list args;
  va_start(args, fmt);
  VLogF(level, file, line, fmt, args);
  va_end(args);
  if (level == LogLevel::kFatal) {
    std::abort();
  }
}

void FatalF(const char* file, int line, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  VLogF(LogLevel::kFatal, file, line, fmt, args);
  va_end(args);
  std::abort();
}

}  // namespace sled
