#include "src/common/result.h"

namespace sled {

std::string_view ErrName(Err e) {
  switch (e) {
    case Err::kOk:
      return "OK";
    case Err::kNoEnt:
      return "ENOENT";
    case Err::kExist:
      return "EEXIST";
    case Err::kBadF:
      return "EBADF";
    case Err::kInval:
      return "EINVAL";
    case Err::kNoSpc:
      return "ENOSPC";
    case Err::kIsDir:
      return "EISDIR";
    case Err::kNotDir:
      return "ENOTDIR";
    case Err::kRofs:
      return "EROFS";
    case Err::kNotSup:
      return "ENOTSUP";
    case Err::kIo:
      return "EIO";
    case Err::kNotEmpty:
      return "ENOTEMPTY";
    case Err::kNameTooLong:
      return "ENAMETOOLONG";
    case Err::kXDev:
      return "EXDEV";
    case Err::kTimedOut:
      return "ETIMEDOUT";
    case Err::kUnavailable:
      return "EUNAVAIL";
  }
  return "E?";
}

}  // namespace sled
