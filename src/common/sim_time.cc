#include "src/common/sim_time.h"

#include <cstdio>

namespace sled {

std::string Duration::ToString() const {
  char buf[64];
  const double abs_ns = static_cast<double>(nanos_ < 0 ? -nanos_ : nanos_);
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(nanos_));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f us", ToMicros());
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ToMillis());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", ToSeconds());
  }
  return buf;
}

}  // namespace sled
