// Statistics used by the experiment harness: per-configuration summaries with
// 90% confidence intervals (the paper reports mean and 90% CI over 12 runs),
// and empirical CDFs (paper Figure 13).
#ifndef SLEDS_SRC_COMMON_STATS_H_
#define SLEDS_SRC_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace sled {

// Summary of a sample: mean, standard deviation, and the half-width of the
// two-sided 90% confidence interval on the mean (Student's t).
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double ci90_half_width = 0.0;
  size_t n = 0;

  double lo() const { return mean - ci90_half_width; }
  double hi() const { return mean + ci90_half_width; }
};

Summary Summarize(const std::vector<double>& samples);

// Two-sided 90% Student-t critical value for `dof` degrees of freedom.
double TCritical90(size_t dof);

// Empirical cumulative distribution function over a sample.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  // Fraction of samples <= x, in [0, 1].
  double At(double x) const;

  // The p-quantile (p in [0, 1]); p = 0.5 is the median.
  double Quantile(double p) const;

  double min() const { return sorted_.empty() ? 0.0 : sorted_.front(); }
  double max() const { return sorted_.empty() ? 0.0 : sorted_.back(); }
  size_t size() const { return sorted_.size(); }
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

// One (x, with, without) row of a paper-style figure: a sweep point plus the
// two measured conditions.
struct SeriesPoint {
  double x = 0.0;
  Summary with_sleds;
  Summary without_sleds;

  double speedup() const {
    return with_sleds.mean > 0.0 ? without_sleds.mean / with_sleds.mean : 0.0;
  }
};

// Render a table of series points: header, one row per point, columns for the
// two conditions with CI and the improvement ratio. `x_label`/`y_label` name
// the axes (e.g. "File size (MB)", "Execution time (s)").
std::string FormatSeries(const std::string& title, const std::string& x_label,
                         const std::string& y_label, const std::vector<SeriesPoint>& points);

}  // namespace sled

#endif  // SLEDS_SRC_COMMON_STATS_H_
