// Deterministic pseudo-random numbers for workload generation and the small
// stochastic elements of the simulation (background activity jitter, match
// placement). Every experiment seeds its own Rng so runs are reproducible.
#ifndef SLEDS_SRC_COMMON_RNG_H_
#define SLEDS_SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace sled {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform double in [0, 1).
  double UniformDouble() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Exponential with the given mean (mean = 1/lambda).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  // Derive an independent child generator; used to give each run of a
  // repeated experiment its own stream.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sled

#endif  // SLEDS_SRC_COMMON_RNG_H_
