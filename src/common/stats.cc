#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/log.h"

namespace sled {

double TCritical90(size_t dof) {
  // Two-sided 90% (alpha = 0.10) critical values of Student's t.
  static constexpr double kTable[] = {
      0.0,    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
      1.796,  1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721,
      1.717,  1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
  };
  constexpr size_t kMax = sizeof(kTable) / sizeof(kTable[0]) - 1;
  if (dof == 0) {
    return 0.0;
  }
  if (dof <= kMax) {
    return kTable[dof];
  }
  return 1.645;  // normal approximation for large dof
}

Summary Summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (s.n == 0) {
    return s;
  }
  double sum = 0.0;
  for (double v : samples) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n >= 2) {
    double ss = 0.0;
    for (double v : samples) {
      ss += (v - s.mean) * (v - s.mean);
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
    s.ci90_half_width = TCritical90(s.n - 1) * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  return s;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::At(double x) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double Cdf::Quantile(double p) const {
  SLED_CHECK(!sorted_.empty(), "Quantile of empty CDF");
  SLED_CHECK(p >= 0.0 && p <= 1.0, "Quantile p out of range: %f", p);
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  const double pos = p * static_cast<double>(sorted_.size() - 1);
  const size_t i = static_cast<size_t>(pos);
  if (i + 1 >= sorted_.size()) {
    return sorted_.back();
  }
  const double frac = pos - static_cast<double>(i);
  return sorted_[i] * (1.0 - frac) + sorted_[i + 1] * frac;
}

std::string FormatSeries(const std::string& title, const std::string& x_label,
                         const std::string& y_label, const std::vector<SeriesPoint>& points) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "# %s\n# y = %s\n", title.c_str(), y_label.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-16s %14s %12s %14s %12s %10s\n", x_label.c_str(),
                "with-SLEDs", "ci90", "without", "ci90", "speedup");
  out += buf;
  for (const SeriesPoint& p : points) {
    std::snprintf(buf, sizeof(buf), "%-16.1f %14.4f %12.4f %14.4f %12.4f %10.2f\n", p.x,
                  p.with_sleds.mean, p.with_sleds.ci90_half_width, p.without_sleds.mean,
                  p.without_sleds.ci90_half_width, p.speedup());
    out += buf;
  }
  return out;
}

}  // namespace sled
