#include "src/common/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/common/log.h"

namespace sled {
namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void Include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  bool valid() const { return lo <= hi; }
  double span() const { return hi - lo; }
};

}  // namespace

std::string RenderPlot(const std::vector<PlotSeries>& series, const PlotOptions& options) {
  const int w = std::max(options.width, 10);
  const int h = std::max(options.height, 5);

  Range xr;
  Range yr;
  for (const PlotSeries& s : series) {
    SLED_CHECK(s.xs.size() == s.ys.size(), "series '%s': xs/ys size mismatch", s.name.c_str());
    for (double x : s.xs) {
      xr.Include(x);
    }
    for (double y : s.ys) {
      yr.Include(y);
    }
  }
  std::string out;
  if (!xr.valid() || !yr.valid()) {
    return "(no data)\n";
  }
  if (options.y_from_zero) {
    yr.Include(0.0);
  }
  if (xr.span() == 0.0) {
    xr.hi = xr.lo + 1.0;
  }
  if (yr.span() == 0.0) {
    yr.hi = yr.lo + 1.0;
  }

  std::vector<std::string> grid(static_cast<size_t>(h), std::string(static_cast<size_t>(w), ' '));
  for (const PlotSeries& s : series) {
    for (size_t i = 0; i < s.xs.size(); ++i) {
      const double fx = (s.xs[i] - xr.lo) / xr.span();
      const double fy = (s.ys[i] - yr.lo) / yr.span();
      int col = static_cast<int>(std::lround(fx * (w - 1)));
      int row = static_cast<int>(std::lround(fy * (h - 1)));
      col = std::clamp(col, 0, w - 1);
      row = std::clamp(row, 0, h - 1);
      grid[static_cast<size_t>(h - 1 - row)][static_cast<size_t>(col)] = s.glyph;
    }
  }

  char buf[160];
  if (!options.title.empty()) {
    out += "  " + options.title + "\n";
  }
  if (!options.y_label.empty()) {
    out += "  " + options.y_label + "\n";
  }
  for (int r = 0; r < h; ++r) {
    const double y_here = yr.hi - (yr.span() * r) / (h - 1);
    if (r % 5 == 0 || r == h - 1) {
      std::snprintf(buf, sizeof(buf), "%10.2f |", y_here);
    } else {
      std::snprintf(buf, sizeof(buf), "%10s |", "");
    }
    out += buf;
    out += grid[static_cast<size_t>(r)];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(static_cast<size_t>(w), '-') + '\n';
  std::snprintf(buf, sizeof(buf), "%10s  %-12.2f%*.2f  %s\n", "", xr.lo, w - 12, xr.hi,
                options.x_label.c_str());
  out += buf;
  for (const PlotSeries& s : series) {
    std::snprintf(buf, sizeof(buf), "%12s %c = %s\n", "", s.glyph, s.name.c_str());
    out += buf;
  }
  return out;
}

}  // namespace sled
